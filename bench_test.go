package incgraph

// Benchmarks regenerating the paper's evaluation as testing.B targets, one
// family per table/figure (see DESIGN.md's experiment index). Each
// incremental benchmark measures a round trip — Apply(ΔG) followed by
// Apply(ΔG⁻¹) — so every iteration does identical work and the graph ends
// each iteration in its starting state; halve ns/op for a single
// direction. The cmd/incbench harness reports the paper-shaped repair-only
// numbers; these targets provide stable, repeatable cells via:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// benchScale shrinks the stand-ins so `go test -bench=.` stays in minutes;
// use cmd/incbench for the full-scale tables.
const benchScale = 0.25

func benchGraph(b *testing.B, name string, directed bool) *graph.Graph {
	b.Helper()
	d, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	d.Directed = directed
	return d.Build(1, benchScale)
}

func deltaOf(g *graph.Graph, percent float64) graph.Batch {
	n := int(percent / 100 * float64(g.Size()))
	if n < 1 {
		n = 1
	}
	return gen.RandomUpdates(newRNG(7), g, n, 0.5)
}

type batchApplier interface{ Apply(graph.Batch) int }

// roundTrip drives b.N apply/undo cycles of delta through m.
func roundTrip(b *testing.B, m batchApplier, delta graph.Batch) {
	b.Helper()
	inv := delta.Inverse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(delta)
		m.Apply(inv)
	}
}

// --- Table 1: batch vs deduced at |ΔG| = 4% ---

func BenchmarkTable1BatchDijkstra(b *testing.B) {
	g := benchGraph(b, "TW", true)
	g.Apply(deltaOf(g, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.Dijkstra(g, 0)
	}
}

func BenchmarkTable1IncSSSP(b *testing.B) {
	g := benchGraph(b, "TW", true)
	delta := deltaOf(g, 4)
	roundTrip(b, sssp.NewInc(g, 0), delta)
}

func BenchmarkTable1BatchSim(b *testing.B) {
	g := benchGraph(b, "TW", true)
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	g.Apply(deltaOf(g, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simfp(g, q)
	}
}

func BenchmarkTable1IncSim(b *testing.B) {
	g := benchGraph(b, "TW", true)
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	delta := deltaOf(g, 4)
	roundTrip(b, sim.NewInc(g, q), delta)
}

func BenchmarkTable1BatchLCC(b *testing.B) {
	g := benchGraph(b, "TW", false)
	g.Apply(deltaOf(g, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lcc.Run(g)
	}
}

func BenchmarkTable1IncLCC(b *testing.B) {
	g := benchGraph(b, "TW", false)
	delta := deltaOf(g, 4)
	roundTrip(b, lcc.NewInc(g), delta)
}

// --- Fig. 6 (Exp-1): unit updates, deduced vs competitor ---

func benchUnit(b *testing.B, mk func(g *graph.Graph) batchApplier, directed, insert bool) {
	b.Helper()
	g := benchGraph(b, "OKT", directed)
	m := mk(g)
	frac := 0.0
	if insert {
		frac = 1.0
	}
	updates := gen.RandomUpdates(newRNG(3), g, 256, frac)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.Batch{updates[i%len(updates)]}
		m.Apply(u)
		m.Apply(u.Inverse())
	}
}

func BenchmarkExp1SSSPInsertInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return sssp.NewInc(g, 0) }, true, true)
}

func BenchmarkExp1SSSPInsertRR(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return sssp.NewRR(g, 0) }, true, true)
}

func BenchmarkExp1SSSPDeleteInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return sssp.NewInc(g, 0) }, true, false)
}

func BenchmarkExp1SSSPDeleteRR(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return sssp.NewRR(g, 0) }, true, false)
}

func BenchmarkExp1CCInsertInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return cc.NewInc(g) }, false, true)
}

func BenchmarkExp1CCInsertDynCC(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return cc.NewDynCC(g) }, false, true)
}

func BenchmarkExp1CCDeleteInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return cc.NewInc(g) }, false, false)
}

func BenchmarkExp1CCDeleteDynCC(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return cc.NewDynCC(g) }, false, false)
}

func BenchmarkExp1SimInsertInc(b *testing.B) {
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	benchUnit(b, func(g *graph.Graph) batchApplier { return sim.NewInc(g, q) }, true, true)
}

func BenchmarkExp1SimInsertIncMatch(b *testing.B) {
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	benchUnit(b, func(g *graph.Graph) batchApplier { return sim.NewIncMatch(g, q) }, true, true)
}

func BenchmarkExp1SimDeleteInc(b *testing.B) {
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	benchUnit(b, func(g *graph.Graph) batchApplier { return sim.NewInc(g, q) }, true, false)
}

func BenchmarkExp1SimDeleteIncMatch(b *testing.B) {
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	benchUnit(b, func(g *graph.Graph) batchApplier { return sim.NewIncMatch(g, q) }, true, false)
}

func BenchmarkExp1DFSInsertInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return dfs.NewInc(g) }, true, true)
}

func BenchmarkExp1DFSInsertDynDFS(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return dfs.NewDynDFS(g) }, true, true)
}

func BenchmarkExp1DFSDeleteInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return dfs.NewInc(g) }, true, false)
}

func BenchmarkExp1DFSDeleteDynDFS(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return dfs.NewDynDFS(g) }, true, false)
}

func BenchmarkExp1LCCInsertInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return lcc.NewInc(g) }, false, true)
}

func BenchmarkExp1LCCInsertDynLCC(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return lcc.NewDynLCC(g) }, false, true)
}

func BenchmarkExp1LCCDeleteInc(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return lcc.NewInc(g) }, false, false)
}

func BenchmarkExp1LCCDeleteDynLCC(b *testing.B) {
	benchUnit(b, func(g *graph.Graph) batchApplier { return lcc.NewDynLCC(g) }, false, false)
}

// --- Fig. 7(a-f) (Exp-2): batch updates of growing size ---

func BenchmarkExp2SSSPBatch(b *testing.B) {
	g := benchGraph(b, "FS", true)
	g.Apply(deltaOf(g, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.Dijkstra(g, 0)
	}
}

func BenchmarkExp2SSSPInc(b *testing.B) {
	for _, p := range []float64{2, 8, 32} {
		b.Run(fmt.Sprintf("delta=%g%%", p), func(b *testing.B) {
			g := benchGraph(b, "FS", true)
			roundTrip(b, sssp.NewInc(g, 0), deltaOf(g, p))
		})
	}
}

func BenchmarkExp2CCInc(b *testing.B) {
	for _, p := range []float64{1, 4, 16} {
		b.Run(fmt.Sprintf("delta=%g%%", p), func(b *testing.B) {
			g := benchGraph(b, "OKT", false)
			roundTrip(b, cc.NewInc(g), deltaOf(g, p))
		})
	}
}

func BenchmarkExp2SimInc(b *testing.B) {
	q := gen.Pattern(newRNG(2), 4, 6, gen.Alphabet)
	for _, p := range []float64{4, 16, 64} {
		b.Run(fmt.Sprintf("delta=%g%%", p), func(b *testing.B) {
			g := benchGraph(b, "DP", true)
			roundTrip(b, sim.NewInc(g, q), deltaOf(g, p))
		})
	}
}

func BenchmarkExp2LCCInc(b *testing.B) {
	for _, p := range []float64{2, 8} {
		b.Run(fmt.Sprintf("delta=%g%%", p), func(b *testing.B) {
			g := benchGraph(b, "LJ", false)
			roundTrip(b, lcc.NewInc(g), deltaOf(g, p))
		})
	}
}

func BenchmarkExp2DFSInc(b *testing.B) {
	for _, p := range []float64{0.25, 2} {
		b.Run(fmt.Sprintf("delta=%g%%", p), func(b *testing.B) {
			g := benchGraph(b, "OKT", true)
			roundTrip(b, dfs.NewInc(g), deltaOf(g, p))
		})
	}
}

// --- Fig. 7(g-i) (Exp-2(2)): temporal windows ---

func BenchmarkExp2TypesWindow(b *testing.B) {
	d, _ := gen.ByName("WD")
	tp := d.BuildTemporal(1, benchScale, 2)
	g0 := tp.Snapshot(0)
	w1 := tp.Window(0, 1)
	roundTrip(b, sssp.NewInc(g0, 0), w1)
}

// --- Fig. 7(j-l) (Exp-3): scalability with |G| ---

func BenchmarkExp3SSSP(b *testing.B) {
	for _, n := range []int{25_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen.Synthetic(1, n, 10, true)
			roundTrip(b, sssp.NewInc(g, 0), deltaOf(g, 1))
		})
	}
}

// --- Fig. 8 (Exp-4): structure footprints, measured as allocations ---

func BenchmarkExp4BuildIncSSSP(b *testing.B) {
	g := benchGraph(b, "OKT", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.NewInc(g, 0)
	}
}

func BenchmarkExp4BuildIncCC(b *testing.B) {
	g := benchGraph(b, "OKT", false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.NewInc(g)
	}
}

func BenchmarkExp4BuildDynCC(b *testing.B) {
	g := benchGraph(b, "OKT", false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.NewDynCC(g)
	}
}
