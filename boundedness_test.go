package incgraph

// The headline guarantee, measured end to end: for every query class, a
// unit update on a large graph repairs an affected area that is a
// vanishing fraction of the graph. Each maintainer's Apply returns its
// affected-area proxy (|H⁰|, the PE set, or the revisited region).

import (
	"testing"

	"incgraph/internal/bc"
)

func TestRelativeBoundednessAcrossClasses(t *testing.T) {
	const n = 30_000
	dir := PowerLawGraph(41, n, 8, true)
	und := PowerLawGraph(42, n, 8, false)

	// One deletion and one insertion, sampled validly per graph.
	delDir := RandomUpdates(1, dir, 1, 0.0)
	insDir := RandomUpdates(2, dir, 1, 1.0)
	delUnd := RandomUpdates(3, und, 1, 0.0)
	insUnd := RandomUpdates(4, und, 1, 1.0)

	check := func(name string, affected, limit int) {
		t.Helper()
		if affected > limit {
			t.Errorf("%s: unit update affected %d variables (limit %d of %d nodes)",
				name, affected, limit, n)
		}
	}

	{
		inc := NewIncSSSP(dir.Clone(), 0)
		check("IncSSSP/delete", inc.Apply(delDir), n/10)
		check("IncSSSP/insert", inc.Apply(insDir), n/10)
	}
	{
		inc := NewIncCC(und.Clone())
		check("IncCC/delete", inc.Apply(delUnd), n/10)
		check("IncCC/insert", inc.Apply(insUnd), n/10)
	}
	{
		q := RandomPattern(5, 4, 6, 5)
		inc := NewIncSim(dir.Clone(), q)
		check("IncSim/delete", inc.Apply(delDir), 4*n/10)
		check("IncSim/insert", inc.Apply(insDir), 4*n/10)
	}
	{
		inc := NewIncLCC(und.Clone())
		check("IncLCC/delete", inc.Apply(delUnd), n/10)
		check("IncLCC/insert", inc.Apply(insUnd), n/10)
	}
	{
		// DFS: non-tree deletions are free; insertions can replay a
		// traversal suffix (the large-AFF class the paper reports).
		inc := NewIncDFS(dir.Clone())
		tr := inc.Tree()
		// Find a non-tree edge to delete: any edge (u,v) with parent[v]!=u.
		var del Batch
		dir.Edges(func(u, v NodeID, w int64) {
			if del == nil && tr.Parent[v] != u {
				del = Batch{{Kind: DeleteEdge, From: u, To: v}}
			}
		})
		if del == nil {
			t.Fatal("no non-tree edge found")
		}
		if got := inc.Apply(del); got != 0 {
			t.Errorf("IncDFS/non-tree delete replayed %d intervals, want 0", got)
		}
	}
	{
		// BC on a graph of two equal components: updating one must not
		// revisit the other.
		two := NewGraph(2*n, false)
		und.Edges(func(u, v NodeID, w int64) {
			two.InsertEdge(u, v, w)
			two.InsertEdge(u+NodeID(n), v+NodeID(n), w)
		})
		inc := NewIncBC(two)
		got := inc.Apply(delUnd) // touches the first copy only
		if got > n+1 {
			t.Errorf("IncBC: unit update revisited %d nodes across component boundary", got)
		}
		if !inc.Result().Equivalent(bc.Run(inc.Graph())) {
			t.Error("IncBC result wrong")
		}
	}
}
