// Command incbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	incbench -exp all                 # every experiment at default scale
//	incbench -exp exp2 -class sssp    # one figure family
//	incbench -exp exp1 -scale 0.5     # smaller stand-ins
//	incbench -exp exp2 -json out.json # machine-readable results alongside tables
//	incbench -exp exp2 -trace t.json  # per-experiment flight recording (Perfetto)
//	incbench -diff base.json new.json # perf-regression gate between two reports
//
// With -json, every measured batch-vs-incremental comparison is also
// collected as a structured bench.Result, and the run is written as one
// JSON document carrying the run parameters (seed, scale, Go version)
// next to the results — the format CI archives and perf diffs consume.
// With -trace, each experiment is recorded as a span in Chrome
// trace_event JSON, loadable in Perfetto to see where a long -exp all
// run spends its time.
//
// With -diff, no experiments run: the two reports (a committed baseline
// such as BENCH_baseline.json, and a freshly generated one) are compared
// measurement by measurement, and the process exits 1 when any repair's
// throughput dropped — or its work-ledger boundedness quotient inflated —
// by more than -tolerance (default 15%). CI wires this as the
// perf-regression smoke gate; see EXPERIMENTS.md for regenerating the
// baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"incgraph/internal/bench"
	"incgraph/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|exp1|exp2|exp2types|exp3|exp4|aff|ablation|datasets|extensions|scaling|all")
		class     = flag.String("class", "all", "query class for exp2: sssp|cc|sim|lcc|dfs|all")
		scale     = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed      = flag.Int64("seed", 1, "workload seed")
		jsonOut   = flag.String("json", "", "write machine-readable results to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event recording of the run to this file")
		diffBase  = flag.String("diff", "", "compare this baseline report against the report named by the positional arg and exit")
		tolerance = flag.Float64("tolerance", 0.15, "relative regression tolerance for -diff (0.15 = 15%)")
	)
	flag.Parse()
	if *diffBase != "" {
		os.Exit(runDiff(*diffBase, flag.Args(), *tolerance))
	}
	cfg := bench.Config{Seed: *seed, Scale: *scale, Out: os.Stdout}

	rep := bench.Report{
		Schema:     bench.Schema,
		Experiment: *exp,
		Class:      *class,
		Seed:       *seed,
		Scale:      *scale,
		GoVersion:  runtime.Version(),
		UnixTime:   time.Now().Unix(),
		Results:    []bench.Result{},
	}
	if *jsonOut != "" {
		cfg.Report = func(r bench.Result) { rep.Results = append(rep.Results, r) }
	}

	var rec *trace.Recorder
	var track int32
	if *traceOut != "" {
		// Unbounded for practical purposes: a full -exp all run emits a
		// few dozen experiment spans, far below this ring.
		rec = trace.NewRecorder(4096)
		track = rec.Track("incbench")
	}

	run := func(name string, f func(bench.Config)) {
		start := time.Now()
		var sp trace.Span
		if rec != nil {
			sp = rec.Begin(name, "bench", track)
		}
		f(cfg)
		if rec != nil {
			sp.End()
		}
		fmt.Printf("-- %s done in %.1fs --\n", name, time.Since(start).Seconds())
	}
	exp2 := func() {
		if *class == "sssp" || *class == "all" {
			run("exp2-sssp", bench.Exp2SSSP)
		}
		if *class == "cc" || *class == "all" {
			run("exp2-cc", bench.Exp2CC)
		}
		if *class == "sim" || *class == "all" {
			run("exp2-sim", bench.Exp2Sim)
		}
		if *class == "lcc" || *class == "all" {
			run("exp2-lcc", bench.Exp2LCC)
		}
		if *class == "dfs" || *class == "all" {
			run("exp2-dfs", bench.Exp2DFS)
		}
	}
	switch *exp {
	case "table1":
		run("table1", bench.Table1)
	case "exp1":
		run("exp1", bench.Exp1)
	case "exp2":
		exp2()
	case "exp2types":
		run("exp2types", bench.Exp2Types)
	case "exp3":
		run("exp3", bench.Exp3)
	case "exp4":
		run("exp4", bench.Exp4)
	case "aff":
		run("aff", bench.ExpAff)
	case "ablation":
		run("ablation", bench.ExpAblation)
	case "datasets":
		run("datasets", bench.ExpDatasets)
	case "extensions":
		run("extensions", bench.ExpExtensions)
	case "scaling":
		run("scaling", bench.ExpScaling)
	case "all":
		run("datasets", bench.ExpDatasets)
		run("table1", bench.Table1)
		run("exp1", bench.Exp1)
		exp2()
		run("exp2types", bench.Exp2Types)
		run("exp3", bench.Exp3)
		run("exp4", bench.Exp4)
		run("aff", bench.ExpAff)
		run("ablation", bench.ExpAblation)
		run("extensions", bench.ExpExtensions)
		run("scaling", bench.ExpScaling)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, rep); err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- wrote %d results to %s --\n", len(rep.Results), *jsonOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = rec.WriteTraceEvents(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- wrote trace to %s --\n", *traceOut)
	}
}

// runDiff implements -diff: parse both reports, compare, render, and
// translate the outcome into an exit code (0 pass, 1 regression, 2
// usage or parse error).
func runDiff(basePath string, args []string, tolerance float64) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: incbench -diff baseline.json current.json")
		return 2
	}
	base, err := bench.ReadReport(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
		return 2
	}
	cur, err := bench.ReadReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
		return 2
	}
	d, err := bench.Diff(base, cur, tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
		return 2
	}
	d.WriteText(os.Stdout)
	if d.Failed() {
		return 1
	}
	return 0
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
