// Command incbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	incbench -exp all                 # every experiment at default scale
//	incbench -exp exp2 -class sssp    # one figure family
//	incbench -exp exp1 -scale 0.5     # smaller stand-ins
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"incgraph/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1|exp1|exp2|exp2types|exp3|exp4|aff|ablation|datasets|extensions|all")
		class = flag.String("class", "all", "query class for exp2: sssp|cc|sim|lcc|dfs|all")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	cfg := bench.Config{Seed: *seed, Scale: *scale, Out: os.Stdout}

	run := func(name string, f func(bench.Config)) {
		start := time.Now()
		f(cfg)
		fmt.Printf("-- %s done in %.1fs --\n", name, time.Since(start).Seconds())
	}
	exp2 := func() {
		if *class == "sssp" || *class == "all" {
			run("exp2-sssp", bench.Exp2SSSP)
		}
		if *class == "cc" || *class == "all" {
			run("exp2-cc", bench.Exp2CC)
		}
		if *class == "sim" || *class == "all" {
			run("exp2-sim", bench.Exp2Sim)
		}
		if *class == "lcc" || *class == "all" {
			run("exp2-lcc", bench.Exp2LCC)
		}
		if *class == "dfs" || *class == "all" {
			run("exp2-dfs", bench.Exp2DFS)
		}
	}
	switch *exp {
	case "table1":
		run("table1", bench.Table1)
	case "exp1":
		run("exp1", bench.Exp1)
	case "exp2":
		exp2()
	case "exp2types":
		run("exp2types", bench.Exp2Types)
	case "exp3":
		run("exp3", bench.Exp3)
	case "exp4":
		run("exp4", bench.Exp4)
	case "aff":
		run("aff", bench.ExpAff)
	case "ablation":
		run("ablation", bench.ExpAblation)
	case "datasets":
		run("datasets", bench.ExpDatasets)
	case "extensions":
		run("extensions", bench.ExpExtensions)
	case "all":
		run("datasets", bench.ExpDatasets)
		run("table1", bench.Table1)
		run("exp1", bench.Exp1)
		exp2()
		run("exp2types", bench.Exp2Types)
		run("exp3", bench.Exp3)
		run("exp4", bench.Exp4)
		run("aff", bench.ExpAff)
		run("ablation", bench.ExpAblation)
		run("extensions", bench.ExpExtensions)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
