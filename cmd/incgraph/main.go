// Command incgraph runs a graph query batch-first and then maintains it
// incrementally over update batches — the library's algorithms as a
// command-line tool.
//
// Usage:
//
//	incgraph -algo sssp -graph g.txt -src 0 [-updates u.txt] [-after]
//	incgraph -algo cc|dfs|lcc|bc -graph g.txt [-updates u.txt]
//	incgraph -algo sim -graph g.txt -pattern q.txt [-updates u.txt]
//	incgraph -gen powerlaw -nodes 1000 -deg 8 [-directed] > g.txt
//	incgraph -genupdates 100 -graph g.txt > u.txt
//
// Graphs and update batches use the text formats of the graph package
// (labeled edge lists; "+ u v w" / "- u v" update lines). With -updates,
// the tool prints both the initial answer and the incrementally
// maintained answer after applying the batch, along with timings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"incgraph"
)

// validAlgos names the supported query classes, the values -algo accepts.
var validAlgos = map[string]bool{
	"sssp": true, "cc": true, "sim": true, "dfs": true, "lcc": true, "bc": true,
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is main with its environment made explicit, so tests can drive
// the CLI end to end. Exit codes: 0 ok, 1 runtime error, 2 usage error.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("incgraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algo      = fs.String("algo", "", "query class: sssp|cc|sim|dfs|lcc|bc")
		graphPath = fs.String("graph", "", "graph file (labeled edge-list format)")
		pattern   = fs.String("pattern", "", "pattern graph file (sim only)")
		updates   = fs.String("updates", "", "update batch file to apply incrementally")
		src       = fs.Int("src", 0, "source node (sssp only)")
		quiet     = fs.Bool("quiet", false, "print timings only, not per-node results")
		stats     = fs.Bool("stats", false, "print the incremental run's cost counters and |AFF|/|ΔG| ratio")

		genKind    = fs.String("gen", "", "emit a synthetic graph instead: powerlaw|grid")
		genNodes   = fs.Int("nodes", 1000, "synthetic node count")
		genDeg     = fs.Int("deg", 8, "synthetic average degree")
		genDirect  = fs.Bool("directed", false, "synthetic graph directed")
		genSeed    = fs.Int64("seed", 1, "synthetic seed")
		genUpdates = fs.Int("genupdates", 0, "emit N random updates for -graph instead")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "incgraph:", err)
		return 1
	}

	if *genKind != "" {
		if err := emitGraph(stdout, *genKind, *genSeed, *genNodes, *genDeg, *genDirect); err != nil {
			return fatal(err)
		}
		return 0
	}
	if *genUpdates > 0 {
		g, err := loadGraph(*graphPath)
		if err != nil {
			return fatal(err)
		}
		b := incgraph.RandomUpdates(*genSeed, g, *genUpdates, 0.5)
		if err := incgraph.WriteBatch(stdout, b); err != nil {
			return fatal(err)
		}
		return 0
	}

	// Fail fast on a missing or unknown query class, before any input is
	// loaded: this is a usage error, not a runtime one.
	if !validAlgos[*algo] {
		if *algo == "" {
			fmt.Fprintln(stderr, "incgraph: missing -algo")
		} else {
			fmt.Fprintf(stderr, "incgraph: unknown -algo %q\n", *algo)
		}
		fmt.Fprintln(stderr, "usage: incgraph -algo sssp|cc|sim|dfs|lcc|bc -graph g.txt [-updates u.txt] [options]")
		fs.PrintDefaults()
		return 2
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return fatal(err)
	}
	var delta incgraph.Batch
	if *updates != "" {
		f, err := os.Open(*updates)
		if err != nil {
			return fatal(err)
		}
		delta, err = incgraph.ReadBatch(f)
		f.Close()
		if err != nil {
			return fatal(err)
		}
		if err := delta.Validate(g.NumNodes()); err != nil {
			return fatal(fmt.Errorf("%s: %v", *updates, err))
		}
	}
	if err := run(stdout, *algo, g, *pattern, incgraph.NodeID(*src), delta, *quiet, *stats); err != nil {
		return fatal(err)
	}
	return 0
}

func loadGraph(path string) (*incgraph.Graph, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -graph")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return incgraph.ReadGraph(f)
}

func emitGraph(w io.Writer, kind string, seed int64, nodes, deg int, directed bool) error {
	var g *incgraph.Graph
	switch kind {
	case "powerlaw":
		g = incgraph.PowerLawGraph(seed, nodes, deg, directed)
	case "grid":
		side := 1
		for side*side < nodes {
			side++
		}
		g = incgraph.GridGraph(seed, side, side)
	default:
		return fmt.Errorf("unknown generator %q", kind)
	}
	_, err := g.WriteTo(w)
	return err
}

// run executes one query class end to end, printing the initial answer,
// applying the updates incrementally, and printing the maintained answer.
func run(w io.Writer, algo string, g *incgraph.Graph, patternPath string, src incgraph.NodeID, delta incgraph.Batch, quiet, stats bool) error {
	report := func(phase string, d time.Duration) {
		fmt.Fprintf(w, "%-12s %v\n", phase+":", d.Round(time.Microsecond))
	}
	// reportCost prints the counters the paper's boundedness claim is
	// about: |AFF| against |ΔG|, and — for classes on the fixpoint
	// engine — the inspection count and the h/resume time split.
	reportCost := func(aff int, st *incgraph.FixpointStats) {
		if !stats || len(delta) == 0 {
			return
		}
		fmt.Fprintf(w, "%-12s |AFF|=%d |ΔG|=%d ratio=%.3f\n", "affected:", aff, len(delta), float64(aff)/float64(len(delta)))
		if st != nil {
			fmt.Fprintf(w, "%-12s %d (%.1f per update)\n", "inspected:", st.Inspected(), float64(st.Inspected())/float64(len(delta)))
			fmt.Fprintf(w, "%-12s %v / %v\n", "h/resume:",
				time.Duration(st.HSeconds*float64(time.Second)).Round(time.Microsecond),
				time.Duration(st.ResumeSeconds*float64(time.Second)).Round(time.Microsecond))
		}
	}
	switch algo {
	case "sssp":
		t0 := time.Now()
		inc := incgraph.NewIncSSSP(g, src)
		report("batch", time.Since(t0))
		if len(delta) > 0 {
			t0 = time.Now()
			aff := inc.Apply(delta)
			report("incremental", time.Since(t0))
			st := inc.Stats()
			reportCost(aff, &st)
		}
		if !quiet {
			for v, d := range inc.Dist() {
				if d >= incgraph.Infinity {
					fmt.Fprintf(w, "%d inf\n", v)
				} else {
					fmt.Fprintf(w, "%d %d\n", v, d)
				}
			}
		}
	case "cc":
		t0 := time.Now()
		inc := incgraph.NewIncCC(g)
		report("batch", time.Since(t0))
		if len(delta) > 0 {
			t0 = time.Now()
			aff := inc.Apply(delta)
			report("incremental", time.Since(t0))
			st := inc.Stats()
			reportCost(aff, &st)
		}
		if !quiet {
			for v, l := range inc.Labels() {
				fmt.Fprintf(w, "%d %d\n", v, l)
			}
		}
	case "sim":
		if patternPath == "" {
			return fmt.Errorf("sim needs -pattern")
		}
		f, err := os.Open(patternPath)
		if err != nil {
			return err
		}
		q, err := incgraph.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
		t0 := time.Now()
		inc := incgraph.NewIncSim(g, q)
		report("batch", time.Since(t0))
		if len(delta) > 0 {
			t0 = time.Now()
			aff := inc.Apply(delta)
			report("incremental", time.Since(t0))
			st := inc.Stats()
			reportCost(aff, &st)
		}
		r := inc.Relation()
		fmt.Fprintf(w, "matches: %d\n", r.Count())
		if !quiet {
			for v := 0; v < g.NumNodes(); v++ {
				for u := 0; u < q.NumNodes(); u++ {
					if r.Match(incgraph.NodeID(v), incgraph.NodeID(u)) {
						fmt.Fprintf(w, "%d ~ %d\n", v, u)
					}
				}
			}
		}
	case "dfs":
		t0 := time.Now()
		inc := incgraph.NewIncDFS(g)
		report("batch", time.Since(t0))
		if len(delta) > 0 {
			t0 = time.Now()
			aff := inc.Apply(delta)
			report("incremental", time.Since(t0))
			reportCost(aff, nil)
		}
		if !quiet {
			tr := inc.Tree()
			for v := range tr.First {
				fmt.Fprintf(w, "%d [%d,%d] parent %d\n", v, tr.First[v], tr.Last[v], tr.Parent[v])
			}
		}
	case "lcc":
		if g.Directed() {
			return fmt.Errorf("lcc needs an undirected graph")
		}
		t0 := time.Now()
		inc := incgraph.NewIncLCC(g)
		report("batch", time.Since(t0))
		if len(delta) > 0 {
			t0 = time.Now()
			aff := inc.Apply(delta)
			report("incremental", time.Since(t0))
			reportCost(aff, nil)
		}
		if !quiet {
			for v := 0; v < g.NumNodes(); v++ {
				fmt.Fprintf(w, "%d %.6f\n", v, inc.Result().Gamma(incgraph.NodeID(v)))
			}
		}
	case "bc":
		if g.Directed() {
			return fmt.Errorf("bc needs an undirected graph")
		}
		t0 := time.Now()
		inc := incgraph.NewIncBC(g)
		report("batch", time.Since(t0))
		if len(delta) > 0 {
			t0 = time.Now()
			aff := inc.Apply(delta)
			report("incremental", time.Since(t0))
			reportCost(aff, nil)
		}
		fmt.Fprintf(w, "biconnected components: %d\n", inc.Result().NumComps())
		if !quiet {
			for v, a := range inc.Result().Articulation {
				if a {
					fmt.Fprintf(w, "articulation %d\n", v)
				}
			}
		}
	default:
		return fmt.Errorf("unknown or missing -algo %q", algo)
	}
	return nil
}
