package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incgraph"
)

func writeGraphFile(t *testing.T, g *incgraph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func demoGraph(directed bool) *incgraph.Graph {
	g := incgraph.NewGraph(4, directed)
	g.InsertEdge(0, 1, 2)
	g.InsertEdge(1, 2, 2)
	g.InsertEdge(2, 3, 2)
	return g
}

func TestRunSSSP(t *testing.T) {
	g := demoGraph(true)
	var buf bytes.Buffer
	if err := run(&buf, "sssp", g, "", 0, nil, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "batch:") || !strings.Contains(out, "3 6") {
		t.Fatalf("output missing pieces:\n%s", out)
	}
}

func TestRunSSSPWithUpdates(t *testing.T) {
	g := demoGraph(true)
	delta := incgraph.Batch{{Kind: incgraph.InsertEdge, From: 0, To: 3, W: 1}}
	var buf bytes.Buffer
	if err := run(&buf, "sssp", g, "", 0, delta, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incremental:") || !strings.Contains(buf.String(), "3 1") {
		t.Fatalf("update not applied:\n%s", buf.String())
	}
	// -stats surfaces the boundedness counters for engine-based classes.
	for _, want := range []string{"affected:", "|ΔG|=1", "inspected:", "h/resume:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in -stats output:\n%s", want, buf.String())
		}
	}
}

func TestRunCCDFS(t *testing.T) {
	for _, algo := range []string{"cc", "dfs"} {
		var buf bytes.Buffer
		if err := run(&buf, algo, demoGraph(algo == "dfs"), "", 0, nil, false, false); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", algo)
		}
	}
}

func TestRunLCCBCRejectDirected(t *testing.T) {
	for _, algo := range []string{"lcc", "bc"} {
		var buf bytes.Buffer
		if err := run(&buf, algo, demoGraph(true), "", 0, nil, true, false); err == nil {
			t.Fatalf("%s accepted a directed graph", algo)
		}
	}
}

func TestRunLCCBCUndirected(t *testing.T) {
	g := demoGraph(false)
	g.InsertEdge(0, 2, 1) // close a triangle
	for _, algo := range []string{"lcc", "bc"} {
		var buf bytes.Buffer
		if err := run(&buf, algo, g.Clone(), "", 0, nil, false, false); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunSimNeedsPattern(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "sim", demoGraph(true), "", 0, nil, true, false); err == nil {
		t.Fatal("sim without pattern accepted")
	}
}

func TestRunSimWithPattern(t *testing.T) {
	q := incgraph.NewGraph(2, true)
	q.InsertEdge(0, 1, 1)
	qPath := writeGraphFile(t, q)
	var buf bytes.Buffer
	if err := run(&buf, "sim", demoGraph(true), qPath, 0, nil, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matches:") {
		t.Fatalf("no match count:\n%s", buf.String())
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", demoGraph(true), "", 0, nil, true, false); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

func writeTextFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLI drives the binary entry point end to end: usage errors (missing
// or unknown -algo) must exit 2 with a usage message, runtime errors must
// exit 1, and valid invocations must exit 0.
func TestCLI(t *testing.T) {
	graphPath := writeGraphFile(t, demoGraph(true))
	goodUpdates := writeTextFile(t, "u.txt", "+ 0 2 1\n- 1 2\n")
	rangeUpdates := writeTextFile(t, "bad.txt", "+ 0 9 1\n")
	malformed := writeTextFile(t, "mal.txt", "+ 0 1 1\nnot an update\n")

	cases := []struct {
		name     string
		args     []string
		exit     int
		inStderr string // substring required in stderr, "" to skip
		inStdout string // substring required in stdout, "" to skip
	}{
		{
			name:     "missing algo",
			args:     []string{"-graph", graphPath},
			exit:     2,
			inStderr: "missing -algo",
		},
		{
			name:     "missing algo prints usage",
			args:     []string{"-graph", graphPath},
			exit:     2,
			inStderr: "usage:",
		},
		{
			name:     "unknown algo",
			args:     []string{"-algo", "pagerank", "-graph", graphPath},
			exit:     2,
			inStderr: `unknown -algo "pagerank"`,
		},
		{
			name:     "unknown algo prints usage",
			args:     []string{"-algo", "pagerank", "-graph", graphPath},
			exit:     2,
			inStderr: "usage:",
		},
		{
			name:     "sssp runs",
			args:     []string{"-algo", "sssp", "-graph", graphPath},
			exit:     0,
			inStdout: "3 6", // node 3 at distance 2+2+2
		},
		{
			name:     "sssp with updates",
			args:     []string{"-algo", "sssp", "-graph", graphPath, "-updates", goodUpdates},
			exit:     0,
			inStdout: "incremental",
		},
		{
			name:     "missing graph",
			args:     []string{"-algo", "cc"},
			exit:     1,
			inStderr: "missing -graph",
		},
		{
			name:     "out-of-range update rejected",
			args:     []string{"-algo", "sssp", "-graph", graphPath, "-updates", rangeUpdates},
			exit:     1,
			inStderr: "out of range",
		},
		{
			name:     "malformed update line numbered",
			args:     []string{"-algo", "sssp", "-graph", graphPath, "-updates", malformed},
			exit:     1,
			inStderr: "line 2",
		},
		{
			name:     "bad flag",
			args:     []string{"-bogus"},
			exit:     2,
			inStderr: "flag provided but not defined",
		},
		{
			name:     "gen powerlaw",
			args:     []string{"-gen", "powerlaw", "-nodes", "20", "-deg", "3"},
			exit:     0,
			inStdout: "graph undirected 20",
		},
		{
			name:     "gen unknown",
			args:     []string{"-gen", "mystery"},
			exit:     1,
			inStderr: "unknown generator",
		},
		{
			name:     "genupdates needs graph",
			args:     []string{"-genupdates", "5"},
			exit:     1,
			inStderr: "missing -graph",
		},
		{
			name:     "genupdates runs",
			args:     []string{"-genupdates", "5", "-graph", graphPath},
			exit:     0,
			inStdout: " ",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := cliMain(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("exit %d, want %d (stderr: %s)", got, tc.exit, stderr.String())
			}
			if tc.inStderr != "" && !strings.Contains(stderr.String(), tc.inStderr) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tc.inStderr)
			}
			if tc.inStdout != "" && !strings.Contains(stdout.String(), tc.inStdout) {
				t.Fatalf("stdout %q does not contain %q", stdout.String(), tc.inStdout)
			}
		})
	}
}

func TestLoadGraph(t *testing.T) {
	path := writeGraphFile(t, demoGraph(true))
	g, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if _, err := loadGraph(""); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
