package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incgraph"
)

func writeGraphFile(t *testing.T, g *incgraph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func demoGraph(directed bool) *incgraph.Graph {
	g := incgraph.NewGraph(4, directed)
	g.InsertEdge(0, 1, 2)
	g.InsertEdge(1, 2, 2)
	g.InsertEdge(2, 3, 2)
	return g
}

func TestRunSSSP(t *testing.T) {
	g := demoGraph(true)
	var buf bytes.Buffer
	if err := run(&buf, "sssp", g, "", 0, nil, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "batch:") || !strings.Contains(out, "3 6") {
		t.Fatalf("output missing pieces:\n%s", out)
	}
}

func TestRunSSSPWithUpdates(t *testing.T) {
	g := demoGraph(true)
	delta := incgraph.Batch{{Kind: incgraph.InsertEdge, From: 0, To: 3, W: 1}}
	var buf bytes.Buffer
	if err := run(&buf, "sssp", g, "", 0, delta, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incremental:") || !strings.Contains(buf.String(), "3 1") {
		t.Fatalf("update not applied:\n%s", buf.String())
	}
}

func TestRunCCDFS(t *testing.T) {
	for _, algo := range []string{"cc", "dfs"} {
		var buf bytes.Buffer
		if err := run(&buf, algo, demoGraph(algo == "dfs"), "", 0, nil, false); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", algo)
		}
	}
}

func TestRunLCCBCRejectDirected(t *testing.T) {
	for _, algo := range []string{"lcc", "bc"} {
		var buf bytes.Buffer
		if err := run(&buf, algo, demoGraph(true), "", 0, nil, true); err == nil {
			t.Fatalf("%s accepted a directed graph", algo)
		}
	}
}

func TestRunLCCBCUndirected(t *testing.T) {
	g := demoGraph(false)
	g.InsertEdge(0, 2, 1) // close a triangle
	for _, algo := range []string{"lcc", "bc"} {
		var buf bytes.Buffer
		if err := run(&buf, algo, g.Clone(), "", 0, nil, false); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunSimNeedsPattern(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "sim", demoGraph(true), "", 0, nil, true); err == nil {
		t.Fatal("sim without pattern accepted")
	}
}

func TestRunSimWithPattern(t *testing.T) {
	q := incgraph.NewGraph(2, true)
	q.InsertEdge(0, 1, 1)
	qPath := writeGraphFile(t, q)
	var buf bytes.Buffer
	if err := run(&buf, "sim", demoGraph(true), qPath, 0, nil, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matches:") {
		t.Fatalf("no match count:\n%s", buf.String())
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", demoGraph(true), "", 0, nil, true); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

func TestLoadGraph(t *testing.T) {
	path := writeGraphFile(t, demoGraph(true))
	g, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if _, err := loadGraph(""); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
