package main

// Crash-recovery end-to-end test: build the real daemon binary, ingest
// over HTTP, SIGKILL it mid-ingest, and require the restarted daemon's
// answers to be equal to a from-scratch batch recompute over the durable
// prefix — the WAL contents as they survived the kill, torn tail and
// all. A second cycle exercises the checkpoint path: SIGTERM triggers
// checkpoint-on-drain, and a third start must recover from the
// checkpoint with an empty replay tail.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"incgraph"
	"incgraph/internal/wal"
)

const (
	crashSeed  = 42
	crashNodes = 400
	crashDeg   = 6
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "incgraphd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startDaemon(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-gen", "powerlaw", "-seed", fmt.Sprint(crashSeed),
		"-nodes", fmt.Sprint(crashNodes), "-deg", fmt.Sprint(crashDeg), "-directed",
		"-algos", "sssp,cc", "-src", "0",
		"-data-dir", dataDir, "-checkpoint-every", "0", "-fsync", "always",
		"-listen", addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon on %s never became healthy: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func postBatch(addr string, b incgraph.Batch) (int, error) {
	var buf bytes.Buffer
	if err := incgraph.WriteBatch(&buf, b); err != nil {
		return 0, err
	}
	resp, err := http.Post("http://"+addr+"/update?wait=1", "text/plain", &buf)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

type queryView struct {
	Epoch uint64 `json:"epoch"`
	Data  struct {
		Dist   []int64 `json:"dist"`
		Labels []int64 `json:"labels"`
	} `json:"data"`
}

func query(t *testing.T, addr, algo string) queryView {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/query/" + algo)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v queryView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// durableOracle reads the data directory the way recovery does —
// checkpoint graphs (if any) plus every whole WAL record — and returns
// from-scratch batch answers over that durable prefix.
func durableOracle(t *testing.T, dataDir string) (dist, labels []int64, rawUpdates uint64) {
	t.Helper()
	rec, err := incgraph.LoadRecovery(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	gFor := func(algo string) *incgraph.Graph {
		if ra, ok := rec.Algos[algo]; ok {
			return ra.Graph
		}
		return incgraph.PowerLawGraph(crashSeed, crashNodes, crashDeg, true)
	}
	gs, gc := gFor("sssp"), gFor("cc")
	// The epoch a recovered host reports is the checkpoint's stream
	// position plus the replayed tail.
	rawUpdates = rec.Algos["sssp"].Epoch
	if _, err := wal.Replay(dataDir, rec.ReplayFrom, func(r wal.Record) error {
		gs.Apply(r.Batch.Net(true))
		gc.Apply(r.Batch.Net(true))
		rawUpdates += uint64(len(r.Batch))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return incgraph.SSSP(gs, 0), incgraph.ConnectedComponents(gc), rawUpdates
}

func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	base := incgraph.PowerLawGraph(crashSeed, crashNodes, crashDeg, true)

	// ---- Cycle 1: ingest, then SIGKILL mid-flood. ----
	addr := freeAddr(t)
	proc := startDaemon(t, bin, addr, dataDir)
	for i := 0; i < 40; i++ {
		b := incgraph.RandomUpdates(int64(i+1), base, 5, 0.7)
		if code, err := postBatch(addr, b); err != nil || code != http.StatusOK {
			t.Fatalf("post %d: code=%d err=%v", i, code, err)
		}
	}
	// Flood without waiting for acks so the kill lands mid-ingest; the
	// durable prefix is whatever reached the WAL.
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		for i := 0; ; i++ {
			b := incgraph.RandomUpdates(int64(1000+i), base, 5, 0.7)
			if _, err := postBatch(addr, b); err != nil {
				return // daemon killed
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no checkpoint
		t.Fatal(err)
	}
	proc.Wait()
	<-floodDone

	wantDist, wantLabels, rawUpdates := durableOracle(t, dataDir)
	if rawUpdates < 200 {
		t.Fatalf("only %d raw updates survived; ingest never ran?", rawUpdates)
	}

	// ---- Cycle 2: restart, answers must equal the recompute oracle. ----
	addr = freeAddr(t)
	proc = startDaemon(t, bin, addr, dataDir)
	sv, cv := query(t, addr, "sssp"), query(t, addr, "cc")
	if !reflect.DeepEqual(sv.Data.Dist, wantDist) {
		t.Fatal("recovered sssp distances differ from from-scratch recompute over the durable prefix")
	}
	if !reflect.DeepEqual(cv.Data.Labels, wantLabels) {
		t.Fatal("recovered cc labels differ from from-scratch recompute over the durable prefix")
	}
	if sv.Epoch != rawUpdates {
		t.Fatalf("recovered epoch %d, want %d (durable raw updates)", sv.Epoch, rawUpdates)
	}

	// A few more durable writes, then SIGTERM: checkpoint-on-drain.
	for i := 0; i < 10; i++ {
		b := incgraph.RandomUpdates(int64(5000+i), base, 5, 0.7)
		if code, err := postBatch(addr, b); err != nil || code != http.StatusOK {
			t.Fatalf("post after recovery: code=%d err=%v", code, err)
		}
	}
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly on SIGTERM: %v", err)
	}
	ents, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	var haveCkpt bool
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			haveCkpt = true
		}
	}
	if !haveCkpt {
		t.Fatal("SIGTERM shutdown left no checkpoint (checkpoint-on-drain missing)")
	}

	// ---- Cycle 3: recover from the checkpoint (empty replay tail). ----
	wantDist, wantLabels, rawUpdates = durableOracle(t, dataDir)
	addr = freeAddr(t)
	proc = startDaemon(t, bin, addr, dataDir)
	sv, cv = query(t, addr, "sssp"), query(t, addr, "cc")
	if !reflect.DeepEqual(sv.Data.Dist, wantDist) {
		t.Fatal("checkpoint-recovered sssp distances differ from recompute")
	}
	if !reflect.DeepEqual(cv.Data.Labels, wantLabels) {
		t.Fatal("checkpoint-recovered cc labels differ from recompute")
	}
	if sv.Epoch != rawUpdates {
		t.Fatalf("checkpoint-recovered epoch %d, want %d", sv.Epoch, rawUpdates)
	}
	proc.Process.Signal(syscall.SIGTERM)
	proc.Wait()
}
