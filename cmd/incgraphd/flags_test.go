package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// renderFlagTable renders the daemon's flag definitions as the markdown
// table README.md carries, rows in flag.VisitAll (lexicographic) order.
func renderFlagTable(fs *flag.FlagSet) string {
	var b strings.Builder
	b.WriteString("| Flag | Default | Description |\n")
	b.WriteString("|---|---|---|\n")
	fs.VisitAll(func(f *flag.Flag) {
		def := ""
		if f.DefValue != "" {
			def = "`" + f.DefValue + "`"
		}
		usage := strings.ReplaceAll(f.Usage, "|", "\\|")
		b.WriteString("| `-" + f.Name + "` | " + def + " | " + usage + " |\n")
	})
	return strings.TrimSpace(b.String())
}

// TestReadmeFlagTable diffs README.md's incgraphd flag reference against
// the live flag definitions, so the documented table cannot drift from
// the binary: adding, renaming, or re-defaulting a flag without updating
// the README fails this test (and vice versa).
func TestReadmeFlagTable(t *testing.T) {
	fs := flag.NewFlagSet("incgraphd", flag.ContinueOnError)
	newFlags(fs)
	want := renderFlagTable(fs)

	raw, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- incgraphd-flags:begin -->", "<!-- incgraphd-flags:end -->"
	s := string(raw)
	i, j := strings.Index(s, begin), strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md is missing the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(s[i+len(begin) : j])
	if got != want {
		t.Fatalf("README.md flag table is out of date.\n--- want (generated from newFlags) ---\n%s\n--- got (README.md) ---\n%s", want, got)
	}
}

// TestFlagDefaults spot-checks defaults the serving docs promise.
func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("incgraphd", flag.ContinueOnError)
	c := newFlags(fs)
	if err := fs.Parse([]string{"-workers", "4", "-algos", "sssp"}); err != nil {
		t.Fatal(err)
	}
	if c.workers != 4 || c.algos != "sssp" {
		t.Fatalf("parsed workers=%d algos=%q", c.workers, c.algos)
	}
	if c.listen != ":8356" || c.maxBatch != 256 || c.queue != 1024 {
		t.Fatalf("defaults drifted: listen=%q max-batch=%d queue=%d", c.listen, c.maxBatch, c.queue)
	}
	if fs.Lookup("workers").DefValue != "0" {
		t.Fatalf("workers default %q, want 0 (sequential)", fs.Lookup("workers").DefValue)
	}
}

// TestValidateFlags is the table-driven contract for conflicting-mode
// rejection: combinations that parse but cannot mean anything must be
// refused before any graph is loaded or listener bound.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // "" means valid
	}{
		{"defaults", nil, ""},
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"negative shards", []string{"-shards", "-2"}, "-shards"},
		{"shard-id without shards", []string{"-shard-id", "0"}, "set together"},
		{"shards without shard-id", []string{"-shards", "2"}, "set together"},
		{"shard-id out of range", []string{"-shard-id", "2", "-shards", "2"}, "out of range"},
		{"valid shard mode", []string{"-shard-id", "1", "-shards", "2"}, ""},
		{"replica without data-dir", []string{"-replica-of", "http://primary:8356"}, "-data-dir"},
		{"valid replica", []string{"-replica-of", "http://primary:8356", "-data-dir", "/tmp/r"}, ""},
		{"sharded replica", []string{"-replica-of", "http://p:1", "-data-dir", "/tmp/r", "-shard-id", "0", "-shards", "2"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("incgraphd", flag.ContinueOnError)
			c := newFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := validateFlags(c)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
