package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// renderFlagTable renders the daemon's flag definitions as the markdown
// table README.md carries, rows in flag.VisitAll (lexicographic) order.
func renderFlagTable(fs *flag.FlagSet) string {
	var b strings.Builder
	b.WriteString("| Flag | Default | Description |\n")
	b.WriteString("|---|---|---|\n")
	fs.VisitAll(func(f *flag.Flag) {
		def := ""
		if f.DefValue != "" {
			def = "`" + f.DefValue + "`"
		}
		usage := strings.ReplaceAll(f.Usage, "|", "\\|")
		b.WriteString("| `-" + f.Name + "` | " + def + " | " + usage + " |\n")
	})
	return strings.TrimSpace(b.String())
}

// TestReadmeFlagTable diffs README.md's incgraphd flag reference against
// the live flag definitions, so the documented table cannot drift from
// the binary: adding, renaming, or re-defaulting a flag without updating
// the README fails this test (and vice versa).
func TestReadmeFlagTable(t *testing.T) {
	fs := flag.NewFlagSet("incgraphd", flag.ContinueOnError)
	newFlags(fs)
	want := renderFlagTable(fs)

	raw, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- incgraphd-flags:begin -->", "<!-- incgraphd-flags:end -->"
	s := string(raw)
	i, j := strings.Index(s, begin), strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md is missing the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(s[i+len(begin) : j])
	if got != want {
		t.Fatalf("README.md flag table is out of date.\n--- want (generated from newFlags) ---\n%s\n--- got (README.md) ---\n%s", want, got)
	}
}

// TestFlagDefaults spot-checks defaults the serving docs promise.
func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("incgraphd", flag.ContinueOnError)
	c := newFlags(fs)
	if err := fs.Parse([]string{"-workers", "4", "-algos", "sssp"}); err != nil {
		t.Fatal(err)
	}
	if c.workers != 4 || c.algos != "sssp" {
		t.Fatalf("parsed workers=%d algos=%q", c.workers, c.algos)
	}
	if c.listen != ":8356" || c.maxBatch != 256 || c.queue != 1024 {
		t.Fatalf("defaults drifted: listen=%q max-batch=%d queue=%d", c.listen, c.maxBatch, c.queue)
	}
	if fs.Lookup("workers").DefValue != "0" {
		t.Fatalf("workers default %q, want 0 (sequential)", fs.Lookup("workers").DefValue)
	}
}
