// Command incgraphd is a resident incremental-graph service: it pays the
// batch fixpoint cost once at startup, then keeps the hosted query
// classes' answers current while ingesting a stream of update batches
// over HTTP — the serving setting where incrementalization pays off.
//
// Usage:
//
//	incgraphd -graph g.txt -algos sssp,cc [-src 0] [-listen :8356]
//	incgraphd -gen powerlaw -nodes 10000 -deg 8 -algos cc,lcc,bc
//	incgraphd -graph g.txt -algos sim -pattern q.txt
//	incgraphd -graph g.txt -algos cc -log-level debug -debug-addr :6060
//	incgraphd -graph g.txt -algos cc -access-log
//	incgraphd -graph g.txt -algos sssp,cc -data-dir /var/lib/incgraph
//	incgraphd -graph g.txt -algos sssp,cc -workers 4
//
// The full flag reference lives in README.md ("incgraphd flag
// reference"); a test diffs that table against the flag definitions here,
// so the two cannot drift.
//
// API:
//
//	POST /update[?algo=<name>][&wait=1]  batch text body ("+ u v w" / "- u v [w]")
//	GET  /query/{algo}                   current snapshot view (JSON)
//	GET  /stats                          per-maintainer serving counters (JSON)
//	GET  /metrics                        Prometheus text exposition
//	GET  /debug/applies[?algo=<name>]    recent apply trace events (JSON)
//	GET  /debug/trace                    flight recording, Chrome trace_event JSON
//	GET  /healthz                        liveness
//
// The daemon keeps a bounded flight recorder of spans — batch lifecycle
// (queue wait, coalesce, apply, publish) plus the fixpoint engine's h and
// resume phases with per-round events — dumped by GET /debug/trace in a
// format Perfetto loads directly. POST /update accepts a W3C traceparent
// header; the trace ID rides through the submission queue onto the apply
// and shows up in the spans, the debug log, and the access log, so one
// request can be followed end to end. -access-log turns on one slog line
// per HTTP request (method, path, status, duration, trace ID).
//
// With -debug-addr set, a second listener serves net/http/pprof profiles
// and expvar counters (/debug/pprof/, /debug/vars) — kept off the main
// listener so profiling endpoints are never exposed on the service port.
//
// Each hosted maintainer owns a private copy of the graph behind a
// single-writer apply loop; updates are validated, coalesced and batched
// before one Apply call. On SIGINT/SIGTERM the daemon stops accepting
// requests, drains every apply queue, and exits.
//
// With -workers n (n >= 2), maintainers that support the parallel
// execution mode (sssp, cc) partition each repair round's frontier
// across n workers; results are deterministic and identical to the
// sequential mode, and /stats reports the per-host worker counters.
// Other classes ignore the flag and stay sequential.
//
// With -data-dir set the daemon is durable: every accepted update batch
// is write-ahead-logged (fsync policy per -fsync) before it is
// acknowledged, and checkpoints of each maintainer's graph + incremental
// state are taken every -checkpoint-every ingests and on SIGTERM
// (checkpoint-on-drain). On startup the daemon recovers: it restores the
// latest checkpoint, replays the WAL tail through the incremental Apply
// path, and (unless -verify-recovery=false) verifies the replayed answers
// against a batch recompute, repairing and counting any divergence. A
// kill -9 at any moment therefore loses nothing acknowledged under
// -fsync always, and restart reproduces exactly the from-scratch answers
// over the durable prefix.
package main

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on the -debug-addr listener
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"incgraph"
)

// cliFlags holds every incgraphd flag value. newFlags registers the
// definitions on a caller-supplied FlagSet, so tests instantiate exactly
// the flag set main parses — the README flag-reference test diffs its
// table against these definitions.
type cliFlags struct {
	listen    string
	graphPath string
	algos     string
	src       int
	pattern   string

	genKind   string
	genNodes  int
	genDeg    int
	genDirect bool
	genSeed   int64

	maxBatch int
	maxWait  time.Duration
	queue    int
	workers  int

	logLevel  string
	debugAddr string
	accessLog bool

	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	ckptEvery     int
	verifyRec     bool
}

// newFlags defines the daemon's flags on fs and returns the struct their
// parsed values land in.
func newFlags(fs *flag.FlagSet) *cliFlags {
	c := &cliFlags{}
	fs.StringVar(&c.listen, "listen", ":8356", "HTTP listen address")
	fs.StringVar(&c.graphPath, "graph", "", "graph file (labeled edge-list format)")
	fs.StringVar(&c.algos, "algos", "", "comma-separated query classes to host: sssp|cc|sim|dfs|lcc|bc")
	fs.IntVar(&c.src, "src", 0, "source node (sssp)")
	fs.StringVar(&c.pattern, "pattern", "", "pattern graph file (sim)")

	fs.StringVar(&c.genKind, "gen", "", "host a synthetic graph instead of -graph: powerlaw|grid")
	fs.IntVar(&c.genNodes, "nodes", 1000, "synthetic node count")
	fs.IntVar(&c.genDeg, "deg", 8, "synthetic average degree")
	fs.BoolVar(&c.genDirect, "directed", false, "synthetic graph directed")
	fs.Int64Var(&c.genSeed, "seed", 1, "synthetic seed")

	fs.IntVar(&c.maxBatch, "max-batch", 256, "coalescing window: flush after this many updates")
	fs.DurationVar(&c.maxWait, "max-wait", 2*time.Millisecond, "coalescing window: flush after this long")
	fs.IntVar(&c.queue, "queue", 1024, "per-maintainer submission queue depth")
	fs.IntVar(&c.workers, "workers", 0, "partition repair rounds across this many workers (sssp, cc; 0 or 1: sequential)")

	fs.StringVar(&c.logLevel, "log-level", "info", "log verbosity: debug|info|warn|error (debug logs every apply)")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "optional second listener for pprof and expvar (e.g. :6060)")
	fs.BoolVar(&c.accessLog, "access-log", false, "log every HTTP request (method, path, status, duration, trace ID)")

	fs.StringVar(&c.dataDir, "data-dir", "", "durability directory (WAL + checkpoints); empty runs in-memory only")
	fs.StringVar(&c.fsync, "fsync", "always", "WAL fsync policy: always|interval|never")
	fs.DurationVar(&c.fsyncInterval, "fsync-interval", 5*time.Millisecond, "fsync cadence under -fsync interval")
	fs.IntVar(&c.ckptEvery, "checkpoint-every", 1024, "checkpoint after this many ingested batches (0: only on shutdown)")
	fs.BoolVar(&c.verifyRec, "verify-recovery", true, "verify recovered answers against a batch recompute on startup")
	return c
}

func main() {
	c := newFlags(flag.CommandLine)
	flag.Parse()
	logger, err := newLogger(c.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incgraphd:", err)
		os.Exit(2)
	}
	dur := durabilityConfig{
		dataDir:       c.dataDir,
		fsync:         c.fsync,
		fsyncInterval: c.fsyncInterval,
		ckptEvery:     c.ckptEvery,
		verify:        c.verifyRec,
	}
	if err := run(logger, c.listen, c.debugAddr, c.graphPath, c.algos, c.pattern, c.genKind,
		incgraph.NodeID(c.src), c.genSeed, c.genNodes, c.genDeg, c.genDirect, c.accessLog,
		incgraph.ServeOptions{MaxBatch: c.maxBatch, MaxWait: c.maxWait, Queue: c.queue, Workers: c.workers},
		dur); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// durabilityConfig carries the -data-dir flag family into run.
type durabilityConfig struct {
	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	ckptEvery     int
	verify        bool
}

// newLogger builds the process logger at the requested level, writing
// structured key=val lines to stderr.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func run(logger *slog.Logger, listen, debugAddr, graphPath, algos, patternPath, genKind string,
	src incgraph.NodeID, seed int64, nodes, deg int, directed, accessLog bool,
	opt incgraph.ServeOptions, dur durabilityConfig) error {
	if algos == "" {
		return fmt.Errorf("missing -algos (e.g. -algos sssp,cc)")
	}
	base, err := loadGraph(graphPath, genKind, seed, nodes, deg, directed)
	if err != nil {
		return err
	}
	var pat *incgraph.Graph
	if patternPath != "" {
		f, err := os.Open(patternPath)
		if err != nil {
			return err
		}
		pat, err = incgraph.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	// Every apply is traced through this hook at debug level: host, epoch,
	// batch size, coalescing, |AFF|, and the latency split — the same
	// fields /debug/applies retains.
	opt.OnApply = func(t incgraph.ServeApplyTrace) {
		logger.Debug("apply",
			"host", t.Algo,
			"epoch", t.Epoch,
			"batch_size", t.RawUpdates,
			"net_size", t.NetUpdates,
			"affected", t.Affected,
			"apply_latency", time.Duration(t.ApplyNanos),
			"queue_wait", time.Duration(t.QueueWaitNanos),
			"trace", t.TraceID)
	}

	var algoList []string
	for _, algo := range strings.Split(algos, ",") {
		if algo = strings.TrimSpace(algo); algo != "" {
			algoList = append(algoList, algo)
		}
	}

	svc := incgraph.NewService()

	// With a data directory, recovery runs before any host starts: restore
	// each maintainer from the latest checkpoint (falling back to a fresh
	// batch run on the input graph), replay the WAL tail through the
	// incremental Apply path, verify against batch recompute, and only
	// then start the apply loops at the recovered stream position.
	var rec *incgraph.Recovery
	if dur.dataDir != "" {
		var err error
		if rec, err = incgraph.LoadRecovery(dur.dataDir); err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
	}
	targets := make(map[string]incgraph.Serveable, len(algoList))
	for _, algo := range algoList {
		t0 := time.Now()
		// Every maintainer owns a private clone: maintainers mutate
		// their graph in Apply and are single-writer objects.
		g := base.Clone()
		restored := false
		if rec != nil {
			if ra, ok := rec.Algos[algo]; ok {
				g, restored = ra.Graph, true
			}
		}
		m, err := buildServeable(algo, g, src, pat)
		if err != nil {
			svc.Close()
			return err
		}
		if rec != nil {
			if err := rec.Restore(algo, m); err != nil {
				svc.Close()
				return fmt.Errorf("recovery: restore %s: %w", algo, err)
			}
		}
		targets[algo] = m
		logger.Info("hosted", "host", algo, "batch_init", time.Since(t0).Round(time.Microsecond),
			"from_checkpoint", restored)
	}
	var d *incgraph.Durable
	if rec != nil {
		replayed, err := rec.Replay(targets, svc.Recorder())
		if err != nil {
			return fmt.Errorf("recovery: replay: %w", err)
		}
		var divergent []string
		if dur.verify {
			divergent = incgraph.VerifyRecovered(targets, svc.Recorder())
			if len(divergent) > 0 {
				logger.Warn("recovery: replayed state diverged from batch recompute; repaired",
					"algos", strings.Join(divergent, ","))
			}
		}
		logger.Info("recovered", "dir", dur.dataDir,
			"checkpoint_epoch", rec.CheckpointEpoch, "replayed_records", replayed,
			"divergent", len(divergent))
		policy, err := incgraph.ParseSyncPolicy(dur.fsync)
		if err != nil {
			return err
		}
		for _, algo := range algoList {
			o := opt
			o.BaseEpoch, o.BaseBatches = rec.Base(algo)
			if _, err := svc.Host(targets[algo], o); err != nil {
				svc.Close()
				return err
			}
		}
		if d, err = incgraph.OpenDurable(svc, dur.dataDir, incgraph.DurableOptions{
			WAL:             incgraph.WALOptions{Policy: policy, Interval: dur.fsyncInterval},
			CheckpointEvery: dur.ckptEvery,
		}); err != nil {
			svc.Close()
			return err
		}
		d.RecordRecovery(replayed, len(divergent))
	} else {
		for _, algo := range algoList {
			if _, err := svc.Host(targets[algo], opt); err != nil {
				svc.Close()
				return err
			}
		}
	}

	if debugAddr != "" {
		// pprof and expvar registered themselves on the default mux via
		// their imports; serve it on the side listener only.
		go func() {
			logger.Info("debug listener", "addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, http.DefaultServeMux); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	handler := svc.Handler()
	if accessLog {
		handler = incgraph.AccessLog(logger, handler)
	}
	srv := &http.Server{Addr: listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "nodes", base.NumNodes(), "edges", base.NumEdges(), "addr", listen)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		svc.Close()
		if d != nil {
			d.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop taking requests first, then checkpoint at
	// the drained cut (the checkpoint job queues behind every accepted
	// submission, so it covers exactly what was acknowledged), then drain
	// and stop the apply loops.
	logger.Info("shutting down: draining apply queues")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if d != nil {
		t0 := time.Now()
		if err := d.Checkpoint(); err != nil {
			logger.Warn("checkpoint on drain", "err", err)
		} else {
			logger.Info("checkpoint on drain", "took", time.Since(t0).Round(time.Microsecond))
		}
	}
	svc.Close()
	if d != nil {
		if err := d.Close(); err != nil {
			logger.Warn("wal close", "err", err)
		}
	}
	for _, h := range svc.Hosts() {
		st := h.Stats()
		logger.Info("drained",
			"host", st.Algo,
			"epoch", st.Epoch,
			"updates", st.UpdatesApplied,
			"batches", st.BatchesApplied,
			"coalesced", st.UpdatesCoalesced,
			"mean_apply", time.Duration(st.MeanApplyNanos).Round(time.Microsecond),
			"last_apply", time.Duration(st.LastApplyNanos).Round(time.Microsecond))
	}
	return nil
}

func loadGraph(path, genKind string, seed int64, nodes, deg int, directed bool) (*incgraph.Graph, error) {
	switch {
	case genKind == "powerlaw":
		return incgraph.PowerLawGraph(seed, nodes, deg, directed), nil
	case genKind == "grid":
		side := 1
		for side*side < nodes {
			side++
		}
		return incgraph.GridGraph(seed, side, side), nil
	case genKind != "":
		return nil, fmt.Errorf("unknown generator %q", genKind)
	case path == "":
		return nil, fmt.Errorf("missing -graph (or -gen)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return incgraph.ReadGraph(f)
}

func buildServeable(algo string, g *incgraph.Graph, src incgraph.NodeID, pat *incgraph.Graph) (incgraph.Serveable, error) {
	switch algo {
	case "sssp":
		if int(src) < 0 || int(src) >= g.NumNodes() {
			return nil, fmt.Errorf("sssp: source %d out of range", src)
		}
		return incgraph.ServeSSSP(incgraph.NewIncSSSP(g, src), src), nil
	case "cc":
		return incgraph.ServeCC(incgraph.NewIncCC(g)), nil
	case "sim":
		if pat == nil {
			return nil, fmt.Errorf("sim needs -pattern")
		}
		return incgraph.ServeSim(incgraph.NewIncSim(g, pat)), nil
	case "dfs":
		return incgraph.ServeDFS(incgraph.NewIncDFS(g)), nil
	case "lcc":
		if g.Directed() {
			return nil, fmt.Errorf("lcc needs an undirected graph")
		}
		return incgraph.ServeLCC(incgraph.NewIncLCC(g)), nil
	case "bc":
		if g.Directed() {
			return nil, fmt.Errorf("bc needs an undirected graph")
		}
		return incgraph.ServeBC(incgraph.NewIncBC(g)), nil
	default:
		return nil, fmt.Errorf("unknown algo %q (want sssp|cc|sim|dfs|lcc|bc)", algo)
	}
}
