// Command incgraphd is a resident incremental-graph service: it pays the
// batch fixpoint cost once at startup, then keeps the hosted query
// classes' answers current while ingesting a stream of update batches
// over HTTP — the serving setting where incrementalization pays off.
//
// Usage:
//
//	incgraphd -graph g.txt -algos sssp,cc [-src 0] [-listen :8356]
//	incgraphd -gen powerlaw -nodes 10000 -deg 8 -algos cc,lcc,bc
//	incgraphd -graph g.txt -algos sim -pattern q.txt
//	incgraphd -graph g.txt -algos cc -log-level debug -debug-addr :6060
//	incgraphd -graph g.txt -algos cc -access-log
//	incgraphd -graph g.txt -algos sssp,cc -data-dir /var/lib/incgraph
//	incgraphd -graph g.txt -algos sssp,cc -workers 4
//	incgraphd -graph g.txt -algos sssp,cc -shard-id 0 -shards 2 -data-dir d0
//	incgraphd -graph g.txt -algos sssp,cc -shard-id 0 -shards 2 \
//	    -replica-of http://127.0.0.1:8356 -data-dir d0r
//
// The full flag reference lives in README.md ("incgraphd flag
// reference"); a test diffs that table against the flag definitions here,
// so the two cannot drift.
//
// API:
//
//	POST /update[?algo=<name>][&wait=1]  batch text body ("+ u v w" / "- u v [w]")
//	GET  /query/{algo}                   current snapshot view (JSON)
//	GET  /stats                          per-maintainer serving counters (JSON)
//	GET  /metrics                        Prometheus text exposition
//	GET  /debug/applies[?algo=<name>]    recent apply trace events (JSON)
//	GET  /debug/trace                    flight recording, Chrome trace_event JSON
//	GET  /healthz                        liveness
//
// The daemon keeps a bounded flight recorder of spans — batch lifecycle
// (queue wait, coalesce, apply, publish) plus the fixpoint engine's h and
// resume phases with per-round events — dumped by GET /debug/trace in a
// format Perfetto loads directly. POST /update accepts a W3C traceparent
// header; the trace ID rides through the submission queue onto the apply
// and shows up in the spans, the debug log, and the access log, so one
// request can be followed end to end. -access-log turns on one slog line
// per HTTP request (method, path, status, duration, trace ID).
//
// With -debug-addr set, a second listener serves net/http/pprof profiles
// and expvar counters (/debug/pprof/, /debug/vars) — kept off the main
// listener so profiling endpoints are never exposed on the service port.
//
// Each hosted maintainer owns a private copy of the graph behind a
// single-writer apply loop; updates are validated, coalesced and batched
// before one Apply call. On SIGINT/SIGTERM the daemon stops accepting
// requests, drains every apply queue, and exits.
//
// With -workers n (n >= 2), maintainers that support the parallel
// execution mode (sssp, cc) partition each repair round's frontier
// across n workers; results are deterministic and identical to the
// sequential mode, and /stats reports the per-host worker counters.
// Other classes ignore the flag and stay sequential.
//
// With -data-dir set the daemon is durable: every accepted update batch
// is write-ahead-logged (fsync policy per -fsync) before it is
// acknowledged, and checkpoints of each maintainer's graph + incremental
// state are taken every -checkpoint-every ingests and on SIGTERM
// (checkpoint-on-drain). On startup the daemon recovers: it restores the
// latest checkpoint, replays the WAL tail through the incremental Apply
// path, and (unless -verify-recovery=false) verifies the replayed answers
// against a batch recompute, repairing and counting any divergence. A
// kill -9 at any moment therefore loses nothing acknowledged under
// -fsync always, and restart reproduces exactly the from-scratch answers
// over the durable prefix.
//
// With -shard-id i -shards n the daemon serves one fragment of a
// partitioned deployment: it keeps only the edges the hash partitioner
// assigns to shard i (all node ids remain valid), answers /query over
// its fragment, and mounts the shard-side exchange API (/shard/info,
// /shard/eval/{algo}) that the incrouter front-end drives cross-shard
// answers through. With -data-dir the fragment's WAL is additionally
// exposed under /wal/ for log-shipping replicas.
//
// With -replica-of URL the daemon is a warm replica: it continuously
// ships the primary's WAL segments into its own -data-dir (required)
// and replays every record through the recovery path, staying one poll
// interval behind. It serves only /healthz, /shard/info,
// /replica/status, stale degraded reads on GET /query/{algo} (the
// router's fallback while a primary's breaker is open), and the
// observability surface (/metrics,
// /metrics.json with live replication-lag gauges, /debug/trace with
// per-record replay spans) until POST /replica/promote, which seals the follower
// loop, hosts the replayed maintainers at the shipped stream position,
// opens the local WAL for writing, and atomically swaps in the full
// serving API. Replication is asynchronous: updates the primary
// acknowledged but had not shipped are lost on promotion, which the
// epoch vector makes visible to the router.
package main

import (
	"context"
	"encoding/json"
	"errors"
	_ "expvar" // registers /debug/vars on the -debug-addr listener
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr listener
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"incgraph"
	"incgraph/internal/shard"
)

// cliFlags holds every incgraphd flag value. newFlags registers the
// definitions on a caller-supplied FlagSet, so tests instantiate exactly
// the flag set main parses — the README flag-reference test diffs its
// table against these definitions.
type cliFlags struct {
	listen    string
	graphPath string
	algos     string
	src       int
	pattern   string

	genKind   string
	genNodes  int
	genDeg    int
	genDirect bool
	genSeed   int64

	maxBatch   int
	maxWait    time.Duration
	queue      int
	workers    int
	csrCompact float64

	logLevel  string
	debugAddr string
	accessLog bool

	dataDir       string
	fsync         string
	fsyncInterval time.Duration
	ckptEvery     int
	verifyRec     bool

	shardID   int
	shards    int
	replicaOf string
}

// newFlags defines the daemon's flags on fs and returns the struct their
// parsed values land in.
func newFlags(fs *flag.FlagSet) *cliFlags {
	c := &cliFlags{}
	fs.StringVar(&c.listen, "listen", ":8356", "HTTP listen address")
	fs.StringVar(&c.graphPath, "graph", "", "graph file (labeled edge-list format)")
	fs.StringVar(&c.algos, "algos", "", "comma-separated query classes to host: sssp|cc|sim|dfs|lcc|bc")
	fs.IntVar(&c.src, "src", 0, "source node (sssp)")
	fs.StringVar(&c.pattern, "pattern", "", "pattern graph file (sim)")

	fs.StringVar(&c.genKind, "gen", "", "host a synthetic graph instead of -graph: powerlaw|grid")
	fs.IntVar(&c.genNodes, "nodes", 1000, "synthetic node count")
	fs.IntVar(&c.genDeg, "deg", 8, "synthetic average degree")
	fs.BoolVar(&c.genDirect, "directed", false, "synthetic graph directed")
	fs.Int64Var(&c.genSeed, "seed", 1, "synthetic seed")

	fs.IntVar(&c.maxBatch, "max-batch", 256, "coalescing window: flush after this many updates")
	fs.DurationVar(&c.maxWait, "max-wait", 2*time.Millisecond, "coalescing window: flush after this long")
	fs.IntVar(&c.queue, "queue", 1024, "per-maintainer submission queue depth")
	fs.IntVar(&c.workers, "workers", 0, "partition repair rounds across this many workers (sssp, cc; 0 or 1: sequential)")
	fs.Float64Var(&c.csrCompact, "csr-compact", 0, "rebuild a maintainer's flat CSR snapshot when its overlay exceeds this fraction of the base (sssp, cc, dfs, bc; 0: default 0.25)")

	fs.StringVar(&c.logLevel, "log-level", "info", "log verbosity: debug|info|warn|error (debug logs every apply)")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "optional second listener for pprof and expvar (e.g. :6060)")
	fs.BoolVar(&c.accessLog, "access-log", false, "log every HTTP request (method, path, status, duration, trace ID)")

	fs.StringVar(&c.dataDir, "data-dir", "", "durability directory (WAL + checkpoints); empty runs in-memory only")
	fs.StringVar(&c.fsync, "fsync", "always", "WAL fsync policy: always|interval|never")
	fs.DurationVar(&c.fsyncInterval, "fsync-interval", 5*time.Millisecond, "fsync cadence under -fsync interval")
	fs.IntVar(&c.ckptEvery, "checkpoint-every", 1024, "checkpoint after this many ingested batches (0: only on shutdown)")
	fs.BoolVar(&c.verifyRec, "verify-recovery", true, "verify recovered answers against a batch recompute on startup")

	fs.IntVar(&c.shardID, "shard-id", -1, "serve one fragment of a partitioned deployment: this daemon's shard id (requires -shards)")
	fs.IntVar(&c.shards, "shards", 0, "total shard count of the partitioned deployment (with -shard-id)")
	fs.StringVar(&c.replicaOf, "replica-of", "", "run as a warm replica of the primary at this base URL, shipping and replaying its WAL (requires -data-dir)")
	return c
}

// validateFlags rejects flag combinations that parse but cannot mean
// anything, before any graph is loaded or listener bound. main exits 2
// (usage) on a validation error, so misconfiguration is distinguishable
// from runtime failure.
func validateFlags(c *cliFlags) error {
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	}
	if c.csrCompact < 0 {
		return fmt.Errorf("-csr-compact must be >= 0, got %g", c.csrCompact)
	}
	if c.shards < 0 {
		return fmt.Errorf("-shards must be >= 1, got %d", c.shards)
	}
	if (c.shardID >= 0) != (c.shards > 0) {
		return fmt.Errorf("-shard-id and -shards must be set together (got -shard-id %d, -shards %d)", c.shardID, c.shards)
	}
	if c.shards > 0 && c.shardID >= c.shards {
		return fmt.Errorf("-shard-id %d out of range for -shards %d", c.shardID, c.shards)
	}
	if c.replicaOf != "" && c.dataDir == "" {
		return fmt.Errorf("-replica-of requires -data-dir (the shipped WAL needs a home)")
	}
	return nil
}

func main() {
	c := newFlags(flag.CommandLine)
	flag.Parse()
	if err := validateFlags(c); err != nil {
		fmt.Fprintln(os.Stderr, "incgraphd:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger, err := newLogger(c.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incgraphd:", err)
		os.Exit(2)
	}
	if err := run(logger, c); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger at the requested level, writing
// structured key=val lines to stderr.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// parseAlgos splits the -algos list, dropping empty entries.
func parseAlgos(algos string) ([]string, error) {
	var out []string
	for _, algo := range strings.Split(algos, ",") {
		if algo = strings.TrimSpace(algo); algo != "" {
			out = append(out, algo)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("missing -algos (e.g. -algos sssp,cc)")
	}
	return out, nil
}

// serveOptions assembles the host options from the flags, wiring the
// apply debug log.
func serveOptions(logger *slog.Logger, c *cliFlags) incgraph.ServeOptions {
	opt := incgraph.ServeOptions{MaxBatch: c.maxBatch, MaxWait: c.maxWait, Queue: c.queue, Workers: c.workers, CompactThreshold: c.csrCompact}
	// Every apply is traced through this hook at debug level: host, epoch,
	// batch size, coalescing, |AFF|, and the latency split — the same
	// fields /debug/applies retains.
	opt.OnApply = func(t incgraph.ServeApplyTrace) {
		logger.Debug("apply",
			"host", t.Algo,
			"epoch", t.Epoch,
			"batch_size", t.RawUpdates,
			"net_size", t.NetUpdates,
			"affected", t.Affected,
			"apply_latency", time.Duration(t.ApplyNanos),
			"queue_wait", time.Duration(t.QueueWaitNanos),
			"trace", t.TraceID)
	}
	return opt
}

func run(logger *slog.Logger, c *cliFlags) error {
	algoList, err := parseAlgos(c.algos)
	if err != nil {
		return err
	}
	base, err := loadGraph(c.graphPath, c.genKind, c.genSeed, c.genNodes, c.genDeg, c.genDirect)
	if err != nil {
		return err
	}
	var pat *incgraph.Graph
	if c.pattern != "" {
		f, err := os.Open(c.pattern)
		if err != nil {
			return err
		}
		pat, err = incgraph.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	// Shard mode: the daemon serves one fragment. Filtering keeps every
	// node id valid (views stay globally indexed) but drops edges owned
	// by other shards; the partitioner here must match the router's.
	var part shard.Partitioner
	if c.shards > 0 {
		if part, err = shard.NewPartitioner("hash", c.shards); err != nil {
			return err
		}
		full := base.NumEdges()
		base = shard.FilterGraph(base, part, c.shardID)
		logger.Info("sharded", "shard", c.shardID, "shards", c.shards,
			"fragment_edges", base.NumEdges(), "full_edges", full)
	}

	opt := serveOptions(logger, c)
	if c.replicaOf != "" {
		return runReplica(logger, c, base, pat, part, algoList, opt)
	}

	svc := incgraph.NewService()
	// Name the flight recorder's process so a cluster-merged timeline
	// shows "shard-2", not four processes all called "incgraph".
	if part != nil {
		svc.Recorder().SetProcess(fmt.Sprintf("shard-%d", c.shardID))
	} else {
		svc.Recorder().SetProcess("incgraphd")
	}

	// With a data directory, recovery runs before any host starts: restore
	// each maintainer from the latest checkpoint (falling back to a fresh
	// batch run on the input graph), replay the WAL tail through the
	// incremental Apply path, verify against batch recompute, and only
	// then start the apply loops at the recovered stream position.
	var rec *incgraph.Recovery
	if c.dataDir != "" {
		if rec, err = incgraph.LoadRecovery(c.dataDir); err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
	}
	targets := make(map[string]incgraph.Serveable, len(algoList))
	for _, algo := range algoList {
		t0 := time.Now()
		// Every maintainer owns a private clone: maintainers mutate
		// their graph in Apply and are single-writer objects.
		g := base.Clone()
		restored := false
		if rec != nil {
			if ra, ok := rec.Algos[algo]; ok {
				g, restored = ra.Graph, true
			}
		}
		m, err := buildServeable(algo, g, incgraph.NodeID(c.src), pat)
		if err != nil {
			svc.Close()
			return err
		}
		if rec != nil {
			if err := rec.Restore(algo, m); err != nil {
				svc.Close()
				return fmt.Errorf("recovery: restore %s: %w", algo, err)
			}
		}
		targets[algo] = m
		logger.Info("hosted", "host", algo, "batch_init", time.Since(t0).Round(time.Microsecond),
			"from_checkpoint", restored)
	}
	var d *incgraph.Durable
	if rec != nil {
		replayed, err := rec.Replay(targets, svc.Recorder())
		if err != nil {
			return fmt.Errorf("recovery: replay: %w", err)
		}
		var divergent []string
		if c.verifyRec {
			divergent = incgraph.VerifyRecovered(targets, svc.Recorder())
			if len(divergent) > 0 {
				logger.Warn("recovery: replayed state diverged from batch recompute; repaired",
					"algos", strings.Join(divergent, ","))
			}
		}
		logger.Info("recovered", "dir", c.dataDir,
			"checkpoint_epoch", rec.CheckpointEpoch, "replayed_records", replayed,
			"divergent", len(divergent))
		policy, err := incgraph.ParseSyncPolicy(c.fsync)
		if err != nil {
			return err
		}
		for _, algo := range algoList {
			o := opt
			o.BaseEpoch, o.BaseBatches = rec.Base(algo)
			if _, err := svc.Host(targets[algo], o); err != nil {
				svc.Close()
				return err
			}
		}
		if d, err = incgraph.OpenDurable(svc, c.dataDir, incgraph.DurableOptions{
			WAL:             incgraph.WALOptions{Policy: policy, Interval: c.fsyncInterval},
			CheckpointEvery: c.ckptEvery,
		}); err != nil {
			svc.Close()
			return err
		}
		d.RecordRecovery(replayed, len(divergent))
	} else {
		for _, algo := range algoList {
			if _, err := svc.Host(targets[algo], opt); err != nil {
				svc.Close()
				return err
			}
		}
	}

	// Shard-mode daemons expose the exchange API the router drives, and
	// (when durable) the WAL stream a log-shipping replica follows.
	if part != nil {
		shard.MountShardAPI(svc, part, c.shardID, base.NumNodes(), base.Directed(), nil)
	}
	if d != nil {
		svc.Mount("/wal/", http.StripPrefix("/wal", d.Log().StreamHandler()))
	}

	if c.debugAddr != "" {
		// pprof and expvar registered themselves on the default mux via
		// their imports; serve it on the side listener only.
		go func() {
			logger.Info("debug listener", "addr", c.debugAddr)
			if err := http.ListenAndServe(c.debugAddr, http.DefaultServeMux); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	handler := svc.Handler()
	if c.accessLog {
		handler = incgraph.AccessLog(logger, handler)
	}
	srv := &http.Server{Addr: c.listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "nodes", base.NumNodes(), "edges", base.NumEdges(), "addr", c.listen)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		svc.Close()
		if d != nil {
			d.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop taking requests first, then checkpoint at
	// the drained cut (the checkpoint job queues behind every accepted
	// submission, so it covers exactly what was acknowledged), then drain
	// and stop the apply loops.
	logger.Info("shutting down: draining apply queues")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if d != nil {
		t0 := time.Now()
		if err := d.Checkpoint(); err != nil {
			logger.Warn("checkpoint on drain", "err", err)
		} else {
			logger.Info("checkpoint on drain", "took", time.Since(t0).Round(time.Microsecond))
		}
	}
	svc.Close()
	if d != nil {
		if err := d.Close(); err != nil {
			logger.Warn("wal close", "err", err)
		}
	}
	for _, h := range svc.Hosts() {
		st := h.Stats()
		logger.Info("drained",
			"host", st.Algo,
			"epoch", st.Epoch,
			"updates", st.UpdatesApplied,
			"batches", st.BatchesApplied,
			"coalesced", st.UpdatesCoalesced,
			"mean_apply", time.Duration(st.MeanApplyNanos).Round(time.Microsecond),
			"last_apply", time.Duration(st.LastApplyNanos).Round(time.Microsecond))
	}
	return nil
}

// runReplica is the warm-replica mode: ship the primary's WAL into the
// local data directory, replay it continuously into un-hosted
// maintainers, and serve only health/status endpoints until promotion
// swaps in the full serving API.
func runReplica(logger *slog.Logger, c *cliFlags, base *incgraph.Graph, pat *incgraph.Graph,
	part shard.Partitioner, algoList []string, opt incgraph.ServeOptions) error {
	// Bootstrap: pull the primary's checkpoint and segment bytes before
	// recovery, so a replica started late still begins from the newest
	// durable cut instead of replaying from genesis. Best effort — a
	// briefly unreachable primary just means starting from local state.
	if err := os.MkdirAll(c.dataDir, 0o755); err != nil {
		return fmt.Errorf("replica data dir: %w", err)
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	var pullErr error
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, pullErr = shard.PullWAL(ctx, hc, c.replicaOf, c.dataDir)
		cancel()
		if pullErr == nil {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if pullErr != nil {
		logger.Warn("replica bootstrap: primary unreachable; starting from local state", "err", pullErr)
	}
	rec, err := incgraph.LoadRecovery(c.dataDir)
	if err != nil {
		return fmt.Errorf("replica recovery: %w", err)
	}
	targets := make(map[string]incgraph.Serveable, len(algoList))
	baseEpochs := make(map[string]uint64, len(algoList))
	baseBatches := make(map[string]uint64, len(algoList))
	for _, algo := range algoList {
		g := base.Clone()
		if ra, ok := rec.Algos[algo]; ok {
			g = ra.Graph
		}
		m, err := buildServeable(algo, g, incgraph.NodeID(c.src), pat)
		if err != nil {
			return err
		}
		if err := rec.Restore(algo, m); err != nil {
			return fmt.Errorf("replica restore %s: %w", algo, err)
		}
		targets[algo] = m
		ra := rec.Algos[algo]
		baseEpochs[algo], baseBatches[algo] = ra.Epoch, ra.Batches
	}
	// The service exists before the follower so its registry carries the
	// replication-lag gauges and its recorder the replay spans from the
	// first shipped record — the replica is observable before promotion.
	svc := incgraph.NewService()
	if c.shardID >= 0 {
		svc.Recorder().SetProcess(fmt.Sprintf("replica-%d", c.shardID))
	} else {
		svc.Recorder().SetProcess("replica")
	}
	follower := shard.NewFollower(shard.FollowerOptions{
		Source:      c.replicaOf,
		Dir:         c.dataDir,
		Targets:     targets,
		ReplayFrom:  rec.ReplayFrom,
		BaseEpochs:  baseEpochs,
		BaseBatches: baseBatches,
		Client:      hc,
		Registry:    svc.Registry(),
		Recorder:    svc.Recorder(),
		Logf: func(format string, args ...any) {
			logger.Debug(fmt.Sprintf(format, args...))
		},
	})
	go follower.Run()
	logger.Info("following", "primary", c.replicaOf, "dir", c.dataDir,
		"replay_from", rec.ReplayFrom, "checkpoint_epoch", rec.CheckpointEpoch)
	var promoted atomic.Bool
	// handler swaps from the replica mux to the full API on promotion.
	// The stored values have different concrete handler types, so they
	// ride in a one-field box to keep atomic.Value's type consistent.
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value

	// pstate carries what promotion creates across to the shutdown path.
	var pstate struct {
		sync.Mutex
		d *incgraph.Durable
	}

	promote := func() (map[string]uint64, error) {
		// Seal the follower: after Stop the targets reflect every shipped
		// record and nothing else writes them, so hosting them at the
		// follower's stream position is a consistent handoff.
		follower.Stop()
		epochs, batches := follower.Epochs(), follower.Batches()
		if c.verifyRec {
			if divergent := incgraph.VerifyRecovered(targets, svc.Recorder()); len(divergent) > 0 {
				logger.Warn("promotion: replayed state diverged from batch recompute; repaired",
					"algos", strings.Join(divergent, ","))
			}
		}
		for _, algo := range algoList {
			o := opt
			o.BaseEpoch, o.BaseBatches = epochs[algo], batches[algo]
			if _, err := svc.Host(targets[algo], o); err != nil {
				return nil, err
			}
		}
		policy, err := incgraph.ParseSyncPolicy(c.fsync)
		if err != nil {
			return nil, err
		}
		// OpenDurable truncates the shipped WAL's torn tail frame (if the
		// primary died mid-ship) and appends after it — the replica's log
		// is now the authoritative continuation.
		d, err := incgraph.OpenDurable(svc, c.dataDir, incgraph.DurableOptions{
			WAL:             incgraph.WALOptions{Policy: policy, Interval: c.fsyncInterval},
			CheckpointEvery: c.ckptEvery,
		})
		if err != nil {
			return nil, err
		}
		pstate.Lock()
		pstate.d = d
		pstate.Unlock()
		if part != nil {
			shard.MountShardAPI(svc, part, c.shardID, base.NumNodes(), base.Directed(), func() bool { return false })
		}
		svc.Mount("/wal/", http.StripPrefix("/wal", d.Log().StreamHandler()))
		full := svc.Handler()
		if c.accessLog {
			full = incgraph.AccessLog(logger, full)
		}
		handler.Store(handlerBox{full})
		logger.Info("promoted", "epochs", fmt.Sprint(epochs))
		return epochs, nil
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /replica/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, follower.Status())
	})
	// Replication lag and replay spans are observable before promotion:
	// the router's /cluster/metrics and /debug/cluster/trace scrape these.
	mux.Handle("GET /metrics", svc.Registry().Handler())
	mux.Handle("GET /metrics.json", svc.Registry().JSONHandler())
	mux.Handle("GET /debug/trace", svc.Recorder().Handler())
	mux.HandleFunc("GET /shard/info", func(w http.ResponseWriter, r *http.Request) {
		info := shard.Info{Nodes: base.NumNodes(), Directed: base.Directed(), Replica: true, Epochs: follower.Epochs()}
		if part != nil {
			info.Shard, info.Shards, info.Partitioner = c.shardID, part.Shards(), part.Name()
		}
		writeJSON(w, http.StatusOK, info)
	})
	// Stale reads: pre-promotion, the replica answers /query/{algo} from
	// its replayed maintainers, every view stamped degraded. This is the
	// surface the router's fetchView falls back to when a primary's
	// breaker is open — a lagging answer with an honest epoch instead of
	// a missing shard.
	mux.HandleFunc("GET /query/{algo}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := follower.View(r.PathValue("algo"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown algo " + r.PathValue("algo")})
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("POST /replica/promote", func(w http.ResponseWriter, r *http.Request) {
		if !promoted.CompareAndSwap(false, true) {
			writeJSON(w, http.StatusConflict, map[string]string{"error": "already promoted"})
			return
		}
		epochs, err := promote()
		if err != nil {
			logger.Error("promotion failed", "err", err)
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epochs": epochs})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "warm replica: not serving until POST /replica/promote"})
	})
	handler.Store(handlerBox{mux})

	srv := &http.Server{Addr: c.listen, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("replica serving", "addr", c.listen, "primary", c.replicaOf)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		follower.Stop()
		svc.Close()
		return err
	case <-ctx.Done():
	}
	logger.Info("replica shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	follower.Stop()
	pstate.Lock()
	d := pstate.d
	pstate.Unlock()
	if d != nil {
		if err := d.Checkpoint(); err != nil {
			logger.Warn("checkpoint on drain", "err", err)
		}
	}
	svc.Close()
	if d != nil {
		if err := d.Close(); err != nil {
			logger.Warn("wal close", "err", err)
		}
	}
	return nil
}

// writeJSON writes v as JSON with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func loadGraph(path, genKind string, seed int64, nodes, deg int, directed bool) (*incgraph.Graph, error) {
	switch {
	case genKind == "powerlaw":
		return incgraph.PowerLawGraph(seed, nodes, deg, directed), nil
	case genKind == "grid":
		side := 1
		for side*side < nodes {
			side++
		}
		return incgraph.GridGraph(seed, side, side), nil
	case genKind != "":
		return nil, fmt.Errorf("unknown generator %q", genKind)
	case path == "":
		return nil, fmt.Errorf("missing -graph (or -gen)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return incgraph.ReadGraph(f)
}

func buildServeable(algo string, g *incgraph.Graph, src incgraph.NodeID, pat *incgraph.Graph) (incgraph.Serveable, error) {
	switch algo {
	case "sssp":
		if int(src) < 0 || int(src) >= g.NumNodes() {
			return nil, fmt.Errorf("sssp: source %d out of range", src)
		}
		return incgraph.ServeSSSP(incgraph.NewIncSSSP(g, src), src), nil
	case "cc":
		return incgraph.ServeCC(incgraph.NewIncCC(g)), nil
	case "sim":
		if pat == nil {
			return nil, fmt.Errorf("sim needs -pattern")
		}
		return incgraph.ServeSim(incgraph.NewIncSim(g, pat)), nil
	case "dfs":
		return incgraph.ServeDFS(incgraph.NewIncDFS(g)), nil
	case "lcc":
		if g.Directed() {
			return nil, fmt.Errorf("lcc needs an undirected graph")
		}
		return incgraph.ServeLCC(incgraph.NewIncLCC(g)), nil
	case "bc":
		if g.Directed() {
			return nil, fmt.Errorf("bc needs an undirected graph")
		}
		return incgraph.ServeBC(incgraph.NewIncBC(g)), nil
	default:
		return nil, fmt.Errorf("unknown algo %q (want sssp|cc|sim|dfs|lcc|bc)", algo)
	}
}
