package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"incgraph"
	"incgraph/internal/obs"
	"incgraph/internal/serve/faults"
	"incgraph/internal/shard"
)

// TestChaosDifferential is the cluster chaos-differential drill: real
// shard processes behind a router whose transport injects seeded
// network faults (delays, resets, truncated bodies, spurious 503s),
// plus one full partition (blackhole), one kill -9 with replica
// promotion, and a worker-count mutation across the promotion — while
// a structured update stream flows. The invariants:
//
//   - queries during the partition answer 200 with "degraded": true
//     partials (stale replica or missing shard, epoch vector exposing
//     the staleness), never a whole-query 5xx;
//   - updates during the partition shed 503 with a Retry-After hint,
//     and the same batches apply cleanly once connectivity returns
//     (full-batch retries are idempotent);
//   - after faults stop and the stream drains, every class's answers
//     equal a from-scratch recompute of exactly the acked stream;
//   - the retry/breaker/degraded counters surface in /cluster/metrics.
//
// The short PR-CI form runs a fixed number of rounds; set
// INCGRAPH_CHAOS_SECONDS to stretch the faulted-stream phase into a
// long-form campaign (nightly).
func TestChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}

	bin := t.TempDir() + "/incgraphd"
	if out, err := exec.Command("go", "build", "-o", bin, "incgraph/cmd/incgraphd").CombinedOutput(); err != nil {
		t.Fatalf("building incgraphd: %v\n%s", err, out)
	}

	const (
		nodes = 300
		deg   = 6
		seed  = 11
	)
	c := &routerFlags{
		spawn:     true,
		incgraphd: bin,
		shards:    2,
		replicas:  1,
		basePort:  pickPortBlock(t, 4),
		dataRoot:  t.TempDir(),
		fsync:     "always",
		algos:     "sssp,cc",
		src:       0,
		genKind:   "powerlaw",
		genNodes:  nodes,
		genDeg:    deg,
		genDirect: true,
		genSeed:   seed,
	}
	specs, primaries := childSpecs(c)
	// Worker-count mutation across the promotion: primaries run the
	// parallel execution mode, replicas sequential — after the kill -9
	// the promoted member answers with a different worker count, and the
	// final recompute equality proves the mode change is invisible.
	for i := range specs {
		if specs[i].Replica {
			specs[i].Argv = append(specs[i].Argv, "-workers", "1")
		} else {
			specs[i].Argv = append(specs[i].Argv, "-workers", "2")
		}
	}
	table := shard.NewTable(primaries)
	events := obs.NewRing[shard.TopologyEvent](128)
	sup, err := shard.NewSupervisor(shard.SupervisorOptions{
		Table:         table,
		Specs:         specs,
		ProbeInterval: 100 * time.Millisecond,
		Events:        events,
		JitterSeed:    seed,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)
	if err := sup.WaitReady(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	info, err := discover(table)
	if err != nil {
		t.Fatal(err)
	}
	part, err := shard.NewPartitioner(info.Partitioner, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Every router→shard byte crosses the fault transport. The
	// supervisor probes through its own default client, so injected
	// faults degrade the data plane without faking topology changes —
	// the one real kill below is the only promotion trigger.
	ft := faults.NewTransport(faults.TransportOptions{
		Seed:         seed,
		DelayProb:    0.10,
		MaxDelay:     30 * time.Millisecond,
		ResetProb:    0.05,
		TruncateProb: 0.05,
		ShedProb:     0.05,
	})
	router, err := shard.NewRouter(shard.RouterOptions{
		Part: part, Table: table, Directed: true, NumNodes: nodes,
		Events: events,
		Client: &http.Client{Transport: ft},
		Resilience: shard.ResilienceOptions{
			Seed:           seed,
			BreakerOpenFor: 500 * time.Millisecond,
			HedgeAfter:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := router.Handler()

	oracle := incgraph.PowerLawGraph(seed, nodes, deg, true)
	streamSeed := int64(2000)
	nextBatch := func(count int) incgraph.Batch {
		streamSeed++
		return incgraph.RandomUpdates(streamSeed, oracle, count, 0.5)
	}
	post := func(b incgraph.Batch) (int, bool, string) {
		var buf bytes.Buffer
		if err := incgraph.WriteBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/update?wait=1", &buf)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var res struct {
			Applied bool `json:"applied"`
		}
		json.Unmarshal(w.Body.Bytes(), &res)
		return w.Code, res.Applied, w.Header().Get("Retry-After")
	}
	// mustApply retries the whole batch until the router acks it applied
	// on every shard, then folds it into the oracle. Full-batch retries
	// are exact under faults because shard applies are idempotent.
	mustApply := func(b incgraph.Batch, deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			code, applied, _ := post(b)
			if code == http.StatusOK && applied {
				oracle.Apply(b)
				return
			}
			if time.Now().After(end) {
				t.Fatalf("batch never applied (last status %d)", code)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	type queryRes struct {
		Consistent bool `json:"consistent"`
		Degraded   bool `json:"degraded"`
		Epochs     []uint64
		Shards     []shard.QueryShard `json:"shards"`
		Data       struct {
			Dist   []int64 `json:"dist"`
			Labels []int64 `json:"labels"`
		} `json:"data"`
	}
	query := func(algo string) (int, queryRes) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/query/"+algo, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var q queryRes
		json.Unmarshal(w.Body.Bytes(), &q)
		return w.Code, q
	}

	// Phase A: stream under background network faults. Short form runs a
	// few rounds; INCGRAPH_CHAOS_SECONDS stretches this phase.
	rounds, phaseEnd := 3, time.Time{}
	if s := os.Getenv("INCGRAPH_CHAOS_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad INCGRAPH_CHAOS_SECONDS %q", s)
		}
		rounds, phaseEnd = 1<<30, time.Now().Add(time.Duration(secs)*time.Second)
	}
	for i := 0; i < rounds; i++ {
		mustApply(nextBatch(30), 60*time.Second)
		if i%4 == 3 {
			if code, _ := query("sssp"); code != http.StatusOK {
				t.Fatalf("query under faults: %d", code)
			}
		}
		if !phaseEnd.IsZero() && time.Now().After(phaseEnd) {
			break
		}
	}

	// Phase B: full partition of shard 1's primary. Queries must degrade
	// to 200 partials (shard 1 answered stale by its replica, or missing
	// with epoch 0), never a whole-query failure; updates must shed 503
	// with a Retry-After hint once the breaker opens.
	primary1Host := strings.TrimPrefix(primaries[1], "http://")
	ft.Blackhole(primary1Host, true)
	degradeEnd := time.Now().Add(30 * time.Second)
	for {
		code, q := query("sssp")
		if code != http.StatusOK {
			t.Fatalf("query during partition: %d (want 200 degraded partial)", code)
		}
		if q.Degraded {
			if len(q.Shards) != 2 {
				t.Fatalf("degraded answer carries %d shard statuses, want 2", len(q.Shards))
			}
			st := q.Shards[1].Status
			if st != "stale-replica" && st != "missing" && st != "hedged" {
				t.Fatalf("partitioned shard status %q", st)
			}
			if st == "missing" && q.Epochs[1] != 0 {
				t.Fatalf("missing shard epoch = %d, want 0", q.Epochs[1])
			}
			break
		}
		if time.Now().After(degradeEnd) {
			t.Fatal("queries never degraded during the partition")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Updates routed to the partitioned shard shed once its breaker is
	// open. The same batch must land cleanly after the partition heals.
	heldBack := nextBatch(30)
	shedEnd := time.Now().Add(30 * time.Second)
	for {
		code, applied, retryAfter := post(heldBack)
		if applied {
			// Every sub-batch happened to land (breaker probe slipped
			// through); treat as acked and move on.
			oracle.Apply(heldBack)
			heldBack = nil
			break
		}
		if code == http.StatusServiceUnavailable {
			if retryAfter == "" {
				t.Fatal("503 shed without a Retry-After hint")
			}
			break
		}
		if time.Now().After(shedEnd) {
			t.Fatalf("updates never shed during the partition (last status %d)", code)
		}
		time.Sleep(50 * time.Millisecond)
	}
	ft.Blackhole(primary1Host, false)
	if heldBack != nil {
		mustApply(heldBack, 60*time.Second) // breaker half-opens, probe succeeds, closes
	}
	mustApply(nextBatch(30), 60*time.Second)

	// Phase C: quiesce shard 0's replication, then kill -9 its primary
	// and wait for the supervisor to promote the replica (which runs
	// with a different worker count).
	replica0 := table.Replica(0)
	if replica0 == "" {
		t.Fatal("no replica registered for shard 0")
	}
	waitCaughtUp(t, primaries[0], replica0, 30*time.Second)
	pid, ok := sup.Pid("shard0")
	if !ok {
		t.Fatal("no pid for shard0")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	promoteEnd := time.Now().Add(60 * time.Second)
	for {
		if addr, healthy := table.Active(0); healthy && addr == replica0 {
			break
		}
		if time.Now().After(promoteEnd) {
			addr, healthy := table.Active(0)
			t.Fatalf("no promotion: active=%q healthy=%v", addr, healthy)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Phase D: keep streaming through the promoted member under faults,
	// then lift all faults, drain, and check recompute equality.
	for i := 0; i < 2; i++ {
		mustApply(nextBatch(30), 120*time.Second)
	}
	ft.SetEnabled(false)

	wantDist := incgraph.SSSP(oracle, 0)
	wantLabels := incgraph.ConnectedComponents(oracle)
	finalEnd := time.Now().Add(60 * time.Second)
	for {
		code, qs := query("sssp")
		code2, qc := query("cc")
		if code == http.StatusOK && code2 == http.StatusOK &&
			qs.Consistent && qc.Consistent && !qs.Degraded && !qc.Degraded {
			for v := range wantDist {
				if qs.Data.Dist[v] != wantDist[v] {
					t.Fatalf("dist[%d] = %d, want %d", v, qs.Data.Dist[v], wantDist[v])
				}
			}
			for v := range wantLabels {
				if qc.Data.Labels[v] != wantLabels[v] {
					t.Fatalf("label[%d] = %d, want %d", v, qc.Data.Labels[v], wantLabels[v])
				}
			}
			break
		}
		if time.Now().After(finalEnd) {
			t.Fatalf("cluster never converged: sssp %d consistent=%v degraded=%v, cc %d consistent=%v degraded=%v",
				code, qs.Consistent, qs.Degraded, code2, qc.Consistent, qc.Degraded)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// The campaign actually exercised the fault plane and the breaker,
	// and the resilience counters surface in the federated exposition.
	if ft.Stats().Total() == 0 {
		t.Fatal("fault transport injected nothing")
	}
	var promotes int
	for _, ev := range events.Snapshot() {
		if ev.Kind == "promote" {
			promotes++
		}
	}
	if promotes == 0 {
		t.Fatal("no promote event recorded")
	}
	req := httptest.NewRequest(http.MethodGet, "/cluster/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("cluster metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, name := range []string{
		"incrouter_retries_total",
		"incrouter_breaker_opens_total",
		"incrouter_breaker_state",
		"incrouter_deadline_exceeded_total",
		"incrouter_degraded_queries_total",
		"incrouter_stale_replica_reads_total",
		"incrouter_hedged_reads_total",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("cluster metrics missing %s", name)
		}
	}
	mustPositive := func(name string) {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name) && !strings.HasPrefix(line, "#") {
				fields := strings.Fields(line)
				if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v > 0 {
					return
				}
			}
		}
		t.Fatalf("expected %s > 0 after the campaign:\n%s", name, body)
	}
	mustPositive("incrouter_retries_total")
	mustPositive("incrouter_breaker_opens_total")
	mustPositive("incrouter_degraded_queries_total")
}
