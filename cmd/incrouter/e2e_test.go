package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"incgraph"
	"incgraph/internal/obs"
	"incgraph/internal/shard"
	"incgraph/internal/trace"
)

// TestShardedE2E is the full crash-promotion drill over real processes:
// build incgraphd, spawn 2 durable shard daemons each with a warm
// log-shipping replica, route updates through an in-process Router,
// kill -9 one primary mid-stream, wait for the supervisor to promote
// its replica, keep ingesting, and finally check the sharded answers
// against a single-process recompute of everything that was acked.
func TestShardedE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}

	bin := t.TempDir() + "/incgraphd"
	if out, err := exec.Command("go", "build", "-o", bin, "incgraph/cmd/incgraphd").CombinedOutput(); err != nil {
		t.Fatalf("building incgraphd: %v\n%s", err, out)
	}

	const (
		nodes = 400
		deg   = 6
		seed  = 7
	)
	c := &routerFlags{
		spawn:     true,
		incgraphd: bin,
		shards:    2,
		replicas:  1,
		basePort:  pickPortBlock(t, 4),
		dataRoot:  t.TempDir(),
		fsync:     "always",
		algos:     "sssp,cc",
		src:       0,
		genKind:   "powerlaw",
		genNodes:  nodes,
		genDeg:    deg,
		genDirect: true,
		genSeed:   seed,
	}
	specs, primaries := childSpecs(c)
	table := shard.NewTable(primaries)
	events := obs.NewRing[shard.TopologyEvent](64)
	sup, err := shard.NewSupervisor(shard.SupervisorOptions{
		Table:         table,
		Specs:         specs,
		ProbeInterval: 100 * time.Millisecond,
		Events:        events,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)
	if err := sup.WaitReady(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	info, err := discover(table)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != nodes || !info.Directed || info.Shards != 2 {
		t.Fatalf("discovered topology %+v", info)
	}
	part, err := shard.NewPartitioner(info.Partitioner, 2)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(shard.RouterOptions{
		Part: part, Table: table, Directed: true, NumNodes: nodes,
		Events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := router.Handler()

	// The oracle mirrors the children's deterministic synthetic graph and
	// accumulates exactly the batches the router acked as applied.
	oracle := incgraph.PowerLawGraph(seed, nodes, deg, true)

	post := func(b incgraph.Batch) (int, bool) {
		var buf bytes.Buffer
		if err := incgraph.WriteBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/update?wait=1", &buf)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var res struct {
			Applied bool `json:"applied"`
		}
		json.Unmarshal(w.Body.Bytes(), &res)
		return w.Code, res.Applied
	}
	mustPost := func(b incgraph.Batch, deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			code, applied := post(b)
			if code == http.StatusOK && applied {
				return
			}
			if time.Now().After(end) {
				t.Fatalf("batch never applied (last status %d)", code)
			}
			// Full-batch retries are safe: InsertEdge is a no-op on a
			// present edge and DeleteEdge on an absent one.
			time.Sleep(200 * time.Millisecond)
		}
	}

	// Phase 1: ingest with a healthy topology.
	streamSeed := int64(1000)
	nextBatch := func(count int) incgraph.Batch {
		streamSeed++
		return incgraph.RandomUpdates(streamSeed, oracle, count, 0.5)
	}
	for i := 0; i < 3; i++ {
		b := nextBatch(40)
		mustPost(b, 30*time.Second)
		oracle.Apply(b)
	}

	// One traced batch: the client-supplied traceparent must come back on
	// the distributed timeline from every process that touched the batch.
	tid := postTraced(t, h, func() incgraph.Batch {
		b := nextBatch(20)
		oracle.Apply(b)
		return b
	}())

	// Quiesce: wait until shard 0's replica has replayed everything the
	// primary acked, so the promotion loses nothing and the oracle stays
	// exact. (Replication is async; acked-but-unshipped tail updates are
	// lost by design and surfaced via the epoch vector — this test pins
	// the lossless path, the shard package tests cover the lossy one.)
	primary0 := primaries[0]
	replica0 := table.Replica(0)
	if replica0 == "" {
		t.Fatal("no replica registered for shard 0")
	}
	waitCaughtUp(t, primary0, replica0, 30*time.Second)

	// Cluster observability over the live topology: the merged timeline
	// must show the traced batch on the router and both shards (and the
	// replica's replay, now that it has caught up)...
	checkClusterTrace(t, h, tid)
	// ...and the federated metrics must carry per-shard apply latency,
	// replication lag, and epoch skew — present and numeric.
	checkClusterMetrics(t, h)

	// Kill -9 the shard 0 primary and wait for the supervisor to promote.
	pid, ok := sup.Pid("shard0")
	if !ok {
		t.Fatal("no pid for shard0")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	promoteEnd := time.Now().Add(60 * time.Second)
	for {
		if addr, healthy := table.Active(0); healthy && addr == replica0 {
			break
		}
		if time.Now().After(promoteEnd) {
			addr, healthy := table.Active(0)
			t.Fatalf("no promotion: active=%q healthy=%v", addr, healthy)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if g := table.Snapshot()[0].Generation; g != 1 {
		t.Fatalf("slot 0 generation = %d after promotion", g)
	}

	// Phase 2: keep ingesting through the promoted replica.
	for i := 0; i < 3; i++ {
		b := nextBatch(40)
		mustPost(b, 60*time.Second)
		oracle.Apply(b)
	}

	// Recompute equality: the sharded answers must match a full
	// single-process recompute of the acked stream.
	wantDist := incgraph.SSSP(oracle, 0)
	wantLabels := incgraph.ConnectedComponents(oracle)

	var q struct {
		Consistent bool `json:"consistent"`
		Data       struct {
			Src    int     `json:"src"`
			Dist   []int64 `json:"dist"`
			Labels []int64 `json:"labels"`
		} `json:"data"`
	}
	query := func(algo string) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/query/"+algo, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("query %s: %d %s", algo, w.Code, w.Body.String())
		}
		q.Data.Dist, q.Data.Labels = nil, nil
		if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
			t.Fatal(err)
		}
		if !q.Consistent {
			t.Fatalf("%s answer inconsistent after lossless promotion", algo)
		}
	}
	query("sssp")
	for v := range wantDist {
		if q.Data.Dist[v] != wantDist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, q.Data.Dist[v], wantDist[v])
		}
	}
	query("cc")
	for v := range wantLabels {
		if q.Data.Labels[v] != wantLabels[v] {
			t.Fatalf("label[%d] = %d, want %d", v, q.Data.Labels[v], wantLabels[v])
		}
	}

	// The supervisor's actions left an audit trail at /cluster/events:
	// the kill shows up as probe failures (or a child exit) and exactly
	// the promotion we observed.
	kinds := map[string]int{}
	for _, ev := range events.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds["promote"] == 0 {
		t.Fatalf("no promote event recorded; events = %v", kinds)
	}
	if kinds["spawn"] < 4 {
		t.Fatalf("expected 4 spawn events, got %v", kinds)
	}
}

// postTraced posts one batch through the router with a client-supplied
// traceparent and returns its trace ID.
func postTraced(t *testing.T, h http.Handler, b incgraph.Batch) trace.TraceID {
	t.Helper()
	tid := trace.NewTraceID()
	end := time.Now().Add(30 * time.Second)
	for {
		var buf bytes.Buffer
		if err := incgraph.WriteBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/update?wait=1", &buf)
		req.Header.Set("traceparent", trace.FormatTraceparent(tid, trace.NewSpanID()))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var res struct {
			Applied bool `json:"applied"`
		}
		json.Unmarshal(w.Body.Bytes(), &res)
		if w.Code == http.StatusOK && res.Applied {
			return tid
		}
		if time.Now().After(end) {
			t.Fatalf("traced batch never applied (last status %d)", w.Code)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// checkClusterTrace asserts the merged timeline contains the traced
// request's spans from the router and every shard process (retrying
// briefly: shard rings are written asynchronously to the ack).
func checkClusterTrace(t *testing.T, h http.Handler, tid trace.TraceID) {
	t.Helper()
	end := time.Now().Add(15 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, "/debug/cluster/trace?trace="+tid.String(), nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("cluster trace: %d %s", w.Code, w.Body.String())
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				PID  int            `json:"pid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
			t.Fatalf("cluster trace not JSON: %v", err)
		}
		procs := map[int]string{}
		spans := map[string]int{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" && ev.Name == "process_name" {
				procs[ev.PID], _ = ev.Args["name"].(string)
			}
		}
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "M" {
				spans[procs[ev.PID]]++
			}
		}
		if spans["router"] > 0 && spans["shard-0"] > 0 && spans["shard-1"] > 0 && spans["replica-0"] > 0 {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("merged timeline incomplete: spans per process = %v", spans)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// checkClusterMetrics asserts the federated exposition carries the
// series the CI gate requires — per-shard apply latency, replica
// lag-seconds, epoch skew — all present with numeric values.
func checkClusterMetrics(t *testing.T, h http.Handler) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/cluster/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("cluster metrics: %d", w.Code)
	}
	body := w.Body.String()
	mustSeries := func(name string, labels ...string) {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
				continue
			}
			rest := line[len(name):]
			if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
				continue
			}
			ok := true
			for _, l := range labels {
				if !strings.Contains(line, l) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil || math.IsNaN(v) {
				t.Fatalf("series %s has non-numeric value in %q (err %v)", name, line, err)
			}
			return
		}
		t.Fatalf("federated metrics missing %s%v:\n%s", name, labels, body)
	}
	mustSeries("incgraph_apply_latency_seconds_count", `shard="0"`, `role="primary"`)
	mustSeries("incgraph_apply_latency_seconds_count", `shard="1"`, `role="primary"`)
	mustSeries("incgraph_replica_lag_seconds", `shard="0"`, `role="replica"`)
	mustSeries("incrouter_cluster_epoch_skew")
	mustSeries("incrouter_cluster_replica_lag_seconds")
	mustSeries("incrouter_cluster_apply_latency_seconds_count")
}

// waitCaughtUp blocks until the replica's replayed per-algo epochs match
// the primary's view epochs.
func waitCaughtUp(t *testing.T, primary, replica string, timeout time.Duration) {
	t.Helper()
	end := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		pinfo, perr := (&shard.Client{Base: primary}).Info(ctx)
		var st struct {
			Epochs map[string]uint64 `json:"epochs"`
		}
		rerr := getJSONStatus(ctx, replica+"/replica/status", &st)
		cancel()
		if perr == nil && rerr == nil {
			caught := len(pinfo.Epochs) > 0
			for algo, e := range pinfo.Epochs {
				if st.Epochs[algo] < e {
					caught = false
				}
			}
			if caught {
				return
			}
		}
		if time.Now().After(end) {
			t.Fatalf("replica never caught up (primary %v, replica %v, errs %v/%v)",
				pinfo.Epochs, st.Epochs, perr, rerr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getJSONStatus(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// pickPortBlock finds a base port with n consecutive free ports — the
// layout childSpecs assigns children into.
func pickPortBlock(t *testing.T, n int) int {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := l.Addr().(*net.TCPAddr).Port
		l.Close()
		ok := true
		for p := base; p < base+n; p++ {
			probe, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p))
			if err != nil {
				ok = false
				break
			}
			probe.Close()
		}
		if ok {
			return base
		}
	}
	t.Fatal("no free port block found")
	return 0
}
