package main

import (
	"flag"
	"strings"
	"testing"
)

func TestValidateRouterFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // "" means valid
	}{
		{"no topology", nil, "-shard-addrs"},
		{"static addrs", []string{"-shard-addrs", "http://a,http://b"}, ""},
		{"spawn without data-root", []string{"-spawn", "-gen", "powerlaw"}, "-data-root"},
		{"spawn without graph", []string{"-spawn", "-data-root", "/tmp/x"}, "-graph or -gen"},
		{"spawn zero shards", []string{"-spawn", "-shards", "0", "-data-root", "/tmp/x", "-gen", "powerlaw"}, "-shards"},
		{"spawn two replicas", []string{"-spawn", "-replicas", "2", "-data-root", "/tmp/x", "-gen", "powerlaw"}, "-replicas"},
		{"spawn ok", []string{"-spawn", "-replicas", "1", "-data-root", "/tmp/x", "-gen", "powerlaw"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("incrouter", flag.ContinueOnError)
			c := newRouterFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := validateRouterFlags(c)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestChildSpecs pins the spawn layout: shard i on base+2i, its replica
// on base+2i+1 pointed at the primary, all durable under -data-root.
func TestChildSpecs(t *testing.T) {
	c := &routerFlags{
		spawn: true, incgraphd: "/bin/incgraphd", shards: 2, replicas: 1,
		basePort: 9000, dataRoot: "/data", fsync: "always",
		algos: "sssp,cc", genKind: "powerlaw", genNodes: 10, genDeg: 2, genSeed: 1,
	}
	specs, primaries := childSpecs(c)
	if len(specs) != 4 || len(primaries) != 2 {
		t.Fatalf("got %d specs, %d primaries", len(specs), len(primaries))
	}
	if primaries[1] != "http://127.0.0.1:9002" {
		t.Fatalf("primary 1 at %q", primaries[1])
	}
	byName := map[string]ProcSpecLite{}
	for _, s := range specs {
		byName[s.Name] = ProcSpecLite{Shard: s.Shard, Replica: s.Replica, Addr: s.Addr, Argv: strings.Join(s.Argv, " ")}
	}
	r1, ok := byName["shard1-replica"]
	if !ok || !r1.Replica || r1.Shard != 1 || r1.Addr != "http://127.0.0.1:9003" {
		t.Fatalf("shard1-replica spec %+v", r1)
	}
	if !strings.Contains(r1.Argv, "-replica-of http://127.0.0.1:9002") {
		t.Fatalf("replica argv does not follow its primary: %s", r1.Argv)
	}
	if !strings.Contains(r1.Argv, "-data-dir /data/shard-1-replica") {
		t.Fatalf("replica argv missing data dir: %s", r1.Argv)
	}
	p0 := byName["shard0"]
	for _, frag := range []string{"-shard-id 0", "-shards 2", "-fsync always", "-gen powerlaw"} {
		if !strings.Contains(p0.Argv, frag) {
			t.Fatalf("shard0 argv missing %q: %s", frag, p0.Argv)
		}
	}
}

// ProcSpecLite flattens a spec for assertion convenience.
type ProcSpecLite struct {
	Shard   int
	Replica bool
	Addr    string
	Argv    string
}
