// Command incrouter is the front-end of a sharded incgraph deployment:
// a stateless process that owns the partitioner, splits every update
// batch into per-shard sub-batches, fans them out to shard daemons, and
// assembles cross-shard query answers by boundary-value exchange
// (shard-local fixpoints plus iterated min-combine over cut edges for
// SSSP; a boundary-label union for CC). Every write acknowledgment and
// query response is stamped with an epoch vector — one epoch per shard
// — in the response body and the X-Incgraph-Epochs header, so clients
// get prefix-consistent cross-shard reads: a read covers a write iff
// its vector covers the write's, component-wise.
//
// Two deployment modes:
//
//	incrouter -spawn -shards 2 -replicas 1 -data-root /var/lib/incgraph \
//	    -incgraphd ./incgraphd -gen powerlaw -nodes 2000 -algos sssp,cc
//	incrouter -shard-addrs http://h0:8356,http://h1:8356 \
//	    [-replica-addrs http://r0:8356,http://r1:8356]
//
// With -spawn the router supervises the topology itself: it launches
// one incgraphd per shard (durable, WAL under -data-root) plus an
// optional warm replica per shard (-replicas 1), restarts crashed
// children with backoff, health-probes every slot, and — when a primary
// dies — promotes its replica and repoints routing at it. Without
// -spawn the shard daemons are managed externally and the router only
// probes, sheds, and promotes.
//
// API:
//
//	POST /update[?wait=1]  split batch, fan out; 503 + Retry-After when
//	                       an owning shard is down or shedding; partial
//	                       applies reported per shard, never acked whole
//	GET  /query/sssp       global distances via iterated exchange
//	GET  /query/cc         global labels via boundary-label union
//	GET  /epochs           acknowledged floor and live per-shard epochs
//	GET  /shards           routing table: members, health, generations
//	GET  /metrics          router metrics (Prometheus text format)
//	GET  /healthz          router liveness
//
// Cluster observability (see README "Cluster observability"):
//
//	GET  /debug/cluster/trace  merged Perfetto timeline across router,
//	                           shards, and replicas (?trace= filters to
//	                           one request's spans)
//	GET  /cluster/metrics      every member's metrics federated under
//	                           shard/role labels, plus cluster rollups
//	                           (apply-latency merge, epoch skew,
//	                           replica lag, total sheds)
//	GET  /cluster/health       per-member liveness, epochs, generations
//	GET  /cluster/events       recent supervisor topology events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"incgraph"
	"incgraph/internal/obs"
	"incgraph/internal/shard"
)

// routerFlags holds every incrouter flag value.
type routerFlags struct {
	listen       string
	shardAddrs   string
	replicaAddrs string
	logLevel     string
	accessLog    bool

	spawn     bool
	incgraphd string
	shards    int
	replicas  int
	basePort  int
	dataRoot  string
	fsync     string

	graphPath string
	algos     string
	src       int
	genKind   string
	genNodes  int
	genDeg    int
	genDirect bool
	genSeed   int64
}

// newRouterFlags defines the router's flags on fs.
func newRouterFlags(fs *flag.FlagSet) *routerFlags {
	c := &routerFlags{}
	fs.StringVar(&c.listen, "listen", ":8360", "HTTP listen address")
	fs.StringVar(&c.shardAddrs, "shard-addrs", "", "comma-separated shard base URLs (externally managed topology)")
	fs.StringVar(&c.replicaAddrs, "replica-addrs", "", "comma-separated warm-replica base URLs, aligned with -shard-addrs (empty entries allowed)")
	fs.StringVar(&c.logLevel, "log-level", "info", "log verbosity: debug|info|warn|error")
	fs.BoolVar(&c.accessLog, "access-log", false, "log every HTTP request (method, path, status, duration, trace ID)")

	fs.BoolVar(&c.spawn, "spawn", false, "spawn and supervise the shard topology as child processes")
	fs.StringVar(&c.incgraphd, "incgraphd", "incgraphd", "path to the incgraphd binary (with -spawn)")
	fs.IntVar(&c.shards, "shards", 2, "shard count (with -spawn)")
	fs.IntVar(&c.replicas, "replicas", 0, "warm replicas per shard, 0 or 1 (with -spawn)")
	fs.IntVar(&c.basePort, "base-port", 9321, "first port for spawned children; shard i gets base+2i, its replica base+2i+1")
	fs.StringVar(&c.dataRoot, "data-root", "", "directory for spawned children's WALs (with -spawn; required)")
	fs.StringVar(&c.fsync, "fsync", "always", "WAL fsync policy passed to spawned children")

	fs.StringVar(&c.graphPath, "graph", "", "graph file passed to spawned children")
	fs.StringVar(&c.algos, "algos", "sssp,cc", "query classes passed to spawned children")
	fs.IntVar(&c.src, "src", 0, "sssp source passed to spawned children")
	fs.StringVar(&c.genKind, "gen", "", "synthetic generator passed to spawned children: powerlaw|grid")
	fs.IntVar(&c.genNodes, "nodes", 1000, "synthetic node count passed to spawned children")
	fs.IntVar(&c.genDeg, "deg", 8, "synthetic average degree passed to spawned children")
	fs.BoolVar(&c.genDirect, "directed", false, "synthetic graph directed (passed to spawned children)")
	fs.Int64Var(&c.genSeed, "seed", 1, "synthetic seed passed to spawned children")
	return c
}

// validateRouterFlags rejects unusable configurations before anything
// is spawned or bound.
func validateRouterFlags(c *routerFlags) error {
	if c.spawn {
		if c.shards < 1 {
			return fmt.Errorf("-shards must be >= 1, got %d", c.shards)
		}
		if c.replicas < 0 || c.replicas > 1 {
			return fmt.Errorf("-replicas must be 0 or 1, got %d", c.replicas)
		}
		if c.dataRoot == "" {
			return fmt.Errorf("-spawn requires -data-root (spawned shards are durable)")
		}
		if c.graphPath == "" && c.genKind == "" {
			return fmt.Errorf("-spawn requires -graph or -gen for the children")
		}
		return nil
	}
	if c.shardAddrs == "" {
		return fmt.Errorf("need -shard-addrs (or -spawn)")
	}
	return nil
}

func main() {
	c := newRouterFlags(flag.CommandLine)
	flag.Parse()
	if err := validateRouterFlags(c); err != nil {
		fmt.Fprintln(os.Stderr, "incrouter:", err)
		flag.Usage()
		os.Exit(2)
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(c.logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "incrouter: bad -log-level:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	if err := run(logger, c); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// splitAddrs parses a comma-separated URL list, keeping empty entries
// (an unreplicated slot in -replica-addrs).
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// childSpecs builds the supervisor specs for -spawn mode: one durable
// shard daemon per slot, plus a warm replica when -replicas 1.
func childSpecs(c *routerFlags) (specs []shard.ProcSpec, primaries []string) {
	common := []string{
		"-algos", c.algos,
		"-src", strconv.Itoa(c.src),
		"-shards", strconv.Itoa(c.shards),
		"-fsync", c.fsync,
	}
	if c.graphPath != "" {
		common = append(common, "-graph", c.graphPath)
	} else {
		common = append(common,
			"-gen", c.genKind,
			"-nodes", strconv.Itoa(c.genNodes),
			"-deg", strconv.Itoa(c.genDeg),
			"-seed", strconv.FormatInt(c.genSeed, 10))
		if c.genDirect {
			common = append(common, "-directed")
		}
	}
	for i := 0; i < c.shards; i++ {
		pport := c.basePort + 2*i
		paddr := fmt.Sprintf("http://127.0.0.1:%d", pport)
		primaries = append(primaries, paddr)
		argv := append([]string{c.incgraphd,
			"-listen", fmt.Sprintf("127.0.0.1:%d", pport),
			"-shard-id", strconv.Itoa(i),
			"-data-dir", filepath.Join(c.dataRoot, fmt.Sprintf("shard-%d", i)),
		}, common...)
		specs = append(specs, shard.ProcSpec{
			Name: fmt.Sprintf("shard%d", i), Shard: i, Addr: paddr, Argv: argv,
		})
		if c.replicas > 0 {
			rport := pport + 1
			raddr := fmt.Sprintf("http://127.0.0.1:%d", rport)
			rargv := append([]string{c.incgraphd,
				"-listen", fmt.Sprintf("127.0.0.1:%d", rport),
				"-shard-id", strconv.Itoa(i),
				"-replica-of", paddr,
				"-data-dir", filepath.Join(c.dataRoot, fmt.Sprintf("shard-%d-replica", i)),
			}, common...)
			specs = append(specs, shard.ProcSpec{
				Name: fmt.Sprintf("shard%d-replica", i), Shard: i, Replica: true, Addr: raddr, Argv: rargv,
			})
		}
	}
	return specs, primaries
}

func run(logger *slog.Logger, c *routerFlags) error {
	var specs []shard.ProcSpec
	var primaries []string
	if c.spawn {
		specs, primaries = childSpecs(c)
	} else {
		primaries = splitAddrs(c.shardAddrs)
	}
	table := shard.NewTable(primaries)
	if !c.spawn {
		for i, addr := range splitAddrs(c.replicaAddrs) {
			if i < len(primaries) && addr != "" {
				table.SetReplica(i, addr)
			}
		}
	}

	// The supervisor runs in both modes: with children it spawns,
	// restarts, probes, and promotes; with none it is purely the prober
	// and failover agent for an externally managed topology. The event
	// ring is shared with the router so supervisor actions (spawns,
	// probe failures, promotions) surface at GET /cluster/events.
	events := obs.NewRing[shard.TopologyEvent](256)
	sup, err := shard.NewSupervisor(shard.SupervisorOptions{
		Table:  table,
		Specs:  specs,
		Events: events,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}
	if err := sup.Start(); err != nil {
		return err
	}
	defer sup.Stop()
	if err := sup.WaitReady(60 * time.Second); err != nil {
		return err
	}

	// Discover the graph shape and verify the topology agrees on the
	// partitioning before routing a single byte.
	info, err := discover(table)
	if err != nil {
		return err
	}
	if info.Shards != len(primaries) {
		return fmt.Errorf("shard 0 reports %d shards, router has %d", info.Shards, len(primaries))
	}
	part, err := shard.NewPartitioner(info.Partitioner, len(primaries))
	if err != nil {
		return err
	}
	router, err := shard.NewRouter(shard.RouterOptions{
		Part:     part,
		Table:    table,
		Directed: info.Directed,
		NumNodes: info.Nodes,
		Events:   events,
	})
	if err != nil {
		return err
	}

	handler := router.Handler()
	if c.accessLog {
		handler = incgraph.AccessLog(logger, handler)
	}
	srv := &http.Server{Addr: c.listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", c.listen, "shards", len(primaries),
			"nodes", info.Nodes, "partitioner", part.Name())
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	return nil
}

// discover asks shard 0 for the deployment's shape, retrying briefly —
// the shard answers /healthz before its first host finishes the initial
// batch run.
func discover(table *shard.Table) (shard.Info, error) {
	addr, _ := table.Active(0)
	c := &shard.Client{Base: addr}
	deadline := time.Now().Add(60 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		info, err := c.Info(ctx)
		cancel()
		if err == nil {
			if info.Nodes <= 0 {
				return info, fmt.Errorf("shard 0 at %s is not in shard mode (did it get -shard-id/-shards?)", addr)
			}
			return info, nil
		}
		if time.Now().After(deadline) {
			return shard.Info{}, fmt.Errorf("shard 0 at %s: %w", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
