package incgraph_test

// Godoc examples: each shows one public entry point end to end and is
// executed by go test.

import (
	"bytes"
	"fmt"

	"incgraph"
)

func ExampleNewIncSSSP() {
	g := incgraph.NewGraph(4, true)
	g.InsertEdge(0, 1, 5)
	g.InsertEdge(1, 2, 5)

	inc := incgraph.NewIncSSSP(g, 0)
	fmt.Println("before:", inc.Dist()[2])

	inc.Apply(incgraph.Batch{
		{Kind: incgraph.InsertEdge, From: 0, To: 2, W: 3},
	})
	fmt.Println("after: ", inc.Dist()[2])
	// Output:
	// before: 10
	// after:  3
}

func ExampleNewIncCC() {
	g := incgraph.NewGraph(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(2, 3, 1)

	inc := incgraph.NewIncCC(g)
	fmt.Println("components before:", inc.Labels())

	inc.Apply(incgraph.Batch{{Kind: incgraph.InsertEdge, From: 1, To: 2, W: 1}})
	fmt.Println("components after: ", inc.Labels())
	// Output:
	// components before: [0 0 2 2]
	// components after:  [0 0 0 0]
}

func ExampleNewIncSim() {
	// Data: a(0) -> b(1); pattern: A(a) -> B(b).
	g := incgraph.NewGraph(3, true)
	g.SetLabel(0, 'a')
	g.SetLabel(1, 'b')
	g.SetLabel(2, 'a')
	g.InsertEdge(0, 1, 1)

	q := incgraph.NewGraph(2, true)
	q.SetLabel(0, 'a')
	q.SetLabel(1, 'b')
	q.InsertEdge(0, 1, 1)

	inc := incgraph.NewIncSim(g, q)
	fmt.Println("matches before:", inc.Relation().Count())

	// Give node 2 a b-successor: it now simulates pattern node A too.
	inc.Apply(incgraph.Batch{{Kind: incgraph.InsertEdge, From: 2, To: 1, W: 1}})
	fmt.Println("matches after: ", inc.Relation().Count())
	// Output:
	// matches before: 2
	// matches after:  3
}

func ExampleNewIncDFS() {
	g := incgraph.NewGraph(3, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)

	inc := incgraph.NewIncDFS(g)
	tr := inc.Tree()
	fmt.Println("intervals:", tr.First, tr.Last)

	inc.Apply(incgraph.Batch{{Kind: incgraph.DeleteEdge, From: 1, To: 2}})
	tr = inc.Tree()
	fmt.Println("parent of 2:", tr.Parent[2])
	// Output:
	// intervals: [1 2 3] [6 5 4]
	// parent of 2: -1
}

func ExampleNewIncLCC() {
	// A triangle with a tail.
	g := incgraph.NewGraph(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(2, 3, 1)

	inc := incgraph.NewIncLCC(g)
	fmt.Printf("γ(0) = %.2f, γ(2) = %.2f\n", inc.Result().Gamma(0), inc.Result().Gamma(2))

	inc.Apply(incgraph.Batch{{Kind: incgraph.DeleteEdge, From: 0, To: 1}})
	fmt.Printf("γ(2) after = %.2f\n", inc.Result().Gamma(2))
	// Output:
	// γ(0) = 1.00, γ(2) = 0.33
	// γ(2) after = 0.00
}

func ExampleNewIncBC() {
	// Two triangles sharing node 2: a "bowtie" with one articulation point.
	g := incgraph.NewGraph(5, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(3, 4, 1)
	g.InsertEdge(2, 4, 1)

	inc := incgraph.NewIncBC(g)
	fmt.Println("components:", inc.Result().NumComps())
	fmt.Println("articulation at 2:", inc.Result().Articulation[2])

	// Tie the triangles together: the articulation point disappears.
	inc.Apply(incgraph.Batch{{Kind: incgraph.InsertEdge, From: 0, To: 4, W: 1}})
	fmt.Println("after insert:", inc.Result().NumComps(), inc.Result().Articulation[2])
	// Output:
	// components: 2
	// articulation at 2: true
	// after insert: 1 false
}

func ExampleReadGraph() {
	in := `graph directed 3
v 2 7
e 0 1 5
e 1 2 2
`
	g, err := incgraph.ReadGraph(bytes.NewReader([]byte(in)))
	if err != nil {
		panic(err)
	}
	fmt.Println(g.NumNodes(), g.NumEdges(), g.Label(2), g.Weight(0, 1))
	// Output: 3 2 7 5
}

func ExampleSSSP() {
	g := incgraph.GridGraph(1, 3, 3)
	dist := incgraph.SSSP(g, 0)
	fmt.Println(len(dist), dist[0])
	// Output: 9 0
}
