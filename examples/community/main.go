// Community tracking: incremental connected components and clustering
// coefficients over an evolving friendship network.
//
// A moderation team watches how communities merge and split and how
// tightly knit they are (the clustering coefficient) as friendships form
// and dissolve. Both metrics are maintained incrementally and verified
// against batch recomputation each round.
package main

import (
	"fmt"
	"time"

	"incgraph"
)

func main() {
	g := incgraph.PowerLawGraph(21, 20_000, 10, false)
	fmt.Printf("friendship network: %d users, %d friendships\n\n", g.NumNodes(), g.NumEdges())

	ccInc := incgraph.NewIncCC(g)
	lccInc := incgraph.NewIncLCC(g.Clone())

	var ccTotal, lccTotal, batchTotal time.Duration
	for day := 1; day <= 7; day++ {
		// Each day brings a churn of new friendships (60%) and removals.
		delta := incgraph.RandomUpdates(int64(200+day), ccInc.Graph(), 300, 0.6)

		t0 := time.Now()
		ccInc.Apply(delta)
		ccTime := time.Since(t0)
		ccTotal += ccTime

		t0 = time.Now()
		lccInc.Apply(delta)
		lccTime := time.Since(t0)
		lccTotal += lccTime

		// Verify against batch recomputation.
		t0 = time.Now()
		wantCC := incgraph.ConnectedComponents(ccInc.Graph())
		wantLCC := incgraph.LCC(lccInc.Graph())
		batchTotal += time.Since(t0)
		for v, l := range ccInc.Labels() {
			if l != wantCC[v] {
				panic("component labels diverged")
			}
		}
		if !lccInc.Result().Equal(wantLCC) {
			panic("clustering coefficients diverged")
		}

		comps := map[int64]int{}
		for _, l := range ccInc.Labels() {
			comps[l]++
		}
		giant := 0
		for _, size := range comps {
			if size > giant {
				giant = size
			}
		}
		var avgGamma float64
		for v := 0; v < ccInc.Graph().NumNodes(); v++ {
			avgGamma += lccInc.Result().Gamma(incgraph.NodeID(v))
		}
		avgGamma /= float64(ccInc.Graph().NumNodes())

		fmt.Printf("day %d: %d updates | components %4d (giant %5d) | avg γ %.4f | IncCC %8v | IncLCC %8v\n",
			day, len(delta), len(comps), giant, avgGamma,
			ccTime.Round(time.Microsecond), lccTime.Round(time.Microsecond))
	}
	fmt.Printf("\ntotals: IncCC %v + IncLCC %v vs batch verification %v\n",
		ccTotal.Round(time.Millisecond), lccTotal.Round(time.Millisecond),
		batchTotal.Round(time.Millisecond))
}
