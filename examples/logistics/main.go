// Logistics: watching for single points of failure in a supply network.
//
// Warehouses and routes come and go (vertex and edge updates, §4 of the
// paper); the operator needs to know, after every change, which warehouses
// are articulation points — their failure would disconnect deliveries —
// and how redundancy (biconnected components) evolves. Both are maintained
// incrementally and verified against batch recomputation.
package main

import (
	"fmt"
	"time"

	"incgraph"
)

func main() {
	// Start from a sparse power-law network: a few hubs, many spokes —
	// exactly the shape that breeds articulation points.
	g := incgraph.PowerLawGraph(31, 5_000, 4, false)
	fmt.Printf("supply network: %d sites, %d routes\n\n", g.NumNodes(), g.NumEdges())

	inc := incgraph.NewIncBC(g)
	count := func() int {
		n := 0
		for _, a := range inc.Result().Articulation {
			if a {
				n++
			}
		}
		return n
	}
	fmt.Printf("initially: %d articulation points, %d biconnected components\n\n",
		count(), inc.Result().NumComps())

	var incTotal, batchTotal time.Duration
	for week := 1; week <= 6; week++ {
		delta := incgraph.RandomUpdates(int64(300+week), inc.Graph(), 150, 0.6)

		// Every other week a new warehouse opens, wired to two existing
		// sites — a vertex insertion expressed through its edge dual.
		if week%2 == 0 {
			v := inc.Graph().AddNode(0)
			delta = append(delta,
				incgraph.Update{Kind: incgraph.InsertEdge, From: incgraph.NodeID(week * 13), To: v, W: 1},
				incgraph.Update{Kind: incgraph.InsertEdge, From: v, To: incgraph.NodeID(week * 29), W: 1},
			)
		}

		t0 := time.Now()
		visited := inc.Apply(delta)
		incTime := time.Since(t0)
		incTotal += incTime

		t0 = time.Now()
		want := incgraph.Biconnectivity(inc.Graph())
		batchTotal += time.Since(t0)
		if !inc.Result().Equivalent(want) {
			panic("biconnectivity diverged from batch recomputation")
		}

		fmt.Printf("week %d: %3d changes | %5d sites revisited | %4d articulation points | %5d components | inc %8v\n",
			week, len(delta), visited, count(), inc.Result().NumComps(),
			incTime.Round(time.Microsecond))
	}
	fmt.Printf("\ntotals: incremental %v vs batch verification %v\n",
		incTotal.Round(time.Millisecond), batchTotal.Round(time.Millisecond))
}
