// Quickstart: build a small weighted graph, run batch SSSP, then keep the
// distances current under a stream of edge updates with the deduced
// incremental algorithm — the minimal end-to-end tour of the library.
package main

import (
	"fmt"

	"incgraph"
)

func main() {
	// A small directed delivery network: weights are travel minutes.
	g := incgraph.NewGraph(6, true)
	type e struct {
		u, v incgraph.NodeID
		w    int64
	}
	for _, x := range []e{
		{0, 1, 7}, {0, 2, 9}, {0, 5, 14}, {1, 2, 10}, {1, 3, 15},
		{2, 3, 11}, {2, 5, 2}, {3, 4, 6}, {4, 5, 9}, {5, 4, 9},
	} {
		g.InsertEdge(x.u, x.v, x.w)
	}

	// Batch run: Dijkstra's algorithm (the paper's Fig. 1).
	fmt.Println("batch distances from node 0:")
	printDists(incgraph.SSSP(g, 0))

	// Incremental maintenance: the maintainer owns g from here on.
	inc := incgraph.NewIncSSSP(g, 0)

	// A road closure and a new shortcut arrive as one batch ΔG.
	delta := incgraph.Batch{
		{Kind: incgraph.DeleteEdge, From: 2, To: 5},
		{Kind: incgraph.InsertEdge, From: 1, To: 5, W: 3},
	}
	h0 := inc.Apply(delta)
	fmt.Printf("\nafter ΔG (closed 2→5, opened 1→5): repaired %d variables\n", h0)
	printDists(inc.Dist())

	// The correctness equation Q(G ⊕ ΔG) = Q(G) ⊕ A_Δ(...): the maintained
	// result equals a from-scratch batch run on the updated graph.
	batch := incgraph.SSSP(inc.Graph(), 0)
	for v := range batch {
		if batch[v] != inc.Dist()[v] {
			panic("incremental result diverged from batch recomputation")
		}
	}
	fmt.Println("\nincremental result verified against batch recomputation ✓")
}

func printDists(d []int64) {
	for v, x := range d {
		if x >= incgraph.Infinity {
			fmt.Printf("  node %d: unreachable\n", v)
			continue
		}
		fmt.Printf("  node %d: %d min\n", v, x)
	}
}
