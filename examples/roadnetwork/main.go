// Road network: incremental shortest paths over an evolving grid.
//
// A w×h grid of intersections stands in for a city road network (the
// paper's road-network motivation [49]). The example simulates a day of
// operations: road closures and re-openings arrive in batches, and the
// dispatcher needs fresh travel times from the depot after each batch.
// It compares re-running Dijkstra from scratch against the deduced
// incremental algorithm and verifies they agree.
package main

import (
	"fmt"
	"time"

	"incgraph"
)

const (
	width, height = 220, 220
	rounds        = 8
	churnPerRound = 60
)

func main() {
	g := incgraph.GridGraph(7, width, height)
	depot := incgraph.NodeID(0)
	fmt.Printf("grid road network: %d intersections, %d road segments\n",
		g.NumNodes(), g.NumEdges())

	start := time.Now()
	inc := incgraph.NewIncSSSP(g, depot)
	fmt.Printf("initial plan (batch Dijkstra inside the maintainer): %v\n\n", time.Since(start).Round(time.Microsecond))

	var incTotal, batchTotal time.Duration
	for round := 1; round <= rounds; round++ {
		// Each round closes some segments and opens others (roadworks
		// finishing): a mixed update batch.
		delta := incgraph.RandomUpdates(int64(round), inc.Graph(), churnPerRound, 0.5)

		t0 := time.Now()
		repaired := inc.Apply(delta)
		incTime := time.Since(t0)
		incTotal += incTime

		t0 = time.Now()
		batch := incgraph.SSSP(inc.Graph(), depot)
		batchTime := time.Since(t0)
		batchTotal += batchTime

		for v := range batch {
			if batch[v] != inc.Dist()[v] {
				panic("distances diverged")
			}
		}
		reach := 0
		for _, d := range inc.Dist() {
			if d < incgraph.Infinity {
				reach++
			}
		}
		fmt.Printf("round %d: %2d road changes | incremental %8v (repaired %4d vars) | batch %8v | reachable %d\n",
			round, len(delta), incTime.Round(time.Microsecond), repaired,
			batchTime.Round(time.Microsecond), reach)
	}
	fmt.Printf("\ntotals over %d rounds: incremental %v vs batch %v (%.1fx speedup)\n",
		rounds, incTotal.Round(time.Microsecond), batchTotal.Round(time.Microsecond),
		float64(batchTotal)/float64(incTotal))
}
