// Social recommendation: incremental graph pattern matching.
//
// An e-commerce team watches a follower graph for a fraud-ish pattern
// ("an influencer followed by a reseller who follows a bot that follows
// the influencer back" — any small labeled digraph works). Follows and
// unfollows stream in continuously; the maximum graph simulation must
// stay current (the paper's e-commerce motivation [34, 53]).
package main

import (
	"fmt"
	"time"

	"incgraph"
)

func main() {
	// A power-law follower graph with 5 account types as labels.
	g := incgraph.PowerLawGraph(11, 30_000, 12, true)
	fmt.Printf("follower graph: %d accounts, %d follow edges\n", g.NumNodes(), g.NumEdges())

	// The watched pattern: 4 typed accounts, 6 required follow edges —
	// the |Q| = (4, 6) shape of the paper's experiments.
	q := incgraph.RandomPattern(3, 4, 6, 5)
	fmt.Printf("pattern: %d nodes, %d edges\n\n", q.NumNodes(), q.NumEdges())

	start := time.Now()
	inc := incgraph.NewIncSim(g, q)
	fmt.Printf("initial match (batch Sim_fp inside the maintainer): %v, %d matching pairs\n\n",
		time.Since(start).Round(time.Millisecond), inc.Relation().Count())

	var incTotal, batchTotal time.Duration
	for window := 1; window <= 6; window++ {
		// Each window carries a burst of follows (70%) and unfollows.
		delta := incgraph.RandomUpdates(int64(100+window), inc.Graph(), 400, 0.7)

		t0 := time.Now()
		scope := inc.Apply(delta)
		incTime := time.Since(t0)
		incTotal += incTime

		t0 = time.Now()
		batch := incgraph.Simulation(inc.Graph(), q)
		batchTime := time.Since(t0)
		batchTotal += batchTime

		if !inc.Relation().Equal(batch) {
			panic("incremental relation diverged from batch")
		}
		fmt.Printf("window %d: %d updates | incremental %8v (|H0| = %4d) | batch rerun %8v | matches %d\n",
			window, len(delta), incTime.Round(time.Microsecond), scope,
			batchTime.Round(time.Microsecond), inc.Relation().Count())
	}
	fmt.Printf("\ntotals: incremental %v vs batch %v (%.1fx speedup)\n",
		incTotal.Round(time.Millisecond), batchTotal.Round(time.Millisecond),
		float64(batchTotal)/float64(incTotal))
}
