package incgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"incgraph/internal/bc"
	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// flatStream builds a random update stream over n nodes: a third
// deletions, the rest weighted insertions (re-inserting an existing edge
// replaces its weight, which exercises the overlay's resurrect path).
func flatStream(rng *rand.Rand, n, length int) graph.Batch {
	b := make(graph.Batch, 0, length)
	for len(b) < length {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if rng.Intn(3) == 0 {
			b = append(b, graph.Update{Kind: graph.DeleteEdge, From: u, To: v})
		} else {
			b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: int64(rng.Intn(9) + 1)})
		}
	}
	return b
}

// TestFlatDifferentialSixClass is the whole-fleet differential test of
// the flat (CSR + overlay) execution core. For the three classes whose
// adapters read the flat view (SSSP, CC, BC) it runs a flat-backed and a
// legacy (WithoutFlat) maintainer side by side on the same random update
// stream and requires the published results — and for the engine-backed
// classes the Portable WorkLedgers, bit for bit — to agree after every
// batch. (Portable zeroes Rounds: the flat view scans rows in CSR order
// while the legacy path scans insertion order, and round boundaries are
// schedule-dependent — the same reason the seq/par differential compares
// Portable ledgers.) The
// remaining classes (Sim, DFS, LCC), which this refactor moved onto
// dense epoch-marked sets rather than the flat view itself, are checked
// against from-scratch recomputation each batch. Seeds come from
// testing/quick; run under -race this also exercises staging vs the
// parallel drain.
func TestFlatDifferentialSixClass(t *testing.T) {
	const nodes, chunks, chunkLen = 160, 6, 40
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gd := PowerLawGraph(seed+1, nodes, 4, true)
		gu := PowerLawGraph(seed+2, nodes, 4, false)
		pattern := RandomPattern(seed+3, 4, 5, 3)

		sFlat := sssp.NewInc(gd.Clone(), 0)
		sLegacy := sssp.NewInc(gd.Clone(), 0, sssp.WithoutFlat())
		cFlat := cc.NewInc(gu.Clone())
		cLegacy := cc.NewInc(gu.Clone(), cc.WithoutFlat())
		bFlat := bc.NewInc(gu.Clone())
		bLegacy := bc.NewInc(gu.Clone(), bc.WithoutFlat())
		simEng := sim.NewIncEngine(gd.Clone(), pattern)
		dfsInc := dfs.NewInc(gu.Clone())
		dfsLegacy := dfs.NewInc(gu.Clone(), dfs.WithoutFlat())
		lccInc := lcc.NewInc(gu.Clone())

		// An aggressive threshold on one side forces several compactions
		// mid-stream, so the differential covers overlay reads, compacted
		// reads, and the transition between them.
		sFlat.SetCompactThreshold(0.05)
		cFlat.SetCompactThreshold(0.05)

		if sLegacy.Flat() != nil || cLegacy.Flat() != nil || bLegacy.Flat() != nil {
			t.Errorf("seed %d: WithoutFlat maintainer still built a flat view", seed)
			return false
		}

		for i := 0; i < chunks; i++ {
			dStream := flatStream(rng, nodes, chunkLen)
			uStream := flatStream(rng, nodes, chunkLen)

			sFlat.Stage(dStream)
			sLegacy.Stage(dStream)
			sFlat.Repair()
			sLegacy.Repair()
			if !reflect.DeepEqual(sFlat.Dist(), sLegacy.Dist()) {
				t.Errorf("seed %d chunk %d: sssp flat vs legacy distances diverged", seed, i)
				return false
			}
			if a, b := sFlat.Stats().Ledger.Portable(), sLegacy.Stats().Ledger.Portable(); a != b {
				t.Errorf("seed %d chunk %d: sssp ledgers diverged:\nflat   %+v\nlegacy %+v", seed, i, a, b)
				return false
			}

			cFlat.Stage(uStream)
			cLegacy.Stage(uStream)
			cFlat.Repair()
			cLegacy.Repair()
			if !reflect.DeepEqual(cFlat.Labels(), cLegacy.Labels()) {
				t.Errorf("seed %d chunk %d: cc flat vs legacy labels diverged", seed, i)
				return false
			}
			if a, b := cFlat.Stats().Ledger.Portable(), cLegacy.Stats().Ledger.Portable(); a != b {
				t.Errorf("seed %d chunk %d: cc ledgers diverged:\nflat   %+v\nlegacy %+v", seed, i, a, b)
				return false
			}

			bFlat.Stage(uStream)
			bLegacy.Stage(uStream)
			bFlat.Repair()
			bLegacy.Repair()
			if !bFlat.Result().Equivalent(bLegacy.Result()) {
				t.Errorf("seed %d chunk %d: bc flat vs legacy results diverged", seed, i)
				return false
			}

			simEng.Apply(dStream)
			if ref := sim.Simfp(simEng.Graph(), pattern); !simEng.Relation().Equal(ref) {
				t.Errorf("seed %d chunk %d: sim relation diverged from recompute", seed, i)
				return false
			}

			dfsInc.Stage(uStream)
			dfsLegacy.Stage(uStream)
			dfsInc.Repair()
			dfsLegacy.Repair()
			if !dfsInc.Tree().IsValid(dfsInc.Graph()) {
				t.Errorf("seed %d chunk %d: dfs tree invalid after repair", seed, i)
				return false
			}
			// The canonical traversal is a unique function of the graph, so
			// flat and legacy neighbor enumeration must build the SAME tree.
			if !dfsInc.Tree().Equal(dfsLegacy.Tree()) {
				t.Errorf("seed %d chunk %d: dfs flat vs legacy trees diverged", seed, i)
				return false
			}

			lccInc.Stage(uStream)
			lccInc.Repair()
			if ref := lcc.Run(lccInc.Graph()); !lccInc.Result().Equal(ref) {
				t.Errorf("seed %d chunk %d: lcc result diverged from recompute", seed, i)
				return false
			}
		}
		// The aggressive threshold must actually have compacted; the
		// default-threshold BC view must still be live.
		if sFlat.Flat().Compactions() == 0 {
			t.Errorf("seed %d: sssp flat view never compacted at threshold 0.05", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}
