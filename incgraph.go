// Package incgraph is a Go implementation of "Incrementalizing Graph
// Algorithms" (Fan, Tian, Xu, Yin, Yu, Zhou — SIGMOD 2021): a systematic
// framework that deduces incremental graph algorithms from batch fixpoint
// algorithms, with correctness (Theorem 1) and relative boundedness
// (Theorem 3) guarantees.
//
// The package exposes, for each of the paper's five query classes — SSSP,
// connected components, graph simulation, depth-first search and local
// clustering coefficient — the batch algorithm and an incremental
// maintainer deduced from it. A maintainer owns its graph: construct it
// once (paying the batch cost), then feed update batches ΔG through Apply
// and read the always-current result:
//
//	g := incgraph.NewGraph(n, true)
//	// ... InsertEdge ...
//	inc := incgraph.NewIncSSSP(g, 0)
//	inc.Apply(incgraph.Batch{{Kind: incgraph.InsertEdge, From: 3, To: 7, W: 2}})
//	dist := inc.Dist() // distances on G ⊕ ΔG
//
// The generic machinery — the fixpoint model Φ, the initial scope function
// h of Fig. 4, timestamps and the order <_C — lives in internal/fixpoint
// and can host further query classes; the five instances here follow §3–5
// of the paper, and two extensions (biconnectivity, dual simulation) show
// what adding a class costs.
package incgraph

import (
	"io"
	"log/slog"
	"net/http"

	"incgraph/internal/bc"
	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/serve"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
	"incgraph/internal/trace"
	"incgraph/internal/wal"
)

// Graph construction and update vocabulary, re-exported from the graph
// substrate.
type (
	// Graph is a mutable labeled graph, directed or undirected.
	Graph = graph.Graph
	// NodeID identifies a node (dense ids 0..n-1).
	NodeID = graph.NodeID
	// Label is a node label.
	Label = graph.Label
	// Update is a unit update: one edge insertion or deletion.
	Update = graph.Update
	// Batch is a batch update ΔG: a sequence of unit updates.
	Batch = graph.Batch
	// Temporal is a temporal graph with a timestamped event log.
	Temporal = graph.Temporal
	// Event is a timestamped unit update.
	Event = graph.Event
)

// Update kinds.
const (
	// InsertEdge adds an edge.
	InsertEdge = graph.InsertEdge
	// DeleteEdge removes an edge.
	DeleteEdge = graph.DeleteEdge
)

// Infinity is the distance of unreachable nodes in SSSP results.
const Infinity = graph.Infinity

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int, directed bool) *Graph { return graph.New(n, directed) }

// NewTemporal builds a temporal graph from an event log.
func NewTemporal(n int, directed bool, labels []Label, events []Event) *Temporal {
	return graph.NewTemporal(n, directed, labels, events)
}

// SSSP computes single-source shortest distances with the batch algorithm
// (Dijkstra, Fig. 1 of the paper).
func SSSP(g *Graph, src NodeID) []int64 { return sssp.Dijkstra(g, src) }

// IncSSSP incrementally maintains single-source shortest distances; it is
// deducible from Dijkstra's algorithm (Fig. 5).
type IncSSSP = sssp.Inc

// NewIncSSSP computes the initial distances and returns the maintainer.
func NewIncSSSP(g *Graph, src NodeID) *IncSSSP { return sssp.NewInc(g, src) }

// ConnectedComponents labels every node with the minimum node id of its
// (weakly) connected component, using the batch fixpoint algorithm CC_fp.
func ConnectedComponents(g *Graph) []int64 { return cc.CCfp(g) }

// IncCC incrementally maintains component labels; it is weakly deducible
// from CC_fp, using timestamps (Example 5).
type IncCC = cc.Inc

// NewIncCC computes the initial labels and returns the maintainer.
func NewIncCC(g *Graph) *IncCC { return cc.NewInc(g) }

// Relation is a graph-simulation match relation over V × V_Q.
type Relation = sim.Relation

// Simulation computes the maximum graph simulation of pattern q in g with
// the batch algorithm Sim_fp (§5.1).
func Simulation(g, q *Graph) Relation { return sim.Simfp(g, q) }

// IncSim incrementally maintains the maximum simulation; it is weakly
// deducible from Sim_fp, with timestamps resolving cyclic patterns.
type IncSim = sim.Inc

// NewIncSim computes the initial relation and returns the maintainer.
func NewIncSim(g, q *Graph) *IncSim { return sim.NewInc(g, q) }

// DFSTree is a depth-first-search forest with preorder/postorder
// intervals.
type DFSTree = dfs.Tree

// DFS computes the canonical depth-first forest of g with the batch
// algorithm DFS_fp (§5.2).
func DFS(g *Graph) *DFSTree { return dfs.Run(g) }

// IncDFS incrementally maintains the canonical DFS forest; it is deducible
// from DFS_fp.
type IncDFS = dfs.Inc

// NewIncDFS computes the initial forest and returns the maintainer.
func NewIncDFS(g *Graph) *IncDFS { return dfs.NewInc(g) }

// LCCResult holds per-node degrees and triangle counts; Gamma(v) derives
// the local clustering coefficient.
type LCCResult = lcc.Result

// LCC computes local clustering coefficients of an undirected graph with
// the batch algorithm LCC_fp (§5.3).
func LCC(g *Graph) *LCCResult { return lcc.Run(g) }

// IncLCC incrementally maintains clustering coefficients; it is deducible
// from LCC_fp without any auxiliary structure.
type IncLCC = lcc.Inc

// NewIncLCC computes the initial coefficients and returns the maintainer.
func NewIncLCC(g *Graph) *IncLCC { return lcc.NewInc(g) }

// DualSimulation computes the maximum dual simulation — plain simulation
// plus the symmetric parent condition — an extension query class built
// directly on the generic fixpoint engine.
func DualSimulation(g, q *Graph) Relation { return sim.DualSim(g, q) }

// IncDualSim incrementally maintains the maximum dual simulation.
type IncDualSim = sim.IncDual

// NewIncDualSim computes the initial relation and returns the maintainer.
func NewIncDualSim(g, q *Graph) *IncDualSim { return sim.NewIncDual(g, q) }

// BCResult is a biconnectivity structure: articulation points and
// biconnected edge components.
type BCResult = bc.Result

// Biconnectivity computes articulation points and biconnected components
// of an undirected graph (the sixth fixpoint class named in §3).
func Biconnectivity(g *Graph) *BCResult { return bc.Run(g) }

// IncBC incrementally maintains the biconnectivity structure, re-deriving
// only the connected components touched by each batch.
type IncBC = bc.Inc

// NewIncBC computes the initial structure and returns the maintainer.
func NewIncBC(g *Graph) *IncBC { return bc.NewInc(g) }

// Serving layer, re-exported from internal/serve: host maintainers as a
// resident concurrent service with a single-writer apply loop per
// maintainer, update coalescing/batching, snapshot-consistent concurrent
// reads, and an HTTP JSON API (see cmd/incgraphd).
//
// Maintainers themselves are NOT goroutine-safe (see the Inc* docs); the
// Serveable adapters below hand ownership of a maintainer to a Host,
// after which it must not be touched directly.
type (
	// Serveable adapts a maintainer to the serving layer.
	Serveable = serve.Serveable
	// ServeHost runs one maintainer behind a single-writer apply loop.
	ServeHost = serve.Host
	// ServeOptions tune a host's coalescing window, queue depth, and
	// (via Workers) the parallel execution mode on supporting classes.
	ServeOptions = serve.Options
	// Service is a set of named hosts behind one HTTP API.
	Service = serve.Service
	// ServeView is one immutable published snapshot.
	ServeView = serve.View
	// ServeStats are per-host serving counters.
	ServeStats = serve.Stats
	// ServeApplyResult is a maintainer's per-apply report: affected area
	// plus the fixpoint cost-counter delta.
	ServeApplyResult = serve.ApplyResult
	// ServeApplyTrace is one recent-apply trace event (GET /debug/applies).
	ServeApplyTrace = serve.ApplyTrace
	// FixpointStats are the engine's cost counters, the quantities the
	// paper's relative-boundedness guarantee (Theorem 3) is stated over.
	FixpointStats = fixpoint.Stats
	// FixpointTracer is the engine's optional span hook: nil means the
	// untraced (zero-cost) path; internal/trace provides the standard
	// flight-recorder implementation.
	FixpointTracer = fixpoint.Tracer
	// TraceID is a W3C trace-context trace ID, carried from a request's
	// traceparent header through the apply pipeline.
	TraceID = trace.TraceID
	// TraceRecorder is the bounded flight recorder behind GET /debug/trace;
	// (*Service).Recorder exposes the service's own.
	TraceRecorder = trace.Recorder
)

// Durability layer, re-exported from internal/serve and internal/wal:
// write-ahead logging of every ingested batch, periodic checkpoints of
// graph + incremental state at consistent cuts, and crash recovery
// (checkpoint restore + WAL-tail replay, verified against batch
// recompute). See cmd/incgraphd's -data-dir.
type (
	// Durable owns a service's WAL and checkpoints; installed on a
	// Service it write-ahead-logs every update before submission.
	Durable = serve.Durable
	// DurableOptions tune the durability layer (fsync policy, checkpoint
	// cadence, retention).
	DurableOptions = serve.DurableOptions
	// Recovery is the loaded durable state of a data directory: restored
	// per-algo checkpoints plus the WAL tail to replay.
	Recovery = serve.Recovery
	// RecoveredAlgo is one algo's checkpointed graph and state.
	RecoveredAlgo = serve.RecoveredAlgo
	// WALOptions configure the write-ahead log (segment size, fsync
	// policy and interval, fault hooks).
	WALOptions = wal.Options
	// SyncPolicy selects when the WAL fsyncs (always/interval/never).
	SyncPolicy = wal.SyncPolicy
)

// WAL fsync policies.
const (
	// SyncAlways fsyncs before every append acknowledges (group-committed
	// across concurrent appenders) — full durability.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a timer: bounded data loss, higher throughput.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS.
	SyncNever = wal.SyncNever
)

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// LoadRecovery loads the durable state of a data directory: the latest
// readable checkpoint plus the position the WAL tail replays from.
// Returns an empty recovery (no error) for a fresh directory.
func LoadRecovery(dir string) (*Recovery, error) { return serve.LoadRecovery(dir) }

// VerifyRecovered checks every recovered maintainer against a batch
// recompute on its recovered graph, repairing (and reporting) any that
// diverged. The returned slice names the diverged algos.
func VerifyRecovered(targets map[string]Serveable, rec *TraceRecorder) []string {
	return serve.VerifyRecovered(targets, rec)
}

// OpenDurable opens (or creates) the WAL in dir and installs the durable
// ingest path on svc. Run recovery (LoadRecovery / Replay /
// VerifyRecovered) first: Open truncates the torn tail of the last
// segment and appends after it.
func OpenDurable(svc *Service, dir string, opt DurableOptions) (*Durable, error) {
	return serve.OpenDurable(svc, dir, opt)
}

// NewService returns an empty serving layer; register maintainers with
// (*Service).Host and serve (*Service).Handler.
func NewService() *Service { return serve.NewService() }

// NewServeHost starts a standalone host (apply loop) for m.
func NewServeHost(m Serveable, opt ServeOptions) *ServeHost { return serve.NewHost(m, opt) }

// AccessLog wraps an HTTP handler with per-request logging and W3C
// trace-context resolution (see cmd/incgraphd's -access-log).
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return serve.AccessLog(logger, next)
}

// ServeSSSP adapts an SSSP maintainer for serving; src must be the source
// the maintainer was built with.
func ServeSSSP(inc *IncSSSP, src NodeID) Serveable { return serve.SSSP(inc, src) }

// ServeCC adapts a connected-components maintainer for serving.
func ServeCC(inc *IncCC) Serveable { return serve.CC(inc) }

// ServeSim adapts a graph-simulation maintainer for serving.
func ServeSim(inc *IncSim) Serveable { return serve.Sim(inc) }

// ServeDFS adapts a DFS maintainer for serving.
func ServeDFS(inc *IncDFS) Serveable { return serve.DFS(inc) }

// ServeLCC adapts a clustering-coefficient maintainer for serving.
func ServeLCC(inc *IncLCC) Serveable { return serve.LCC(inc) }

// ServeBC adapts a biconnectivity maintainer for serving.
func ServeBC(inc *IncBC) Serveable { return serve.BC(inc) }

// ReadGraph parses a graph in the labeled edge-list text format written by
// (*Graph).WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ReadBatch parses an update batch: one update per line, "+ u v w" or
// "- u v".
func ReadBatch(r io.Reader) (Batch, error) { return graph.ReadBatch(r) }

// WriteBatch serializes an update batch in the ReadBatch format.
func WriteBatch(w io.Writer, b Batch) error { return graph.WriteBatch(w, b) }

// Workload helpers for experimentation, re-exported from the generator
// substrate. All are deterministic in the seed.

// PowerLawGraph generates a labeled preferential-attachment graph with the
// given average degree, the shape of real social networks.
func PowerLawGraph(seed int64, nodes, avgDeg int, directed bool) *Graph {
	return gen.Synthetic(seed, nodes, avgDeg, directed)
}

// GridGraph generates a w×h road-network-like directed grid.
func GridGraph(seed int64, w, h int) *Graph {
	return gen.Grid(newRNG(seed), w, h)
}

// RandomPattern generates a small connected labeled pattern for
// Simulation queries.
func RandomPattern(seed int64, nodes, edges, alphabet int) *Graph {
	return gen.Pattern(newRNG(seed), nodes, edges, alphabet)
}

// RandomUpdates samples a batch of count valid updates against g with the
// given insertion fraction.
func RandomUpdates(seed int64, g *Graph, count int, insertFraction float64) Batch {
	return gen.RandomUpdates(newRNG(seed), g, count, insertFraction)
}
