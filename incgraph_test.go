package incgraph

import (
	"bytes"
	"reflect"
	"testing"
)

func TestFacadeSSSPRoundTrip(t *testing.T) {
	g := NewGraph(4, true)
	g.InsertEdge(0, 1, 2)
	g.InsertEdge(1, 2, 2)
	g.InsertEdge(0, 3, 10)
	inc := NewIncSSSP(g, 0)
	if !reflect.DeepEqual(inc.Dist(), []int64{0, 2, 4, 10}) {
		t.Fatalf("initial dist = %v", inc.Dist())
	}
	inc.Apply(Batch{{Kind: InsertEdge, From: 2, To: 3, W: 1}})
	if inc.Dist()[3] != 5 {
		t.Fatalf("dist[3] = %d after insert", inc.Dist()[3])
	}
	if !reflect.DeepEqual(inc.Dist(), SSSP(g, 0)) {
		t.Fatal("incremental != batch")
	}
}

func TestFacadeCC(t *testing.T) {
	g := NewGraph(4, false)
	g.InsertEdge(0, 1, 1)
	inc := NewIncCC(g)
	inc.Apply(Batch{{Kind: InsertEdge, From: 2, To: 3, W: 1}})
	if !reflect.DeepEqual(inc.Labels(), ConnectedComponents(g)) {
		t.Fatal("incremental != batch")
	}
}

func TestFacadeSimulation(t *testing.T) {
	g := PowerLawGraph(1, 300, 6, true)
	q := RandomPattern(2, 4, 6, 5)
	inc := NewIncSim(g, q)
	inc.Apply(RandomUpdates(3, g, 20, 0.5))
	if !inc.Relation().Equal(Simulation(g, q)) {
		t.Fatal("incremental != batch")
	}
}

func TestFacadeDFSAndLCC(t *testing.T) {
	g := PowerLawGraph(4, 200, 6, false)
	incD := NewIncDFS(g)
	incL := NewIncLCC(g.Clone())
	b := RandomUpdates(5, g, 10, 0.5)
	incD.Apply(b)
	incL.Apply(b)
	if !incD.Tree().Equal(DFS(incD.Graph())) {
		t.Fatal("IncDFS != batch")
	}
	if !incL.Result().Equal(LCC(incL.Graph())) {
		t.Fatal("IncLCC != batch")
	}
}

func TestFacadeDualSim(t *testing.T) {
	g := PowerLawGraph(8, 300, 6, true)
	q := RandomPattern(9, 4, 6, 5)
	inc := NewIncDualSim(g, q)
	inc.Apply(RandomUpdates(10, g, 25, 0.5))
	if !inc.Relation().Equal(DualSimulation(g, q)) {
		t.Fatal("incremental dual sim != batch")
	}
	// Dual simulation refines plain simulation.
	plain := Simulation(g, q)
	dual := inc.Relation()
	for v := 0; v < g.NumNodes(); v++ {
		for u := 0; u < q.NumNodes(); u++ {
			if dual.Match(NodeID(v), NodeID(u)) && !plain.Match(NodeID(v), NodeID(u)) {
				t.Fatal("dual match not a plain match")
			}
		}
	}
}

func TestFacadeBCAndIO(t *testing.T) {
	g := PowerLawGraph(6, 300, 6, false)
	inc := NewIncBC(g)
	inc.Apply(RandomUpdates(7, g, 20, 0.5))
	if !inc.Result().Equivalent(Biconnectivity(g)) {
		t.Fatal("incremental BC != batch")
	}

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost edges")
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g := GridGraph(1, 4, 5); g.NumNodes() != 20 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	g := PowerLawGraph(1, 100, 6, false)
	h := PowerLawGraph(1, 100, 6, false)
	if g.NumEdges() != h.NumEdges() {
		t.Fatal("generator not deterministic")
	}
	tp := NewTemporal(2, false, nil, []Event{
		{Time: 1, Update: Update{Kind: InsertEdge, From: 0, To: 1, W: 1}},
	})
	if tp.Snapshot(1).NumEdges() != 1 {
		t.Fatal("temporal snapshot wrong")
	}
}
