// Package bc implements biconnectivity (BC), the sixth query class the
// paper names as a fixpoint algorithm (§3): articulation points and
// biconnected components of an undirected graph.
//
// The batch algorithm is the classic lowpoint DFS (Hopcroft–Tarjan). The
// deduced incremental algorithm Inc follows the framework's PE discipline
// at connected-component granularity: a batch ΔG marks the components it
// touches as potentially affected and re-derives lowpoints only there,
// reusing every other component's results. This is the coarse deducible
// incrementalization of Theorem 1 — biconnectivity is globally brittle
// within a component (one inserted edge can clear articulation points
// along an entire cycle), so the touched component is the natural affected
// area for BC.
package bc

import (
	"fmt"

	"incgraph/internal/graph"
)

// Result describes the biconnectivity structure: per-node articulation
// flags and a biconnected-component id per edge. Ids are opaque: distinct
// ids mean distinct components, but their numeric values depend on the
// computation history — compare results with Equivalent.
type Result struct {
	// Articulation[v] reports whether removing v disconnects its
	// connected component.
	Articulation []bool
	// EdgeComp maps each edge (canonical min,max endpoints) to its
	// biconnected component id.
	EdgeComp map[[2]graph.NodeID]int32
}

func key(u, v graph.NodeID) [2]graph.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.NodeID{u, v}
}

// NumComps returns the number of biconnected components.
func (r *Result) NumComps() int {
	seen := make(map[int32]bool)
	for _, c := range r.EdgeComp {
		seen[c] = true
	}
	return len(seen)
}

// Equivalent reports whether two results describe the same biconnectivity
// structure: identical articulation flags and edge partitions (up to a
// bijective renaming of component ids).
func (r *Result) Equivalent(o *Result) bool {
	if len(r.Articulation) != len(o.Articulation) || len(r.EdgeComp) != len(o.EdgeComp) {
		return false
	}
	for i := range r.Articulation {
		if r.Articulation[i] != o.Articulation[i] {
			return false
		}
	}
	fwd := make(map[int32]int32)
	bwd := make(map[int32]int32)
	for k, a := range r.EdgeComp {
		b, ok := o.EdgeComp[k]
		if !ok {
			return false
		}
		if m, seen := fwd[a]; seen && m != b {
			return false
		}
		if m, seen := bwd[b]; seen && m != a {
			return false
		}
		fwd[a] = b
		bwd[b] = a
	}
	return true
}

// Run computes the biconnectivity structure of an undirected graph with
// an iterative lowpoint DFS in canonical order (smallest-id roots and
// neighbors first).
func Run(g *graph.Graph) *Result {
	n := g.NumNodes()
	r := &Result{
		Articulation: make([]bool, n),
		EdgeComp:     make(map[[2]graph.NodeID]int32, g.NumEdges()),
	}
	st := newLowpointState(n)
	st.epoch = 1
	nb := func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
		return appendSortedNbrs(g, v, buf)
	}
	for s := 0; s < n; s++ {
		if !st.visited(graph.NodeID(s)) {
			st.runComponent(nb, graph.NodeID(s), r)
		}
	}
	return r
}

// lowpointState carries the DFS bookkeeping. It is reusable across rounds
// via epoch stamping, so the incremental algorithm re-runs single
// components without clearing global arrays.
type lowpointState struct {
	num, low []int32
	stamp    []int64
	epoch    int64
	clock    int32
	comp     int32 // monotonic component-id allocator
	estack   [][2]graph.NodeID
	// arena holds the sorted neighbor lists of every frame on the DFS
	// stack, stacked end to end; frames reference [lo, hi) windows and the
	// window is truncated when its frame pops. One growable backing array
	// thus replaces a per-visited-node allocate-and-sort.
	arena  []graph.NodeID
	fstack []bcFrame
}

func newLowpointState(n int) *lowpointState {
	return &lowpointState{
		num:   make([]int32, n),
		low:   make([]int32, n),
		stamp: make([]int64, n),
	}
}

func (st *lowpointState) visited(v graph.NodeID) bool { return st.stamp[v] == st.epoch }

func (st *lowpointState) discover(v graph.NodeID, r *Result) {
	st.clock++
	st.stamp[v] = st.epoch
	st.num[v] = st.clock
	st.low[v] = st.clock
	r.Articulation[v] = false
}

func (st *lowpointState) grow(n int) {
	for len(st.num) < n {
		st.num = append(st.num, 0)
		st.low = append(st.low, 0)
		st.stamp = append(st.stamp, 0)
	}
}

// nbrFunc appends v's neighbors to buf in ascending id order and returns
// the extended slice — the DFS's only adjacency dependency, satisfied by
// either the graph's lists (appendSortedNbrs) or a flat view's
// AppendOutSorted.
type nbrFunc func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID

// bcFrame is one DFS stack frame; [lo, hi) windows the state's neighbor
// arena, i is the cursor within that window.
type bcFrame struct {
	v, parent graph.NodeID
	lo, i, hi int32
	children  int
}

// runComponent explores the connected component of s, filling r's
// articulation flags and edge components for exactly that component.
func (st *lowpointState) runComponent(nb nbrFunc, s graph.NodeID, r *Result) {
	st.discover(s, r)
	st.estack = st.estack[:0]
	st.arena = nb(s, st.arena[:0])
	st.fstack = append(st.fstack[:0], bcFrame{v: s, parent: -1, lo: 0, i: 0, hi: int32(len(st.arena))})
	for len(st.fstack) > 0 {
		f := &st.fstack[len(st.fstack)-1]
		if f.i < f.hi {
			w := st.arena[f.i]
			f.i++
			if w == f.parent {
				f.parent = -1 // skip the tree edge back to the parent once
				continue
			}
			if !st.visited(w) {
				st.estack = append(st.estack, key(f.v, w))
				st.discover(w, r)
				f.children++
				lo := int32(len(st.arena))
				st.arena = nb(w, st.arena)
				st.fstack = append(st.fstack, bcFrame{v: w, parent: f.v, lo: lo, i: lo, hi: int32(len(st.arena))})
			} else if st.num[w] < st.num[f.v] {
				// Back edge to an ancestor.
				st.estack = append(st.estack, key(f.v, w))
				if st.num[w] < st.low[f.v] {
					st.low[f.v] = st.num[w]
				}
			}
			continue
		}
		v := f.v
		st.arena = st.arena[:f.lo]
		st.fstack = st.fstack[:len(st.fstack)-1]
		if len(st.fstack) == 0 {
			break
		}
		p := &st.fstack[len(st.fstack)-1]
		if st.low[v] < st.low[p.v] {
			st.low[p.v] = st.low[v]
		}
		if st.low[v] >= st.num[p.v] {
			// p.v separates v's subtree: one biconnected component closes.
			// Non-root parents become articulation points; the root does
			// when it has a second child.
			if len(st.fstack) > 1 || p.children > 1 {
				r.Articulation[p.v] = true
			}
			e := key(p.v, v)
			for len(st.estack) > 0 {
				top := st.estack[len(st.estack)-1]
				st.estack = st.estack[:len(st.estack)-1]
				r.EdgeComp[top] = st.comp
				if top == e {
					break
				}
			}
			st.comp++
		}
	}
}

// appendSortedNbrs appends v's neighbors from the graph's adjacency to
// buf in ascending order. Insertion sort: adjacency lists are short on
// average.
func appendSortedNbrs(g *graph.Graph, v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
	base := len(buf)
	for _, e := range g.Out(v) {
		buf = append(buf, e.To)
	}
	for i := base + 1; i < len(buf); i++ {
		for j := i; j > base && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// Inc is the deducible incremental BC algorithm: Apply re-derives the
// biconnectivity structure of exactly the connected components touched by
// ΔG (in G ⊕ ΔG), discovered by traversal from the update endpoints — no
// global scan.
//
// An Inc is not goroutine-safe: it (and the graph it owns) must be
// driven by a single writer goroutine making every call, reads included —
// Result aliases state that Apply mutates. Concurrent serving goes
// through internal/serve, which gives each maintainer one apply loop and
// publishes immutable snapshots to readers.
type Inc struct {
	g       *graph.Graph
	flat    *graph.Flat // nil when built WithoutFlat
	nb      nbrFunc     // DFS adjacency source: flat sorted rows or g's lists
	res     *Result
	st      *lowpointState
	pending graph.Batch
}

// Option configures an incremental maintainer.
type Option func(*incOpts)

type incOpts struct{ noFlat bool }

// WithoutFlat disables the flat CSR+overlay adjacency view, keeping the
// legacy per-node allocate-and-sort neighbor path. Used by differential
// tests that pin the two paths against each other.
func WithoutFlat() Option { return func(o *incOpts) { o.noFlat = true } }

// NewInc runs the batch algorithm and returns the incremental one.
func NewInc(g *graph.Graph, opts ...Option) *Inc {
	var o incOpts
	for _, f := range opts {
		f(&o)
	}
	i := &Inc{g: g, st: newLowpointState(g.NumNodes())}
	if !o.noFlat {
		i.flat = graph.NewFlat(g)
		i.nb = func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
			return i.flat.AppendOutSorted(v, buf)
		}
	} else {
		i.nb = func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
			return appendSortedNbrs(i.g, v, buf)
		}
	}
	i.res = &Result{
		Articulation: make([]bool, g.NumNodes()),
		EdgeComp:     make(map[[2]graph.NodeID]int32, g.NumEdges()),
	}
	i.st.epoch = 1
	for s := 0; s < g.NumNodes(); s++ {
		if !i.st.visited(graph.NodeID(s)) {
			i.st.runComponent(i.nb, graph.NodeID(s), i.res)
		}
	}
	return i
}

// Graph returns the maintained graph.
func (i *Inc) Graph() *graph.Graph { return i.g }

// Flat returns the maintainer's flat adjacency view (nil WithoutFlat),
// for observability of overlay size and compaction counts.
func (i *Inc) Flat() *graph.Flat { return i.flat }

// SetCompactThreshold sets the flat view's overlay-to-base compaction
// ratio (see graph.Flat.SetCompactThreshold). No-op when the maintainer
// was built WithoutFlat. Single-writer contract: call between Applies.
func (i *Inc) SetCompactThreshold(t float64) {
	if i.flat != nil {
		i.flat.SetCompactThreshold(t)
	}
}

// Result returns the maintained structure (aliased).
func (i *Inc) Result() *Result { return i.res }

// RestoreState overwrites the maintained structure with one exported
// from a checkpoint of the same graph: the articulation flags and the
// per-edge component ids. The component-id allocator is advanced past
// every restored id so components re-derived after the restart can never
// collide with restored ones. The inputs are copied.
func (i *Inc) RestoreState(articulation []bool, edgeComp map[[2]graph.NodeID]int32) error {
	n := i.g.NumNodes()
	if len(articulation) != n {
		return fmt.Errorf("bc: restore of %d articulation flags into graph with %d nodes", len(articulation), n)
	}
	res := &Result{
		Articulation: append([]bool(nil), articulation...),
		EdgeComp:     make(map[[2]graph.NodeID]int32, len(edgeComp)),
	}
	maxComp := i.st.comp
	for k, c := range edgeComp {
		res.EdgeComp[k] = c
		if c >= maxComp {
			maxComp = c + 1
		}
	}
	i.res = res
	i.st.comp = maxComp
	return nil
}

// Apply computes G ⊕ ΔG and repairs the structure; it returns the number
// of nodes revisited (the affected-area measure).
func (i *Inc) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG without repairing.
func (i *Inc) Stage(b graph.Batch) {
	applied := i.g.Apply(b.Net(false))
	i.pending = append(i.pending, applied...)
	if i.flat != nil {
		i.flat.Stage(i.g, applied)
		i.flat.MaybeCompact(i.g)
	}
	i.st.grow(i.g.NumNodes())
	for len(i.res.Articulation) < i.g.NumNodes() {
		i.res.Articulation = append(i.res.Articulation, false)
	}
}

// Repair re-runs the lowpoint DFS over the touched components.
func (i *Inc) Repair() int {
	applied := i.pending
	i.pending = nil
	if len(applied) == 0 {
		return 0
	}
	for _, u := range applied {
		if u.Kind == graph.DeleteEdge {
			delete(i.res.EdgeComp, key(u.From, u.To))
		}
	}
	i.st.epoch++
	visitedNodes := 0
	for _, u := range applied {
		for _, v := range [2]graph.NodeID{u.From, u.To} {
			if !i.g.Alive(v) || i.st.visited(v) {
				continue
			}
			pre := i.st.clock
			i.st.runComponent(i.nb, v, i.res)
			visitedNodes += int(i.st.clock - pre)
		}
	}
	return visitedNodes
}
