package bc

import (
	"math/rand"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// bruteArticulation checks each node by deletion: v is an articulation
// point iff removing it increases the number of connected components among
// the remaining nodes of its component.
func bruteArticulation(g *graph.Graph) []bool {
	n := g.NumNodes()
	comps := func(skip graph.NodeID) []int {
		lab := make([]int, n)
		for i := range lab {
			lab[i] = -1
		}
		c := 0
		for s := 0; s < n; s++ {
			if graph.NodeID(s) == skip || lab[s] >= 0 {
				continue
			}
			stack := []graph.NodeID{graph.NodeID(s)}
			lab[s] = c
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, e := range g.Out(x) {
					if e.To != skip && lab[e.To] < 0 {
						lab[e.To] = c
						stack = append(stack, e.To)
					}
				}
			}
			c++
		}
		return lab
	}
	count := func(lab []int, skip graph.NodeID) int {
		max := -1
		for v, l := range lab {
			if graph.NodeID(v) == skip {
				continue
			}
			if l > max {
				max = l
			}
		}
		return max + 1
	}
	base := comps(-1)
	baseCount := count(base, -1)
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		if g.Degree(graph.NodeID(v)) == 0 {
			continue
		}
		lab := comps(graph.NodeID(v))
		// Removing v removes one node; its component may split.
		if count(lab, graph.NodeID(v)) > baseCount {
			out[v] = true
		}
	}
	return out
}

func TestRunKnownShapes(t *testing.T) {
	// Two triangles sharing node 2 ("bowtie"): 2 is the articulation
	// point; two biconnected components.
	g := graph.New(5, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(3, 4, 1)
	g.InsertEdge(2, 4, 1)
	r := Run(g)
	for v := 0; v < 5; v++ {
		want := v == 2
		if r.Articulation[v] != want {
			t.Fatalf("Articulation[%d] = %v", v, r.Articulation[v])
		}
	}
	if r.NumComps() != 2 {
		t.Fatalf("NumComps = %d, want 2", r.NumComps())
	}
	if r.EdgeComp[key(0, 1)] != r.EdgeComp[key(1, 2)] || r.EdgeComp[key(0, 1)] == r.EdgeComp[key(3, 4)] {
		t.Fatal("edge partition wrong")
	}
}

func TestRunBridgesAndPath(t *testing.T) {
	// A path: every edge its own component, every interior node an
	// articulation point.
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	r := Run(g)
	if !r.Articulation[1] || !r.Articulation[2] || r.Articulation[0] || r.Articulation[3] {
		t.Fatalf("articulation flags wrong: %v", r.Articulation)
	}
	if r.NumComps() != 3 {
		t.Fatalf("NumComps = %d, want 3", r.NumComps())
	}
}

func TestRunCycleHasNoArticulation(t *testing.T) {
	g := graph.New(5, false)
	for v := 0; v < 5; v++ {
		g.InsertEdge(graph.NodeID(v), graph.NodeID((v+1)%5), 1)
	}
	r := Run(g)
	for v, a := range r.Articulation {
		if a {
			t.Fatalf("cycle node %d marked articulation", v)
		}
	}
	if r.NumComps() != 1 {
		t.Fatalf("NumComps = %d, want 1", r.NumComps())
	}
}

func TestRunMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 30, 45, false)
		r := Run(g)
		want := bruteArticulation(g)
		for v := range want {
			if r.Articulation[v] != want[v] {
				t.Fatalf("seed %d: Articulation[%d] = %v, want %v", seed, v, r.Articulation[v], want[v])
			}
		}
		// Every edge must be assigned to exactly one component.
		if len(r.EdgeComp) != g.NumEdges() {
			t.Fatalf("seed %d: %d edges labeled, graph has %d", seed, len(r.EdgeComp), g.NumEdges())
		}
	}
}

func TestIncAgainstBatch(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 60, 100, false)
		inc := NewInc(g)
		for round := 0; round < 8; round++ {
			b := gen.RandomUpdates(rng, inc.Graph(), 12, 0.5)
			inc.Apply(b)
			want := Run(inc.Graph())
			if !inc.Result().Equivalent(want) {
				t.Fatalf("seed %d round %d: incremental BC != batch", seed, round)
			}
		}
	}
}

func TestIncTouchesOnlyAffectedComponents(t *testing.T) {
	// Two far-apart components; updating one must not revisit the other.
	rng := rand.New(rand.NewSource(3))
	a := gen.PowerLaw(rng, 2000, 6, false)
	g := graph.New(4000, false)
	a.Edges(func(u, v graph.NodeID, w int64) {
		g.InsertEdge(u, v, w)           // component A: nodes 0..1999
		g.InsertEdge(u+2000, v+2000, w) // component B: nodes 2000..3999
	})
	inc := NewInc(g)
	visited := inc.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1999, W: 1}})
	if visited > 2100 {
		t.Fatalf("unit update in component A revisited %d nodes", visited)
	}
	if !inc.Result().Equivalent(Run(inc.Graph())) {
		t.Fatal("result wrong")
	}
}

func TestIncVertexUpdates(t *testing.T) {
	g := graph.New(3, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	inc := NewInc(g)
	v := g.AddNode(0)
	inc.Apply(graph.Batch{
		{Kind: graph.InsertEdge, From: 2, To: v, W: 1},
		{Kind: graph.InsertEdge, From: 0, To: v, W: 1},
	})
	want := Run(inc.Graph())
	if !inc.Result().Equivalent(want) {
		t.Fatal("result wrong after vertex insertion")
	}
	// The new edges close a cycle 0-1-2-v: no articulation points remain.
	for n, a := range inc.Result().Articulation {
		if a {
			t.Fatalf("node %d marked articulation in a cycle", n)
		}
	}
}

func TestIncEmptyBatch(t *testing.T) {
	g := gen.ErdosRenyi(rand.New(rand.NewSource(1)), 20, 30, false)
	inc := NewInc(g)
	if got := inc.Apply(nil); got != 0 {
		t.Fatalf("empty batch visited %d nodes", got)
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	a := Run(g)
	b := Run(g)
	if !a.Equivalent(b) {
		t.Fatal("identical runs not equivalent")
	}
	b.Articulation[1] = false
	if a.Equivalent(b) {
		t.Fatal("articulation difference not detected")
	}
	c := Run(g)
	c.EdgeComp[key(0, 1)] = c.EdgeComp[key(1, 2)]
	if a.Equivalent(c) {
		t.Fatal("partition difference not detected")
	}
}
