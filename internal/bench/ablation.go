package bench

import (
	"incgraph/internal/cc"
	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// pullOnly hides an instance's Relaxer so the engine falls back to
// pull-based recomputation of dependents.
type pullOnly[V any] struct{ fixpoint.Instance[V] }

// ExpAblation quantifies the design choices DESIGN.md calls out:
//
//  1. timestamps (weakly deducible IncCC, Example 5) vs. the naive
//     deducible PE reset (Example 2) — what the auxiliary structure buys;
//  2. hand-tuned deduced algorithms vs. the same algorithms expressed
//     through the generic fixpoint engine — the cost of genericity;
//  3. push-based (meet-form relaxation) vs. pull-based (dependent
//     recomputation) step functions inside the engine.
func ExpAblation(cfg Config) {
	d, _ := gen.ByName("OKT")

	// (1) Timestamps vs PE reset, on unit deletions in one big component.
	{
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		dels := gen.UnitDeletions(newRNG(cfg.Seed), g, unitUpdateCount)
		incT := avgUnit(cc.NewInc(g.Clone()), dels)
		naiveT := avgUnit(cc.NewIncNaive(g.Clone()), dels)
		t := newTable(cfg.Out, "Ablation 1: IncCC timestamps (Ex. 5) vs naive PE reset (Ex. 2), unit deletions",
			"Variant", "Avg per deletion", "vs naive")
		t.row("IncCC (timestamps)", ms(incT), speedup(naiveT, incT))
		t.row("IncCCNaive (PE reset)", ms(naiveT), "1.0x")
		t.flush()
	}

	// (2) Tuned vs generic engine at |ΔG| = 4%.
	{
		g := d.Build(cfg.Seed, cfg.Scale)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 4), 0.5)
		t := newTable(cfg.Out, "Ablation 2: tuned deduced algorithms vs generic engine, |ΔG| = 4%",
			"Algorithm", "Tuned", "Engine", "Engine/Tuned")
		tunedS := timeRepair(sssp.NewInc(g.Clone(), 0), delta)
		engS := timeRepair(sssp.NewIncEngine(g.Clone(), 0), delta)
		t.row("IncSSSP", tunedS, engS, speedup(engS, tunedS))
		q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)
		tunedM := timeRepair(sim.NewInc(g.Clone(), q), delta)
		engM := stopwatch(func() { sim.NewIncEngine(g.Clone(), q).Apply(delta) })
		t.row("IncSim", tunedM, engM, speedup(engM, tunedM))
		t.flush()
	}

	// (3) Push vs pull step function, batch CC_fp over the whole graph.
	{
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		inst := &cc.Instance{G: g}
		push := stopwatch(func() {
			e := fixpoint.New[int64](inst, fixpoint.PriorityOrder)
			e.Run()
		})
		pull := stopwatch(func() {
			e := fixpoint.New[int64](pullOnly[int64]{inst}, fixpoint.PriorityOrder)
			e.Run()
		})
		t := newTable(cfg.Out, "Ablation 3: push (meet-form relaxation) vs pull (recompute dependents), batch CC_fp",
			"Mode", "Time", "vs pull")
		t.row("push", push, speedup(pull, push))
		t.row("pull", pull, "1.0x")
		t.flush()
	}
}
