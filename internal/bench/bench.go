// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6) on the synthetic stand-in
// datasets. Each experiment prints rows shaped like the paper's: who is
// compared, over which workload, and the measured times. Absolute numbers
// differ from the paper (different hardware, language and scale); the
// comparisons' shape is what the harness reproduces — see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"text/tabwriter"
	"time"
)

// newRNG builds the deterministic random source of an experiment.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Config parameterizes a harness run.
type Config struct {
	Seed  int64
	Scale float64 // dataset size multiplier; 1.0 is the default laptop scale
	Out   io.Writer
	// Report, when non-nil, receives one Result per measured comparison
	// alongside the human-readable tables. incbench wires it to -json.
	Report func(Result)
}

// Result is one machine-readable measurement: a batch baseline against
// the deduced incremental algorithm on one dataset and workload. The
// tables print everything the paper's figures show; Result carries the
// subset downstream tooling wants to diff across commits — who ran,
// where, how long each side took, how large the affected area was.
type Result struct {
	// Experiment identifies the harness function, e.g. "exp2-sssp".
	Experiment string `json:"experiment"`
	// Dataset is the stand-in name (FS, TW, OKT, …).
	Dataset string `json:"dataset"`
	// Algo is the deduced incremental algorithm measured, e.g. "IncSSSP".
	Algo string `json:"algo"`
	// Workload describes the update batch, e.g. "|ΔG|=4%" or "M3".
	Workload string `json:"workload"`
	// BatchSeconds is the recompute-from-scratch baseline.
	BatchSeconds float64 `json:"batch_seconds"`
	// IncSeconds is the incremental repair time.
	IncSeconds float64 `json:"inc_seconds"`
	// Affected is |AFF| (the scope size |H⁰| or its class equivalent)
	// when the maintainer reports it; 0 otherwise.
	Affected int `json:"affected,omitempty"`
	// Speedup is BatchSeconds / IncSeconds.
	Speedup float64 `json:"speedup,omitempty"`
	// Workers is the worker count of a parallel-mode measurement; 0 for
	// the (default) sequential runs. In the scaling experiment the
	// baseline in BatchSeconds is the sequential repair, so Speedup is
	// the parallel scaling factor rather than a batch-vs-incremental
	// ratio.
	Workers int `json:"workers,omitempty"`
	// Work is the repair's work-ledger measure (touched + |AFF| + ‖AFF‖)
	// when the maintainer exposes the engine ledger, or the synthesized
	// |ΔG| + |AFF| equivalent for the specialized classes; 0 when the
	// experiment did not collect it. Unlike the timings, Work is
	// deterministic for a fixed seed and scale, so report diffs can hold
	// it to a tight tolerance.
	Work int64 `json:"work,omitempty"`
	// BoundedRatio is Work / |ΔG| — the relative-boundedness quotient of
	// the measured repair (paper §4). 0 when Work was not collected.
	BoundedRatio float64 `json:"bounded_ratio,omitempty"`
}

// report fills the derived Speedup field and forwards r to the Report
// hook when one is installed.
func (cfg Config) report(r Result) {
	if cfg.Report == nil {
		return
	}
	if r.Speedup == 0 && r.IncSeconds > 0 {
		r.Speedup = r.BatchSeconds / r.IncSeconds
	}
	cfg.Report(r)
}

// stopwatch runs f once and returns elapsed seconds.
func stopwatch(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// heapDelta measures the live-heap growth caused by build, returning its
// result and the growth in bytes. The keep parameter prevents the built
// structures from being collected before the second reading.
func heapDelta(build func() any) (any, int64) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	x := build()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	d := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return x, d
}

// table renders aligned rows under a title.
type table struct {
	w   *tabwriter.Writer
	out io.Writer
}

func newTable(out io.Writer, title string, header ...string) *table {
	fmt.Fprintf(out, "\n== %s ==\n", title)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	t := &table{w: w, out: out}
	t.row(toAny(header)...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.4fs", v)
		default:
			fmt.Fprintf(t.w, "%v", v)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// mib formats bytes as MiB.
func mib(b int64) string { return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20)) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// speedup formats a baseline/measured ratio.
func speedup(base, inc float64) string {
	if inc <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base/inc)
}
