// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6) on the synthetic stand-in
// datasets. Each experiment prints rows shaped like the paper's: who is
// compared, over which workload, and the measured times. Absolute numbers
// differ from the paper (different hardware, language and scale); the
// comparisons' shape is what the harness reproduces — see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"text/tabwriter"
	"time"
)

// newRNG builds the deterministic random source of an experiment.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Config parameterizes a harness run.
type Config struct {
	Seed  int64
	Scale float64 // dataset size multiplier; 1.0 is the default laptop scale
	Out   io.Writer
}

// stopwatch runs f once and returns elapsed seconds.
func stopwatch(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// heapDelta measures the live-heap growth caused by build, returning its
// result and the growth in bytes. The keep parameter prevents the built
// structures from being collected before the second reading.
func heapDelta(build func() any) (any, int64) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	x := build()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	d := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return x, d
}

// table renders aligned rows under a title.
type table struct {
	w   *tabwriter.Writer
	out io.Writer
}

func newTable(out io.Writer, title string, header ...string) *table {
	fmt.Fprintf(out, "\n== %s ==\n", title)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	t := &table{w: w, out: out}
	t.row(toAny(header)...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.4fs", v)
		default:
			fmt.Fprintf(t.w, "%v", v)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// mib formats bytes as MiB.
func mib(b int64) string { return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20)) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// speedup formats a baseline/measured ratio.
func speedup(base, inc float64) string {
	if inc <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base/inc)
}
