package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg runs every experiment at a small scale so the whole suite stays
// in test-friendly time.
func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Seed: 1, Scale: 0.05, Out: buf}
}

func runAndCheck(t *testing.T, name string, f func(Config), wantSnippets ...string) {
	t.Helper()
	var buf bytes.Buffer
	f(tinyCfg(&buf))
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", name)
	}
	for _, s := range wantSnippets {
		if !strings.Contains(out, s) {
			t.Fatalf("%s output missing %q:\n%s", name, s, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	runAndCheck(t, "Table1", Table1, "Table 1", "SSSP", "Sim", "LCC", "Deduced")
}

func TestExp1Smoke(t *testing.T) {
	runAndCheck(t, "Exp1", Exp1, "Fig 6(a,b)", "Fig 6(i,j)", "OKT", "WD", "Comp del")
}

func TestExp2Smoke(t *testing.T) {
	runAndCheck(t, "Exp2SSSP", Exp2SSSP, "Fig 7(a/b)", "IncSSSP_n", "32%")
	runAndCheck(t, "Exp2CC", Exp2CC, "Fig 7(c)", "DynCC", "64%")
	runAndCheck(t, "Exp2Sim", Exp2Sim, "Fig 7(d/e)", "IncMatch")
	runAndCheck(t, "Exp2LCC", Exp2LCC, "Fig 7(f)", "DynLCC")
	runAndCheck(t, "Exp2DFS", Exp2DFS, "DFS on OKT", "DynDFS")
}

func TestExp2TypesSmoke(t *testing.T) {
	runAndCheck(t, "Exp2Types", Exp2Types, "Fig 7(g)", "Fig 7(h)", "Fig 7(i)", "M5", "h-fraction")
}

func TestExp3Smoke(t *testing.T) {
	runAndCheck(t, "Exp3", Exp3, "Fig 7(j)", "Fig 7(k)", "Fig 7(l)")
}

func TestExp4Smoke(t *testing.T) {
	runAndCheck(t, "Exp4", Exp4, "Fig 8", "MiB")
}

func TestExpAffSmoke(t *testing.T) {
	runAndCheck(t, "ExpAff", ExpAff, "AFF", "IncSSSP", "IncLCC", "%")
}

func TestExpAblationSmoke(t *testing.T) {
	runAndCheck(t, "ExpAblation", ExpAblation, "Ablation 1", "Ablation 2", "Ablation 3", "IncCCNaive", "push")
}

func TestExpExtensionsSmoke(t *testing.T) {
	runAndCheck(t, "ExpExtensions", ExpExtensions, "Extensions", "BC", "DualSim")
}

func TestExpScalingSmoke(t *testing.T) {
	runAndCheck(t, "ExpScaling", ExpScaling, "Parallel scaling", "IncSSSP", "IncCC", "workers", "imbalance")
}

// TestExpScalingResults checks the machine-readable rows: one per worker
// count, |AFF| identical across them (same fixpoint, same affected area),
// and the 1-worker baseline filled into every row's BatchSeconds.
func TestExpScalingResults(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	var results []Result
	cfg.Report = func(r Result) { results = append(results, r) }
	ExpScaling(cfg)
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8 (4 worker counts × 2 classes)", len(results))
	}
	byExp := map[string][]Result{}
	for _, r := range results {
		byExp[r.Experiment] = append(byExp[r.Experiment], r)
	}
	for exp, rs := range byExp {
		if len(rs) != 4 {
			t.Fatalf("%s: %d rows, want 4", exp, len(rs))
		}
		for i, r := range rs {
			if want := []int{1, 2, 4, 8}[i]; r.Workers != want {
				t.Fatalf("%s row %d: workers %d, want %d", exp, i, r.Workers, want)
			}
			if r.Affected != rs[0].Affected {
				t.Fatalf("%s: |AFF| varies with worker count: %d vs %d", exp, r.Affected, rs[0].Affected)
			}
			if r.BatchSeconds != rs[0].IncSeconds {
				t.Fatalf("%s row %d: baseline %v != 1-worker time %v", exp, i, r.BatchSeconds, rs[0].IncSeconds)
			}
		}
	}
}

func TestExpDatasetsSmoke(t *testing.T) {
	runAndCheck(t, "ExpDatasets", ExpDatasets, "Dataset stand-ins", "OKT", "max deg")
}

func TestHelpers(t *testing.T) {
	if got := speedup(2, 1); got != "2.0x" {
		t.Fatalf("speedup = %q", got)
	}
	if got := speedup(1, 0); got != "-" {
		t.Fatalf("speedup zero = %q", got)
	}
	if got := mib(1 << 20); got != "1.0MiB" {
		t.Fatalf("mib = %q", got)
	}
	if got := pct(0.5); got != "50.00%" {
		t.Fatalf("pct = %q", got)
	}
	if got := ms(0.001); got != "1.000ms" {
		t.Fatalf("ms = %q", got)
	}
}
