package bench

import (
	"fmt"
	"sort"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// ExpDatasets prints the shape of every stand-in dataset at the configured
// scale — node/edge counts, degree distribution percentiles and maximum —
// so a reader can compare the synthetic graphs against the paper's table
// of real datasets.
func ExpDatasets(cfg Config) {
	t := newTable(cfg.Out, "Dataset stand-ins (paper's originals in DESIGN.md)",
		"Name", "Kind", "|V|", "|E|", "|G|", "avg deg", "p50", "p90", "p99", "max deg")
	for _, d := range gen.Datasets {
		g := d.Build(cfg.Seed, cfg.Scale)
		degs := make([]int, g.NumNodes())
		for v := range degs {
			degs[v] = g.OutDegree(graph.NodeID(v))
			if g.Directed() {
				degs[v] += g.InDegree(graph.NodeID(v))
			}
		}
		sort.Ints(degs)
		pick := func(p float64) int { return degs[int(p*float64(len(degs)-1))] }
		kind := "undirected"
		if d.Directed {
			kind = "directed"
		}
		avg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
		t.row(d.Name, kind, g.NumNodes(), g.NumEdges(), g.Size(),
			fmt.Sprintf("%.1f", avg), pick(0.5), pick(0.9), pick(0.99), degs[len(degs)-1])
	}
	t.flush()
}
