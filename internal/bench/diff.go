package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Schema is the report document identifier incbench -json writes and
// Diff requires on both sides; bump it when Result's meaning changes
// incompatibly.
const Schema = "incgraph-bench/v1"

// Report is the JSON document incbench -json writes: the run's
// parameters plus every collected Result. Diff consumes two of these
// (a committed baseline and a fresh run) to gate perf regressions.
type Report struct {
	Schema     string   `json:"schema"`
	Experiment string   `json:"experiment"`
	Class      string   `json:"class"`
	Seed       int64    `json:"seed"`
	Scale      float64  `json:"scale"`
	GoVersion  string   `json:"go_version"`
	UnixTime   int64    `json:"unix_time"`
	Results    []Result `json:"results"`
}

// ReadReport parses a report file and validates its schema marker, so a
// diff against the wrong kind of JSON fails loudly instead of reporting
// an empty comparison.
func ReadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return r, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return r, nil
}

// DiffEntry is one compared measurement cell: the baseline and current
// repair throughput (ops/sec, the reciprocal of IncSeconds) and
// boundedness quotient, with relative changes. Verdict is "ok",
// "regression" (bounded-ratio inflation beyond tolerance — the ledger
// is deterministic for a fixed seed, so it is gated per cell),
// "missing" (in the baseline, absent from the current run; a coverage
// loss, which fails) or "new" (the reverse; informational). Per-cell
// timing swings do NOT fail on their own: wall-clock noise at CI scale
// dwarfs the tolerance, so throughput is gated per experiment instead
// (see ExperimentDiff).
type DiffEntry struct {
	Key         string  `json:"key"`
	Experiment  string  `json:"experiment"`
	Verdict     string  `json:"verdict"`
	BaseOps     float64 `json:"base_ops,omitempty"`
	CurOps      float64 `json:"cur_ops,omitempty"`
	OpsChange   float64 `json:"ops_change,omitempty"`
	BaseRatio   float64 `json:"base_ratio,omitempty"`
	CurRatio    float64 `json:"cur_ratio,omitempty"`
	RatioChange float64 `json:"ratio_change,omitempty"`
}

// ExperimentDiff is the throughput gate for one experiment: the
// geometric mean of the per-cell ops/sec changes across all its
// compared cells. Averaging across cells cancels per-cell scheduler
// noise while a genuine slowdown — which hits every cell — still
// moves the mean; Verdict is "regression" when the geomean drops by
// more than the tolerance.
type ExperimentDiff struct {
	Experiment string  `json:"experiment"`
	Cells      int     `json:"cells"`
	OpsChange  float64 `json:"ops_change"`
	Verdict    string  `json:"verdict"`
}

// DiffReport is the outcome of comparing two bench reports.
type DiffReport struct {
	Tolerance   float64          `json:"tolerance"`
	Entries     []DiffEntry      `json:"entries"`
	Experiments []ExperimentDiff `json:"experiments"`
	Regressions []string         `json:"regressions,omitempty"`
}

// Failed reports whether any compared measurement regressed beyond the
// tolerance (or disappeared from the current run).
func (d *DiffReport) Failed() bool { return len(d.Regressions) > 0 }

// diffKey identifies a measurement across runs: the harness function,
// dataset, algorithm, workload and worker count together name one
// comparable cell of the evaluation.
func diffKey(r Result) string {
	k := fmt.Sprintf("%s/%s/%s/%s", r.Experiment, r.Dataset, r.Algo, r.Workload)
	if r.Workers > 0 {
		k += fmt.Sprintf("/w%d", r.Workers)
	}
	return k
}

// aggregate folds duplicate keys (a workload measured more than once in
// one run) into per-key means, so repeated cells do not skew the diff
// toward whichever copy appears last.
type aggregate struct {
	experiment string
	incSeconds float64
	ratio      float64
	n          int // measurements folded in
	nRatio     int // of which carried a boundedness quotient
}

func collect(rep Report) map[string]aggregate {
	m := make(map[string]aggregate, len(rep.Results))
	for _, r := range rep.Results {
		a := m[diffKey(r)]
		a.experiment = r.Experiment
		a.incSeconds += r.IncSeconds
		a.n++
		if r.BoundedRatio > 0 {
			a.ratio += r.BoundedRatio
			a.nRatio++
		}
		m[diffKey(r)] = a
	}
	return m
}

// Diff compares a current report against a baseline, flagging
// regressions beyond tolerance (a fraction: 0.15 = 15%) on two axes:
// repair throughput, gated per experiment on the geometric mean of its
// cells' ops/sec changes (per-cell wall-clock noise at CI scale far
// exceeds any usable tolerance; a real slowdown moves every cell and
// survives the averaging), and the work-ledger boundedness quotient,
// gated per cell — the ledger is deterministic for a fixed seed and
// scale, so any inflation is a genuine cost-model regression the clock
// could never resolve.
func Diff(baseline, current Report, tolerance float64) (*DiffReport, error) {
	if tolerance <= 0 {
		return nil, fmt.Errorf("bench: tolerance must be positive, got %v", tolerance)
	}
	for _, r := range []Report{baseline, current} {
		if r.Schema != Schema {
			return nil, fmt.Errorf("bench: report schema %q, want %q", r.Schema, Schema)
		}
	}
	if baseline.Seed != current.Seed || baseline.Scale != current.Scale {
		return nil, fmt.Errorf("bench: reports not comparable: baseline seed=%d scale=%g, current seed=%d scale=%g",
			baseline.Seed, baseline.Scale, current.Seed, current.Scale)
	}

	base, cur := collect(baseline), collect(current)
	keys := make([]string, 0, len(base)+len(cur))
	for k := range base {
		keys = append(keys, k)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	d := &DiffReport{Tolerance: tolerance}
	logOps := make(map[string][]float64) // experiment -> ln(curOps/baseOps) per cell
	for _, k := range keys {
		b, inBase := base[k]
		c, inCur := cur[k]
		e := DiffEntry{Key: k, Verdict: "ok"}
		switch {
		case !inCur:
			e.Experiment = b.experiment
			e.Verdict = "missing"
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("%s: present in baseline, missing from current run", k))
		case !inBase:
			e.Experiment = c.experiment
			e.Verdict = "new"
		default:
			e.Experiment = b.experiment
			if b.incSeconds > 0 && c.incSeconds > 0 {
				e.BaseOps = float64(b.n) / b.incSeconds
				e.CurOps = float64(c.n) / c.incSeconds
				e.OpsChange = e.CurOps/e.BaseOps - 1
				logOps[e.Experiment] = append(logOps[e.Experiment], math.Log(e.CurOps/e.BaseOps))
			}
			if b.nRatio > 0 && c.nRatio > 0 {
				e.BaseRatio = b.ratio / float64(b.nRatio)
				e.CurRatio = c.ratio / float64(c.nRatio)
				e.RatioChange = e.CurRatio/e.BaseRatio - 1
				if e.RatioChange > tolerance {
					e.Verdict = "regression"
					d.Regressions = append(d.Regressions,
						fmt.Sprintf("%s: bounded ratio %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)",
							k, e.BaseRatio, e.CurRatio, 100*e.RatioChange, 100*tolerance))
				}
			}
		}
		d.Entries = append(d.Entries, e)
	}

	exps := make([]string, 0, len(logOps))
	for exp := range logOps {
		exps = append(exps, exp)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		ls := logOps[exp]
		var sum float64
		for _, l := range ls {
			sum += l
		}
		ed := ExperimentDiff{Experiment: exp, Cells: len(ls),
			OpsChange: math.Exp(sum/float64(len(ls))) - 1, Verdict: "ok"}
		if ed.OpsChange < -tolerance {
			ed.Verdict = "regression"
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("%s: throughput geomean %+.1f%% across %d cells (tolerance %.0f%%)",
					exp, 100*ed.OpsChange, ed.Cells, 100*tolerance))
		}
		d.Experiments = append(d.Experiments, ed)
	}
	return d, nil
}

// WriteText renders the diff as an aligned table plus one line per
// regression and a PASS/FAIL trailer — the output the CI log shows.
func (d *DiffReport) WriteText(w io.Writer) {
	t := newTable(w, fmt.Sprintf("bench diff (tolerance %.0f%%)", 100*d.Tolerance),
		"Measurement", "ops/sec (base->cur)", "Δops", "bounded (base->cur)", "Δratio", "verdict")
	fmtPair := func(a, b float64) string {
		if a == 0 && b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.4g -> %.4g", a, b)
	}
	fmtDelta := func(ok bool, ch float64) string {
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", 100*ch)
	}
	for _, e := range d.Entries {
		t.row(e.Key,
			fmtPair(e.BaseOps, e.CurOps), fmtDelta(e.BaseOps > 0, e.OpsChange),
			fmtPair(e.BaseRatio, e.CurRatio), fmtDelta(e.BaseRatio > 0, e.RatioChange),
			e.Verdict)
	}
	t.flush()
	te := newTable(w, "per-experiment throughput (geomean across cells)",
		"Experiment", "cells", "Δops", "verdict")
	for _, ed := range d.Experiments {
		te.row(ed.Experiment, ed.Cells, fmtDelta(true, ed.OpsChange), ed.Verdict)
	}
	te.flush()
	for _, r := range d.Regressions {
		fmt.Fprintf(w, "REGRESSION: %s\n", r)
	}
	if d.Failed() {
		fmt.Fprintf(w, "FAIL: %d regression(s) beyond %.0f%% tolerance\n",
			len(d.Regressions), 100*d.Tolerance)
	} else {
		fmt.Fprintf(w, "PASS: %d measurement(s) within %.0f%% tolerance\n",
			len(d.Entries), 100*d.Tolerance)
	}
}
