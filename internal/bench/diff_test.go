package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkReport builds a comparable report around a result set.
func mkReport(results ...Result) Report {
	return Report{Schema: Schema, Experiment: "exp2", Class: "all",
		Seed: 1, Scale: 0.1, GoVersion: "go", Results: results}
}

func res(exp, ds, wl string, incSec, ratio float64) Result {
	return Result{Experiment: exp, Dataset: ds, Algo: "IncX", Workload: wl,
		BatchSeconds: 1, IncSeconds: incSec, Work: int64(100 * ratio), BoundedRatio: ratio}
}

// TestDiffIdenticalPasses holds a report against itself: every entry
// ok, no regressions.
func TestDiffIdenticalPasses(t *testing.T) {
	rep := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.5),
		res("exp2-cc", "OKT", "|ΔG|=1%", 0.020, 2.0),
	)
	d, err := Diff(rep, rep, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed() || len(d.Entries) != 2 {
		t.Fatalf("diff failed on identical reports: %+v", d)
	}
	for _, e := range d.Entries {
		if e.Verdict != "ok" || e.OpsChange != 0 || e.RatioChange != 0 {
			t.Errorf("entry not clean: %+v", e)
		}
	}
	if len(d.Experiments) != 2 {
		t.Fatalf("experiment gates: %+v", d.Experiments)
	}
	for _, ed := range d.Experiments {
		if ed.Verdict != "ok" || ed.OpsChange != 0 {
			t.Errorf("experiment gate not clean: %+v", ed)
		}
	}
}

// TestDiffThroughputRegression slows every cell of one experiment past
// the tolerance and checks that experiment — and only it — trips the
// per-experiment geomean gate.
func TestDiffThroughputRegression(t *testing.T) {
	base := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.5),
		res("exp2-sssp", "FS", "|ΔG|=4%", 0.012, 3.0),
		res("exp2-cc", "OKT", "|ΔG|=1%", 0.020, 2.0),
	)
	cur := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.015, 3.5), // -33% throughput
		res("exp2-sssp", "FS", "|ΔG|=4%", 0.017, 3.0), // -29%
		res("exp2-cc", "OKT", "|ΔG|=1%", 0.021, 2.0),  // -4.8%, within 15%
	)
	d, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Failed() || len(d.Regressions) != 1 {
		t.Fatalf("want exactly one regression, got %v", d.Regressions)
	}
	if !strings.Contains(d.Regressions[0], "exp2-sssp") ||
		!strings.Contains(d.Regressions[0], "throughput") {
		t.Fatalf("regression names wrong experiment: %s", d.Regressions[0])
	}
}

// TestDiffPerCellNoiseTolerated: one cell 25% slower amid flat
// neighbors is scheduler noise, not a regression — the geomean gate
// absorbs it where a per-cell gate would flake.
func TestDiffPerCellNoiseTolerated(t *testing.T) {
	base := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.5),
		res("exp2-sssp", "FS", "|ΔG|=4%", 0.010, 3.0),
		res("exp2-sssp", "FS", "|ΔG|=8%", 0.010, 2.5),
	)
	cur := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.0133, 3.5), // -25%
		res("exp2-sssp", "FS", "|ΔG|=4%", 0.0091, 3.0), // +10%
		res("exp2-sssp", "FS", "|ΔG|=8%", 0.0091, 2.5), // +10%
	)
	d, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed() {
		t.Fatalf("noise flagged as regression: %v", d.Regressions)
	}
	if len(d.Experiments) != 1 || d.Experiments[0].Cells != 3 {
		t.Fatalf("experiment gate: %+v", d.Experiments)
	}
}

// TestDiffBoundedRatioInflation inflates one boundedness quotient;
// timings are unchanged, so only the ledger side can catch it.
func TestDiffBoundedRatioInflation(t *testing.T) {
	base := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0))
	cur := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 4.0)) // +33%
	d, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Failed() || len(d.Regressions) != 1 {
		t.Fatalf("want one regression, got %v", d.Regressions)
	}
	if !strings.Contains(d.Regressions[0], "bounded ratio") {
		t.Fatalf("regression text: %s", d.Regressions[0])
	}

	// Deflation (improvement) and inflation within tolerance both pass.
	for _, ratio := range []float64{2.0, 3.3} {
		cur := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, ratio))
		d, err := Diff(base, cur, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if d.Failed() {
			t.Fatalf("ratio %v flagged: %v", ratio, d.Regressions)
		}
	}
}

// TestDiffMissingAndNew: a baseline cell that vanished fails the gate
// (coverage loss), a new cell is informational.
func TestDiffMissingAndNew(t *testing.T) {
	base := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0),
		res("exp2-cc", "OKT", "|ΔG|=1%", 0.020, 2.0),
	)
	cur := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0),
		res("exp2-lcc", "LJ", "|ΔG|=2%", 0.030, 5.0),
	)
	d, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "missing") {
		t.Fatalf("missing cell not flagged: %v", d.Regressions)
	}
	verdicts := map[string]string{}
	for _, e := range d.Entries {
		verdicts[e.Key] = e.Verdict
	}
	if verdicts["exp2-cc/OKT/IncX/|ΔG|=1%"] != "missing" {
		t.Fatalf("verdicts: %v", verdicts)
	}
	if verdicts["exp2-lcc/LJ/IncX/|ΔG|=2%"] != "new" {
		t.Fatalf("verdicts: %v", verdicts)
	}
}

// TestDiffDuplicateKeysAveraged folds two measurements of one cell into
// a mean, so the comparison is order-independent.
func TestDiffDuplicateKeysAveraged(t *testing.T) {
	base := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0),
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.030, 5.0),
	)
	// Mean inc time 0.020 either way; duplicate order reversed.
	cur := mkReport(
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.030, 5.0),
		res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0),
	)
	d, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed() || len(d.Entries) != 1 {
		t.Fatalf("diff: %+v", d)
	}
	if e := d.Entries[0]; e.BaseOps != e.CurOps || e.BaseRatio != 4.0 {
		t.Fatalf("aggregation wrong: %+v", e)
	}
}

// TestDiffRejectsIncomparable: schema mismatches, seed/scale drift and
// non-positive tolerances are errors, not silent passes.
func TestDiffRejectsIncomparable(t *testing.T) {
	good := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0))
	bad := good
	bad.Schema = "incgraph-bench/v0"
	if _, err := Diff(good, bad, 0.15); err == nil {
		t.Error("schema mismatch accepted")
	}
	drift := good
	drift.Scale = 1.0
	if _, err := Diff(good, drift, 0.15); err == nil {
		t.Error("scale drift accepted")
	}
	if _, err := Diff(good, good, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
}

// TestReadReportRoundTrip writes a report the way incbench does and
// reads it back; a schema-less file is rejected.
func TestReadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	want := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0))
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != want.Seed || len(got.Results) != 1 || got.Results[0] != want.Results[0] {
		t.Fatalf("round trip: %+v", got)
	}

	if err := os.WriteFile(path, []byte(`{"results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("schema-less report accepted")
	}
}

// TestDiffTextOutput checks the human rendering carries the verdicts
// and the FAIL trailer CI greps for.
func TestDiffTextOutput(t *testing.T) {
	base := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.010, 3.0))
	cur := mkReport(res("exp2-sssp", "FS", "|ΔG|=2%", 0.020, 3.0))
	d, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	d.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"regression", "REGRESSION:", "FAIL:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	d, _ = Diff(base, base, 0.15)
	sb.Reset()
	d.WriteText(&sb)
	if !strings.Contains(sb.String(), "PASS:") {
		t.Errorf("pass output:\n%s", sb.String())
	}
}
