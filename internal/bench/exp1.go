package bench

import (
	"fmt"

	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// unitUpdateCount is the number of sampled unit insertions (and
// deletions) per dataset in Exp-1; the paper uses 10000 at its scale.
const unitUpdateCount = 200

// applier is any maintainer fed through update batches.
type applier interface{ Apply(graph.Batch) int }

// staged is implemented by maintainers that separate materializing G ⊕ ΔG
// (Stage) from the incremental computation (Repair). Batch-update cells
// time Repair only, matching the batch baselines, which are handed the
// already-updated graph.
type staged interface {
	Stage(graph.Batch)
	Repair() int
}

// timeRepair stages delta (untimed) when the maintainer supports it and
// returns the seconds spent in the repair; otherwise it times Apply.
func timeRepair(m applier, delta graph.Batch) float64 {
	sec, _ := timeRepairAff(m, delta)
	return sec
}

// timeRepairAff is timeRepair plus the affected-area size the repair
// reported — the |AFF| column of the machine-readable results.
func timeRepairAff(m applier, delta graph.Batch) (float64, int) {
	var aff int
	if s, ok := m.(staged); ok {
		s.Stage(delta)
		return stopwatch(func() { aff = s.Repair() }), aff
	}
	return stopwatch(func() { aff = m.Apply(delta) }), aff
}

// audited is implemented by the engine-backed maintainers (SSSP, CC,
// Sim): they expose the fixpoint work ledger and the graph it is
// denominated against.
type audited interface {
	Stats() fixpoint.Stats
	Graph() *graph.Graph
}

// grapher covers the specialized maintainers (DFS, LCC, BC) that expose
// their graph but no engine ledger.
type grapher interface{ Graph() *graph.Graph }

// timeRepairLedger is timeRepairAff plus the work aggregates of the
// repair: the engine ledger's Work() when the maintainer exposes one,
// or the |ΔG| + |AFF| synthesis the serve layer uses for the
// specialized classes. The ratio is work / |ΔG|, the boundedness
// quotient the perf gate holds across commits.
func timeRepairLedger(m applier, delta graph.Batch) (sec float64, aff int, work int64, ratio float64) {
	am, isAudited := m.(audited)
	var before fixpoint.Stats
	if isAudited {
		before = am.Stats()
	}
	sec, aff = timeRepairAff(m, delta)
	if isAudited {
		led := am.Stats().Sub(before).Ledger
		led.Delta = int64(len(delta))
		work = led.Work()
		ratio = led.BoundedRatio()
		return sec, aff, work, ratio
	}
	if _, ok := m.(grapher); ok && len(delta) > 0 {
		work = int64(len(delta) + aff)
		ratio = float64(work) / float64(len(delta))
	}
	return sec, aff, work, ratio
}

// avgUnit feeds the updates one at a time and returns the mean seconds
// per update.
func avgUnit(m applier, updates graph.Batch) float64 {
	if len(updates) == 0 {
		return 0
	}
	total := stopwatch(func() {
		for _, u := range updates {
			m.Apply(graph.Batch{u})
		}
	})
	return total / float64(len(updates))
}

func ms(s float64) string { return fmt.Sprintf("%.3fms", s*1000) }

// Exp1 regenerates Fig. 6: average time per unit edge insertion and per
// unit edge deletion, deduced algorithm vs. fine-tuned competitor, over
// all six dataset stand-ins and all five query classes.
func Exp1(cfg Config) {
	type cell struct{ incIns, compIns, incDel, compDel float64 }
	classes := []struct {
		name  string
		panel string
		run   func(d gen.Dataset) cell
	}{
		{"SSSP", "Fig 6(a,b)", func(d gen.Dataset) cell {
			var c cell
			g := d.Build(cfg.Seed, cfg.Scale)
			ins := gen.UnitInsertions(newRNG(cfg.Seed), g, unitUpdateCount)
			del := gen.UnitDeletions(newRNG(cfg.Seed+1), g, unitUpdateCount)
			c.incIns = avgUnit(sssp.NewInc(g.Clone(), 0), ins)
			c.compIns = avgUnit(sssp.NewRR(g.Clone(), 0), ins)
			c.incDel = avgUnit(sssp.NewInc(g.Clone(), 0), del)
			c.compDel = avgUnit(sssp.NewRR(g.Clone(), 0), del)
			return c
		}},
		{"CC", "Fig 6(c,d)", func(d gen.Dataset) cell {
			var c cell
			g := buildUndirected(d, cfg.Seed, cfg.Scale)
			ins := gen.UnitInsertions(newRNG(cfg.Seed), g, unitUpdateCount)
			del := gen.UnitDeletions(newRNG(cfg.Seed+1), g, unitUpdateCount)
			c.incIns = avgUnit(cc.NewInc(g.Clone()), ins)
			c.compIns = avgUnit(cc.NewDynCC(g.Clone()), ins)
			c.incDel = avgUnit(cc.NewInc(g.Clone()), del)
			c.compDel = avgUnit(cc.NewDynCC(g.Clone()), del)
			return c
		}},
		{"Sim", "Fig 6(e,f)", func(d gen.Dataset) cell {
			var c cell
			g := d.Build(cfg.Seed, cfg.Scale)
			q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)
			ins := gen.UnitInsertions(newRNG(cfg.Seed), g, unitUpdateCount)
			del := gen.UnitDeletions(newRNG(cfg.Seed+1), g, unitUpdateCount)
			c.incIns = avgUnit(sim.NewInc(g.Clone(), q), ins)
			c.compIns = avgUnit(sim.NewIncMatch(g.Clone(), q), ins)
			c.incDel = avgUnit(sim.NewInc(g.Clone(), q), del)
			c.compDel = avgUnit(sim.NewIncMatch(g.Clone(), q), del)
			return c
		}},
		{"DFS", "Fig 6(g,h)", func(d gen.Dataset) cell {
			var c cell
			g := buildDirected(d, cfg.Seed, cfg.Scale) // §5.2: DFS on directed graphs
			ins := gen.UnitInsertions(newRNG(cfg.Seed), g, unitUpdateCount)
			del := gen.UnitDeletions(newRNG(cfg.Seed+1), g, unitUpdateCount)
			c.incIns = avgUnit(dfs.NewInc(g.Clone()), ins)
			c.compIns = avgUnit(dfs.NewDynDFS(g.Clone()), ins)
			c.incDel = avgUnit(dfs.NewInc(g.Clone()), del)
			c.compDel = avgUnit(dfs.NewDynDFS(g.Clone()), del)
			return c
		}},
		{"LCC", "Fig 6(i,j)", func(d gen.Dataset) cell {
			var c cell
			g := buildUndirected(d, cfg.Seed, cfg.Scale)
			ins := gen.UnitInsertions(newRNG(cfg.Seed), g, unitUpdateCount)
			del := gen.UnitDeletions(newRNG(cfg.Seed+1), g, unitUpdateCount)
			c.incIns = avgUnit(lcc.NewInc(g.Clone()), ins)
			c.compIns = avgUnit(lcc.NewDynLCC(g.Clone()), ins)
			c.incDel = avgUnit(lcc.NewInc(g.Clone()), del)
			c.compDel = avgUnit(lcc.NewDynLCC(g.Clone()), del)
			return c
		}},
	}
	for _, cl := range classes {
		t := newTable(cfg.Out,
			fmt.Sprintf("%s %s: avg time per unit update (deduced vs competitor)", cl.panel, cl.name),
			"Dataset", "Inc ins", "Comp ins", "Inc del", "Comp del")
		for _, d := range gen.Datasets {
			c := cl.run(d)
			t.row(d.Name, ms(c.incIns), ms(c.compIns), ms(c.incDel), ms(c.compDel))
		}
		t.flush()
	}
}

// ExpAff regenerates the affected-area measurements of Exp-1(1c)/(2c):
// the size of H⁰ (or the PE set) for unit updates, as a fraction of the
// number of status variables, on the OKT stand-in.
func ExpAff(cfg Config) {
	d, _ := gen.ByName("OKT")
	t := newTable(cfg.Out, "Exp-1(c): |AFF| proxy per unit update on OKT (fraction of status variables)",
		"Class", "Insertions", "Deletions")
	measure := func(mk func(g *graph.Graph) applier, g *graph.Graph, vars int) (float64, float64) {
		ins := gen.UnitInsertions(newRNG(cfg.Seed), g, unitUpdateCount)
		del := gen.UnitDeletions(newRNG(cfg.Seed+1), g, unitUpdateCount)
		sum := func(m applier, b graph.Batch) float64 {
			tot := 0
			for _, u := range b {
				tot += m.Apply(graph.Batch{u})
			}
			return float64(tot) / float64(len(b)) / float64(vars)
		}
		return sum(mk(g.Clone()), ins), sum(mk(g.Clone()), del)
	}
	{
		g := d.Build(cfg.Seed, cfg.Scale)
		i, del := measure(func(g *graph.Graph) applier { return sssp.NewInc(g, 0) }, g, g.NumNodes())
		t.row("IncSSSP", pct(i), pct(del))
	}
	{
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		i, del := measure(func(g *graph.Graph) applier { return cc.NewInc(g) }, g, g.NumNodes())
		t.row("IncCC", pct(i), pct(del))
	}
	{
		g := d.Build(cfg.Seed, cfg.Scale)
		q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)
		i, del := measure(func(g *graph.Graph) applier { return sim.NewInc(g, q) }, g, g.NumNodes()*q.NumNodes())
		t.row("IncSim", pct(i), pct(del))
	}
	{
		g := buildDirected(d, cfg.Seed, cfg.Scale)
		i, del := measure(func(g *graph.Graph) applier { return dfs.NewInc(g) }, g, g.NumNodes())
		t.row("IncDFS", pct(i), pct(del))
	}
	{
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		i, del := measure(func(g *graph.Graph) applier { return lcc.NewInc(g) }, g, 2*g.NumNodes())
		t.row("IncLCC", pct(i), pct(del))
	}
	t.flush()
}
