package bench

import (
	"fmt"

	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// deltaSize converts a percentage of |G| = |V| + |E| into an update count.
func deltaSize(g *graph.Graph, percent float64) int {
	n := int(percent / 100 * float64(g.Size()))
	if n < 1 {
		n = 1
	}
	return n
}

// Exp2SSSP regenerates Fig. 7(a,b): SSSP under batch updates of growing
// size on the FS and TW stand-ins.
func Exp2SSSP(cfg Config) {
	for _, name := range []string{"FS", "TW"} {
		d, _ := gen.ByName(name)
		g := d.Build(cfg.Seed, cfg.Scale)
		t := newTable(cfg.Out,
			fmt.Sprintf("Fig 7(a/b) SSSP on %s: batch updates, |ΔG| as %% of |G|", name),
			"|ΔG|", "Dijkstra", "IncSSSP", "IncSSSP_n", "DynDij")
		for _, p := range []float64{2, 4, 8, 16, 32} {
			delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, p), 0.5)
			updated := g.Clone()
			updated.Apply(delta)
			batch := stopwatch(func() { sssp.Dijkstra(updated, 0) })
			inc := sssp.NewInc(g.Clone(), 0)
			incT, aff, work, ratio := timeRepairLedger(inc, delta)
			incN := sssp.NewIncUnit(g.Clone(), 0)
			incNT := stopwatch(func() { incN.Apply(delta) })
			dd := sssp.NewDynDij(g.Clone(), 0)
			ddT := timeRepair(dd, delta)
			t.row(fmt.Sprintf("%g%%", p), batch, incT, incNT, ddT)
			cfg.report(Result{Experiment: "exp2-sssp", Dataset: name, Algo: "IncSSSP",
				Workload:     fmt.Sprintf("|ΔG|=%g%%", p),
				BatchSeconds: batch, IncSeconds: incT, Affected: aff,
				Work: work, BoundedRatio: ratio})
		}
		t.flush()
	}
}

// Exp2CC regenerates Fig. 7(c): CC under batch updates on the OKT
// stand-in (LJ's twin behaves consistently, as the paper notes).
func Exp2CC(cfg Config) {
	for _, name := range []string{"OKT", "LJ"} {
		d, _ := gen.ByName(name)
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		t := newTable(cfg.Out,
			fmt.Sprintf("Fig 7(c) CC on %s: batch updates", name),
			"|ΔG|", "CC_fp", "IncCC", "IncCC_n", "DynCC")
		for _, p := range []float64{0.25, 1, 4, 16, 64} {
			delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, p), 0.5)
			updated := g.Clone()
			updated.Apply(delta)
			batch := stopwatch(func() { cc.CCfp(updated) })
			inc := cc.NewInc(g.Clone())
			incT, aff, work, ratio := timeRepairLedger(inc, delta)
			incN := cc.NewInc(g.Clone())
			incNT := stopwatch(func() {
				for _, u := range delta {
					incN.Apply(graph.Batch{u})
				}
			})
			dyn := cc.NewDynCC(g.Clone())
			dynT := stopwatch(func() { dyn.Apply(delta) })
			t.row(fmt.Sprintf("%g%%", p), batch, incT, incNT, dynT)
			cfg.report(Result{Experiment: "exp2-cc", Dataset: name, Algo: "IncCC",
				Workload:     fmt.Sprintf("|ΔG|=%g%%", p),
				BatchSeconds: batch, IncSeconds: incT, Affected: aff,
				Work: work, BoundedRatio: ratio})
		}
		t.flush()
	}
}

// Exp2Sim regenerates Fig. 7(d,e): Sim under batch updates on the DP and
// FS stand-ins, |Q| = (4, 6).
func Exp2Sim(cfg Config) {
	q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)
	for _, name := range []string{"DP", "FS"} {
		d, _ := gen.ByName(name)
		g := d.Build(cfg.Seed, cfg.Scale)
		t := newTable(cfg.Out,
			fmt.Sprintf("Fig 7(d/e) Sim on %s: batch updates", name),
			"|ΔG|", "Sim_fp", "IncSim", "IncSim_n", "IncMatch")
		for _, p := range []float64{4, 8, 16, 32, 64} {
			delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, p), 0.5)
			updated := g.Clone()
			updated.Apply(delta)
			batch := stopwatch(func() { sim.Simfp(updated, q) })
			inc := sim.NewInc(g.Clone(), q)
			incT, aff, work, ratio := timeRepairLedger(inc, delta)
			incN := sim.NewIncUnit(g.Clone(), q)
			incNT := stopwatch(func() { incN.Apply(delta) })
			im := sim.NewIncMatch(g.Clone(), q)
			imT := timeRepair(im, delta)
			t.row(fmt.Sprintf("%g%%", p), batch, incT, incNT, imT)
			cfg.report(Result{Experiment: "exp2-sim", Dataset: name, Algo: "IncSim",
				Workload:     fmt.Sprintf("|ΔG|=%g%%", p),
				BatchSeconds: batch, IncSeconds: incT, Affected: aff,
				Work: work, BoundedRatio: ratio})
		}
		t.flush()
	}
}

// Exp2LCC regenerates Fig. 7(f): LCC under batch updates on the LJ and
// OKT stand-ins (undirected twins).
func Exp2LCC(cfg Config) {
	for _, name := range []string{"LJ", "OKT"} {
		d, _ := gen.ByName(name)
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		t := newTable(cfg.Out,
			fmt.Sprintf("Fig 7(f) LCC on %s: batch updates", name),
			"|ΔG|", "LCC_fp", "IncLCC", "IncLCC_n", "DynLCC")
		for _, p := range []float64{2, 4, 8, 16, 32} {
			delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, p), 0.5)
			updated := g.Clone()
			updated.Apply(delta)
			batch := stopwatch(func() { lcc.Run(updated) })
			inc := lcc.NewInc(g.Clone())
			incT, aff, work, ratio := timeRepairLedger(inc, delta)
			// The unit-at-a-time variant is orders of magnitude slower (it
			// recomputes one-hop neighborhoods per unit update); measure it
			// at the small sizes and extrapolate mentally beyond.
			incNCell := any("-")
			if p <= 4 {
				incN := lcc.NewIncUnit(g.Clone())
				incNCell = stopwatch(func() { incN.Apply(delta) })
			}
			dyn := lcc.NewDynLCC(g.Clone())
			dynT := stopwatch(func() { dyn.Apply(delta) })
			t.row(fmt.Sprintf("%g%%", p), batch, incT, incNCell, dynT)
			cfg.report(Result{Experiment: "exp2-lcc", Dataset: name, Algo: "IncLCC",
				Workload:     fmt.Sprintf("|ΔG|=%g%%", p),
				BatchSeconds: batch, IncSeconds: incT, Affected: aff,
				Work: work, BoundedRatio: ratio})
		}
		t.flush()
	}
}

// Exp2DFS regenerates the DFS paragraph of Exp-2(1e): IncDFS vs DynDFS vs
// DFS_fp on the OKT stand-in; IncDFS wins below ~1% and loses past ~4%.
func Exp2DFS(cfg Config) {
	d, _ := gen.ByName("OKT")
	g := buildDirected(d, cfg.Seed, cfg.Scale) // §5.2: DFS on directed graphs
	t := newTable(cfg.Out, "Exp-2(1e) DFS on OKT: batch updates",
		"|ΔG|", "DFS_fp", "IncDFS", "DynDFS")
	for _, p := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, p), 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { dfs.Run(updated) })
		inc := dfs.NewInc(g.Clone())
		incT, aff, work, ratio := timeRepairLedger(inc, delta)
		dyn := dfs.NewDynDFS(g.Clone())
		dynT := stopwatch(func() { dyn.Apply(delta) })
		t.row(fmt.Sprintf("%g%%", p), batch, incT, dynT)
		cfg.report(Result{Experiment: "exp2-dfs", Dataset: "OKT", Algo: "IncDFS",
			Workload:     fmt.Sprintf("|ΔG|=%g%%", p),
			BatchSeconds: batch, IncSeconds: incT, Affected: aff,
			Work: work, BoundedRatio: ratio})
	}
	t.flush()
}

// Exp2Types regenerates Fig. 7(g,h,i): real-life-shaped temporal updates
// on the WD stand-in — five monthly windows, each ~1.9% of |G| with an
// 81%/19% insertion/deletion mix — for SSSP, CC and Sim, including the
// fraction of incremental time spent in the scope function h.
func Exp2Types(cfg Config) {
	d, _ := gen.ByName("WD")
	const windows = 5
	tp := d.BuildTemporal(cfg.Seed, cfg.Scale, windows)
	g0 := tp.Snapshot(0)
	q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)

	incS := sssp.NewInc(g0.Clone(), 0)
	incSN := sssp.NewIncUnit(g0.Clone(), 0)
	dynS := sssp.NewDynDij(g0.Clone(), 0)
	incC := cc.NewInc(g0.Clone())
	dynC := cc.NewDynCC(g0.Clone())
	incM := sim.NewInc(g0.Clone(), q)
	im := sim.NewIncMatch(g0.Clone(), q)

	var rowsS, rowsC, rowsM [][]any
	cur := g0.Clone()
	for w := int64(1); w <= windows; w++ {
		delta := tp.Window(w-1, w)
		cur.Apply(delta)

		batchS := stopwatch(func() { sssp.Dijkstra(cur, 0) })
		s0 := incS.Stats()
		iS, affS, workS, ratioS := timeRepairLedger(incS, delta)
		s1 := incS.Stats()
		iSN := stopwatch(func() { incSN.Apply(delta) })
		dS := timeRepair(dynS, delta)
		hfrac := "-"
		if dt := (s1.HSeconds + s1.ResumeSeconds) - (s0.HSeconds + s0.ResumeSeconds); dt > 0 {
			hfrac = pct((s1.HSeconds - s0.HSeconds) / dt)
		}
		rowsS = append(rowsS, []any{fmt.Sprintf("M%d", w), batchS, iS, iSN, dS, hfrac})
		cfg.report(Result{Experiment: "exp2-types", Dataset: "WD", Algo: "IncSSSP",
			Workload:     fmt.Sprintf("M%d", w),
			BatchSeconds: batchS, IncSeconds: iS, Affected: affS,
			Work: workS, BoundedRatio: ratioS})

		batchC := stopwatch(func() { cc.CCfp(cur) })
		c0 := incC.Stats()
		iC, affC, workC, ratioC := timeRepairLedger(incC, delta)
		c1 := incC.Stats()
		dC := stopwatch(func() { dynC.Apply(delta) })
		hfrac = "-"
		if dt := (c1.HSeconds + c1.ResumeSeconds) - (c0.HSeconds + c0.ResumeSeconds); dt > 0 {
			hfrac = pct((c1.HSeconds - c0.HSeconds) / dt)
		}
		rowsC = append(rowsC, []any{fmt.Sprintf("M%d", w), batchC, iC, dC, hfrac})
		cfg.report(Result{Experiment: "exp2-types", Dataset: "WD", Algo: "IncCC",
			Workload:     fmt.Sprintf("M%d", w),
			BatchSeconds: batchC, IncSeconds: iC, Affected: affC,
			Work: workC, BoundedRatio: ratioC})

		batchM := stopwatch(func() { sim.Simfp(cur, q) })
		m0 := incM.Stats()
		iM, affM, workM, ratioM := timeRepairLedger(incM, delta)
		m1 := incM.Stats()
		dM := timeRepair(im, delta)
		hfrac = "-"
		if dt := (m1.HSeconds + m1.ResumeSeconds) - (m0.HSeconds + m0.ResumeSeconds); dt > 0 {
			hfrac = pct((m1.HSeconds - m0.HSeconds) / dt)
		}
		rowsM = append(rowsM, []any{fmt.Sprintf("M%d", w), batchM, iM, dM, hfrac})
		cfg.report(Result{Experiment: "exp2-types", Dataset: "WD", Algo: "IncSim",
			Workload:     fmt.Sprintf("M%d", w),
			BatchSeconds: batchM, IncSeconds: iM, Affected: affM,
			Work: workM, BoundedRatio: ratioM})
	}
	render := func(title string, header []string, rows [][]any) {
		t := newTable(cfg.Out, title, header...)
		for _, r := range rows {
			t.row(r...)
		}
		t.flush()
	}
	render("Fig 7(g) SSSP on temporal WD (per monthly window)",
		[]string{"Window", "Dijkstra", "IncSSSP", "IncSSSP_n", "DynDij", "h-fraction"}, rowsS)
	render("Fig 7(h) CC on temporal WD",
		[]string{"Window", "CC_fp", "IncCC", "DynCC", "h-fraction"}, rowsC)
	render("Fig 7(i) Sim on temporal WD",
		[]string{"Window", "Sim_fp", "IncSim", "IncMatch", "h-fraction"}, rowsM)
}
