package bench

import (
	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// Exp3 regenerates Fig. 7(j,k,l): scalability with |G| at |ΔG| = 1%|G|
// for SSSP, CC and Sim over synthetic power-law graphs of growing size.
func Exp3(cfg Config) {
	sizes := []int{25_000, 50_000, 100_000, 200_000}
	const avgDeg = 10

	tj := newTable(cfg.Out, "Fig 7(j) SSSP scalability (|ΔG| = 1%|G|)",
		"|V|", "|G|", "Dijkstra", "IncSSSP", "DynDij")
	for _, n := range sizes {
		nodes := int(float64(n) * cfg.Scale)
		g := gen.Synthetic(cfg.Seed, nodes, avgDeg, true)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 1), 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { sssp.Dijkstra(updated, 0) })
		inc := sssp.NewInc(g.Clone(), 0)
		incT := timeRepair(inc, delta)
		dyn := sssp.NewDynDij(g.Clone(), 0)
		dynT := timeRepair(dyn, delta)
		tj.row(nodes, g.Size(), batch, incT, dynT)
	}
	tj.flush()

	tk := newTable(cfg.Out, "Fig 7(k) CC scalability (|ΔG| = 1%|G|)",
		"|V|", "|G|", "CC_fp", "IncCC", "DynCC")
	for _, n := range sizes {
		nodes := int(float64(n) * cfg.Scale)
		g := gen.Synthetic(cfg.Seed, nodes, avgDeg, false)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 1), 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { cc.CCfp(updated) })
		inc := cc.NewInc(g.Clone())
		incT := timeRepair(inc, delta)
		dyn := cc.NewDynCC(g.Clone())
		dynT := stopwatch(func() { dyn.Apply(delta) })
		tk.row(nodes, g.Size(), batch, incT, dynT)
	}
	tk.flush()

	tl := newTable(cfg.Out, "Fig 7(l) Sim scalability (|ΔG| = 1%|G|)",
		"|V|", "|G|", "Sim_fp", "IncSim", "IncMatch")
	q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)
	for _, n := range sizes {
		nodes := int(float64(n) * cfg.Scale)
		g := gen.Synthetic(cfg.Seed, nodes, avgDeg, true)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 1), 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { sim.Simfp(updated, q) })
		inc := sim.NewInc(g.Clone(), q)
		incT := timeRepair(inc, delta)
		im := sim.NewIncMatch(g.Clone(), q)
		imT := timeRepair(im, delta)
		tl.row(nodes, g.Size(), batch, incT, imT)
	}
	tl.flush()
}
