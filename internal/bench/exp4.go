package bench

import (
	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/gen"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// Exp4 regenerates Fig. 8: live-heap cost of each algorithm's maintained
// structures on the OKT stand-in, measured as heap growth while building
// the maintainer (graph excluded — every algorithm shares it). The
// expected shape: deducible algorithms (IncSSSP, IncDFS, IncLCC) cost no
// more than their batch counterparts, weakly deducible ones (IncCC,
// IncSim) add only timestamps, and DynCC's forest hierarchy dominates
// everything.
func Exp4(cfg Config) {
	d, _ := gen.ByName("OKT")
	gd := d.Build(cfg.Seed, cfg.Scale)            // directed build for SSSP/Sim/DFS
	gu := buildUndirected(d, cfg.Seed, cfg.Scale) // undirected twin for CC/LCC
	q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)

	t := newTable(cfg.Out, "Fig 8: memory of maintained structures on OKT (graph excluded)",
		"Class", "Batch result", "Deduced", "Competitor")

	keep := make([]any, 0, 16)
	probe := func(build func() any) string {
		x, delta := heapDelta(build)
		keep = append(keep, x)
		return mib(delta)
	}

	t.row("SSSP",
		probe(func() any { return sssp.Dijkstra(gd, 0) }),
		probe(func() any { return sssp.NewInc(gd, 0) }),
		probe(func() any { return sssp.NewDynDij(gd, 0) }),
	)
	t.row("CC",
		probe(func() any { return cc.CCfp(gu) }),
		probe(func() any { return cc.NewInc(gu) }),
		probe(func() any { return cc.NewDynCC(gu) }),
	)
	t.row("Sim",
		probe(func() any { return sim.Simfp(gd, q) }),
		probe(func() any { return sim.NewInc(gd, q) }),
		probe(func() any { return sim.NewIncMatch(gd, q) }),
	)
	t.row("DFS",
		probe(func() any { return dfs.Run(gd) }),
		probe(func() any { return dfs.NewInc(gd) }),
		probe(func() any { return dfs.NewDynDFS(gd) }),
	)
	t.row("LCC",
		probe(func() any { return lcc.Run(gu) }),
		probe(func() any { return lcc.NewInc(gu) }),
		probe(func() any { return lcc.NewDynLCC(gu) }),
	)
	t.flush()
	_ = keep
}
