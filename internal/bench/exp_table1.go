package bench

import (
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// buildUndirected builds a dataset's undirected twin, used by CC and LCC.
func buildUndirected(d gen.Dataset, seed int64, scale float64) *graph.Graph {
	d.Directed = false
	return d.Build(seed, scale)
}

// buildDirected builds a dataset's directed twin, used by DFS (§5.2
// defines DFS on directed graphs).
func buildDirected(d gen.Dataset, seed int64, scale float64) *graph.Graph {
	d.Directed = true
	return d.Build(seed, scale)
}

// Table1 regenerates the paper's Table 1: batch vs. fine-tuned competitor
// vs. deduced incremental algorithm for SSSP, Sim and LCC with
// |ΔG| = 4%|G|. As in the paper's setup, SSSP averages over sampled
// source nodes and Sim over sampled patterns (the paper uses 20 and 5; we
// use 5 and 3 at this scale).
func Table1(cfg Config) {
	t := newTable(cfg.Out, "Table 1: incrementalized algorithms at |ΔG| = 4%|G|",
		"Problem", "Batch A", "Competitor", "Deduced A_Δ", "A/A_Δ")

	// SSSP and Sim run on the directed TW stand-in; LCC on its undirected
	// twin (the paper's graph is a single 73.7M-element graph).
	d, _ := gen.ByName("TW")
	{
		const sources = 5
		g := d.Build(cfg.Seed, cfg.Scale)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, 4*g.Size()/100, 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		rng := newRNG(cfg.Seed + 3)
		var batch, compT, incT float64
		for s := 0; s < sources; s++ {
			src := graph.NodeID(rng.Intn(g.NumNodes()))
			batch += stopwatch(func() { sssp.Dijkstra(updated, src) })
			comp := sssp.NewDynDij(g.Clone(), src)
			compT += timeRepair(comp, delta)
			inc := sssp.NewInc(g.Clone(), src)
			incT += timeRepair(inc, delta)
		}
		batch /= sources
		compT /= sources
		incT /= sources
		t.row("SSSP", batch, compT, incT, speedup(batch, incT))
	}
	{
		const patterns = 3
		g := d.Build(cfg.Seed, cfg.Scale)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, 4*g.Size()/100, 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		var batch, compT, incT float64
		for p := 0; p < patterns; p++ {
			q := gen.Pattern(newRNG(cfg.Seed+1+int64(p)), 4, 6, gen.Alphabet)
			batch += stopwatch(func() { sim.Simfp(updated, q) })
			comp := sim.NewIncMatch(g.Clone(), q)
			compT += timeRepair(comp, delta)
			inc := sim.NewInc(g.Clone(), q)
			incT += timeRepair(inc, delta)
		}
		batch /= patterns
		compT /= patterns
		incT /= patterns
		t.row("Sim", batch, compT, incT, speedup(batch, incT))
	}
	{
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, 4*g.Size()/100, 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { lcc.Run(updated) })
		comp := lcc.NewDynLCC(g.Clone())
		compT := stopwatch(func() { comp.Apply(delta) })
		inc := lcc.NewInc(g.Clone())
		incT := timeRepair(inc, delta)
		t.row("LCC", batch, compT, incT, speedup(batch, incT))
	}
	t.flush()
}
