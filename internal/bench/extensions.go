package bench

import (
	"incgraph/internal/bc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
)

// ExpExtensions measures the two query classes added beyond the paper's
// five — biconnectivity (named in §3) and dual simulation (an engine
// extension) — incremental vs. batch at |ΔG| = 0.25%|G|, demonstrating
// that the framework's guarantees carry over to new instances. It also
// contrasts uniform against hotspot update workloads, showing how update
// locality shrinks the affected area.
func ExpExtensions(cfg Config) {
	t := newTable(cfg.Out, "Extensions: incremental vs batch at |ΔG| = 0.25%|G|",
		"Class", "Batch", "Incremental", "Speedup")
	d, _ := gen.ByName("OKT")
	{
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 0.25), 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { bc.Run(updated) })
		inc := bc.NewInc(g.Clone())
		incT := timeRepair(inc, delta)
		t.row("BC", batch, incT, speedup(batch, incT))
	}
	{
		g := d.Build(cfg.Seed, cfg.Scale)
		q := gen.Pattern(newRNG(cfg.Seed+2), 4, 6, gen.Alphabet)
		delta := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 0.25), 0.5)
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { sim.DualSim(updated, q) })
		inc := sim.NewIncDual(g.Clone(), q)
		incT := stopwatch(func() { inc.Apply(delta) })
		t.row("DualSim", batch, incT, speedup(batch, incT))
	}
	t.flush()

	// Update locality: the same |ΔG| confined to a BFS ball shrinks the
	// affected area, so the incremental advantage grows — the skew of
	// real-world churn works in A_Δ's favor. LCC shows it most clearly:
	// its PE set is the one-hop neighborhood of ΔG, which saturates under
	// uniform updates but stays small under hotspot updates.
	t2 := newTable(cfg.Out, "Update locality: uniform vs hotspot ΔG (IncLCC on LJ, 200 updates)",
		"Workload", "|ΔG|", "LCC_fp", "IncLCC", "Speedup", "|PE|")
	dl, _ := gen.ByName("LJ")
	g := buildUndirected(dl, cfg.Seed, cfg.Scale)
	count := 200
	if c := deltaSize(g, 1); c < count {
		count = c // keep tiny scales sane in smoke tests
	}
	for _, kind := range []string{"uniform", "hotspot"} {
		var delta graph.Batch
		if kind == "uniform" {
			delta = gen.RandomUpdates(newRNG(cfg.Seed), g, count, 0.5)
		} else {
			delta = gen.HotspotUpdates(newRNG(cfg.Seed), g, count, 0.5, 1)
		}
		updated := g.Clone()
		updated.Apply(delta)
		batch := stopwatch(func() { lcc.Run(updated) })
		inc := lcc.NewInc(g.Clone())
		inc.Stage(delta)
		var pe int
		incT := stopwatch(func() { pe = inc.Repair() })
		t2.row(kind, len(delta), batch, incT, speedup(batch, incT), pe)
	}
	t2.flush()
}
