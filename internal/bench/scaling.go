package bench

import (
	"fmt"

	"incgraph/internal/cc"
	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/sssp"
)

// parWorker is the slice of the maintainer API the scaling experiment
// needs: the engine-backed maintainers accept a worker count and report
// the parallel-drain counters.
type parWorker interface {
	applier
	SetWorkers(int)
	ParStats() fixpoint.ParStats
	Close()
}

// ExpScaling measures the parallel execution mode against the sequential
// drain on exp2's large-batch workloads: IncSSSP on the FS stand-in and
// IncCC on the OKT stand-in, each repairing one |ΔG|=32% batch with 1, 2,
// 4 and 8 workers. The 1-worker run is the baseline, so the reported
// speedup is sequential-time / parallel-time — the scaling curve, not the
// batch-vs-incremental ratio of the other experiments. Alongside the
// wall time each row shows |AFF| (identical across worker counts: the
// parallel mode computes the same fixpoint over the same affected area)
// and the measured worker utilization and imbalance.
//
// Interpretation note: speedups above 1 need real parallel hardware. On a
// single-core machine (GOMAXPROCS=1) the rows still validate determinism
// and report utilization ≈ 1/workers, but wall times cannot improve — see
// EXPERIMENTS.md.
func ExpScaling(cfg Config) {
	run := func(exp, dataset, algo string, fresh func() parWorker, upd graph.Batch) {
		t := newTable(cfg.Out,
			fmt.Sprintf("Parallel scaling: %s on %s, |ΔG|=32%%", algo, dataset),
			"workers", "repair", "speedup", "|AFF|", "par rounds", "util", "imbalance")
		var seqTime float64
		for _, w := range []int{1, 2, 4, 8} {
			m := fresh()
			if w > 1 {
				m.SetWorkers(w)
			}
			var aff int
			sec := stopwatch(func() { aff = m.Apply(upd) })
			ps := m.ParStats()
			m.Close()
			if w == 1 {
				seqTime = sec
			}
			t.row(fmt.Sprintf("%d", w), sec, speedup(seqTime, sec), aff,
				fmt.Sprintf("%d", ps.ParRounds),
				fmt.Sprintf("%.2f", ps.Utilization()),
				fmt.Sprintf("%.2f", ps.MaxImbalance))
			cfg.report(Result{Experiment: exp, Dataset: dataset, Algo: algo,
				Workload:     "|ΔG|=32%",
				BatchSeconds: seqTime, IncSeconds: sec, Affected: aff,
				Speedup: seqTime / sec, Workers: w})
		}
		t.flush()
	}

	{
		d, _ := gen.ByName("FS")
		g := d.Build(cfg.Seed, cfg.Scale)
		upd := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 32), 0.5)
		run("scaling-sssp", "FS", "IncSSSP",
			func() parWorker { return sssp.NewInc(g.Clone(), 0) }, upd)
	}
	{
		d, _ := gen.ByName("OKT")
		g := buildUndirected(d, cfg.Seed, cfg.Scale)
		upd := gen.RandomUpdates(newRNG(cfg.Seed), g, deltaSize(g, 32), 0.5)
		run("scaling-cc", "OKT", "IncCC",
			func() parWorker { return cc.NewInc(g.Clone()) }, upd)
	}
}
