// Package cc implements connected components: the batch fixpoint algorithm
// CC_fp (min-label propagation, Example 2 of the paper), the weakly
// deducible incremental algorithm IncCC (Example 5, timestamps via the
// fixpoint engine), the naive deducible variant of Example 2 used as an
// ablation, a union-find batch baseline, and the DynCC competitor built on
// fully dynamic connectivity (Holm et al.).
//
// Directed graphs are treated as their underlying undirected graphs
// (weakly connected components). Components are identified by the minimum
// node id they contain.
package cc

import (
	"incgraph/internal/dynconn"
	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
)

// Components is the BFS reference implementation used by tests.
func Components(g *graph.Graph) []int64 {
	n := g.NumNodes()
	lab := make([]int64, n)
	for i := range lab {
		lab[i] = -1
	}
	var stack []graph.NodeID
	for s := 0; s < n; s++ {
		if lab[s] >= 0 {
			continue
		}
		lab[s] = int64(s)
		stack = append(stack[:0], graph.NodeID(s))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(y graph.NodeID) {
				if lab[y] < 0 {
					lab[y] = int64(s)
					stack = append(stack, y)
				}
			}
			for _, e := range g.Out(x) {
				visit(e.To)
			}
			if g.Directed() {
				for _, e := range g.In(x) {
					visit(e.To)
				}
			}
		}
	}
	return lab
}

// UnionFind computes components with a weighted union-find, the fastest
// batch baseline.
func UnionFind(g *graph.Graph) []int64 {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	g.Edges(func(u, v graph.NodeID, w int64) {
		ru, rv := find(int32(u)), find(int32(v))
		if ru != rv {
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	})
	lab := make([]int64, n)
	// With min-id union direction, each root is already its component's
	// minimum id.
	for i := range lab {
		lab[i] = int64(find(int32(i)))
	}
	return lab
}

// Instance is the CC instantiation of the fixpoint model (Example 2): one
// variable per node holding a component id, f_xv = min({id_v} ∪ Y_xv) over
// the neighbors. It is contracting and monotonic under the order on ids.
//
// When Flat is set, all adjacency reads go through the flat CSR+overlay
// view instead of G's pointer-rich lists, and the engine's row-based drain
// (fixpoint.UniformRelaxer) becomes available. The incremental maintainer
// keeps Flat in sync with G; leave it nil for a plain map-backed instance.
type Instance struct {
	G    *graph.Graph
	Flat *graph.Flat
}

// NumVars returns one variable per node.
func (c *Instance) NumVars() int { return c.G.NumNodes() }

// Bottom returns the node's own id, the initial component label.
func (c *Instance) Bottom(x fixpoint.Var) int64 { return int64(x) }

// Less orders labels: smaller ids win.
func (c *Instance) Less(a, b int64) bool { return a < b }

// Equal reports label equality.
func (c *Instance) Equal(a, b int64) bool { return a == b }

func (c *Instance) neighbors(x fixpoint.Var, yield func(fixpoint.Var)) {
	v := graph.NodeID(x)
	if c.Flat != nil {
		c.Flat.EachOut(v, func(u graph.NodeID, _ int64) { yield(fixpoint.Var(u)) })
		if c.G.Directed() {
			c.Flat.EachIn(v, func(u graph.NodeID, _ int64) { yield(fixpoint.Var(u)) })
		}
		return
	}
	for _, e := range c.G.Out(v) {
		yield(fixpoint.Var(e.To))
	}
	if c.G.Directed() {
		for _, e := range c.G.In(v) {
			yield(fixpoint.Var(e.To))
		}
	}
}

// Inputs yields the (undirected) neighbors of x.
func (c *Instance) Inputs(x fixpoint.Var, yield func(fixpoint.Var)) { c.neighbors(x, yield) }

// Dependents equals Inputs: the dependency relation is symmetric.
func (c *Instance) Dependents(x fixpoint.Var, yield func(fixpoint.Var)) { c.neighbors(x, yield) }

// Update evaluates f_x: the minimum of the node's id and neighbor labels.
// On the flat path the meet over the dependent row is branch-free
// (fixpoint.MinInt64); labels are node ids, far from the overflow bound.
func (c *Instance) Update(x fixpoint.Var, get func(fixpoint.Var) int64) int64 {
	best := int64(x)
	if c.Flat != nil {
		v := graph.NodeID(x)
		best = c.flatMeet(v, best, get, false)
		if c.G.Directed() {
			best = c.flatMeet(v, best, get, true)
		}
		return best
	}
	c.neighbors(x, func(y fixpoint.Var) {
		if v := get(y); v < best {
			best = v
		}
	})
	return best
}

// flatMeet folds get over one direction of v's flat adjacency.
func (c *Instance) flatMeet(v graph.NodeID, best int64, get func(fixpoint.Var) int64, in bool) int64 {
	var ts []graph.NodeID
	var dead []bool
	var extra []graph.Edge
	if in {
		ts, _, dead, extra = c.Flat.InSpans(v)
	} else {
		ts, _, dead, extra = c.Flat.OutSpans(v)
	}
	if dead == nil {
		for _, u := range ts {
			best = fixpoint.MinInt64(best, get(fixpoint.Var(u)))
		}
	} else {
		for k, u := range ts {
			if !dead[k] {
				best = fixpoint.MinInt64(best, get(fixpoint.Var(u)))
			}
		}
	}
	for _, e := range extra {
		best = fixpoint.MinInt64(best, get(fixpoint.Var(e.To)))
	}
	return best
}

// Seeds yields every variable: any node's statement may be false at start.
func (c *Instance) Seeds(yield func(fixpoint.Var)) {
	for x := 0; x < c.G.NumNodes(); x++ {
		yield(fixpoint.Var(x))
	}
}

// RelaxOut emits min-label candidates to the neighbors, the meet-form
// fast path of the engine.
func (c *Instance) RelaxOut(x fixpoint.Var, xv int64, emit func(fixpoint.Var, int64)) {
	c.neighbors(x, func(y fixpoint.Var) { emit(y, xv) })
}

// DependentRow appends x's neighbors to buf (fixpoint.UniformRelaxer):
// min-label propagation emits the same candidate everywhere, so the
// engine's sequential drain installs it along this row with no per-edge
// closure. The row visits exactly what RelaxOut emits to, in the same
// order, on both the flat and the legacy path.
func (c *Instance) DependentRow(x fixpoint.Var, buf []fixpoint.Var) []fixpoint.Var {
	v := graph.NodeID(x)
	if c.Flat == nil {
		for _, e := range c.G.Out(v) {
			buf = append(buf, fixpoint.Var(e.To))
		}
		if c.G.Directed() {
			for _, e := range c.G.In(v) {
				buf = append(buf, fixpoint.Var(e.To))
			}
		}
		return buf
	}
	ts, ws, dead, extra := c.Flat.OutSpans(v)
	buf = appendRow(buf, ts, ws, dead, extra)
	if c.G.Directed() {
		ts, ws, dead, extra = c.Flat.InSpans(v)
		buf = appendRow(buf, ts, ws, dead, extra)
	}
	return buf
}

// appendRow appends the live targets of one flat span set to buf.
func appendRow(buf []fixpoint.Var, ts []graph.NodeID, _ []int64, dead []bool, extra []graph.Edge) []fixpoint.Var {
	if dead == nil {
		for _, u := range ts {
			buf = append(buf, fixpoint.Var(u))
		}
	} else {
		for k, u := range ts {
			if !dead[k] {
				buf = append(buf, fixpoint.Var(u))
			}
		}
	}
	for _, e := range extra {
		buf = append(buf, fixpoint.Var(e.To))
	}
	return buf
}

// OutDegree reports the number of dependency edges leaving x — its
// (undirected) neighbor count — feeding ‖AFF‖ in the engine's work ledger
// (see fixpoint.OutDegreer). O(1): adjacency slice lengths.
func (c *Instance) OutDegree(x fixpoint.Var) int64 {
	v := graph.NodeID(x)
	d := int64(len(c.G.Out(v)))
	if c.G.Directed() {
		d += int64(len(c.G.In(v)))
	}
	return d
}

// CCfp runs the batch fixpoint algorithm and returns the labels.
func CCfp(g *graph.Graph) []int64 {
	eng := fixpoint.New[int64](&Instance{G: g}, fixpoint.PriorityOrder)
	eng.Run()
	return eng.State().Val
}

// Inc is the weakly deducible incremental algorithm IncCC (Example 5). It
// keeps the timestamps recorded by the engine to derive the order <_C and
// anchor sets, so that deleting an edge inside a component inspects only
// the truly affected region rather than both sides.
//
// An Inc is not goroutine-safe: it (and the graph it owns) must be
// driven by a single writer goroutine making every call, reads included —
// Labels aliases engine state that Apply mutates. Concurrent serving
// goes through internal/serve, which gives each maintainer one apply
// loop and publishes immutable snapshots to readers.
type Inc struct {
	g       *graph.Graph
	flat    *graph.Flat // nil when built WithoutFlat
	eng     *fixpoint.Engine[int64]
	arena   fixpoint.ScopeArena
	pending graph.Batch
}

// Option configures an incremental maintainer.
type Option func(*incOpts)

type incOpts struct{ noFlat bool }

// WithoutFlat disables the flat CSR+overlay adjacency view, keeping the
// legacy map-backed hot path. Used by differential tests that pin the two
// engines against each other; production maintainers should not need it.
func WithoutFlat() Option { return func(o *incOpts) { o.noFlat = true } }

// NewInc computes the initial fixpoint and returns the algorithm.
func NewInc(g *graph.Graph, opts ...Option) *Inc {
	var o incOpts
	for _, f := range opts {
		f(&o)
	}
	inst := &Instance{G: g}
	var fl *graph.Flat
	if !o.noFlat {
		fl = graph.NewFlat(g)
		inst.Flat = fl
	}
	eng := fixpoint.New[int64](inst, fixpoint.PriorityOrder)
	eng.Run()
	return &Inc{g: g, flat: fl, eng: eng}
}

// Graph returns the maintained graph.
func (i *Inc) Graph() *graph.Graph { return i.g }

// Labels returns the current component labels, aliased to internal state.
func (i *Inc) Labels() []int64 { return i.eng.State().Val }

// Stats exposes the engine's inspection counters.
func (i *Inc) Stats() fixpoint.Stats { return i.eng.State().Stats }

// ExportState copies out the engine state a durability checkpoint
// persists: labels, determination timestamps, and the logical clock. The
// timestamps are IncCC's auxiliary structure — the order <_C the anchor
// analysis reads — so restoring them preserves incremental behaviour
// across a restart, not just the answers.
func (i *Inc) ExportState() (labels, ts []int64, clock int64) {
	st := i.eng.State()
	return append([]int64(nil), st.Val...), append([]int64(nil), st.TS...), st.Clock()
}

// RestoreState installs state exported from a checkpoint of the same
// graph.
func (i *Inc) RestoreState(labels, ts []int64, clock int64) error {
	return i.eng.Restore(labels, ts, clock)
}

// SetTracer installs the engine's span hook (see fixpoint.Tracer); it
// must be called from the single writer goroutine that drives Apply.
func (i *Inc) SetTracer(t fixpoint.Tracer) { i.eng.SetTracer(t) }

// SetWorkers sets the engine's worker count for parallel round drains
// (see fixpoint.Engine.SetWorkers): n >= 2 partitions each propagation
// round's frontier across a reusable pool, n <= 1 restores the
// sequential path. Single-writer contract: call only between Applies.
func (i *Inc) SetWorkers(n int) { i.eng.SetWorkers(n) }

// Workers returns the engine's configured worker count (1 = sequential).
func (i *Inc) Workers() int { return i.eng.Workers() }

// ParStats returns the engine's cumulative parallel-drain counters;
// zero-valued while the engine runs sequentially.
func (i *Inc) ParStats() fixpoint.ParStats { return i.eng.ParStats() }

// Close releases the engine's worker pool, if any; the maintainer stays
// usable (the pool respawns lazily on the next parallel round).
func (i *Inc) Close() { i.eng.Close() }

// Apply computes G ⊕ ΔG and incrementally repairs the labels. It returns
// |H⁰|.
//
// Per-update feasibility analysis (§4): inserted edges only improve
// labels, so their endpoints keep feasible values and skip h's revision
// queue, going straight into H⁰ for the resumed step function. Deletion
// endpoints enter h's queue; h's timestamp-based anchor evaluation then
// establishes that usually only the later-determined endpoint is truly
// reset (Example 5).
func (i *Inc) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG without repairing the labels, letting
// benchmarks time Repair separately from the graph mutation every method
// needs.
func (i *Inc) Stage(b graph.Batch) {
	applied := i.g.Apply(b.Net(i.g.Directed()))
	i.pending = append(i.pending, applied...)
	i.eng.Grow()
	if i.flat != nil {
		i.flat.Stage(i.g, applied)
		i.flat.MaybeCompact(i.g)
	}
}

// SetCompactThreshold sets the flat view's overlay-to-base compaction
// ratio (see graph.Flat.SetCompactThreshold). No-op when the maintainer
// was built WithoutFlat. Single-writer contract: call between Applies.
func (i *Inc) SetCompactThreshold(t float64) {
	if i.flat != nil {
		i.flat.SetCompactThreshold(t)
	}
}

// Flat returns the maintainer's flat adjacency view (nil WithoutFlat),
// for observability of overlay size and compaction counts.
func (i *Inc) Flat() *graph.Flat { return i.flat }

// Repair runs the incremental algorithm over the staged updates.
func (i *Inc) Repair() int {
	applied := i.pending
	i.pending = i.pending[:0]
	a := &i.arena
	a.Begin(i.g.NumNodes())
	for _, u := range applied {
		switch u.Kind {
		case graph.InsertEdge:
			// Insertions only improve labels: re-propagating from both
			// endpoints relaxes the new edge in whichever direction the
			// smaller label flows, even when deletions in the same batch
			// relabel either side during h.
			a.Seed(fixpoint.Var(u.From))
			a.Seed(fixpoint.Var(u.To))
		case graph.DeleteEdge:
			a.Touch(fixpoint.Var(u.From), true)
			a.Touch(fixpoint.Var(u.To), true)
		}
	}
	return len(i.eng.IncrementalRunDelta(a.Touched(), a.Seeds()))
}

// IncNaive is the deducible incremental algorithm of Example 2: it marks
// as potentially affected (PE) every variable reachable from ΔG through
// input sets, resets all of them to their initial values, and re-runs the
// step function. Correct by Theorem 1 but not relatively bounded — a unit
// deletion inside a large component recomputes the whole component — it
// serves as the ablation quantifying what timestamps buy.
type IncNaive struct {
	g   *graph.Graph
	eng *fixpoint.Engine[int64]
}

// NewIncNaive computes the initial fixpoint and returns the algorithm.
func NewIncNaive(g *graph.Graph) *IncNaive {
	eng := fixpoint.New[int64](&Instance{G: g}, fixpoint.PriorityOrder)
	eng.Run()
	return &IncNaive{g: g, eng: eng}
}

// Graph returns the maintained graph.
func (i *IncNaive) Graph() *graph.Graph { return i.g }

// Labels returns the current component labels.
func (i *IncNaive) Labels() []int64 { return i.eng.State().Val }

// Apply computes G ⊕ ΔG, expands the PE closure, resets it, and resumes
// the step function. It returns the number of PE variables.
func (i *IncNaive) Apply(b graph.Batch) int {
	applied := i.g.Apply(b.Net(i.g.Directed()))
	i.eng.Grow()
	st := i.eng.State()
	inst := &Instance{G: i.g}
	pe := make(map[fixpoint.Var]bool, 2*len(applied))
	var queue []fixpoint.Var
	add := func(x fixpoint.Var) {
		if !pe[x] {
			pe[x] = true
			queue = append(queue, x)
		}
	}
	for _, u := range applied {
		add(fixpoint.Var(u.From))
		add(fixpoint.Var(u.To))
	}
	// PE closure: any variable whose input set contains a PE variable.
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inst.Dependents(x, add)
	}
	scope := make([]fixpoint.Var, 0, len(pe))
	for x := range pe {
		st.Val[x] = inst.Bottom(x)
		scope = append(scope, x)
	}
	i.eng.ResumeFrom(scope)
	return len(pe)
}

// DynCC is the competitor: fully dynamic connectivity (Holm et al. [27])
// fed one unit update at a time, its native interface — the behaviour the
// paper exploits to show that batch updates favour the incrementalized
// algorithms.
type DynCC struct {
	g  *graph.Graph
	dc *dynconn.DynConn
}

// NewDynCC builds the connectivity structure for g.
func NewDynCC(g *graph.Graph) *DynCC {
	dc := dynconn.New(g.NumNodes())
	g.Edges(func(u, v graph.NodeID, w int64) {
		dc.Insert(int32(u), int32(v))
	})
	return &DynCC{g: g, dc: dc}
}

// Graph returns the maintained graph.
func (d *DynCC) Graph() *graph.Graph { return d.g }

// Apply processes each unit update individually through the dynamic
// structure.
func (d *DynCC) Apply(b graph.Batch) int {
	for _, u := range b {
		switch u.Kind {
		case graph.InsertEdge:
			if d.g.InsertEdge(u.From, u.To, u.W) {
				d.dc.Grow(d.g.NumNodes())
				d.dc.Insert(int32(u.From), int32(u.To))
			}
		case graph.DeleteEdge:
			if d.g.DeleteEdge(u.From, u.To) {
				d.dc.Delete(int32(u.From), int32(u.To))
			}
		}
	}
	return 0
}

// Labels extracts min-id component labels for comparison with the
// fixpoint algorithms.
func (d *DynCC) Labels() []int64 {
	raw := d.dc.Labels()
	out := make([]int64, len(raw))
	for i, l := range raw {
		out[i] = int64(l)
	}
	return out
}

// Components returns the number of connected components.
func (d *DynCC) Components() int { return d.dc.Components() }
