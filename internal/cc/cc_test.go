package cc

import (
	"math/rand"
	"reflect"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func TestBatchAlgorithmsAgree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := gen.ErdosRenyi(rng, 60, 70, directed)
		ref := Components(g)
		if got := CCfp(g); !reflect.DeepEqual(got, ref) {
			t.Fatalf("seed %d: CCfp %v != BFS %v", seed, got, ref)
		}
		if !directed {
			if got := UnionFind(g); !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: UnionFind %v != BFS %v", seed, got, ref)
			}
		}
	}
}

func TestCCfpSimple(t *testing.T) {
	g := graph.New(6, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(4, 5, 1)
	want := []int64{0, 0, 0, 3, 4, 4}
	if got := CCfp(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("CCfp = %v, want %v", got, want)
	}
}

type maintainer interface {
	Apply(graph.Batch) int
	Labels() []int64
	Graph() *graph.Graph
}

func checkMaintainer(t *testing.T, name string, mk func(*graph.Graph) maintainer) {
	t.Helper()
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%4 == 0
		g := gen.ErdosRenyi(rng, 70, 90, directed)
		m := mk(g)
		for round := 0; round < 8; round++ {
			b := gen.RandomUpdates(rng, m.Graph(), 15, 0.5)
			m.Apply(b)
			want := Components(m.Graph())
			if !reflect.DeepEqual(m.Labels(), want) {
				t.Fatalf("%s seed %d round %d: labels mismatch\n got %v\nwant %v",
					name, seed, round, m.Labels(), want)
			}
		}
	}
}

func TestIncAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncCC", func(g *graph.Graph) maintainer { return NewInc(g) })
}

func TestIncNaiveAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncCCNaive", func(g *graph.Graph) maintainer { return NewIncNaive(g) })
}

func TestDynCCAgainstBatch(t *testing.T) {
	checkMaintainer(t, "DynCC", func(g *graph.Graph) maintainer { return NewDynCC(g) })
}

func TestIncSplitComponent(t *testing.T) {
	// Deleting a bridge splits a component; the side not containing the
	// minimum id must relabel.
	g := graph.New(6, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(3, 4, 1)
	g.InsertEdge(4, 5, 1)
	inc := NewInc(g)
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 2, To: 3}})
	want := []int64{0, 0, 0, 3, 3, 3}
	if !reflect.DeepEqual(inc.Labels(), want) {
		t.Fatalf("labels = %v, want %v", inc.Labels(), want)
	}
}

func TestIncMergeComponents(t *testing.T) {
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(2, 3, 1)
	inc := NewInc(g)
	inc.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 1, To: 2, W: 1}})
	want := []int64{0, 0, 0, 0}
	if !reflect.DeepEqual(inc.Labels(), want) {
		t.Fatalf("labels = %v, want %v", inc.Labels(), want)
	}
}

func TestIncDeleteWithCycleStaysPut(t *testing.T) {
	// Deleting one edge of a cycle must not relabel anything, and the
	// timestamped h should inspect only a bounded region (Example 5: only
	// the endpoint with the larger timestamp is truly affected).
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(3, 0, 1)
	inc := NewInc(g)
	before := append([]int64(nil), inc.Labels()...)
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 2}})
	if !reflect.DeepEqual(before, inc.Labels()) {
		t.Fatalf("labels changed: %v", inc.Labels())
	}
}

func TestTimestampedBeatsNaiveOnDeletion(t *testing.T) {
	// Example 5's point, measured: deleting an edge from a single large
	// component must cost IncCC (timestamps) far less than IncCCNaive
	// (full PE closure over the component).
	rng := rand.New(rand.NewSource(4))
	g := gen.PowerLaw(rng, 5000, 8, false)

	inc := NewInc(g.Clone())
	naive := NewIncNaive(g.Clone())
	b := gen.RandomUpdates(rng, g, 1, 0.0) // one deletion
	h0 := inc.Apply(b)
	pe := naive.Apply(b)
	if !reflect.DeepEqual(inc.Labels(), naive.Labels()) {
		t.Fatal("algorithms disagree")
	}
	if h0*10 > pe {
		t.Fatalf("IncCC scope %d not much smaller than naive PE %d", h0, pe)
	}
}

func TestIncVertexUpdates(t *testing.T) {
	g := graph.New(3, false)
	g.InsertEdge(0, 1, 1)
	inc := NewInc(g)
	v := g.AddNode(0)
	inc.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 2, To: v, W: 1}})
	want := Components(g)
	if !reflect.DeepEqual(inc.Labels(), want) {
		t.Fatalf("labels = %v, want %v", inc.Labels(), want)
	}
}

func TestIncSuccessiveWindows(t *testing.T) {
	// Long-running maintenance across many windows (temporal workload).
	rng := rand.New(rand.NewSource(8))
	base := gen.PowerLaw(rng, 300, 6, false)
	tp := gen.TemporalStream(rng, base, 6, 40, 0.81)
	g := tp.Snapshot(0)
	inc := NewInc(g)
	for w := int64(1); w <= 6; w++ {
		inc.Apply(tp.Window(w-1, w))
		want := Components(inc.Graph())
		if !reflect.DeepEqual(inc.Labels(), want) {
			t.Fatalf("window %d: labels mismatch", w)
		}
	}
}
