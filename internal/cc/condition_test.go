package cc

import (
	"math/rand"
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
)

// TestConditionC2 certifies condition (C2) for the CC instance and the
// consistency of its relaxation fast path (Theorem 3 preconditions).
func TestConditionC2(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 60, 100, seed%2 == 0)
		inst := &Instance{G: g}
		if !fixpoint.CheckContracting[int64](inst) {
			t.Fatalf("seed %d: not contracting", seed)
		}
		eng := fixpoint.New[int64](inst, fixpoint.PriorityOrder)
		eng.Run()
		if !fixpoint.CheckMonotonic[int64](inst, eng.State(), rng, 300) {
			t.Fatalf("seed %d: not monotonic", seed)
		}
		if !fixpoint.CheckRelaxerConsistency[int64](inst, eng.State()) {
			t.Fatalf("seed %d: RelaxOut disagrees with Update", seed)
		}
	}
}
