package cc

import (
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
)

// TestFlatRowZeroAlloc guards the steady-state inner loop of the flat
// core: once the engine and its row buffer are warm, an incremental run
// over the uniform (DependentRow) path must not allocate. Regressions
// here — a map lookup creeping back in, a buffer that stops being
// reused — show up as a nonzero allocation count, not as a slow bench.
func TestFlatRowZeroAlloc(t *testing.T) {
	g := graph.New(64, false)
	for v := 1; v < 64; v++ {
		g.InsertEdge(graph.NodeID(v-1), graph.NodeID(v), 1)
		g.InsertEdge(graph.NodeID(v), graph.NodeID((v*7)%64), 1)
	}
	i := NewInc(g)
	if i.Flat() == nil {
		t.Fatal("flat view not built")
	}

	// Warm up: grows rowBuf and the worklist to their steady sizes.
	seeds := []fixpoint.Var{5, 40}
	i.eng.IncrementalRunDelta(nil, seeds)

	if n := testing.AllocsPerRun(100, func() {
		i.eng.IncrementalRunDelta(nil, seeds)
	}); n != 0 {
		t.Errorf("uniform row-path incremental run: %v allocs, want 0", n)
	}
}
