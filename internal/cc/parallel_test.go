package cc

import (
	"math/rand"
	"reflect"
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
)

// TestParallelMatchesSequential is the CC differential test of the
// engine's parallel mode through the class maintainer: parallel and
// sequential IncCC must publish bit-identical labels after every repair,
// and both must match the fresh batch answer.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, workers := range []int{2, 4} {
			rng := rand.New(rand.NewSource(seed))
			g := gen.ErdosRenyi(rng, 300, 500, seed%2 == 0)
			seq := NewInc(g.Clone())
			par := NewInc(g.Clone())
			par.SetWorkers(workers)
			for round := 0; round < 5; round++ {
				b := gen.RandomUpdates(rng, seq.Graph(), 50, 0.5)
				seq.Apply(b)
				par.Apply(b)
				if !reflect.DeepEqual(seq.Labels(), par.Labels()) {
					t.Fatalf("seed %d workers %d round %d: parallel labels != sequential",
						seed, workers, round)
				}
				if want := Components(par.Graph()); !reflect.DeepEqual(par.Labels(), want) {
					t.Fatalf("seed %d workers %d round %d: parallel labels != batch",
						seed, workers, round)
				}
			}
			if par.Workers() != workers {
				t.Fatalf("Workers() = %d, want %d", par.Workers(), workers)
			}
			if ps := par.ParStats(); ps.Workers != workers {
				t.Fatalf("ParStats.Workers = %d, want %d", ps.Workers, workers)
			}
			par.Close()
		}
	}
	if s := NewInc(gen.ErdosRenyi(rand.New(rand.NewSource(1)), 30, 40, false)).ParStats(); s != (fixpoint.ParStats{}) {
		t.Fatalf("sequential maintainer has parallel stats: %+v", s)
	}
}
