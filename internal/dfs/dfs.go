// Package dfs implements depth-first search (§5.2 of the paper): the
// batch fixpoint algorithm DFS_fp producing the interval status variables
// x_v = [v.first, v.last], the deduced incremental algorithm IncDFS, and
// the DynDFS competitor (Yang et al. style validity-preserving dynamic
// DFS).
//
// As in the paper, a virtual root connected to every node anchors the
// traversal, so every node carries an interval. Determinism (needed for
// the correctness equation Q(G ⊕ ΔG) = Q(G) ⊕ ΔO) comes from a canonical
// neighbor order: smaller node ids first, with the virtual root
// enumerating 0..n-1. Under that rule the DFS tree, preorder and
// postorder are unique functions of the graph.
//
// IncDFS exploits the anchor structure of DFS_fp: the anchor set of x_v is
// its parent, and <_C is the order of first-timestamps. An edge update
// with source u can first influence the traversal at time first[u], so
// every event before t* = min over changed sources of first[u] is reused
// verbatim and the traversal is resumed from the stack state at t*. The
// recomputed suffix is exactly the affected area AFF of DFS_fp — large
// for DFS, as the paper observes (crossover near |ΔG| = 4%|G|).
package dfs

import (
	"fmt"
	"sort"

	"incgraph/internal/graph"
)

// Tree is the output of a DFS: for every node its preorder/postorder
// interval and its tree parent (-1 for children of the virtual root).
// Timestamps are 1-based; a pair of events is spent per node.
type Tree struct {
	First, Last []int32
	Parent      []graph.NodeID
}

// clone deep-copies the tree.
func (t *Tree) clone() *Tree {
	return &Tree{
		First:  append([]int32(nil), t.First...),
		Last:   append([]int32(nil), t.Last...),
		Parent: append([]graph.NodeID(nil), t.Parent...),
	}
}

// Equal reports whether two trees are identical.
func (t *Tree) Equal(o *Tree) bool {
	if len(t.First) != len(o.First) {
		return false
	}
	for i := range t.First {
		if t.First[i] != o.First[i] || t.Last[i] != o.Last[i] || t.Parent[i] != o.Parent[i] {
			return false
		}
	}
	return true
}

// IsValid verifies that the tree is a legal DFS forest of g: intervals
// properly nested, parents consistent with tree edges, and the DFS
// invariant that no edge jumps forward across finished subtrees
// (last[u] < first[v] for an edge (u, v) is the forbidden forward-cross
// of §5.2).
func (t *Tree) IsValid(g *graph.Graph) bool {
	n := g.NumNodes()
	if len(t.First) != n {
		return false
	}
	for v := 0; v < n; v++ {
		if t.First[v] <= 0 || t.Last[v] <= t.First[v] {
			return false
		}
		if p := t.Parent[v]; p >= 0 {
			if !g.HasEdge(p, graph.NodeID(v)) {
				return false
			}
			// Child interval nested in parent interval.
			if !(t.First[p] < t.First[v] && t.Last[v] < t.Last[p]) {
				return false
			}
		}
	}
	ok := true
	for u := 0; u < n && ok; u++ {
		for _, e := range g.Out(graph.NodeID(u)) {
			if t.Last[u] < t.First[e.To] {
				ok = false
				break
			}
		}
	}
	return ok
}

// Run computes the canonical DFS of g, the batch algorithm DFS_fp.
func Run(g *graph.Graph) *Tree {
	t := &Tree{
		First:  make([]int32, g.NumNodes()),
		Last:   make([]int32, g.NumNodes()),
		Parent: make([]graph.NodeID, g.NumNodes()),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	nb := func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
		return appendSortedNbrs(g, v, buf)
	}
	replayFrom(g, nb, t, 1)
	return t
}

// frame is one open node on the DFS stack. Its canonical neighbor
// enumeration lives in the replay arena: the window arena[lo:hi], with i
// the cursor. Indices are absolute so the arena may be reallocated while
// frames are open.
type frame struct {
	v         graph.NodeID
	lo, i, hi int32
}

// nbrFunc appends v's neighbor ids to buf in ascending order and returns
// the extended slice — the canonical enumeration order of §5.2. The two
// implementations are appendSortedNbrs (legacy adjacency) and
// graph.Flat.AppendOutSorted (CSR base + overlay tail).
type nbrFunc func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID

// appendSortedNbrs is the nbrFunc over the graph's adjacency lists. The
// appended region is insertion-sorted for short rows and sort-sorted for
// hubs, so a power-law row never degrades quadratically.
func appendSortedNbrs(g *graph.Graph, v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
	base := len(buf)
	for _, e := range g.Out(v) {
		buf = append(buf, e.To)
	}
	if region := buf[base:]; len(region) > 32 {
		sort.Slice(region, func(i, j int) bool { return region[i] < region[j] })
		return buf
	}
	for i := base + 1; i < len(buf); i++ {
		for j := i; j > base && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// replayFrom discards every event at time >= tstar and re-runs the
// traversal from the stack state at tstar, reading neighbors through nb.
// replayFrom(g, nb, t, 1) is a full batch run. It returns the number of
// nodes whose intervals were (re)computed, the affected-area measure.
func replayFrom(g *graph.Graph, nb nbrFunc, t *Tree, tstar int32) int {
	n := g.NumNodes()
	// Grow state for vertex insertions.
	for len(t.First) < n {
		t.First = append(t.First, 0)
		t.Last = append(t.Last, 0)
		t.Parent = append(t.Parent, -1)
	}
	// Classify nodes: closed prefix (kept), open stack (first kept, last
	// recomputed), affected suffix (reset).
	var open []graph.NodeID
	affected := 0
	for v := 0; v < n; v++ {
		switch {
		case t.First[v] > 0 && t.First[v] < tstar && t.Last[v] >= tstar:
			open = append(open, graph.NodeID(v))
			t.Last[v] = 0
		case t.First[v] >= tstar || t.First[v] == 0:
			t.First[v], t.Last[v], t.Parent[v] = 0, 0, -1
			affected++
		}
	}
	sort.Slice(open, func(i, j int) bool { return t.First[open[i]] < t.First[open[j]] })

	clock := tstar - 1
	// One arena holds every open frame's neighbor window; frames pop in
	// LIFO order, so truncating to f.lo on pop reclaims the window.
	var stack []frame
	arena := make([]graph.NodeID, 0, 64)
	push := func(v graph.NodeID) {
		lo := int32(len(arena))
		arena = nb(v, arena)
		stack = append(stack, frame{v: v, lo: lo, i: lo, hi: int32(len(arena))})
	}
	for _, w := range open {
		push(w)
	}
	step := func() {
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			descended := false
			for f.i < f.hi {
				w := arena[f.i]
				f.i++
				if t.First[w] == 0 {
					clock++
					t.First[w] = clock
					t.Parent[w] = f.v
					push(w)
					descended = true
					break
				}
			}
			if !descended {
				clock++
				t.Last[f.v] = clock
				arena = arena[:f.lo]
				stack = stack[:len(stack)-1]
			}
		}
	}
	step()
	// Virtual root enumerates remaining nodes in id order.
	for s := 0; s < n; s++ {
		if t.First[s] == 0 {
			clock++
			t.First[s] = clock
			t.Parent[s] = -1
			push(graph.NodeID(s))
			step()
		}
	}
	return affected
}

// Inc is the deduced incremental algorithm IncDFS. It is deducible from
// DFS_fp: the parent anchors and the order <_C are read off the interval
// status variables, no timestamps beyond them are needed.
//
// An Inc is not goroutine-safe: it (and the graph it owns) must be
// driven by a single writer goroutine making every call, reads included —
// Tree aliases state that Apply mutates. Concurrent serving goes through
// internal/serve, which gives each maintainer one apply loop and
// publishes immutable snapshots to readers.
type Inc struct {
	g       *graph.Graph
	flat    *graph.Flat
	nb      nbrFunc
	tree    *Tree
	pending graph.Batch
}

// incOpts collects construction options.
type incOpts struct{ noFlat bool }

// Option configures NewInc.
type Option func(*incOpts)

// WithoutFlat disables the flat CSR/overlay adjacency view, forcing the
// legacy per-row sort path. Used by differential tests; production
// callers should keep the default.
func WithoutFlat() Option { return func(o *incOpts) { o.noFlat = true } }

// NewInc runs the batch DFS and returns the incremental algorithm.
func NewInc(g *graph.Graph, opts ...Option) *Inc {
	var o incOpts
	for _, fn := range opts {
		fn(&o)
	}
	i := &Inc{g: g, tree: Run(g)}
	if !o.noFlat {
		i.flat = graph.NewFlat(g)
		i.nb = i.flat.AppendOutSorted
	} else {
		i.nb = func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
			return appendSortedNbrs(g, v, buf)
		}
	}
	return i
}

// Flat returns the maintained flat adjacency view (nil under
// WithoutFlat).
func (i *Inc) Flat() *graph.Flat { return i.flat }

// SetCompactThreshold forwards the overlay-compaction threshold to the
// flat view (no-op under WithoutFlat). See graph.Flat.SetCompactThreshold.
func (i *Inc) SetCompactThreshold(t float64) {
	if i.flat != nil {
		i.flat.SetCompactThreshold(t)
	}
}

// Graph returns the maintained graph.
func (i *Inc) Graph() *graph.Graph { return i.g }

// Tree returns the maintained DFS tree (aliased, do not mutate).
func (i *Inc) Tree() *Tree { return i.tree }

// RestoreState overwrites the maintained tree with one exported from a
// checkpoint of the same graph. The interval variables are IncDFS's
// complete incremental state: the parent anchors and the order <_C are
// read off them directly. The slices are copied.
func (i *Inc) RestoreState(first, last []int32, parent []graph.NodeID) error {
	n := i.g.NumNodes()
	if len(first) != n || len(last) != n || len(parent) != n {
		return fmt.Errorf("dfs: restore of %d/%d/%d intervals into graph with %d nodes",
			len(first), len(last), len(parent), n)
	}
	i.tree = &Tree{
		First:  append([]int32(nil), first...),
		Last:   append([]int32(nil), last...),
		Parent: append([]graph.NodeID(nil), parent...),
	}
	return nil
}

// Apply computes G ⊕ ΔG and repairs the DFS tree by replaying the
// traversal from the earliest affected anchor. It returns the number of
// recomputed intervals.
func (i *Inc) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG without repairing the tree, letting
// benchmarks time Repair separately from the graph mutation every method
// needs.
func (i *Inc) Stage(b graph.Batch) {
	applied := i.g.Apply(b.Net(i.g.Directed()))
	i.pending = append(i.pending, applied...)
	if i.flat != nil {
		i.flat.Stage(i.g, applied)
		i.flat.MaybeCompact(i.g)
	}
}

// Repair replays the traversal suffix for the staged updates.
func (i *Inc) Repair() int {
	applied := i.pending
	i.pending = nil
	oldN := len(i.tree.First)
	if len(applied) == 0 && i.g.NumNodes() == oldN {
		return 0
	}
	end := int32(2*oldN + 1)
	tstar := end
	// The traversal can diverge only strictly after the changed source's
	// visit event, so first[u]+1 is the earliest affected time.
	consider := func(u graph.NodeID) {
		if int(u) < oldN && i.tree.First[u] > 0 && i.tree.First[u]+1 < tstar {
			tstar = i.tree.First[u] + 1
		}
	}
	considerAt := func(t int32) {
		if t > 0 && t < tstar {
			tstar = t
		}
	}
	old := func(v graph.NodeID) bool { return int(v) < oldN }
	for _, up := range applied {
		switch up.Kind {
		case graph.InsertEdge:
			if i.g.Directed() {
				// If the target was already visited before the source
				// even started, the canonical traversal skips the new
				// edge: nothing diverges.
				if old(up.From) && old(up.To) && i.tree.First[up.To] < i.tree.First[up.From] {
					continue
				}
				consider(up.From)
			} else {
				consider(up.From)
				consider(up.To)
			}
		case graph.DeleteEdge:
			// Removing a non-tree edge never changes the canonical
			// traversal: its consult always found the target visited.
			fromTree := old(up.To) && i.tree.Parent[up.To] == up.From
			toTree := !i.g.Directed() && old(up.From) && i.tree.Parent[up.From] == up.To
			if fromTree {
				considerAt(i.tree.First[up.To]) // divergence at the child's visit
			}
			if toTree {
				considerAt(i.tree.First[up.From])
			}
		}
	}
	return replayFrom(i.g, i.nb, i.tree, tstar)
}

// IncUnit is IncDFS_n: the unit-update variant.
type IncUnit struct{ *Inc }

// NewIncUnit builds the unit-update variant.
func NewIncUnit(g *graph.Graph) *IncUnit { return &IncUnit{NewInc(g)} }

// Apply processes each unit update as its own batch.
func (i *IncUnit) Apply(b graph.Batch) int {
	total := 0
	for _, u := range b {
		total += i.Inc.Apply(graph.Batch{u})
	}
	return total
}
