package dfs

import (
	"math/rand"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// recursiveRef is an independent recursive implementation of the canonical
// DFS used to validate Run.
func recursiveRef(g *graph.Graph) *Tree {
	n := g.NumNodes()
	t := &Tree{First: make([]int32, n), Last: make([]int32, n), Parent: make([]graph.NodeID, n)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	clock := int32(0)
	var visit func(v graph.NodeID)
	visit = func(v graph.NodeID) {
		clock++
		t.First[v] = clock
		for _, w := range appendSortedNbrs(g, v, nil) {
			if t.First[w] == 0 {
				t.Parent[w] = v
				visit(w)
			}
		}
		clock++
		t.Last[v] = clock
	}
	for s := 0; s < n; s++ {
		if t.First[s] == 0 {
			visit(graph.NodeID(s))
		}
	}
	return t
}

func TestRunMatchesRecursive(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 50, 160, seed%2 == 0)
		got := Run(g)
		want := recursiveRef(g)
		if !got.Equal(want) {
			t.Fatalf("seed %d: iterative != recursive DFS", seed)
		}
		if !got.IsValid(g) {
			t.Fatalf("seed %d: tree invalid", seed)
		}
	}
}

func TestRunSmallKnown(t *testing.T) {
	// 0 -> {1, 2}, 1 -> 2: canonical order visits 0,1,2 nested.
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(1, 2, 1)
	tr := Run(g)
	if tr.First[0] != 1 || tr.First[1] != 2 || tr.First[2] != 3 {
		t.Fatalf("firsts = %v", tr.First)
	}
	if tr.Last[2] != 4 || tr.Last[1] != 5 || tr.Last[0] != 6 {
		t.Fatalf("lasts = %v", tr.Last)
	}
	if tr.Parent[1] != 0 || tr.Parent[2] != 1 || tr.Parent[0] != -1 {
		t.Fatalf("parents = %v", tr.Parent)
	}
}

func TestIncAgainstBatch(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := gen.ErdosRenyi(rng, 60, 200, directed)
		inc := NewInc(g)
		for round := 0; round < 8; round++ {
			b := gen.RandomUpdates(rng, inc.Graph(), 12, 0.5)
			inc.Apply(b)
			want := Run(inc.Graph())
			if !inc.Tree().Equal(want) {
				t.Fatalf("seed %d round %d: IncDFS != batch DFS", seed, round)
			}
		}
	}
}

func TestIncUnitAgainstBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(rng, 50, 150, true)
	inc := NewIncUnit(g)
	for round := 0; round < 5; round++ {
		b := gen.RandomUpdates(rng, inc.Graph(), 8, 0.5)
		inc.Apply(b)
		if !inc.Tree().Equal(Run(inc.Graph())) {
			t.Fatalf("round %d: IncDFS_n != batch DFS", round)
		}
	}
}

func TestIncSuffixOnly(t *testing.T) {
	// An update touching the node visited last must not recompute earlier
	// intervals.
	g := graph.New(6, true)
	for v := 0; v+1 < 6; v++ {
		g.InsertEdge(graph.NodeID(v), graph.NodeID(v+1), 1)
	}
	inc := NewInc(g)
	affected := inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 4, To: 5}})
	if affected != 1 {
		t.Fatalf("affected = %d, want 1 (only node 5)", affected)
	}
	if !inc.Tree().Equal(Run(inc.Graph())) {
		t.Fatal("tree wrong after suffix repair")
	}
}

func TestIncVertexInsertion(t *testing.T) {
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 1)
	inc := NewInc(g)
	v := g.AddNode(0)
	inc.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 1, To: v, W: 1}})
	if !inc.Tree().Equal(Run(inc.Graph())) {
		t.Fatal("tree wrong after vertex insertion")
	}
}

func TestIncEmptyBatch(t *testing.T) {
	g := gen.ErdosRenyi(rand.New(rand.NewSource(1)), 20, 40, true)
	inc := NewInc(g)
	before := inc.Tree().clone()
	if got := inc.Apply(nil); got != 0 {
		t.Fatalf("empty batch recomputed %d intervals", got)
	}
	if !inc.Tree().Equal(before) {
		t.Fatal("empty batch changed tree")
	}
}

func TestDynDFSMaintainsValidity(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := gen.ErdosRenyi(rng, 50, 170, directed)
		dyn := NewDynDFS(g)
		for round := 0; round < 8; round++ {
			b := gen.RandomUpdates(rng, dyn.Graph(), 10, 0.5)
			dyn.Apply(b)
			if !dyn.Tree().IsValid(dyn.Graph()) {
				t.Fatalf("seed %d round %d: DynDFS tree invalid", seed, round)
			}
		}
	}
}

func TestDynDFSAbsorbsBackEdge(t *testing.T) {
	// Inserting a back edge must be absorbed without recomputation.
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	dyn := NewDynDFS(g)
	if got := dyn.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 2, To: 0, W: 1}}); got != 0 {
		t.Fatalf("back edge recomputed %d intervals", got)
	}
	if !dyn.Tree().IsValid(dyn.Graph()) {
		t.Fatal("tree invalid after absorb")
	}
}

func TestIsValidRejectsForwardCross(t *testing.T) {
	g := graph.New(2, true)
	g.InsertEdge(0, 1, 1)
	tr := Run(g)
	// Fabricate a forward-cross: pretend 0 finished before 1 started.
	bad := tr.clone()
	bad.First[0], bad.Last[0] = 1, 2
	bad.First[1], bad.Last[1] = 3, 4
	bad.Parent[1] = -1
	if bad.IsValid(g) {
		t.Fatal("forward-cross not rejected")
	}
}

func TestIsValidRejectsBadParent(t *testing.T) {
	g := graph.New(2, true)
	g.InsertEdge(0, 1, 1)
	tr := Run(g)
	bad := tr.clone()
	bad.Parent[0] = 1 // no edge 1 -> 0
	if bad.IsValid(g) {
		t.Fatal("nonexistent parent edge not rejected")
	}
}
