package dfs

import "incgraph/internal/graph"

// DynDFS is the fully dynamic DFS competitor in the style of Yang et al.
// (PVLDB 2019): it maintains *some* valid DFS tree (not the canonical
// one), processing unit updates one at a time. Updates that provably
// preserve validity are absorbed in O(1):
//
//   - inserting (u, v) when last[u] > first[v] creates a back, forward or
//     leftward cross edge, all of which a DFS tree tolerates;
//   - deleting a non-tree edge.
//
// Other updates replay the traversal suffix from the affected anchor and
// then re-verify the forward-cross invariant over the suffix, rebuilding
// from scratch when a previously absorbed edge has become violating. This
// makes DynDFS competitive on insertion-heavy unit streams but weak on
// batches — the shape the paper reports (IncDFS 4.4× faster at 1%
// updates).
type DynDFS struct {
	g    *graph.Graph
	tree *Tree
}

// NewDynDFS runs the batch DFS and returns the competitor.
func NewDynDFS(g *graph.Graph) *DynDFS {
	return &DynDFS{g: g, tree: Run(g)}
}

// Graph returns the maintained graph.
func (d *DynDFS) Graph() *graph.Graph { return d.g }

// Tree returns the maintained DFS tree.
func (d *DynDFS) Tree() *Tree { return d.tree }

// Apply processes the batch one unit update at a time, DynDFS's native
// interface. It returns the total number of recomputed intervals.
func (d *DynDFS) Apply(b graph.Batch) int {
	total := 0
	for _, u := range b {
		total += d.applyUnit(u)
	}
	return total
}

func (d *DynDFS) applyUnit(up graph.Update) int {
	oldN := len(d.tree.First)
	switch up.Kind {
	case graph.InsertEdge:
		if !d.g.InsertEdge(up.From, up.To, up.W) {
			return 0
		}
		if d.g.NumNodes() == oldN && d.absorbable(up.From, up.To) {
			return 0
		}
		return d.replayChecked(up)
	case graph.DeleteEdge:
		if !d.g.DeleteEdge(up.From, up.To) {
			return 0
		}
		tree := d.tree.Parent[up.To] == up.From
		if !d.g.Directed() {
			tree = tree || d.tree.Parent[up.From] == up.To
		}
		if !tree {
			return 0 // deleting a non-tree edge never breaks validity
		}
		return d.replayChecked(up)
	}
	return 0
}

// absorbable reports whether the new edge (and its mirror for undirected
// graphs) is tolerated by the current tree.
func (d *DynDFS) absorbable(u, v graph.NodeID) bool {
	ok := d.tree.Last[u] > d.tree.First[v]
	if !d.g.Directed() {
		ok = ok && d.tree.Last[v] > d.tree.First[u]
	}
	return ok
}

// replayChecked replays the suffix from the update's anchor and verifies
// the invariant; on violation (an earlier absorbed edge turned into a
// forward cross) it rebuilds from scratch.
func (d *DynDFS) replayChecked(up graph.Update) int {
	oldN := len(d.tree.First)
	tstar := int32(2*oldN + 1)
	consider := func(u graph.NodeID) {
		if int(u) < oldN && d.tree.First[u] > 0 && d.tree.First[u]+1 < tstar {
			tstar = d.tree.First[u] + 1
		}
	}
	consider(up.From)
	if !d.g.Directed() {
		consider(up.To)
	}
	nb := func(v graph.NodeID, buf []graph.NodeID) []graph.NodeID {
		return appendSortedNbrs(d.g, v, buf)
	}
	affected := replayFrom(d.g, nb, d.tree, tstar)
	if !d.valid() {
		d.tree = Run(d.g)
		return d.g.NumNodes()
	}
	return affected
}

// valid re-checks the forward-cross invariant over all edges: replaying a
// suffix can move a target's first past the last of an absorbed prefix
// edge, so the scan cannot be restricted to the suffix.
func (d *DynDFS) valid() bool {
	for v := 0; v < d.g.NumNodes(); v++ {
		for _, e := range d.g.Out(graph.NodeID(v)) {
			if d.tree.Last[v] < d.tree.First[e.To] {
				return false
			}
		}
	}
	return true
}
