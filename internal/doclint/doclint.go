// Package doclint checks that every exported identifier in a package
// carries a doc comment. It is the enforcement half of the repository's
// documentation contract: the packages named in doclint_test.go cannot
// gain an undocumented exported symbol without failing `go test`.
//
// The checker is deliberately small and dependency-free (go/ast only,
// no go/packages): it parses the non-test .go files of a directory and
// applies the classic golint exported-doc rules.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one undocumented exported identifier.
type Finding struct {
	// Pos is the identifier's position, formatted "file:line".
	Pos string
	// Symbol is the flat name: "Name", "Type.Method", or "Type" for
	// type declarations.
	Symbol string
	// Kind is one of "func", "method", "type", "const", "var".
	Kind string
}

// String renders the finding as a file:line diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s: exported %s %s has no doc comment", f.Pos, f.Kind, f.Symbol)
}

// CheckDir parses every non-test .go file in dir and returns one
// Finding per exported identifier that lacks a doc comment, sorted by
// position. Rules, matching gofmt'd godoc conventions:
//
//   - Exported functions and types need a doc comment on the decl.
//   - Exported methods need a doc comment unless their receiver type is
//     unexported (the method is then unreachable from outside).
//   - Exported consts and vars need a doc comment on the enclosing
//     declaration group, on their own spec, or a trailing line comment;
//     inside a documented group, individual specs may stay bare (the
//     usual enum idiom).
//   - A package must have one package comment across its files.
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	pkgDoc := false
	parsed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed++
		if f.Doc != nil {
			pkgDoc = true
		}
		findings = append(findings, checkFile(fset, f)...)
	}
	if parsed > 0 && !pkgDoc {
		findings = append(findings, Finding{Pos: dir, Symbol: "package", Kind: "package"})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

func checkFile(fset *token.FileSet, f *ast.File) []Finding {
	var out []Finding
	at := func(p token.Pos) string {
		pos := fset.Position(p)
		return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			sym, kind := d.Name.Name, "func"
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := receiverName(d.Recv.List[0].Type)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on unexported type
				}
				sym, kind = recv+"."+d.Name.Name, "method"
			}
			out = append(out, Finding{Pos: at(d.Pos()), Symbol: sym, Kind: kind})
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						out = append(out, Finding{Pos: at(ts.Pos()), Symbol: ts.Name.Name, Kind: "type"})
					}
				}
			case token.CONST, token.VAR:
				if d.Doc != nil {
					continue // documented group covers its specs
				}
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							out = append(out, Finding{Pos: at(n.Pos()), Symbol: n.Name, Kind: kind})
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName unwraps *T, T[P], and *T[P] receivers to the bare type
// name T.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
