package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// audited lists the packages whose exported surface must be fully
// documented (module-root-relative). CI runs this test as the doc-lint
// job; adding an undocumented exported symbol to any of them fails it.
var audited = []string{
	".",                   // root facade (incgraph.go)
	"internal/graph",      // graph substrate + flat CSR/overlay core
	"internal/fixpoint",   // generic engine + parallel mode
	"internal/serve",      // serving layer
	"internal/wal",        // durability substrate
	"internal/shard",      // sharded serving
	"internal/obs",        // metrics
	"internal/trace",      // flight recorder
	"internal/resilience", // retry/breaker/deadline substrate
	"internal/doclint",    // keep the linter honest about itself
}

func TestAuditedPackagesDocumented(t *testing.T) {
	for _, rel := range audited {
		findings, err := CheckDir("../../" + rel)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// parseSrc is a test helper compiling one in-memory file through the
// same checker path CheckDir uses.
func parseSrc(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f)
}

func symbols(fs []Finding) string {
	var names []string
	for _, f := range fs {
		names = append(names, f.Kind+":"+f.Symbol)
	}
	return strings.Join(names, ",")
}

func TestCheckerRules(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undocumented func", "package p\nfunc Exported() {}\n", "func:Exported"},
		{"documented func", "package p\n// Exported does.\nfunc Exported() {}\n", ""},
		{"unexported func", "package p\nfunc hidden() {}\n", ""},
		{"undocumented type", "package p\ntype T struct{}\n", "type:T"},
		{"method on unexported type", "package p\ntype t struct{}\nfunc (x *t) Exported() {}\n", ""},
		{"undocumented method", "package p\n// T is.\ntype T struct{}\nfunc (x *T) M() {}\n", "method:T.M"},
		{"generic receiver", "package p\n// T is.\ntype T[V any] struct{}\nfunc (x *T[V]) M() {}\n", "method:T.M"},
		{"documented const group", "package p\n// Modes.\nconst (\n\tA = 1\n\tB = 2\n)\n", ""},
		{"bare const", "package p\nconst A = 1\n", "const:A"},
		{"line-commented var", "package p\nvar A = 1 // A is one.\n", ""},
		{"undocumented var", "package p\nvar A = 1\n", "var:A"},
	}
	for _, c := range cases {
		if got := symbols(parseSrc(t, c.src)); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
}

func TestReceiverName(t *testing.T) {
	src := "package p\nfunc (x *T[A, B]) M() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	if got := receiverName(fd.Recv.List[0].Type); got != "T" {
		t.Fatalf("receiverName = %q, want T", got)
	}
}
