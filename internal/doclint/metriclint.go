package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric-name lint: the observability plane federates every member's
// metrics into one exposition, so naming discipline is a cross-process
// contract, not a style preference. A shard that registers
// "apply_latency" instead of "incgraph_apply_latency_seconds" silently
// escapes the router's rollups and the CI scrape gate. This checker
// statically audits every registration site (Registry.Counter / Gauge /
// GaugeFunc / Histogram and Federation.Add / AddHistogram with literal
// names) against the repository's conventions.

// MetricFinding is one metric name that violates a naming rule.
type MetricFinding struct {
	// Pos is the registration site, formatted "file:line".
	Pos string
	// Name is the offending metric name literal.
	Name string
	// Rule describes the violated convention.
	Rule string
}

// String renders the finding as a file:line diagnostic.
func (f MetricFinding) String() string {
	return fmt.Sprintf("%s: metric %q %s", f.Pos, f.Name, f.Rule)
}

// metricNameRE is the shape every registered series name must have: a
// process-identifying prefix, then lowercase snake-case.
var metricNameRE = regexp.MustCompile(`^(incgraph|incrouter)_[a-z][a-z0-9_]*$`)

// registrars maps the method names whose first string-literal argument
// is a metric name to the metric kind they register. Federation.Add's
// kind travels as its third argument instead and is resolved at the
// call site.
var registrars = map[string]string{
	"Counter":      "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gaugefunc",
	"Histogram":    "histogram",
	"AddHistogram": "histogram",
}

// CheckMetricNames parses every non-test .go file in dir and returns
// one MetricFinding per literal metric registration that violates the
// naming conventions:
//
//   - Names are prefixed "incgraph_" (member process) or "incrouter_"
//     (router) and lowercase snake-case.
//   - Counter names end in "_total" (Prometheus counter convention).
//   - Plain Gauge names do not end in "_total". (GaugeFunc is exempt:
//     it legitimately exposes externally-owned monotonic counts, e.g.
//     WAL append totals.)
//   - Any name mentioning "seconds" ends in "_seconds" or
//     "_seconds_total" — unit-last, so dashboards sort by unit.
//
// Registrations whose name is not a string literal are skipped: the
// checker is a convention gate, not a data-flow analysis.
func CheckMetricNames(dir string) ([]MetricFinding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []MetricFinding
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		findings = append(findings, checkMetricsFile(fset, f)...)
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

// checkMetricsFile collects metric-name findings from one parsed file.
func checkMetricsFile(fset *token.FileSet, f *ast.File) []MetricFinding {
	var findings []MetricFinding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, ok := stringLit(call.Args[0])
		if !ok {
			return true
		}
		kind, ok := registrars[sel.Sel.Name]
		if !ok {
			// Federation.Add(name, help, kind, v, ...): the kind is the
			// third argument; anything else named Add is not a registrar.
			if sel.Sel.Name != "Add" || len(call.Args) < 4 {
				return true
			}
			if kind, ok = stringLit(call.Args[2]); !ok {
				return true
			}
		}
		pos := fset.Position(call.Args[0].Pos())
		report := func(rule string) {
			findings = append(findings, MetricFinding{
				Pos:  fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line),
				Name: name,
				Rule: rule,
			})
		}
		if !metricNameRE.MatchString(name) {
			report(`lacks the incgraph_/incrouter_ prefix or is not lowercase snake-case`)
			return true
		}
		if kind == "counter" && !strings.HasSuffix(name, "_total") {
			report(`is a counter but does not end in "_total"`)
		}
		if kind == "gauge" && strings.HasSuffix(name, "_total") {
			report(`is a gauge but ends in "_total"`)
		}
		if strings.Contains(name, "seconds") &&
			!strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_seconds_total") {
			report(`mentions seconds but does not end in "_seconds" or "_seconds_total"`)
		}
		return true
	})
	return findings
}

// stringLit unwraps a string-literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
