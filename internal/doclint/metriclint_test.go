package doclint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// metricAudited lists the packages whose metric registrations must obey
// the naming conventions — every package that registers series which
// end up in the router's federated /cluster/metrics exposition.
var metricAudited = []string{
	".",                   // root facade
	"internal/fixpoint",   // engine metrics
	"internal/serve",      // serving + durability metrics
	"internal/wal",        // (registers none today; keeps it that way honest)
	"internal/shard",      // router, follower, and federation rollups
	"internal/resilience", // (registers none; the shard binding does)
	"internal/obs",        // the registry itself
}

func TestAuditedPackagesMetricNames(t *testing.T) {
	for _, rel := range metricAudited {
		findings, err := CheckMetricNames("../../" + rel)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", rel, f)
		}
	}
}

// lintSrc runs the metric checker over one in-memory file.
func lintSrc(t *testing.T, src string) []MetricFinding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return checkMetricsFile(fset, f)
}

func TestMetricNameRules(t *testing.T) {
	cases := []struct {
		name, src, want string // want is a substring of the finding, "" = clean
	}{
		{"good counter",
			`package p; var _ = reg.Counter("incgraph_updates_total", "h")`, ""},
		{"counter missing _total",
			`package p; var _ = reg.Counter("incgraph_updates", "h")`, `_total`},
		{"bad prefix",
			`package p; var _ = reg.Gauge("queue_depth", "h")`, "prefix"},
		{"uppercase rejected",
			`package p; var _ = reg.Gauge("incgraph_Queue", "h")`, "prefix"},
		{"gauge with _total",
			`package p; var _ = reg.Gauge("incgraph_x_total", "h")`, "gauge"},
		{"gaugefunc may expose totals",
			`package p; var _ = reg.GaugeFunc("incgraph_wal_appends_total", "h", f)`, ""},
		{"seconds unit not last",
			`package p; var _ = reg.Histogram("incgraph_seconds_wait", "h", 4)`, "seconds"},
		{"seconds unit last",
			`package p; var _ = reg.Histogram("incgraph_wait_seconds", "h", 4)`, ""},
		{"federation add counter",
			`package p; func f() { fed.Add("incrouter_cluster_sheds", "h", "counter", 1.0) }`, `_total`},
		{"federation add gauge ok",
			`package p; func f() { fed.Add("incrouter_cluster_epoch_skew", "h", "gauge", 1.0) }`, ""},
		{"counter value add ignored",
			`package p; func f() { c.Add(1.0) }`, ""},
		{"non-literal name skipped",
			`package p; func f(n string) { reg.Counter(n, "h") }`, ""},
	}
	for _, c := range cases {
		findings := lintSrc(t, c.src)
		if c.want == "" {
			if len(findings) != 0 {
				t.Errorf("%s: unexpected findings %v", c.name, findings)
			}
			continue
		}
		if len(findings) != 1 || !strings.Contains(findings[0].String(), c.want) {
			t.Errorf("%s: findings %v, want one containing %q", c.name, findings, c.want)
		}
	}
}
