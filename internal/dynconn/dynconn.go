// Package dynconn implements fully dynamic connectivity after Holm, de
// Lichtenberg and Thorup (J. ACM 2001): a hierarchy of spanning forests
// maintained in Euler-tour trees with edge levels, supporting edge
// insertion and deletion in O(log² n) amortized and connectivity queries
// in O(log n). It is the substrate of the DynCC competitor in the paper's
// CC experiments (their reference [27]).
package dynconn

import "fmt"

type edgeInfo struct {
	level int
	tree  bool
}

// DynConn is a fully dynamic connectivity structure over a fixed vertex
// set.
type DynConn struct {
	n      int
	levels []*level
	edges  map[uint64]*edgeInfo // canonical key: min(u,v) first
	comps  int
}

type level struct {
	t    *ett
	adj  []map[uint64]bool // per vertex: canonical keys of non-tree edges here
	tadj []map[uint64]bool // per vertex: canonical keys of tree edges of exactly this level
}

// New creates a structure over n isolated vertices.
func New(n int) *DynConn {
	d := &DynConn{n: n, edges: make(map[uint64]*edgeInfo), comps: n}
	d.levels = append(d.levels, d.newLevel())
	return d
}

func (d *DynConn) newLevel() *level {
	return &level{
		t:    newETT(d.n),
		adj:  make([]map[uint64]bool, d.n),
		tadj: make([]map[uint64]bool, d.n),
	}
}

func canon(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return packArc(u, v)
}

func unpack(k uint64) (int32, int32) { return int32(k >> 32), int32(uint32(k)) }

// NumVertices returns the size of the vertex set.
func (d *DynConn) NumVertices() int { return d.n }

// Grow extends the vertex set to n vertices, each a new component.
func (d *DynConn) Grow(n int) {
	if n <= d.n {
		return
	}
	d.comps += n - d.n
	d.n = n
	for _, lv := range d.levels {
		lv.t.grow(n)
		for len(lv.adj) < n {
			lv.adj = append(lv.adj, nil)
			lv.tadj = append(lv.tadj, nil)
		}
	}
}

// Components returns the current number of connected components.
func (d *DynConn) Components() int { return d.comps }

// Connected reports whether u and v are connected.
func (d *DynConn) Connected(u, v int32) bool {
	return d.levels[0].t.connected(u, v)
}

// HasEdge reports whether edge {u, v} is present.
func (d *DynConn) HasEdge(u, v int32) bool {
	_, ok := d.edges[canon(u, v)]
	return ok
}

// Insert adds edge {u, v}. It reports whether the edge was new.
func (d *DynConn) Insert(u, v int32) bool {
	if u == v || d.HasEdge(u, v) {
		return false
	}
	key := canon(u, v)
	if !d.Connected(u, v) {
		d.edges[key] = &edgeInfo{level: 0, tree: true}
		d.levels[0].t.link(u, v)
		d.addTreeAdj(0, key)
		d.comps--
	} else {
		d.edges[key] = &edgeInfo{level: 0, tree: false}
		d.addNonTree(0, key)
	}
	return true
}

// Delete removes edge {u, v}. It reports whether the edge existed.
func (d *DynConn) Delete(u, v int32) bool {
	key := canon(u, v)
	info, ok := d.edges[key]
	if !ok {
		return false
	}
	delete(d.edges, key)
	if !info.tree {
		d.delNonTree(info.level, key)
		return true
	}
	// Tree edge: cut it from every forest it belongs to, then search for a
	// replacement from the highest level downward.
	d.delTreeAdj(info.level, key)
	cu, cv := unpack(key)
	for i := info.level; i >= 0; i-- {
		d.levels[i].t.cut(cu, cv)
	}
	if !d.replace(cu, cv, info.level) {
		d.comps++
	}
	return true
}

// replace searches levels lvl..0 for a replacement edge reconnecting the
// trees of u and v, pushing tree edges and scanned non-tree edges of the
// smaller side one level up (the HDT amortization). It reports whether a
// replacement was found.
func (d *DynConn) replace(u, v int32, lvl int) bool {
	for i := lvl; i >= 0; i-- {
		t := d.levels[i].t
		// Work on the smaller tree; keep u on that side.
		su, sv := t.treeSize(u), t.treeSize(v)
		side, other := u, v
		if su > sv {
			side, other = v, u
		}
		if i+1 >= len(d.levels) {
			d.levels = append(d.levels, d.newLevel())
		}
		// Push all level-i tree edges of the small tree to level i+1.
		for {
			x := t.anyFlagged(side, flagTree)
			if x < 0 {
				break
			}
			for key := range d.levels[i].tadj[x] {
				d.delTreeAdj(i, key)
				d.edges[key].level = i + 1
				d.addTreeAdj(i+1, key)
				a, b := unpack(key)
				d.levels[i+1].t.link(a, b)
			}
		}
		// Scan level-i non-tree edges incident to the small tree.
		for {
			x := t.anyFlagged(side, flagNonTree)
			if x < 0 {
				break
			}
			for key := range d.levels[i].adj[x] {
				a, b := unpack(key)
				y := a
				if y == x {
					y = b
				}
				if t.connected(y, other) {
					// Replacement found: promote it to a tree edge of
					// level i and relink forests 0..i.
					d.delNonTree(i, key)
					info := d.edges[key]
					info.tree = true
					info.level = i
					d.addTreeAdj(i, key)
					for j := 0; j <= i; j++ {
						d.levels[j].t.link(a, b)
					}
					return true
				}
				// Both endpoints on the small side: push to level i+1.
				d.delNonTree(i, key)
				d.edges[key].level = i + 1
				d.addNonTree(i+1, key)
			}
		}
	}
	return false
}

func (d *DynConn) addNonTree(i int, key uint64) {
	u, v := unpack(key)
	lv := d.levels[i]
	for _, x := range [2]int32{u, v} {
		if lv.adj[x] == nil {
			lv.adj[x] = make(map[uint64]bool)
		}
		if len(lv.adj[x]) == 0 {
			lv.t.setFlag(x, flagNonTree, true)
		}
		lv.adj[x][key] = true
	}
}

func (d *DynConn) delNonTree(i int, key uint64) {
	u, v := unpack(key)
	lv := d.levels[i]
	for _, x := range [2]int32{u, v} {
		delete(lv.adj[x], key)
		if len(lv.adj[x]) == 0 {
			lv.t.setFlag(x, flagNonTree, false)
		}
	}
}

func (d *DynConn) addTreeAdj(i int, key uint64) {
	u, v := unpack(key)
	lv := d.levels[i]
	for _, x := range [2]int32{u, v} {
		if lv.tadj[x] == nil {
			lv.tadj[x] = make(map[uint64]bool)
		}
		if len(lv.tadj[x]) == 0 {
			lv.t.setFlag(x, flagTree, true)
		}
		lv.tadj[x][key] = true
	}
}

func (d *DynConn) delTreeAdj(i int, key uint64) {
	u, v := unpack(key)
	lv := d.levels[i]
	for _, x := range [2]int32{u, v} {
		delete(lv.tadj[x], key)
		if len(lv.tadj[x]) == 0 {
			lv.t.setFlag(x, flagTree, false)
		}
	}
}

// Labels extracts a component labeling compatible with the fixpoint CC
// algorithms: each vertex is labeled with the minimum vertex id of its
// component. It walks each Euler tour once, costing O(n + tree edges).
func (d *DynConn) Labels() []int32 {
	lab := make([]int32, d.n)
	for i := range lab {
		lab[i] = -1
	}
	var members []int32
	var stack []*node
	for v := 0; v < d.n; v++ {
		if lab[v] >= 0 {
			continue
		}
		x := d.levels[0].t.verts[v]
		if x == nil {
			lab[v] = int32(v)
			continue
		}
		splay(x)
		members = members[:0]
		stack = append(stack[:0], x)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n.isVertex() {
				members = append(members, n.u)
			}
			if n.l != nil {
				stack = append(stack, n.l)
			}
			if n.r != nil {
				stack = append(stack, n.r)
			}
		}
		min := members[0]
		for _, m := range members {
			if m < min {
				min = m
			}
		}
		for _, m := range members {
			lab[m] = min
		}
	}
	return lab
}

// CheckInvariants verifies structural invariants (levels, forests,
// adjacency bookkeeping). It is O(|E| log n) and meant for tests.
func (d *DynConn) CheckInvariants() error {
	for key, info := range d.edges {
		u, v := unpack(key)
		if info.tree {
			for j := 0; j <= info.level; j++ {
				if !d.levels[j].t.hasEdge(u, v) && !d.levels[j].t.hasEdge(v, u) {
					return fmt.Errorf("tree edge (%d,%d) level %d missing from forest %d", u, v, info.level, j)
				}
			}
			if !d.levels[info.level].tadj[u][key] || !d.levels[info.level].tadj[v][key] {
				return fmt.Errorf("tree edge (%d,%d) missing from tadj at level %d", u, v, info.level)
			}
		} else {
			if !d.levels[info.level].adj[u][key] || !d.levels[info.level].adj[v][key] {
				return fmt.Errorf("non-tree edge (%d,%d) missing from adj at level %d", u, v, info.level)
			}
			if !d.levels[info.level].t.connected(u, v) {
				return fmt.Errorf("non-tree edge (%d,%d) endpoints not connected at its level %d", u, v, info.level)
			}
		}
	}
	for i, lv := range d.levels {
		for x := 0; x < d.n; x++ {
			for key := range lv.adj[x] {
				if info := d.edges[key]; info == nil || info.tree || info.level != i {
					return fmt.Errorf("stale adj entry at level %d vertex %d", i, x)
				}
			}
			for key := range lv.tadj[x] {
				if info := d.edges[key]; info == nil || !info.tree || info.level != i {
					return fmt.Errorf("stale tadj entry at level %d vertex %d", i, x)
				}
			}
		}
	}
	return nil
}
