package dynconn

import (
	"math/rand"
	"testing"
)

// oracle recomputes connectivity by BFS over an explicit edge set.
type oracle struct {
	n     int
	edges map[uint64]bool
}

func newOracle(n int) *oracle { return &oracle{n: n, edges: map[uint64]bool{}} }

func (o *oracle) insert(u, v int32) bool {
	k := canon(u, v)
	if u == v || o.edges[k] {
		return false
	}
	o.edges[k] = true
	return true
}

func (o *oracle) delete(u, v int32) bool {
	k := canon(u, v)
	if !o.edges[k] {
		return false
	}
	delete(o.edges, k)
	return true
}

func (o *oracle) components() []int {
	adj := make([][]int32, o.n)
	for k := range o.edges {
		u, v := unpack(k)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	comp := make([]int, o.n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for s := 0; s < o.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		stack := []int32{int32(s)}
		comp[s] = c
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if comp[y] < 0 {
					comp[y] = c
					stack = append(stack, y)
				}
			}
		}
		c++
	}
	return comp
}

func (o *oracle) connected(u, v int32) bool {
	c := o.components()
	return c[u] == c[v]
}

func (o *oracle) numComponents() int {
	c := o.components()
	max := -1
	for _, x := range c {
		if x > max {
			max = x
		}
	}
	return max + 1
}

func TestBasicLinkCut(t *testing.T) {
	d := New(4)
	if d.Components() != 4 || d.Connected(0, 1) {
		t.Fatal("initial state wrong")
	}
	if !d.Insert(0, 1) || !d.Insert(1, 2) {
		t.Fatal("insert failed")
	}
	if d.Insert(0, 1) {
		t.Fatal("duplicate insert succeeded")
	}
	if d.Insert(1, 1) {
		t.Fatal("self-loop insert succeeded")
	}
	if !d.Connected(0, 2) || d.Connected(0, 3) || d.Components() != 2 {
		t.Fatal("connectivity wrong after inserts")
	}
	if !d.Delete(1, 2) {
		t.Fatal("delete failed")
	}
	if d.Delete(1, 2) {
		t.Fatal("double delete succeeded")
	}
	if d.Connected(0, 2) || !d.Connected(0, 1) || d.Components() != 3 {
		t.Fatal("connectivity wrong after delete")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCycleReplacement(t *testing.T) {
	// Deleting a tree edge of a cycle must find the non-tree replacement.
	d := New(3)
	d.Insert(0, 1)
	d.Insert(1, 2)
	d.Insert(2, 0) // non-tree
	if !d.Delete(0, 1) {
		t.Fatal("delete failed")
	}
	if !d.Connected(0, 1) || d.Components() != 1 {
		t.Fatal("replacement not found")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrow(t *testing.T) {
	d := New(2)
	d.Insert(0, 1)
	d.Grow(4)
	if d.Components() != 3 {
		t.Fatalf("components = %d, want 3", d.Components())
	}
	d.Insert(2, 3)
	d.Insert(1, 2)
	if !d.Connected(0, 3) {
		t.Fatal("grown vertices not connectable")
	}
}

func TestRandomAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		d := New(n)
		o := newOracle(n)
		for op := 0; op < 1500; op++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if rng.Intn(5) < 3 {
				if got, want := d.Insert(u, v), o.insert(u, v); got != want {
					t.Fatalf("seed %d op %d: Insert(%d,%d) = %v, want %v", seed, op, u, v, got, want)
				}
			} else {
				if got, want := d.Delete(u, v), o.delete(u, v); got != want {
					t.Fatalf("seed %d op %d: Delete(%d,%d) = %v, want %v", seed, op, u, v, got, want)
				}
			}
			if op%50 == 0 {
				a := int32(rng.Intn(n))
				b := int32(rng.Intn(n))
				if got, want := d.Connected(a, b), o.connected(a, b); got != want {
					t.Fatalf("seed %d op %d: Connected(%d,%d) = %v, want %v", seed, op, a, b, got, want)
				}
				if got, want := d.Components(), o.numComponents(); got != want {
					t.Fatalf("seed %d op %d: Components = %d, want %d", seed, op, got, want)
				}
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Final exhaustive connectivity comparison.
		comp := o.components()
		for a := int32(0); a < n; a++ {
			for b := a + 1; b < n; b++ {
				if d.Connected(a, b) != (comp[a] == comp[b]) {
					t.Fatalf("seed %d: final Connected(%d,%d) wrong", seed, a, b)
				}
			}
		}
	}
}

func TestDeleteCascadePushesLevels(t *testing.T) {
	// A dense component forces the HDT cascade through multiple levels.
	rng := rand.New(rand.NewSource(99))
	const n = 64
	d := New(n)
	type e struct{ u, v int32 }
	var present []e
	for i := 0; i < 400; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if d.Insert(u, v) {
			present = append(present, e{u, v})
		}
	}
	for i := 0; i < 300; i++ {
		j := rng.Intn(len(present))
		d.Delete(present[j].u, present[j].v)
		present = append(present[:j], present[j+1:]...)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(d.levels) < 2 {
		t.Fatal("cascade never pushed an edge past level 0")
	}
}

func TestSplayIndexOrdering(t *testing.T) {
	// Build a small sequence by merges and verify index() positions.
	var nodes []*node
	var root *node
	for i := 0; i < 10; i++ {
		x := &node{u: int32(i), v: int32(i)}
		x.update()
		nodes = append(nodes, x)
		root = merge(root, x)
	}
	for i, x := range nodes {
		if got := index(x); got != int32(i) {
			t.Fatalf("index(%d) = %d", i, got)
		}
	}
	if !sameSeq(nodes[0], nodes[9]) {
		t.Fatal("sameSeq false within one sequence")
	}
	lone := &node{u: 99, v: 99}
	lone.update()
	if sameSeq(nodes[0], lone) {
		t.Fatal("sameSeq true across sequences")
	}
}
