package dynconn

// ett maintains the Euler tours of one forest level: a sequence per tree
// containing one self-loop node per vertex and two arc nodes per tree
// edge. Vertex nodes are created lazily per level.
type ett struct {
	verts []*node          // self-loop node per vertex, nil until used
	arcs  map[uint64]*node // packed (u,v) -> arc node
}

func newETT(n int) *ett {
	return &ett{verts: make([]*node, n), arcs: make(map[uint64]*node)}
}

func packArc(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// vert returns v's self-loop node, creating a singleton tour on first use.
func (t *ett) vert(v int32) *node {
	if t.verts[v] == nil {
		x := &node{u: v, v: v}
		x.update()
		t.verts[v] = x
	}
	return t.verts[v]
}

// grow extends the vertex table to n entries.
func (t *ett) grow(n int) {
	for len(t.verts) < n {
		t.verts = append(t.verts, nil)
	}
}

// connected reports whether u and v are in the same tree at this level.
func (t *ett) connected(u, v int32) bool {
	if u == v {
		return true
	}
	if t.verts[u] == nil || t.verts[v] == nil {
		return false
	}
	return sameSeq(t.verts[u], t.verts[v])
}

// treeSize returns the number of vertices in v's tree.
func (t *ett) treeSize(v int32) int32 {
	x := t.vert(v)
	splay(x)
	return x.vcount
}

// reroot rotates v's tour so it starts at v's self-loop.
func (t *ett) reroot(v int32) {
	x := t.vert(v)
	l := detachLeft(x)
	merge(x, l)
}

// link joins the trees of u and v with tree edge (u, v).
func (t *ett) link(u, v int32) {
	t.reroot(u)
	t.reroot(v)
	a1 := &node{u: u, v: v}
	a1.update()
	a2 := &node{u: v, v: u}
	a2.update()
	t.arcs[packArc(u, v)] = a1
	t.arcs[packArc(v, u)] = a2
	splay(t.verts[u])
	splay(t.verts[v])
	merge(merge(merge(t.verts[u], a1), t.verts[v]), a2)
}

// cut removes tree edge (u, v), splitting the tour into the two subtrees.
func (t *ett) cut(u, v int32) {
	a1 := t.arcs[packArc(u, v)]
	a2 := t.arcs[packArc(v, u)]
	delete(t.arcs, packArc(u, v))
	delete(t.arcs, packArc(v, u))
	if index(a1) > index(a2) {
		a1, a2 = a2, a1
	}
	// Tour: A a1 B a2 C. Inner segment B is one subtree; A+C the other.
	a := detachLeft(a1)
	rest := detachRight(a1)
	_ = rest // rest = B a2 C; a2 is within it
	b := detachLeft(a2)
	c := detachRight(a2)
	_ = b // B stands alone as the inner tree
	merge(a, c)
}

// hasEdge reports whether (u, v) is a tree edge at this level.
func (t *ett) hasEdge(u, v int32) bool {
	_, ok := t.arcs[packArc(u, v)]
	return ok
}

// setFlag sets or clears a flag bit on v's vertex node, re-aggregating.
func (t *ett) setFlag(v int32, mask uint8, on bool) {
	x := t.vert(v)
	splay(x)
	if on {
		x.flags |= mask
	} else {
		x.flags &^= mask
	}
	x.update()
}

// anyFlagged returns a vertex in v's tree carrying mask, or -1.
func (t *ett) anyFlagged(v int32, mask uint8) int32 {
	x := t.vert(v)
	splay(x)
	f := findFlagged(x, mask)
	if f == nil {
		return -1
	}
	return f.u
}
