package dynconn

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestLabelsSimple(t *testing.T) {
	d := New(5)
	d.Insert(1, 3)
	d.Insert(3, 4)
	got := d.Labels()
	want := []int32{0, 1, 2, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
}

func TestLabelsMatchOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 50
		d := New(n)
		o := newOracle(n)
		for op := 0; op < 800; op++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				d.Insert(u, v)
				o.insert(u, v)
			} else {
				d.Delete(u, v)
				o.delete(u, v)
			}
		}
		lab := d.Labels()
		comp := o.components()
		// Same partition, and each label is the minimum member id.
		min := map[int]int32{}
		for v := 0; v < n; v++ {
			if m, ok := min[comp[v]]; !ok || int32(v) < m {
				min[comp[v]] = int32(v)
			}
		}
		for v := 0; v < n; v++ {
			if lab[v] != min[comp[v]] {
				t.Fatalf("seed %d: label[%d] = %d, want %d", seed, v, lab[v], min[comp[v]])
			}
		}
	}
}

func TestHasEdgeAndNumVertices(t *testing.T) {
	d := New(3)
	if d.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", d.NumVertices())
	}
	d.Insert(0, 1)
	if !d.HasEdge(1, 0) || d.HasEdge(1, 2) {
		t.Fatal("HasEdge wrong")
	}
	if d.Delete(1, 2) {
		t.Fatal("deleting absent edge succeeded")
	}
}

func TestGrowAfterOperations(t *testing.T) {
	d := New(2)
	d.Insert(0, 1)
	d.Delete(0, 1)
	d.Insert(0, 1) // exercise re-insert after full delete
	d.Grow(5)
	d.Insert(3, 4)
	d.Insert(1, 3)
	if !d.Connected(0, 4) {
		t.Fatal("connectivity through grown vertices failed")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := d.Labels(); got[4] != 0 || got[2] != 2 {
		t.Fatalf("labels after grow: %v", got)
	}
}

func TestHeavyChurnSingleEdge(t *testing.T) {
	// Insert/delete the same edge many times: exercises level bookkeeping
	// reuse and tree/non-tree transitions.
	d := New(3)
	d.Insert(0, 1)
	d.Insert(1, 2)
	d.Insert(2, 0)
	for i := 0; i < 200; i++ {
		if !d.Delete(0, 1) {
			t.Fatal("delete failed")
		}
		if !d.Connected(0, 1) {
			t.Fatal("triangle lost connectivity")
		}
		if !d.Insert(0, 1) {
			t.Fatal("insert failed")
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
