package dynconn

// node is one element of an Euler tour sequence stored in a splay tree:
// either a vertex occurrence (u == v, the vertex's designated self-loop)
// or one of the two arcs (u, v) / (v, u) representing a tree edge.
//
// Vertex nodes carry flags announcing incident edges at the tour's level
// (non-tree adjacency, level-i tree edges); agg is the OR of flags over
// the subtree, letting the HDT deletion cascade find flagged vertices in
// O(log n).
type node struct {
	l, r, p *node
	size    int32 // all nodes in subtree
	vcount  int32 // vertex nodes in subtree
	u, v    int32
	flags   uint8 // vertex nodes only
	agg     uint8
}

const (
	flagNonTree uint8 = 1 << iota // vertex has level-i non-tree edges
	flagTree                      // vertex has tree edges of level exactly i
)

func (x *node) isVertex() bool { return x.u == x.v }

func (x *node) update() {
	x.size = 1
	x.vcount = 0
	x.agg = x.flags
	if x.isVertex() {
		x.vcount = 1
	}
	if x.l != nil {
		x.size += x.l.size
		x.vcount += x.l.vcount
		x.agg |= x.l.agg
	}
	if x.r != nil {
		x.size += x.r.size
		x.vcount += x.r.vcount
		x.agg |= x.r.agg
	}
}

// rotate lifts x above its parent.
func rotate(x *node) {
	p := x.p
	g := p.p
	if p.l == x {
		p.l = x.r
		if x.r != nil {
			x.r.p = p
		}
		x.r = p
	} else {
		p.r = x.l
		if x.l != nil {
			x.l.p = p
		}
		x.l = p
	}
	p.p = x
	x.p = g
	if g != nil {
		if g.l == p {
			g.l = x
		} else {
			g.r = x
		}
	}
	p.update()
	x.update()
}

// splay moves x to the root of its splay tree.
func splay(x *node) {
	for x.p != nil {
		p := x.p
		g := p.p
		if g != nil {
			if (g.l == p) == (p.l == x) {
				rotate(p) // zig-zig
			} else {
				rotate(x) // zig-zag
			}
		}
		rotate(x)
	}
}

// index returns the number of nodes before x in its sequence. It splays x.
func index(x *node) int32 {
	splay(x)
	if x.l != nil {
		return x.l.size
	}
	return 0
}

// detachLeft splays x and removes its left subtree, returning it.
func detachLeft(x *node) *node {
	splay(x)
	l := x.l
	if l != nil {
		l.p = nil
		x.l = nil
		x.update()
	}
	return l
}

// detachRight splays x and removes its right subtree, returning it.
func detachRight(x *node) *node {
	splay(x)
	r := x.r
	if r != nil {
		r.p = nil
		x.r = nil
		x.update()
	}
	return r
}

// merge concatenates sequences a then b and returns the new root.
func merge(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for a.r != nil {
		a = a.r
	}
	splay(a)
	a.r = b
	b.p = a
	a.update()
	return a
}

// sameSeq reports whether x and y belong to the same sequence. It splays.
func sameSeq(x, y *node) bool {
	if x == y {
		return true
	}
	splay(x)
	splay(y)
	return x.p != nil
}

// findFlagged returns any vertex node in x's subtree whose flags intersect
// mask, or nil.
func findFlagged(x *node, mask uint8) *node {
	for x != nil && x.agg&mask != 0 {
		if x.isVertex() && x.flags&mask != 0 {
			return x
		}
		if x.l != nil && x.l.agg&mask != 0 {
			x = x.l
			continue
		}
		x = x.r
	}
	return nil
}
