package fixpoint

// arena.go: epoch-marked dense scratch sets for the repair hot path. The
// class adapters used to allocate map[Var]bool per Apply to deduplicate
// touched variables and scope seeds; on large batches those maps dominated
// the constant factor of repair. A VarSet is the flat replacement: one
// int64 mark array indexed by variable id plus an epoch counter, so Reset
// is O(1) and membership is a single array compare — no hashing, no
// allocation after the array reaches steady-state size.

// VarSet is a reusable dense set of variables. Begin starts a new
// generation in O(1) by bumping the epoch; Add inserts with one array
// write. The zero value is ready to use.
type VarSet struct {
	mark  []int64
	epoch int64
}

// Begin clears the set and grows its capacity to n variables.
func (s *VarSet) Begin(n int) {
	if len(s.mark) < n {
		s.mark = append(s.mark, make([]int64, n-len(s.mark))...)
	}
	s.epoch++
}

// Add inserts x and reports whether it was newly added.
func (s *VarSet) Add(x Var) bool {
	if s.mark[x] == s.epoch {
		return false
	}
	s.mark[x] = s.epoch
	return true
}

// Has reports whether x is in the current generation.
func (s *VarSet) Has(x Var) bool {
	return int(x) < len(s.mark) && s.mark[x] == s.epoch
}

// ScopeArena accumulates the deduplicated touched set and push seeds for
// one incremental apply, replacing the per-apply map[Var]bool pairs in
// the class adapters. The backing arrays are reused across applies: after
// warm-up, building a scope allocates nothing.
type ScopeArena struct {
	touchedSet VarSet
	seedSet    VarSet
	pos        []int32 // index of x in touched, valid when touchedSet.Has(x)
	touched    []Touched
	seeds      []Var
}

// Begin starts a new apply with capacity for n variables, clearing both
// accumulators in O(1).
func (a *ScopeArena) Begin(n int) {
	a.touchedSet.Begin(n)
	a.seedSet.Begin(n)
	if len(a.pos) < n {
		a.pos = append(a.pos, make([]int32, n-len(a.pos))...)
	}
	a.touched = a.touched[:0]
	a.seeds = a.seeds[:0]
}

// Touch records x as touched. MaybeInfeasible marks variables whose
// current value may have become infeasible (deletion side); it is sticky
// across duplicate touches of the same variable.
func (a *ScopeArena) Touch(x Var, maybeInfeasible bool) {
	if a.touchedSet.Add(x) {
		a.pos[x] = int32(len(a.touched))
		a.touched = append(a.touched, Touched{X: x, MaybeInfeasible: maybeInfeasible})
		return
	}
	if maybeInfeasible {
		a.touched[a.pos[x]].MaybeInfeasible = true
	}
}

// Seed records x as a push seed (insertion side), deduplicated.
func (a *ScopeArena) Seed(x Var) {
	if a.seedSet.Add(x) {
		a.seeds = append(a.seeds, x)
	}
}

// Touched returns the deduplicated touched set in first-touch order. The
// slice is owned by the arena and valid until the next Begin.
func (a *ScopeArena) Touched() []Touched { return a.touched }

// Seeds returns the deduplicated push seeds in first-seed order. The
// slice is owned by the arena and valid until the next Begin.
func (a *ScopeArena) Seeds() []Var { return a.seeds }
