package fixpoint

import "testing"

func TestVarSet(t *testing.T) {
	var s VarSet
	s.Begin(4)
	if !s.Add(2) || s.Add(2) {
		t.Fatal("Add dedup broken")
	}
	if !s.Has(2) || s.Has(3) {
		t.Fatal("Has broken")
	}
	s.Begin(8) // new generation: previous marks invisible, capacity grown
	if s.Has(2) {
		t.Fatal("Begin did not clear")
	}
	if !s.Add(7) {
		t.Fatal("grown capacity not usable")
	}
}

func TestScopeArena(t *testing.T) {
	var a ScopeArena
	a.Begin(8)
	a.Touch(3, false)
	a.Touch(5, true)
	a.Touch(3, true) // sticky upgrade
	a.Touch(5, false)
	a.Seed(1)
	a.Seed(3) // a var may be both touched and seeded
	a.Seed(1)
	tch := a.Touched()
	if len(tch) != 2 || tch[0].X != 3 || tch[1].X != 5 {
		t.Fatalf("touched = %v", tch)
	}
	if !tch[0].MaybeInfeasible || !tch[1].MaybeInfeasible {
		t.Fatalf("sticky MaybeInfeasible broken: %v", tch)
	}
	if s := a.Seeds(); len(s) != 2 || s[0] != 1 || s[1] != 3 {
		t.Fatalf("seeds = %v", s)
	}
	a.Begin(8)
	if len(a.Touched()) != 0 || len(a.Seeds()) != 0 {
		t.Fatal("Begin did not reset accumulators")
	}
}

// TestScopeArenaZeroAlloc: after warm-up, building a scope of the same
// shape allocates nothing — the point of replacing per-apply maps.
func TestScopeArenaZeroAlloc(t *testing.T) {
	var a ScopeArena
	build := func() {
		a.Begin(64)
		for x := Var(0); x < 32; x++ {
			a.Touch(x, x%2 == 0)
			a.Seed(x)
		}
	}
	build() // warm up backing arrays
	if n := testing.AllocsPerRun(100, build); n != 0 {
		t.Errorf("scope build: %v allocs, want 0", n)
	}
}
