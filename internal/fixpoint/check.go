package fixpoint

import "math/rand"

// This file provides randomized checkers for the paper's condition (C2):
// the batch algorithm must be *contracting* (updates move values downward
// in ≼) and *monotonic* (f_x is order-preserving in its inputs). Tests use
// them to certify each instance before relying on Theorem 3; they are also
// handy while developing a new instance.

// CheckContracting runs the batch fixpoint and verifies that every value
// change moved downward: newv ≼ oldv at each write. It returns false on
// the first violation.
func CheckContracting[V any](inst Instance[V]) bool {
	n := inst.NumVars()
	val := make([]V, n)
	for i := 0; i < n; i++ {
		val[i] = inst.Bottom(Var(i))
	}
	ok := true
	get := func(y Var) V { return val[y] }
	wl := newFifo(n)
	recompute := func(x Var) bool {
		newv := inst.Update(x, get)
		if inst.Equal(newv, val[x]) {
			return false
		}
		if inst.Less(val[x], newv) {
			ok = false // moved upward: not contracting
		}
		val[x] = newv
		return true
	}
	inst.Seeds(func(x Var) {
		recompute(x)
		wl.AddOrAdjust(x)
	})
	for ok {
		x, popped := wl.Pop()
		if !popped {
			break
		}
		inst.Dependents(x, func(z Var) {
			if recompute(z) {
				wl.AddOrAdjust(z)
			}
		})
	}
	return ok
}

// CheckMonotonic samples random feasible input assignments for random
// variables and verifies that lowering any single input never raises
// f_x's output. The check is probabilistic: it samples `samples` pairs;
// inputs are drawn between the instance's final and initial values by
// interpolating over an already-computed state.
//
// It requires a completed engine run to know the value range; pass its
// state. It returns false on the first violation found.
func CheckMonotonic[V any](inst Instance[V], st *State[V], rng *rand.Rand, samples int) bool {
	n := inst.NumVars()
	if n == 0 {
		return true
	}
	for s := 0; s < samples; s++ {
		x := Var(rng.Intn(n))
		// Assignment A: each input at bottom or final, at random.
		// Assignment B: like A but with one random input lowered to final
		// where A had bottom. Monotonicity demands f(B) ≼ f(A).
		var inputs []Var
		inst.Inputs(x, func(y Var) { inputs = append(inputs, y) })
		if len(inputs) == 0 {
			continue
		}
		hi := make(map[Var]bool, len(inputs))
		for _, y := range inputs {
			hi[y] = rng.Intn(2) == 0
		}
		lowered := inputs[rng.Intn(len(inputs))]
		if !hi[lowered] {
			continue // already low in A; pick cheaply and move on
		}
		getA := func(y Var) V {
			if hi[y] {
				return inst.Bottom(y)
			}
			return st.Val[y]
		}
		getB := func(y Var) V {
			if y == lowered {
				return st.Val[y]
			}
			return getA(y)
		}
		fa := inst.Update(x, getA)
		fb := inst.Update(x, getB)
		if inst.Less(fa, fb) { // lowering an input raised the output
			return false
		}
	}
	return true
}

// CheckRelaxerConsistency verifies, by exhaustive evaluation over the
// current state, that a Relaxer instance's per-edge candidates agree with
// its Update function: for every variable, the meet of Bottom and the
// candidates emitted *to* it equals f_x on current values. It returns
// false on the first mismatch.
func CheckRelaxerConsistency[V any](inst Instance[V], st *State[V]) bool {
	rx, okR := inst.(Relaxer[V])
	if !okR {
		return true
	}
	n := inst.NumVars()
	meet := make([]V, n)
	for i := 0; i < n; i++ {
		meet[i] = inst.Bottom(Var(i))
	}
	for x := 0; x < n; x++ {
		rx.RelaxOut(Var(x), st.Val[x], func(z Var, cand V) {
			if inst.Less(cand, meet[z]) {
				meet[z] = cand
			}
		})
	}
	get := func(y Var) V { return st.Val[y] }
	for x := 0; x < n; x++ {
		want := inst.Update(Var(x), get)
		if !inst.Equal(meet[x], want) {
			return false
		}
	}
	return true
}
