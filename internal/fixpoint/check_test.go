package fixpoint

import (
	"math/rand"
	"testing"
)

func TestCheckContractingMinPlus(t *testing.T) {
	m := paperGraph()
	if !CheckContracting[int64](m) {
		t.Fatal("min-plus instance reported non-contracting")
	}
}

// antiMinPlus breaks contraction by computing a max instead of a min.
type antiMinPlus struct{ *minPlus }

func (m antiMinPlus) Update(x Var, get func(Var) int64) int64 {
	if x == m.src {
		return 5 // rises above Bottom(src) = 0
	}
	return m.minPlus.Update(x, get)
}

func TestCheckContractingDetectsViolation(t *testing.T) {
	if CheckContracting[int64](antiMinPlus{paperGraph()}) {
		t.Fatal("non-contracting instance passed")
	}
}

func TestCheckMonotonicMinPlus(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	if !CheckMonotonic[int64](m, e.State(), rand.New(rand.NewSource(1)), 500) {
		t.Fatal("min-plus instance reported non-monotonic")
	}
}

// antiMono inverts the effect of one input: lowering it raises the output.
type antiMono struct{ *minPlus }

func (m antiMono) Update(x Var, get func(Var) int64) int64 {
	if x == m.src {
		return 0
	}
	worst := int64(0)
	for _, a := range m.in[x] {
		if d := get(a.to); d < inf && inf-d > worst {
			worst = inf - d
		}
	}
	if worst == 0 {
		return inf
	}
	return worst
}

func TestCheckMonotonicDetectsViolation(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	anti := antiMono{m}
	if CheckMonotonic[int64](anti, e.State(), rand.New(rand.NewSource(2)), 2000) {
		t.Fatal("non-monotonic instance passed")
	}
}

func TestCheckRelaxerConsistency(t *testing.T) {
	m := paperGraph()
	p := pushMinPlus{m}
	e := New[int64](p, PriorityOrder)
	e.Run()
	if !CheckRelaxerConsistency[int64](p, e.State()) {
		t.Fatal("consistent relaxer reported inconsistent")
	}
	// A non-relaxer instance passes trivially.
	if !CheckRelaxerConsistency[int64](m, e.State()) {
		t.Fatal("non-relaxer should pass")
	}
}

// badRelaxer emits wrong candidates.
type badRelaxer struct{ *minPlus }

func (m badRelaxer) RelaxOut(x Var, xv int64, emit func(Var, int64)) {
	if xv >= inf {
		return
	}
	for _, a := range m.out[x] {
		emit(a.to, xv+a.w+1) // off by one
	}
}

func TestCheckRelaxerConsistencyDetectsMismatch(t *testing.T) {
	m := paperGraph()
	good := pushMinPlus{m}
	e := New[int64](good, PriorityOrder)
	e.Run()
	if CheckRelaxerConsistency[int64](badRelaxer{m}, e.State()) {
		t.Fatal("inconsistent relaxer passed")
	}
}
