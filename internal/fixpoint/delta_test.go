package fixpoint

import (
	"reflect"
	"testing"
)

// Tests for the refined incremental API: feasibility hints and push seeds.

func TestIncrementalRunDeltaPushSeeds(t *testing.T) {
	m := paperGraph()
	e := New[int64](pushMinPlus{m}, PriorityOrder)
	e.Run()

	// Insert an improving edge (0, 7) with weight 1: dist[7] drops 4 → 1.
	// The tail 0 is a push seed; no variable is touched infeasibly.
	m.addEdge(0, 7, 1)
	h0 := e.IncrementalRunDelta(nil, []Var{0})
	if len(h0) != 0 {
		t.Fatalf("pure improvement produced H0 = %v", h0)
	}
	if e.State().Val[7] != 1 {
		t.Fatalf("dist[7] = %d, want 1", e.State().Val[7])
	}
	if !e.Fixpoint() {
		t.Fatal("not a fixpoint after push-seed repair")
	}
}

func TestIncrementalRunDeltaMixed(t *testing.T) {
	m := paperGraph()
	e := New[int64](pushMinPlus{m}, PriorityOrder)
	e.Run()

	// Delete the tight edge (2,5) (dist[5] was 2 via 2) and insert (0,5,9).
	m.delEdge(2, 5)
	m.addEdge(0, 5, 9)
	e.IncrementalRunDelta(
		[]Touched{{X: 5, MaybeInfeasible: true}},
		[]Var{0},
	)
	fresh := New[int64](pushMinPlus{m}, PriorityOrder)
	fresh.Run()
	if !reflect.DeepEqual(e.State().Val, fresh.State().Val) {
		t.Fatalf("mixed delta repair %v != fresh %v", e.State().Val, fresh.State().Val)
	}
}

func TestGrowMidStream(t *testing.T) {
	m := newMinPlus(3, 0)
	m.addEdge(0, 1, 2)
	e := New[int64](m, PriorityOrder)
	e.Run()

	// Grow the instance by two variables, wire one up, repair.
	m.out = append(m.out, nil, nil)
	m.in = append(m.in, nil, nil)
	e.Grow()
	if len(e.State().Val) != 5 || e.State().Val[3] != inf {
		t.Fatalf("grown state wrong: %v", e.State().Val)
	}
	m.addEdge(1, 3, 4)
	m.addEdge(3, 4, 1)
	e.IncrementalRunDelta(nil, []Var{1, 3})
	want := []int64{0, 2, inf, 6, 7}
	if !reflect.DeepEqual(e.State().Val, want) {
		t.Fatalf("vals after grow+repair = %v, want %v", e.State().Val, want)
	}
}

func TestHRevisionRestampsForNextRound(t *testing.T) {
	// After a deletion raises a variable, its timestamp must be fresher
	// than untouched variables', so the next round's anchor analysis sees
	// the revised derivation order. This is the regression test for the
	// staleness bug where h revised values without stamping.
	m := newMinPlus(4, 0)
	m.addEdge(0, 1, 1)
	m.addEdge(1, 2, 1)
	m.addEdge(0, 3, 5)
	m.addEdge(3, 2, 5)
	e := New[int64](m, PriorityOrder)
	e.Run()
	tsBefore := e.State().TS[2]

	// Delete (1,2): node 2 re-derives via 3 (dist 10), revised by h.
	m.delEdge(1, 2)
	e.IncrementalRun([]Var{2})
	if e.State().Val[2] != 10 {
		t.Fatalf("dist[2] = %d, want 10", e.State().Val[2])
	}
	if e.State().TS[2] <= tsBefore {
		t.Fatal("revised variable kept a stale timestamp")
	}
}
