package fixpoint_test

import (
	"fmt"

	"incgraph/internal/fixpoint"
)

// ExampleScopeArena shows the reusable touched/seed accumulator the class
// adapters build their incremental scopes with: O(1) reset via epochs, no
// per-apply map allocation.
func ExampleScopeArena() {
	var a fixpoint.ScopeArena
	a.Begin(16)
	a.Touch(3, true)
	a.Touch(3, false) // duplicate: MaybeInfeasible stays sticky
	a.Seed(7)
	a.Seed(7) // deduplicated
	fmt.Println("touched:", a.Touched())
	fmt.Println("seeds:  ", a.Seeds())

	a.Begin(16) // next apply: both accumulators empty again
	fmt.Println("after Begin:", len(a.Touched()), len(a.Seeds()))
	// Output:
	// touched: [{3 true}]
	// seeds:   [7]
	// after Begin: 0 0
}

// ExampleVarSet shows the epoch-marked dense set underlying ScopeArena.
func ExampleVarSet() {
	var s fixpoint.VarSet
	s.Begin(8)
	fmt.Println(s.Add(5), s.Add(5), s.Has(5))
	s.Begin(8) // new generation, O(1)
	fmt.Println(s.Has(5))
	// Output:
	// true false true
	// false
}

// ExampleMinInt64 shows the branch-free meet used in the relaxer inner
// loops; inputs must keep b-a within int64 (distances stay at or below
// graph.Infinity = MaxInt64/4).
func ExampleMinInt64() {
	fmt.Println(fixpoint.MinInt64(12, 7), fixpoint.MaxInt64(12, 7))
	// Output:
	// 7 12
}
