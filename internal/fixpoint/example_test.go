// Godoc examples for the generic engine, instantiated with the SSSP
// Instance (the paper's running example). Each runs under go test.
package fixpoint_test

import (
	"fmt"
	"slices"

	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
	"incgraph/internal/sssp"
)

// diamond builds 0 →1→ 1 →1→ 3 with a costlier detour 0 →5→ 2 →5→ 3.
func diamond() *graph.Graph {
	g := graph.New(4, true)
	g.Apply(graph.Batch{
		{Kind: graph.InsertEdge, From: 0, To: 1, W: 1},
		{Kind: graph.InsertEdge, From: 1, To: 3, W: 1},
		{Kind: graph.InsertEdge, From: 0, To: 2, W: 5},
		{Kind: graph.InsertEdge, From: 2, To: 3, W: 5},
	})
	return g
}

func ExampleEngine_IncrementalRun() {
	g := diamond()
	eng := fixpoint.New[int64](&sssp.Instance{G: g, Src: 0}, fixpoint.PriorityOrder)
	eng.Run() // batch fixpoint; records the timestamps h's <_C orders by
	fmt.Println("dist(3) before:", eng.Value(3))

	// ΔG deletes the tight edge 1→3: its head may now be infeasible
	// (its shortest path ran through the deleted edge), so it goes on
	// the touched list. h revises it, then the batch step function
	// resumes — repairing only the affected area, not the whole graph.
	g.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 3, W: 1}})
	h0 := eng.IncrementalRun([]fixpoint.Var{3})

	fmt.Println("dist(3) after: ", eng.Value(3))
	fmt.Println("|H0|:", len(h0))
	// Output:
	// dist(3) before: 2
	// dist(3) after:  10
	// |H0|: 1
}

func ExampleEngine_SetWorkers() {
	// Two engines over identical graphs: one sequential, one draining
	// rounds on 4 workers. The parallel mode is deterministic — same
	// distances, batch for batch, as the sequential engine.
	gs, gp := diamond(), diamond()
	seq := fixpoint.New[int64](&sssp.Instance{G: gs, Src: 0}, fixpoint.PriorityOrder)
	par := fixpoint.New[int64](&sssp.Instance{G: gp, Src: 0}, fixpoint.PriorityOrder,
		fixpoint.WithWorkers(4), fixpoint.WithParThreshold(1))
	defer par.Close() // releases the worker pool
	seq.Run()
	par.Run()

	delta := graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 3, W: 1}}
	gs.Apply(delta)
	gp.Apply(delta)
	seq.IncrementalRun([]fixpoint.Var{3})
	par.IncrementalRun([]fixpoint.Var{3})

	fmt.Println("identical:", slices.Equal(seq.State().Val, par.State().Val))
	fmt.Println("dist:", par.State().Val)
	// Output:
	// identical: true
	// dist: [0 1 5 1]
}
