// Package fixpoint implements the paper's core contribution: the class Φ of
// fixpoint graph algorithms (§3) and their systematic incrementalization
// with relative boundedness guarantees (§4).
//
// A fixpoint algorithm A maintains one status variable per Var, updated by
// a per-variable update function f_x over an input set Y_x, driven by a
// step function that propagates changes through a scope (worklist) until no
// variable changes. When A is contracting and monotonic w.r.t. a partial
// order ≼ (condition C2), an incremental algorithm A_Δ is deduced by
// running the initial scope function h of Fig. 4 — which revises
// potentially infeasible variables in the order <_C derived from the batch
// run's timestamps — and then resuming A's own step function from the
// produced status D⁰ and scope H⁰ (Theorem 3).
//
// The Engine in this package is that machinery, generic over the value
// domain. SSSP, CC, and Sim instantiate it directly; DFS and LCC follow
// the same design with specialized code (as the paper does in §5).
package fixpoint

import (
	"fmt"
	"time"
)

// Var identifies a status variable in Ψ_A. Instances map graph nodes
// (SSSP, CC) or node pairs (Sim) to dense Var ids.
type Var int32

// Policy selects the step function's worklist order.
type Policy int

const (
	// FIFOOrder processes the scope first-in first-out (CC, Sim).
	FIFOOrder Policy = iota
	// PriorityOrder pops the variable with the ≼-least current value
	// first, generalizing Dijkstra's extraction order (SSSP).
	PriorityOrder
)

// Instance defines one fixpoint algorithm: its status variables, value
// domain with the partial order ≼, update functions and their input sets.
// Values move downward in ≼ during the run: final ≼ ... ≼ initial
// (equation (4) of the paper); Bottom is the ≼-greatest ("initial") value.
//
// An Instance is evaluated against the current state of its underlying
// graph: after the graph is updated by ΔG, the same Instance describes the
// fixpoint computation on G ⊕ ΔG.
type Instance[V any] interface {
	// NumVars returns |Ψ_A|; Vars are 0..NumVars()-1.
	NumVars() int
	// Bottom returns the initial value x⊥ of variable x.
	Bottom(x Var) V
	// Less reports a ≺ b, the strict partial order on the domain; smaller
	// is closer to the final value.
	Less(a, b V) bool
	// Equal reports value equality.
	Equal(a, b V) bool
	// Inputs calls yield for each variable in the input set Y_x.
	Inputs(x Var, yield func(Var))
	// Dependents calls yield for each variable z with x ∈ Y_z.
	Dependents(x Var, yield func(Var))
	// Update evaluates f_x(Y_x), reading input values through get.
	Update(x Var, get func(Var) V) V
	// Seeds calls yield for each variable in the initial scope H⁰ of a
	// batch run: the variables whose logical statements σ may be false
	// initially.
	Seeds(yield func(Var))
}

// Stats counts the data inspected by a run. Relative boundedness (§4) is a
// statement about these counters: for the incremental run they must be a
// function of |ΔG| and |AFF|, not of |G|.
type Stats struct {
	Reads     int64 `json:"reads"`      // status-variable reads by update functions
	Updates   int64 `json:"updates"`    // update-function invocations
	Changes   int64 `json:"changes"`    // value changes (writes)
	Pops      int64 `json:"pops"`       // scope extractions by the step function
	HPops     int64 `json:"h_pops"`     // queue extractions by the scope function h
	HResets   int64 `json:"h_resets"`   // variables revised to feasible values by h
	ScopeSize int64 `json:"scope_size"` // |H⁰| produced by h (incremental runs only)

	// HSeconds and ResumeSeconds accumulate wall time spent in the initial
	// scope function h and in the resumed step function, the split the
	// paper reports in Exp-2(2).
	HSeconds      float64 `json:"h_seconds"`
	ResumeSeconds float64 `json:"resume_seconds"`

	// Ledger is the boundedness work account of the incremental runs: the
	// |CHANGED|/|AFF|/‖AFF‖/rounds quantities of Theorem 3 (see
	// WorkLedger). It follows the same cumulative Sub/Add snapshot
	// discipline as the counters above.
	Ledger WorkLedger `json:"ledger"`
}

// Inspected returns the total number of variable inspections, the cost
// measure of the paper's boundedness analysis.
func (s Stats) Inspected() int64 { return s.Reads + s.Updates + s.Pops + s.HPops }

// Tracer observes the phases of one incremental run. It is the engine's
// span hook: internal/trace implements it (structurally — the methods use
// only builtin types, so neither package imports the other) to record
// h-phase and resume spans plus per-round propagation events into a
// flight recorder. A nil tracer costs nothing: the engine takes the
// untraced code path and performs zero extra allocations (guarded by
// TestNilTracerZeroAlloc).
//
// All methods are called from the goroutine driving the engine, in the
// order BeginRun, ScopeDone, Round*, EndRun.
type Tracer interface {
	// BeginRun marks the start of IncrementalRunDelta with the sizes of
	// the touched set and the push-seed set.
	BeginRun(touched, pushSeeds int)
	// ScopeDone marks the end of the initial scope function h with the
	// run's h-counter deltas and |H⁰|.
	ScopeDone(hPops, hResets, scopeSize int64)
	// Round reports one completed propagation round of the resumed step
	// function: the frontier size at round start, pops and value changes
	// during the round, and the affected-area growth (variables newly
	// scoped for the next round).
	Round(round int, frontier, pops, changes, affGrowth int64)
	// EndRun marks the end of the resumed step function with the resume
	// phase's pop and change deltas.
	EndRun(pops, changes int64)
}

// Sub returns the counter-wise difference s − o, isolating the cost of
// the span between two snapshots of the same cumulative Stats (e.g. one
// Apply call). ScopeSize is not cumulative — it is the |H⁰| of the last
// run — so the newer snapshot's value is kept as-is.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:         s.Reads - o.Reads,
		Updates:       s.Updates - o.Updates,
		Changes:       s.Changes - o.Changes,
		Pops:          s.Pops - o.Pops,
		HPops:         s.HPops - o.HPops,
		HResets:       s.HResets - o.HResets,
		ScopeSize:     s.ScopeSize,
		HSeconds:      s.HSeconds - o.HSeconds,
		ResumeSeconds: s.ResumeSeconds - o.ResumeSeconds,
		Ledger:        s.Ledger.Sub(o.Ledger),
	}
}

// Add returns the counter-wise sum s + o, for aggregating per-run deltas
// into a running total. ScopeSize takes o's value — the most recent
// run's |H⁰| — so an accumulator always reports the latest scope.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:         s.Reads + o.Reads,
		Updates:       s.Updates + o.Updates,
		Changes:       s.Changes + o.Changes,
		Pops:          s.Pops + o.Pops,
		HPops:         s.HPops + o.HPops,
		HResets:       s.HResets + o.HResets,
		ScopeSize:     o.ScopeSize,
		HSeconds:      s.HSeconds + o.HSeconds,
		ResumeSeconds: s.ResumeSeconds + o.ResumeSeconds,
		Ledger:        s.Ledger.Add(o.Ledger),
	}
}

// State is the status D_A of a run: the current value and last-change
// timestamp of every status variable, plus the logical clock. Timestamps
// are the only auxiliary structure (weak deducibility, §4): they encode the
// order <_C in which final values were determined.
type State[V any] struct {
	Val   []V
	TS    []int64
	clock int64
	Stats Stats
}

// Relaxer is an optional Instance extension for update functions of meet
// form, f_x(Y) = ⊓_{y ∈ Y} contribution(y → x), as in SSSP and CC. When
// implemented, the step function propagates changes by pushing per-edge
// candidate values instead of fully re-evaluating each dependent —
// Dijkstra-style relaxation, avoiding the degree-squared cost of pull
// recomputation around hubs. RelaxOut must agree with Update: the meet of
// the emitted candidates over x's inputs, together with Bottom, is
// f_x(Y_x); tests check this consistency.
type Relaxer[V any] interface {
	// RelaxOut emits, for each dependent z of x, the candidate value that
	// x's current value xv contributes to z.
	RelaxOut(x Var, xv V, emit func(z Var, candidate V))
}

// UniformRelaxer is an optional refinement of Relaxer for instances whose
// relaxation emits the same candidate — x's own value — to every dependent
// (label propagation: CC's min-label flood). The sequential drain then
// skips the per-edge emit closure entirely: it fetches the dependent row
// into a reused arena buffer and installs the one candidate along it,
// keeping the inner loop free of interface calls. DependentRow must visit
// exactly the variables RelaxOut would emit to, in the same order, so the
// two paths stay counter-for-counter identical.
type UniformRelaxer[V any] interface {
	Relaxer[V]
	// DependentRow appends x's dependents to buf and returns the extended
	// slice. The result may alias internal storage and is only valid until
	// the next engine step.
	DependentRow(x Var, buf []Var) []Var
}

// Engine couples an Instance with its State and implements both the batch
// step function and the deduced incremental algorithm. Worklists are
// allocated once and reused across runs, so incremental rounds cost
// O(|AFF|), not O(|Ψ|).
type Engine[V any] struct {
	inst    Instance[V]
	relaxer Relaxer[V]        // nil when the instance is not meet-form
	uniform UniformRelaxer[V] // nil unless the relaxer is label-propagating
	rowBuf  []Var             // uniform path's dependent-row arena
	policy  Policy
	st      *State[V]
	getFn   func(Var) V
	// emitFn and visitFn are the step function's propagation closures,
	// built once here: creating them per drain call would heap-allocate
	// (they escape through the Instance interface), breaking the
	// zero-allocation guarantee of small incremental runs.
	emitFn  func(Var, V)
	visitFn func(Var)
	// hGetFn and hEnqFn are the scope function's closures, hoisted for
	// the same reason; hx is the variable h is currently revising, a
	// field so the closures can share it without a per-call heap cell.
	hGetFn func(Var) V
	hEnqFn func(Var)
	hx     Var

	tracer    Tracer         // optional span hook; nil ⇒ untraced path, zero cost
	parTracer ParRoundTracer // tracer's optional parallel extension, captured at SetTracer

	wl      worklist     // step-function scope
	hq      *indexedHeap // h's queue, ordered by old timestamps
	inScope []int64      // epoch marks for H⁰ and AFF membership
	chMark  []int64      // epoch marks: written this run (ledger)
	chOld   []V          // run-start values of written variables (ledger)
	chList  []Var        // written variables, swept by ledgerSettle
	epoch   int64
	deg     OutDegreer // instance's optional out-degree hook for ‖AFF‖

	// Parallel execution mode (see parallel.go). All fields stay nil/zero
	// for sequential engines, so the n<=1 path allocates nothing extra.
	workers      int            // >= 2 ⇒ partitioned round drains
	parThreshold int            // minimum frontier size to partition
	pool         *Pool          // reusable workers, spawned lazily
	parWs        []parWorker[V] // per-worker buffers, reused across rounds
	parts        []span         // current round's frontier partition
	frontier     []Var          // round frontier snapshot, reused
	recomp       []Var          // pull mode: deduped dependents, reused
	parSeen      []int64        // pull mode: epoch marks for dedup
	parEpoch     int64
	parRelaxFn   func(int) // hoisted phase closures (no per-round allocs)
	parDepFn     func(int)
	parEvalFn    func(int)
	par          ParStats
}

// New creates an engine for the instance with an empty (all-Bottom) state.
// Options (WithWorkers, WithParThreshold) configure the parallel execution
// mode; without them the engine is sequential. The engine is single-writer:
// all methods must be called from one goroutine at a time (the parallel
// mode's worker pool is an internal detail — the driver still blocks until
// each round's merge completes).
func New[V any](inst Instance[V], policy Policy, opts ...Option) *Engine[V] {
	cfg := config{parThreshold: defaultParThreshold}
	for _, o := range opts {
		o(&cfg)
	}
	n := inst.NumVars()
	st := &State[V]{Val: make([]V, n), TS: make([]int64, n)}
	for i := 0; i < n; i++ {
		st.Val[i] = inst.Bottom(Var(i))
	}
	e := &Engine[V]{inst: inst, policy: policy, st: st, parThreshold: cfg.parThreshold}
	e.relaxer, _ = inst.(Relaxer[V])
	e.uniform, _ = inst.(UniformRelaxer[V])
	e.deg, _ = inst.(OutDegreer)
	e.getFn = func(x Var) V {
		e.st.Stats.Reads++
		return e.st.Val[x]
	}
	if policy == PriorityOrder {
		e.wl = newIndexedHeap(n, func(a, b Var) bool {
			return e.inst.Less(e.st.Val[a], e.st.Val[b])
		})
	} else {
		e.wl = newFifo(n)
	}
	e.hq = newIndexedHeap(n, func(a, b Var) bool {
		return e.st.TS[a] < e.st.TS[b]
	})
	e.inScope = make([]int64, n)
	e.chMark = make([]int64, n)
	e.chOld = make([]V, n)
	e.chList = make([]Var, 0, n)
	e.emitFn = func(z Var, cand V) {
		if e.install(z, cand) {
			e.wl.AddOrAdjust(z)
		}
	}
	e.visitFn = func(z Var) {
		if e.recompute(z) {
			e.wl.AddOrAdjust(z)
		}
	}
	// h evaluates f_x on the feasible input set Ȳ_x: inputs determined
	// after x in <_C are reset to their initial values (always feasible);
	// earlier inputs keep their current — already revised, hence feasible
	// — values. h defers its own timestamp writes until after the queue
	// drains, so e.st.TS still carries the previous run's order while
	// these closures read it.
	e.hGetFn = func(y Var) V {
		e.st.Stats.Reads++
		if e.st.TS[e.hx] < e.st.TS[y] {
			return e.inst.Bottom(y)
		}
		return e.st.Val[y]
	}
	e.hEnqFn = func(z Var) {
		if e.st.TS[e.hx] < e.st.TS[z] { // hx may be in C_z
			e.hq.AddOrAdjust(z)
		}
	}
	e.SetWorkers(cfg.workers)
	return e
}

// SetTracer installs (or, with nil, removes) the span hook observing
// incremental runs. If the tracer also implements ParRoundTracer it
// additionally receives per-round parallel events. Call it from the
// goroutine that drives the engine.
func (e *Engine[V]) SetTracer(t Tracer) {
	e.tracer = t
	e.parTracer, _ = t.(ParRoundTracer)
}

// State exposes the engine's status for inspection and for handing the
// fixpoint D^r to a later incremental run.
func (e *Engine[V]) State() *State[V] { return e.st }

// Clock returns the logical clock of the state — the timestamp of the
// youngest determination. Together with Val and TS it is the complete
// auxiliary state of the deduced incremental algorithm (weak
// deducibility, §4), which is exactly what a durability checkpoint must
// persist: the values are the answer, the timestamps are the order <_C
// the next incremental run's anchor analysis reads.
func (s *State[V]) Clock() int64 { return s.clock }

// Restore overwrites the engine's status with a previously exported one:
// per-variable values, their determination timestamps, and the logical
// clock. The instance's variable universe must match (the engine's graph
// must equal the one the state was exported from); the slices are copied.
// Counters are not restored — they describe the old process's work.
func (e *Engine[V]) Restore(vals []V, ts []int64, clock int64) error {
	n := e.inst.NumVars()
	if len(vals) != n || len(ts) != n {
		return fmt.Errorf("fixpoint: restore of %d/%d variables into instance with %d", len(vals), len(ts), n)
	}
	copy(e.st.Val, vals)
	copy(e.st.TS, ts)
	e.st.clock = clock
	return nil
}

// Grow extends the state with freshly bottomed variables after the
// instance's NumVars grew (vertex insertions, §4). New variables carry
// timestamp 0: their bottom values are trivially feasible.
func (e *Engine[V]) Grow() {
	n := e.inst.NumVars()
	for len(e.st.Val) < n {
		x := Var(len(e.st.Val))
		e.st.Val = append(e.st.Val, e.inst.Bottom(x))
		e.st.TS = append(e.st.TS, 0)
		e.inScope = append(e.inScope, 0)
		e.chMark = append(e.chMark, 0)
		var zero V
		e.chOld = append(e.chOld, zero)
	}
	if cap(e.chList) < n {
		// Keep one preallocated slot per variable so ledgerWrite never
		// allocates mid-run.
		cl := make([]Var, len(e.chList), n)
		copy(cl, e.chList)
		e.chList = cl
	}
	for e.parSeen != nil && len(e.parSeen) < n {
		e.parSeen = append(e.parSeen, 0)
	}
	e.wl.Grow(n)
	e.hq.Grow(n)
}

// Value returns the current value of variable x.
func (e *Engine[V]) Value(x Var) V { return e.st.Val[x] }

// recompute applies f_x and installs the result; it reports whether the
// value changed.
func (e *Engine[V]) recompute(x Var) bool {
	e.st.Stats.Updates++
	newv := e.inst.Update(x, e.getFn)
	cur := e.st.Val[x]
	if e.inst.Equal(newv, cur) {
		return false
	}
	e.ledgerWrite(x, cur)
	e.st.Val[x] = newv
	e.st.clock++
	e.st.TS[x] = e.st.clock
	e.st.Stats.Changes++
	return true
}

// install writes a relaxed candidate if it improves on the current value.
func (e *Engine[V]) install(z Var, cand V) bool {
	e.st.Stats.Updates++
	cur := e.st.Val[z]
	if !e.inst.Less(cand, cur) {
		return false
	}
	e.ledgerWrite(z, cur)
	e.st.Val[z] = cand
	e.st.clock++
	e.st.TS[z] = e.st.clock
	e.st.Stats.Changes++
	return true
}

// Run executes the batch fixpoint algorithm from the initial status: it
// seeds the scope with the instance's Seeds and drives the step function
// until the scope empties (equation (1) of the paper).
func (e *Engine[V]) Run() {
	e.inst.Seeds(func(x Var) {
		e.recompute(x)
		e.wl.AddOrAdjust(x)
	})
	e.dispatchDrain()
}

// drain is the step function f_A iterated to the fixpoint: it pops a
// variable from the scope and propagates its value to its dependents —
// by pushing per-edge candidates when the instance is meet-form, by full
// re-evaluation otherwise — extending the scope with every dependent
// whose value changed. The outer loop counts BFS-level rounds into the
// ledger (the scope size at round start bounds the inner pops) without
// changing the pop order or allocating.
func (e *Engine[V]) drain() {
	if e.uniform != nil {
		// Row path: one candidate per popped variable, installed along a
		// flat dependent row. Same pops, same installs, same order as the
		// RelaxOut path below — only the per-edge emit closure is gone.
		for e.wl.Len() > 0 {
			e.st.Stats.Ledger.Rounds++
			for n := e.wl.Len(); n > 0; n-- {
				x, ok := e.wl.Pop()
				if !ok {
					break
				}
				e.st.Stats.Pops++
				xv := e.st.Val[x]
				e.rowBuf = e.uniform.DependentRow(x, e.rowBuf[:0])
				for _, z := range e.rowBuf {
					if e.install(z, xv) {
						e.wl.AddOrAdjust(z)
					}
				}
			}
		}
		return
	}
	if e.relaxer != nil {
		for e.wl.Len() > 0 {
			e.st.Stats.Ledger.Rounds++
			for n := e.wl.Len(); n > 0; n-- {
				x, ok := e.wl.Pop()
				if !ok {
					break
				}
				e.st.Stats.Pops++
				e.relaxer.RelaxOut(x, e.st.Val[x], e.emitFn)
			}
		}
		return
	}
	for e.wl.Len() > 0 {
		e.st.Stats.Ledger.Rounds++
		for n := e.wl.Len(); n > 0; n-- {
			x, ok := e.wl.Pop()
			if !ok {
				break
			}
			e.st.Stats.Pops++
			e.inst.Dependents(x, e.visitFn)
		}
	}
}

// drainRounds is drain with per-round observation for the tracer: the
// variables in the scope when a round begins form its frontier; whatever
// their propagation adds to the scope is processed in the next round
// (BFS-level structure). After each round the tracer receives the
// frontier size, the pops and value changes of the round, and the
// affected-area growth — the size of the next frontier. Used only when a
// tracer is installed, keeping the nil path on the tight loop above.
func (e *Engine[V]) drainRounds() {
	round := 0
	for e.wl.Len() > 0 {
		frontier := e.wl.Len()
		round++
		e.st.Stats.Ledger.Rounds++
		pops0, changes0 := e.st.Stats.Pops, e.st.Stats.Changes
		for n := 0; n < frontier; n++ {
			x, ok := e.wl.Pop()
			if !ok {
				break
			}
			e.st.Stats.Pops++
			if e.relaxer != nil {
				e.relaxer.RelaxOut(x, e.st.Val[x], e.emitFn)
			} else {
				e.inst.Dependents(x, e.visitFn)
			}
		}
		e.tracer.Round(round, int64(frontier),
			e.st.Stats.Pops-pops0, e.st.Stats.Changes-changes0, int64(e.wl.Len()))
	}
}

// ResumeFrom drives the step function from an arbitrary scope over the
// current status. Per Lemma 2, if the status is feasible and the scope is
// valid w.r.t. it, the computation converges to the (unique) fixpoint for
// contracting and monotonic instances. Each scope variable is first
// re-evaluated itself, then propagated.
func (e *Engine[V]) ResumeFrom(scope []Var) {
	for _, x := range scope {
		e.recompute(x)
		e.wl.AddOrAdjust(x)
	}
	e.dispatchDrain()
}

// Touched describes one variable whose input set evolved under ΔG.
// MaybeInfeasible marks variables whose old value may now be *below* what
// their update function yields — inputs were removed or weakened — and
// which h must therefore revise. Variables whose inputs only improved
// (e.g. the head of an inserted edge in SSSP) keep feasible values: they
// skip h's queue and go straight into H⁰ for the resumed step function.
// This is the per-update anchor analysis of §4 (Example 5) that keeps h
// bounded.
type Touched struct {
	X               Var
	MaybeInfeasible bool
}

// IncrementalRun is the deduced incremental algorithm A_Δ. The underlying
// graph must already be updated to G ⊕ ΔG; touched lists the variables
// whose update functions have evolved input sets due to ΔG (line 1 of
// Fig. 4), conservatively treating every one as potentially infeasible.
// It applies the initial scope function h to produce a feasible status D⁰
// and valid scope H⁰, then resumes the batch step function. It returns
// H⁰.
func (e *Engine[V]) IncrementalRun(touched []Var) []Var {
	ts := make([]Touched, len(touched))
	for i, x := range touched {
		ts[i] = Touched{X: x, MaybeInfeasible: true}
	}
	return e.IncrementalRunDelta(ts, nil)
}

// IncrementalRunDelta is IncrementalRun with per-variable feasibility
// hints (see Touched) and push seeds. A push seed is a variable whose
// outgoing contributions gained strength (e.g. the tail of an inserted
// edge): its own value is untouched and feasible, so the resumed step
// function merely re-propagates from it — for meet-form instances a plain
// relaxation — instead of fully re-evaluating the dependent's update
// function.
func (e *Engine[V]) IncrementalRunDelta(touched []Touched, pushSeeds []Var) []Var {
	start := time.Now()
	var before Stats
	if e.tracer != nil {
		before = e.st.Stats
		e.tracer.BeginRun(len(touched), len(pushSeeds))
	}
	led := &e.st.Stats.Ledger
	led.Runs++
	led.Touched += int64(len(touched))
	led.Seeds += int64(len(pushSeeds))
	led.RecomputeEst = int64(e.inst.NumVars())
	h0 := e.scopeFunction(touched)
	mid := time.Now()
	e.st.Stats.ScopeSize = int64(len(h0))
	if e.tracer != nil {
		d := e.st.Stats
		e.tracer.ScopeDone(d.HPops-before.HPops, d.HResets-before.HResets, int64(len(h0)))
	}
	resume0 := e.st.Stats
	for _, x := range h0 {
		e.recompute(x)
		e.wl.AddOrAdjust(x)
	}
	for _, x := range pushSeeds {
		e.ledgerAff(x)
		e.wl.AddOrAdjust(x)
	}
	e.dispatchDrain()
	e.ledgerSettle()
	if e.tracer != nil {
		d := e.st.Stats
		e.tracer.EndRun(d.Pops-resume0.Pops, d.Changes-resume0.Changes)
	}
	e.st.Stats.HSeconds += mid.Sub(start).Seconds()
	e.st.Stats.ResumeSeconds += time.Since(mid).Seconds()
	return h0
}

// scopeFunction implements h (Fig. 4). It processes potentially infeasible
// variables in the order <_C — ascending old timestamps — revising each
// variable whose old value is strictly below what its update function
// yields on a feasible version of its input set, and propagating along
// anchor edges (contributors), which always point from smaller to larger
// timestamps.
func (e *Engine[V]) scopeFunction(touched []Touched) []Var {
	st := e.st
	// st.TS is frozen while the queue drains — h defers its stamps to the
	// loop below — so <_C read by hGetFn/hEnqFn is the previous run's.
	que := e.hq
	e.epoch++
	e.chList = e.chList[:0] // drop first-write records of any prior epoch
	h0 := make([]Var, 0, len(touched)*2)
	addH0 := func(x Var) {
		if e.inScope[x] != e.epoch {
			e.inScope[x] = e.epoch
			// H⁰ members are the first entrants of the run's affected
			// area; charge |AFF| and ‖AFF‖ here (ledgerAff would see the
			// mark already set).
			st.Stats.Ledger.Aff++
			if e.deg != nil {
				st.Stats.Ledger.AffEdges += e.deg.OutDegree(x)
			}
			h0 = append(h0, x)
		}
	}
	for _, t := range touched {
		addH0(t.X)
		if t.MaybeInfeasible {
			que.AddOrAdjust(t.X)
		}
	}
	var revised []Var
	for {
		x, ok := que.Pop()
		if !ok {
			break
		}
		st.Stats.HPops++
		e.hx = x
		st.Stats.Updates++
		newv := e.inst.Update(x, e.hGetFn)
		if e.inst.Less(st.Val[x], newv) {
			// x's old value is potentially infeasible for G ⊕ ΔG: revise
			// it and inspect the variables it contributed to.
			e.ledgerWrite(x, st.Val[x])
			st.Val[x] = newv
			st.Stats.HResets++
			addH0(x)
			revised = append(revised, x)
			e.inst.Dependents(x, e.hEnqFn)
		}
	}
	// Stamp the revised variables now, in revision order: their values
	// were re-determined by h, and later rounds' anchor analysis must see
	// them as the youngest determinations. Stamping after the loop keeps
	// the order <_C frozen while h runs.
	for _, x := range revised {
		st.clock++
		st.TS[x] = st.clock
	}
	return h0
}

// Fixpoint reports whether the current status is a fixpoint: every
// variable equals its update function applied to the current values. It
// costs a full pass and is meant for tests.
func (e *Engine[V]) Fixpoint() bool {
	for x := 0; x < e.inst.NumVars(); x++ {
		v := e.inst.Update(Var(x), func(y Var) V { return e.st.Val[y] })
		if !e.inst.Equal(v, e.st.Val[x]) {
			return false
		}
	}
	return true
}
