package fixpoint

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const inf = int64(math.MaxInt64 / 4)

// minPlus is a test instance: single-source shortest paths in min-plus
// form over an explicit adjacency structure. It is the engine-level
// analogue of the paper's Fig. 1 algorithm.
type minPlus struct {
	src Var
	out [][]arc // out[u] = arcs (u -> to, w)
	in  [][]arc // in[v] = arcs (from -> v, w), from stored in to field
}

type arc struct {
	to Var
	w  int64
}

func newMinPlus(n int, src Var) *minPlus {
	return &minPlus{src: src, out: make([][]arc, n), in: make([][]arc, n)}
}

func (m *minPlus) addEdge(u, v Var, w int64) {
	m.out[u] = append(m.out[u], arc{v, w})
	m.in[v] = append(m.in[v], arc{u, w})
}

func (m *minPlus) delEdge(u, v Var) {
	rm := func(s []arc, t Var) []arc {
		for i, a := range s {
			if a.to == t {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	m.out[u] = rm(m.out[u], v)
	m.in[v] = rm(m.in[v], u)
}

func (m *minPlus) NumVars() int { return len(m.out) }
func (m *minPlus) Bottom(x Var) int64 {
	if x == m.src {
		return 0
	}
	return inf
}
func (m *minPlus) Less(a, b int64) bool  { return a < b }
func (m *minPlus) Equal(a, b int64) bool { return a == b }
func (m *minPlus) Inputs(x Var, yield func(Var)) {
	for _, a := range m.in[x] {
		yield(a.to)
	}
}
func (m *minPlus) Dependents(x Var, yield func(Var)) {
	for _, a := range m.out[x] {
		yield(a.to)
	}
}
func (m *minPlus) Update(x Var, get func(Var) int64) int64 {
	if x == m.src {
		return 0
	}
	best := inf
	for _, a := range m.in[x] {
		if d := get(a.to); d < inf && d+a.w < best {
			best = d + a.w
		}
	}
	return best
}
func (m *minPlus) Seeds(yield func(Var)) { yield(m.src) }

// paperGraph reconstructs the graph of the paper's Fig. 2(a) (weights
// recovered from the values and anchor sets of Fig. 3(a)). Source is 0.
func paperGraph() *minPlus {
	m := newMinPlus(8, 0)
	m.addEdge(0, 2, 1)
	m.addEdge(2, 1, 4)
	m.addEdge(2, 5, 1)
	m.addEdge(5, 6, 1) // deleted by ΔG
	m.addEdge(1, 4, 1)
	m.addEdge(4, 3, 1)
	m.addEdge(6, 7, 1)
	m.addEdge(2, 7, 4)
	m.addEdge(4, 6, 4)
	m.addEdge(3, 1, 1)
	return m
}

func TestBatchMatchesPaperExample3(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	want := []int64{0, 5, 1, 7, 6, 2, 3, 4} // Fig. 3(a), column G
	got := e.State().Val
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch values %v, want %v", got, want)
	}
	if !e.Fixpoint() {
		t.Fatal("not a fixpoint")
	}
}

func TestIncrementalMatchesPaperExample4(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()

	// ΔG: delete edge (5,6), insert edge (5,3) with weight 1.
	m.delEdge(5, 6)
	m.addEdge(5, 3, 1)

	// Input sets evolved for destination nodes 6 and 3 (Example 4).
	h0 := e.IncrementalRun([]Var{6, 3})

	want := []int64{0, 4, 1, 3, 5, 2, 9, 5} // Fig. 3(a), column G ⊕ ΔG
	if !reflect.DeepEqual(e.State().Val, want) {
		t.Fatalf("incremental values %v, want %v", e.State().Val, want)
	}
	// Example 4: h returns H⁰ = {x3, x6, x7}.
	set := map[Var]bool{}
	for _, x := range h0 {
		set[x] = true
	}
	if len(set) != 3 || !set[3] || !set[6] || !set[7] {
		t.Fatalf("H0 = %v, want {3,6,7}", h0)
	}
	if !e.Fixpoint() {
		t.Fatal("incremental result is not a fixpoint")
	}
}

func TestIncrementalEqualsFreshBatch(t *testing.T) {
	// Correctness equation over random graphs and random update batches:
	// the incremental run must land on the same fixpoint as a from-scratch
	// batch run on the updated structure.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		m := newMinPlus(n, 0)
		type edge struct{ u, v Var }
		present := map[edge]bool{}
		for i := 0; i < 120; i++ {
			u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
			if u == v || present[edge{u, v}] {
				continue
			}
			present[edge{u, v}] = true
			m.addEdge(u, v, int64(rng.Intn(20)+1))
		}
		e := New[int64](m, PriorityOrder)
		e.Run()

		touched := map[Var]bool{}
		// Random ΔG: ~12 deletions and insertions.
		for i := 0; i < 12; i++ {
			u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
			if u == v {
				continue
			}
			if present[edge{u, v}] {
				delete(present, edge{u, v})
				m.delEdge(u, v)
			} else {
				present[edge{u, v}] = true
				m.addEdge(u, v, int64(rng.Intn(20)+1))
			}
			touched[v] = true
		}
		var tl []Var
		for x := range touched {
			tl = append(tl, x)
		}
		e.IncrementalRun(tl)

		fresh := New[int64](m, PriorityOrder)
		fresh.Run()
		return reflect.DeepEqual(e.State().Val, fresh.State().Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessiveIncrementalRounds(t *testing.T) {
	// Timestamps written by one incremental round must support the next
	// (weak deducibility is stateful across rounds).
	rng := rand.New(rand.NewSource(11))
	const n = 30
	m := newMinPlus(n, 0)
	type edge struct{ u, v Var }
	present := map[edge]bool{}
	add := func(u, v Var, w int64) {
		if u != v && !present[edge{u, v}] {
			present[edge{u, v}] = true
			m.addEdge(u, v, w)
		}
	}
	for i := 0; i < 90; i++ {
		add(Var(rng.Intn(n)), Var(rng.Intn(n)), int64(rng.Intn(15)+1))
	}
	e := New[int64](m, PriorityOrder)
	e.Run()
	for round := 0; round < 25; round++ {
		touched := map[Var]bool{}
		for i := 0; i < 5; i++ {
			u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
			if u == v {
				continue
			}
			if present[edge{u, v}] {
				delete(present, edge{u, v})
				m.delEdge(u, v)
			} else {
				present[edge{u, v}] = true
				m.addEdge(u, v, int64(rng.Intn(15)+1))
			}
			touched[v] = true
		}
		var tl []Var
		for x := range touched {
			tl = append(tl, x)
		}
		e.IncrementalRun(tl)
		fresh := New[int64](m, PriorityOrder)
		fresh.Run()
		if !reflect.DeepEqual(e.State().Val, fresh.State().Val) {
			t.Fatalf("round %d: incremental %v != batch %v", round, e.State().Val, fresh.State().Val)
		}
	}
}

func TestLemma2ChurchRosser(t *testing.T) {
	// From any feasible status (values between final and bottom) with a
	// valid scope, ResumeFrom converges to the same fixpoint.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 25
		m := newMinPlus(n, 0)
		for i := 0; i < 80; i++ {
			u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
			if u != v {
				m.addEdge(u, v, int64(rng.Intn(10)+1))
			}
		}
		e := New[int64](m, PriorityOrder)
		e.Run()
		final := append([]int64(nil), e.State().Val...)

		// Perturb upward: reset a random subset to bottom (feasible), and
		// seed the scope with every variable (trivially valid).
		for x := 0; x < n; x++ {
			if rng.Intn(3) == 0 {
				e.State().Val[x] = m.Bottom(Var(x))
			}
		}
		scope := make([]Var, n)
		for i := range scope {
			scope[i] = Var(i)
		}
		e.ResumeFrom(scope)
		return reflect.DeepEqual(e.State().Val, final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeBoundednessOnPath(t *testing.T) {
	// On a long path, a weight change near the end must be repaired by
	// inspecting only the affected suffix, not the whole graph.
	const n = 10000
	m := newMinPlus(n, 0)
	for i := 0; i+1 < n; i++ {
		m.addEdge(Var(i), Var(i+1), 1)
	}
	e := New[int64](m, PriorityOrder)
	e.Run()
	batchInspected := e.State().Stats.Inspected()

	// Raise the weight of an edge 20 hops from the end.
	cut := Var(n - 21)
	m.delEdge(cut, cut+1)
	m.addEdge(cut, cut+1, 5)
	before := e.State().Stats
	e.IncrementalRun([]Var{cut + 1})
	incInspected := e.State().Stats.Inspected() - before.Inspected()

	if incInspected*20 > batchInspected {
		t.Fatalf("incremental inspected %d, batch %d: not bounded by affected area",
			incInspected, batchInspected)
	}
	if e.State().Val[n-1] != int64(n-1)+4 {
		t.Fatalf("distance wrong after repair: %d", e.State().Val[n-1])
	}
}

func TestFIFOPolicyMinLabel(t *testing.T) {
	// CC-style min-label propagation under FIFO converges to component
	// minima. Instance: undirected edges, Update = min(own id, neighbors).
	n := 10
	adj := make([][]Var, n)
	connect := func(u, v Var) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	connect(0, 1)
	connect(1, 2)
	connect(3, 4)
	connect(5, 6)
	connect(6, 7)
	connect(7, 5)
	inst := &minLabel{adj: adj}
	e := New[int64](inst, FIFOOrder)
	e.Run()
	want := []int64{0, 0, 0, 3, 3, 5, 5, 5, 8, 9}
	if !reflect.DeepEqual(e.State().Val, want) {
		t.Fatalf("components %v, want %v", e.State().Val, want)
	}
}

type minLabel struct{ adj [][]Var }

func (m *minLabel) NumVars() int          { return len(m.adj) }
func (m *minLabel) Bottom(x Var) int64    { return int64(x) }
func (m *minLabel) Less(a, b int64) bool  { return a < b }
func (m *minLabel) Equal(a, b int64) bool { return a == b }
func (m *minLabel) Inputs(x Var, yield func(Var)) {
	for _, y := range m.adj[x] {
		yield(y)
	}
}
func (m *minLabel) Dependents(x Var, yield func(Var)) { m.Inputs(x, yield) }
func (m *minLabel) Update(x Var, get func(Var) int64) int64 {
	best := int64(x)
	for _, y := range m.adj[x] {
		if v := get(y); v < best {
			best = v
		}
	}
	return best
}
func (m *minLabel) Seeds(yield func(Var)) {
	for x := range m.adj {
		yield(Var(x))
	}
}

// pushMinPlus adds the meet-form fast path to minPlus, exercising the
// engine's push-based drain.
type pushMinPlus struct{ *minPlus }

func (m pushMinPlus) RelaxOut(x Var, xv int64, emit func(Var, int64)) {
	if xv >= inf {
		return
	}
	for _, a := range m.out[x] {
		emit(a.to, xv+a.w)
	}
}

func TestPushModeMatchesPullMode(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 35
		build := func() *minPlus {
			r := rand.New(rand.NewSource(seed))
			m := newMinPlus(n, 0)
			for i := 0; i < 110; i++ {
				u, v := Var(r.Intn(n)), Var(r.Intn(n))
				if u != v {
					m.addEdge(u, v, int64(r.Intn(20)+1))
				}
			}
			return m
		}
		pull := New[int64](build(), PriorityOrder)
		pull.Run()
		mp := build()
		push := New[int64](pushMinPlus{mp}, PriorityOrder)
		push.Run()
		if !reflect.DeepEqual(pull.State().Val, push.State().Val) {
			t.Fatalf("seed %d: push batch != pull batch", seed)
		}
		// And incrementally, across several rounds of random updates.
		mpull := build()
		epull := New[int64](mpull, PriorityOrder)
		epull.Run()
		for round := 0; round < 6; round++ {
			var touched []Var
			for i := 0; i < 6; i++ {
				u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
				if u == v {
					continue
				}
				w := int64(rng.Intn(20) + 1)
				has := false
				for _, a := range mpull.out[u] {
					if a.to == v {
						has = true
						break
					}
				}
				if has {
					mpull.delEdge(u, v)
					mp.delEdge(u, v)
				} else {
					mpull.addEdge(u, v, w)
					mp.addEdge(u, v, w)
				}
				touched = append(touched, v)
			}
			epull.IncrementalRun(touched)
			push.IncrementalRun(touched)
			if !reflect.DeepEqual(epull.State().Val, push.State().Val) {
				t.Fatalf("seed %d round %d: push inc != pull inc", seed, round)
			}
			if !push.Fixpoint() {
				t.Fatalf("seed %d round %d: push inc not a fixpoint", seed, round)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	s := e.State().Stats
	if s.Updates == 0 || s.Reads == 0 || s.Pops == 0 || s.Changes == 0 {
		t.Fatalf("stats not recorded: %+v", s)
	}
	if s.Inspected() != s.Reads+s.Updates+s.Pops+s.HPops {
		t.Fatal("Inspected mismatch")
	}
}

func TestEmptyIncrementalRun(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	vals := append([]int64(nil), e.State().Val...)
	h0 := e.IncrementalRun(nil)
	if len(h0) != 0 {
		t.Fatalf("empty ΔG produced H0 = %v", h0)
	}
	if !reflect.DeepEqual(vals, e.State().Val) {
		t.Fatal("empty ΔG changed values")
	}
}
