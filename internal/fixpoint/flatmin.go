package fixpoint

// flatmin.go: branch-free meet for the int64 min-semilattices that back
// the shortest-path and label-propagation instances. The relaxer inner
// loop runs this per edge; a data-dependent branch there mispredicts on
// the irregular frontiers incremental repair produces, so the meet is
// computed with a sign-mask select instead.

// MinInt64 returns the smaller of a and b without a conditional branch,
// using the sign of the difference as a select mask (dgryski's fastMin).
//
// Precondition: b-a must not overflow int64. All callers in this module
// keep values in [0, graph.Infinity] with Infinity = MaxInt64/4, so any
// sum of a value and an edge weight stays far from the overflow boundary.
func MinInt64(a, b int64) int64 {
	d := b - a
	return a + (d & (d >> 63))
}

// MaxInt64 returns the larger of a and b without a conditional branch,
// under the same no-overflow precondition as MinInt64.
func MaxInt64(a, b int64) int64 {
	d := b - a
	return b - (d & (d >> 63))
}
