package fixpoint

import (
	"testing"
	"testing/quick"
)

// naive reference implementations for the equivalence check.
func slowMin(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func slowMax(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestMinInt64Quick is the testing/quick equivalence test from the fastMin
// idiom: mask the inputs into the documented no-overflow domain and check
// the branch-free select against the naive conditional.
func TestMinInt64Quick(t *testing.T) {
	const mask = int64(1<<62 - 1) // keep |b-a| < 2^63
	minEq := func(a, b int64) bool {
		a, b = a&mask, b&mask
		return MinInt64(a, b) == slowMin(a, b)
	}
	maxEq := func(a, b int64) bool {
		a, b = a&mask, b&mask
		return MaxInt64(a, b) == slowMax(a, b)
	}
	cfg := &quick.Config{MaxCount: 10000}
	if err := quick.Check(minEq, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(maxEq, cfg); err != nil {
		t.Error(err)
	}
}

// TestMinInt64Negatives pins the negative-operand cases the mask above
// under-samples: differences of small negatives never overflow, so the
// select must still agree with the conditional.
func TestMinInt64Negatives(t *testing.T) {
	cases := [][2]int64{{-5, 3}, {3, -5}, {-5, -9}, {-9, -5}, {0, 0}, {-1, -1}}
	for _, c := range cases {
		if got, want := MinInt64(c[0], c[1]), slowMin(c[0], c[1]); got != want {
			t.Errorf("MinInt64(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
		if got, want := MaxInt64(c[0], c[1]), slowMax(c[0], c[1]); got != want {
			t.Errorf("MaxInt64(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

var sinkInt64 int64

func BenchmarkMinInt64(b *testing.B) {
	x, y := int64(12345), int64(6789)
	for i := 0; i < b.N; i++ {
		sinkInt64 = MinInt64(x, sinkInt64) + MinInt64(y, int64(i))
	}
}

func BenchmarkMinBranchy(b *testing.B) {
	x, y := int64(12345), int64(6789)
	for i := 0; i < b.N; i++ {
		sinkInt64 = slowMin(x, sinkInt64) + slowMin(y, int64(i))
	}
}
