package fixpoint

// indexedHeap is a binary min-heap over Vars with an external comparator
// and position tracking, supporting addOrAdjust (decrease/increase-key).
// It backs both the priority worklist of the step function (ordered by
// current variable value) and the queue of the initial scope function h
// (ordered by old timestamps, the order <_C).
type indexedHeap struct {
	less  func(a, b Var) bool
	items []Var
	pos   []int32 // pos[v] = index in items, -1 if absent
}

func newIndexedHeap(n int, less func(a, b Var) bool) *indexedHeap {
	h := &indexedHeap{less: less, pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *indexedHeap) Len() int { return len(h.items) }

func (h *indexedHeap) Contains(x Var) bool { return h.pos[x] >= 0 }

// Grow extends the handle space to n variables.
func (h *indexedHeap) Grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

// AddOrAdjust inserts x or restores heap order after x's key changed.
func (h *indexedHeap) AddOrAdjust(x Var) {
	if h.pos[x] < 0 {
		h.pos[x] = int32(len(h.items))
		h.items = append(h.items, x)
		h.up(int(h.pos[x]))
		return
	}
	i := int(h.pos[x])
	if !h.up(i) {
		h.down(i)
	}
}

// Pop removes and returns the minimum element.
func (h *indexedHeap) Pop() (Var, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top, true
}

func (h *indexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *indexedHeap) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

func (h *indexedHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && h.less(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// fifo is a FIFO worklist with membership bits, for step functions whose
// convergence does not benefit from value ordering (CC, Sim).
type fifo struct {
	q  []Var
	in []bool
}

func newFifo(n int) *fifo { return &fifo{in: make([]bool, n)} }

func (f *fifo) Len() int { return len(f.q) }

// Grow extends the handle space to n variables.
func (f *fifo) Grow(n int) {
	for len(f.in) < n {
		f.in = append(f.in, false)
	}
}

func (f *fifo) AddOrAdjust(x Var) {
	if !f.in[x] {
		f.in[x] = true
		f.q = append(f.q, x)
	}
}

func (f *fifo) Pop() (Var, bool) {
	if len(f.q) == 0 {
		return 0, false
	}
	x := f.q[0]
	f.q = f.q[1:]
	f.in[x] = false
	return x, true
}

// worklist abstracts the scope H of the step function.
type worklist interface {
	Len() int
	AddOrAdjust(x Var)
	Pop() (Var, bool)
	Grow(n int)
}
