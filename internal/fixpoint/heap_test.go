package fixpoint

import (
	"math/rand"
	"sort"
	"testing"
)

func TestIndexedHeapOrdering(t *testing.T) {
	keys := []int64{5, 3, 8, 1, 9, 2, 7}
	h := newIndexedHeap(len(keys), func(a, b Var) bool { return keys[a] < keys[b] })
	for i := range keys {
		h.AddOrAdjust(Var(i))
	}
	var got []int64
	for {
		x, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, keys[x])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("pop order not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("popped %d items, want %d", len(got), len(keys))
	}
}

func TestIndexedHeapAdjust(t *testing.T) {
	keys := []int64{10, 20, 30}
	h := newIndexedHeap(3, func(a, b Var) bool { return keys[a] < keys[b] })
	for i := range keys {
		h.AddOrAdjust(Var(i))
	}
	keys[2] = 1 // decrease-key
	h.AddOrAdjust(2)
	if x, _ := h.Pop(); x != 2 {
		t.Fatalf("decrease-key not honored, popped %d", x)
	}
	keys[0] = 99 // increase-key
	h.AddOrAdjust(0)
	if x, _ := h.Pop(); x != 1 {
		t.Fatalf("increase-key not honored, popped %d", x)
	}
	if !h.Contains(0) || h.Contains(1) {
		t.Fatal("Contains wrong")
	}
}

func TestIndexedHeapDuplicatesIgnored(t *testing.T) {
	keys := []int64{4, 2}
	h := newIndexedHeap(2, func(a, b Var) bool { return keys[a] < keys[b] })
	h.AddOrAdjust(0)
	h.AddOrAdjust(0)
	h.AddOrAdjust(1)
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

func TestIndexedHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	keys := make([]int64, n)
	h := newIndexedHeap(n, func(a, b Var) bool { return keys[a] < keys[b] })
	live := map[Var]bool{}
	for op := 0; op < 5000; op++ {
		x := Var(rng.Intn(n))
		switch rng.Intn(3) {
		case 0, 1:
			keys[x] = int64(rng.Intn(1000))
			h.AddOrAdjust(x)
			live[x] = true
		case 2:
			if y, ok := h.Pop(); ok {
				// y must be minimal among live items.
				for z := range live {
					if z != y && keys[z] < keys[y] {
						t.Fatalf("popped %d (key %d) but %d has key %d", y, keys[y], z, keys[z])
					}
				}
				delete(live, y)
			}
		}
	}
}

func TestFifoOrder(t *testing.T) {
	f := newFifo(5)
	f.AddOrAdjust(3)
	f.AddOrAdjust(1)
	f.AddOrAdjust(3) // duplicate ignored
	f.AddOrAdjust(4)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	want := []Var{3, 1, 4}
	for _, w := range want {
		x, ok := f.Pop()
		if !ok || x != w {
			t.Fatalf("popped %d, want %d", x, w)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	// Re-adding after pop works.
	f.AddOrAdjust(1)
	if x, ok := f.Pop(); !ok || x != 1 {
		t.Fatal("re-add after pop failed")
	}
}
