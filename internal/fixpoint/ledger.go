package fixpoint

// This file implements the engine's work ledger: per-run accounting of the
// quantities relative boundedness (§4, Theorem 3) is a statement about.
// Stats counts raw inspections; the ledger counts the *sets* the theorem
// bounds — |CHANGED|, |AFF|, ‖AFF‖ — plus the round structure of the
// resumed step function, so a serving layer can attribute every apply's
// cost to the paper's cost model and flag updates whose work is not a
// function of |ΔG| and |AFF|.
//
// Accounting is allocation-free: membership of the AFF and CHANGED sets is
// tracked with epoch-mark arrays allocated once at engine construction
// (the same idiom the scope function already uses for H⁰ dedup), first-write
// old values land in a preallocated shadow array, and every counter bump
// rides an existing hot-path branch. The nil-tracer zero-allocation
// guarantee is preserved and guarded by TestLedgerZeroAlloc.
//
// CHANGED is settled *after* the drain, as {x : D_final(x) ≠ D_start(x)}:
// counting installs as they happen would charge variables that move
// transiently and return to their starting value, and which variables do
// that depends on the propagation schedule (Gauss–Seidel pop order vs
// Jacobi round snapshots). The final-vs-start definition is the paper's
// CHANGED and is schedule-independent, so sequential and parallel drains
// produce bit-identical ledgers (guarded by TestLedgerSeqParBitIdentical).

// WorkLedger is the per-run work account of the deduced incremental
// algorithm, attached to Stats. All fields except RecomputeEst are
// cumulative counters across runs; serve-layer snapshots isolate per-apply
// deltas with Sub/Add exactly as they do for the rest of Stats.
//
// Changed, Aff, and AffEdges are schedule-independent for contracting and
// monotonic instances: the set of variables the resumed step function
// moves (and hence the affected set and its incident edges) is determined
// by the revised status D⁰ and the unique fixpoint, not by the order of
// propagation, so sequential and parallel drains produce identical values.
// Rounds is deterministic for a fixed worker count but depends on the
// round decomposition (Gauss–Seidel pops vs Jacobi snapshots differ);
// Portable strips it for cross-schedule comparison.
type WorkLedger struct {
	// Runs counts incremental runs folded into this ledger.
	Runs int64 `json:"runs"`
	// Delta is Σ|ΔG| — net graph updates behind the runs. The engine does
	// not see the graph delta; the serving adapters fill this in.
	Delta int64 `json:"delta"`
	// Touched is Σ of touched-variable counts handed to the runs (line 1
	// of Fig. 4), and Seeds the Σ of push-seed counts.
	Touched int64 `json:"touched"`
	Seeds   int64 `json:"seeds"`
	// Changed is |CHANGED| summed over runs: distinct variables whose
	// value at the end of the run differs from their value when the run
	// began. Transient moves that settle back are not counted — that makes
	// the field a property of the fixpoint, not of the schedule.
	Changed int64 `json:"changed"`
	// Aff is |AFF| summed over runs: distinct variables entering the
	// affected area (H⁰ ∪ push seeds ∪ CHANGED).
	Aff int64 `json:"aff"`
	// AffEdges is ‖AFF‖ summed over runs: dependency edges incident to
	// the affected variables, counted once per variable on first entry.
	// Zero when the instance does not implement OutDegreer.
	AffEdges int64 `json:"aff_edges"`
	// Rounds counts propagation rounds to fixpoint across all drains
	// (BFS-level decomposition; batch runs included).
	Rounds int64 `json:"rounds"`
	// RecomputeEst estimates the cost of recomputing from scratch instead
	// (variables + dependency edges of the current graph). Gauge-like:
	// Sub/Add keep the most recent value. The engine fills in its variable
	// count; adapters overwrite with nodes+edges of the graph.
	RecomputeEst int64 `json:"recompute_est"`
}

// Work returns the ledger's incremental-cost measure: affected variables
// plus their incident edges plus the touched set — the f(|ΔG|, ‖AFF‖)
// term of Theorem 3 that a bounded incremental run's cost must track.
func (l WorkLedger) Work() int64 { return l.Touched + l.Aff + l.AffEdges }

// BoundedRatio returns Work / Delta, the per-update boundedness quotient a
// dashboard alerts on: how much incremental work each unit of graph change
// caused. Returns 0 when no graph delta was recorded.
func (l WorkLedger) BoundedRatio() float64 {
	if l.Delta <= 0 {
		return 0
	}
	return float64(l.Work()) / float64(l.Delta)
}

// RecomputeRatio returns Work / RecomputeEst, the fraction of a
// from-scratch recomputation this ledger's work amounts to. Values near or
// above 1 mean incrementalization bought nothing. Returns 0 when no
// recompute estimate is recorded.
func (l WorkLedger) RecomputeRatio() float64 {
	if l.RecomputeEst <= 0 {
		return 0
	}
	return float64(l.Work()) / float64(l.RecomputeEst)
}

// Portable returns the ledger with schedule-dependent fields (Rounds)
// zeroed, leaving exactly the counters that are bit-identical between
// sequential and parallel drains of the same runs. The differential tests
// compare Portable ledgers across schedules and full ledgers across
// repeated runs at a fixed worker count.
func (l WorkLedger) Portable() WorkLedger {
	l.Rounds = 0
	return l
}

// Sub returns the counter-wise difference l − o, isolating the work of
// the span between two snapshots of the same cumulative ledger.
// RecomputeEst is gauge-like and keeps the newer snapshot's value.
func (l WorkLedger) Sub(o WorkLedger) WorkLedger {
	return WorkLedger{
		Runs:         l.Runs - o.Runs,
		Delta:        l.Delta - o.Delta,
		Touched:      l.Touched - o.Touched,
		Seeds:        l.Seeds - o.Seeds,
		Changed:      l.Changed - o.Changed,
		Aff:          l.Aff - o.Aff,
		AffEdges:     l.AffEdges - o.AffEdges,
		Rounds:       l.Rounds - o.Rounds,
		RecomputeEst: l.RecomputeEst,
	}
}

// Add returns the counter-wise sum l + o, for aggregating per-run deltas
// into a running total. RecomputeEst takes o's (most recent) value.
func (l WorkLedger) Add(o WorkLedger) WorkLedger {
	return WorkLedger{
		Runs:         l.Runs + o.Runs,
		Delta:        l.Delta + o.Delta,
		Touched:      l.Touched + o.Touched,
		Seeds:        l.Seeds + o.Seeds,
		Changed:      l.Changed + o.Changed,
		Aff:          l.Aff + o.Aff,
		AffEdges:     l.AffEdges + o.AffEdges,
		Rounds:       l.Rounds + o.Rounds,
		RecomputeEst: o.RecomputeEst,
	}
}

// OutDegreer is an optional Instance extension reporting the number of
// dependency edges leaving a variable in the current graph. When
// implemented, the engine charges each variable's out-degree to the
// ledger's AffEdges (‖AFF‖) the first time the variable enters the
// affected area; without it AffEdges stays 0 and Work degrades to
// Touched + |AFF|. OutDegree must be O(1) — it runs on the hot path.
type OutDegreer interface {
	OutDegree(x Var) int64
}

// ledgerAff records x's first entry into the current run's affected area:
// |AFF| grows by one and ‖AFF‖ by x's out-degree. Membership rides the
// same epoch-mark array the scope function uses for H⁰ dedup — H⁰
// variables are entered by addH0 itself — so the check is one array read.
func (e *Engine[V]) ledgerAff(x Var) {
	if e.inScope[x] == e.epoch {
		return
	}
	e.inScope[x] = e.epoch
	e.st.Stats.Ledger.Aff++
	if e.deg != nil {
		e.st.Stats.Ledger.AffEdges += e.deg.OutDegree(x)
	}
}

// ledgerWrite records a value write at x, capturing its pre-write value the
// first time x is written this run — i.e. its run-start value, which
// ledgerSettle compares against the fixpoint. Runs on every
// install/recompute change, so it is branch-first and allocation-free
// (chList is preallocated to one slot per variable; a run writes each
// variable's first-write entry at most once). During the initial batch run
// the epoch is 0 and the marks match, so batch writes are not recorded.
func (e *Engine[V]) ledgerWrite(x Var, old V) {
	if e.chMark[x] == e.epoch {
		return
	}
	e.chMark[x] = e.epoch
	e.chOld[x] = old
	e.chList = append(e.chList, x)
}

// ledgerSettle runs after the drain reaches the fixpoint: every written
// variable whose final value differs from its run-start value is CHANGED
// (and therefore AFF). The sweep costs O(written variables) — bounded by
// the drain's own work — and allocates nothing.
func (e *Engine[V]) ledgerSettle() {
	for _, x := range e.chList {
		if !e.inst.Equal(e.st.Val[x], e.chOld[x]) {
			e.st.Stats.Ledger.Changed++
			e.ledgerAff(x)
		}
	}
	e.chList = e.chList[:0]
}
