package fixpoint

import (
	"math/rand"
	"reflect"
	"testing"
)

// OutDegree makes the test instances degree-aware (fixpoint.OutDegreer),
// so the ledger's ‖AFF‖ accounting is exercised on every engine the tests
// build. pushMinPlus inherits it by embedding.
func (m *minPlus) OutDegree(x Var) int64 { return int64(len(m.out[x])) }

func (m *minLabel) OutDegree(x Var) int64 { return int64(len(m.adj[x])) }

// affSet reads the engine's epoch marks back out: the exact AFF membership
// of the most recent incremental run and the set of variables written
// during it (a superset of CHANGED — transient writes that settle back are
// marked but not charged). White-box — the marks are the accounting's
// source of truth, so comparing the counters against the mark sets closes
// the loop.
func affSet[V any](e *Engine[V]) (aff, written map[Var]bool) {
	aff, written = map[Var]bool{}, map[Var]bool{}
	for x := range e.inScope {
		if e.inScope[x] == e.epoch {
			aff[Var(x)] = true
		}
		if e.chMark[x] == e.epoch {
			written[Var(x)] = true
		}
	}
	return aff, written
}

// TestLedgerPaperExample anchors the ledger on the worked example of the
// paper (Fig. 2/3, Example 4): delete (5,6), insert (5,3). The affected
// area must contain H⁰ = {3, 6, 7} plus everything that changed, and the
// counters must equal the mark sets exactly.
func TestLedgerPaperExample(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	if led := e.State().Stats.Ledger; led.Runs != 0 || led.Aff != 0 || led.Changed != 0 {
		t.Fatalf("batch run charged the incremental ledger: %+v", led)
	}
	pre := append([]int64(nil), e.State().Val...)

	m.delEdge(5, 6)
	m.addEdge(5, 3, 1)
	before := e.State().Stats
	e.IncrementalRun([]Var{6, 3})
	led := e.State().Stats.Sub(before).Ledger

	if led.Runs != 1 || led.Touched != 2 {
		t.Fatalf("runs/touched: %+v", led)
	}
	aff, _ := affSet(e)
	if int64(len(aff)) != led.Aff {
		t.Fatalf("Aff %d != mark set %d", led.Aff, len(aff))
	}
	var wantEdges int64
	for x := range aff {
		wantEdges += int64(len(m.out[x]))
	}
	if led.AffEdges != wantEdges {
		t.Fatalf("AffEdges %d, want %d", led.AffEdges, wantEdges)
	}
	// CHANGED is exactly the externally visible diff, and every change is
	// inside AFF; H⁰ ⊆ AFF.
	diffs := int64(0)
	for x, v := range e.State().Val {
		if v != pre[x] {
			diffs++
			if !aff[Var(x)] {
				t.Fatalf("var %d changed outside AFF", x)
			}
		}
	}
	if led.Changed != diffs {
		t.Fatalf("Changed %d != visible diff %d", led.Changed, diffs)
	}
	for _, x := range []Var{3, 6, 7} {
		if !aff[x] {
			t.Fatalf("H⁰ member %d not in AFF", x)
		}
	}
	if led.Rounds < 1 {
		t.Fatalf("Rounds = %d, want >= 1", led.Rounds)
	}
	if led.RecomputeEst != int64(m.NumVars()) {
		t.Fatalf("RecomputeEst = %d, want %d", led.RecomputeEst, m.NumVars())
	}
	if w := led.Work(); w != led.Touched+led.Aff+led.AffEdges {
		t.Fatalf("Work = %d", w)
	}
}

// TestLedgerDifferentialRandom is the engine-level differential test:
// across random graphs, update streams, push/pull propagation and both
// policies, the ledger's counters must equal the instrumented mark sets,
// and every variable whose value changed must be inside AFF.
func TestLedgerDifferentialRandom(t *testing.T) {
	const n = 40
	type variant struct {
		name   string
		policy Policy
		push   bool
	}
	for _, vt := range []variant{
		{"pull-priority", PriorityOrder, false},
		{"pull-fifo", FIFOOrder, false},
		{"push-priority", PriorityOrder, true},
		{"push-fifo", FIFOOrder, true},
	} {
		t.Run(vt.name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				r := rand.New(rand.NewSource(seed))
				m := newMinPlus(n, 0)
				for i := 0; i < 130; i++ {
					u, v := Var(r.Intn(n)), Var(r.Intn(n))
					if u != v {
						m.addEdge(u, v, int64(r.Intn(20)+1))
					}
				}
				var e *Engine[int64]
				if vt.push {
					e = New[int64](pushMinPlus{m}, vt.policy)
				} else {
					e = New[int64](m, vt.policy)
				}
				e.Run()
				rng := rand.New(rand.NewSource(seed + 500))
				for round := 0; round < 6; round++ {
					pre := append([]int64(nil), e.State().Val...)
					touched := applyRandomDelta(rng, n, 6, m)
					before := e.State().Stats
					e.IncrementalRun(touched)
					led := e.State().Stats.Sub(before).Ledger

					aff, written := affSet(e)
					if int64(len(aff)) != led.Aff {
						t.Fatalf("seed %d round %d: Aff %d vs mark set %d",
							seed, round, led.Aff, len(aff))
					}
					var wantEdges int64
					for x := range aff {
						wantEdges += int64(len(m.out[x]))
					}
					if led.AffEdges != wantEdges {
						t.Fatalf("seed %d round %d: AffEdges %d, want %d", seed, round, led.AffEdges, wantEdges)
					}
					diffs := int64(0)
					for x, v := range e.State().Val {
						if v != pre[x] {
							diffs++
							if !aff[Var(x)] {
								t.Fatalf("seed %d round %d: var %d changed outside AFF", seed, round, x)
							}
							if !written[Var(x)] {
								t.Fatalf("seed %d round %d: var %d changed without a recorded write", seed, round, x)
							}
						}
					}
					if led.Changed != diffs {
						t.Fatalf("seed %d round %d: Changed %d != visible diff %d", seed, round, led.Changed, diffs)
					}
					if led.Changed > int64(len(written)) {
						t.Fatalf("seed %d round %d: Changed %d exceeds written set %d", seed, round, led.Changed, len(written))
					}
					if !e.Fixpoint() {
						t.Fatalf("seed %d round %d: not a fixpoint", seed, round)
					}
				}
			}
		})
	}
}

// TestLedgerSeqParBitIdentical: the schedule-independent ledger — Portable
// strips only Rounds, whose BFS decomposition legitimately differs between
// Gauss–Seidel and Jacobi drains — must be bit-identical between a
// sequential engine and WithWorkers engines, cumulatively across an update
// stream, for push and pull propagation under both policies.
func TestLedgerSeqParBitIdentical(t *testing.T) {
	const n = 40
	type variant struct {
		name   string
		policy Policy
		push   bool
	}
	for _, vt := range []variant{
		{"pull-priority", PriorityOrder, false},
		{"pull-fifo", FIFOOrder, false},
		{"push-priority", PriorityOrder, true},
		{"push-fifo", FIFOOrder, true},
	} {
		t.Run(vt.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				build := func() *minPlus {
					r := rand.New(rand.NewSource(seed))
					m := newMinPlus(n, 0)
					for i := 0; i < 130; i++ {
						u, v := Var(r.Intn(n)), Var(r.Intn(n))
						if u != v {
							m.addEdge(u, v, int64(r.Intn(20)+1))
						}
					}
					return m
				}
				gs, gp := build(), build()
				mk := func(m *minPlus, opts ...Option) *Engine[int64] {
					if vt.push {
						return New[int64](pushMinPlus{m}, vt.policy, opts...)
					}
					return New[int64](m, vt.policy, opts...)
				}
				seq := mk(gs)
				par := mk(gp, WithWorkers(3), WithParThreshold(1))
				seq.Run()
				par.Run()
				rng := rand.New(rand.NewSource(seed + 99))
				for round := 0; round < 5; round++ {
					touched := applyRandomDelta(rng, n, 8, gs, gp)
					seq.IncrementalRun(touched)
					par.IncrementalRun(touched)
					ls := seq.State().Stats.Ledger.Portable()
					lp := par.State().Stats.Ledger.Portable()
					if ls != lp {
						t.Fatalf("seed %d round %d: sequential ledger %+v != parallel %+v",
							seed, round, ls, lp)
					}
				}
				par.Close()
			}
		})
	}
}

// TestLedgerZeroAlloc extends the nil-tracer guarantee to the ledger: the
// accounting must add zero allocations to the no-audit engine path, for
// empty, push-seed, and touched incremental runs alike.
func TestLedgerZeroAlloc(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()

	if n := testing.AllocsPerRun(100, func() {
		e.IncrementalRunDelta(nil, nil)
	}); n != 0 {
		t.Errorf("empty incremental run: %v allocs, want 0", n)
	}
	seeds := []Var{2}
	if n := testing.AllocsPerRun(100, func() {
		e.IncrementalRunDelta(nil, seeds)
	}); n != 0 {
		t.Errorf("push-seed incremental run: %v allocs, want 0", n)
	}
}

// TestWorkLedgerAlgebra checks the Sub/Add snapshot algebra and the
// derived ratios the serve layer publishes.
func TestWorkLedgerAlgebra(t *testing.T) {
	a := WorkLedger{Runs: 3, Delta: 10, Touched: 12, Seeds: 2, Changed: 20,
		Aff: 30, AffEdges: 90, Rounds: 9, RecomputeEst: 1000}
	b := WorkLedger{Runs: 1, Delta: 4, Touched: 5, Seeds: 1, Changed: 8,
		Aff: 12, AffEdges: 40, Rounds: 4, RecomputeEst: 900}
	d := a.Sub(b)
	if d.Runs != 2 || d.Delta != 6 || d.Changed != 12 || d.AffEdges != 50 {
		t.Fatalf("Sub: %+v", d)
	}
	if d.RecomputeEst != 1000 {
		t.Fatalf("Sub must keep the newer RecomputeEst: %+v", d)
	}
	if got := b.Add(d); got != a {
		t.Fatalf("Add(Sub) round-trip: %+v != %+v", got, a)
	}
	if w := a.Work(); w != 12+30+90 {
		t.Fatalf("Work = %d", w)
	}
	if r := a.BoundedRatio(); r != float64(132)/10 {
		t.Fatalf("BoundedRatio = %v", r)
	}
	if r := a.RecomputeRatio(); r != float64(132)/1000 {
		t.Fatalf("RecomputeRatio = %v", r)
	}
	var zero WorkLedger
	if zero.BoundedRatio() != 0 || zero.RecomputeRatio() != 0 {
		t.Fatal("zero ledger ratios must be 0, not NaN")
	}
	p := a.Portable()
	if p.Rounds != 0 || p.Aff != a.Aff {
		t.Fatalf("Portable: %+v", p)
	}
	if !reflect.DeepEqual(a.Portable(), a.Portable()) {
		t.Fatal("Portable not deterministic")
	}
}
