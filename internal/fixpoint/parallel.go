package fixpoint

import "time"

// This file implements the engine's parallel execution mode: a round-level
// work-sharing scheme over the worklist drain. Each BFS round's frontier is
// partitioned into contiguous chunks across a reusable worker Pool; workers
// compute candidate values into per-worker buffers against the round-start
// state (no shared writes), and the driver then merges the buffers
// sequentially in stable (worker, emission) order through the same monotone
// meet the sequential path uses. The paper's conditions make this safe:
// for contracting and monotonic instances (C2, §4) chaotic iteration
// converges to the unique fixpoint (Lemma 2), so the final values are
// bit-identical to a sequential run's. Timestamps and counters may differ
// from the sequential schedule — they record a different, equally valid
// determination order <_C — but are fully deterministic for a fixed worker
// count: same state, same batch, same n ⇒ same values, timestamps, stats.
//
// The initial scope function h stays sequential: it is ordered by the
// previous run's timestamps and is bounded by |ΔG|-sized anchor sets, so
// there is no round structure to share.

// defaultParThreshold is the frontier size below which a parallel engine
// processes a round inline on the driver goroutine: partitioning a
// handful of variables costs more in handoff than it saves. Chosen so
// that per-round pool dispatch (~a few µs) is amortized over at least a
// few hundred relaxations.
const defaultParThreshold = 64

// Option configures an Engine at construction. Options are shared across
// value domains (they carry no V), so New(inst, policy, WithWorkers(4))
// infers V from the instance alone.
type Option func(*config)

type config struct {
	workers      int
	parThreshold int
}

// WithWorkers sets the engine's worker count for parallel round drains.
// n <= 1 keeps the sequential path (the default), with zero added
// allocations on every run. See Engine.SetWorkers for the contract.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithParThreshold sets the minimum frontier size for a round to be
// partitioned across workers; smaller rounds run inline on the driver.
// The default (64) suits graph workloads; tests lower it to force tiny
// rounds through the parallel machinery.
func WithParThreshold(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.parThreshold = n
	}
}

// ParStats counts the work of the parallel drain. Like Stats it is
// cumulative across runs; serve-layer snapshots use Sub/Add to isolate
// per-apply deltas. Imbalance is work-based — the busiest worker's share
// of a round's candidate computations relative to a perfectly even split
// (1.0 = balanced, k = one worker did everything) — so a single hub
// vertex dominating one partition shows up even when partition sizes are
// equal by construction.
type ParStats struct {
	// Workers is the configured worker count (0 or 1 = sequential).
	Workers int `json:"workers"`
	// ParRounds and SeqRounds count drain rounds that were partitioned
	// across workers vs processed inline (frontier below threshold).
	ParRounds int64 `json:"par_rounds"`
	SeqRounds int64 `json:"seq_rounds"`
	// Items is the total frontier size across parallel rounds.
	Items int64 `json:"items"`
	// Candidates is the total candidate computations by workers: relaxed
	// out-edges in push mode, dependent discoveries plus update-function
	// evaluations in pull mode.
	Candidates int64 `json:"candidates"`
	// BusyNanos is summed worker compute time; WallNanos is elapsed time
	// of the parallel phases. BusyNanos / (Workers × WallNanos) is the
	// pool utilization (see Utilization).
	BusyNanos int64 `json:"busy_nanos"`
	WallNanos int64 `json:"wall_nanos"`
	// LastImbalance is the work imbalance of the most recent parallel
	// round; MaxImbalance the worst observed. 1.0 means perfectly even.
	LastImbalance float64 `json:"last_imbalance"`
	MaxImbalance  float64 `json:"max_imbalance"`
}

// Utilization returns the fraction of available worker time spent
// computing, BusyNanos / (Workers × WallNanos), in [0, 1]. Returns 0
// when no parallel round has run.
func (p ParStats) Utilization() float64 {
	if p.Workers <= 0 || p.WallNanos <= 0 {
		return 0
	}
	u := float64(p.BusyNanos) / (float64(p.Workers) * float64(p.WallNanos))
	if u > 1 {
		u = 1
	}
	return u
}

// Sub returns the counter-wise difference p − o, isolating the parallel
// work of the span between two snapshots of the same cumulative ParStats.
// Workers and the Last/Max imbalance gauges are not cumulative; the newer
// snapshot's values are kept.
func (p ParStats) Sub(o ParStats) ParStats {
	return ParStats{
		Workers:       p.Workers,
		ParRounds:     p.ParRounds - o.ParRounds,
		SeqRounds:     p.SeqRounds - o.SeqRounds,
		Items:         p.Items - o.Items,
		Candidates:    p.Candidates - o.Candidates,
		BusyNanos:     p.BusyNanos - o.BusyNanos,
		WallNanos:     p.WallNanos - o.WallNanos,
		LastImbalance: p.LastImbalance,
		MaxImbalance:  p.MaxImbalance,
	}
}

// Add returns the counter-wise sum p + o, for aggregating per-run deltas
// into a running total. Workers and LastImbalance take o's (most recent)
// values; MaxImbalance is the maximum of the two.
func (p ParStats) Add(o ParStats) ParStats {
	maxImb := p.MaxImbalance
	if o.MaxImbalance > maxImb {
		maxImb = o.MaxImbalance
	}
	return ParStats{
		Workers:       o.Workers,
		ParRounds:     p.ParRounds + o.ParRounds,
		SeqRounds:     p.SeqRounds + o.SeqRounds,
		Items:         p.Items + o.Items,
		Candidates:    p.Candidates + o.Candidates,
		BusyNanos:     p.BusyNanos + o.BusyNanos,
		WallNanos:     p.WallNanos + o.WallNanos,
		LastImbalance: o.LastImbalance,
		MaxImbalance:  maxImb,
	}
}

// ParRoundTracer is an optional Tracer extension for parallel drains.
// Like Tracer it uses only builtin types so implementations (e.g.
// internal/trace) satisfy it structurally without importing this
// package. A Tracer that implements it receives ParRound after Round for
// every partitioned round, from the goroutine driving the engine.
type ParRoundTracer interface {
	// ParRound reports one partitioned propagation round: the worker
	// count it was split across, the frontier size, the candidates
	// computed by workers, the busiest single worker's compute
	// nanoseconds, and the round's elapsed parallel-phase nanoseconds.
	ParRound(round, workers int, frontier, candidates, busiestNanos, wallNanos int64)
}

// parCand is one buffered candidate: worker w proposes value v for
// variable x, to be installed by the driver during the merge.
type parCand[V any] struct {
	x Var
	v V
}

// parWorker is the per-worker state of the parallel drain. Buffers are
// retained on the engine and reused across rounds and runs; only the
// worker that owns the struct touches it between pool dispatch and
// pool completion, and the driver reads/resets it after Run returns.
type parWorker[V any] struct {
	cands []parCand[V] // candidate values computed this round
	deps  []Var        // pull mode: dependents discovered this round
	reads int64        // pull mode: status reads by Update
	work  int64        // work units this round (imbalance proxy)
	busy  int64        // accumulated compute nanos this round

	emit func(Var, V) // push mode RelaxOut sink (hoisted, no per-round closures)
	dep  func(Var)    // pull mode Dependents sink
	get  func(Var) V  // pull mode Update reader
}

// span is a half-open partition [lo, hi) of the round's frontier or
// recompute list.
type span struct{ lo, hi int }

// SetWorkers sets the worker count for subsequent runs: n >= 2 partitions
// every round whose frontier reaches the threshold across n workers;
// n <= 1 restores the sequential path (and releases the pool's
// goroutines). Part of the engine's single-writer contract: call it only
// from the goroutine that drives the engine, never during a run.
func (e *Engine[V]) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == e.workers || (n <= 1 && e.workers <= 1) {
		return
	}
	e.workers = n
	e.par.Workers = n
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
	if n <= 1 {
		e.parWs = nil
		e.parts = nil
		return
	}
	e.parWs = make([]parWorker[V], n)
	e.parts = make([]span, n)
	for w := range e.parWs {
		pw := &e.parWs[w]
		pw.emit = func(z Var, cand V) {
			pw.cands = append(pw.cands, parCand[V]{z, cand})
			pw.work++
		}
		pw.dep = func(z Var) {
			pw.deps = append(pw.deps, z)
			pw.work++
		}
		pw.get = func(y Var) V {
			pw.reads++
			return e.st.Val[y]
		}
	}
	if e.parRelaxFn == nil {
		e.parRelaxFn = func(w int) {
			t0 := time.Now()
			pw := &e.parWs[w]
			for _, x := range e.frontier[e.parts[w].lo:e.parts[w].hi] {
				e.relaxer.RelaxOut(x, e.st.Val[x], pw.emit)
			}
			pw.busy += time.Since(t0).Nanoseconds()
		}
		e.parDepFn = func(w int) {
			t0 := time.Now()
			pw := &e.parWs[w]
			for _, x := range e.frontier[e.parts[w].lo:e.parts[w].hi] {
				e.inst.Dependents(x, pw.dep)
			}
			pw.busy += time.Since(t0).Nanoseconds()
		}
		e.parEvalFn = func(w int) {
			t0 := time.Now()
			pw := &e.parWs[w]
			for _, z := range e.recomp[e.parts[w].lo:e.parts[w].hi] {
				pw.cands = append(pw.cands, parCand[V]{z, e.inst.Update(z, pw.get)})
				pw.work++
			}
			pw.busy += time.Since(t0).Nanoseconds()
		}
	}
}

// Workers returns the configured worker count (1 = sequential).
func (e *Engine[V]) Workers() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// ParStats returns the cumulative parallel-drain counters. Zero-valued
// while the engine runs sequentially.
func (e *Engine[V]) ParStats() ParStats { return e.par }

// Close releases the engine's worker pool, if any. A sequential engine
// holds no resources and Close is a no-op; a parallel engine parks
// n-1 goroutines between runs, and Close unparks and ends them. The
// engine remains usable afterwards — the pool is respawned lazily on the
// next parallel round.
func (e *Engine[V]) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// dispatchDrain routes a drain to the configured path: partitioned rounds
// when workers are set, traced rounds when only a tracer is, and the
// tight sequential loop otherwise. The sequential cases stay free of any
// parallel bookkeeping, preserving the zero-allocation guarantee.
func (e *Engine[V]) dispatchDrain() {
	if e.workers > 1 {
		e.drainPar()
	} else if e.tracer != nil {
		e.drainRounds()
	} else {
		e.drain()
	}
}

// drainPar is the parallel step function: drain decomposed into BFS
// rounds (as drainRounds), with each round's frontier either processed
// inline (below threshold) or partitioned across the worker pool. Rounds
// are synchronous — the merge completes before the next frontier is
// snapshot — so workers only ever read round-start state.
func (e *Engine[V]) drainPar() {
	round := 0
	for e.wl.Len() > 0 {
		frontier := e.wl.Len()
		round++
		e.st.Stats.Ledger.Rounds++
		pops0, changes0 := e.st.Stats.Pops, e.st.Stats.Changes
		if frontier < e.parThreshold {
			e.par.SeqRounds++
			for n := 0; n < frontier; n++ {
				x, ok := e.wl.Pop()
				if !ok {
					break
				}
				e.st.Stats.Pops++
				if e.relaxer != nil {
					e.relaxer.RelaxOut(x, e.st.Val[x], e.emitFn)
				} else {
					e.inst.Dependents(x, e.visitFn)
				}
			}
			if e.tracer != nil {
				e.tracer.Round(round, int64(frontier),
					e.st.Stats.Pops-pops0, e.st.Stats.Changes-changes0, int64(e.wl.Len()))
			}
			continue
		}
		cands, busiest, wall := e.parRound()
		if e.tracer != nil {
			e.tracer.Round(round, int64(frontier),
				e.st.Stats.Pops-pops0, e.st.Stats.Changes-changes0, int64(e.wl.Len()))
			if e.parTracer != nil {
				e.parTracer.ParRound(round, e.workers, int64(frontier), cands, busiest, wall)
			}
		}
	}
}

// parRound processes one partitioned round and returns its candidate
// count, busiest worker nanos, and wall nanos for the tracer.
func (e *Engine[V]) parRound() (cands, busiest, wall int64) {
	if e.pool == nil {
		e.pool = NewPool(e.workers)
	}
	// Snapshot the frontier in worklist order — the deterministic basis
	// for partitioning and for the merge order below.
	e.frontier = e.frontier[:0]
	for {
		x, ok := e.wl.Pop()
		if !ok {
			break
		}
		e.frontier = append(e.frontier, x)
	}
	e.st.Stats.Pops += int64(len(e.frontier))

	wall0 := time.Now()
	k := e.partition(len(e.frontier))
	if e.relaxer != nil {
		// Push mode: workers relax their chunk's out-edges into candidate
		// buffers; no shared state is written until the merge.
		e.pool.Run(k, e.parRelaxFn)
		wall = time.Since(wall0).Nanoseconds()
		for w := 0; w < k; w++ {
			pw := &e.parWs[w]
			for _, c := range pw.cands {
				if e.install(c.x, c.v) {
					e.wl.AddOrAdjust(c.x)
				}
			}
			pw.cands = pw.cands[:0]
		}
	} else {
		// Pull mode, two sub-phases. Phase 1: workers discover the
		// frontier's dependents; the driver dedups them (epoch marks) in
		// stable (worker, discovery) order into the recompute list.
		e.pool.Run(k, e.parDepFn)
		if e.parSeen == nil || len(e.parSeen) < e.inst.NumVars() {
			e.parSeen = make([]int64, e.inst.NumVars())
		}
		e.parEpoch++
		e.recomp = e.recomp[:0]
		for w := 0; w < k; w++ {
			pw := &e.parWs[w]
			for _, z := range pw.deps {
				if e.parSeen[z] != e.parEpoch {
					e.parSeen[z] = e.parEpoch
					e.recomp = append(e.recomp, z)
				}
			}
			pw.deps = pw.deps[:0]
		}
		// Phase 2: workers evaluate the update functions of their chunk of
		// the recompute list against the round-start state (a Jacobi step —
		// safe for contracting, monotonic instances).
		k2 := e.partition(len(e.recomp))
		e.pool.Run(k2, e.parEvalFn)
		wall = time.Since(wall0).Nanoseconds()
		if k2 > k {
			k = k2
		}
		for w := 0; w < k; w++ {
			pw := &e.parWs[w]
			e.st.Stats.Reads += pw.reads
			pw.reads = 0
			for _, c := range pw.cands {
				e.st.Stats.Updates++
				if cur := e.st.Val[c.x]; !e.inst.Equal(c.v, cur) {
					e.ledgerWrite(c.x, cur)
					e.st.Val[c.x] = c.v
					e.st.clock++
					e.st.TS[c.x] = e.st.clock
					e.st.Stats.Changes++
					e.wl.AddOrAdjust(c.x)
				}
			}
			pw.cands = pw.cands[:0]
		}
	}

	// Fold per-worker accounting into ParStats; work counts (not chunk
	// sizes) drive the imbalance gauge, so a hub vertex dominating one
	// partition registers even though every chunk has equal length.
	var total, busiestWork, totalWork int64
	for w := 0; w < e.workers; w++ {
		pw := &e.parWs[w]
		total += pw.busy
		if pw.busy > busiest {
			busiest = pw.busy
		}
		if pw.work > busiestWork {
			busiestWork = pw.work
		}
		totalWork += pw.work
		pw.busy = 0
		pw.work = 0
	}
	e.par.ParRounds++
	e.par.Items += int64(len(e.frontier))
	e.par.Candidates += totalWork
	e.par.BusyNanos += total
	e.par.WallNanos += wall
	imb := 1.0
	if totalWork > 0 {
		imb = float64(busiestWork) * float64(k) / float64(totalWork)
	}
	e.par.LastImbalance = imb
	if imb > e.par.MaxImbalance {
		e.par.MaxImbalance = imb
	}
	return totalWork, busiest, wall
}

// partition splits n items into at most e.workers contiguous chunks of
// near-equal length, filling e.parts, and returns the chunk count k
// (k < workers when the frontier is smaller than the pool).
func (e *Engine[V]) partition(n int) int {
	if n == 0 {
		return 0
	}
	k := e.workers
	if k > n {
		k = n
	}
	chunk := (n + k - 1) / k
	k = (n + chunk - 1) / chunk // drop chunks the ceiling left empty
	for w := 0; w < k; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		e.parts[w] = span{lo, hi}
	}
	return k
}
