package fixpoint

import (
	"math/rand"
	"reflect"
	"testing"
)

// applyRandomDelta mutates both graphs identically with nUpd random edge
// insertions/deletions and returns the touched heads.
func applyRandomDelta(rng *rand.Rand, n, nUpd int, graphs ...*minPlus) []Var {
	var touched []Var
	for i := 0; i < nUpd; i++ {
		u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
		if u == v {
			continue
		}
		w := int64(rng.Intn(20) + 1)
		has := false
		for _, a := range graphs[0].out[u] {
			if a.to == v {
				has = true
				break
			}
		}
		for _, g := range graphs {
			if has {
				g.delEdge(u, v)
			} else {
				g.addEdge(u, v, w)
			}
		}
		touched = append(touched, v)
	}
	return touched
}

// TestParallelMatchesSequential is the engine-level differential test of
// the parallel mode: for push (meet-form) and pull instances, under both
// worklist policies, a parallel engine's values must be bit-identical to
// a sequential engine's after the batch run and after every incremental
// round. WithParThreshold(1) forces even tiny frontiers through the
// partitioned path.
func TestParallelMatchesSequential(t *testing.T) {
	const n = 40
	build := func(seed int64) *minPlus {
		r := rand.New(rand.NewSource(seed))
		m := newMinPlus(n, 0)
		for i := 0; i < 130; i++ {
			u, v := Var(r.Intn(n)), Var(r.Intn(n))
			if u != v {
				m.addEdge(u, v, int64(r.Intn(20)+1))
			}
		}
		return m
	}
	type variant struct {
		name   string
		policy Policy
		push   bool
	}
	variants := []variant{
		{"pull-priority", PriorityOrder, false},
		{"pull-fifo", FIFOOrder, false},
		{"push-priority", PriorityOrder, true},
		{"push-fifo", FIFOOrder, true},
	}
	for _, vt := range variants {
		t.Run(vt.name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				for _, workers := range []int{2, 3, 8} {
					gs, gp := build(seed), build(seed)
					mk := func(m *minPlus, opts ...Option) *Engine[int64] {
						if vt.push {
							return New[int64](pushMinPlus{m}, vt.policy, opts...)
						}
						return New[int64](m, vt.policy, opts...)
					}
					seq := mk(gs)
					par := mk(gp, WithWorkers(workers), WithParThreshold(1))
					defer par.Close()
					seq.Run()
					par.Run()
					if !reflect.DeepEqual(seq.State().Val, par.State().Val) {
						t.Fatalf("seed %d workers %d: parallel batch != sequential", seed, workers)
					}
					rng := rand.New(rand.NewSource(seed + 1000))
					for round := 0; round < 5; round++ {
						touched := applyRandomDelta(rng, n, 8, gs, gp)
						seq.IncrementalRun(touched)
						par.IncrementalRun(touched)
						if !reflect.DeepEqual(seq.State().Val, par.State().Val) {
							t.Fatalf("seed %d workers %d round %d: parallel inc != sequential",
								seed, workers, round)
						}
						if !par.Fixpoint() {
							t.Fatalf("seed %d workers %d round %d: parallel inc not a fixpoint",
								seed, workers, round)
						}
					}
					if workers > 1 && par.ParStats().ParRounds == 0 {
						t.Fatalf("seed %d workers %d: no parallel rounds despite threshold 1", seed, workers)
					}
				}
			}
		})
	}
}

// TestParallelMatchesSequentialMinLabel covers the FIFO pull instance the
// CC class uses (label propagation over an undirected adjacency).
func TestParallelMatchesSequentialMinLabel(t *testing.T) {
	const n = 60
	build := func(seed int64) *minLabel {
		r := rand.New(rand.NewSource(seed))
		adj := make([][]Var, n)
		for i := 0; i < 70; i++ {
			u, v := Var(r.Intn(n)), Var(r.Intn(n))
			if u != v {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
		return &minLabel{adj: adj}
	}
	for seed := int64(0); seed < 10; seed++ {
		seq := New[int64](build(seed), FIFOOrder)
		par := New[int64](build(seed), FIFOOrder, WithWorkers(4), WithParThreshold(1))
		seq.Run()
		par.Run()
		par.Close()
		if !reflect.DeepEqual(seq.State().Val, par.State().Val) {
			t.Fatalf("seed %d: parallel minLabel != sequential", seed)
		}
		if !par.Fixpoint() {
			t.Fatalf("seed %d: parallel minLabel not a fixpoint", seed)
		}
	}
}

// TestParallelDeterministic: for a fixed worker count the parallel
// schedule is fully deterministic — two engines over the same graph and
// batch sequence agree not only on values but on timestamps and
// counters, the stronger property the serve layer's reproducible traces
// rely on.
func TestParallelDeterministic(t *testing.T) {
	const n = 40
	build := func() *minPlus {
		r := rand.New(rand.NewSource(7))
		m := newMinPlus(n, 0)
		for i := 0; i < 120; i++ {
			u, v := Var(r.Intn(n)), Var(r.Intn(n))
			if u != v {
				m.addEdge(u, v, int64(r.Intn(20)+1))
			}
		}
		return m
	}
	ga, gb := build(), build()
	a := New[int64](pushMinPlus{ga}, PriorityOrder, WithWorkers(4), WithParThreshold(1))
	b := New[int64](pushMinPlus{gb}, PriorityOrder, WithWorkers(4), WithParThreshold(1))
	defer a.Close()
	defer b.Close()
	a.Run()
	b.Run()
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	for round := 0; round < 4; round++ {
		ta := applyRandomDelta(rngA, n, 8, ga)
		tb := applyRandomDelta(rngB, n, 8, gb)
		a.IncrementalRun(ta)
		b.IncrementalRun(tb)
	}
	if !reflect.DeepEqual(a.State().Val, b.State().Val) {
		t.Fatal("values diverged between identical parallel runs")
	}
	if !reflect.DeepEqual(a.State().TS, b.State().TS) {
		t.Fatal("timestamps diverged between identical parallel runs")
	}
	stA, stB := a.State().Stats, b.State().Stats
	stA.HSeconds, stB.HSeconds = 0, 0 // wall-clock fields legitimately differ
	stA.ResumeSeconds, stB.ResumeSeconds = 0, 0
	if stA != stB {
		t.Fatalf("stats diverged: %+v vs %+v", stA, stB)
	}
	sa, sb := a.ParStats(), b.ParStats()
	sa.BusyNanos, sb.BusyNanos = 0, 0 // wall-clock fields legitimately differ
	sa.WallNanos, sb.WallNanos = 0, 0
	if sa != sb {
		t.Fatalf("parallel stats diverged: %+v vs %+v", sa, sb)
	}
}

// TestParallelEmptyRun: an incremental run with nothing to do (empty
// touched and seed sets) must terminate immediately with no parallel
// rounds — the "empty rounds" partitioning edge case.
func TestParallelEmptyRun(t *testing.T) {
	m := paperGraph()
	e := New[int64](pushMinPlus{m}, PriorityOrder, WithWorkers(4), WithParThreshold(1))
	defer e.Close()
	e.Run()
	before := e.ParStats()
	e.IncrementalRunDelta(nil, nil)
	after := e.ParStats()
	if after.ParRounds != before.ParRounds || after.SeqRounds != before.SeqRounds {
		t.Fatalf("empty run added rounds: before %+v after %+v", before, after)
	}
	// A no-op round: seeds that are already at the fixpoint produce one
	// frontier whose candidates all fail the meet — and no second round.
	before = after
	e.IncrementalRunDelta(nil, []Var{2})
	after = e.ParStats()
	if got := (after.ParRounds - before.ParRounds) + (after.SeqRounds - before.SeqRounds); got != 1 {
		t.Fatalf("no-op seed run: %d rounds, want exactly 1", got)
	}
	if !e.Fixpoint() {
		t.Fatal("not a fixpoint after no-op runs")
	}
}

// TestParallelFrontierSmallerThanWorkers: with more workers than frontier
// items the partitioner must cap the chunk count at the frontier size and
// still produce correct results.
func TestParallelFrontierSmallerThanWorkers(t *testing.T) {
	seqG, parG := paperGraph(), paperGraph()
	seq := New[int64](pushMinPlus{seqG}, PriorityOrder)
	par := New[int64](pushMinPlus{parG}, PriorityOrder, WithWorkers(8), WithParThreshold(1))
	defer par.Close()
	seq.Run()
	par.Run() // every frontier in the 8-node paper graph is < 8 items
	if !reflect.DeepEqual(seq.State().Val, par.State().Val) {
		t.Fatal("parallel != sequential with workers > frontier")
	}
	if par.ParStats().ParRounds == 0 {
		t.Fatal("expected partitioned rounds at threshold 1")
	}
	// And incrementally, on the paper's ΔG.
	for _, g := range []*minPlus{seqG, parG} {
		g.delEdge(5, 6)
		g.addEdge(5, 3, 1)
	}
	seq.IncrementalRun([]Var{6, 3})
	par.IncrementalRun([]Var{6, 3})
	if !reflect.DeepEqual(seq.State().Val, par.State().Val) {
		t.Fatal("incremental parallel != sequential with workers > frontier")
	}
}

// TestParallelHubImbalance: equal-size partitions do not mean equal work.
// A hub vertex whose degree dwarfs its round-mates concentrates the
// round's relaxations in one worker's chunk, and the work-based imbalance
// gauge must reflect that skew.
func TestParallelHubImbalance(t *testing.T) {
	const fillers = 63 // round-2 frontier: hub + fillers = 64 items
	const hubDeg = 4000
	n := 2 + fillers + hubDeg
	m := newMinPlus(n, 0)
	hub := Var(1)
	m.addEdge(0, hub, 1)
	for i := 0; i < fillers; i++ {
		m.addEdge(0, Var(2+i), 1)
	}
	for i := 0; i < hubDeg; i++ {
		m.addEdge(hub, Var(2+fillers+i), 1)
	}
	e := New[int64](pushMinPlus{m}, PriorityOrder, WithWorkers(4), WithParThreshold(2))
	defer e.Close()
	e.Run()
	ps := e.ParStats()
	if ps.ParRounds == 0 {
		t.Fatal("expected partitioned rounds")
	}
	// The 64-item round splits 4 × 16; the hub's chunk does ~hubDeg
	// relaxations while the others do ~15 each, so the busiest worker
	// carries nearly 4× the mean.
	if ps.MaxImbalance < 2.0 {
		t.Fatalf("hub round imbalance %.2f, want >= 2.0 (stats %+v)", ps.MaxImbalance, ps)
	}
	if ps.Workers != 4 {
		t.Fatalf("ParStats.Workers = %d, want 4", ps.Workers)
	}
	if ps.Candidates < hubDeg {
		t.Fatalf("Candidates = %d, want >= %d", ps.Candidates, hubDeg)
	}
	if u := ps.Utilization(); u < 0 || u > 1 {
		t.Fatalf("Utilization = %v, want in [0,1]", u)
	}
}

// TestParallelFallbackZeroAlloc: configuring workers and then dropping
// back to n<=1 must restore the exact sequential path — including its
// zero-allocation guarantee (the parallel analogue of
// TestNilTracerZeroAlloc).
func TestParallelFallbackZeroAlloc(t *testing.T) {
	m := paperGraph()
	e := New[int64](m, PriorityOrder, WithWorkers(4))
	e.SetWorkers(1) // back to sequential; pool released
	e.Run()

	if n := testing.AllocsPerRun(100, func() {
		e.IncrementalRunDelta(nil, nil)
	}); n != 0 {
		t.Errorf("empty incremental run with workers=1: %v allocs, want 0", n)
	}
	seeds := []Var{2}
	if n := testing.AllocsPerRun(100, func() {
		e.IncrementalRunDelta(nil, seeds)
	}); n != 0 {
		t.Errorf("push-seed incremental run with workers=1: %v allocs, want 0", n)
	}

	// WithWorkers(0) and WithWorkers(1) are the sequential default too.
	e2 := New[int64](paperGraph(), PriorityOrder, WithWorkers(0))
	e2.Run()
	if n := testing.AllocsPerRun(100, func() {
		e2.IncrementalRunDelta(nil, nil)
	}); n != 0 {
		t.Errorf("empty incremental run with workers=0: %v allocs, want 0", n)
	}
}

// TestSetWorkersMidStream: an engine can switch between sequential and
// parallel between runs without perturbing results, and Close is safe to
// call repeatedly (the pool respawns lazily).
func TestSetWorkersMidStream(t *testing.T) {
	const n = 40
	build := func() *minPlus {
		r := rand.New(rand.NewSource(3))
		m := newMinPlus(n, 0)
		for i := 0; i < 120; i++ {
			u, v := Var(r.Intn(n)), Var(r.Intn(n))
			if u != v {
				m.addEdge(u, v, int64(r.Intn(20)+1))
			}
		}
		return m
	}
	gs, gp := build(), build()
	seq := New[int64](gs, PriorityOrder)
	par := New[int64](gp, PriorityOrder, WithParThreshold(1))
	seq.Run()
	par.Run() // still sequential
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 6; round++ {
		switch round {
		case 1:
			par.SetWorkers(3)
		case 3:
			par.Close() // pool respawns on next parallel round
		case 4:
			par.SetWorkers(1)
		}
		touched := applyRandomDelta(rng, n, 8, gs, gp)
		seq.IncrementalRun(touched)
		par.IncrementalRun(touched)
		if !reflect.DeepEqual(seq.State().Val, par.State().Val) {
			t.Fatalf("round %d: mid-stream worker switch diverged", round)
		}
	}
	par.Close()
	if got := par.Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1 after SetWorkers(1)", got)
	}
}

// TestParStatsSubAdd checks the snapshot algebra the serve layer uses to
// isolate per-apply parallel work.
func TestParStatsSubAdd(t *testing.T) {
	a := ParStats{Workers: 4, ParRounds: 10, SeqRounds: 2, Items: 100, Candidates: 500,
		BusyNanos: 1000, WallNanos: 400, LastImbalance: 1.5, MaxImbalance: 3}
	b := ParStats{Workers: 4, ParRounds: 4, SeqRounds: 1, Items: 40, Candidates: 200,
		BusyNanos: 300, WallNanos: 100, LastImbalance: 1.2, MaxImbalance: 2}
	d := a.Sub(b)
	if d.ParRounds != 6 || d.Items != 60 || d.Candidates != 300 || d.BusyNanos != 700 {
		t.Fatalf("Sub: %+v", d)
	}
	if d.LastImbalance != 1.5 || d.MaxImbalance != 3 || d.Workers != 4 {
		t.Fatalf("Sub gauges: %+v", d)
	}
	s := b.Add(d)
	if s.ParRounds != 10 || s.Items != 100 || s.MaxImbalance != 3 || s.LastImbalance != 1.5 {
		t.Fatalf("Add: %+v", s)
	}
	zero := ParStats{}
	if u := zero.Utilization(); u != 0 {
		t.Fatalf("zero Utilization = %v", u)
	}
	if u := a.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %v, want (0,1]", u)
	}
}

// TestPool exercises the pool directly: inline k=1, k up to size, and
// reuse across many dispatches.
func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
	got := make([]int, 4)
	p.Run(1, func(id int) { got[id] += 1 }) // inline
	p.Run(4, func(id int) { got[id] += 10 })
	for round := 0; round < 50; round++ {
		p.Run(3, func(id int) { got[id]++ })
	}
	want := []int{61, 60, 60, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("per-worker counts %v, want %v", got, want)
	}
	p.Run(0, func(id int) { t.Fatal("k=0 must not invoke f") })
}
