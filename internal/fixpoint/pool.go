package fixpoint

import "sync"

// Pool is a reusable fixed-size worker pool for round-level work-sharing.
// It exists so a maintainer that repairs thousands of small batches does
// not pay goroutine startup per round: the workers are spawned once and
// parked on a channel between rounds.
//
// Concurrency contract: a Pool is driven by one goroutine at a time —
// Run and Close must not be called concurrently. The function passed to
// Run is called from multiple goroutines at once (worker-pool-safe code
// only); Run returns only after every invocation has finished, so
// per-worker results written under distinct ids are safe to read
// afterwards without further synchronization.
type Pool struct {
	n      int
	tasks  chan poolTask
	closed bool
	wg     sync.WaitGroup
}

type poolTask struct {
	f  func(id int)
	id int
}

// NewPool starts n-1 parked worker goroutines (the driver doubles as
// worker 0, so n total run during a Run call). n must be >= 1.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n, tasks: make(chan poolTask)}
	for i := 1; i < n; i++ {
		go p.worker(p.tasks)
	}
	return p
}

func (p *Pool) worker(tasks <-chan poolTask) {
	for t := range tasks {
		t.f(t.id)
		p.wg.Done()
	}
}

// Size returns the pool's worker count n.
func (p *Pool) Size() int { return p.n }

// Run invokes f(0) … f(k-1) concurrently across the pool and waits for
// all of them. f(0) runs inline on the calling goroutine, so a Run with
// k == 1 never leaves the caller. k must be <= Size.
func (p *Pool) Run(k int, f func(id int)) {
	if k <= 1 {
		if k == 1 {
			f(0)
		}
		return
	}
	p.wg.Add(k - 1)
	for i := 1; i < k; i++ {
		p.tasks <- poolTask{f: f, id: i}
	}
	f(0)
	p.wg.Wait()
}

// Close releases the pool's worker goroutines. The pool must be idle (no
// Run in flight); after Close the pool must not be used again.
func (p *Pool) Close() {
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}
