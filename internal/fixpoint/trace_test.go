package fixpoint

import (
	"math/rand"
	"reflect"
	"testing"
)

// recTracer records every hook invocation for sequence and counter
// assertions.
type recTracer struct {
	order  []string
	begin  [2]int   // touched, pushSeeds
	scope  [3]int64 // hPops, hResets, scopeSize
	rounds [][5]int64
	end    [2]int64 // pops, changes
}

func (r *recTracer) BeginRun(touched, pushSeeds int) {
	r.order = append(r.order, "begin")
	r.begin = [2]int{touched, pushSeeds}
}
func (r *recTracer) ScopeDone(hPops, hResets, scopeSize int64) {
	r.order = append(r.order, "scope")
	r.scope = [3]int64{hPops, hResets, scopeSize}
}
func (r *recTracer) Round(round int, frontier, pops, changes, affGrowth int64) {
	r.order = append(r.order, "round")
	r.rounds = append(r.rounds, [5]int64{int64(round), frontier, pops, changes, affGrowth})
}
func (r *recTracer) EndRun(pops, changes int64) {
	r.order = append(r.order, "end")
	r.end = [2]int64{pops, changes}
}

func TestTracerObservesIncrementalRun(t *testing.T) {
	// Replay the paper's Example 4 with a recording tracer and check that
	// the spans carry the run's structure: the known |H⁰|, rounds whose
	// counters sum to the resume totals, and the same fixpoint as the
	// untraced path.
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()
	m.delEdge(5, 6)
	m.addEdge(5, 3, 1)

	rec := &recTracer{}
	e.SetTracer(rec)
	e.IncrementalRun([]Var{6, 3})

	want := []int64{0, 4, 1, 3, 5, 2, 9, 5} // Fig. 3(a), column G ⊕ ΔG
	if !reflect.DeepEqual(e.State().Val, want) {
		t.Fatalf("traced incremental values %v, want %v", e.State().Val, want)
	}

	if len(rec.order) < 3 || rec.order[0] != "begin" || rec.order[1] != "scope" ||
		rec.order[len(rec.order)-1] != "end" {
		t.Fatalf("hook order %v, want begin, scope, round*, end", rec.order)
	}
	for _, o := range rec.order[2 : len(rec.order)-1] {
		if o != "round" {
			t.Fatalf("hook order %v, want only rounds between scope and end", rec.order)
		}
	}
	if rec.begin != [2]int{2, 0} {
		t.Errorf("BeginRun(%v), want (2, 0)", rec.begin)
	}
	if rec.scope[2] != 3 {
		t.Errorf("ScopeDone scopeSize = %d, want |H⁰| = 3 (Example 4)", rec.scope[2])
	}
	if len(rec.rounds) == 0 {
		t.Fatal("no rounds reported")
	}
	var pops, changes int64
	for i, r := range rec.rounds {
		if r[0] != int64(i+1) {
			t.Errorf("round %d numbered %d", i+1, r[0])
		}
		if r[1] <= 0 {
			t.Errorf("round %d frontier = %d, want > 0", i+1, r[1])
		}
		pops += r[2]
		changes += r[3]
	}
	if last := rec.rounds[len(rec.rounds)-1]; last[4] != 0 {
		t.Errorf("final round affGrowth = %d, want 0 (drain ends on empty scope)", last[4])
	}
	// All pops happen inside rounds; changes also accrue in the H⁰
	// re-evaluation that precedes round 1, so the round sum is a lower
	// bound there.
	if pops != rec.end[0] {
		t.Errorf("round pops sum %d != EndRun pops %d", pops, rec.end[0])
	}
	if changes > rec.end[1] {
		t.Errorf("round changes sum %d > EndRun changes %d", changes, rec.end[1])
	}
	if !e.Fixpoint() {
		t.Fatal("traced incremental result is not a fixpoint")
	}
}

func TestTracedRunMatchesUntraced(t *testing.T) {
	// drainRounds restructures the worklist drain into frontier rounds;
	// the fixpoint reached must be identical to the untraced drain's on
	// random graphs and update batches.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		mT, mU := newMinPlus(n, 0), newMinPlus(n, 0)
		type edge struct{ u, v Var }
		present := map[edge]bool{}
		add := func(u, v Var, w int64) {
			mT.addEdge(u, v, w)
			mU.addEdge(u, v, w)
		}
		del := func(u, v Var) {
			mT.delEdge(u, v)
			mU.delEdge(u, v)
		}
		for i := 0; i < 120; i++ {
			u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
			if u == v || present[edge{u, v}] {
				continue
			}
			present[edge{u, v}] = true
			add(u, v, int64(rng.Intn(20)+1))
		}
		eT := New[int64](mT, PriorityOrder)
		eT.SetTracer(&recTracer{})
		eT.Run()
		eU := New[int64](mU, PriorityOrder)
		eU.Run()

		touched := map[Var]bool{}
		for i := 0; i < 12; i++ {
			u, v := Var(rng.Intn(n)), Var(rng.Intn(n))
			if u == v {
				continue
			}
			if present[edge{u, v}] {
				delete(present, edge{u, v})
				del(u, v)
			} else {
				present[edge{u, v}] = true
				add(u, v, int64(rng.Intn(20)+1))
			}
			touched[v] = true
		}
		var tl []Var
		for x := range touched {
			tl = append(tl, x)
		}
		eT.IncrementalRun(tl)
		eU.IncrementalRun(tl)
		if !reflect.DeepEqual(eT.State().Val, eU.State().Val) {
			t.Fatalf("seed %d: traced values %v != untraced %v", seed, eT.State().Val, eU.State().Val)
		}
	}
}

func TestNilTracerZeroAlloc(t *testing.T) {
	// The acceptance bar for the tracer hook: with no tracer installed,
	// an incremental run performs zero heap allocations. All propagation
	// closures are hoisted into Engine fields, so the only per-run
	// allocation is the returned H⁰ slice — absent for an empty touched
	// set — and the push-seed path exercises the full drain.
	m := paperGraph()
	e := New[int64](m, PriorityOrder)
	e.Run()

	if n := testing.AllocsPerRun(100, func() {
		e.IncrementalRunDelta(nil, nil)
	}); n != 0 {
		t.Errorf("empty incremental run: %v allocs, want 0", n)
	}

	// Push seeds re-propagate from an untouched variable through drain's
	// relax path; at the fixpoint no candidate improves, but the pop and
	// emit machinery runs.
	seeds := []Var{2}
	if n := testing.AllocsPerRun(100, func() {
		e.IncrementalRunDelta(nil, seeds)
	}); n != 0 {
		t.Errorf("push-seed incremental run: %v allocs, want 0", n)
	}
}
