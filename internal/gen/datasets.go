package gen

import (
	"fmt"
	"math/rand"

	"incgraph/internal/graph"
)

// Alphabet is the node-label alphabet size used throughout the paper's
// synthetic graphs.
const Alphabet = 5

// Dataset describes a synthetic stand-in for one of the paper's datasets.
// BaseNodes and AvgDeg are chosen so that, at Scale = 1, each stand-in
// preserves the relative size ordering and average degree of the original
// while staying laptop-sized; Build scales node counts linearly.
type Dataset struct {
	Name     string // paper's abbreviation: LJ, DP, OKT, TW, FS, WD
	Kind     string // "powerlaw" or "er"
	Directed bool
	// BaseNodes is the node count at scale 1.
	BaseNodes int
	// AvgDeg approximates the original's average degree.
	AvgDeg int
}

// Datasets lists the six stand-ins in the paper's order.
var Datasets = []Dataset{
	{Name: "LJ", Kind: "powerlaw", Directed: true, BaseNodes: 12000, AvgDeg: 14},  // LiveJournal 4.8M/68.9M
	{Name: "DP", Kind: "powerlaw", Directed: true, BaseNodes: 12000, AvgDeg: 11},  // DBpedia 4.9M/54M
	{Name: "OKT", Kind: "powerlaw", Directed: false, BaseNodes: 8000, AvgDeg: 38}, // Orkut 3.1M/117M
	{Name: "TW", Kind: "powerlaw", Directed: true, BaseNodes: 20000, AvgDeg: 33},  // Twitter-2010 41.6M/1.4B
	{Name: "FS", Kind: "powerlaw", Directed: false, BaseNodes: 24000, AvgDeg: 27}, // Friendster 65.6M/1.8B
	{Name: "WD", Kind: "powerlaw", Directed: true, BaseNodes: 6000, AvgDeg: 40},   // Wiki-DE 2.1M/86.3M (temporal)
}

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Build materializes the stand-in at the given scale with the given seed.
// Nodes are labeled from the standard alphabet so every query class can run
// on every dataset.
func (d Dataset) Build(seed int64, scale float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := int(float64(d.BaseNodes) * scale)
	if n < 16 {
		n = 16
	}
	var g *graph.Graph
	switch d.Kind {
	case "er":
		g = ErdosRenyi(rng, n, n*d.AvgDeg/2, d.Directed)
	default:
		g = PowerLaw(rng, n, d.AvgDeg, d.Directed)
	}
	AssignLabels(rng, g, Alphabet)
	return g
}

// BuildTemporal materializes the dataset as a temporal graph with the given
// number of monthly windows. Matching the paper's Wiki-DE measurements,
// each window's update count is ~1.9% of |G| with an 81%/19% insert/delete
// mix.
func (d Dataset) BuildTemporal(seed int64, scale float64, windows int) *graph.Temporal {
	base := d.Build(seed, scale)
	rng := rand.New(rand.NewSource(seed + 1))
	perWindow := int(0.019 * float64(base.Size()))
	if perWindow < 1 {
		perWindow = 1
	}
	return TemporalStream(rng, base, windows, perWindow, 0.81)
}

// Synthetic builds the scalability-experiment graph of Exp-3: a labeled
// power-law graph parameterized directly by |V| and average degree.
func Synthetic(seed int64, nodes, avgDeg int, directed bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := PowerLaw(rng, nodes, avgDeg, directed)
	AssignLabels(rng, g, Alphabet)
	return g
}
