// Package gen provides deterministic synthetic graph and workload
// generators. They stand in for the paper's real-life datasets (see
// DESIGN.md, substitutions): power-law graphs via preferential attachment
// for the social networks, Erdős–Rényi graphs, grid road networks, label
// assignment from a small alphabet, random mixed update batches, and
// temporal update streams with a configurable insert/delete mix.
package gen

import (
	"math/rand"

	"incgraph/internal/graph"
)

// Weight bounds used by the generators; weights are uniform in [1, MaxWeight].
const MaxWeight = 100

func randWeight(rng *rand.Rand) int64 { return int64(rng.Intn(MaxWeight)) + 1 }

// ErdosRenyi generates a G(n, m) graph: m distinct uniformly random edges
// over n nodes, with uniform random weights.
func ErdosRenyi(rng *rand.Rand, n, m int, directed bool) *graph.Graph {
	g := graph.New(n, directed)
	for g.NumEdges() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		g.InsertEdge(u, v, randWeight(rng))
	}
	return g
}

// PowerLaw generates a preferential-attachment (Barabási–Albert) graph
// with roughly avgDeg average degree, producing the heavy-tailed degree
// distribution of real social networks. For directed graphs each generated
// edge is oriented uniformly at random, which yields the skewed in/out
// degrees of follower networks.
func PowerLaw(rng *rand.Rand, n, avgDeg int, directed bool) *graph.Graph {
	if avgDeg < 2 {
		avgDeg = 2
	}
	k := avgDeg / 2 // edges attached per arriving node
	if k < 1 {
		k = 1
	}
	g := graph.New(n, directed)
	// Repeated-endpoint list: each node appears once per incident edge
	// endpoint, so sampling from it is degree-proportional sampling.
	ends := make([]graph.NodeID, 0, 2*k*n+n)
	seed := k + 1
	if seed > n {
		seed = n
	}
	// Seed clique over the first few nodes.
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			addOriented(rng, g, graph.NodeID(i), graph.NodeID(j), directed)
			ends = append(ends, graph.NodeID(i), graph.NodeID(j))
		}
	}
	for v := seed; v < n; v++ {
		attached := 0
		for tries := 0; attached < k && tries < 20*k; tries++ {
			var t graph.NodeID
			if len(ends) == 0 {
				t = graph.NodeID(rng.Intn(v))
			} else {
				t = ends[rng.Intn(len(ends))]
			}
			if t == graph.NodeID(v) {
				continue
			}
			if addOriented(rng, g, graph.NodeID(v), t, directed) {
				ends = append(ends, graph.NodeID(v), t)
				attached++
			}
		}
	}
	return g
}

// addOriented inserts edge {u, v}; for directed graphs the orientation is
// chosen uniformly. It reports whether an edge was added.
func addOriented(rng *rand.Rand, g *graph.Graph, u, v graph.NodeID, directed bool) bool {
	if directed && rng.Intn(2) == 0 {
		u, v = v, u
	}
	if !directed || !g.HasEdge(u, v) && !g.HasEdge(v, u) {
		return g.InsertEdge(u, v, randWeight(rng))
	}
	return false
}

// Grid generates a w×h road-network-like graph: nodes on a grid, directed
// edges in both directions between horizontal and vertical neighbors, with
// independent random weights per direction (asymmetric travel times).
func Grid(rng *rand.Rand, w, h int) *graph.Graph {
	g := graph.New(w*h, true)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.InsertEdge(id(x, y), id(x+1, y), randWeight(rng))
				g.InsertEdge(id(x+1, y), id(x, y), randWeight(rng))
			}
			if y+1 < h {
				g.InsertEdge(id(x, y), id(x, y+1), randWeight(rng))
				g.InsertEdge(id(x, y+1), id(x, y), randWeight(rng))
			}
		}
	}
	return g
}

// AssignLabels labels every node uniformly from an alphabet of the given
// size, as in the paper's synthetic graphs (|alphabet| = 5).
func AssignLabels(rng *rand.Rand, g *graph.Graph, alphabet int) {
	for v := 0; v < g.NumNodes(); v++ {
		g.SetLabel(graph.NodeID(v), graph.Label(rng.Intn(alphabet)))
	}
}

// Pattern generates a small connected directed pattern graph with n nodes
// and m edges, labeled from the alphabet, for graph-simulation queries.
// The paper's experiments use |Q| = (4, 6).
func Pattern(rng *rand.Rand, n, m, alphabet int) *graph.Graph {
	q := graph.New(n, true)
	for v := 0; v < n; v++ {
		q.SetLabel(graph.NodeID(v), graph.Label(rng.Intn(alphabet)))
	}
	// Spine to keep the pattern connected.
	for v := 1; v < n; v++ {
		q.InsertEdge(graph.NodeID(v-1), graph.NodeID(v), 1)
	}
	for tries := 0; q.NumEdges() < m && tries < 50*m; tries++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		q.InsertEdge(u, v, 1)
	}
	return q
}

// RandomUpdates builds a batch of count unit updates against g:
// insFrac·count insertions of distinct currently-absent edges and the rest
// deletions of distinct currently-present edges, shuffled together. The
// paper's random workloads use insFrac = 0.5.
func RandomUpdates(rng *rand.Rand, g *graph.Graph, count int, insFrac float64) graph.Batch {
	nIns := int(float64(count)*insFrac + 0.5)
	nDel := count - nIns
	if nDel > g.NumEdges() {
		nDel = g.NumEdges()
	}
	b := make(graph.Batch, 0, count)

	// Deletions: sample distinct existing edges.
	var edges []graph.Update
	g.Edges(func(u, v graph.NodeID, w int64) {
		edges = append(edges, graph.Update{Kind: graph.DeleteEdge, From: u, To: v, W: w})
	})
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	b = append(b, edges[:nDel]...)

	// Insertions: rejection-sample distinct absent edges.
	n := g.NumNodes()
	seen := make(map[[2]graph.NodeID]bool, nIns)
	for added, tries := 0, 0; added < nIns && tries < 100*nIns+1000; tries++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] {
			continue
		}
		if !g.Directed() && seen[[2]graph.NodeID{v, u}] {
			continue
		}
		seen[[2]graph.NodeID{u, v}] = true
		b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: randWeight(rng)})
		added++
	}
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	return b
}

// UnitInsertions returns count single-edge insertion batches of distinct
// absent edges, for the paper's Exp-1 unit-update experiments.
func UnitInsertions(rng *rand.Rand, g *graph.Graph, count int) []graph.Update {
	b := RandomUpdates(rng, g, count, 1.0)
	return b
}

// UnitDeletions returns count single-edge deletions of distinct present
// edges.
func UnitDeletions(rng *rand.Rand, g *graph.Graph, count int) []graph.Update {
	return RandomUpdates(rng, g, count, 0.0)
}

// HotspotUpdates builds a batch like RandomUpdates but confined to the
// BFS ball of the given radius around a random center — the skewed,
// localized churn of real workloads (one community fighting, one product
// trending). Locality shrinks the affected area AFF, so incremental
// algorithms benefit even more than under uniform updates.
func HotspotUpdates(rng *rand.Rand, g *graph.Graph, count int, insFrac float64, radius int) graph.Batch {
	n := g.NumNodes()
	center := graph.NodeID(rng.Intn(n))
	dist := map[graph.NodeID]int{center: 0}
	queue := []graph.NodeID{center}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if dist[v] >= radius {
			continue
		}
		visit := func(w graph.NodeID) {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
		for _, e := range g.Out(v) {
			visit(e.To)
		}
		if g.Directed() {
			for _, e := range g.In(v) {
				visit(e.To)
			}
		}
	}
	ball := queue
	if len(ball) < 2 {
		return nil
	}
	nIns := int(float64(count)*insFrac + 0.5)
	b := make(graph.Batch, 0, count)

	// Deletions: edges with both endpoints in the ball.
	var edges []graph.Update
	g.Edges(func(u, v graph.NodeID, w int64) {
		if _, ok := dist[u]; !ok {
			return
		}
		if _, ok := dist[v]; !ok {
			return
		}
		edges = append(edges, graph.Update{Kind: graph.DeleteEdge, From: u, To: v, W: w})
	})
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	nDel := count - nIns
	if nDel > len(edges) {
		nDel = len(edges)
	}
	b = append(b, edges[:nDel]...)

	// Insertions: absent pairs within the ball.
	seen := make(map[[2]graph.NodeID]bool, nIns)
	for added, tries := 0, 0; added < nIns && tries < 200*nIns+1000; tries++ {
		u := ball[rng.Intn(len(ball))]
		v := ball[rng.Intn(len(ball))]
		if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] {
			continue
		}
		if !g.Directed() && seen[[2]graph.NodeID{v, u}] {
			continue
		}
		seen[[2]graph.NodeID{u, v}] = true
		b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: randWeight(rng)})
		added++
	}
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	return b
}

// TemporalStream wraps a base graph in a temporal graph whose event log
// first inserts the base edges at time 0 and then runs the given number of
// windows ("months"). Each window carries perWindow events with the stated
// insert fraction (the paper measured 81% insertions on Wiki-DE),
// maintaining validity against the evolving edge set. Window i covers
// times (i, i+1] for i >= 1; Snapshot(0) is the base graph... base events
// carry time 0, so the first window is (0, 1].
func TemporalStream(rng *rand.Rand, base *graph.Graph, windows, perWindow int, insFrac float64) *graph.Temporal {
	labels := make([]graph.Label, base.NumNodes())
	for v := range labels {
		labels[v] = base.Label(graph.NodeID(v))
	}
	var events []graph.Event
	base.Edges(func(u, v graph.NodeID, w int64) {
		events = append(events, graph.Event{Time: 0, Update: graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: w}})
	})
	cur := base.Clone()
	for w := 1; w <= windows; w++ {
		b := RandomUpdates(rng, cur, perWindow, insFrac)
		cur.Apply(b)
		for _, u := range b {
			events = append(events, graph.Event{Time: int64(w), Update: u})
		}
	}
	return graph.NewTemporal(base.NumNodes(), base.Directed(), labels, events)
}
