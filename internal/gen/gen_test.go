package gen

import (
	"math/rand"
	"testing"

	"incgraph/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(rng, 100, 300, true)
	if g.NumNodes() != 100 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(rand.New(rand.NewSource(9)), 50, 120, false)
	b := ErdosRenyi(rand.New(rand.NewSource(9)), 50, 120, false)
	same := true
	a.Edges(func(u, v graph.NodeID, w int64) {
		if b.Weight(u, v) != w {
			same = false
		}
	})
	if !same || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := PowerLaw(rng, 2000, 10, false)
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 6 || avg > 14 {
		t.Fatalf("average degree %.1f, want ≈10", avg)
	}
	// Heavy tail: the max degree should far exceed the average.
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 4*avg {
		t.Fatalf("max degree %d does not look heavy-tailed (avg %.1f)", maxDeg, avg)
	}
}

func TestPowerLawDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PowerLaw(rng, 500, 8, true)
	if !g.Directed() {
		t.Fatal("not directed")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 500 {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
}

func TestGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Grid(rng, 5, 4)
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Directed edges: 2 per internal grid adjacency.
	wantEdges := 2 * (4*4 + 5*3)
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New(200, false)
	AssignLabels(rng, g, 5)
	seen := map[graph.Label]bool{}
	for v := 0; v < 200; v++ {
		l := g.Label(graph.NodeID(v))
		if l < 0 || l >= 5 {
			t.Fatalf("label out of range: %d", l)
		}
		seen[l] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d labels used", len(seen))
	}
}

func TestPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := Pattern(rng, 4, 6, 5)
	if q.NumNodes() != 4 || q.NumEdges() != 6 {
		t.Fatalf("pattern (%d,%d), want (4,6)", q.NumNodes(), q.NumEdges())
	}
	if err := q.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomUpdatesMix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyi(rng, 200, 1000, true)
	b := RandomUpdates(rng, g, 400, 0.5)
	ins, del := 0, 0
	for _, u := range b {
		if u.Kind == graph.InsertEdge {
			ins++
			if g.HasEdge(u.From, u.To) {
				t.Fatal("insertion of present edge")
			}
		} else {
			del++
			if !g.HasEdge(u.From, u.To) {
				t.Fatal("deletion of absent edge")
			}
		}
	}
	if ins != 200 || del != 200 {
		t.Fatalf("mix ins=%d del=%d", ins, del)
	}
	// All updates must apply cleanly (they were sampled distinct).
	applied := g.Clone().Apply(b)
	if len(applied) != len(b) {
		t.Fatalf("only %d/%d updates applied", len(applied), len(b))
	}
}

func TestUnitHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := ErdosRenyi(rng, 100, 400, false)
	ins := UnitInsertions(rng, g, 50)
	del := UnitDeletions(rng, g, 50)
	if len(ins) != 50 || len(del) != 50 {
		t.Fatalf("got %d insertions, %d deletions", len(ins), len(del))
	}
	for _, u := range ins {
		if u.Kind != graph.InsertEdge {
			t.Fatal("non-insert in UnitInsertions")
		}
	}
	for _, u := range del {
		if u.Kind != graph.DeleteEdge {
			t.Fatal("non-delete in UnitDeletions")
		}
	}
}

func TestHotspotUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := PowerLaw(rng, 2000, 8, false)
	b := HotspotUpdates(rng, g, 80, 0.5, 2)
	if len(b) == 0 {
		t.Fatal("no hotspot updates generated")
	}
	// All updates must apply cleanly.
	if applied := g.Clone().Apply(b); len(applied) != len(b) {
		t.Fatalf("only %d/%d applied", len(applied), len(b))
	}
	// Locality: the touched nodes must be far fewer than for a uniform
	// batch of the same size on this graph.
	touched := map[graph.NodeID]bool{}
	for _, u := range b {
		touched[u.From] = true
		touched[u.To] = true
	}
	if len(touched) > 400 {
		t.Fatalf("hotspot batch touched %d nodes", len(touched))
	}
}

func TestHotspotUpdatesDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := PowerLaw(rng, 800, 8, true)
	b := HotspotUpdates(rng, g, 40, 0.7, 3)
	if applied := g.Clone().Apply(b); len(applied) != len(b) {
		t.Fatalf("only %d/%d applied", len(applied), len(b))
	}
}

func TestTemporalStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := ErdosRenyi(rng, 150, 600, true)
	tp := TemporalStream(rng, base, 5, 100, 0.81)
	// Snapshot at time 0 must equal the base graph.
	s0 := tp.Snapshot(0)
	if s0.NumEdges() != base.NumEdges() {
		t.Fatalf("snapshot(0) has %d edges, base %d", s0.NumEdges(), base.NumEdges())
	}
	// Each window has the requested size and roughly the right mix.
	for w := int64(1); w <= 5; w++ {
		b := tp.Window(w-1, w)
		if len(b) != 100 {
			t.Fatalf("window %d has %d events", w, len(b))
		}
		frac := tp.InsertFraction(w-1, w)
		if frac < 0.7 || frac > 0.95 {
			t.Fatalf("window %d insert fraction %.2f", w, frac)
		}
	}
	// Windows must apply cleanly in sequence.
	g := tp.Snapshot(0)
	for w := int64(1); w <= 5; w++ {
		b := tp.Window(w-1, w)
		if applied := g.Apply(b); len(applied) != len(b) {
			t.Fatalf("window %d: only %d/%d applied", w, len(applied), len(b))
		}
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range Datasets {
		g := d.Build(1, 0.02)
		if g.NumNodes() < 16 {
			t.Fatalf("%s: too small", d.Name)
		}
		if g.Directed() != d.Directed {
			t.Fatalf("%s: directedness mismatch", d.Name)
		}
		if err := g.CheckConsistent(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
	if _, err := ByName("OKT"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestBuildTemporal(t *testing.T) {
	d, _ := ByName("WD")
	tp := d.BuildTemporal(1, 0.02, 3)
	if tp.NumEvents() == 0 {
		t.Fatal("no events")
	}
	if f := tp.InsertFraction(0, 3); f < 0.6 {
		t.Fatalf("insert fraction %.2f too low", f)
	}
}

func TestSynthetic(t *testing.T) {
	g := Synthetic(3, 1000, 8, true)
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}
