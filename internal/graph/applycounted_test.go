package graph

import "testing"

// TestApplyCountedIdempotent checks the idempotency and accounting
// contract in both directednesses: duplicate inserts and absent deletes
// are counted no-ops, applying the same batch twice changes nothing the
// second time, and the counts agree between directed and undirected
// graphs for orientation-free inputs.
func TestApplyCountedIdempotent(t *testing.T) {
	batch := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 2},
		{Kind: InsertEdge, From: 0, To: 1, W: 9}, // dup insert
		{Kind: InsertEdge, From: 1, To: 2, W: 4},
		{Kind: DeleteEdge, From: 2, To: 3}, // absent delete
		{Kind: DeleteEdge, From: 0, To: 1}, // real delete
		{Kind: DeleteEdge, From: 0, To: 1}, // now absent
	}
	for _, directed := range []bool{false, true} {
		g := New(4, directed)
		s := g.ApplyCounted(batch)
		if s.Inserted != 2 || s.Deleted != 1 {
			t.Fatalf("directed=%v: inserted=%d deleted=%d, want 2/1", directed, s.Inserted, s.Deleted)
		}
		if s.DupInserts != 1 || s.AbsentDeletes != 2 || s.Malformed != 0 {
			t.Fatalf("directed=%v: dup=%d absent=%d malformed=%d, want 1/2/0",
				directed, s.DupInserts, s.AbsentDeletes, s.Malformed)
		}
		if s.Skipped() != 3 {
			t.Fatalf("directed=%v: skipped=%d, want 3", directed, s.Skipped())
		}
		if g.NumEdges() != 1 || !g.HasEdge(1, 2) {
			t.Fatalf("directed=%v: wrong resulting graph", directed)
		}
		// Re-applying the already-applied sub-batch is a pure no-op.
		again := g.ApplyCounted(Batch{{Kind: InsertEdge, From: 1, To: 2, W: 4}})
		if len(again.Applied) != 0 || again.DupInserts != 1 {
			t.Fatalf("directed=%v: reapply not idempotent: %+v", directed, again)
		}
		if err := g.CheckConsistent(); err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
	}
}

// TestApplyCountedMirroredOrientation checks the undirected-specific
// case: a duplicate insert and a delete addressed by the *reversed*
// endpoint pair must behave exactly like the forward orientation.
func TestApplyCountedMirroredOrientation(t *testing.T) {
	g := New(3, false)
	g.InsertEdge(0, 1, 5)
	s := g.ApplyCounted(Batch{
		{Kind: InsertEdge, From: 1, To: 0, W: 7}, // same undirected edge
		{Kind: DeleteEdge, From: 1, To: 0},       // same undirected edge
		{Kind: DeleteEdge, From: 1, To: 0},       // now absent
	})
	if s.DupInserts != 1 || s.Deleted != 1 || s.AbsentDeletes != 1 {
		t.Fatalf("dup=%d deleted=%d absent=%d, want 1/1/1", s.DupInserts, s.Deleted, s.AbsentDeletes)
	}
	if s.Applied[0].W != 5 {
		t.Fatalf("reversed delete recorded weight %d, want the stored 5", s.Applied[0].W)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edge survived mirrored delete")
	}
}

// TestApplyCountedNeverPanics hurls malformed updates — out-of-range
// ids, self-loops, tombstoned endpoints, unknown kinds — at both graph
// kinds and checks they are counted, skipped, and harmless.
func TestApplyCountedNeverPanics(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := New(4, directed)
		g.InsertEdge(0, 1, 1)
		g.DeleteNode(3)
		bad := Batch{
			{Kind: InsertEdge, From: -1, To: 1, W: 1},
			{Kind: InsertEdge, From: 0, To: 99, W: 1},
			{Kind: DeleteEdge, From: 99, To: 0},
			{Kind: InsertEdge, From: 2, To: 2, W: 1}, // self-loop
			{Kind: DeleteEdge, From: 1, To: 1},       // self-loop
			{Kind: InsertEdge, From: 0, To: 3, W: 1}, // dead endpoint
			{Kind: UpdateKind(9), From: 0, To: 1},    // unknown kind
		}
		s := g.ApplyCounted(bad)
		if s.Malformed != len(bad) {
			t.Fatalf("directed=%v: malformed=%d, want %d", directed, s.Malformed, len(bad))
		}
		if len(s.Applied) != 0 || g.NumEdges() != 1 {
			t.Fatalf("directed=%v: malformed input mutated the graph", directed)
		}
		if err := g.CheckConsistent(); err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
	}
}
