package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary codecs for graphs and batches. The text format (io.go) is the
// human-facing interchange format; the binary format is the durability
// format: it is what checkpoints and the write-ahead log store, so it
// must round-trip *everything* — including node tombstones, which the
// text writer cannot express. Varint-encoded throughout; a power-law
// graph serializes to roughly 3 bytes per edge.

// binaryMagic heads a binary graph blob. The trailing version digit is
// bumped on incompatible changes so recovery fails loudly on a format it
// does not understand instead of reconstructing a wrong graph.
const binaryMagic = "IGB1"

// maxBinaryNodes bounds the node count accepted by ReadBinary, so a
// corrupted header cannot make recovery attempt a multi-terabyte
// allocation before the CRC check has a chance to run.
const maxBinaryNodes = 1 << 31

// WriteBinary serializes the graph in the binary durability format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic)
	if g.directed {
		bw.WriteByte(1)
	} else {
		bw.WriteByte(0)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		bw.Write(buf[:binary.PutUvarint(buf[:], x)])
	}
	putVarint := func(x int64) {
		bw.Write(buf[:binary.PutVarint(buf[:], x)])
	}
	putUvarint(uint64(g.NumNodes()))
	// Labels: sparse (id, label) pairs — most nodes carry label 0.
	labeled := 0
	for _, l := range g.labels {
		if l != 0 {
			labeled++
		}
	}
	putUvarint(uint64(labeled))
	for v, l := range g.labels {
		if l != 0 {
			putUvarint(uint64(v))
			putVarint(int64(l))
		}
	}
	// Tombstones: the ids the text format loses.
	putUvarint(uint64(g.NumNodes() - g.NumAlive()))
	for v, a := range g.alive {
		if !a {
			putUvarint(uint64(v))
		}
	}
	putUvarint(uint64(g.NumEdges()))
	g.Edges(func(u, v NodeID, wgt int64) {
		putUvarint(uint64(u))
		putUvarint(uint64(v))
		putVarint(wgt)
	})
	// bufio's error is sticky: the final Flush reports the first write
	// failure from anywhere above.
	return bw.Flush()
}

// ReadBinary parses a graph in the binary durability format, validating
// every id against the declared node count so corrupted input yields an
// error, never a panic or an inconsistent graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph binary: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph binary: bad magic %q", magic)
	}
	dirByte, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("graph binary: reading kind: %w", err)
	}
	if dirByte > 1 {
		return nil, fmt.Errorf("graph binary: bad kind byte %d", dirByte)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph binary: reading node count: %w", err)
	}
	if n > maxBinaryNodes {
		return nil, fmt.Errorf("graph binary: node count %d too large", n)
	}
	g := New(int(n), dirByte == 1)
	readID := func(what string) (NodeID, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("graph binary: reading %s: %w", what, err)
		}
		if v >= n {
			return 0, fmt.Errorf("graph binary: %s %d out of range [0,%d)", what, v, n)
		}
		return NodeID(v), nil
	}
	labeled, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph binary: reading label count: %w", err)
	}
	if labeled > n {
		return nil, fmt.Errorf("graph binary: label count %d exceeds nodes %d", labeled, n)
	}
	for i := uint64(0); i < labeled; i++ {
		v, err := readID("label id")
		if err != nil {
			return nil, err
		}
		l, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph binary: reading label: %w", err)
		}
		g.SetLabel(v, Label(l))
	}
	dead, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph binary: reading tombstone count: %w", err)
	}
	if dead > n {
		return nil, fmt.Errorf("graph binary: tombstone count %d exceeds nodes %d", dead, n)
	}
	tombs := make([]NodeID, 0, dead)
	for i := uint64(0); i < dead; i++ {
		v, err := readID("tombstone id")
		if err != nil {
			return nil, err
		}
		tombs = append(tombs, v)
	}
	edges, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph binary: reading edge count: %w", err)
	}
	for i := uint64(0); i < edges; i++ {
		u, err := readID("edge tail")
		if err != nil {
			return nil, err
		}
		v, err := readID("edge head")
		if err != nil {
			return nil, err
		}
		w, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph binary: reading edge weight: %w", err)
		}
		if !g.InsertEdge(u, v, w) {
			return nil, fmt.Errorf("graph binary: duplicate or degenerate edge (%d,%d)", u, v)
		}
	}
	// Tombstone last: dead nodes carry no edges in a well-formed blob, so
	// the insertions above never referenced them.
	for _, v := range tombs {
		if g.OutDegree(v) != 0 || (g.directed && g.InDegree(v) != 0) {
			return nil, fmt.Errorf("graph binary: tombstoned node %d has edges", v)
		}
		g.DeleteNode(v)
	}
	return g, nil
}

// AppendBatchBinary appends the binary encoding of b to dst and returns
// the result — the batch payload format of the write-ahead log.
func AppendBatchBinary(dst []byte, b Batch) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	for _, u := range b {
		dst = append(dst, byte(u.Kind))
		dst = binary.AppendUvarint(dst, uint64(uint32(u.From)))
		dst = binary.AppendUvarint(dst, uint64(uint32(u.To)))
		dst = binary.AppendVarint(dst, u.W)
	}
	return dst
}

// DecodeBatchBinary parses a batch encoded by AppendBatchBinary from the
// front of data, returning the batch and the unconsumed tail. Corrupted
// input yields an error, never a panic.
func DecodeBatchBinary(data []byte) (Batch, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("batch binary: bad count")
	}
	data = data[n:]
	// Each update costs at least 4 bytes; reject counts the data cannot
	// hold so corruption cannot force a huge allocation.
	if count > uint64(len(data)/4+1) {
		return nil, nil, fmt.Errorf("batch binary: count %d exceeds payload", count)
	}
	b := make(Batch, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(data) == 0 {
			return nil, nil, fmt.Errorf("batch binary: truncated at update %d", i)
		}
		kind := UpdateKind(data[0])
		if kind != InsertEdge && kind != DeleteEdge {
			return nil, nil, fmt.Errorf("batch binary: bad kind %d at update %d", kind, i)
		}
		data = data[1:]
		from, n := binary.Uvarint(data)
		if n <= 0 || from > uint64(^uint32(0)) {
			return nil, nil, fmt.Errorf("batch binary: bad from at update %d", i)
		}
		data = data[n:]
		to, n := binary.Uvarint(data)
		if n <= 0 || to > uint64(^uint32(0)) {
			return nil, nil, fmt.Errorf("batch binary: bad to at update %d", i)
		}
		data = data[n:]
		w, n := binary.Varint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("batch binary: bad weight at update %d", i)
		}
		data = data[n:]
		b = append(b, Update{Kind: kind, From: NodeID(int32(uint32(from))), To: NodeID(int32(uint32(to))), W: w})
	}
	return b, data, nil
}
