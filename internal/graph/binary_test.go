package graph

import (
	"bytes"
	"testing"
)

// buildBinaryFixture makes a graph exercising every binary-format
// feature: labels, tombstones, weighted edges.
func buildBinaryFixture(directed bool) *Graph {
	g := New(6, directed)
	g.SetLabel(1, 7)
	g.SetLabel(4, -2)
	g.InsertEdge(0, 1, 3)
	g.InsertEdge(1, 2, 5)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(0, 3, 9)
	if directed {
		g.InsertEdge(3, 0, 2)
	}
	g.DeleteNode(5) // tombstone, the case the text codec cannot express
	return g
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Directed() != b.Directed() || a.NumNodes() != b.NumNodes() ||
		a.NumAlive() != b.NumAlive() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %v/%d/%d/%d vs %v/%d/%d/%d",
			a.Directed(), a.NumNodes(), a.NumAlive(), a.NumEdges(),
			b.Directed(), b.NumNodes(), b.NumAlive(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.Label(NodeID(v)) != b.Label(NodeID(v)) {
			t.Fatalf("label mismatch at %d", v)
		}
		if a.Alive(NodeID(v)) != b.Alive(NodeID(v)) {
			t.Fatalf("alive mismatch at %d", v)
		}
	}
	a.Edges(func(u, v NodeID, w int64) {
		if !b.HasEdge(u, v) || b.Weight(u, v) != w {
			t.Fatalf("edge (%d,%d,%d) missing or reweighted", u, v, w)
		}
	})
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildBinaryFixture(directed)
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
		graphsEqual(t, g, got)
		if err := got.CheckConsistent(); err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := buildBinaryFixture(true)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations at every prefix and single-byte corruptions must error
	// or produce a consistent graph — never panic.
	for i := 0; i < len(full); i++ {
		if g2, err := ReadBinary(bytes.NewReader(full[:i])); err == nil {
			if cerr := g2.CheckConsistent(); cerr != nil {
				t.Fatalf("truncation at %d: inconsistent graph: %v", i, cerr)
			}
		}
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		if g2, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			if cerr := g2.CheckConsistent(); cerr != nil {
				t.Fatalf("corruption at %d: inconsistent graph: %v", i, cerr)
			}
		}
	}
}

func TestBatchBinaryRoundTrip(t *testing.T) {
	b := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 5},
		{Kind: DeleteEdge, From: 3, To: 2, W: 0},
		{Kind: InsertEdge, From: 1000000, To: 2, W: 1 << 40},
		{Kind: DeleteEdge, From: 7, To: 9, W: 12},
	}
	data := AppendBatchBinary(nil, b)
	got, rest, err := DecodeBatchBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("unconsumed tail of %d bytes", len(rest))
	}
	if len(got) != len(b) {
		t.Fatalf("got %d updates, want %d", len(got), len(b))
	}
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("update %d: got %v want %v", i, got[i], b[i])
		}
	}
}

func TestBatchBinaryRejectsCorruption(t *testing.T) {
	b := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 5},
		{Kind: DeleteEdge, From: 3, To: 2},
	}
	data := AppendBatchBinary(nil, b)
	for i := 0; i <= len(data); i++ {
		DecodeBatchBinary(data[:i]) // must not panic
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		DecodeBatchBinary(mut) // must not panic
	}
}
