package graph

import "sort"

// CSR is an immutable compressed-sparse-row snapshot of a graph's
// out-adjacency with neighbor lists sorted by id. Batch algorithms that
// scan adjacency heavily (triangle counting, simulation) take a CSR to get
// cache-friendly sequential access and binary-searchable neighbor sets.
type CSR struct {
	Offsets []int32
	Targets []NodeID
	Weights []int64
}

// Snapshot builds a CSR from the graph's current out-adjacency.
func Snapshot(g *Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{Offsets: make([]int32, n+1)}
	total := 0
	for u := 0; u < n; u++ {
		total += g.OutDegree(NodeID(u))
	}
	c.Targets = make([]NodeID, 0, total)
	c.Weights = make([]int64, 0, total)
	type pair struct {
		to NodeID
		w  int64
	}
	var buf []pair
	for u := 0; u < n; u++ {
		buf = buf[:0]
		for _, e := range g.Out(NodeID(u)) {
			buf = append(buf, pair{e.To, e.W})
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].to < buf[j].to })
		for _, p := range buf {
			c.Targets = append(c.Targets, p.to)
			c.Weights = append(c.Weights, p.w)
		}
		c.Offsets[u+1] = int32(len(c.Targets))
	}
	return c
}

// NumNodes returns the number of nodes in the snapshot.
func (c *CSR) NumNodes() int { return len(c.Offsets) - 1 }

// Neighbors returns u's sorted neighbor ids.
func (c *CSR) Neighbors(u NodeID) []NodeID {
	return c.Targets[c.Offsets[u]:c.Offsets[u+1]]
}

// Degree returns the out-degree of u.
func (c *CSR) Degree(u NodeID) int {
	return int(c.Offsets[u+1] - c.Offsets[u])
}

// HasEdge reports whether (u, v) is present, by binary search.
func (c *CSR) HasEdge(u, v NodeID) bool {
	ns := c.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// CountCommon returns |N(u) ∩ N(v)| by merging the two sorted lists, the
// kernel of triangle counting.
func (c *CSR) CountCommon(u, v NodeID) int {
	a, b := c.Neighbors(u), c.Neighbors(v)
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
