package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSnapshotBasic(t *testing.T) {
	g := New(4, false)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	c := Snapshot(g)
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if got := c.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Neighbors(0) = %v, want sorted [1 2]", got)
	}
	if c.Degree(3) != 0 || c.Degree(2) != 2 {
		t.Fatal("degrees wrong")
	}
	if !c.HasEdge(1, 0) || c.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
}

func TestCountCommon(t *testing.T) {
	g := New(5, false)
	// Triangle 0-1-2 plus pendant 3 on 0, isolated 4.
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(0, 3, 1)
	c := Snapshot(g)
	if got := c.CountCommon(0, 1); got != 1 {
		t.Fatalf("CountCommon(0,1) = %d, want 1", got)
	}
	if got := c.CountCommon(0, 4); got != 0 {
		t.Fatalf("CountCommon(0,4) = %d, want 0", got)
	}
	if got := c.CountCommon(3, 1); got != 1 { // common neighbor 0
		t.Fatalf("CountCommon(3,1) = %d, want 1", got)
	}
}

func TestSnapshotMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(30, true)
	g.Apply(randomBatch(rng, 30, 400))
	c := Snapshot(g)
	for u := 0; u < 30; u++ {
		want := make([]NodeID, 0)
		for _, e := range g.Out(NodeID(u)) {
			want = append(want, e.To)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := c.Neighbors(NodeID(u))
		if len(got) != len(want) {
			t.Fatalf("node %d: degree %d vs %d", u, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d: neighbors %v vs %v", u, got, want)
			}
		}
	}
}
