package graph_test

import (
	"fmt"

	"incgraph/internal/graph"
)

// ExampleFlat shows the life of a flat adjacency view: snapshot, staged
// overlay edits, and threshold-driven compaction back into the CSR base.
func ExampleFlat() {
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 5)
	g.InsertEdge(0, 2, 7)

	f := graph.NewFlat(g) // CSR base of the current adjacency
	f.SetCompactThreshold(1e9)

	// Mutate the graph through a batch and stage exactly the applied
	// updates into the overlay.
	b := graph.Batch{
		{Kind: graph.InsertEdge, From: 0, To: 3, W: 9},
		{Kind: graph.DeleteEdge, From: 0, To: 1},
	}
	f.Stage(g, g.Apply(b))

	// Reads merge the base row (0→1 now tombstoned) with the overlay tail.
	f.EachOut(0, func(v graph.NodeID, w int64) {
		fmt.Printf("0 -> %d (w=%d)\n", v, w)
	})
	fmt.Println("overlay ops:", f.OverlayOps())

	// Compaction rebuilds the base and clears the overlay.
	f.Compact(g)
	fmt.Println("after compact:", f.OverlayOps(), "ops,", f.Compactions(), "compaction")

	// Output:
	// 0 -> 2 (w=7)
	// 0 -> 3 (w=9)
	// overlay ops: 4
	// after compact: 0 ops, 1 compaction
}

// ExampleFlat_appendOutSorted shows the arena-friendly sorted neighbor
// read the biconnectivity DFS uses: base row and overlay tail merged in
// ascending order, appended to a caller-owned buffer.
func ExampleFlat_appendOutSorted() {
	g := graph.New(5, false)
	g.InsertEdge(2, 4, 1)
	g.InsertEdge(2, 0, 1)
	f := graph.NewFlat(g)
	f.SetCompactThreshold(1e9)
	b := graph.Batch{{Kind: graph.InsertEdge, From: 2, To: 3, W: 1}}
	f.Stage(g, g.Apply(b))

	buf := make([]graph.NodeID, 0, 8)
	buf = f.AppendOutSorted(2, buf)
	fmt.Println(buf)
	// Output:
	// [0 3 4]
}
