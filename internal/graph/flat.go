package graph

import "sort"

// DefaultCompactThreshold is the overlay-to-base ratio above which a Flat
// view rebuilds its CSR snapshots. 0.25 keeps overlay scans a small
// constant fraction of base scans while amortizing rebuild cost over many
// staged batches.
const DefaultCompactThreshold = 0.25

// Flat is a read-optimized adjacency view: an immutable CSR base snapshot
// plus a small per-node delta overlay for edges staged since the snapshot
// was built. Hot loops iterate the base row as a dense struct-of-arrays
// span (targets and weights in separate contiguous slices) and then the
// short overlay tail, instead of chasing the graph's pointer-rich [][]Edge
// lists.
//
// A Flat is maintained alongside a Graph by the incremental maintainers:
// after g.Apply(batch) returns the effectively-applied updates, Stage
// replays exactly those updates into the overlay. Deletions of base edges
// are lazy tombstones (a dead-bit array parallel to the CSR targets);
// insertions go to a per-node overlay slice, except that reinserting a
// tombstoned base edge resurrects it in place with the new weight.
//
// The overlay is kept small: once the number of staged half-edge
// operations since the last rebuild exceeds a configurable fraction of the
// base size (see SetCompactThreshold and NeedCompact), MaybeCompact
// rebuilds the CSR from the graph and clears the overlay, so a long-lived
// process never degrades to all-overlay reads.
//
// Flat tracks staged edge batches only. Callers that mutate the Graph
// through other entry points (DeleteNode, SetWeight) must Compact before
// the next read.
type Flat struct {
	directed  bool
	out       flatDir
	in        flatDir // unused when undirected; In* methods alias out
	threshold float64

	overlayOps  int   // staged half-edge ops since last compaction
	compactions int64 // total rebuilds, for observability
}

// flatDir is one direction (out- or in-adjacency) of a Flat view.
type flatDir struct {
	csr  *CSR
	dead []bool   // parallel to csr.Targets; nil until first tombstone
	add  [][]Edge // per-node overlay inserts; nil rows are common
}

// NewFlat builds a Flat view of g's current adjacency with an empty
// overlay. For directed graphs both the out- and in-direction snapshots
// are built, because pull-style readers (SSSP's feasibility scan) walk
// in-edges.
func NewFlat(g *Graph) *Flat {
	f := &Flat{directed: g.Directed(), threshold: DefaultCompactThreshold}
	f.rebuild(g)
	return f
}

func (f *Flat) rebuild(g *Graph) {
	n := g.NumNodes()
	f.out = flatDir{csr: Snapshot(g), add: make([][]Edge, n)}
	if f.directed {
		f.in = flatDir{csr: SnapshotIn(g), add: make([][]Edge, n)}
	}
	f.overlayOps = 0
}

// SetCompactThreshold sets the overlay-to-base ratio above which
// MaybeCompact rebuilds the snapshots. Values at or below zero compact
// after every staged batch; the zero Flat default is
// DefaultCompactThreshold.
func (f *Flat) SetCompactThreshold(t float64) { f.threshold = t }

// Compactions returns how many times the CSR base has been rebuilt.
func (f *Flat) Compactions() int64 { return f.compactions }

// OverlayOps returns the number of half-edge operations staged since the
// last compaction.
func (f *Flat) OverlayOps() int { return f.overlayOps }

// OverlayRatio returns staged half-edge operations as a fraction of the
// base snapshot's half-edge entries. This is the staleness measure that
// NeedCompact compares against the threshold.
func (f *Flat) OverlayRatio() float64 {
	base := len(f.out.csr.Targets)
	if f.directed {
		base += len(f.in.csr.Targets)
	}
	return float64(f.overlayOps) / float64(base+1)
}

// NeedCompact reports whether the overlay has outgrown the configured
// fraction of the base and the snapshots should be rebuilt.
func (f *Flat) NeedCompact() bool {
	return f.overlayOps > 0 && f.OverlayRatio() > f.threshold
}

// Compact rebuilds the CSR snapshots from g and clears the overlay.
func (f *Flat) Compact(g *Graph) {
	f.rebuild(g)
	f.compactions++
}

// MaybeCompact compacts if NeedCompact holds and reports whether it did.
func (f *Flat) MaybeCompact(g *Graph) bool {
	if !f.NeedCompact() {
		return false
	}
	f.Compact(g)
	return true
}

// Stage replays an effectively-applied batch into the overlay. The batch
// must be exactly what g.Apply returned for updates already applied to g:
// every insert was absent before and every delete was present, so Stage
// never sees redundant updates.
func (f *Flat) Stage(g *Graph, applied Batch) {
	f.grow(g.NumNodes())
	for _, u := range applied {
		switch u.Kind {
		case InsertEdge:
			f.out.insert(u.From, u.To, u.W)
			if f.directed {
				f.in.insert(u.To, u.From, u.W)
			} else {
				f.out.insert(u.To, u.From, u.W)
			}
		case DeleteEdge:
			f.out.remove(u.From, u.To)
			if f.directed {
				f.in.remove(u.To, u.From)
			} else {
				f.out.remove(u.To, u.From)
			}
		}
		f.overlayOps += 2
	}
}

// grow extends the overlay rows to cover nodes added after the snapshot
// was built. Such nodes have an empty base row until the next compaction.
func (f *Flat) grow(n int) {
	for len(f.out.add) < n {
		f.out.add = append(f.out.add, nil)
	}
	if f.directed {
		for len(f.in.add) < n {
			f.in.add = append(f.in.add, nil)
		}
	}
}

// baseIndex locates (u, v) in the base row by binary search.
func (d *flatDir) baseIndex(u, v NodeID) (int, bool) {
	if int(u) >= d.csr.NumNodes() {
		return 0, false
	}
	lo, hi := int(d.csr.Offsets[u]), int(d.csr.Offsets[u+1])
	row := d.csr.Targets[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return lo + i, true
	}
	return 0, false
}

func (d *flatDir) insert(u, v NodeID, w int64) {
	if i, ok := d.baseIndex(u, v); ok {
		// The edge exists in the base. Since the applied batch guarantees
		// it was absent from the graph, it must be tombstoned: resurrect
		// it in place with the new weight.
		if d.dead != nil {
			d.dead[i] = false
		}
		d.csr.Weights[i] = w
		return
	}
	d.add[u] = append(d.add[u], Edge{To: v, W: w})
}

func (d *flatDir) remove(u, v NodeID) {
	if row := d.add[u]; len(row) > 0 {
		for k := range row {
			if row[k].To == v {
				row[k] = row[len(row)-1]
				d.add[u] = row[:len(row)-1]
				return
			}
		}
	}
	if i, ok := d.baseIndex(u, v); ok {
		if d.dead == nil {
			d.dead = make([]bool, len(d.csr.Targets))
		}
		d.dead[i] = true
	}
}

// spans returns the raw base row (targets, weights, optional dead bits)
// and the overlay tail for u. A nil dead slice means no base entry in the
// row is tombstoned.
func (d *flatDir) spans(u NodeID) (ts []NodeID, ws []int64, dead []bool, extra []Edge) {
	if int(u) < d.csr.NumNodes() {
		lo, hi := d.csr.Offsets[u], d.csr.Offsets[u+1]
		ts = d.csr.Targets[lo:hi]
		ws = d.csr.Weights[lo:hi]
		if d.dead != nil {
			dead = d.dead[lo:hi]
		}
	}
	if int(u) < len(d.add) {
		extra = d.add[u]
	}
	return ts, ws, dead, extra
}

// OutSpans returns u's out-adjacency as struct-of-arrays spans: the base
// targets and weights (parallel slices), an optional dead-bit slice
// (nil means every base entry is live; otherwise skip entries whose bit
// is set), and the overlay tail of edges staged since the last
// compaction. The returned slices are owned by the Flat and valid until
// the next Stage or Compact.
func (f *Flat) OutSpans(u NodeID) (ts []NodeID, ws []int64, dead []bool, extra []Edge) {
	return f.out.spans(u)
}

// InSpans returns u's in-adjacency spans (same as OutSpans for undirected
// graphs). Each entry's target is the edge's source node.
func (f *Flat) InSpans(u NodeID) (ts []NodeID, ws []int64, dead []bool, extra []Edge) {
	if !f.directed {
		return f.out.spans(u)
	}
	return f.in.spans(u)
}

// EachOut calls fn for every live out-edge of u: first the base row in
// ascending target order, then the overlay tail in staging order.
func (f *Flat) EachOut(u NodeID, fn func(v NodeID, w int64)) {
	f.out.each(u, fn)
}

// EachIn calls fn for every live in-edge of u, passing the source node
// and weight (same as EachOut for undirected graphs).
func (f *Flat) EachIn(u NodeID, fn func(v NodeID, w int64)) {
	if !f.directed {
		f.out.each(u, fn)
		return
	}
	f.in.each(u, fn)
}

func (d *flatDir) each(u NodeID, fn func(v NodeID, w int64)) {
	ts, ws, dead, extra := d.spans(u)
	if dead == nil {
		for k, v := range ts {
			fn(v, ws[k])
		}
	} else {
		for k, v := range ts {
			if !dead[k] {
				fn(v, ws[k])
			}
		}
	}
	for _, e := range extra {
		fn(e.To, e.W)
	}
}

// AppendOutSorted appends u's live out-neighbor ids to buf in ascending
// order and returns the extended slice. The base row is already sorted;
// the short overlay tail is insertion-sorted into place. Depth-first
// traversals use this with a shared arena to visit neighbors in
// deterministic order without per-node allocation.
func (f *Flat) AppendOutSorted(u NodeID, buf []NodeID) []NodeID {
	ts, _, dead, extra := f.out.spans(u)
	base := len(buf)
	if dead == nil {
		buf = append(buf, ts...)
	} else {
		for k, v := range ts {
			if !dead[k] {
				buf = append(buf, v)
			}
		}
	}
	for _, e := range extra {
		buf = append(buf, e.To)
	}
	for i := base + 1; i < len(buf); i++ {
		for j := i; j > base && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// SnapshotIn builds a CSR over the graph's in-adjacency: row u holds the
// sources of u's incoming edges, sorted by id. For undirected graphs this
// equals Snapshot.
func SnapshotIn(g *Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{Offsets: make([]int32, n+1)}
	total := 0
	for u := 0; u < n; u++ {
		total += g.InDegree(NodeID(u))
	}
	c.Targets = make([]NodeID, 0, total)
	c.Weights = make([]int64, 0, total)
	type pair struct {
		to NodeID
		w  int64
	}
	var buf []pair
	for u := 0; u < n; u++ {
		buf = buf[:0]
		for _, e := range g.In(NodeID(u)) {
			buf = append(buf, pair{e.To, e.W})
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].to < buf[j].to })
		for _, p := range buf {
			c.Targets = append(c.Targets, p.to)
			c.Weights = append(c.Weights, p.w)
		}
		c.Offsets[u+1] = int32(len(c.Targets))
	}
	return c
}
