package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// flatEdges collects u's live out-edges from the flat view, sorted.
func flatEdges(f *Flat, u NodeID) []Edge {
	var es []Edge
	f.EachOut(u, func(v NodeID, w int64) { es = append(es, Edge{To: v, W: w}) })
	sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	return es
}

func flatInEdges(f *Flat, u NodeID) []Edge {
	var es []Edge
	f.EachIn(u, func(v NodeID, w int64) { es = append(es, Edge{To: v, W: w}) })
	sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	return es
}

func graphEdges(g *Graph, u NodeID, in bool) []Edge {
	var src []Edge
	if in {
		src = g.In(u)
	} else {
		src = g.Out(u)
	}
	es := append([]Edge(nil), src...)
	sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	return es
}

func sameEdges(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkFlatAgainstGraph(t *testing.T, f *Flat, g *Graph) {
	t.Helper()
	for u := 0; u < g.NumNodes(); u++ {
		if got, want := flatEdges(f, NodeID(u)), graphEdges(g, NodeID(u), false); !sameEdges(got, want) {
			t.Fatalf("out(%d): flat %v, graph %v", u, got, want)
		}
		if got, want := flatInEdges(f, NodeID(u)), graphEdges(g, NodeID(u), true); !sameEdges(got, want) {
			t.Fatalf("in(%d): flat %v, graph %v", u, got, want)
		}
	}
}

// TestFlatDifferential drives a Flat and its Graph through random update
// streams and checks the views agree after every staged batch, for both
// directed and undirected graphs, with compaction forced at several
// thresholds.
func TestFlatDifferential(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for _, thr := range []float64{0, 0.25, 1e9} {
			rng := rand.New(rand.NewSource(7))
			const n = 24
			g := New(n, directed)
			// Seed with random edges before the snapshot.
			for k := 0; k < 60; k++ {
				g.InsertEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), int64(1+rng.Intn(9)))
			}
			f := NewFlat(g)
			f.SetCompactThreshold(thr)
			for round := 0; round < 40; round++ {
				var b Batch
				for k := 0; k < 6; k++ {
					u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
					if rng.Intn(2) == 0 {
						b = append(b, Update{Kind: InsertEdge, From: u, To: v, W: int64(1 + rng.Intn(9))})
					} else {
						b = append(b, Update{Kind: DeleteEdge, From: u, To: v})
					}
				}
				applied := g.Apply(b.Net(directed))
				f.Stage(g, applied)
				f.MaybeCompact(g)
				checkFlatAgainstGraph(t, f, g)
			}
			if thr == 0 && f.Compactions() == 0 {
				t.Fatalf("threshold 0 never compacted")
			}
			if thr == 1e9 && f.Compactions() != 0 {
				t.Fatalf("huge threshold compacted anyway")
			}
		}
	}
}

// TestFlatResurrect checks the weight-replacement path: Net() turns a
// weight change into delete+insert, which must resurrect the tombstoned
// base entry with the new weight.
func TestFlatResurrect(t *testing.T) {
	g := New(3, true)
	g.InsertEdge(0, 1, 5)
	f := NewFlat(g)
	b := Batch{{Kind: DeleteEdge, From: 0, To: 1}, {Kind: InsertEdge, From: 0, To: 1, W: 9}}
	f.Stage(g, g.Apply(b))
	es := flatEdges(f, 0)
	if len(es) != 1 || es[0] != (Edge{To: 1, W: 9}) {
		t.Fatalf("resurrected edge = %v, want [{1 9}]", es)
	}
	// The resurrect wrote the base in place, not the overlay.
	_, _, _, extra := f.OutSpans(0)
	if len(extra) != 0 {
		t.Fatalf("overlay tail = %v, want empty", extra)
	}
}

// TestFlatCompactionBound is the staleness guard: with the default
// threshold, a long random stream keeps the overlay a bounded fraction of
// the base, so reads never degrade to all-overlay scans.
func TestFlatCompactionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 64
	g := New(n, false)
	for k := 0; k < 200; k++ {
		g.InsertEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1)
	}
	f := NewFlat(g)
	for round := 0; round < 300; round++ {
		var b Batch
		for k := 0; k < 8; k++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				b = append(b, Update{Kind: InsertEdge, From: u, To: v, W: 1})
			} else {
				b = append(b, Update{Kind: DeleteEdge, From: u, To: v})
			}
		}
		f.Stage(g, g.Apply(b.Net(false)))
		f.MaybeCompact(g)
		// After MaybeCompact the invariant must hold: ratio ≤ threshold.
		if f.OverlayRatio() > DefaultCompactThreshold {
			t.Fatalf("round %d: overlay ratio %.3f exceeds threshold", round, f.OverlayRatio())
		}
	}
	if f.Compactions() == 0 {
		t.Fatalf("long stream never triggered compaction")
	}
}

// TestFlatAppendOutSortedQuick quick-checks that AppendOutSorted returns
// exactly the graph's sorted neighbor set under random overlay churn.
func TestFlatAppendOutSortedQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 16
		g := New(n, false)
		for k := 0; k < 30; k++ {
			g.InsertEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1)
		}
		f := NewFlat(g)
		f.SetCompactThreshold(1e9) // never compact: exercise the overlay path
		for round := 0; round < 10; round++ {
			var b Batch
			for k := 0; k < 5; k++ {
				u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				if rng.Intn(2) == 0 {
					b = append(b, Update{Kind: InsertEdge, From: u, To: v, W: 1})
				} else {
					b = append(b, Update{Kind: DeleteEdge, From: u, To: v})
				}
			}
			f.Stage(g, g.Apply(b.Net(false)))
		}
		buf := make([]NodeID, 0, n)
		for u := 0; u < n; u++ {
			buf = f.AppendOutSorted(NodeID(u), buf[:0])
			want := graphEdges(g, NodeID(u), false)
			if len(buf) != len(want) {
				return false
			}
			for i := range buf {
				if buf[i] != want[i].To {
					return false
				}
			}
			if !sort.SliceIsSorted(buf, func(i, j int) bool { return buf[i] < buf[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIn(t *testing.T) {
	g := New(4, true)
	g.InsertEdge(0, 2, 3)
	g.InsertEdge(1, 2, 4)
	g.InsertEdge(3, 2, 5)
	g.InsertEdge(2, 0, 6)
	c := SnapshotIn(g)
	if got := c.Neighbors(2); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("in-neighbors of 2 = %v", got)
	}
	if got := c.Neighbors(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("in-neighbors of 0 = %v", got)
	}
	if c.Degree(1) != 0 {
		t.Fatalf("in-degree of 1 = %d", c.Degree(1))
	}
}

// TestFlatGrow covers nodes added after the snapshot: their base row is
// empty and all adjacency lives in the overlay until the next compaction.
func TestFlatGrow(t *testing.T) {
	g := New(2, false)
	g.InsertEdge(0, 1, 1)
	f := NewFlat(g)
	f.SetCompactThreshold(1e9)
	v := g.AddNode(0)
	b := Batch{{Kind: InsertEdge, From: 0, To: v, W: 7}}
	f.Stage(g, g.Apply(b))
	checkFlatAgainstGraph(t, f, g)
	if es := flatEdges(f, v); len(es) != 1 || es[0].To != 0 {
		t.Fatalf("new node edges = %v", es)
	}
}
