package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the graph parser: it must never panic, and anything
// it accepts must re-serialize and re-parse to an equal graph.
func FuzzRead(f *testing.F) {
	f.Add("graph directed 3\nv 1 7\ne 0 1 5\ne 1 2 2\n")
	f.Add("graph undirected 2\ne 0 1 1\n")
	f.Add("# comment\n\ngraph directed 0\n")
	f.Add("graph directed 2\ne 0 1 -5\n")
	f.Add("e 0 1 1")
	f.Add("graph directed 999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		// Large node counts allocate proportionally; clamp what the fuzzer
		// may request by inspecting header lines up front.
		for _, line := range strings.Split(in, "\n") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[0] == "graph" && len(fields[2]) > 6 {
				return
			}
		}
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized graph failed to parse: %v", err)
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() || h.Directed() != g.Directed() {
			t.Fatal("round trip changed the graph")
		}
		if err := g.CheckConsistent(); err != nil {
			t.Fatalf("accepted graph inconsistent: %v", err)
		}
	})
}

// FuzzReadBatch exercises the batch parser the same way.
func FuzzReadBatch(f *testing.F) {
	f.Add("+ 1 2 3\n- 4 5\n")
	f.Add("# nothing\n")
	f.Add("+ -1 -2 -3")
	// Torn-write corpora: a valid multi-line batch cut mid-line at every
	// offset, the shape a crash leaves behind in a text batch file.
	whole := "+ 1 2 3\n- 4 5 6\n+ 100 200 -7\n- 8 9\n"
	for cut := 0; cut < len(whole); cut++ {
		f.Add(whole[:cut])
	}
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		b, err := ReadBatch(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBatch(&buf, b); err != nil {
			t.Fatalf("accepted batch failed to serialize: %v", err)
		}
		b2, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("serialized batch failed to parse: %v", err)
		}
		if len(b2) != len(b) {
			t.Fatal("round trip changed the batch length")
		}
	})
}

// FuzzDecodeBatchBinary exercises the binary batch decoder used by the
// WAL frame payloads: arbitrary bytes must never panic, and an accepted
// batch must re-encode to a decodable equal batch.
func FuzzDecodeBatchBinary(f *testing.F) {
	seed := AppendBatchBinary(nil, Batch{
		{Kind: InsertEdge, From: 1, To: 2, W: 3},
		{Kind: DeleteEdge, From: 4, To: 5, W: -6},
	})
	f.Add(seed)
	for cut := 0; cut < len(seed); cut++ {
		f.Add(append([]byte(nil), seed[:cut]...))
	}
	for at := 0; at < len(seed); at++ {
		mut := append([]byte(nil), seed...)
		mut[at] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, rest, err := DecodeBatchBinary(data)
		if err != nil {
			return
		}
		_ = rest
		enc := AppendBatchBinary(nil, b)
		b2, rest2, err := DecodeBatchBinary(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest2))
		}
		if len(b2) != len(b) {
			t.Fatal("round trip changed the batch length")
		}
		for i := range b {
			if b[i] != b2[i] {
				t.Fatalf("update %d changed: %+v vs %+v", i, b[i], b2[i])
			}
		}
	})
}
