// Package graph provides the mutable labeled graph substrate used by every
// algorithm in this repository: directed or undirected graphs with weighted
// edges, O(1)-amortized edge insertion and deletion, batch update
// application (G ⊕ ΔG), temporal graphs, and read-optimized CSR snapshots.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node. Node ids are dense: a graph with n nodes uses
// ids 0..n-1. Deleted nodes keep their id (tombstoned) so that ids held by
// callers never dangle.
type NodeID int32

// Label is a node label drawn from a small alphabet, as in property graphs.
type Label int32

// Edge is one adjacency entry: the far endpoint and the edge weight.
// For unweighted graphs the weight is conventionally 1.
type Edge struct {
	To NodeID
	W  int64
}

// Infinity is the weight used as "no path" by shortest-path code. It is
// comfortably below overflow when added to any realistic path weight.
const Infinity int64 = math.MaxInt64 / 4

// Graph is a mutable labeled graph. Directed graphs maintain both out- and
// in-adjacency; undirected graphs store each edge in both endpoint lists
// and expose them through the out-adjacency only.
//
// Edge insertion and deletion are O(1) amortized via a position index keyed
// by the (from, to) pair. The graph is a simple graph: at most one edge per
// ordered pair (per unordered pair when undirected); self-loops are
// rejected.
type Graph struct {
	directed bool
	labels   []Label
	alive    []bool
	out      [][]Edge
	in       [][]Edge // nil when undirected
	outPos   map[uint64]int32
	inPos    map[uint64]int32 // nil when undirected
	numEdges int
	numAlive int
}

// New returns an empty graph with n nodes, all labeled 0.
func New(n int, directed bool) *Graph {
	g := &Graph{
		directed: directed,
		labels:   make([]Label, n),
		alive:    make([]bool, n),
		out:      make([][]Edge, n),
		outPos:   make(map[uint64]int32),
		numAlive: n,
	}
	for i := range g.alive {
		g.alive[i] = true
	}
	if directed {
		g.in = make([][]Edge, n)
		g.inPos = make(map[uint64]int32)
	}
	return g
}

func pack(u, v NodeID) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of node ids ever allocated, including
// tombstoned (deleted) nodes. Use it to size per-node arrays.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumAlive returns the number of nodes that have not been deleted.
func (g *Graph) NumAlive() int { return g.numAlive }

// NumEdges returns the number of edges. Each undirected edge counts once.
func (g *Graph) NumEdges() int { return g.numEdges }

// Size returns |V| + |E|, the measure of |G| used throughout the paper.
func (g *Graph) Size() int { return g.numAlive + g.numEdges }

// Alive reports whether node v exists (has not been deleted).
func (g *Graph) Alive(v NodeID) bool {
	return v >= 0 && int(v) < len(g.alive) && g.alive[v]
}

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) Label { return g.labels[v] }

// SetLabel assigns label l to node v.
func (g *Graph) SetLabel(v NodeID, l Label) { g.labels[v] = l }

// AddNode allocates a fresh node with the given label and returns its id.
func (g *Graph) AddNode(l Label) NodeID {
	id := NodeID(len(g.out))
	g.labels = append(g.labels, l)
	g.alive = append(g.alive, true)
	g.out = append(g.out, nil)
	if g.directed {
		g.in = append(g.in, nil)
	}
	g.numAlive++
	return id
}

// DeleteNode removes node v and all its incident edges. It returns the
// deleted incident edges as updates (inserts of the removed edges), which
// callers can use to express the deletion as edge updates, the dual view
// used by the paper (§4, vertex updates).
func (g *Graph) DeleteNode(v NodeID) []Update {
	if !g.Alive(v) {
		return nil
	}
	var removed []Update
	for len(g.out[v]) > 0 {
		e := g.out[v][len(g.out[v])-1]
		removed = append(removed, Update{Kind: DeleteEdge, From: v, To: e.To, W: e.W})
		g.DeleteEdge(v, e.To)
	}
	if g.directed {
		for len(g.in[v]) > 0 {
			e := g.in[v][len(g.in[v])-1]
			removed = append(removed, Update{Kind: DeleteEdge, From: e.To, To: v, W: e.W})
			g.DeleteEdge(e.To, v)
		}
	}
	g.alive[v] = false
	g.numAlive--
	return removed
}

// HasEdge reports whether edge (u, v) exists. For undirected graphs the
// pair is unordered.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.outPos[pack(u, v)]
	return ok
}

// Weight returns the weight of edge (u, v), or Infinity if absent.
func (g *Graph) Weight(u, v NodeID) int64 {
	if i, ok := g.outPos[pack(u, v)]; ok {
		return g.out[u][i].W
	}
	return Infinity
}

// InsertEdge adds edge (u, v) with weight w. It reports whether the edge
// was inserted; inserting an existing edge or a self-loop is a no-op that
// returns false.
func (g *Graph) InsertEdge(u, v NodeID, w int64) bool {
	if u == v || !g.Alive(u) || !g.Alive(v) || g.HasEdge(u, v) {
		return false
	}
	g.addHalf(u, v, w)
	if g.directed {
		g.inPos[pack(u, v)] = int32(len(g.in[v]))
		g.in[v] = append(g.in[v], Edge{To: u, W: w})
	} else {
		g.addHalf(v, u, w)
	}
	g.numEdges++
	return true
}

func (g *Graph) addHalf(u, v NodeID, w int64) {
	g.outPos[pack(u, v)] = int32(len(g.out[u]))
	g.out[u] = append(g.out[u], Edge{To: v, W: w})
}

// DeleteEdge removes edge (u, v). It reports whether the edge existed.
func (g *Graph) DeleteEdge(u, v NodeID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.delHalfOut(u, v)
	if g.directed {
		g.delHalfIn(u, v)
	} else {
		g.delHalfOut(v, u)
	}
	g.numEdges--
	return true
}

func (g *Graph) delHalfOut(u, v NodeID) {
	k := pack(u, v)
	i := g.outPos[k]
	last := int32(len(g.out[u]) - 1)
	if i != last {
		moved := g.out[u][last]
		g.out[u][i] = moved
		g.outPos[pack(u, moved.To)] = i
	}
	g.out[u] = g.out[u][:last]
	delete(g.outPos, k)
}

func (g *Graph) delHalfIn(u, v NodeID) {
	k := pack(u, v)
	i := g.inPos[k]
	last := int32(len(g.in[v]) - 1)
	if i != last {
		moved := g.in[v][last]
		g.in[v][i] = moved
		g.inPos[pack(moved.To, v)] = i
	}
	g.in[v] = g.in[v][:last]
	delete(g.inPos, k)
}

// SetWeight updates the weight of an existing edge (u, v). It reports
// whether the edge existed.
func (g *Graph) SetWeight(u, v NodeID, w int64) bool {
	i, ok := g.outPos[pack(u, v)]
	if !ok {
		return false
	}
	g.out[u][i].W = w
	if g.directed {
		g.in[v][g.inPos[pack(u, v)]].W = w
	} else {
		g.out[v][g.outPos[pack(v, u)]].W = w
	}
	return true
}

// Out returns the out-adjacency of u (all neighbors when undirected).
// The returned slice is owned by the graph: callers must not mutate it and
// must not hold it across graph mutations.
func (g *Graph) Out(u NodeID) []Edge { return g.out[u] }

// In returns the in-adjacency of u for directed graphs, and the neighbor
// list (same as Out) for undirected graphs.
func (g *Graph) In(u NodeID) []Edge {
	if g.directed {
		return g.in[u]
	}
	return g.out[u]
}

// OutDegree returns the number of outgoing edges of u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// InDegree returns the number of incoming edges of u.
func (g *Graph) InDegree(u NodeID) int { return len(g.In(u)) }

// Degree returns the degree of u in an undirected graph.
func (g *Graph) Degree(u NodeID) int { return len(g.out[u]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed: g.directed,
		labels:   append([]Label(nil), g.labels...),
		alive:    append([]bool(nil), g.alive...),
		out:      make([][]Edge, len(g.out)),
		outPos:   make(map[uint64]int32, len(g.outPos)),
		numEdges: g.numEdges,
		numAlive: g.numAlive,
	}
	for i, es := range g.out {
		c.out[i] = append([]Edge(nil), es...)
	}
	for k, v := range g.outPos {
		c.outPos[k] = v
	}
	if g.directed {
		c.in = make([][]Edge, len(g.in))
		for i, es := range g.in {
			c.in[i] = append([]Edge(nil), es...)
		}
		c.inPos = make(map[uint64]int32, len(g.inPos))
		for k, v := range g.inPos {
			c.inPos[k] = v
		}
	}
	return c
}

// Edges calls fn for every edge. Undirected edges are reported once, with
// From < To.
func (g *Graph) Edges(fn func(u, v NodeID, w int64)) {
	for u := range g.out {
		for _, e := range g.out[u] {
			if g.directed || NodeID(u) < e.To {
				fn(NodeID(u), e.To, e.W)
			}
		}
	}
}

// CheckConsistent verifies internal invariants (index integrity, mirror
// edges, edge counts). It is used by tests and costs O(|V| + |E|).
func (g *Graph) CheckConsistent() error {
	count := 0
	for u := range g.out {
		for i, e := range g.out[u] {
			k := pack(NodeID(u), e.To)
			j, ok := g.outPos[k]
			if !ok || int(j) != i {
				return fmt.Errorf("out index broken for (%d,%d): have %d want %d", u, e.To, j, i)
			}
			if NodeID(u) == e.To {
				return fmt.Errorf("self-loop at %d", u)
			}
			count++
		}
	}
	if len(g.outPos) != count {
		return fmt.Errorf("outPos has %d entries, adjacency has %d", len(g.outPos), count)
	}
	if g.directed {
		inCount := 0
		for v := range g.in {
			for i, e := range g.in[v] {
				k := pack(e.To, NodeID(v))
				j, ok := g.inPos[k]
				if !ok || int(j) != i {
					return fmt.Errorf("in index broken for (%d,%d)", e.To, v)
				}
				if !g.HasEdge(e.To, NodeID(v)) {
					return fmt.Errorf("in edge (%d,%d) missing from out", e.To, v)
				}
				inCount++
			}
		}
		if inCount != count {
			return fmt.Errorf("in count %d != out count %d", inCount, count)
		}
		if count != g.numEdges {
			return fmt.Errorf("numEdges %d != actual %d", g.numEdges, count)
		}
	} else {
		if count != 2*g.numEdges {
			return fmt.Errorf("numEdges %d != half of %d", g.numEdges, count)
		}
		for u := range g.out {
			for _, e := range g.out[u] {
				if !g.HasEdge(e.To, NodeID(u)) {
					return fmt.Errorf("undirected edge (%d,%d) has no mirror", u, e.To)
				}
				if g.Weight(e.To, NodeID(u)) != e.W {
					return fmt.Errorf("mirror weight mismatch on (%d,%d)", u, e.To)
				}
			}
		}
	}
	return nil
}
