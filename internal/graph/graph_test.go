package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5, true)
	if g.NumNodes() != 5 || g.NumEdges() != 0 || g.NumAlive() != 5 {
		t.Fatalf("got nodes=%d edges=%d alive=%d", g.NumNodes(), g.NumEdges(), g.NumAlive())
	}
	if !g.Directed() {
		t.Fatal("expected directed")
	}
	if g.Size() != 5 {
		t.Fatalf("Size = %d, want 5", g.Size())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteDirected(t *testing.T) {
	g := New(4, true)
	if !g.InsertEdge(0, 1, 5) {
		t.Fatal("insert failed")
	}
	if g.InsertEdge(0, 1, 7) {
		t.Fatal("duplicate insert succeeded")
	}
	if g.InsertEdge(2, 2, 1) {
		t.Fatal("self-loop insert succeeded")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed edge direction wrong")
	}
	if g.Weight(0, 1) != 5 {
		t.Fatalf("weight = %d", g.Weight(0, 1))
	}
	if g.Weight(1, 0) != Infinity {
		t.Fatal("absent edge should weigh Infinity")
	}
	if len(g.In(1)) != 1 || g.In(1)[0].To != 0 {
		t.Fatalf("in-adjacency wrong: %v", g.In(1))
	}
	if !g.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	if g.DeleteEdge(0, 1) {
		t.Fatal("double delete succeeded")
	}
	if g.NumEdges() != 0 || len(g.Out(0)) != 0 || len(g.In(1)) != 0 {
		t.Fatal("edge not fully removed")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteUndirected(t *testing.T) {
	g := New(3, false)
	g.InsertEdge(0, 1, 2)
	if !g.HasEdge(1, 0) {
		t.Fatal("undirected edge must exist in both directions")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong")
	}
	if g.InsertEdge(1, 0, 9) {
		t.Fatal("reverse duplicate insert succeeded")
	}
	if !g.DeleteEdge(1, 0) {
		t.Fatal("delete via reverse orientation failed")
	}
	if g.HasEdge(0, 1) || g.NumEdges() != 0 {
		t.Fatal("edge not removed")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestSetWeight(t *testing.T) {
	g := New(3, false)
	g.InsertEdge(0, 1, 2)
	if !g.SetWeight(1, 0, 7) {
		t.Fatal("SetWeight failed")
	}
	if g.Weight(0, 1) != 7 || g.Weight(1, 0) != 7 {
		t.Fatal("weights not mirrored")
	}
	if g.SetWeight(0, 2, 1) {
		t.Fatal("SetWeight on absent edge succeeded")
	}
	d := New(3, true)
	d.InsertEdge(0, 1, 2)
	d.SetWeight(0, 1, 9)
	if d.In(1)[0].W != 9 {
		t.Fatal("directed in-list weight not updated")
	}
}

func TestSwapRemoveKeepsIndex(t *testing.T) {
	// Deleting from the middle of an adjacency list must fix up the moved
	// entry's position index.
	g := New(5, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(0, 3, 1)
	g.InsertEdge(0, 4, 1)
	g.DeleteEdge(0, 2) // 4 moves into slot of 2
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if !g.DeleteEdge(0, 4) {
		t.Fatal("moved edge lost")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestAddDeleteNode(t *testing.T) {
	g := New(2, true)
	g.InsertEdge(0, 1, 1)
	v := g.AddNode(3)
	if v != 2 || g.Label(v) != 3 {
		t.Fatalf("AddNode gave id=%d label=%d", v, g.Label(v))
	}
	g.InsertEdge(v, 0, 1)
	g.InsertEdge(1, v, 1)
	removed := g.DeleteNode(v)
	if len(removed) != 2 {
		t.Fatalf("DeleteNode removed %d edges, want 2", len(removed))
	}
	if g.Alive(v) || g.NumAlive() != 2 {
		t.Fatal("node still alive")
	}
	if g.InsertEdge(0, v, 1) {
		t.Fatal("insert touching dead node succeeded")
	}
	if g.DeleteNode(v) != nil {
		t.Fatal("double node delete returned edges")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	g := New(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 2)
	c := g.Clone()
	c.DeleteEdge(0, 1)
	c.InsertEdge(2, 3, 5)
	if !g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("clone shares state with original")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := New(4, false)
	g.InsertEdge(3, 1, 1)
	g.InsertEdge(0, 2, 1)
	seen := map[[2]NodeID]bool{}
	g.Edges(func(u, v NodeID, w int64) {
		if u >= v {
			t.Fatalf("undirected edge (%d,%d) not normalized", u, v)
		}
		seen[[2]NodeID{u, v}] = true
	})
	if len(seen) != 2 || !seen[[2]NodeID{1, 3}] || !seen[[2]NodeID{0, 2}] {
		t.Fatalf("edges seen: %v", seen)
	}
}

// randomMutation applies n random insert/delete operations, verifying
// consistency against a model map.
func randomMutation(directed bool, n int, seed int64, t *testing.T) {
	rng := rand.New(rand.NewSource(seed))
	const nodes = 20
	g := New(nodes, directed)
	model := map[uint64]int64{}
	key := func(u, v NodeID) uint64 {
		if !directed && u > v {
			u, v = v, u
		}
		return pack(u, v)
	}
	for i := 0; i < n; i++ {
		u := NodeID(rng.Intn(nodes))
		v := NodeID(rng.Intn(nodes))
		if rng.Intn(2) == 0 {
			w := int64(rng.Intn(100) + 1)
			ok := g.InsertEdge(u, v, w)
			_, had := model[key(u, v)]
			wantOK := u != v && !had
			if ok != wantOK {
				t.Fatalf("insert(%d,%d) ok=%v want %v", u, v, ok, wantOK)
			}
			if ok {
				model[key(u, v)] = w
			}
		} else {
			ok := g.DeleteEdge(u, v)
			_, had := model[key(u, v)]
			if directed {
				if ok != had {
					t.Fatalf("delete(%d,%d) ok=%v want %v", u, v, ok, had)
				}
			} else if !ok && had {
				t.Fatalf("undirected delete(%d,%d) failed but edge present", u, v)
			}
			if ok {
				delete(model, key(u, v))
			}
		}
	}
	if g.NumEdges() != len(model) {
		t.Fatalf("edge count %d, model %d", g.NumEdges(), len(model))
	}
	for k, w := range model {
		u, v := NodeID(k>>32), NodeID(uint32(k))
		if g.Weight(u, v) != w {
			t.Fatalf("weight(%d,%d)=%d want %d", u, v, g.Weight(u, v), w)
		}
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMutationsDirected(t *testing.T)   { randomMutation(true, 3000, 1, t) }
func TestRandomMutationsUndirected(t *testing.T) { randomMutation(false, 3000, 2, t) }

func TestRandomMutationsManySeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		randomMutation(seed%2 == 0, 300, seed, t)
	}
}

// TestPackInjective checks that the edge-key packing never collides for
// valid node ids, via testing/quick.
func TestPackInjective(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		u1, v1 := NodeID(a&0xffff), NodeID(b&0xffff)
		u2, v2 := NodeID(c&0xffff), NodeID(d&0xffff)
		if u1 == u2 && v1 == v2 {
			return pack(u1, v1) == pack(u2, v2)
		}
		return pack(u1, v1) != pack(u2, v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
