package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format is a labeled edge list, line-oriented and diff-friendly:
//
//	graph <directed|undirected> <numNodes>
//	v <id> <label>            # only nodes with non-zero labels
//	e <from> <to> <weight>
//
// Lines starting with '#' and blank lines are ignored. It round-trips
// everything except node tombstones (deleted node ids are compacted away
// by the writer only if they are trailing).

// WriteTo serializes the graph. It returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	if err := count(fmt.Fprintf(bw, "graph %s %d\n", kind, g.NumNodes())); err != nil {
		return n, err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if l := g.Label(NodeID(v)); l != 0 {
			if err := count(fmt.Fprintf(bw, "v %d %d\n", v, l)); err != nil {
				return n, err
			}
		}
	}
	var werr error
	g.Edges(func(u, v NodeID, wgt int64) {
		if werr == nil {
			werr = count(fmt.Fprintf(bw, "e %d %d %d\n", u, v, wgt))
		}
	})
	if werr != nil {
		return n, werr
	}
	return n, bw.Flush()
}

// WriteBatch serializes a batch of updates, one per line: "+ u v w" for
// insertions, "- u v" (or "- u v w" when the deletion records the removed
// weight, as the batches returned by Graph.Apply do) for deletions.
// Comments and blank lines are allowed when reading back; the format
// round-trips exactly through ReadBatch.
func WriteBatch(w io.Writer, b Batch) error {
	bw := bufio.NewWriter(w)
	for _, u := range b {
		var err error
		switch u.Kind {
		case InsertEdge:
			_, err = fmt.Fprintf(bw, "+ %d %d %d\n", u.From, u.To, u.W)
		case DeleteEdge:
			if u.W != 0 {
				_, err = fmt.Fprintf(bw, "- %d %d %d\n", u.From, u.To, u.W)
			} else {
				_, err = fmt.Fprintf(bw, "- %d %d\n", u.From, u.To)
			}
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBatch parses a batch in the WriteBatch format. Each update is
// validated as it is parsed (non-negative node ids and weights, see
// Update.Validate), so a malformed update file fails with a line-numbered
// error here instead of panicking deep inside a maintainer. Upper node-id
// bounds depend on the target graph and are checked by Batch.Validate.
func ReadBatch(r io.Reader) (Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b Batch
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var upd Update
		switch {
		case fields[0] == "+" && len(fields) == 4:
			var u, v, w int64
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d", &u, &v, &w); err != nil {
				return nil, fmt.Errorf("batch: line %d: %v", line, err)
			}
			upd = Update{Kind: InsertEdge, From: NodeID(u), To: NodeID(v), W: w}
		case fields[0] == "-" && (len(fields) == 3 || len(fields) == 4):
			var u, v, w int64
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("batch: line %d: %v", line, err)
			}
			if len(fields) == 4 {
				if _, err := fmt.Sscanf(fields[3], "%d", &w); err != nil {
					return nil, fmt.Errorf("batch: line %d: %v", line, err)
				}
			}
			upd = Update{Kind: DeleteEdge, From: NodeID(u), To: NodeID(v), W: w}
		default:
			return nil, fmt.Errorf("batch: line %d: malformed update %q", line, text)
		}
		if err := upd.Validate(-1); err != nil {
			return nil, fmt.Errorf("batch: line %d: %v", line, err)
		}
		b = append(b, upd)
	}
	return b, sc.Err()
}

// Read parses a graph in the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "graph":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header", line)
			}
			var n int
			if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[2])
			}
			switch fields[1] {
			case "directed":
				g = New(n, true)
			case "undirected":
				g = New(n, false)
			default:
				return nil, fmt.Errorf("graph: line %d: bad kind %q", line, fields[1])
			}
		case "v":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: v before header", line)
			}
			var id, label int64
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed v line", line)
			}
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &id, &label); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if id < 0 || id >= int64(g.NumNodes()) {
				return nil, fmt.Errorf("graph: line %d: node %d out of range", line, id)
			}
			g.SetLabel(NodeID(id), Label(label))
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: e before header", line)
			}
			var u, v, wgt int64
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed e line", line)
			}
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d", &u, &v, &wgt); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if u < 0 || u >= int64(g.NumNodes()) || v < 0 || v >= int64(g.NumNodes()) {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
			}
			if !g.InsertEdge(NodeID(u), NodeID(v), wgt) {
				return nil, fmt.Errorf("graph: line %d: duplicate or degenerate edge (%d,%d)", line, u, v)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	return g, nil
}
