package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		g := New(25, directed)
		for v := 0; v < 25; v++ {
			g.SetLabel(NodeID(v), Label(rng.Intn(4)))
		}
		g.Apply(randomBatch(rng, 25, 120))

		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Directed() != g.Directed() || got.NumNodes() != g.NumNodes() {
			t.Fatal("shape mismatch")
		}
		if !reflect.DeepEqual(edgeSet(got), edgeSet(g)) {
			t.Fatal("edges mismatch")
		}
		for v := 0; v < 25; v++ {
			if got.Label(NodeID(v)) != g.Label(NodeID(v)) {
				t.Fatalf("label mismatch at %d", v)
			}
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
graph directed 3

v 1 7
e 0 1 5
# trailing comment
e 1 2 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 5 || g.Weight(1, 2) != 2 || g.Label(1) != 7 {
		t.Fatal("content wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                                   // missing header
		"e 0 1 5",                            // edge before header
		"v 0 1",                              // vertex before header
		"graph directed",                     // malformed header
		"graph sideways 3",                   // bad kind
		"graph directed -1",                  // bad count
		"graph directed 2\ne 0 5 1",          // out of range
		"graph directed 2\nv 9 1",            // vertex out of range
		"graph directed 2\ne 0 1",            // malformed edge
		"graph directed 2\nzz 1 2",           // unknown record
		"graph directed 2\ngraph directed 2", // duplicate header
		"graph directed 2\ne 0 1 1\ne 0 1 2", // duplicate edge
		"graph directed 2\ne 1 1 1",          // self-loop
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{
		{Kind: InsertEdge, From: 1, To: 2, W: 7},
		{Kind: DeleteEdge, From: 3, To: 0},
		{Kind: InsertEdge, From: 0, To: 4, W: 1},
	}
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != b[0] || got[2] != b[2] {
		t.Fatalf("round trip = %v", got)
	}
	if got[1].Kind != DeleteEdge || got[1].From != 3 || got[1].To != 0 {
		t.Fatalf("delete round trip = %v", got[1])
	}
}

// The batch text format must round-trip exactly — including the removed
// weight recorded on deletions (as produced by Graph.Apply), which the
// writer emits as a fourth field.
func TestBatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, 20, 40)
		// Give some deletions a recorded weight, as Graph.Apply does.
		for i := range b {
			if b[i].Kind == DeleteEdge && rng.Intn(2) == 0 {
				b[i].W = int64(rng.Intn(50) + 1)
			}
		}
		var buf bytes.Buffer
		if err := WriteBatch(&buf, b); err != nil {
			return false
		}
		got, err := ReadBatch(&buf)
		if err != nil {
			return false
		}
		if len(b) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// An applied batch serialized to text, read back, and inverted must
// restore the exact edge set — the crash-recovery path of a service that
// journals its applied batches.
func TestSerializedInverseRestores(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(12, seed%2 == 0)
		g.Apply(randomBatch(rng, 12, 40))
		before := edgeSet(g)
		applied := g.Apply(randomBatch(rng, 12, 30))
		var buf bytes.Buffer
		if err := WriteBatch(&buf, applied); err != nil {
			t.Fatal(err)
		}
		reread, err := ReadBatch(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reread, applied) && len(applied) > 0 {
			t.Fatalf("seed %d: applied batch did not round-trip: %v vs %v", seed, reread, applied)
		}
		g.Apply(reread.Inverse())
		if !reflect.DeepEqual(edgeSet(g), before) {
			t.Fatalf("seed %d: inverse of serialized batch did not restore the edge set", seed)
		}
	}
}

func TestReadBatchTolerant(t *testing.T) {
	in := "# comment\n\n+ 1 2 3\n- 4 5\n"
	b, err := ReadBatch(strings.NewReader(in))
	if err != nil || len(b) != 2 {
		t.Fatalf("b=%v err=%v", b, err)
	}
}

func TestReadBatchErrors(t *testing.T) {
	for _, in := range []string{
		"* 1 2", "+ 1 2", "- 1", "+ a b c",
		"+ -1 2 3", // negative node id
		"+ 1 2 -3", // negative weight
		"- 1 -2",   // negative node id on delete
	} {
		if _, err := ReadBatch(strings.NewReader(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
	// Errors carry the 1-based line number of the offending update.
	_, err := ReadBatch(strings.NewReader("# ok\n+ 0 1 2\n+ 1 2 -9\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestReadBatchDeletionWeight(t *testing.T) {
	b, err := ReadBatch(strings.NewReader("- 3 4 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := Update{Kind: DeleteEdge, From: 3, To: 4, W: 7}
	if len(b) != 1 || b[0] != want {
		t.Fatalf("got %v, want %v", b, want)
	}
}

// failAfter errors once n bytes have been written, exercising the
// serializers' error paths.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWrite
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errWrite
	}
	f.n -= len(p)
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestWriteErrors(t *testing.T) {
	g := New(5, true)
	g.SetLabel(1, 3)
	for v := 0; v < 4; v++ {
		g.InsertEdge(NodeID(v), NodeID(v+1), 1)
	}
	var full bytes.Buffer
	if _, err := g.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	// A writer failing at any byte offset must surface an error.
	for n := 0; n < full.Len(); n += 7 {
		if _, err := g.WriteTo(&failAfter{n: n}); err == nil {
			t.Fatalf("no error when failing after %d bytes", n)
		}
	}
	if err := WriteBatch(&failAfter{n: 2}, Batch{{Kind: InsertEdge, From: 0, To: 1, W: 1}}); err == nil {
		t.Fatal("WriteBatch ignored write failure")
	}
	if err := WriteBatch(&failAfter{n: 2}, Batch{{Kind: DeleteEdge, From: 0, To: 1}}); err == nil {
		t.Fatal("WriteBatch ignored delete write failure")
	}
}

func TestWriteDeterministic(t *testing.T) {
	g := New(3, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 3)
	g.SetLabel(2, 9)
	var a, b bytes.Buffer
	g.WriteTo(&a)
	g.WriteTo(&b)
	if a.String() != b.String() {
		t.Fatal("serialization not deterministic")
	}
	if !strings.Contains(a.String(), "graph undirected 3") {
		t.Fatalf("header missing: %q", a.String())
	}
}
