package graph

import "sort"

// Event is a timestamped unit update, as found in real temporal graphs
// such as the paper's Wiki-DE dataset, where each hyperlink edit carries
// the time it was added or removed.
type Event struct {
	Time int64
	Update
}

// Temporal is a temporal graph: a base snapshot description plus a
// time-ordered event log. It reconstructs any historical snapshot and
// extracts the update batch of any time window, which is how the paper
// derives real-life updates for Exp-2(2).
type Temporal struct {
	numNodes int
	directed bool
	labels   []Label
	events   []Event
}

// NewTemporal creates a temporal graph over n nodes with the given labels
// (nil means all zero) and event log. Events are sorted by time,
// preserving the relative order of simultaneous events.
func NewTemporal(n int, directed bool, labels []Label, events []Event) *Temporal {
	if labels == nil {
		labels = make([]Label, n)
	}
	es := append([]Event(nil), events...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Time < es[j].Time })
	return &Temporal{numNodes: n, directed: directed, labels: labels, events: es}
}

// NumEvents returns the number of events in the log.
func (t *Temporal) NumEvents() int { return len(t.events) }

// Span returns the earliest and latest event times. It returns (0, 0) for
// an empty log.
func (t *Temporal) Span() (int64, int64) {
	if len(t.events) == 0 {
		return 0, 0
	}
	return t.events[0].Time, t.events[len(t.events)-1].Time
}

// Snapshot materializes the graph state at time tm: all events with
// Time <= tm applied in order to the empty graph.
func (t *Temporal) Snapshot(tm int64) *Graph {
	g := New(t.numNodes, t.directed)
	for i, l := range t.labels {
		g.SetLabel(NodeID(i), l)
	}
	for _, e := range t.events {
		if e.Time > tm {
			break
		}
		g.Apply(Batch{e.Update})
	}
	return g
}

// Window returns the batch of updates with time in (from, to], the ΔG that
// evolves Snapshot(from) into Snapshot(to).
func (t *Temporal) Window(from, to int64) Batch {
	lo := sort.Search(len(t.events), func(i int) bool { return t.events[i].Time > from })
	hi := sort.Search(len(t.events), func(i int) bool { return t.events[i].Time > to })
	b := make(Batch, 0, hi-lo)
	for _, e := range t.events[lo:hi] {
		b = append(b, e.Update)
	}
	return b
}

// InsertFraction returns the fraction of events in (from, to] that are
// insertions; the paper reports 81% for monthly Wiki-DE windows.
func (t *Temporal) InsertFraction(from, to int64) float64 {
	b := t.Window(from, to)
	if len(b) == 0 {
		return 0
	}
	ins := 0
	for _, u := range b {
		if u.Kind == InsertEdge {
			ins++
		}
	}
	return float64(ins) / float64(len(b))
}
