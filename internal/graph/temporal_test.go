package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func demoTemporal() *Temporal {
	return NewTemporal(4, false, []Label{1, 1, 2, 2}, []Event{
		{Time: 10, Update: Update{Kind: InsertEdge, From: 0, To: 1, W: 1}},
		{Time: 20, Update: Update{Kind: InsertEdge, From: 1, To: 2, W: 1}},
		{Time: 30, Update: Update{Kind: DeleteEdge, From: 0, To: 1}},
		{Time: 40, Update: Update{Kind: InsertEdge, From: 2, To: 3, W: 1}},
	})
}

func TestTemporalSnapshot(t *testing.T) {
	tp := demoTemporal()
	g := tp.Snapshot(25)
	if g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("snapshot(25) wrong: %d edges", g.NumEdges())
	}
	if g.Label(2) != 2 {
		t.Fatal("labels not applied")
	}
	g = tp.Snapshot(35)
	if g.HasEdge(0, 1) {
		t.Fatal("deletion not applied at t=35")
	}
}

func TestTemporalWindowEvolution(t *testing.T) {
	tp := demoTemporal()
	g := tp.Snapshot(15)
	g.Apply(tp.Window(15, 40))
	want := edgeSet(tp.Snapshot(40))
	if !reflect.DeepEqual(edgeSet(g), want) {
		t.Fatal("snapshot(from) ⊕ window(from,to) != snapshot(to)")
	}
}

func TestTemporalWindowBounds(t *testing.T) {
	tp := demoTemporal()
	if n := len(tp.Window(10, 30)); n != 2 {
		t.Fatalf("window (10,30] has %d events, want 2", n)
	}
	if n := len(tp.Window(0, 5)); n != 0 {
		t.Fatalf("empty window has %d events", n)
	}
	lo, hi := tp.Span()
	if lo != 10 || hi != 40 {
		t.Fatalf("span = (%d,%d)", lo, hi)
	}
	empty := NewTemporal(1, false, nil, nil)
	if lo, hi := empty.Span(); lo != 0 || hi != 0 {
		t.Fatal("empty span should be (0,0)")
	}
}

func TestTemporalEventsSorted(t *testing.T) {
	tp := NewTemporal(3, true, nil, []Event{
		{Time: 30, Update: Update{Kind: InsertEdge, From: 0, To: 1, W: 1}},
		{Time: 10, Update: Update{Kind: InsertEdge, From: 1, To: 2, W: 1}},
	})
	g := tp.Snapshot(15)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 1) {
		t.Fatal("events not sorted by time")
	}
	if tp.NumEvents() != 2 {
		t.Fatal("NumEvents wrong")
	}
}

// Snapshot/window composition is the defining property of the temporal
// graph: snapshot(a) ⊕ window(a,b) == snapshot(b) for any a <= b, over
// arbitrary event logs.
func TestTemporalCompositionQuick(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 8
		var events []Event
		for i := 0; i < 60; i++ {
			u := Update{From: NodeID(rng.Intn(nodes)), To: NodeID(rng.Intn(nodes)), W: int64(rng.Intn(9) + 1)}
			if rng.Intn(2) == 0 {
				u.Kind = DeleteEdge
			}
			events = append(events, Event{Time: int64(rng.Intn(20)), Update: u})
		}
		tp := NewTemporal(nodes, seed%2 == 0, nil, events)
		a, b := int64(aRaw%21), int64(bRaw%21)
		if a > b {
			a, b = b, a
		}
		g := tp.Snapshot(a)
		g.Apply(tp.Window(a, b))
		return reflect.DeepEqual(edgeSet(g), edgeSet(tp.Snapshot(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFraction(t *testing.T) {
	tp := demoTemporal()
	got := tp.InsertFraction(0, 40)
	if got != 0.75 {
		t.Fatalf("InsertFraction = %v, want 0.75", got)
	}
	if tp.InsertFraction(100, 200) != 0 {
		t.Fatal("empty window fraction should be 0")
	}
}
