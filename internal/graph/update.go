package graph

import "fmt"

// UpdateKind distinguishes the unit update types of the paper: edge
// insertions and deletions. Vertex updates are expressed as their duals
// (AddNode/DeleteNode plus edge updates), per §4 of the paper.
type UpdateKind uint8

const (
	// InsertEdge adds edge (From, To) with weight W.
	InsertEdge UpdateKind = iota
	// DeleteEdge removes edge (From, To); W records the removed weight so
	// a batch can be reverted.
	DeleteEdge
)

// Update is a unit update ΔG: one edge insertion or deletion.
type Update struct {
	Kind     UpdateKind
	From, To NodeID
	W        int64
}

// String renders the update in +/-(u,v,w) form.
func (u Update) String() string {
	sign := "+"
	if u.Kind == DeleteEdge {
		sign = "-"
	}
	return fmt.Sprintf("%s(%d,%d,%d)", sign, u.From, u.To, u.W)
}

// Batch is a batch update: a sequence of unit updates applied in order.
type Batch []Update

// Size returns |ΔG|, the number of unit updates.
func (b Batch) Size() int { return len(b) }

// Inverse returns the batch that undoes b: the reverse sequence with each
// insertion turned into a deletion and vice versa.
func (b Batch) Inverse() Batch {
	inv := make(Batch, len(b))
	for i, u := range b {
		k := InsertEdge
		if u.Kind == InsertEdge {
			k = DeleteEdge
		}
		inv[len(b)-1-i] = Update{Kind: k, From: u.From, To: u.To, W: u.W}
	}
	return inv
}

// ApplySummary reports what one batch application did to a graph: the
// sub-batch that actually changed it plus a count of every update that
// was skipped and why. Re-inserting a present edge and deleting an
// absent one are idempotent no-ops — identically so for directed and
// undirected graphs, where the mirrored half-edge representation used to
// make the accounting easy to get subtly wrong — and malformed updates
// (out-of-range ids, self-loops, dead endpoints, unknown kinds) are
// counted and skipped instead of panicking, so arbitrary input reaching
// batch application is safe.
type ApplySummary struct {
	// Applied is the sub-batch that changed the graph, in order; its
	// Inverse reverts the application. Deletions carry the weight of the
	// edge that was removed.
	Applied Batch
	// Inserted and Deleted count the applied updates by kind.
	Inserted, Deleted int
	// DupInserts counts insertions of already-present edges (for
	// undirected graphs, in either orientation).
	DupInserts int
	// AbsentDeletes counts deletions of edges that do not exist.
	AbsentDeletes int
	// Malformed counts updates no graph state could apply: endpoints out
	// of [0, NumNodes), self-loops, tombstoned endpoints, unknown kinds.
	Malformed int
}

// Skipped returns the total number of updates that did not change the
// graph.
func (s ApplySummary) Skipped() int {
	return s.DupInserts + s.AbsentDeletes + s.Malformed
}

// ApplyCounted applies the batch to g in order, computing G ⊕ ΔG in
// place, and returns the full accounting. It never panics: every update
// is classified before it touches the adjacency structures.
func (g *Graph) ApplyCounted(b Batch) ApplySummary {
	var s ApplySummary
	s.Applied = make(Batch, 0, len(b))
	n := NodeID(g.NumNodes())
	for _, u := range b {
		if u.From < 0 || u.From >= n || u.To < 0 || u.To >= n ||
			u.From == u.To || !g.Alive(u.From) || !g.Alive(u.To) {
			s.Malformed++
			continue
		}
		switch u.Kind {
		case InsertEdge:
			if g.InsertEdge(u.From, u.To, u.W) {
				s.Applied = append(s.Applied, u)
				s.Inserted++
			} else {
				s.DupInserts++
			}
		case DeleteEdge:
			w := g.Weight(u.From, u.To)
			if g.DeleteEdge(u.From, u.To) {
				s.Applied = append(s.Applied, Update{Kind: DeleteEdge, From: u.From, To: u.To, W: w})
				s.Deleted++
			} else {
				s.AbsentDeletes++
			}
		default:
			s.Malformed++
		}
	}
	return s
}

// Apply applies the batch to g in order, computing G ⊕ ΔG in place.
// It returns the sub-batch of updates that actually changed the graph
// (inserting a present edge or deleting an absent one is skipped), so the
// caller can revert with the result's Inverse. Deletions in the returned
// batch carry the weight of the edge that was removed. Callers that need
// the skip accounting use ApplyCounted.
func (g *Graph) Apply(b Batch) Batch {
	return g.ApplyCounted(b).Applied
}

// Validate checks that the update is well-formed against a graph with n
// nodes: both endpoints in [0, n) and a non-negative weight. A negative n
// skips the upper-bound check, validating only what is knowable without a
// graph (non-negative ids and weights) — the mode used by ReadBatch, where
// the target graph is not yet known.
func (u Update) Validate(n int) error {
	for _, v := range [2]NodeID{u.From, u.To} {
		if v < 0 {
			return fmt.Errorf("negative node id %d", v)
		}
		if n >= 0 && int(v) >= n {
			return fmt.Errorf("node %d out of range [0,%d)", v, n)
		}
	}
	if u.W < 0 {
		return fmt.Errorf("negative weight %d", u.W)
	}
	return nil
}

// Validate checks every update in the batch against a graph with n nodes
// (see Update.Validate), reporting the index of the first offender. It is
// the gate a serving layer runs before handing ΔG to a maintainer, so
// malformed input fails fast instead of panicking deep inside repair code.
func (b Batch) Validate(n int) error {
	for i, u := range b {
		if err := u.Validate(n); err != nil {
			return fmt.Errorf("update %d %s: %w", i, u, err)
		}
	}
	return nil
}

// TouchedNodes returns the distinct nodes incident to any update in b, the
// starting points for initial scope functions.
func (b Batch) TouchedNodes() []NodeID {
	seen := make(map[NodeID]struct{}, 2*len(b))
	var out []NodeID
	for _, u := range b {
		if _, ok := seen[u.From]; !ok {
			seen[u.From] = struct{}{}
			out = append(out, u.From)
		}
		if _, ok := seen[u.To]; !ok {
			seen[u.To] = struct{}{}
			out = append(out, u.To)
		}
	}
	return out
}

// Net reduces the batch to its net effect per edge: G ⊕ Net(ΔG) equals
// G ⊕ ΔG for every graph G of the stated directedness, but churn
// (insert-then-delete, repeated operations) collapses to at most two
// updates per edge. Incremental algorithms process Net(ΔG) to avoid wasted
// work on churn. For undirected graphs, updates on (u, v) and (v, u)
// address the same edge and are collapsed together.
func (b Batch) Net(directed bool) Batch {
	type state uint8
	const (
		unknown     state = iota // no op seen yet
		insIfAbsent              // insert applied to unknown base state
		absent
		present
	)
	type pairFx struct {
		st   state
		w    int64
		last int // index of last op, for stable output order
	}
	key := func(u, v NodeID) uint64 {
		if !directed && u > v {
			u, v = v, u
		}
		return pack(u, v)
	}
	fx := make(map[uint64]*pairFx, len(b))
	order := make([]uint64, 0, len(b))
	for i, u := range b {
		k := key(u.From, u.To)
		p := fx[k]
		if p == nil {
			p = &pairFx{}
			fx[k] = p
			order = append(order, k)
		}
		p.last = i
		switch u.Kind {
		case InsertEdge:
			switch p.st {
			case unknown:
				p.st, p.w = insIfAbsent, u.W
			case absent:
				p.st, p.w = present, u.W
				// insIfAbsent, present: duplicate insert is a no-op.
			}
		case DeleteEdge:
			p.st = absent
		}
	}
	out := make(Batch, 0, len(fx))
	for _, k := range order {
		p := fx[k]
		u, v := NodeID(k>>32), NodeID(uint32(k))
		switch p.st {
		case insIfAbsent:
			out = append(out, Update{Kind: InsertEdge, From: u, To: v, W: p.w})
		case absent:
			out = append(out, Update{Kind: DeleteEdge, From: u, To: v})
		case present:
			// The edge may have existed with a different weight: replace it.
			out = append(out, Update{Kind: DeleteEdge, From: u, To: v},
				Update{Kind: InsertEdge, From: u, To: v, W: p.w})
		}
	}
	return out
}
