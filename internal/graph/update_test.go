package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func edgeSet(g *Graph) map[uint64]int64 {
	m := map[uint64]int64{}
	g.Edges(func(u, v NodeID, w int64) { m[pack(u, v)] = w })
	return m
}

func randomBatch(rng *rand.Rand, nodes, n int) Batch {
	b := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		u := NodeID(rng.Intn(nodes))
		v := NodeID(rng.Intn(nodes))
		if rng.Intn(2) == 0 {
			b = append(b, Update{Kind: InsertEdge, From: u, To: v, W: int64(rng.Intn(50) + 1)})
		} else {
			b = append(b, Update{Kind: DeleteEdge, From: u, To: v})
		}
	}
	return b
}

func TestApplyAndRevert(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(15, seed%2 == 0)
		g.Apply(randomBatch(rng, 15, 60))
		before := edgeSet(g)
		applied := g.Apply(randomBatch(rng, 15, 40))
		g.Apply(applied.Inverse())
		after := edgeSet(g)
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("seed %d: revert did not restore graph: before %v after %v", seed, before, after)
		}
		if err := g.CheckConsistent(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestApplySkipsNoops(t *testing.T) {
	g := New(3, true)
	applied := g.Apply(Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 1},
		{Kind: InsertEdge, From: 0, To: 1, W: 9}, // duplicate
		{Kind: DeleteEdge, From: 2, To: 0},       // absent
		{Kind: DeleteEdge, From: 0, To: 1},
		{Kind: DeleteEdge, From: 0, To: 1}, // double delete
	})
	if len(applied) != 2 {
		t.Fatalf("applied %d updates, want 2: %v", len(applied), applied)
	}
	if applied[1].W != 1 {
		t.Fatalf("delete did not record removed weight: %v", applied[1])
	}
}

func TestBatchNet(t *testing.T) {
	b := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 1},
		{Kind: DeleteEdge, From: 0, To: 1},
		{Kind: InsertEdge, From: 2, To: 3, W: 4},
		{Kind: InsertEdge, From: 0, To: 1, W: 7},
	}
	net := b.Net(true)
	// Pair (0,1) saw ins,del,ins: it may exist in G, so Net must emit a
	// delete followed by the final insert. Pair (2,3) is a lone insert.
	if len(net) != 3 {
		t.Fatalf("Net kept %d updates: %v", len(net), net)
	}
	if net[0].Kind != DeleteEdge || net[1].Kind != InsertEdge || net[1].W != 7 || net[2].From != 2 {
		t.Fatalf("Net wrong: %v", net)
	}
	// A pure churn pair on an unknown base collapses to one delete.
	churn := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 1},
		{Kind: DeleteEdge, From: 0, To: 1},
	}
	if got := churn.Net(true); len(got) != 1 || got[0].Kind != DeleteEdge {
		t.Fatalf("churn Net = %v", got)
	}
}

func TestBatchNetUndirectedOrientation(t *testing.T) {
	// Mixed orientations of the same undirected edge must collapse together.
	b := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 3},
		{Kind: DeleteEdge, From: 1, To: 0},
		{Kind: InsertEdge, From: 0, To: 1, W: 9},
	}
	g := New(2, false)
	g.InsertEdge(0, 1, 5)
	h := g.Clone()
	g.Apply(b)
	h.Apply(b.Net(false))
	if g.Weight(0, 1) != h.Weight(0, 1) {
		t.Fatalf("net weight %d, raw weight %d", h.Weight(0, 1), g.Weight(0, 1))
	}
}

// The net batch must produce the same graph as the raw batch.
func TestBatchNetEquivalent(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomBatch(rng, 10, 50)
		delta := randomBatch(rng, 10, 50)
		g1 := New(10, directed)
		g1.Apply(base)
		g2 := g1.Clone()
		g1.Apply(delta)
		g2.Apply(delta.Net(directed))
		return reflect.DeepEqual(edgeSet(g1), edgeSet(g2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Batch
		n    int
		ok   bool
	}{
		{"empty", Batch{}, 5, true},
		{"in range", Batch{{Kind: InsertEdge, From: 0, To: 4, W: 1}}, 5, true},
		{"delete with recorded weight", Batch{{Kind: DeleteEdge, From: 1, To: 2, W: 9}}, 5, true},
		{"from out of range", Batch{{Kind: InsertEdge, From: 5, To: 0, W: 1}}, 5, false},
		{"to out of range", Batch{{Kind: InsertEdge, From: 0, To: 7, W: 1}}, 5, false},
		{"negative from", Batch{{Kind: InsertEdge, From: -1, To: 0, W: 1}}, 5, false},
		{"negative weight", Batch{{Kind: InsertEdge, From: 0, To: 1, W: -2}}, 5, false},
		{"negative delete weight", Batch{{Kind: DeleteEdge, From: 0, To: 1, W: -2}}, 5, false},
		{"unknown bound skips range", Batch{{Kind: InsertEdge, From: 1000, To: 2000, W: 1}}, -1, true},
		{"unknown bound still checks sign", Batch{{Kind: InsertEdge, From: -1, To: 0, W: 1}}, -1, false},
		{"second update reported", Batch{
			{Kind: InsertEdge, From: 0, To: 1, W: 1},
			{Kind: DeleteEdge, From: 0, To: 99},
		}, 5, false},
	}
	for _, tc := range cases {
		err := tc.b.Validate(tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate(%d) = %v, want ok=%v", tc.name, tc.n, err, tc.ok)
		}
	}
	// The error names the offending update index.
	err := Batch{
		{Kind: InsertEdge, From: 0, To: 1, W: 1},
		{Kind: InsertEdge, From: 0, To: 9, W: 1},
	}.Validate(5)
	if err == nil || !strings.Contains(err.Error(), "update 1") {
		t.Fatalf("want indexed error, got %v", err)
	}
}

func TestTouchedNodes(t *testing.T) {
	b := Batch{
		{Kind: InsertEdge, From: 1, To: 2},
		{Kind: DeleteEdge, From: 2, To: 3},
	}
	got := b.TouchedNodes()
	if len(got) != 3 {
		t.Fatalf("TouchedNodes = %v", got)
	}
}

func TestUpdateString(t *testing.T) {
	u := Update{Kind: InsertEdge, From: 1, To: 2, W: 3}
	if u.String() != "+(1,2,3)" {
		t.Fatalf("got %q", u.String())
	}
	d := Update{Kind: DeleteEdge, From: 4, To: 5, W: 0}
	if d.String() != "-(4,5,0)" {
		t.Fatalf("got %q", d.String())
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, 8, 30)
		return reflect.DeepEqual(b.Inverse().Inverse(), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
