// Package lcc implements local clustering coefficients (§5.3 of the
// paper) on undirected graphs: the batch fixpoint algorithm LCC_fp over
// the status variables d_v (degree) and λ_v (incident triangles), the
// deducible incremental algorithm IncLCC that recomputes exactly the
// potentially-affected variables (edge endpoints and their one-hop
// neighborhood), its unit-update variant, and the streaming competitor
// DynLCC (Ediger et al. style exact per-edge delta maintenance).
//
// γ_v = 2·λ_v / (d_v·(d_v − 1)); nodes of degree < 2 have γ_v = 0.
package lcc

import (
	"fmt"

	"incgraph/internal/graph"
)

// Result holds the status variables of LCC_fp: the degree and triangle
// count per node.
type Result struct {
	Deg []int32
	Tri []int64
}

// NewResult allocates a zeroed result for n nodes.
func NewResult(n int) *Result {
	return &Result{Deg: make([]int32, n), Tri: make([]int64, n)}
}

// Gamma returns the local clustering coefficient of v.
func (r *Result) Gamma(v graph.NodeID) float64 {
	d := int64(r.Deg[v])
	if d < 2 {
		return 0
	}
	return 2 * float64(r.Tri[v]) / float64(d*(d-1))
}

// Equal reports whether two results agree on every variable.
func (r *Result) Equal(o *Result) bool {
	if len(r.Deg) != len(o.Deg) {
		return false
	}
	for i := range r.Deg {
		if r.Deg[i] != o.Deg[i] || r.Tri[i] != o.Tri[i] {
			return false
		}
	}
	return true
}

func (r *Result) clone() *Result {
	return &Result{Deg: append([]int32(nil), r.Deg...), Tri: append([]int64(nil), r.Tri...)}
}

func (r *Result) grow(n int) {
	for len(r.Deg) < n {
		r.Deg = append(r.Deg, 0)
		r.Tri = append(r.Tri, 0)
	}
}

// Brute recomputes the result by enumerating neighbor pairs, the O(Σ d²)
// reference used by tests.
func Brute(g *graph.Graph) *Result {
	r := NewResult(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		ns := g.Out(graph.NodeID(v))
		r.Deg[v] = int32(len(ns))
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if g.HasEdge(ns[i].To, ns[j].To) {
					r.Tri[v]++
				}
			}
		}
	}
	return r
}

// Run is the batch fixpoint algorithm LCC_fp: one pass setting every d_v,
// plus a triangle pass over a sorted CSR snapshot — for each edge (u, v)
// with u < v, every common neighbor w gains one triangle (the edge
// opposite w identifies the triangle {u, v, w} exactly once for w).
func Run(g *graph.Graph) *Result {
	n := g.NumNodes()
	r := NewResult(n)
	for v := 0; v < n; v++ {
		r.Deg[v] = int32(g.Degree(graph.NodeID(v)))
	}
	c := graph.Snapshot(g)
	for u := 0; u < n; u++ {
		for _, v := range c.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) >= v {
				continue
			}
			a, b := c.Neighbors(graph.NodeID(u)), c.Neighbors(v)
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					r.Tri[a[i]]++
					i++
					j++
				}
			}
		}
	}
	return r
}

// Inc is the deducible incremental algorithm IncLCC. For each changed
// edge (u, v) it marks d_u, d_v and λ_w for every w within one hop of u or
// v as potentially affected, and recomputes exactly those variables with
// the original update functions — no auxiliary structure at all (§5.3).
//
// An Inc is not goroutine-safe: it (and the graph it owns) must be
// driven by a single writer goroutine making every call, reads included —
// Result aliases state that Apply mutates. Concurrent serving goes
// through internal/serve, which gives each maintainer one apply loop and
// publishes immutable snapshots to readers.
type Inc struct {
	g *graph.Graph
	r *Result
	// stamp/epoch mark for O(1) membership tests during recomputation.
	mark    []int64
	epoch   int64
	pending graph.Batch
	// The PE accumulators are epoch-marked dense sets (mark array + list),
	// replacing the per-apply map[NodeID]bool allocations: tri collects the
	// λ recomputation set across Stage (pre-update hoods) and Repair
	// (post-update hoods); deg collects the endpoints whose d_v changed.
	triMark  []int64
	triEpoch int64
	triList  []graph.NodeID
	degMark  []int64
	degEpoch int64
	degList  []graph.NodeID
}

// NewInc runs the batch algorithm and returns the incremental one.
func NewInc(g *graph.Graph) *Inc {
	n := g.NumNodes()
	return &Inc{
		g: g, r: Run(g),
		mark:    make([]int64, n),
		triMark: make([]int64, n), triEpoch: 1,
		degMark: make([]int64, n), degEpoch: 1,
	}
}

// growSets extends the PE mark arrays to the current node count.
func (i *Inc) growSets() {
	n := i.g.NumNodes()
	for len(i.triMark) < n {
		i.triMark = append(i.triMark, 0)
	}
	for len(i.degMark) < n {
		i.degMark = append(i.degMark, 0)
	}
}

func (i *Inc) triAdd(v graph.NodeID) {
	if i.triMark[v] != i.triEpoch {
		i.triMark[v] = i.triEpoch
		i.triList = append(i.triList, v)
	}
}

func (i *Inc) degAdd(v graph.NodeID) {
	if i.degMark[v] != i.degEpoch {
		i.degMark[v] = i.degEpoch
		i.degList = append(i.degList, v)
	}
}

// triReset discards the accumulated λ set and opens a new generation.
func (i *Inc) triReset() {
	i.triEpoch++
	i.triList = i.triList[:0]
}

// hood adds v and its current one-hop neighborhood to the λ set.
func (i *Inc) hood(v graph.NodeID) {
	i.triAdd(v)
	for _, e := range i.g.Out(v) {
		i.triAdd(e.To)
	}
}

// Graph returns the maintained graph.
func (i *Inc) Graph() *graph.Graph { return i.g }

// Result returns the maintained status (aliased).
func (i *Inc) Result() *Result { return i.r }

// RestoreState overwrites the maintained status with one exported from a
// checkpoint of the same graph. The d_v and λ_v variables are IncLCC's
// complete state — it keeps no auxiliary structure (§5.3). The slices
// are copied.
func (i *Inc) RestoreState(deg []int32, tri []int64) error {
	n := i.g.NumNodes()
	if len(deg) != n || len(tri) != n {
		return fmt.Errorf("lcc: restore of %d/%d variables into graph with %d nodes", len(deg), len(tri), n)
	}
	i.r = &Result{Deg: append([]int32(nil), deg...), Tri: append([]int64(nil), tri...)}
	return nil
}

// Apply computes G ⊕ ΔG and recomputes the PE variables. It returns the
// number of λ recomputations, the affected-area measure.
func (i *Inc) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG, first snapshotting the pre-update one-hop
// neighborhoods: a deleted edge's endpoints lose triangle partners that
// are only visible pre-deletion.
func (i *Inc) Stage(b graph.Batch) {
	net := b.Net(false)
	i.growSets()
	for _, u := range net {
		i.hood(u.From)
		i.hood(u.To)
	}
	i.pending = append(i.pending, i.g.Apply(net)...)
}

// Repair recomputes the PE variables for the staged updates.
func (i *Inc) Repair() int {
	applied := i.pending
	i.pending = i.pending[:0]
	if len(applied) == 0 && i.g.NumNodes() == len(i.r.Deg) {
		i.triReset() // pre-update hoods of no-op batches are moot
		return 0
	}
	i.r.grow(i.g.NumNodes())
	for len(i.mark) < i.g.NumNodes() {
		i.mark = append(i.mark, 0)
	}
	i.growSets()
	i.degEpoch++
	i.degList = i.degList[:0]
	for _, u := range applied {
		i.degAdd(u.From)
		i.degAdd(u.To)
		i.hood(u.From)
		i.hood(u.To)
	}
	for _, v := range i.degList {
		i.r.Deg[v] = int32(i.g.Degree(v))
	}
	for _, v := range i.triList {
		i.r.Tri[v] = i.countTriangles(v)
	}
	pe := len(i.triList)
	i.triReset()
	return pe
}

// countTriangles recomputes λ_v with a stamped neighbor set: each triangle
// {v, x, y} is seen twice (via x and via y).
func (i *Inc) countTriangles(v graph.NodeID) int64 {
	i.epoch++
	ns := i.g.Out(v)
	for _, e := range ns {
		i.mark[e.To] = i.epoch
	}
	var cnt int64
	for _, e := range ns {
		for _, f := range i.g.Out(e.To) {
			if f.To != v && i.mark[f.To] == i.epoch {
				cnt++
			}
		}
	}
	return cnt / 2
}

// IncUnit is IncLCC_n: the unit-update variant.
type IncUnit struct{ *Inc }

// NewIncUnit builds the unit-update variant.
func NewIncUnit(g *graph.Graph) *IncUnit { return &IncUnit{NewInc(g)} }

// Apply processes each unit update as its own batch.
func (i *IncUnit) Apply(b graph.Batch) int {
	total := 0
	for _, u := range b {
		total += i.Inc.Apply(graph.Batch{u})
	}
	return total
}

// DynLCC is the streaming competitor (Ediger et al.): every unit update
// adjusts the triangle counts by the common neighborhood of its endpoints
// — exact deltas, one edge at a time.
type DynLCC struct {
	g     *graph.Graph
	r     *Result
	mark  []int64
	epoch int64
}

// NewDynLCC runs the batch algorithm and returns the competitor.
func NewDynLCC(g *graph.Graph) *DynLCC {
	return &DynLCC{g: g, r: Run(g), mark: make([]int64, g.NumNodes())}
}

// Graph returns the maintained graph.
func (d *DynLCC) Graph() *graph.Graph { return d.g }

// Result returns the maintained status.
func (d *DynLCC) Result() *Result { return d.r }

// Apply processes each unit update with a common-neighborhood delta.
func (d *DynLCC) Apply(b graph.Batch) int {
	for _, u := range b {
		d.applyUnit(u)
	}
	return 0
}

func (d *DynLCC) applyUnit(u graph.Update) {
	switch u.Kind {
	case graph.InsertEdge:
		if !d.g.InsertEdge(u.From, u.To, u.W) {
			return
		}
		d.r.grow(d.g.NumNodes())
		for len(d.mark) < d.g.NumNodes() {
			d.mark = append(d.mark, 0)
		}
		d.r.Deg[u.From]++
		d.r.Deg[u.To]++
		d.delta(u.From, u.To, 1)
	case graph.DeleteEdge:
		if !d.g.HasEdge(u.From, u.To) {
			return
		}
		d.delta(u.From, u.To, -1)
		d.g.DeleteEdge(u.From, u.To)
		d.r.Deg[u.From]--
		d.r.Deg[u.To]--
	}
}

// delta adjusts triangle counts for the (present) edge (a, b) by sgn per
// common neighbor.
func (d *DynLCC) delta(a, b graph.NodeID, sgn int64) {
	d.epoch++
	for _, e := range d.g.Out(a) {
		d.mark[e.To] = d.epoch
	}
	for _, e := range d.g.Out(b) {
		if e.To != a && d.mark[e.To] == d.epoch {
			d.r.Tri[a] += sgn
			d.r.Tri[b] += sgn
			d.r.Tri[e.To] += sgn
		}
	}
}
