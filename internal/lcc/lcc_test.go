package lcc

import (
	"math"
	"math/rand"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func triangleWithTail() *graph.Graph {
	// Triangle 0-1-2 with tail 2-3.
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(2, 3, 1)
	return g
}

func TestRunKnown(t *testing.T) {
	r := Run(triangleWithTail())
	wantDeg := []int32{2, 2, 3, 1}
	wantTri := []int64{1, 1, 1, 0}
	for v := range wantDeg {
		if r.Deg[v] != wantDeg[v] || r.Tri[v] != wantTri[v] {
			t.Fatalf("node %d: (d=%d, λ=%d), want (%d, %d)", v, r.Deg[v], r.Tri[v], wantDeg[v], wantTri[v])
		}
	}
	if g := r.Gamma(0); math.Abs(g-1.0) > 1e-12 {
		t.Fatalf("γ(0) = %v, want 1", g)
	}
	if g := r.Gamma(2); math.Abs(g-1.0/3) > 1e-12 {
		t.Fatalf("γ(2) = %v, want 1/3", g)
	}
	if r.Gamma(3) != 0 {
		t.Fatal("degree-1 node must have γ = 0")
	}
}

func TestRunMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 60, 240, false)
		if !Run(g).Equal(Brute(g)) {
			t.Fatalf("seed %d: Run != Brute", seed)
		}
	}
}

func TestRunPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.PowerLaw(rng, 400, 10, false)
	if !Run(g).Equal(Brute(g)) {
		t.Fatal("Run != Brute on power-law graph")
	}
}

type maintainer interface {
	Apply(graph.Batch) int
	Result() *Result
	Graph() *graph.Graph
}

func checkMaintainer(t *testing.T, name string, mk func(*graph.Graph) maintainer) {
	t.Helper()
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 70, 300, false)
		m := mk(g)
		for round := 0; round < 8; round++ {
			b := gen.RandomUpdates(rng, m.Graph(), 14, 0.5)
			m.Apply(b)
			want := Run(m.Graph())
			if !m.Result().Equal(want) {
				t.Fatalf("%s seed %d round %d: result mismatch", name, seed, round)
			}
		}
	}
}

func TestIncAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncLCC", func(g *graph.Graph) maintainer { return NewInc(g) })
}

func TestIncUnitAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncLCC_n", func(g *graph.Graph) maintainer { return NewIncUnit(g) })
}

func TestDynLCCAgainstBatch(t *testing.T) {
	checkMaintainer(t, "DynLCC", func(g *graph.Graph) maintainer { return NewDynLCC(g) })
}

func TestIncBoundedPE(t *testing.T) {
	// One update on a large sparse graph must recompute only a local
	// neighborhood.
	rng := rand.New(rand.NewSource(7))
	g := gen.PowerLaw(rng, 20000, 6, false)
	inc := NewInc(g)
	b := gen.RandomUpdates(rng, g, 1, 0.0)
	pe := inc.Apply(b)
	if pe > 2000 {
		t.Fatalf("PE set of a unit update has %d variables", pe)
	}
	if pe == 0 {
		t.Fatal("deletion produced empty PE set")
	}
}

func TestIncDeleteDestroysTriangles(t *testing.T) {
	inc := NewInc(triangleWithTail())
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 0, To: 1}})
	r := inc.Result()
	for v := 0; v < 4; v++ {
		if r.Tri[v] != 0 {
			t.Fatalf("λ(%d) = %d after breaking the triangle", v, r.Tri[v])
		}
	}
	if r.Deg[0] != 1 || r.Deg[1] != 1 {
		t.Fatal("degrees not updated")
	}
}

func TestIncVertexInsertion(t *testing.T) {
	g := triangleWithTail()
	inc := NewInc(g)
	v := g.AddNode(0)
	inc.Apply(graph.Batch{
		{Kind: graph.InsertEdge, From: v, To: 0, W: 1},
		{Kind: graph.InsertEdge, From: v, To: 1, W: 1},
	})
	want := Run(g)
	if !inc.Result().Equal(want) {
		t.Fatal("result wrong after vertex insertion")
	}
	if inc.Result().Tri[v] != 1 {
		t.Fatal("new node should close one triangle")
	}
}

func TestIncEmptyBatch(t *testing.T) {
	inc := NewInc(triangleWithTail())
	before := inc.Result().clone()
	if pe := inc.Apply(nil); pe != 0 {
		t.Fatalf("empty batch recomputed %d variables", pe)
	}
	if !inc.Result().Equal(before) {
		t.Fatal("empty batch changed result")
	}
}

func TestResultHelpers(t *testing.T) {
	r := NewResult(2)
	o := NewResult(3)
	if r.Equal(o) {
		t.Fatal("size mismatch not detected")
	}
	r2 := NewResult(2)
	r2.Tri[1] = 5
	if r.Equal(r2) {
		t.Fatal("differing results reported equal")
	}
}
