package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// SeriesSnapshot is one labeled series inside a FamilySnapshot. Counter
// and gauge series carry Value; summary (histogram) series carry Hist.
type SeriesSnapshot struct {
	Labels []Label            `json:"labels,omitempty"`
	Value  float64            `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

// FamilySnapshot is a point-in-time copy of one metric family: the name,
// help, exposition kind ("counter", "gauge", or "summary"), and every
// series. It is the wire format of GET /metrics.json — unlike the text
// exposition, histogram series keep their raw buckets, so a federating
// scraper can merge them exactly instead of averaging quantiles.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot copies every family in the registry, sorted by name with
// series sorted by label key. GaugeFunc series are evaluated at snapshot
// time.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		f.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })

		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range ss {
			snap := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch f.kind {
			case counterKind:
				snap.Value = s.counter.Value()
			case gaugeKind:
				snap.Value = s.gauge.Value()
			case gaugeFuncKind:
				if s.fn != nil {
					snap.Value = s.fn()
				}
			case histogramKind:
				h := s.hist.Snapshot()
				snap.Hist = &h
			}
			fs.Series = append(fs.Series, snap)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON writes the registry snapshot as a JSON array of
// FamilySnapshot objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}

// JSONHandler serves the registry snapshot as JSON, for mounting at
// GET /metrics.json. This is the endpoint a federating router scrapes:
// it preserves histogram buckets, which the text exposition flattens
// into unmergeable quantiles.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
}

// ParseSnapshot decodes a JSON registry snapshot produced by WriteJSON.
func ParseSnapshot(data []byte) ([]FamilySnapshot, error) {
	var fams []FamilySnapshot
	if err := json.Unmarshal(data, &fams); err != nil {
		return nil, fmt.Errorf("obs: parsing metrics snapshot: %w", err)
	}
	return fams, nil
}

type fedSeries struct {
	labels []Label
	value  float64
	hist   *HistogramSnapshot
}

type fedFamily struct {
	name, help, kind string
	series           map[string]*fedSeries
}

// Federation accumulates family snapshots scraped from many member
// registries into one deduplicated metric set. Ingest attaches extra
// labels (shard="0", role="primary") to every incoming series, so two
// members exposing the same family never collapse into duplicate
// unlabeled series: the family is emitted once, and each member's series
// stay distinct under their added labels. A later series with the exact
// same final label set replaces the earlier one — exposition never emits
// the same (name, labels) sample line twice.
type Federation struct {
	fams    map[string]*fedFamily
	dropped int
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{fams: make(map[string]*fedFamily)}
}

// Dropped reports how many series were discarded because their family
// name was already federated under a different metric kind.
func (f *Federation) Dropped() int { return f.dropped }

func (f *Federation) fam(name, help, kind string) *fedFamily {
	ff, ok := f.fams[name]
	if !ok {
		ff = &fedFamily{name: name, help: help, kind: kind, series: make(map[string]*fedSeries)}
		f.fams[name] = ff
	}
	if ff.help == "" {
		ff.help = help
	}
	return ff
}

// Ingest folds a member's family snapshots into the federation,
// appending extra labels to every series. Conflicting extra labels win
// over same-key labels already on the series (the scraper's identity
// labels are authoritative). Families whose name was already federated
// under a different kind are dropped and counted, not mixed.
func (f *Federation) Ingest(fams []FamilySnapshot, extra ...Label) {
	for _, in := range fams {
		ff := f.fam(in.Name, in.Help, in.Kind)
		if ff.kind != in.Kind {
			f.dropped += len(in.Series)
			continue
		}
		for _, s := range in.Series {
			labels := mergeLabels(s.Labels, extra)
			fs := &fedSeries{labels: labels, value: s.Value}
			if s.Hist != nil {
				h := *s.Hist
				h.Buckets = append([]BucketCount(nil), s.Hist.Buckets...)
				fs.hist = &h
			}
			ff.series[labelKey(labels)] = fs
		}
	}
}

// mergeLabels appends extra labels to base, with extra winning on key
// conflicts.
func mergeLabels(base, extra []Label) []Label {
	out := make([]Label, 0, len(base)+len(extra))
	for _, b := range base {
		skip := false
		for _, e := range extra {
			if e.Key == b.Key {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, b)
		}
	}
	return append(out, extra...)
}

// Add injects a computed scalar rollup series (kind "counter" or
// "gauge"), replacing any existing series with the same labels.
func (f *Federation) Add(name, help, kind string, v float64, labels ...Label) {
	ff := f.fam(name, help, kind)
	if ff.kind != kind {
		f.dropped++
		return
	}
	ls := append([]Label(nil), labels...)
	ff.series[labelKey(ls)] = &fedSeries{labels: ls, value: v}
}

// AddHistogram injects a computed summary rollup series.
func (f *Federation) AddHistogram(name, help string, h HistogramSnapshot, labels ...Label) {
	ff := f.fam(name, help, "summary")
	if ff.kind != "summary" {
		f.dropped++
		return
	}
	ls := append([]Label(nil), labels...)
	ff.series[labelKey(ls)] = &fedSeries{labels: ls, hist: &h}
}

// SumValues sums the scalar values of every series in a family — the
// cluster-total rollup for counters (total sheds, total updates).
func (f *Federation) SumValues(name string) float64 {
	ff := f.fams[name]
	if ff == nil {
		return 0
	}
	var sum float64
	for _, s := range ff.series {
		sum += s.value
	}
	return sum
}

// Values returns every scalar series of a family, sorted by label key —
// the raw material for min/max rollups like epoch skew.
func (f *Federation) Values(name string) []SeriesSnapshot {
	ff := f.fams[name]
	if ff == nil {
		return nil
	}
	out := make([]SeriesSnapshot, 0, len(ff.series))
	for _, s := range ff.series {
		out = append(out, SeriesSnapshot{Labels: append([]Label(nil), s.labels...), Value: s.value})
	}
	sort.Slice(out, func(i, j int) bool { return labelKey(out[i].Labels) < labelKey(out[j].Labels) })
	return out
}

// MergedHistogram merges every histogram series of a family into one
// snapshot — the exact cluster-wide distribution (e.g. apply-latency
// p99 across all shards).
func (f *Federation) MergedHistogram(name string) HistogramSnapshot {
	var m HistogramSnapshot
	ff := f.fams[name]
	if ff == nil {
		return m
	}
	for _, s := range ff.series {
		if s.hist != nil {
			m.Merge(*s.hist)
		}
	}
	return m
}

// WritePrometheus writes the federated set in the same text exposition
// format as Registry.WritePrometheus: families sorted by name, one HELP
// and TYPE line per family, series sorted by label key, histograms as
// summaries with quantile children plus _sum and _count.
func (f *Federation) WritePrometheus(w io.Writer) {
	names := make([]string, 0, len(f.fams))
	for n := range f.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ff := f.fams[n]
		keys := make([]string, 0, len(ff.series))
		for k := range ff.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		fmt.Fprintf(w, "# HELP %s %s\n", ff.name, escapeHelp(ff.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", ff.name, ff.kind)
		for _, k := range keys {
			s := ff.series[k]
			if ff.kind == "summary" && s.hist != nil {
				for _, q := range quantiles {
					ql := `quantile="` + formatValue(q) + `"`
					writeSample(w, ff.name, k, ql, s.hist.Quantile(q))
				}
				writeSample(w, ff.name+"_sum", k, "", s.hist.Sum)
				writeSample(w, ff.name+"_count", k, "", float64(s.hist.Count))
				continue
			}
			writeSample(w, ff.name, k, "", s.value)
		}
	}
}
