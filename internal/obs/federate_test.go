package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFederationDedupSameName is the regression for federating two
// registries that expose the same metric name with no labels (a router
// rollup and a scraped shard series): the merged exposition must emit
// the family header once and must never emit two identical unlabeled
// sample lines.
func TestFederationDedupSameName(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("incgraph_shed_total", "updates shed").Add(3)
	r2 := NewRegistry()
	r2.Counter("incgraph_shed_total", "updates shed").Add(5)

	fed := NewFederation()
	fed.Ingest(r1.Snapshot(), L("shard", "0"), L("role", "primary"))
	fed.Ingest(r2.Snapshot(), L("shard", "1"), L("role", "primary"))

	var b bytes.Buffer
	fed.WritePrometheus(&b)
	out := b.String()

	if n := strings.Count(out, "# TYPE incgraph_shed_total counter"); n != 1 {
		t.Fatalf("family header emitted %d times:\n%s", n, out)
	}
	if strings.Contains(out, "\nincgraph_shed_total ") {
		t.Fatalf("unlabeled duplicate sample leaked:\n%s", out)
	}
	for _, want := range []string{
		`incgraph_shed_total{role="primary",shard="0"} 3`,
		`incgraph_shed_total{role="primary",shard="1"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if got := fed.SumValues("incgraph_shed_total"); got != 8 {
		t.Fatalf("SumValues = %v, want 8", got)
	}

	// Re-ingesting the same member replaces its series rather than
	// duplicating the sample line.
	fed.Ingest(r2.Snapshot(), L("shard", "1"), L("role", "primary"))
	b.Reset()
	fed.WritePrometheus(&b)
	if n := strings.Count(b.String(), `incgraph_shed_total{role="primary",shard="1"}`); n != 1 {
		t.Fatalf("re-ingest produced %d sample lines for the same label set", n)
	}
}

// A member whose family name collides with an existing federated family
// under a different kind must be dropped, not mixed into the wrong type.
func TestFederationKindConflictDropped(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("incgraph_x_total", "as counter").Inc()
	r2 := NewRegistry()
	r2.Gauge("incgraph_x_total", "as gauge").Set(9)

	fed := NewFederation()
	fed.Ingest(r1.Snapshot(), L("shard", "0"))
	fed.Ingest(r2.Snapshot(), L("shard", "1"))
	if fed.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", fed.Dropped())
	}
	var b bytes.Buffer
	fed.WritePrometheus(&b)
	if strings.Contains(b.String(), `shard="1"`) {
		t.Fatalf("conflicting-kind series leaked:\n%s", b.String())
	}
}

// Extra labels are authoritative: a member series already carrying a
// shard label gets the scraper's value, not its self-reported one.
func TestFederationExtraLabelWins(t *testing.T) {
	r := NewRegistry()
	r.Gauge("incgraph_g", "g", L("shard", "self"), L("algo", "sssp")).Set(1)
	fed := NewFederation()
	fed.Ingest(r.Snapshot(), L("shard", "2"))
	vals := fed.Values("incgraph_g")
	if len(vals) != 1 {
		t.Fatalf("got %d series", len(vals))
	}
	if key := labelKey(vals[0].Labels); key != `algo="sssp",shard="2"` {
		t.Fatalf("labels = %s", key)
	}
}

// Merging histogram snapshots across registries must give the same
// quantiles as observing every sample into one histogram — the property
// that makes the cluster apply p99 exact rather than an average of
// per-shard quantiles.
func TestHistogramSnapshotMergeQuantiles(t *testing.T) {
	var whole Histogram
	r1 := NewRegistry()
	r2 := NewRegistry()
	h1 := r1.Histogram("incgraph_apply_latency_seconds", "apply latency")
	h2 := r2.Histogram("incgraph_apply_latency_seconds", "apply latency")
	for i := 1; i <= 1000; i++ {
		v := float64(i) * 0.001
		whole.Observe(v)
		if i%2 == 0 {
			h1.Observe(v)
		} else {
			h2.Observe(v)
		}
	}

	fed := NewFederation()
	fed.Ingest(r1.Snapshot(), L("shard", "0"))
	fed.Ingest(r2.Snapshot(), L("shard", "1"))
	m := fed.MergedHistogram("incgraph_apply_latency_seconds")

	if m.Count != 1000 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if math.Abs(m.Sum-whole.Sum()) > 1e-9 {
		t.Fatalf("merged sum = %v, want %v", m.Sum, whole.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got, want := m.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("q%v: merged %v, whole %v", q, got, want)
		}
	}
}

// The JSON snapshot round-trips through ParseSnapshot with buckets
// intact, so a federating scrape loses nothing.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("incgraph_c_total", "c", L("algo", "cc")).Add(7)
	r.Histogram("incgraph_h_seconds", "h").Observe(0.25)
	r.GaugeFunc("incgraph_up", "up", func() float64 { return 42 })

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseSnapshot(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if got := byName["incgraph_c_total"].Series[0].Value; got != 7 {
		t.Fatalf("counter = %v", got)
	}
	if got := byName["incgraph_up"].Series[0].Value; got != 42 {
		t.Fatalf("gauge func = %v", got)
	}
	h := byName["incgraph_h_seconds"].Series[0].Hist
	if h == nil || h.Count != 1 || len(h.Buckets) != 1 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.25) > 0.25*0.0625 {
		t.Fatalf("round-tripped median = %v", got)
	}
}

// Empty merged histograms expose 0 quantiles, matching live
// histograms: a NaN would flow into every JSON rollup built on the
// federation (the cluster bounded-ratio series among them) and either
// fail encoding or poison downstream arithmetic. Absent data is
// distinguishable by the zero count, not by a sentinel value.
func TestMergedHistogramEmptyZero(t *testing.T) {
	fed := NewFederation()
	m := fed.MergedHistogram("nope")
	if m.Count != 0 {
		t.Fatalf("empty merge count = %d", m.Count)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if v := m.Quantile(q); v != 0 {
			t.Fatalf("empty merged Quantile(%v) = %v, want 0", q, v)
		}
	}
}
