package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram bucket geometry: values are binned into octaves [2^k, 2^k+1)
// split into 8 linear sub-buckets each, HDR-histogram style, so every
// bucket spans a 12.5% relative range and a quantile estimate (bucket
// midpoint) is within ~6.25% of the true sample. The octave range covers
// 2^-31 (~0.47ns, below any clock tick) through 2^34 (~1.7e10 — years of
// seconds, or batch sizes far beyond memory), so in practice nothing
// lands in the under/overflow buckets.
const (
	subBits   = 3
	subCount  = 1 << subBits
	minOctave = -31
	maxOctave = 33
	// bucket 0 holds zeros/negatives/underflow; the last bucket overflow.
	numBuckets = (maxOctave-minOctave+1)*subCount + 2
)

// Histogram is a fixed-size log-bucketed histogram. Observe is a single
// atomic add per bucket plus CAS loops for sum and max; it is safe for
// any number of concurrent writers and readers.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     Counter
	max     atomic.Uint64 // float64 bits; monotone under CAS
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return numBuckets - 1
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	octave := exp - 1          // v in [2^octave, 2^(octave+1))
	if octave < minOctave {
		return 1 // underflow: smallest real bucket
	}
	if octave > maxOctave {
		return numBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * subCount)
	if sub >= subCount {
		sub = subCount - 1
	}
	return 1 + (octave-minOctave)*subCount + sub
}

// bucketMid returns the midpoint of bucket i's value range, the
// representative returned by Quantile.
func bucketMid(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= numBuckets-1 {
		return math.Ldexp(1, maxOctave+1) // lower edge of the overflow range
	}
	i--
	octave := minOctave + i/subCount
	sub := i % subCount
	lo := math.Ldexp(1+float64(sub)/subCount, octave)
	hi := math.Ldexp(1+float64(sub+1)/subCount, octave)
	return (lo + hi) / 2
}

// Observe records one sample. Non-finite samples are dropped entirely:
// a NaN would otherwise poison the running sum and max (NaN defeats
// every >= comparison, so the max CAS would store it), turning every
// later scrape of this series into NaN.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Max returns the largest observed sample (exact, not bucketed).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed samples.
// The estimate is the midpoint of the bucket holding the rank-⌈q·n⌉
// sample, so its relative error is bounded by half the bucket width
// (~6.25%); q = 1 returns the exact maximum. With no samples it returns
// 0 rather than the Prometheus-conventional NaN: quantiles of empty
// histograms flow into JSON endpoints and federation rollups, where a
// NaN either fails encoding or propagates through downstream arithmetic.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketMid(i)
		}
	}
	// Concurrent writers raced count ahead of buckets; the max is the
	// honest answer for the tail.
	return h.Max()
}

// BucketCount is one occupied bucket in a HistogramSnapshot: the bucket
// index (in this package's fixed log-bucket geometry) and its count.
type BucketCount struct {
	Index int    `json:"i"`
	N     uint64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram in a
// mergeable form: the sparse occupied buckets plus count, sum, and exact
// max. Unlike the quantiles in the text exposition, snapshots from
// different processes share the same bucket geometry and so can be
// merged exactly — which is what makes a cluster-wide p99 computable
// from per-shard scrapes.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// land between field reads; the snapshot is still internally usable (the
// quantile walk falls back to max past the bucketed mass, like Quantile).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Index: i, N: n})
		}
	}
	return s
}

// Merge folds another snapshot into s. Both snapshots must come from
// this package's bucket geometry; indexes outside it are clamped into
// the under/overflow buckets rather than trusted.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(o.Buckets) == 0 {
		return
	}
	merged := make(map[int]uint64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		merged[b.Index] += b.N
	}
	for _, b := range o.Buckets {
		i := b.Index
		if i < 0 {
			i = 0
		}
		if i >= numBuckets {
			i = numBuckets - 1
		}
		merged[i] += b.N
	}
	s.Buckets = s.Buckets[:0]
	for i, n := range merged {
		s.Buckets = append(s.Buckets, BucketCount{Index: i, N: n})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].Index < s.Buckets[j].Index })
}

// Quantile estimates the q-quantile of the snapshot, with the same
// contract as Histogram.Quantile: bucket-midpoint estimates, exact max
// at q = 1, 0 when empty (never NaN — snapshots feed federation
// rollups and JSON responses).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			i := b.Index
			if i < 0 {
				i = 0
			}
			if i >= numBuckets {
				i = numBuckets - 1
			}
			return bucketMid(i)
		}
	}
	return s.Max
}
