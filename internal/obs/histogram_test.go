package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Bucket geometry: every positive value must land in a bucket whose
// midpoint is within half a bucket width (12.5%/2) of the value.
func TestBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		// Span many octaves: nanoseconds through hours.
		v := math.Exp(rng.Float64()*30 - 21) // e^-21 (~7.6e-10) .. e^9 (~8100)
		idx := bucketIndex(v)
		mid := bucketMid(idx)
		if relErr := math.Abs(mid-v) / v; relErr > 0.0625+1e-9 {
			t.Fatalf("value %g: bucket %d midpoint %g, relative error %.4f", v, idx, mid, relErr)
		}
	}
	// Index must be monotone in the value.
	prev := -1
	for v := 1e-10; v < 1e10; v *= 1.01 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d after %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestBucketEdgeCases(t *testing.T) {
	for _, v := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if idx := bucketIndex(v); idx != 0 {
			t.Fatalf("bucketIndex(%v) = %d, want 0", v, idx)
		}
	}
	if idx := bucketIndex(1e-300); idx != 1 {
		t.Fatalf("underflow bucket = %d, want 1", idx)
	}
	if idx := bucketIndex(1e300); idx != numBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", idx, numBuckets-1)
	}
	if idx := bucketIndex(math.Inf(1)); idx != numBuckets-1 {
		t.Fatalf("+inf bucket = %d, want %d", idx, numBuckets-1)
	}
	var h Histogram
	h.Observe(0)
	h.Observe(math.Inf(1)) // dropped: non-finite samples are rejected
	h.Observe(math.NaN())  // dropped
	if h.Count() != 1 {
		t.Fatalf("count %d, want 1 (non-finite samples must be dropped)", h.Count())
	}
	for name, v := range map[string]float64{"sum": h.Sum(), "max": h.Max(), "p99": h.Quantile(0.99)} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v after non-finite observes", name, v)
		}
	}
}

// Quantile estimates must track a reference sort on random samples to
// within the bucket-width bound. Exercised on two shapes: heavy-tailed
// exponential latencies and uniform batch sizes.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20000
	dists := map[string]func(*rand.Rand) float64{
		"exponential-latency": func(r *rand.Rand) float64 { return r.ExpFloat64() * 0.005 },
		"uniform-batch-size":  func(r *rand.Rand) float64 { return float64(1 + r.Intn(4096)) },
		"lognormal":           func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var h Histogram
			samples := make([]float64, n)
			sum := 0.0
			for i := range samples {
				samples[i] = draw(rng)
				h.Observe(samples[i])
				sum += samples[i]
			}
			sort.Float64s(samples)
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
				// Reference: the same ⌈q·n⌉-rank convention as Quantile.
				rank := int(math.Ceil(q * n))
				ref := samples[rank-1]
				got := h.Quantile(q)
				if relErr := math.Abs(got-ref) / ref; relErr > 0.0625+1e-9 {
					t.Errorf("q=%.2f: got %g, reference %g, relative error %.4f", q, got, ref, relErr)
				}
			}
			if got := h.Quantile(1); got != samples[n-1] {
				t.Errorf("q=1: got %g, want exact max %g", got, samples[n-1])
			}
			if h.Max() != samples[n-1] {
				t.Errorf("Max() = %g, want %g", h.Max(), samples[n-1])
			}
			if h.Count() != n {
				t.Errorf("Count() = %d, want %d", h.Count(), n)
			}
			if relErr := math.Abs(h.Sum()-sum) / sum; relErr > 1e-9 {
				t.Errorf("Sum() = %g, want %g", h.Sum(), sum)
			}
		})
	}
}

// Empty and single-bucket states must never yield NaN/Inf from any
// derived accessor: these values flow verbatim into /metrics.json and
// the federation rollups.
func TestQuantileEmptyAndSingleBucket(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %g, want 0", q, v)
		}
	}
	if s := h.Snapshot(); s.Quantile(0.5) != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}

	// One sample -> one occupied bucket: every quantile collapses to it.
	h.Observe(0.25)
	for _, q := range []float64{0, 0.5, 0.99} {
		v := h.Quantile(q)
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v-0.25) > 0.25*0.0625 {
			t.Fatalf("single-bucket Quantile(%v) = %g", q, v)
		}
	}
	if v := h.Quantile(1); v != 0.25 {
		t.Fatalf("single-bucket max quantile = %g", v)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("snapshot buckets = %+v", s.Buckets)
	}
	if v := s.Quantile(0.95); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("single-bucket snapshot quantile = %g", v)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(2.5)
	c.Inc()
	c.Add(-5)           // ignored: counters are monotone
	c.Add(math.NaN())   // ignored: would poison the sum forever
	c.Add(math.Inf(1))  // ignored
	c.Add(math.Inf(-1)) // ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %g, want -1.25", got)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	want := []int{3, 4, 5}
	got := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v (oldest first)", got, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
}
