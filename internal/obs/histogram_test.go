package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Bucket geometry: every positive value must land in a bucket whose
// midpoint is within half a bucket width (12.5%/2) of the value.
func TestBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		// Span many octaves: nanoseconds through hours.
		v := math.Exp(rng.Float64()*30 - 21) // e^-21 (~7.6e-10) .. e^9 (~8100)
		idx := bucketIndex(v)
		mid := bucketMid(idx)
		if relErr := math.Abs(mid-v) / v; relErr > 0.0625+1e-9 {
			t.Fatalf("value %g: bucket %d midpoint %g, relative error %.4f", v, idx, mid, relErr)
		}
	}
	// Index must be monotone in the value.
	prev := -1
	for v := 1e-10; v < 1e10; v *= 1.01 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d after %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestBucketEdgeCases(t *testing.T) {
	for _, v := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if idx := bucketIndex(v); idx != 0 {
			t.Fatalf("bucketIndex(%v) = %d, want 0", v, idx)
		}
	}
	if idx := bucketIndex(1e-300); idx != 1 {
		t.Fatalf("underflow bucket = %d, want 1", idx)
	}
	if idx := bucketIndex(1e300); idx != numBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", idx, numBuckets-1)
	}
	if idx := bucketIndex(math.Inf(1)); idx != numBuckets-1 {
		t.Fatalf("+inf bucket = %d, want %d", idx, numBuckets-1)
	}
	var h Histogram
	h.Observe(0)
	h.Observe(math.Inf(1))
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
}

// Quantile estimates must track a reference sort on random samples to
// within the bucket-width bound. Exercised on two shapes: heavy-tailed
// exponential latencies and uniform batch sizes.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20000
	dists := map[string]func(*rand.Rand) float64{
		"exponential-latency": func(r *rand.Rand) float64 { return r.ExpFloat64() * 0.005 },
		"uniform-batch-size":  func(r *rand.Rand) float64 { return float64(1 + r.Intn(4096)) },
		"lognormal":           func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var h Histogram
			samples := make([]float64, n)
			sum := 0.0
			for i := range samples {
				samples[i] = draw(rng)
				h.Observe(samples[i])
				sum += samples[i]
			}
			sort.Float64s(samples)
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
				// Reference: the same ⌈q·n⌉-rank convention as Quantile.
				rank := int(math.Ceil(q * n))
				ref := samples[rank-1]
				got := h.Quantile(q)
				if relErr := math.Abs(got-ref) / ref; relErr > 0.0625+1e-9 {
					t.Errorf("q=%.2f: got %g, reference %g, relative error %.4f", q, got, ref, relErr)
				}
			}
			if got := h.Quantile(1); got != samples[n-1] {
				t.Errorf("q=1: got %g, want exact max %g", got, samples[n-1])
			}
			if h.Max() != samples[n-1] {
				t.Errorf("Max() = %g, want %g", h.Max(), samples[n-1])
			}
			if h.Count() != n {
				t.Errorf("Count() = %d, want %d", h.Count(), n)
			}
			if relErr := math.Abs(h.Sum()-sum) / sum; relErr > 1e-9 {
				t.Errorf("Sum() = %g, want %g", h.Sum(), sum)
			}
		})
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %g, want NaN", q)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(2.5)
	c.Inc()
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %g, want -1.25", got)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	want := []int{3, 4, 5}
	got := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v (oldest first)", got, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
}
