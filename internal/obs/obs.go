// Package obs is the observability substrate of the serving stack:
// lock-free counters and gauges, log-bucketed latency histograms with
// quantile estimation, a labeled metric registry with Prometheus
// text-format exposition, and a bounded ring buffer for recent trace
// events.
//
// The paper's relative-boundedness guarantee (Theorem 3) is a statement
// about cost counters — reads, pops, |AFF| — as a function of |ΔG|, not
// |G|. This package exists to make those counters continuously visible
// on a live incgraphd: every metric here is written on the apply hot
// path, so all primitives are single atomic operations with no locks and
// no allocation after construction. Scrapes read the same atomics; they
// may observe a metric mid-batch, which is fine for monitoring.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. It holds a float64 so
// one type covers both event counts and accumulated seconds; integer
// adds up to 2^53 are exact.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v. Negative and non-finite deltas are
// a programmer error and are ignored: negatives would break
// monotonicity, and a single NaN or +Inf would poison the sum for the
// process's remaining lifetime (NaN passes a bare v < 0 check).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	for {
		old := c.bits.Load()
		newv := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, newv) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a metric that can go up and down (a last-observed value).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Ring is a bounded, concurrency-safe ring buffer of the most recent n
// events. Push is O(1) and never allocates after the first lap; Snapshot
// copies out the retained events oldest-first.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int
	full bool
}

// NewRing returns a ring retaining the last n events (n >= 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{buf: make([]T, 0, n)}
}

// Push appends v, evicting the oldest event once the ring is full.
func (r *Ring[T]) Push(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		if len(r.buf) == cap(r.buf) {
			r.full = true
		}
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
}

// Snapshot returns the retained events, oldest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
