package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		// Histograms are exposed as Prometheus summaries: pre-computed
		// quantiles, not le-bucket series — the log-bucket layout is an
		// implementation detail, and quantiles are what dashboards want.
		return "summary"
	}
	return "untyped"
}

// series is one labeled instance of a metric family.
type series struct {
	key     string // rendered label pairs, the family's map key and sort key
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

type family struct {
	name, help string
	kind       metricKind
	mu         sync.Mutex
	series     map[string]*series
}

func (f *family) get(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{key: key, labels: append([]Label(nil), labels...)}
	switch f.kind {
	case counterKind:
		s.counter = &Counter{}
	case gaugeKind:
		s.gauge = &Gauge{}
	case histogramKind:
		s.hist = &Histogram{}
	}
	f.series[key] = s
	return s
}

// Registry is a set of named metric families, each holding one series
// per label combination. Get-or-create lookups take a mutex, so callers
// on hot paths should resolve their metric handles once and hold them;
// the handles themselves are lock-free.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter series for the label set, creating family
// and series on first use. Re-registering a name with a different metric
// type panics: that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, counterKind).get(labels).counter
}

// Gauge returns the gauge series for the label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, gaugeKind).get(labels).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (uptime, queue depths — values that exist outside the registry).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, gaugeFuncKind).get(labels).fn = fn
}

// Histogram returns the histogram series for the label set.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.family(name, help, histogramKind).get(labels).hist
}

// quantiles exposed for every histogram; 1 is the exact max.
var quantiles = []float64{0.5, 0.95, 0.99, 1}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series by label set,
// histograms as summaries with quantile children plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		f.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })

		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case counterKind:
				writeSample(w, f.name, s.key, "", s.counter.Value())
			case gaugeKind:
				writeSample(w, f.name, s.key, "", s.gauge.Value())
			case gaugeFuncKind:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				writeSample(w, f.name, s.key, "", v)
			case histogramKind:
				for _, q := range quantiles {
					ql := `quantile="` + strconv.FormatFloat(q, 'g', -1, 64) + `"`
					writeSample(w, f.name, s.key, ql, s.hist.Quantile(q))
				}
				writeSample(w, f.name+"_sum", s.key, "", s.hist.Sum())
				writeSample(w, f.name+"_count", s.key, "", float64(s.hist.Count()))
			}
		}
	}
}

func writeSample(w io.Writer, name, labelPairs, extraPair string, v float64) {
	pairs := labelPairs
	if extraPair != "" {
		if pairs != "" {
			pairs += ","
		}
		pairs += extraPair
	}
	if pairs != "" {
		fmt.Fprintf(w, "%s{%s} %s\n", name, pairs, formatValue(v))
	} else {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	}
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// Handler returns an HTTP handler serving the exposition, for mounting
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
