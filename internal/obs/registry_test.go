package obs

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Golden test: the exposition format is a wire protocol, so it is pinned
// byte for byte. The histogram holds a single sample of exactly 1.0,
// which lands in bucket [1, 1.125) with midpoint 1.0625 — every interior
// quantile reports that midpoint, and quantile 1 the exact max.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_updates_total", "Updates seen.", L("algo", "cc")).Add(42)
	r.Counter("test_updates_total", "Updates seen.", L("algo", "sssp")).Add(7)
	r.Gauge("test_ratio", "A ratio.", L("algo", "cc")).Set(0.25)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 3.5 })
	r.Histogram("test_latency_seconds", "Latency.", L("algo", "cc")).Observe(1.0)

	const want = `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds summary
test_latency_seconds{algo="cc",quantile="0.5"} 1.0625
test_latency_seconds{algo="cc",quantile="0.95"} 1.0625
test_latency_seconds{algo="cc",quantile="0.99"} 1.0625
test_latency_seconds{algo="cc",quantile="1"} 1
test_latency_seconds_sum{algo="cc"} 1
test_latency_seconds_count{algo="cc"} 1
# HELP test_ratio A ratio.
# TYPE test_ratio gauge
test_ratio{algo="cc"} 0.25
# HELP test_updates_total Updates seen.
# TYPE test_updates_total counter
test_updates_total{algo="cc"} 42
test_updates_total{algo="sssp"} 7
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 3.5
`
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// Every non-comment line of an exposition must parse as
// name[{labels}] value — scraped by a machine, not a human.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

func checkExposition(t *testing.T, body string) {
	t.Helper()
	body = strings.TrimRight(body, "\n")
	if body == "" {
		return // nothing registered yet: an empty exposition is valid
	}
	for _, ln := range strings.Split(body, "\n") {
		if strings.HasPrefix(ln, "# HELP ") || strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(ln) {
			t.Fatalf("invalid exposition line: %q", ln)
		}
	}
}

func TestHandlerContentTypeAndValidity(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	h := r.Histogram("h_seconds", "H.", L("x", `quote " backslash \ done`))
	// Empty histogram: quantiles expose 0 (never NaN), still a valid
	// sample value.
	_ = h
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `\"`) || !strings.Contains(rec.Body.String(), `\\`) {
		t.Fatalf("label escaping missing:\n%s", rec.Body.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "M.")
}

// TestRegistryRace hammers one registry from 8 goroutines — counter
// adds, gauge sets, histogram observes, and get-or-create lookups —
// while /metrics is scraped concurrently. Run under -race (CI does)
// this proves the lock-free hot path and the scrape path coexist.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algo := fmt.Sprintf("algo%d", w%4)
			c := r.Counter("race_updates_total", "U.", L("algo", algo))
			g := r.Gauge("race_ratio", "R.", L("algo", algo))
			h := r.Histogram("race_latency_seconds", "L.", L("algo", algo))
			for i := 0; i < rounds; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) * 1e-6)
				if i%128 == 0 {
					// Get-or-create against the scrape path's family walk.
					r.Counter("race_updates_total", "U.", L("algo", fmt.Sprintf("dyn%d", i%7))).Inc()
				}
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			rec := httptest.NewRecorder()
			r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			checkExposition(t, rec.Body.String())
		}
	}()
	wg.Wait()
	<-scrapeDone

	var total float64
	for w := 0; w < 4; w++ {
		total += r.Counter("race_updates_total", "U.", L("algo", fmt.Sprintf("algo%d", w))).Value()
	}
	if want := float64(writers * rounds); total != want {
		t.Fatalf("counter total %g, want %g (lost updates under contention)", total, want)
	}
	h := r.Histogram("race_latency_seconds", "L.", L("algo", "algo0"))
	if h.Count() == 0 {
		t.Fatal("histogram observed nothing")
	}
}
