package obs

import "sync"

// TopK retains the K highest-scoring items ever offered — the bounded
// "worst offenders" structure behind GET /debug/offenders: every applied
// batch offers its boundedness ratio, and only the K worst survive, so
// the memory cost is fixed no matter how long the host runs.
//
// Items are kept in a slice sorted by descending score; K is small
// (tens), so insertion by shift beats heap bookkeeping and keeps
// Snapshot allocation-only. All methods are safe for concurrent use.
type TopK[T any] struct {
	mu    sync.Mutex
	k     int
	score []float64
	items []T
}

// NewTopK returns a TopK retaining the k highest-scoring offers; k < 1
// is treated as 1.
func NewTopK[T any](k int) *TopK[T] {
	if k < 1 {
		k = 1
	}
	return &TopK[T]{
		k:     k,
		score: make([]float64, 0, k),
		items: make([]T, 0, k),
	}
}

// Offer submits an item with its score, returning whether it was
// retained. Non-finite scores (NaN, ±Inf) are rejected outright — a
// poisoned ratio must not evict real offenders or leak NaN into the
// exposition.
func (t *TopK[T]) Offer(score float64, v T) bool {
	if !isFinite(score) {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.score) == t.k && score <= t.score[t.k-1] {
		return false
	}
	// Find the insertion point (first index with a strictly smaller
	// score — equal scores keep arrival order).
	i := len(t.score)
	for i > 0 && t.score[i-1] < score {
		i--
	}
	if len(t.score) < t.k {
		t.score = append(t.score, 0)
		var zero T
		t.items = append(t.items, zero)
	}
	// When full the copy shifts [i, k-2] into [i+1, k-1], evicting the
	// lowest-scored item; the admission check above guarantees i ≤ k-1.
	copy(t.score[i+1:], t.score[i:])
	copy(t.items[i+1:], t.items[i:])
	t.score[i] = score
	t.items[i] = v
	return true
}

// Snapshot returns the retained items, highest score first.
func (t *TopK[T]) Snapshot() []T {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]T(nil), t.items...)
}

// Len returns the number of retained items (≤ K).
func (t *TopK[T]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}

// Max returns the highest retained score, 0 when empty.
func (t *TopK[T]) Max() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.score) == 0 {
		return 0
	}
	return t.score[0]
}

// Min returns the lowest retained score — the admission threshold once
// full — 0 when empty.
func (t *TopK[T]) Min() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.score) == 0 {
		return 0
	}
	return t.score[len(t.score)-1]
}

// isFinite reports whether f is neither NaN nor ±Inf, without importing
// math for two comparisons.
func isFinite(f float64) bool {
	return f == f && f-f == 0
}
