package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestTopKRetainsHighest(t *testing.T) {
	tk := NewTopK[int](3)
	if tk.Len() != 0 || tk.Max() != 0 || tk.Min() != 0 {
		t.Fatal("empty TopK must report zeroes")
	}
	for i, s := range []float64{5, 1, 9, 3, 7, 2} {
		tk.Offer(s, i)
	}
	got := tk.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Scores 9, 7, 5 belong to items 2, 4, 0.
	if got[0] != 2 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("snapshot = %v, want [2 4 0]", got)
	}
	if tk.Max() != 9 || tk.Min() != 5 {
		t.Fatalf("max/min = %v/%v, want 9/5", tk.Max(), tk.Min())
	}
	if tk.Offer(4, 99) {
		t.Fatal("score below the admission threshold must be rejected")
	}
}

func TestTopKEqualScoresKeepArrivalOrder(t *testing.T) {
	tk := NewTopK[string](4)
	tk.Offer(2, "a")
	tk.Offer(2, "b")
	tk.Offer(3, "c")
	tk.Offer(2, "d")
	if got := tk.Snapshot(); got[0] != "c" || got[1] != "a" || got[2] != "b" || got[3] != "d" {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestTopKRejectsNonFinite(t *testing.T) {
	tk := NewTopK[int](2)
	for _, s := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if tk.Offer(s, 1) {
			t.Fatalf("non-finite score %v must be rejected", s)
		}
	}
	if tk.Len() != 0 {
		t.Fatalf("len = %d after non-finite offers", tk.Len())
	}
	tk.Offer(1, 7)
	if !isFinite(tk.Max()) || tk.Max() != 1 {
		t.Fatalf("max = %v", tk.Max())
	}
}

// TestTopKDifferentialRandom compares the structure against sorting the
// full offer history, across random streams and capacities.
func TestTopKDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(8) + 1
		tk := NewTopK[int](k)
		var scores []float64
		for i := 0; i < 200; i++ {
			s := float64(rng.Intn(50))
			scores = append(scores, s)
			tk.Offer(s, i)
		}
		want := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("seed %d: len %d, want %d", seed, len(got), len(want))
		}
		for i, idx := range got {
			if scores[idx] != want[i] {
				t.Fatalf("seed %d: rank %d has score %v, want %v", seed, i, scores[idx], want[i])
			}
		}
		if tk.Max() != want[0] || tk.Min() != want[len(want)-1] {
			t.Fatalf("seed %d: max/min %v/%v, want %v/%v",
				seed, tk.Max(), tk.Min(), want[0], want[len(want)-1])
		}
	}
}

// TestTopKConcurrent exercises the mutex paths under the race detector.
func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK[int](8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				tk.Offer(rng.Float64()*100, w*1000+i)
				if i%50 == 0 {
					tk.Snapshot()
					tk.Max()
					tk.Min()
				}
			}
		}(w)
	}
	wg.Wait()
	if tk.Len() != 8 {
		t.Fatalf("len = %d, want 8", tk.Len())
	}
	snap := tk.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
}
