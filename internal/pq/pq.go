// Package pq provides an indexed binary min-heap over dense int32 handles
// with O(log n) add-or-adjust (decrease/increase-key), the priority queue
// behind Dijkstra-style algorithms throughout this repository.
package pq

// Heap is an indexed min-heap over handles 0..n-1 ordered by an external
// comparator. The zero value is not usable; call New.
type Heap struct {
	less  func(a, b int32) bool
	items []int32
	pos   []int32
}

// New returns a heap over handles 0..n-1 ordered by less.
func New(n int, less func(a, b int32) bool) *Heap {
	h := &Heap{less: less, pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of queued handles.
func (h *Heap) Len() int { return len(h.items) }

// Contains reports whether x is queued.
func (h *Heap) Contains(x int32) bool { return h.pos[x] >= 0 }

// Grow extends the handle space to n.
func (h *Heap) Grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

// AddOrAdjust inserts x, or restores heap order after x's key changed —
// the paper's que.addOrAdjust.
func (h *Heap) AddOrAdjust(x int32) {
	if h.pos[x] < 0 {
		h.pos[x] = int32(len(h.items))
		h.items = append(h.items, x)
		h.up(int(h.pos[x]))
		return
	}
	i := int(h.pos[x])
	if !h.up(i) {
		h.down(i)
	}
}

// Pop removes and returns the minimum handle.
func (h *Heap) Pop() (int32, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top, true
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *Heap) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && h.less(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}
