package pq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeapSortsKeys(t *testing.T) {
	keys := []int64{9, 1, 8, 2, 7, 3}
	h := New(len(keys), func(a, b int32) bool { return keys[a] < keys[b] })
	for i := range keys {
		h.AddOrAdjust(int32(i))
	}
	prev := int64(-1)
	for h.Len() > 0 {
		x, _ := h.Pop()
		if keys[x] < prev {
			t.Fatalf("pop out of order: %d after %d", keys[x], prev)
		}
		prev = keys[x]
	}
}

func TestHeapAdjustAndGrow(t *testing.T) {
	keys := []int64{5, 6, 7, 0}
	h := New(3, func(a, b int32) bool { return keys[a] < keys[b] })
	h.AddOrAdjust(0)
	h.AddOrAdjust(1)
	keys[1] = 1
	h.AddOrAdjust(1)
	h.Grow(4)
	h.AddOrAdjust(3)
	if x, _ := h.Pop(); x != 3 {
		t.Fatalf("popped %d, want 3", x)
	}
	if x, _ := h.Pop(); x != 1 {
		t.Fatalf("popped %d, want 1 after decrease-key", x)
	}
	if !h.Contains(0) || h.Contains(1) {
		t.Fatal("Contains wrong")
	}
	if _, ok := h.Pop(); !ok {
		t.Fatal("expected one more element")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestHeapRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 150
	keys := make([]int64, n)
	h := New(n, func(a, b int32) bool { return keys[a] < keys[b] })
	live := map[int32]bool{}
	for op := 0; op < 6000; op++ {
		x := int32(rng.Intn(n))
		if rng.Intn(3) < 2 {
			keys[x] = int64(rng.Intn(500))
			h.AddOrAdjust(x)
			live[x] = true
		} else if y, ok := h.Pop(); ok {
			for z := range live {
				if keys[z] < keys[y] {
					t.Fatalf("popped key %d but %d live", keys[y], keys[z])
				}
			}
			delete(live, y)
		}
	}
	if h.Len() != len(live) {
		t.Fatalf("Len %d != model %d", h.Len(), len(live))
	}
}

// TestHeapSortProperty: draining a heap after arbitrary add-or-adjust
// traffic yields keys in nondecreasing order — the heap invariant as a
// testing/quick property.
func TestHeapSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 60
		keys := make([]int64, n)
		h := New(n, func(a, b int32) bool { return keys[a] < keys[b] })
		for op := 0; op < 300; op++ {
			x := int32(rng.Intn(n))
			keys[x] = int64(rng.Intn(1000))
			h.AddOrAdjust(x)
		}
		prev := int64(-1)
		for {
			x, ok := h.Pop()
			if !ok {
				return true
			}
			if keys[x] < prev {
				return false
			}
			prev = keys[x]
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
