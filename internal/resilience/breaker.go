package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position: Closed (traffic flows), Open
// (traffic is refused while the target cools down), or HalfOpen
// (limited trial traffic probes whether the target recovered).
type State int32

// Breaker states. The zero value Closed is the healthy position.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state for logs and gauges.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions tunes a Breaker. Zero values take the documented
// defaults.
type BreakerOptions struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker from Closed to Open. Default 5.
	Threshold int
	// OpenFor is how long the breaker refuses traffic before allowing
	// half-open probes. Default 1s.
	OpenFor time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the breaker again. Default 1.
	ProbeSuccesses int
	// Now overrides the clock for tests. Default time.Now.
	Now func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.OpenFor <= 0 {
		o.OpenFor = time.Second
	}
	if o.ProbeSuccesses <= 0 {
		o.ProbeSuccesses = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a per-target circuit breaker. Callers ask Allow before a
// request and report Success or Failure after; consecutive failures trip
// it Open, a cool-down later it admits half-open probes, and probe
// successes close it. All methods are safe for concurrent use.
type Breaker struct {
	opt BreakerOptions

	mu     sync.Mutex
	state  State
	fails  int       // consecutive failures while Closed
	probes int       // consecutive successes while HalfOpen
	until  time.Time // when an Open breaker starts admitting probes
	opens  uint64    // lifetime Closed/HalfOpen → Open transitions
}

// NewBreaker returns a Breaker in the Closed state.
func NewBreaker(opt BreakerOptions) *Breaker {
	return &Breaker{opt: opt.withDefaults()}
}

// Allow reports whether a request may proceed. While Open it returns
// false until the cool-down elapses, at which point the breaker moves
// to HalfOpen and admits trial requests — those requests are the
// probes, so their outcomes (reported via Success/Failure) decide
// whether the breaker closes or re-opens.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		if b.opt.Now().Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.probes = 0
	}
	return true
}

// Success records a successful request, resetting the failure streak
// and — in HalfOpen — counting toward the probe successes that close
// the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails = 0
	case HalfOpen:
		b.probes++
		if b.probes >= b.opt.ProbeSuccesses {
			b.state = Closed
			b.fails = 0
		}
	}
	// A success that straggles in while Open (from a request admitted
	// before the trip) proves nothing about recovery; ignore it.
}

// Failure records a failed request. In Closed it extends the streak and
// trips the breaker at Threshold; in HalfOpen a single failed probe
// re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.opt.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	}
}

// trip moves to Open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.fails = 0
	b.until = b.opt.Now().Add(b.opt.OpenFor)
	b.opens++
}

// State returns the breaker's current position. An Open breaker whose
// cool-down has elapsed still reports Open until the next Allow admits
// a probe.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RemainingOpen returns how long until an Open breaker starts admitting
// probes (zero when not Open or already due). It is the honest basis
// for a Retry-After hint on shed traffic.
func (b *Breaker) RemainingOpen() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	d := b.until.Sub(b.opt.Now())
	if d < 0 {
		return 0
	}
	return d
}

// Opens returns the lifetime count of trips to Open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Reset forces the breaker back to Closed with a clean slate. The
// router calls it when a slot's generation changes — a promoted replica
// must not inherit the failure history of the process it replaced.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probes = 0
}
