// Package resilience is the cluster fault-tolerance substrate: deadline
// budgets that cross process boundaries, retries with exponential
// backoff and jitter, and per-target circuit breakers.
//
// The sharded deployment (internal/shard) survives process death by
// supervision and replica promotion, but a *network* between router and
// shards introduces failures no restart fixes: slow links, partitions,
// connection resets, overloaded members shedding load. This package
// holds the small, dependency-free mechanisms the router and clients
// thread through every hop:
//
//   - Deadline budgets. A caller's patience is a context deadline; the
//     remaining budget travels to the next hop as the relative
//     X-Incgraph-Deadline header (milliseconds left, so clock skew
//     between processes cannot corrupt it). Each hop spends from the
//     budget — retries, backoff sleeps, and fan-out sub-requests are
//     all bounded by it, so a retry storm can never outlive the caller.
//
//   - Retries. Do runs an operation up to a fixed attempt count with
//     exponential backoff and full jitter (decorrelating concurrent
//     retriers), honoring server-directed Retry-After hints and giving
//     up early when the remaining deadline budget cannot cover the next
//     sleep.
//
//   - Circuit breakers. A Breaker per target turns "this shard failed N
//     times in a row" into "stop sending it traffic for a while":
//     closed → open on consecutive failures, open → half-open after a
//     cool-down, half-open → closed on probe successes (or back to open
//     on a probe failure). Callers read RemainingOpen to derive honest
//     Retry-After values for the load they shed.
//
// Everything here is deterministic under a seed and uses no background
// goroutines, so chaos tests replay identically run after run.
package resilience

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the remaining deadline budget between
// processes as an integer count of milliseconds. It is relative — the
// sender computes "time left until my context deadline" — so the value
// survives clock skew between sender and receiver, unlike an absolute
// timestamp.
const DeadlineHeader = "X-Incgraph-Deadline"

// PropagateDeadline stamps req with the remaining budget of its own
// context as the DeadlineHeader. A context with no deadline sends no
// header (the receiver applies its own policy); an already-expired
// deadline sends the minimum budget of 1ms, letting the receiver fail
// fast instead of guessing.
func PropagateDeadline(req *http.Request) {
	dl, ok := req.Context().Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// ParseBudget decodes a DeadlineHeader value into a duration. Absent,
// malformed, and non-positive values report ok == false — the receiver
// falls back to its own policy rather than trusting garbage.
func ParseBudget(h string) (d time.Duration, ok bool) {
	if h == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Middleware applies an incoming request's DeadlineHeader budget to its
// context, so every handler (and every downstream call it makes) is
// bounded by what the caller said it would wait. The header can only
// tighten the deadline: a context that already expires sooner is left
// alone.
func Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if budget, ok := ParseBudget(r.Header.Get(DeadlineHeader)); ok {
			if cur, has := r.Context().Deadline(); !has || time.Until(cur) > budget {
				ctx, cancel := context.WithTimeout(r.Context(), budget)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// EnsureBudget returns ctx unchanged when it already carries a deadline,
// and otherwise derives one bounded by def. It is the router's "every
// request has a budget" guarantee: callers that set a deadline (or sent
// a DeadlineHeader through Middleware) keep theirs, everyone else gets
// the default. The returned cancel must be called either way.
func EnsureBudget(ctx context.Context, def time.Duration) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, def)
}
