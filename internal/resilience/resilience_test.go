package resilience

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestBreaker(c *fakeClock, threshold int, openFor time.Duration, probes int) *Breaker {
	return NewBreaker(BreakerOptions{Threshold: threshold, OpenFor: openFor, ProbeSuccesses: probes, Now: c.now})
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock, 3, time.Second, 1)
	if got := b.State(); got != Closed {
		t.Fatalf("initial state = %v, want Closed", got)
	}
	b.Failure()
	b.Failure()
	b.Success() // resets the streak
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("after interrupted streak state = %v, want Closed", got)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after 3 consecutive failures state = %v, want Open", got)
	}
	if b.Allow() {
		t.Fatal("Allow() = true while Open within cool-down")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
	if r := b.RemainingOpen(); r <= 0 || r > time.Second {
		t.Fatalf("RemainingOpen() = %v, want (0, 1s]", r)
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock, 1, time.Second, 2)
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}

	// Cool-down elapses: the next Allow admits a probe.
	clock.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("Allow() = false after cool-down")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", got)
	}

	// A failed probe re-opens immediately.
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after failed probe state = %v, want Open", got)
	}

	// Two successful probes close it (ProbeSuccesses = 2).
	clock.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("Allow() = false after second cool-down")
	}
	b.Success()
	if got := b.State(); got != HalfOpen {
		t.Fatalf("after 1 of 2 probe successes state = %v, want HalfOpen", got)
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after 2 probe successes state = %v, want Closed", got)
	}
	if r := b.RemainingOpen(); r != 0 {
		t.Fatalf("RemainingOpen() on closed breaker = %v, want 0", r)
	}
}

func TestBreakerResetClearsHistory(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock, 1, time.Minute, 1)
	b.Failure()
	if b.Allow() {
		t.Fatal("Allow() = true while freshly Open")
	}
	b.Reset()
	if got := b.State(); got != Closed {
		t.Fatalf("after Reset state = %v, want Closed", got)
	}
	if !b.Allow() {
		t.Fatal("Allow() = false after Reset")
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 10 * time.Millisecond << attempt
		if ceil > 80*time.Millisecond {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 200; i++ {
			if d := b.Delay(attempt); d < 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [0, %v]", attempt, d, ceil)
			}
			if d := b.DelayFloored(attempt); d < ceil/2 || d > ceil {
				t.Fatalf("DelayFloored(%d) = %v outside [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	a := NewBackoff(5*time.Millisecond, time.Second, 7)
	b := NewBackoff(5*time.Millisecond, time.Second, 7)
	for i := 0; i < 50; i++ {
		if da, db := a.Delay(i%6), b.Delay(i%6); da != db {
			t.Fatalf("seeded sequences diverge at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	retries := 0
	err := Do(context.Background(), RetryOptions{
		Attempts: 5,
		Backoff:  NewBackoff(time.Microsecond, time.Microsecond, 1),
		OnRetry:  func(int, time.Duration, error) { retries++ },
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls = %d retries = %d, want 3 and 2", calls, retries)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Do(context.Background(), RetryOptions{
		Attempts:  5,
		Backoff:   NewBackoff(time.Microsecond, time.Microsecond, 1),
		Retryable: func(err error) bool { return !errors.Is(err, permanent) },
	}, func(context.Context) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) {
		t.Fatalf("Do = %v, want permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent errors)", calls)
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	const hint = 30 * time.Millisecond
	transient := errors.New("shed")
	var slept time.Duration
	start := time.Now()
	err := Do(context.Background(), RetryOptions{
		Attempts:   2,
		Backoff:    NewBackoff(time.Microsecond, time.Microsecond, 1),
		RetryAfter: func(error) (time.Duration, bool) { return hint, true },
		OnRetry:    func(_ int, d time.Duration, _ error) { slept = d },
	}, func(context.Context) error {
		if time.Since(start) < hint {
			return transient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil after honoring hint", err)
	}
	if slept < hint {
		t.Fatalf("scheduled delay %v < server hint %v", slept, hint)
	}
}

func TestDoRespectsDeadlineBudget(t *testing.T) {
	transient := errors.New("transient")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := Do(ctx, RetryOptions{
		Attempts: 100,
		// Every sleep exceeds the whole budget, so Do must stop after
		// the first attempt instead of sleeping past the deadline.
		Backoff: NewBackoff(time.Second, time.Second, 1),
		RetryAfter: func(error) (time.Duration, bool) {
			return time.Second, true
		},
	}, func(context.Context) error {
		calls++
		return transient
	})
	if !errors.Is(err, transient) {
		t.Fatalf("Do = %v, want last transient error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (budget cannot cover any sleep)", calls)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Do took %v, should return well before the 1s sleep", elapsed)
	}
}

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/query/sssp", nil).WithContext(ctx)
	PropagateDeadline(req)
	h := req.Header.Get(DeadlineHeader)
	if h == "" {
		t.Fatal("PropagateDeadline set no header despite a context deadline")
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 || ms > 250 {
		t.Fatalf("header %q: want integer in (0, 250]", h)
	}

	// Receiving side: Middleware turns the header into a context deadline.
	var got time.Duration
	var ok bool
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dl, has := r.Context().Deadline(); has {
			got, ok = time.Until(dl), true
		}
	})
	rec := httptest.NewRecorder()
	in := httptest.NewRequest(http.MethodGet, "/query/sssp", nil)
	in.Header.Set(DeadlineHeader, h)
	Middleware(inner).ServeHTTP(rec, in)
	if !ok {
		t.Fatal("middleware did not install a deadline from the header")
	}
	if got <= 0 || got > time.Duration(ms)*time.Millisecond {
		t.Fatalf("installed budget %v, want (0, %dms]", got, ms)
	}
}

func TestMiddlewareOnlyTightens(t *testing.T) {
	// A context that already expires sooner than the header must win.
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dl, has := r.Context().Deadline()
		if !has {
			t.Error("deadline lost")
			return
		}
		if remaining := time.Until(dl); remaining > 15*time.Millisecond {
			t.Errorf("remaining = %v, want <= 10ms (pre-existing deadline)", remaining)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	r := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)
	r.Header.Set(DeadlineHeader, "60000")
	Middleware(inner).ServeHTTP(httptest.NewRecorder(), r)
}

func TestParseBudgetRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "abc", "-5", "0", "1.5", "9999999999999999999999"} {
		if _, ok := ParseBudget(bad); ok {
			t.Errorf("ParseBudget(%q) accepted, want rejected", bad)
		}
	}
	if d, ok := ParseBudget("1500"); !ok || d != 1500*time.Millisecond {
		t.Fatalf("ParseBudget(1500) = %v %v, want 1.5s true", d, ok)
	}
}

func TestEnsureBudget(t *testing.T) {
	// No deadline: the default is installed.
	ctx, cancel := EnsureBudget(context.Background(), 42*time.Millisecond)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok || time.Until(dl) > 42*time.Millisecond {
		t.Fatalf("EnsureBudget installed %v ok=%v, want <= 42ms deadline", time.Until(dl), ok)
	}

	// Existing deadline survives untouched.
	parent, pcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer pcancel()
	ctx2, cancel2 := EnsureBudget(parent, time.Hour)
	defer cancel2()
	dl2, _ := ctx2.Deadline()
	if time.Until(dl2) > 10*time.Millisecond {
		t.Fatalf("EnsureBudget replaced a tighter caller deadline: %v", time.Until(dl2))
	}
}
