package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays with exponential growth and full
// jitter: attempt k draws uniformly from [0, min(Max, Base·2^k)].
// Full jitter decorrelates concurrent retriers — after a shared blip,
// clients that all failed together do not all retry together. A single
// Backoff is safe for concurrent use and, given a fixed seed, produces
// a deterministic delay sequence (serialized by its internal mutex).
type Backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a Backoff growing from base to at most max, with
// jitter drawn from a generator seeded with seed. Non-positive base and
// max default to 25ms and 1s.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the sleep before retry attempt k (first retry is
// attempt 0): uniform over [0, min(Max, Base·2^k)].
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.ceiling(attempt)
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(ceil) + 1))
}

// DelayFloored is Delay with a floor of half the current ceiling
// ("equal jitter"): uniform over [ceil/2, ceil]. Restart loops use it —
// a supervisor that sleeps ~0 before respawning a crash-looping child
// burns CPU for nothing, while a retry that fires early merely races a
// recovered peer.
func (b *Backoff) DelayFloored(attempt int) time.Duration {
	ceil := b.ceiling(attempt)
	half := ceil / 2
	b.mu.Lock()
	defer b.mu.Unlock()
	return half + time.Duration(b.rng.Int63n(int64(ceil-half)+1))
}

func (b *Backoff) ceiling(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	ceil := b.base
	for i := 0; i < attempt && ceil < b.max; i++ {
		ceil *= 2
	}
	if ceil > b.max {
		ceil = b.max
	}
	return ceil
}

// RetryOptions configures Do. The zero value retries twice with a
// default backoff and treats every error as retryable.
type RetryOptions struct {
	// Attempts is the total number of tries, including the first.
	// Default 3.
	Attempts int
	// Backoff supplies inter-attempt delays. Default NewBackoff(0,0,1).
	Backoff *Backoff
	// Retryable, when non-nil, filters which errors are worth another
	// attempt; a false verdict returns the error immediately. Permanent
	// errors (4xx semantics, closed breakers) should report false.
	Retryable func(error) bool
	// RetryAfter, when non-nil, extracts a server-directed minimum delay
	// hint from an error (e.g. a 503's Retry-After header). The actual
	// sleep is the larger of the hint and the jittered backoff.
	RetryAfter func(error) (time.Duration, bool)
	// OnRetry, when non-nil, observes each scheduled retry: the attempt
	// number about to run (1-based), the sleep chosen, and the error
	// that caused it. Used to feed retry counters and breakers.
	OnRetry func(attempt int, delay time.Duration, err error)
}

// Do runs op up to opt.Attempts times, sleeping a jittered backoff
// between tries. It spends only from ctx's budget: when the remaining
// deadline cannot cover the next sleep, Do gives up and returns the
// last error instead of sleeping past the caller's patience. The
// context passed to op is ctx itself, so op's own I/O is equally
// bounded.
func Do(ctx context.Context, opt RetryOptions, op func(context.Context) error) error {
	attempts := opt.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	bo := opt.Backoff
	if bo == nil {
		bo = NewBackoff(0, 0, 1)
	}
	var err error
	for i := 0; i < attempts; i++ {
		if ctxErr := ctx.Err(); ctxErr != nil {
			if err == nil {
				err = ctxErr
			}
			return err
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if opt.Retryable != nil && !opt.Retryable(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		delay := bo.Delay(i)
		if opt.RetryAfter != nil {
			if hint, ok := opt.RetryAfter(err); ok && hint > delay {
				delay = hint
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			return err // the budget can't cover the sleep; stop here
		}
		if opt.OnRetry != nil {
			opt.OnRetry(i+1, delay, err)
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
	return err
}
