package serve

import (
	"encoding/gob"
	"io"

	"incgraph/internal/bc"
	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// The adapters below wrap each incremental maintainer as a Serveable.
// Every Snapshot deep-copies the maintainer's result, because the
// maintainers alias internal state from their accessors (Dist, Labels, …)
// and keep mutating it across Apply calls; the copy is what makes the
// published views immutable.
//
// Apply returns an ApplyResult instead of the bare affected count: the
// engine-based maintainers (SSSP, CC, Sim) expose cumulative
// fixpoint.Stats, so each adapter snapshots the counters around Apply
// and reports the per-apply delta — the numbers Theorem 3 is about —
// rather than discarding them. DFS, LCC, and BC repair with specialized
// machinery and report only the affected-area measure.
//
// PersistState/RestoreState serialize the maintainer's incremental state
// as a gob blob for durability checkpoints. What each class persists is
// exactly what Theorem 1's weak deducibility says it must keep beyond
// the answer itself: the engine-backed classes persist their timestamps
// and clock (the anchor order <_C), sim its falsification timestamps,
// dfs/lcc nothing beyond the interval/status variables, and bc the
// component-id map. Recompute rebuilds the maintainer by re-running the
// batch algorithm over the current graph — the self-healing and
// recovery-verification path.

// SSSPView is the published snapshot of an SSSP maintainer.
type SSSPView struct {
	// Src is the source node.
	Src graph.NodeID `json:"src"`
	// Dist[v] is the shortest distance from Src to v; graph.Infinity for
	// unreachable nodes.
	Dist []int64 `json:"dist"`
}

type ssspServeable struct {
	inc *sssp.Inc
	src graph.NodeID
}

// SSSP adapts an IncSSSP maintainer.
func SSSP(inc *sssp.Inc, src graph.NodeID) Serveable {
	return &ssspServeable{inc: inc, src: src}
}

func (s *ssspServeable) Algo() string        { return "sssp" }
func (s *ssspServeable) Graph() *graph.Graph { return s.inc.Graph() }
func (s *ssspServeable) Apply(b graph.Batch) ApplyResult {
	return statsDelta(s.inc, s.inc.Graph(), len(b), func() int { return s.inc.Apply(b) })
}
func (s *ssspServeable) Snapshot() any {
	return SSSPView{Src: s.src, Dist: append([]int64(nil), s.inc.Dist()...)}
}
func (s *ssspServeable) SetTracer(t fixpoint.Tracer) { s.inc.SetTracer(t) }

// SetWorkers and ParStats forward the parallel execution mode to the
// current inner maintainer (Recompute replaces it, so the host re-applies
// the setting after a heal).
func (s *ssspServeable) SetWorkers(n int)            { s.inc.SetWorkers(n) }
func (s *ssspServeable) ParStats() fixpoint.ParStats { return s.inc.ParStats() }

// SetCompactThreshold forwards the flat view's overlay-compaction knob
// (see graph.Flat); re-applied by the host after a heal recompute.
func (s *ssspServeable) SetCompactThreshold(t float64) { s.inc.SetCompactThreshold(t) }

// ssspState is the gob envelope of PersistState: the distances are
// IncSSSP's complete incremental state (deducible; <_C is distance
// order).
type ssspState struct{ Dist []int64 }

func (s *ssspServeable) PersistState(w io.Writer) error {
	return gob.NewEncoder(w).Encode(ssspState{Dist: s.inc.Dist()})
}
func (s *ssspServeable) RestoreState(r io.Reader) error {
	var st ssspState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	return s.inc.RestoreState(st.Dist)
}
func (s *ssspServeable) Recompute() { s.inc = sssp.NewInc(s.inc.Graph(), s.src) }

// statser is the slice of the maintainer API the stats plumbing needs.
type statser interface{ Stats() fixpoint.Stats }

// statsDelta runs one Apply on a stats-exposing maintainer and packages
// the affected count with the counter delta attributable to that apply.
// Maintainers that also expose parallel-drain counters and have workers
// configured additionally report the per-apply ParStats delta.
//
// The per-apply work ledger rides the same Stats snapshot: the engine
// fills |CHANGED|, |AFF|, ‖AFF‖, and rounds, and the adapter completes
// the cost model with the two quantities only the serving layer knows —
// |ΔG| (the net batch size) and the recompute estimate (nodes + edges of
// the graph after the apply).
func statsDelta(m statser, g *graph.Graph, delta int, apply func() int) ApplyResult {
	before := m.Stats()
	var parBefore fixpoint.ParStats
	ps, hasPar := m.(parStatser)
	if hasPar {
		parBefore = ps.ParStats()
	}
	aff := apply()
	res := ApplyResult{Affected: aff, Stats: m.Stats().Sub(before), HasStats: true}
	if hasPar {
		res.Par = ps.ParStats().Sub(parBefore)
		res.HasPar = res.Par.Workers > 1
	}
	res.Ledger = res.Stats.Ledger
	res.Ledger.Delta = int64(delta)
	res.Ledger.RecomputeEst = int64(g.NumNodes() + g.NumEdges())
	res.HasLedger = true
	return res
}

// syntheticLedger builds the work ledger for the specialized classes
// (DFS, LCC, BC) that repair without the fixpoint engine: the batch size
// stands in for the touched set, the affected-area measure for both
// |CHANGED| and |AFF| (their repair machinery reports only the combined
// measure), and ‖AFF‖/rounds stay zero — Work degrades to touched+|AFF|,
// which is still the quantity Theorem 3 bounds for these classes.
func syntheticLedger(g *graph.Graph, delta, affected int) fixpoint.WorkLedger {
	return fixpoint.WorkLedger{
		Runs:         1,
		Delta:        int64(delta),
		Touched:      int64(delta),
		Changed:      int64(affected),
		Aff:          int64(affected),
		RecomputeEst: int64(g.NumNodes() + g.NumEdges()),
	}
}

// CCView is the published snapshot of a connected-components maintainer.
type CCView struct {
	// Labels[v] is the minimum node id of v's (weakly) connected
	// component.
	Labels []int64 `json:"labels"`
}

type ccServeable struct{ inc *cc.Inc }

// CC adapts an IncCC maintainer.
func CC(inc *cc.Inc) Serveable { return &ccServeable{inc: inc} }

func (s *ccServeable) Algo() string        { return "cc" }
func (s *ccServeable) Graph() *graph.Graph { return s.inc.Graph() }
func (s *ccServeable) Apply(b graph.Batch) ApplyResult {
	return statsDelta(s.inc, s.inc.Graph(), len(b), func() int { return s.inc.Apply(b) })
}
func (s *ccServeable) Snapshot() any {
	return CCView{Labels: append([]int64(nil), s.inc.Labels()...)}
}
func (s *ccServeable) SetTracer(t fixpoint.Tracer) { s.inc.SetTracer(t) }

// SetWorkers and ParStats forward the parallel execution mode to the
// current inner maintainer.
func (s *ccServeable) SetWorkers(n int)            { s.inc.SetWorkers(n) }
func (s *ccServeable) ParStats() fixpoint.ParStats { return s.inc.ParStats() }

// SetCompactThreshold forwards the flat view's overlay-compaction knob
// (see graph.Flat); re-applied by the host after a heal recompute.
func (s *ccServeable) SetCompactThreshold(t float64) { s.inc.SetCompactThreshold(t) }

// ccState is the gob envelope of PersistState: labels plus the engine's
// timestamps and clock, which carry the anchor order <_C across a
// restart.
type ccState struct {
	Labels, TS []int64
	Clock      int64
}

func (s *ccServeable) PersistState(w io.Writer) error {
	labels, ts, clock := s.inc.ExportState()
	return gob.NewEncoder(w).Encode(ccState{Labels: labels, TS: ts, Clock: clock})
}
func (s *ccServeable) RestoreState(r io.Reader) error {
	var st ccState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	return s.inc.RestoreState(st.Labels, st.TS, st.Clock)
}
func (s *ccServeable) Recompute() { s.inc = cc.NewInc(s.inc.Graph()) }

// SimView is the published snapshot of a graph-simulation maintainer.
type SimView struct {
	// NQ is the pattern's node count.
	NQ int `json:"nq"`
	// Count is the number of (data node, pattern node) matches in the
	// maximum simulation.
	Count int `json:"count"`
	// Matches[u] lists the data nodes matching pattern node u.
	Matches [][]graph.NodeID `json:"matches"`
}

type simServeable struct{ inc *sim.Inc }

// Sim adapts an IncSim maintainer.
func Sim(inc *sim.Inc) Serveable { return &simServeable{inc: inc} }

func (s *simServeable) Algo() string                { return "sim" }
func (s *simServeable) Graph() *graph.Graph         { return s.inc.Graph() }
func (s *simServeable) SetTracer(t fixpoint.Tracer) { s.inc.SetTracer(t) }
func (s *simServeable) Apply(b graph.Batch) ApplyResult {
	return statsDelta(s.inc, s.inc.Graph(), len(b), func() int { return s.inc.Apply(b) })
}
func (s *simServeable) Snapshot() any {
	r := s.inc.Relation()
	n := len(r.Bits) / r.NQ
	v := SimView{NQ: r.NQ, Count: r.Count(), Matches: make([][]graph.NodeID, r.NQ)}
	for u := 0; u < r.NQ; u++ {
		v.Matches[u] = []graph.NodeID{}
		for d := 0; d < n; d++ {
			if r.Match(graph.NodeID(d), graph.NodeID(u)) {
				v.Matches[u] = append(v.Matches[u], graph.NodeID(d))
			}
		}
	}
	return v
}

// simState is the gob envelope of PersistState: the match relation, the
// support counters, and the falsification timestamps — IncSim's
// auxiliary structure, which is what makes it only weakly deducible
// (§5.1).
type simState struct {
	R     []bool
	Cnt   []int32
	TS    []int64
	Clock int64
}

func (s *simServeable) PersistState(w io.Writer) error {
	r, cnt, ts, clock := s.inc.ExportState()
	return gob.NewEncoder(w).Encode(simState{R: r, Cnt: cnt, TS: ts, Clock: clock})
}
func (s *simServeable) RestoreState(r io.Reader) error {
	var st simState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	return s.inc.RestoreState(st.R, st.Cnt, st.TS, st.Clock)
}
func (s *simServeable) Recompute() { s.inc = sim.NewInc(s.inc.Graph(), s.inc.Pattern()) }

// DFSView is the published snapshot of a DFS maintainer: the canonical
// forest as preorder/postorder intervals plus parent pointers.
type DFSView struct {
	First  []int32        `json:"first"`
	Last   []int32        `json:"last"`
	Parent []graph.NodeID `json:"parent"`
}

type dfsServeable struct{ inc *dfs.Inc }

// DFS adapts an IncDFS maintainer.
func DFS(inc *dfs.Inc) Serveable { return &dfsServeable{inc: inc} }

func (s *dfsServeable) Algo() string        { return "dfs" }
func (s *dfsServeable) Graph() *graph.Graph { return s.inc.Graph() }
func (s *dfsServeable) Apply(b graph.Batch) ApplyResult {
	aff := s.inc.Apply(b)
	return ApplyResult{Affected: aff,
		Ledger: syntheticLedger(s.inc.Graph(), len(b), aff), HasLedger: true}
}
func (s *dfsServeable) Snapshot() any {
	t := s.inc.Tree()
	return DFSView{
		First:  append([]int32(nil), t.First...),
		Last:   append([]int32(nil), t.Last...),
		Parent: append([]graph.NodeID(nil), t.Parent...),
	}
}

// dfsState is the gob envelope of PersistState: the interval variables
// are IncDFS's complete incremental state — anchors and <_C are read off
// them directly (§5.2).
type dfsState struct {
	First, Last []int32
	Parent      []graph.NodeID
}

func (s *dfsServeable) PersistState(w io.Writer) error {
	t := s.inc.Tree()
	return gob.NewEncoder(w).Encode(dfsState{First: t.First, Last: t.Last, Parent: t.Parent})
}
func (s *dfsServeable) RestoreState(r io.Reader) error {
	var st dfsState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	return s.inc.RestoreState(st.First, st.Last, st.Parent)
}
func (s *dfsServeable) Recompute() { s.inc = dfs.NewInc(s.inc.Graph()) }

// SetCompactThreshold forwards the flat view's overlay-compaction knob
// (see Options.CompactThreshold); the host re-applies it after a heal
// rebuilds the maintainer.
func (s *dfsServeable) SetCompactThreshold(t float64) { s.inc.SetCompactThreshold(t) }

// LCCView is the published snapshot of a local-clustering-coefficient
// maintainer.
type LCCView struct {
	Deg []int32 `json:"deg"`
	Tri []int64 `json:"tri"`
	// Gamma[v] is the local clustering coefficient of v.
	Gamma []float64 `json:"gamma"`
}

type lccServeable struct{ inc *lcc.Inc }

// LCC adapts an IncLCC maintainer.
func LCC(inc *lcc.Inc) Serveable { return &lccServeable{inc: inc} }

func (s *lccServeable) Algo() string        { return "lcc" }
func (s *lccServeable) Graph() *graph.Graph { return s.inc.Graph() }
func (s *lccServeable) Apply(b graph.Batch) ApplyResult {
	aff := s.inc.Apply(b)
	return ApplyResult{Affected: aff,
		Ledger: syntheticLedger(s.inc.Graph(), len(b), aff), HasLedger: true}
}
func (s *lccServeable) Snapshot() any {
	r := s.inc.Result()
	v := LCCView{
		Deg:   append([]int32(nil), r.Deg...),
		Tri:   append([]int64(nil), r.Tri...),
		Gamma: make([]float64, len(r.Deg)),
	}
	for i := range v.Gamma {
		v.Gamma[i] = r.Gamma(graph.NodeID(i))
	}
	return v
}

// lccState is the gob envelope of PersistState: d_v and λ_v are IncLCC's
// complete state — it keeps no auxiliary structure (§5.3).
type lccState struct {
	Deg []int32
	Tri []int64
}

func (s *lccServeable) PersistState(w io.Writer) error {
	r := s.inc.Result()
	return gob.NewEncoder(w).Encode(lccState{Deg: r.Deg, Tri: r.Tri})
}
func (s *lccServeable) RestoreState(r io.Reader) error {
	var st lccState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	return s.inc.RestoreState(st.Deg, st.Tri)
}
func (s *lccServeable) Recompute() { s.inc = lcc.NewInc(s.inc.Graph()) }

// BCView is the published snapshot of a biconnectivity maintainer.
type BCView struct {
	// Articulation[v] reports whether v is an articulation point.
	Articulation []bool `json:"articulation"`
	// NumComps is the number of biconnected edge components.
	NumComps int `json:"num_comps"`
}

type bcServeable struct{ inc *bc.Inc }

// BC adapts an IncBC maintainer.
func BC(inc *bc.Inc) Serveable { return &bcServeable{inc: inc} }

func (s *bcServeable) Algo() string        { return "bc" }
func (s *bcServeable) Graph() *graph.Graph { return s.inc.Graph() }

// SetCompactThreshold forwards the flat view's overlay-compaction knob
// (see graph.Flat); re-applied by the host after a heal recompute.
func (s *bcServeable) SetCompactThreshold(t float64) { s.inc.SetCompactThreshold(t) }
func (s *bcServeable) Apply(b graph.Batch) ApplyResult {
	aff := s.inc.Apply(b)
	return ApplyResult{Affected: aff,
		Ledger: syntheticLedger(s.inc.Graph(), len(b), aff), HasLedger: true}
}
func (s *bcServeable) Snapshot() any {
	r := s.inc.Result()
	return BCView{
		Articulation: append([]bool(nil), r.Articulation...),
		NumComps:     r.NumComps(),
	}
}

// bcState is the gob envelope of PersistState: the articulation flags
// and the edge partition. Component ids survive the round trip so
// incremental repair after a restart keeps distinguishing restored
// components from freshly derived ones.
type bcState struct {
	Articulation []bool
	EdgeComp     map[[2]graph.NodeID]int32
}

func (s *bcServeable) PersistState(w io.Writer) error {
	r := s.inc.Result()
	return gob.NewEncoder(w).Encode(bcState{Articulation: r.Articulation, EdgeComp: r.EdgeComp})
}
func (s *bcServeable) RestoreState(r io.Reader) error {
	var st bcState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	return s.inc.RestoreState(st.Articulation, st.EdgeComp)
}
func (s *bcServeable) Recompute() { s.inc = bc.NewInc(s.inc.Graph()) }
