package serve

import (
	"math"
	"net/http"
	"testing"
	"time"

	"incgraph/internal/bc"
	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// checkLedger asserts the invariants every adapter's per-apply ledger
// must satisfy: one run, |ΔG| = the batch size, the recompute estimate
// anchored to the current graph, and the Work algebra.
func checkLedger(t *testing.T, algo string, res ApplyResult, g *graph.Graph, batchLen int) {
	t.Helper()
	if !res.HasLedger {
		t.Fatalf("%s: adapter reported no ledger", algo)
	}
	led := res.Ledger
	if led.Runs != 1 {
		t.Errorf("%s: Runs = %d, want 1", algo, led.Runs)
	}
	if led.Delta != int64(batchLen) {
		t.Errorf("%s: Delta = %d, want %d", algo, led.Delta, batchLen)
	}
	if want := int64(g.NumNodes() + g.NumEdges()); led.RecomputeEst != want {
		t.Errorf("%s: RecomputeEst = %d, want %d", algo, led.RecomputeEst, want)
	}
	if led.Changed > led.Aff {
		t.Errorf("%s: Changed %d exceeds Aff %d", algo, led.Changed, led.Aff)
	}
	if w := led.Work(); w != led.Touched+led.Aff+led.AffEdges {
		t.Errorf("%s: Work = %d", algo, w)
	}
	for name, v := range map[string]float64{
		"bounded":   led.BoundedRatio(),
		"recompute": led.RecomputeRatio(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: %s ratio is %v", algo, name, v)
		}
	}
}

// TestAdapterLedgersAllClasses drives every class adapter through one
// Apply and checks the work ledger each reports: the engine-backed
// classes (SSSP, CC, Sim) surface the engine's schedule-independent
// counters, the specialized classes (DFS, LCC, BC) a synthesized ledger.
func TestAdapterLedgersAllClasses(t *testing.T) {
	undirected := func() *graph.Graph {
		g := graph.New(6, false)
		g.InsertEdge(0, 1, 2)
		g.InsertEdge(1, 2, 2)
		g.InsertEdge(2, 3, 1)
		g.InsertEdge(3, 4, 1)
		return g
	}
	directed := func() *graph.Graph {
		g := graph.New(6, true)
		g.InsertEdge(0, 1, 1)
		g.InsertEdge(1, 2, 1)
		g.InsertEdge(2, 3, 1)
		return g
	}
	batch := graph.Batch{
		{Kind: graph.InsertEdge, From: 0, To: 4, W: 1},
		{Kind: graph.InsertEdge, From: 4, To: 5, W: 1},
	}

	t.Run("sssp", func(t *testing.T) {
		g := undirected()
		s := SSSP(sssp.NewInc(g, 0), 0)
		res := s.Apply(batch)
		checkLedger(t, "sssp", res, g, len(batch))
		if res.Ledger.Changed == 0 {
			t.Error("sssp: shortening inserts must change distances")
		}
	})
	t.Run("cc", func(t *testing.T) {
		g := undirected()
		s := CC(cc.NewInc(g))
		res := s.Apply(batch)
		checkLedger(t, "cc", res, g, len(batch))
		if res.Ledger.Aff == 0 {
			t.Error("cc: connecting node 5 must affect labels")
		}
	})
	t.Run("sim", func(t *testing.T) {
		g := directed()
		g.SetLabel(0, 'a')
		g.SetLabel(1, 'b')
		q := graph.New(2, true)
		q.SetLabel(0, 'a')
		q.SetLabel(1, 'b')
		q.InsertEdge(0, 1, 1)
		s := Sim(sim.NewInc(g, q))
		res := s.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 0, To: 1}})
		checkLedger(t, "sim", res, g, 1)
	})
	t.Run("dfs", func(t *testing.T) {
		g := directed()
		s := DFS(dfs.NewInc(g))
		res := s.Apply(batch)
		checkLedger(t, "dfs", res, g, len(batch))
		if res.Ledger.Aff != int64(res.Affected) {
			t.Errorf("dfs: synthetic Aff %d != Affected %d", res.Ledger.Aff, res.Affected)
		}
	})
	t.Run("lcc", func(t *testing.T) {
		g := undirected()
		s := LCC(lcc.NewInc(g))
		res := s.Apply(batch)
		checkLedger(t, "lcc", res, g, len(batch))
	})
	t.Run("bc", func(t *testing.T) {
		g := undirected()
		s := BC(bc.NewInc(g))
		res := s.Apply(batch)
		checkLedger(t, "bc", res, g, len(batch))
	})
}

// TestHostAuditAggregation submits batches through a host and checks the
// audit plane end to end: Stats.Audit accumulates the per-apply ledgers,
// Boundedness() derives finite quotients and quantiles, and the offender
// ring retains the applies, worst ratio first.
func TestHostAuditAggregation(t *testing.T) {
	leakCheck(t)
	g := graph.New(8, false)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	h := NewHost(SSSP(sssp.NewInc(g, 0), 0), Options{MaxWait: time.Millisecond})
	defer h.Close()

	batches := []graph.Batch{
		{{Kind: graph.InsertEdge, From: 2, To: 3, W: 1}},
		{{Kind: graph.InsertEdge, From: 3, To: 4, W: 1}, {Kind: graph.InsertEdge, From: 4, To: 5, W: 1}},
		{{Kind: graph.DeleteEdge, From: 1, To: 2}},
	}
	for _, b := range batches {
		if err := h.SubmitWait(b); err != nil {
			t.Fatal(err)
		}
	}

	st := h.Stats()
	if st.Audit.Runs != int64(len(batches)) {
		t.Fatalf("Audit.Runs = %d, want %d", st.Audit.Runs, len(batches))
	}
	if st.Audit.Delta != 4 {
		t.Fatalf("Audit.Delta = %d, want 4", st.Audit.Delta)
	}
	if st.Audit.Work() <= 0 {
		t.Fatalf("Audit.Work = %d", st.Audit.Work())
	}

	rep := h.Boundedness()
	if rep.Algo != "sssp" || rep.Ledger != st.Audit {
		t.Fatalf("report %+v does not match Stats.Audit %+v", rep.Ledger, st.Audit)
	}
	for name, v := range map[string]float64{
		"bounded_ratio": rep.BoundedRatio, "recompute_ratio": rep.RecomputeRatio,
		"ratio_p50": rep.RatioP50, "ratio_p95": rep.RatioP95, "ratio_max": rep.RatioMax,
		"rounds_p95": rep.RoundsP95, "worst_ratio": rep.WorstRatio,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("report field %s = %v", name, v)
		}
	}
	if rep.BoundedRatio <= 0 || rep.RatioMax <= 0 {
		t.Fatalf("quotients not populated: %+v", rep)
	}

	offs := h.Offenders()
	if len(offs) != len(batches) {
		t.Fatalf("offenders = %d, want %d", len(offs), len(batches))
	}
	for i, o := range offs {
		if o.Algo != "sssp" || o.Delta <= 0 || o.Batch == 0 {
			t.Fatalf("offender %d malformed: %+v", i, o)
		}
		if got := float64(o.Work) / float64(o.Delta); math.Abs(got-o.BoundedRatio) > 1e-9 {
			t.Fatalf("offender %d ratio %v != work/delta %v", i, o.BoundedRatio, got)
		}
		if i > 0 && offs[i-1].BoundedRatio < o.BoundedRatio {
			t.Fatalf("offenders not sorted: %v before %v", offs[i-1].BoundedRatio, o.BoundedRatio)
		}
	}
	if rep.WorstRatio != offs[0].BoundedRatio || rep.OffenderCount != len(offs) {
		t.Fatalf("report offender summary %v/%d vs ring %v/%d",
			rep.WorstRatio, rep.OffenderCount, offs[0].BoundedRatio, len(offs))
	}
}

// TestHTTPBoundednessEndpoints exercises GET /debug/boundedness and
// GET /debug/offenders over HTTP: valid JSON (a NaN anywhere would break
// encoding), every hosted algo present, and the algo filter plus its 404.
func TestHTTPBoundednessEndpoints(t *testing.T) {
	leakCheck(t)
	_, ts := newTestService(t)

	// Before any update: reports exist, all-zero, and still valid JSON.
	var empty map[string]BoundednessReport
	if code := getJSON(t, ts.URL+"/debug/boundedness", &empty); code != http.StatusOK {
		t.Fatalf("boundedness status %d", code)
	}
	if len(empty) != 2 || empty["sssp"].Ledger.Runs != 0 {
		t.Fatalf("pre-update reports: %+v", empty)
	}

	if code, body := postUpdate(t, ts.URL+"/update?wait=1", "+ 2 3 1\n+ 3 4 2\n"); code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, body)
	}

	var reports map[string]BoundednessReport
	getJSON(t, ts.URL+"/debug/boundedness", &reports)
	for _, algo := range []string{"sssp", "cc"} {
		rep, ok := reports[algo]
		if !ok {
			t.Fatalf("no report for %s: %v", algo, reports)
		}
		if rep.Ledger.Runs == 0 || rep.Ledger.Delta != 2 {
			t.Fatalf("%s report not populated: %+v", algo, rep)
		}
	}

	var offs map[string][]Offender
	getJSON(t, ts.URL+"/debug/offenders", &offs)
	if len(offs["sssp"]) == 0 || len(offs["cc"]) == 0 {
		t.Fatalf("offenders missing: %v", offs)
	}

	offs = nil
	getJSON(t, ts.URL+"/debug/offenders?algo=cc", &offs)
	if len(offs) != 1 || len(offs["cc"]) == 0 {
		t.Fatalf("filtered offenders: %v", offs)
	}

	var e map[string]string
	if code := getJSON(t, ts.URL+"/debug/offenders?algo=nope", &e); code != http.StatusNotFound {
		t.Fatalf("unknown algo status %d", code)
	}
}
