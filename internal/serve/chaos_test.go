package serve

import (
	"encoding/json"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"incgraph/internal/bc"
	"incgraph/internal/cc"
	"incgraph/internal/dfs"
	"incgraph/internal/graph"
	"incgraph/internal/lcc"
	"incgraph/internal/serve/faults"
	"incgraph/internal/sim"
	"incgraph/internal/sssp"
)

// TestChaosServeDifferential is the single-process half of the chaos
// campaign: all six query classes ingest the same seeded update streams
// while a deterministic injector poisons one apply per class mid-stream
// (panic → isolate → heal by batch recompute). The invariant is the
// paper's: after the stream drains, every class's incrementally
// maintained answer must equal a from-scratch recompute over exactly
// the batches that were applied — the poisoned batch is dropped by the
// heal, so it is excluded from the oracle too, and nothing else may
// diverge. Set INCGRAPH_CHAOS_SECONDS to stretch the stream into the
// long-form campaign.
func TestChaosServeDifferential(t *testing.T) {
	const n = 120
	seedGraph := func(seed int64, directed bool) *graph.Graph {
		g := graph.New(n, directed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3*n; i++ {
			g.InsertEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), int64(1+rng.Intn(8)))
		}
		return g
	}
	// Sim needs labels on the data graph and a pattern.
	labeled := func(g *graph.Graph) *graph.Graph {
		for v := 0; v < n; v++ {
			g.SetLabel(graph.NodeID(v), graph.Label('a'+v%3))
		}
		return g
	}
	pattern := func() *graph.Graph {
		q := graph.New(2, true)
		q.SetLabel(0, 'a')
		q.SetLabel(1, 'b')
		q.InsertEdge(0, 1, 1)
		return q
	}

	// Each class owns a host, a mirror graph accumulating exactly the
	// batches the host applied, and a rebuild function that answers the
	// class from scratch over a mirror clone.
	type class struct {
		directed bool
		panicAt  int64 // 1-based apply ordinal the injector poisons
		host     *Host
		inj      *faults.Injector
		mirror   *graph.Graph
		rebuild  func(*graph.Graph) Serveable
	}
	classes := map[string]*class{
		"sssp": {directed: false, panicAt: 2,
			rebuild: func(g *graph.Graph) Serveable { return SSSP(sssp.NewInc(g, 0), 0) }},
		"cc": {directed: false, panicAt: 3,
			rebuild: func(g *graph.Graph) Serveable { return CC(cc.NewInc(g)) }},
		"sim": {directed: true, panicAt: 4,
			rebuild: func(g *graph.Graph) Serveable { return Sim(sim.NewInc(g, pattern())) }},
		"dfs": {directed: true, panicAt: 5,
			rebuild: func(g *graph.Graph) Serveable { return DFS(dfs.NewInc(g)) }},
		"lcc": {directed: false, panicAt: 6,
			rebuild: func(g *graph.Graph) Serveable { return LCC(lcc.NewInc(g)) }},
		"bc": {directed: false, panicAt: 7,
			rebuild: func(g *graph.Graph) Serveable { return BC(bc.NewInc(g)) }},
	}
	for name, c := range classes {
		seed := int64(len(name)) // distinct but deterministic per geometry use below
		g := seedGraph(seed, c.directed)
		c.mirror = seedGraph(seed, c.directed)
		if name == "sim" {
			labeled(g)
			labeled(c.mirror)
		}
		c.inj = faults.New()
		c.inj.PanicOn(name, c.panicAt)
		c.host = NewHost(c.rebuild(g), Options{BeforeApply: c.inj.BeforeApply})
		defer c.host.Close()
	}

	rounds, longEnd := 24, time.Time{}
	if s := os.Getenv("INCGRAPH_CHAOS_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad INCGRAPH_CHAOS_SECONDS %q", s)
		}
		rounds, longEnd = 1<<30, time.Now().Add(time.Duration(secs)*time.Second)
	}

	rng := rand.New(rand.NewSource(31))
	randomBatch := func() graph.Batch {
		b := make(graph.Batch, 1+rng.Intn(6))
		for i := range b {
			u := graph.Update{
				From: graph.NodeID(rng.Intn(n)),
				To:   graph.NodeID(rng.Intn(n)),
				W:    int64(1 + rng.Intn(8)),
				Kind: graph.InsertEdge,
			}
			if rng.Intn(3) == 0 {
				u.Kind = graph.DeleteEdge
			}
			b[i] = u
		}
		return b
	}

	// One SubmitWait per round per class keeps apply ordinals aligned
	// with the injector's plan: apply k carries round k's batch, so the
	// poisoned round is known exactly and excluded from that mirror.
	for round := int64(1); round <= int64(rounds); round++ {
		b := randomBatch()
		for name, c := range classes {
			if err := c.host.SubmitWait(b); err != nil {
				t.Fatalf("%s: round %d: %v", name, round, err)
			}
			if round != c.panicAt {
				c.mirror.Apply(b)
			}
		}
		if !longEnd.IsZero() && time.Now().After(longEnd) {
			break
		}
	}

	for name, c := range classes {
		st := c.host.Stats()
		if st.Panics != 1 || st.Heals != 1 {
			t.Errorf("%s: panics=%d heals=%d, want 1/1", name, st.Panics, st.Heals)
		}
		if st.Degraded {
			t.Errorf("%s: still degraded after heal", name)
		}
		got, err := json.Marshal(c.host.View().Data)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(c.rebuild(c.mirror.Clone()).Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: incremental answer diverged from recompute\n got %s\nwant %s", name, got, want)
		}
	}
}
