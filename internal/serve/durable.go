package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/obs"
	"incgraph/internal/trace"
	"incgraph/internal/wal"
)

// This file is the durability layer of the service: a write-ahead log of
// every ingested batch plus periodic checkpoints of each maintainer's
// graph and incremental state. The invariant it maintains is
//
//	acknowledged  ⊆  durable(checkpoint state ∪ WAL tail)
//
// so a kill -9 at any moment loses nothing that was acknowledged (under
// fsync=always), and recovery reconstructs exactly the state a
// from-scratch batch run over the durable prefix would produce.
//
// Recovery is three phases, in LoadRecovery / Recovery.Replay /
// VerifyRecovered:
//
//  1. restore: the latest valid checkpoint supplies each algorithm's
//     graph (binary codec) and incremental state (the adapter's gob
//     envelope) — timestamps, intervals, and component ids survive, so
//     the restored maintainer repairs future batches with the same
//     anchor order <_C it would have had without the restart;
//  2. replay: the WAL tail (segments at or after the checkpoint's
//     ReplayFrom) re-applies every update the checkpoint had not
//     absorbed, through the normal incremental Apply path;
//  3. verify: each maintainer's replayed answer is compared against a
//     batch recompute over the recovered graph. Divergence — which the
//     design treats as a bug, not an expected state — is counted,
//     exposed as a gauge, and self-corrected by keeping the recomputed
//     answer.

// stateEnvelope wraps an adapter's PersistState blob with the host's
// stream accounting, so a recovered host resumes its epoch counters.
type stateEnvelope struct {
	Epoch   uint64
	Batches uint64
	State   []byte
}

// RecoveredAlgo is one algorithm's slice of a loaded checkpoint: the
// decoded graph to build the maintainer on, the state blob to restore
// into it, and the stream position the checkpoint represents.
type RecoveredAlgo struct {
	Name    string
	Graph   *graph.Graph
	State   []byte
	Epoch   uint64
	Batches uint64
}

// Recovery is a loaded (possibly empty) checkpoint plus the WAL position
// to replay from.
type Recovery struct {
	dir string
	// Algos maps algo name to its recovered state; empty when no valid
	// checkpoint exists (fresh start or all checkpoints corrupt).
	Algos map[string]RecoveredAlgo
	// ReplayFrom is the first WAL segment not covered by the checkpoint;
	// 0 replays everything.
	ReplayFrom uint64
	// CheckpointEpoch is the loaded checkpoint's epoch sum, 0 if none.
	CheckpointEpoch uint64

	replayedRaw     map[string]uint64
	replayedRecords map[string]uint64
	// Replayed is the total WAL records re-applied by Replay.
	Replayed int
}

// LoadRecovery loads the newest valid checkpoint in dir (scanning past
// corrupt ones) and decodes each algorithm's graph and state envelope.
// With no usable checkpoint it returns an empty Recovery that replays
// the WAL from the beginning.
func LoadRecovery(dir string) (*Recovery, error) {
	r := &Recovery{
		dir:             dir,
		Algos:           make(map[string]RecoveredAlgo),
		replayedRaw:     make(map[string]uint64),
		replayedRecords: make(map[string]uint64),
	}
	ck, err := wal.LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if ck == nil {
		return r, nil
	}
	r.ReplayFrom = ck.ReplayFrom
	r.CheckpointEpoch = ck.Epoch
	for _, a := range ck.Algos {
		g, err := graph.ReadBinary(bytes.NewReader(a.Graph))
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint graph for %s: %w", a.Name, err)
		}
		var env stateEnvelope
		if err := gob.NewDecoder(bytes.NewReader(a.State)).Decode(&env); err != nil {
			return nil, fmt.Errorf("serve: checkpoint state for %s: %w", a.Name, err)
		}
		r.Algos[a.Name] = RecoveredAlgo{
			Name: a.Name, Graph: g, State: env.State,
			Epoch: env.Epoch, Batches: env.Batches,
		}
	}
	return r, nil
}

// Restore installs the recovered state into a serveable built on the
// recovered graph. No-op (nil) when the checkpoint did not cover algo.
func (r *Recovery) Restore(algo string, m Serveable) error {
	ra, ok := r.Algos[algo]
	if !ok {
		return nil
	}
	return m.RestoreState(bytes.NewReader(ra.State))
}

// Replay streams the WAL tail into the targets: broadcast records ("")
// reach every serveable, targeted records only their algo. Called before
// the hosts start, so it drives Apply directly — single-threaded, which
// honors the one-writer contract. Batches are coalesced with Net exactly
// as the serving path would have.
func (r *Recovery) Replay(targets map[string]Serveable, rec *trace.Recorder) (int, error) {
	var span trace.Span
	if rec != nil {
		span = rec.Begin("recovery_replay", "serve", rec.Track("recovery"))
	}
	n, err := wal.Replay(r.dir, r.ReplayFrom, func(record wal.Record) error {
		route := func(name string, m Serveable) {
			m.Apply(record.Batch.Net(m.Graph().Directed()))
			r.replayedRaw[name] += uint64(len(record.Batch))
			r.replayedRecords[name]++
		}
		if record.Algo == "" {
			for name, m := range targets {
				route(name, m)
			}
			return nil
		}
		if m, ok := targets[record.Algo]; ok {
			route(record.Algo, m)
		}
		return nil
	})
	r.Replayed = n
	if rec != nil {
		span.Arg("records", int64(n))
		span.Arg("from_segment", int64(r.ReplayFrom))
		span.End()
	}
	return n, err
}

// Base returns the stream position a recovered host should resume from:
// the checkpoint's accounting plus what Replay re-applied.
func (r *Recovery) Base(algo string) (epoch, batches uint64) {
	ra := r.Algos[algo]
	return ra.Epoch + r.replayedRaw[algo], ra.Batches + r.replayedRecords[algo]
}

// VerifyRecovered checks each recovered maintainer against a batch
// recompute over its recovered graph — the recompute-equality oracle of
// the crash-recovery acceptance test, run on every startup because it is
// cheap relative to the initial batch run the maintainers already paid.
// The recomputed answer is kept (self-correcting), and the names of
// divergent algos are returned for the divergence gauge. Call after
// Replay, before hosting.
func VerifyRecovered(targets map[string]Serveable, rec *trace.Recorder) []string {
	var divergent []string
	for name, m := range targets {
		var span trace.Span
		if rec != nil {
			span = rec.Begin("recovery_verify", "serve", rec.Track("recovery"))
		}
		before := m.Snapshot()
		m.Recompute()
		after := m.Snapshot()
		ok := reflect.DeepEqual(before, after)
		if !ok {
			divergent = append(divergent, name)
		}
		if rec != nil {
			span.Arg("diverged", boolArg(!ok))
			span.End()
		}
	}
	return divergent
}

// DurableOptions tune the durability layer.
type DurableOptions struct {
	// WAL configures the log (fsync policy, segment size, fault hooks).
	WAL wal.Options
	// CheckpointEvery takes a checkpoint after this many ingested
	// batches; 0 means manual checkpoints only (Checkpoint / shutdown).
	CheckpointEvery int
	// KeepCheckpoints retains this many checkpoints (default 2: a
	// checkpoint corrupted in place still leaves a recovery path).
	KeepCheckpoints int
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// Durable owns a service's WAL and checkpoints and implements Journal:
// installed on a Service, it write-ahead-logs every POST /update batch
// before submission, atomically with respect to checkpoint cuts.
type Durable struct {
	dir string
	log *wal.Log
	svc *Service
	opt DurableOptions

	// mu makes append+submit atomic against the checkpoint cut: Ingest
	// holds the read side across both, Checkpoint the write side while it
	// drains the hosts and rotates the log. Without it a batch could land
	// in a pre-rotation segment but miss the checkpointed state — and be
	// skipped by replay after a restart.
	mu sync.RWMutex

	ingests       atomic.Uint64
	checkpointing atomic.Bool
	// ckptWG tracks in-flight async checkpoints so Close can wait for
	// them instead of closing the log out from under one.
	ckptWG sync.WaitGroup

	// replayFroms tracks the ReplayFrom of recent checkpoints so segment
	// pruning never removes a segment a kept checkpoint still needs.
	replayFroms []uint64

	checkpoints   *obs.Counter
	ckptErrors    *obs.Counter
	ckptSeconds   *obs.Gauge
	durableEpoch  *obs.Gauge
	divergence    *obs.Gauge
	replayedGauge *obs.Gauge
}

// OpenDurable opens (or creates) the WAL in dir, installs the durable
// ingest path on svc, and registers the durability metrics. Recovery
// (LoadRecovery / Replay / VerifyRecovered) must have happened first:
// Open truncates the torn tail of the last segment and appends after it.
func OpenDurable(svc *Service, dir string, opt DurableOptions) (*Durable, error) {
	opt = opt.withDefaults()
	log, err := wal.Open(dir, opt.WAL)
	if err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, log: log, svc: svc, opt: opt}
	if ck, err := wal.LatestCheckpoint(dir); err == nil && ck != nil {
		// Seed the pruning window so segments needed by the pre-restart
		// checkpoint survive until enough new checkpoints supersede it.
		d.replayFroms = append(d.replayFroms, ck.ReplayFrom)
	}
	reg := svc.Registry()
	reg.GaugeFunc("incgraph_wal_appends_total", "Records appended to the write-ahead log.",
		func() float64 { a, _ := log.Stats(); return float64(a) })
	reg.GaugeFunc("incgraph_wal_fsyncs_total", "Fsyncs issued by the write-ahead log (group-committed).",
		func() float64 { _, s := log.Stats(); return float64(s) })
	reg.GaugeFunc("incgraph_wal_active_segment", "Sequence number of the active WAL segment.",
		func() float64 { return float64(log.ActiveSeq()) })
	d.checkpoints = reg.Counter("incgraph_checkpoints_total", "Checkpoints written.")
	d.ckptErrors = reg.Counter("incgraph_checkpoint_errors_total", "Checkpoint attempts that failed.")
	d.ckptSeconds = reg.Gauge("incgraph_checkpoint_seconds", "Wall time of the last checkpoint.")
	d.durableEpoch = reg.Gauge("incgraph_durable_epoch", "Epoch sum covered by the last checkpoint.")
	d.divergence = reg.Gauge("incgraph_recovery_divergence", "Algos whose replayed state diverged from batch recompute at the last recovery.")
	d.replayedGauge = reg.Gauge("incgraph_recovery_replayed_records", "WAL records replayed at the last recovery.")
	svc.SetJournal(d)
	return d, nil
}

// RecordRecovery publishes the outcome of the startup recovery on the
// durability gauges.
func (d *Durable) RecordRecovery(replayed, divergent int) {
	d.replayedGauge.Set(float64(replayed))
	d.divergence.Set(float64(divergent))
}

// Log exposes the underlying WAL (tests and the daemon's drain path).
func (d *Durable) Log() *wal.Log { return d.log }

// Ingest implements Journal: append the batch to the WAL (durable before
// acknowledged, under fsync=always), then submit it to every target. The
// read lock spans both, so a checkpoint cut can never fall between them.
// Waiting for application happens after the lock is released — a
// checkpoint may proceed while callers wait on their acks.
func (d *Durable) Ingest(targets []*Host, algo string, b graph.Batch, tid trace.TraceID, wait bool) error {
	d.mu.RLock()
	// The record carries the request's trace ID and a wall-clock stamp,
	// so a replica replaying this log can join the request's timeline and
	// report seconds-behind-primary.
	if err := d.log.Append(wal.Record{Algo: algo, Batch: b, Trace: tid, Nanos: time.Now().UnixNano()}); err != nil {
		d.mu.RUnlock()
		return err
	}
	acks := make([]<-chan struct{}, 0, len(targets))
	for _, h := range targets {
		ack, err := h.SubmitTracedAck(b, tid)
		if err != nil {
			d.mu.RUnlock()
			return err
		}
		acks = append(acks, ack)
	}
	d.mu.RUnlock()
	if wait {
		for _, ack := range acks {
			<-ack
		}
	}
	if n := d.ingests.Add(1); d.opt.CheckpointEvery > 0 && n%uint64(d.opt.CheckpointEvery) == 0 {
		d.ckptWG.Add(1)
		go func() {
			defer d.ckptWG.Done()
			d.checkpointAsync()
		}()
	}
	return nil
}

func (d *Durable) checkpointAsync() {
	if !d.checkpointing.CompareAndSwap(false, true) {
		return // one checkpoint at a time; the next trigger retries
	}
	defer d.checkpointing.Store(false)
	if err := d.Checkpoint(); err != nil {
		d.ckptErrors.Inc()
	}
}

// Checkpoint takes a consistent cut: block new ingests, serialize every
// host's graph and state from inside its apply loop (the WithState job
// queues behind everything already accepted, so the cut covers exactly
// the records appended so far), rotate the WAL, and atomically write the
// checkpoint whose ReplayFrom is the fresh segment. Old checkpoints and
// fully-covered segments are pruned afterwards.
//
// A degraded host's state is checkpointed as-is: its stale answer may
// trail its graph, which the recovery verification detects and repairs
// by recompute.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now()
	ck := &wal.Checkpoint{}
	for _, h := range d.svc.Hosts() {
		h := h
		var as wal.AlgoState
		err := h.WithState(func(m Serveable) error {
			var gbuf bytes.Buffer
			if err := m.Graph().WriteBinary(&gbuf); err != nil {
				return err
			}
			var sbuf bytes.Buffer
			if err := m.PersistState(&sbuf); err != nil {
				return err
			}
			st := h.Stats()
			var env bytes.Buffer
			if err := gob.NewEncoder(&env).Encode(stateEnvelope{
				Epoch: st.UpdatesApplied, Batches: st.BatchesApplied, State: sbuf.Bytes(),
			}); err != nil {
				return err
			}
			as = wal.AlgoState{Name: h.Algo(), Graph: gbuf.Bytes(), State: env.Bytes()}
			ck.Epoch += st.UpdatesApplied
			return nil
		})
		if err != nil {
			return fmt.Errorf("serve: checkpointing %s: %w", h.Algo(), err)
		}
		ck.Algos = append(ck.Algos, as)
	}
	replayFrom, err := d.log.Rotate()
	if err != nil {
		return err
	}
	ck.ReplayFrom = replayFrom
	if _, err := wal.WriteCheckpoint(d.dir, ck); err != nil {
		return err
	}
	keep := d.opt.KeepCheckpoints
	if err := wal.PruneCheckpoints(d.dir, keep); err != nil {
		return err
	}
	d.replayFroms = append(d.replayFroms, replayFrom)
	if len(d.replayFroms) > keep {
		d.replayFroms = d.replayFroms[len(d.replayFroms)-keep:]
	}
	if len(d.replayFroms) >= keep {
		// Every kept checkpoint replays from d.replayFroms[0] or later;
		// older segments are dead weight.
		if err := d.log.RemoveBefore(d.replayFroms[0]); err != nil {
			return err
		}
	}
	d.checkpoints.Inc()
	d.durableEpoch.Set(float64(ck.Epoch))
	d.ckptSeconds.Set(time.Since(start).Seconds())
	return nil
}

// Close uninstalls the journal and closes the WAL. Call after the HTTP
// server stopped accepting updates and (for a checkpoint-on-drain
// shutdown) after a final Checkpoint, but before Service.Close — the
// final checkpoint needs live apply loops.
func (d *Durable) Close() error {
	d.svc.SetJournal(nil)
	d.ckptWG.Wait()
	return d.log.Close()
}
