package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/serve/faults"
	"incgraph/internal/sssp"
	"incgraph/internal/trace"
	"incgraph/internal/wal"
)

func snapshotEqual(a, b any) bool { return reflect.DeepEqual(a, b) }

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// testWorkers reads the INCGRAPH_TEST_WORKERS knob, letting CI rerun the
// durable end-to-end tests with the maintainers' parallel mode on (the
// crash-recovery equivalence must hold for any worker count). 0 — the
// default — keeps the maintainers sequential.
func testWorkers() int {
	n, _ := strconv.Atoi(os.Getenv("INCGRAPH_TEST_WORKERS"))
	return n
}

// openDurableService builds a service hosting sssp and cc on clones of
// base, with the durable ingest path in dir.
func openDurableService(t *testing.T, base *graph.Graph, dir string, dopt DurableOptions) (*Service, *Durable) {
	t.Helper()
	svc := NewService()
	d, err := OpenDurable(svc, dir, dopt)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{MaxBatch: 16, MaxWait: time.Millisecond, Workers: testWorkers()}
	if _, err := svc.Host(SSSP(sssp.NewInc(base.Clone(), 0), 0), opt); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Host(CC(cc.NewInc(base.Clone())), opt); err != nil {
		t.Fatal(err)
	}
	return svc, d
}

// recoverAlgos reruns the startup recovery against fresh serveables and
// returns them keyed by algo, plus the replayed-record count.
func recoverAlgos(t *testing.T, base *graph.Graph, dir string) (map[string]Serveable, *Recovery, int) {
	t.Helper()
	rec, err := LoadRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	graphFor := func(algo string) *graph.Graph {
		if ra, ok := rec.Algos[algo]; ok {
			return ra.Graph
		}
		return base.Clone()
	}
	targets := map[string]Serveable{
		"sssp": SSSP(sssp.NewInc(graphFor("sssp"), 0), 0),
		"cc":   CC(cc.NewInc(graphFor("cc"))),
	}
	for name, m := range targets {
		if err := rec.Restore(name, m); err != nil {
			t.Fatalf("restore %s: %v", name, err)
		}
	}
	n, err := rec.Replay(targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return targets, rec, n
}

// TestCrashRecoveryEquivalence is the in-process half of the acceptance
// criterion: ingest a stream with a checkpoint mid-way, crash without
// drain (the WAL is simply abandoned), recover into fresh maintainers,
// and require the recovered answers to be deep-equal to a from-scratch
// batch run over the full durable stream.
func TestCrashRecoveryEquivalence(t *testing.T) {
	leakCheck(t)
	const nodes, chunks, chunkLen = 120, 40, 8
	dir := t.TempDir()
	base := gen.Synthetic(7, nodes, 5, true)
	stream := makeStream(23, nodes, chunks*chunkLen)

	svc, d := openDurableService(t, base, dir, DurableOptions{})
	hosts := svc.Hosts()
	for i := 0; i < chunks; i++ {
		chunk := stream[i*chunkLen : (i+1)*chunkLen]
		if err := d.Ingest(hosts, "", chunk, trace.TraceID{}, true); err != nil {
			t.Fatal(err)
		}
		if i == chunks/2 {
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: no final checkpoint, no drain — just stop. Everything was
	// acknowledged under fsync=always, so the WAL holds the full stream.
	svc.Close()
	d.Close()

	targets, _, replayed := recoverAlgos(t, base, dir)
	if replayed == 0 {
		t.Fatal("expected a WAL tail to replay after the checkpoint")
	}
	if div := VerifyRecovered(targets, nil); len(div) != 0 {
		t.Fatalf("recovered state diverged from batch recompute: %v", div)
	}

	// From-scratch oracle: apply the whole stream the way the ingest path
	// did (chunk-wise, coalesced) and batch-compute the answers.
	for algo, m := range targets {
		og := base.Clone()
		for i := 0; i < chunks; i++ {
			og.Apply(stream[i*chunkLen : (i+1)*chunkLen].Net(og.Directed()))
		}
		var oracle Serveable
		switch algo {
		case "sssp":
			oracle = SSSP(sssp.NewInc(og, 0), 0)
		case "cc":
			oracle = CC(cc.NewInc(og))
		}
		if !snapshotEqual(m.Snapshot(), oracle.Snapshot()) {
			t.Fatalf("%s: recovered answer differs from from-scratch recompute", algo)
		}
	}
}

// TestRecoveryTornTail tears bytes off the final WAL segment — the
// signature of a crash mid-append — and requires recovery to serve the
// durable prefix: every whole record, byte-equal to a from-scratch run
// over exactly those records.
func TestRecoveryTornTail(t *testing.T) {
	const nodes, updates = 80, 30
	dir := t.TempDir()
	base := gen.Synthetic(9, nodes, 4, true)
	stream := makeStream(31, nodes, updates)

	svc, d := openDurableService(t, base, dir, DurableOptions{})
	hosts := svc.Hosts()
	for _, u := range stream {
		if err := d.Ingest(hosts, "", graph.Batch{u}, trace.TraceID{}, true); err != nil {
			t.Fatal(err)
		}
	}
	seg := d.Log().ActiveSeq()
	svc.Close()
	d.Close()

	// Tear the last frame: 3 bytes off the tail leaves updates-1 whole
	// records.
	if err := faults.TruncateTail(filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seg)), 3); err != nil {
		t.Fatal(err)
	}

	targets, _, replayed := recoverAlgos(t, base, dir)
	if replayed != updates-1 {
		t.Fatalf("replayed %d records, want %d (torn tail dropped)", replayed, updates-1)
	}
	og := base.Clone()
	for _, u := range stream[:updates-1] {
		og.Apply(graph.Batch{u}.Net(og.Directed()))
	}
	oracle := SSSP(sssp.NewInc(og, 0), 0)
	if !snapshotEqual(targets["sssp"].Snapshot(), oracle.Snapshot()) {
		t.Fatal("recovered sssp differs from recompute over the durable prefix")
	}
}

// TestDroppedFsyncStillRecoversPrefix arms the lying-disk fault: fsyncs
// are skipped, yet — because the OS still has the writes — a clean
// process exit keeps them. The property under test is weaker but
// crucial: recovery must come up cleanly and agree with recompute over
// whatever prefix did survive, no matter where the WAL ends.
func TestDroppedFsyncStillRecoversPrefix(t *testing.T) {
	const nodes, updates = 60, 20
	dir := t.TempDir()
	base := gen.Synthetic(3, nodes, 4, true)
	stream := makeStream(41, nodes, updates)

	inj := faults.New()
	inj.DropFsyncs(5)
	svc, d := openDurableService(t, base, dir, DurableOptions{WAL: wal.Options{SyncHook: inj.SyncHook}})
	hosts := svc.Hosts()
	for _, u := range stream {
		if err := d.Ingest(hosts, "", graph.Batch{u}, trace.TraceID{}, true); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
	d.Close()

	targets, _, replayed := recoverAlgos(t, base, dir)
	og := base.Clone()
	for _, u := range stream[:replayed] {
		og.Apply(graph.Batch{u}.Net(og.Directed()))
	}
	oracle := CC(cc.NewInc(og))
	if !snapshotEqual(targets["cc"].Snapshot(), oracle.Snapshot()) {
		t.Fatalf("recovered cc differs from recompute over the %d-record durable prefix", replayed)
	}
}

// TestPanicIsolationHeals drives the poisoned-apply fault: the second cc
// apply panics. The host must not crash, must keep sssp unaffected, and
// must heal cc by batch recompute so the final answers match an oracle
// that never saw the poisoned batch applied incrementally.
func TestPanicIsolationHeals(t *testing.T) {
	leakCheck(t)
	const nodes = 60
	base := gen.Synthetic(5, nodes, 4, false)
	inj := faults.New()
	inj.PanicOn("cc", 2)

	h := NewHost(CC(cc.NewInc(base.Clone())), Options{
		MaxBatch: 4, MaxWait: time.Millisecond, BeforeApply: inj.BeforeApply,
	})
	defer h.Close()

	b1 := graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 7, W: 1}}
	b2 := graph.Batch{{Kind: graph.InsertEdge, From: 1, To: 8, W: 1}}
	b3 := graph.Batch{{Kind: graph.InsertEdge, From: 2, To: 9, W: 1}}
	if err := h.SubmitWait(b1); err != nil {
		t.Fatal(err)
	}
	if err := h.SubmitWait(b2); err != nil { // poisoned: panics before Apply
		t.Fatal(err)
	}
	if err := h.SubmitWait(b3); err != nil {
		t.Fatal(err)
	}

	st := h.Stats()
	if st.Panics != 1 || st.Heals != 1 || st.Degraded {
		t.Fatalf("stats after poisoned apply: panics=%d heals=%d degraded=%v", st.Panics, st.Heals, st.Degraded)
	}
	// The poisoned batch panicked before reaching the maintainer, so the
	// healed answer is the oracle over b1+b3 only.
	og := base.Clone()
	og.Apply(b1.Net(og.Directed()))
	og.Apply(b3.Net(og.Directed()))
	oracle := CC(cc.NewInc(og))
	v := h.View()
	if v.Degraded {
		t.Fatal("view still degraded after heal")
	}
	if !snapshotEqual(v.Data, oracle.Snapshot()) {
		t.Fatal("healed view differs from oracle")
	}
}

// brokenServeable panics in Apply and in Recompute — the double failure
// that must quarantine the host: stale degraded reads forever, never a
// crash, never an error to readers.
type brokenServeable struct {
	g    *graph.Graph
	good bool // first Apply succeeds, the rest panic
}

func (b *brokenServeable) Algo() string        { return "broken" }
func (b *brokenServeable) Graph() *graph.Graph { return b.g }
func (b *brokenServeable) Apply(batch graph.Batch) ApplyResult {
	if b.good {
		b.good = false
		return ApplyResult{}
	}
	panic("broken apply")
}
func (b *brokenServeable) Snapshot() any                  { return map[string]int{"ok": 1} }
func (b *brokenServeable) PersistState(w io.Writer) error { return nil }
func (b *brokenServeable) RestoreState(r io.Reader) error { return nil }
func (b *brokenServeable) Recompute()                     { panic("broken recompute") }

func TestQuarantineServesStale(t *testing.T) {
	g := gen.Synthetic(1, 10, 2, true)
	h := NewHost(&brokenServeable{g: g, good: true}, Options{MaxBatch: 1, MaxWait: time.Millisecond})
	defer h.Close()

	b := graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 5, W: 1}}
	if err := h.SubmitWait(b); err != nil { // consumes the one good apply
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // panic → heal panics → quarantined; then drained
		if err := h.SubmitWait(b); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if !st.Degraded || st.Heals != 0 || st.Panics == 0 {
		t.Fatalf("expected permanent degradation: %+v", st)
	}
	v := h.View()
	if !v.Degraded || v.Data == nil {
		t.Fatalf("quarantined host must serve the stale view: %+v", v)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue accounting wedged: %+v", st)
	}
	if st.Epoch >= st.UpdatesApplied {
		t.Fatalf("degraded epoch must trail the consumed stream: %+v", st)
	}
}

// slowServeable blocks Apply until released, to saturate a host's queue
// deterministically. entered closes on the first Apply call, marking the
// moment the apply loop is parked and can no longer drain the queue.
type slowServeable struct {
	g       *graph.Graph
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (s *slowServeable) Algo() string        { return "slow" }
func (s *slowServeable) Graph() *graph.Graph { return s.g }
func (s *slowServeable) Apply(b graph.Batch) ApplyResult {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return ApplyResult{}
}
func (s *slowServeable) Snapshot() any                  { return struct{}{} }
func (s *slowServeable) PersistState(w io.Writer) error { return nil }
func (s *slowServeable) RestoreState(r io.Reader) error { return nil }
func (s *slowServeable) Recompute()                     {}

// TestShed503 saturates a tiny submission queue and requires POST
// /update to shed with 503 + Retry-After instead of blocking — and to
// recover once the queue drains.
func TestShed503(t *testing.T) {
	g := gen.Synthetic(2, 10, 2, true)
	slow := &slowServeable{g: g, release: make(chan struct{}), entered: make(chan struct{})}
	svc := NewService()
	h, err := svc.Host(slow, Options{MaxBatch: 1, MaxWait: time.Millisecond, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close()
	released := false
	// The deferred drain must run before svc.Close, or Close would wait
	// forever on the blocked Apply.
	defer func() {
		if !released {
			close(slow.release)
		}
	}()

	// Park the apply loop inside a blocked Apply, then fill the
	// submission channel: with the loop parked, nothing can drain it, so
	// saturation is stable until release.
	if err := h.Submit(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-slow.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("apply loop never reached the maintainer")
	}
	for !h.Saturated() {
		if err := h.Submit(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 2, W: 1}}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Post(srv.URL+"/update", "text/plain", strings.NewReader("+ 3 4 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}
	// Drain and verify the path recovers: a closed release channel makes
	// every pending and future Apply return immediately.
	released = true
	close(slow.release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp2, err := http.Post(srv.URL+"/update", "text/plain", strings.NewReader("+ 3 4 1\n"))
		if err != nil {
			t.Fatal(err)
		}
		code := resp2.StatusCode
		resp2.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("update path did not recover after drain: last status %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDebugAppliesCap exercises the ?n= cap on GET /debug/applies.
func TestDebugAppliesCap(t *testing.T) {
	base := gen.Synthetic(4, 30, 3, true)
	svc := NewService()
	if _, err := svc.Host(SSSP(sssp.NewInc(base.Clone(), 0), 0), Options{MaxBatch: 1, MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close()

	h := svc.Get("sssp")
	for i := 0; i < 5; i++ {
		if err := h.SubmitWait(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: graph.NodeID(10 + i), W: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		q    string
		want int
		code int
	}{
		{"?n=2", 2, http.StatusOK},
		{"", 5, http.StatusOK},
		{"?n=0", 0, http.StatusOK},
		{"?n=bogus", 0, http.StatusBadRequest},
		{"?n=-1", 0, http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + "/debug/applies" + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.code {
			resp.Body.Close()
			t.Fatalf("%q: status %d, want %d", tc.q, resp.StatusCode, tc.code)
		}
		if tc.code == http.StatusOK {
			var m map[string][]ApplyTrace
			if err := jsonDecode(resp.Body, &m); err != nil {
				t.Fatal(err)
			}
			if got := len(m["sssp"]); got != tc.want {
				t.Fatalf("%q: %d entries, want %d", tc.q, got, tc.want)
			}
		}
		resp.Body.Close()
	}

	// /debug/trace honors ?n= too: the bounded dump must stay valid JSON.
	resp, err := http.Get(srv.URL + "/debug/trace?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr map[string]any
	if err := jsonDecode(resp.Body, &tr); err != nil {
		t.Fatalf("trace dump with ?n=: %v", err)
	}
}

// TestCheckpointEvery verifies automatic checkpointing by ingest count.
func TestCheckpointEvery(t *testing.T) {
	const nodes = 40
	dir := t.TempDir()
	base := gen.Synthetic(6, nodes, 3, true)
	svc, d := openDurableService(t, base, dir, DurableOptions{CheckpointEvery: 4})
	hosts := svc.Hosts()
	for i := 0; i < 9; i++ {
		u := graph.Update{Kind: graph.InsertEdge, From: graph.NodeID(i % nodes), To: graph.NodeID((i + 3) % nodes), W: 1}
		if err := d.Ingest(hosts, "", graph.Batch{u}, trace.TraceID{}, true); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ck, err := wal.LatestCheckpoint(dir); err == nil && ck != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared after CheckpointEvery ingests")
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.Close()
	d.Close()
}
