// Godoc examples for the serving layer. Each runs under go test.
package serve_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"

	"incgraph/internal/graph"
	"incgraph/internal/serve"
	"incgraph/internal/sssp"
)

func ExampleNewHost() {
	g := graph.New(3, true)
	g.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 4}})

	// The host owns the maintainer: its apply loop is the only caller of
	// Apply, and readers get immutable epoch-stamped snapshot views.
	h := serve.NewHost(serve.SSSP(sssp.NewInc(g, 0), 0), serve.Options{})
	defer h.Close()

	if err := h.SubmitWait(graph.Batch{{Kind: graph.InsertEdge, From: 1, To: 2, W: 4}}); err != nil {
		fmt.Println("submit:", err)
		return
	}
	v := h.View()
	fmt.Println("epoch:", v.Epoch)
	fmt.Println("dist:", v.Data.(serve.SSSPView).Dist)
	// Output:
	// epoch: 1
	// dist: [0 4 8]
}

func ExampleNewService() {
	g := graph.New(3, true)
	g.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 2}})

	svc := serve.NewService()
	defer svc.Close()
	if _, err := svc.Host(serve.SSSP(sssp.NewInc(g, 0), 0), serve.Options{}); err != nil {
		fmt.Println("host:", err)
		return
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Ingest one batch (wait=1 blocks until its view is published)…
	resp, err := srv.Client().Post(srv.URL+"/update?wait=1", "text/plain",
		strings.NewReader("+ 1 2 2\n"))
	if err != nil {
		fmt.Println("update:", err)
		return
	}
	resp.Body.Close()

	// …then the published snapshot reflects it.
	resp, err = srv.Client().Get(srv.URL + "/query/sssp")
	if err != nil {
		fmt.Println("query:", err)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(string(body))
	// Output:
	// {
	//   "algo": "sssp",
	//   "epoch": 1,
	//   "batches": 1,
	//   "data": {
	//     "src": 0,
	//     "dist": [
	//       0,
	//       2,
	//       4
	//     ]
	//   }
	// }
}
