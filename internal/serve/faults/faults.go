// Package faults is the deterministic fault-injection harness behind the
// durability tests: it plugs into the plain function hooks the production
// code exposes (wal.Options.SyncHook, serve.Options.BeforeApply) — no
// build tags, no global state — so crash-recovery and panic-isolation
// scenarios replay byte-for-byte identically run after run.
//
// Three fault families cover the failure modes the recovery design
// claims to survive:
//
//   - lying disks: DropFsyncs makes every fsync after the Nth a silent
//     no-op, so acknowledged updates evaporate on kill -9 exactly as
//     they would on a volatile write cache;
//   - torn writes: TruncateTail and CorruptAt damage segment files on
//     disk the way a crash mid-write (or bit rot) does;
//   - poisoned applies: PanicOn makes the Nth apply on a chosen algo
//     panic, driving the host's isolation/heal/quarantine path.
package faults

import (
	"fmt"
	"os"
	"sync"

	"incgraph/internal/graph"
)

// Injector is a deterministic fault plan. The zero value injects
// nothing; arm faults with DropFsyncs and PanicOn. All methods are
// safe for concurrent use — hooks are called from apply loops and
// fsync paths on different goroutines.
type Injector struct {
	mu sync.Mutex

	dropAfter int64 // fsyncs after this ordinal are dropped; <0 disabled
	fsyncs    int64

	panicAlgo string
	panicAt   int64 // apply ordinal (1-based) on panicAlgo that panics; 0 disabled
	applies   map[string]int64
}

// New returns an injector with no faults armed.
func New() *Injector {
	return &Injector{dropAfter: -1, applies: make(map[string]int64)}
}

// DropFsyncs arms the lying-disk fault: the first n fsyncs succeed, every
// later one is silently skipped. n = 0 drops all fsyncs.
func (i *Injector) DropFsyncs(afterN int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.dropAfter = afterN
}

// SyncHook is the wal.Options.SyncHook implementation: it returns true
// (skip the fsync) once the armed budget is exhausted.
func (i *Injector) SyncHook() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.dropAfter < 0 {
		return false
	}
	i.fsyncs++
	return i.fsyncs > i.dropAfter
}

// PanicOn arms the poisoned-apply fault: the nth (1-based) apply on algo
// panics. A second call re-arms (the counter keeps running).
func (i *Injector) PanicOn(algo string, nth int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.panicAlgo, i.panicAt = algo, nth
}

// BeforeApply is the serve.Options.BeforeApply implementation. It
// panics deterministically on the armed apply ordinal.
func (i *Injector) BeforeApply(algo string, b graph.Batch) {
	i.mu.Lock()
	i.applies[algo]++
	boom := algo == i.panicAlgo && i.panicAt > 0 && i.applies[algo] == i.panicAt
	n := i.applies[algo]
	i.mu.Unlock()
	if boom {
		panic(fmt.Sprintf("faults: injected panic on %s apply #%d (batch of %d)", algo, n, len(b)))
	}
}

// Applies reports how many applies the injector has observed for algo.
func (i *Injector) Applies(algo string) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.applies[algo]
}

// TruncateTail chops n bytes off the end of a file — a torn write, the
// signature a crash mid-append leaves in a WAL segment.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n > fi.Size() {
		n = fi.Size()
	}
	return os.Truncate(path, fi.Size()-n)
}

// CorruptAt flips every bit of the byte at offset off — in-place
// corruption that a CRC must catch.
func CorruptAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xff
	_, err = f.WriteAt(b[:], off)
	return err
}
