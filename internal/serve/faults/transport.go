package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjectedReset is the error surfaced by Transport for an injected
// connection reset (and for every request to a blackholed host). It
// stands in for the ECONNRESET a real peer would produce, without
// touching the network.
var ErrInjectedReset = errors.New("faults: injected connection reset")

// ErrInjectedTruncation is the error an injected-truncation response
// body returns after yielding its prefix, standing in for a peer that
// died mid-response.
var ErrInjectedTruncation = errors.New("faults: injected body truncation")

// TransportOptions configures a Transport. All probabilities are in
// [0, 1] and are evaluated independently per request in a fixed order
// (shed, reset, delay, truncate), so a given seed yields the same fault
// schedule run after run.
type TransportOptions struct {
	// Seed drives the fault schedule. The same seed and request sequence
	// produce the same faults.
	Seed int64
	// Next is the underlying RoundTripper for requests that survive
	// injection. Default http.DefaultTransport.
	Next http.RoundTripper
	// DelayProb is the chance of delaying a request by a uniform draw
	// from (0, MaxDelay] before sending it.
	DelayProb float64
	// MaxDelay bounds injected delays. Default 50ms when DelayProb > 0.
	MaxDelay time.Duration
	// ResetProb is the chance of failing a request with
	// ErrInjectedReset before it reaches the network.
	ResetProb float64
	// TruncateProb is the chance of truncating a successful response
	// body halfway, ending it with ErrInjectedTruncation.
	TruncateProb float64
	// ShedProb is the chance of synthesizing a 503 response (with a
	// Retry-After header) without touching the network, imitating an
	// overloaded peer shedding load.
	ShedProb float64
	// RetryAfter is the Retry-After value stamped on injected 503s.
	// Default "1".
	RetryAfter string
	// Match, when non-nil, limits injection to requests it accepts;
	// everything else passes straight through to Next.
	Match func(*http.Request) bool
}

// TransportStats counts injected faults, for asserting that a chaos run
// actually exercised each family.
type TransportStats struct {
	Requests    int64 `json:"requests"`
	Delays      int64 `json:"delays"`
	Resets      int64 `json:"resets"`
	Truncations int64 `json:"truncations"`
	Sheds       int64 `json:"sheds"`
}

// Total returns the number of injected faults across all families.
func (s TransportStats) Total() int64 {
	return s.Delays + s.Resets + s.Truncations + s.Sheds
}

// Transport is a seeded, deterministic http.RoundTripper that injects
// network faults — delays, connection resets, truncated response
// bodies, spurious 503 sheds, and per-host blackholes — in front of a
// real transport. It is the network-layer sibling of Injector: plain
// dependency injection, safe for concurrent use, no build tags.
type Transport struct {
	mu         sync.Mutex
	opt        TransportOptions
	rng        *rand.Rand
	enabled    bool
	blackholes map[string]bool
	stats      TransportStats
}

// NewTransport returns an enabled Transport drawing its fault schedule
// from opt.Seed.
func NewTransport(opt TransportOptions) *Transport {
	if opt.Next == nil {
		opt.Next = http.DefaultTransport
	}
	if opt.MaxDelay <= 0 {
		opt.MaxDelay = 50 * time.Millisecond
	}
	if opt.RetryAfter == "" {
		opt.RetryAfter = "1"
	}
	return &Transport{
		opt:        opt,
		rng:        rand.New(rand.NewSource(opt.Seed)),
		enabled:    true,
		blackholes: make(map[string]bool),
	}
}

// SetEnabled turns fault injection on or off. Disabled, the Transport
// is a transparent passthrough (blackholes included), which is how a
// chaos run ends: faults off, cluster drains, answers checked.
func (t *Transport) SetEnabled(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = on
}

// Blackhole makes every request to hostport (the URL's Host, e.g.
// "127.0.0.1:7101") fail with ErrInjectedReset while on, simulating a
// partition between this client and that one peer. Other hosts are
// unaffected.
func (t *Transport) Blackhole(hostport string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if on {
		t.blackholes[hostport] = true
	} else {
		delete(t.blackholes, hostport)
	}
}

// Stats returns the injection counts so far.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// plan is the set of faults drawn for one request.
type plan struct {
	blackholed bool
	shed       bool
	reset      bool
	delay      time.Duration
	truncate   bool
}

// draw rolls the dice for one request under the mutex so concurrent
// requests consume the seeded stream atomically.
func (t *Transport) draw(req *http.Request) (plan, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		return plan{}, false
	}
	if t.opt.Match != nil && !t.opt.Match(req) {
		return plan{}, false
	}
	t.stats.Requests++
	var p plan
	if t.blackholes[req.URL.Host] {
		p.blackholed = true
		t.stats.Resets++
		return p, true
	}
	if t.opt.ShedProb > 0 && t.rng.Float64() < t.opt.ShedProb {
		p.shed = true
		t.stats.Sheds++
		return p, true
	}
	if t.opt.ResetProb > 0 && t.rng.Float64() < t.opt.ResetProb {
		p.reset = true
		t.stats.Resets++
		return p, true
	}
	if t.opt.DelayProb > 0 && t.rng.Float64() < t.opt.DelayProb {
		p.delay = time.Duration(t.rng.Int63n(int64(t.opt.MaxDelay))) + 1
		t.stats.Delays++
	}
	if t.opt.TruncateProb > 0 && t.rng.Float64() < t.opt.TruncateProb {
		p.truncate = true
		// Counted only if the response is actually truncatable below.
	}
	return p, true
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p, inject := t.draw(req)
	if !inject {
		return t.opt.Next.RoundTrip(req)
	}
	if p.blackholed || p.reset {
		// Drain and close the body like a real transport would on a
		// write error, so callers can reuse buffers.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("faults: %s %s: %w", req.Method, req.URL, ErrInjectedReset)
	}
	if p.shed {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		hdr := make(http.Header)
		hdr.Set("Retry-After", t.opt.RetryAfter)
		hdr.Set("Content-Type", "application/json")
		body := `{"error":"injected shed"}`
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        hdr,
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if p.delay > 0 {
		timer := time.NewTimer(p.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	resp, err := t.opt.Next.RoundTrip(req)
	if err != nil || !p.truncate {
		return resp, err
	}
	full, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || len(full) < 2 {
		// Nothing meaningful to truncate; deliver what we got.
		resp.Body = io.NopCloser(bytes.NewReader(full))
		return resp, nil
	}
	t.mu.Lock()
	t.stats.Truncations++
	t.mu.Unlock()
	resp.Body = &truncatedBody{r: bytes.NewReader(full[:len(full)/2])}
	return resp, nil
}

// truncatedBody yields a prefix of a response body and then fails with
// ErrInjectedTruncation, like a connection dropped mid-transfer.
type truncatedBody struct {
	r *bytes.Reader
}

// Read implements io.Reader.
func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		return n, ErrInjectedTruncation
	}
	return n, err
}

// Close implements io.Closer.
func (b *truncatedBody) Close() error { return nil }
