package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func transportGet(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	return client.Get(url)
}

func TestTransportPassthroughWhenDisabled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()

	tr := NewTransport(TransportOptions{Seed: 1, ResetProb: 1})
	tr.SetEnabled(false)
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("disabled transport errored: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := tr.Stats().Total(); got != 0 {
		t.Fatalf("injected %d faults while disabled, want 0", got)
	}
}

func TestTransportInjectedReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	tr := NewTransport(TransportOptions{Seed: 1, ResetProb: 1})
	_, err := transportGet(t, tr, srv.URL)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if got := tr.Stats().Resets; got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
}

func TestTransportInjectedShed(t *testing.T) {
	called := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
	}))
	defer srv.Close()

	tr := NewTransport(TransportOptions{Seed: 1, ShedProb: 1, RetryAfter: "3"})
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("shed should be a response, not an error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
	if called {
		t.Fatal("injected shed still reached the server")
	}
	if got := tr.Stats().Sheds; got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
}

func TestTransportTruncatedBody(t *testing.T) {
	payload := `{"algo":"sssp","data":"` + strings.Repeat("x", 4096) + `"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	tr := NewTransport(TransportOptions{Seed: 1, TruncateProb: 1})
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("truncation should fail on body read, not on round-trip: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("body read err = %v, want ErrInjectedTruncation", err)
	}
	if len(body) == 0 || len(body) >= len(payload) {
		t.Fatalf("got %d body bytes, want a proper prefix of %d", len(body), len(payload))
	}
	var v struct{}
	if jerr := json.Unmarshal(body, &v); jerr == nil {
		t.Fatal("truncated body still parsed as complete JSON")
	}
	if got := tr.Stats().Truncations; got != 1 {
		t.Fatalf("truncations = %d, want 1", got)
	}
}

func TestTransportDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	tr := NewTransport(TransportOptions{Seed: 1, DelayProb: 1, MaxDelay: 30 * time.Millisecond})
	start := time.Now()
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("delayed request errored: %v", err)
	}
	resp.Body.Close()
	if tr.Stats().Delays != 1 {
		t.Fatalf("delays = %d, want 1", tr.Stats().Delays)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatalf("delay wildly exceeded MaxDelay: %v", time.Since(start))
	}
}

func TestTransportBlackhole(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := NewTransport(TransportOptions{Seed: 1})
	tr.Blackhole(host, true)
	if _, err := transportGet(t, tr, srv.URL); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("blackholed request err = %v, want ErrInjectedReset", err)
	}
	tr.Blackhole(host, false)
	resp, err := transportGet(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("un-blackholed request errored: %v", err)
	}
	resp.Body.Close()
}

func TestTransportMatchScopesInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	tr := NewTransport(TransportOptions{
		Seed:      1,
		ResetProb: 1,
		Match:     func(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/update") },
	})
	resp, err := transportGet(t, tr, srv.URL+"/query/sssp")
	if err != nil {
		t.Fatalf("unmatched request was injected: %v", err)
	}
	resp.Body.Close()
	if _, err := transportGet(t, tr, srv.URL+"/update"); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("matched request err = %v, want ErrInjectedReset", err)
	}
}

// TestTransportDeterministicSchedule replays the same request sequence
// through two transports with the same seed and expects identical fault
// decisions — the property the chaos-differential campaign leans on.
func TestTransportDeterministicSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("y", 256))
	}))
	defer srv.Close()

	run := func(seed int64) []string {
		tr := NewTransport(TransportOptions{
			Seed: seed, ShedProb: 0.2, ResetProb: 0.2, DelayProb: 0.2,
			TruncateProb: 0.2, MaxDelay: time.Millisecond,
		})
		var outcomes []string
		for i := 0; i < 40; i++ {
			resp, err := transportGet(t, tr, srv.URL)
			switch {
			case errors.Is(err, ErrInjectedReset):
				outcomes = append(outcomes, "reset")
			case err != nil:
				outcomes = append(outcomes, "err")
			case resp.StatusCode == http.StatusServiceUnavailable:
				resp.Body.Close()
				outcomes = append(outcomes, "shed")
			default:
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if errors.Is(rerr, ErrInjectedTruncation) {
					outcomes = append(outcomes, "trunc")
				} else {
					outcomes = append(outcomes, "ok")
				}
			}
		}
		return outcomes
	}

	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %q vs %q\n%v\n%v", i, a[i], b[i], a, b)
		}
	}
	c := run(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 40-request schedules; injection likely ignores the seed")
	}
}
