package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/obs"
	"incgraph/internal/resilience"
	"incgraph/internal/trace"
)

// Service is a set of named hosts behind one HTTP API:
//
//	POST /update[?algo=<name>][&wait=1]  body: batch text ("+ u v w" / "- u v [w]")
//	GET  /query/{algo}                   current snapshot view, JSON
//	GET  /stats                          per-host serving counters, JSON
//	GET  /metrics                        Prometheus text exposition
//	GET  /metrics.json                   registry snapshot with raw histogram buckets
//	GET  /debug/applies[?algo=<name>]    recent apply trace events, JSON
//	GET  /debug/trace                    flight recording, Chrome trace_event JSON
//	GET  /debug/boundedness              per-host work-ledger audit reports, JSON
//	GET  /debug/offenders[?algo=<name>]  worst-boundedness applies (top-K), JSON
//	GET  /healthz                        liveness
//
// An update with no algo parameter is broadcast to every host: each
// maintainer owns a private copy of the graph, so the same ΔG must reach
// all of them to keep their answers describing the same logical graph.
//
// POST /update participates in W3C trace context: an incoming
// traceparent header's trace ID is propagated through the submission
// queue onto the apply that incorporates the batch (spans, apply trace,
// logs), and the response carries a traceparent so callers can correlate.
// Requests without the header get a fresh trace ID.
type Service struct {
	mu    sync.RWMutex
	hosts map[string]*Host
	reg   *obs.Registry
	rec   *trace.Recorder
	start time.Time
	shed  *obs.Counter

	// mounts are extra handler routes included by Handler — the hook
	// shard-mode daemons use to graft the shard-local evaluation and
	// WAL-streaming endpoints onto the service API without the serving
	// core knowing about sharding. Registered before Handler is built.
	mounts map[string]http.Handler

	// journal, when installed (SetJournal), owns the durable ingest path:
	// POST /update hands it the validated batch and targets, and it
	// write-ahead-logs the batch before submitting — atomically with
	// respect to checkpoint cuts.
	journal Journal
}

// Journal is the durability hook of POST /update. An implementation
// (serve.Durable) must make the batch durable and then submit it to every
// target, such that no checkpoint cut can separate the two: a batch that
// reached any maintainer is either in a checkpoint's state or in the WAL
// tail a recovery replays.
type Journal interface {
	Ingest(targets []*Host, algo string, b graph.Batch, tid trace.TraceID, wait bool) error
}

// SetJournal installs the durable ingest path. Call before serving
// traffic; j == nil reverts to direct (non-durable) submission.
func (s *Service) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

func (s *Service) getJournal() Journal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.journal
}

// traceCapacity is the service flight recorder's bounded size. At the
// ~10 events one applied batch produces, 8192 events retain the most
// recent several hundred applies across all hosts — enough to capture
// "what just happened" after an incident, small enough to be always on.
const traceCapacity = 8192

// NewService returns an empty service with a fresh metric registry; every
// host registered on it lands its metrics there, so one /metrics scrape
// covers all algos.
func NewService() *Service {
	s := &Service{
		hosts: make(map[string]*Host),
		reg:   obs.NewRegistry(),
		rec:   trace.NewRecorder(traceCapacity),
		start: time.Now(),
	}
	s.reg.GaugeFunc("incgraph_uptime_seconds",
		"Seconds since the service was created.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.shed = s.reg.Counter("incgraph_shed_total",
		"Updates rejected with 503 because a submission queue was saturated.")
	return s
}

// Registry returns the service's metric registry, for mounting extra
// process-level metrics next to the per-host ones.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Mount registers an extra route on the service API under the given
// ServeMux pattern (e.g. "POST /shard/eval/{algo}", "/wal/"). Call
// before Handler; later Mount calls do not affect handlers already
// built.
func (s *Service) Mount(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mounts == nil {
		s.mounts = make(map[string]http.Handler)
	}
	s.mounts[pattern] = h
}

// Recorder returns the service's flight recorder — the bounded ring
// behind GET /debug/trace that every host's spans land in.
func (s *Service) Recorder() *trace.Recorder { return s.rec }

// Host wraps m in a new Host and registers it under its Algo name. The
// host's metrics land in the service registry unless opt.Registry
// overrides it, and its spans in the service flight recorder unless
// opt.Recorder overrides it.
func (s *Service) Host(m Serveable, opt Options) (*Host, error) {
	if opt.Registry == nil {
		opt.Registry = s.reg
	}
	if opt.Recorder == nil {
		opt.Recorder = s.rec
	}
	h := NewHost(m, opt)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.hosts[h.Algo()]; dup {
		h.Close()
		return nil, fmt.Errorf("serve: duplicate algo %q", h.Algo())
	}
	s.hosts[h.Algo()] = h
	return h, nil
}

// Get returns the host named algo, or nil.
func (s *Service) Get(algo string) *Host {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hosts[algo]
}

// Hosts returns all hosts in algo-name order.
func (s *Service) Hosts() []*Host {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.hosts))
	for n := range s.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Host, len(names))
	for i, n := range names {
		out[i] = s.hosts[n]
	}
	return out
}

// Close drains and stops every host. The HTTP server should be shut down
// first so no new submissions race the drain.
func (s *Service) Close() {
	for _, h := range s.Hosts() {
		h.Close()
	}
}

// UpdateResult is the JSON response of POST /update.
type UpdateResult struct {
	// Accepted is the number of unit updates parsed from the body.
	Accepted int `json:"accepted"`
	// Targets lists the algos the batch was submitted to.
	Targets []string `json:"targets"`
	// Applied reports whether the request waited for application
	// (wait=1) rather than returning on enqueue.
	Applied bool `json:"applied"`
	// TraceID is the request's W3C trace ID — from the caller's
	// traceparent header, or freshly minted — the key for finding this
	// update in the flight recording and access logs.
	TraceID string `json:"trace_id"`
	// Epochs maps each target algo to its published view epoch after
	// this request: with wait=1 the epochs include this batch (the
	// per-process half of the router's cross-shard epoch vector);
	// without it they are merely the current positions at response time.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
}

// requestTraceID resolves the trace ID of an HTTP request: the one the
// access-log middleware already stored in the context, else a valid
// incoming traceparent header, else a fresh ID.
func requestTraceID(r *http.Request) trace.TraceID {
	if tid, ok := trace.IDFromContext(r.Context()); ok {
		return tid
	}
	if tid, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return tid
	}
	return trace.NewTraceID()
}

// Handler returns the HTTP API handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		stats := make(map[string]Stats)
		for _, h := range s.Hosts() {
			stats[h.Algo()] = h.Stats()
		}
		writeJSON(w, http.StatusOK, stats)
	})
	mux.HandleFunc("GET /query/{algo}", func(w http.ResponseWriter, r *http.Request) {
		h := s.Get(r.PathValue("algo"))
		if h == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown algo %q", r.PathValue("algo")))
			return
		}
		writeJSON(w, http.StatusOK, h.View())
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	// The JSON snapshot keeps raw histogram buckets, so a federating
	// router can merge per-shard distributions exactly; the text
	// exposition above flattens them into unmergeable quantiles.
	mux.Handle("GET /metrics.json", s.reg.JSONHandler())
	mux.Handle("GET /debug/trace", s.rec.Handler())
	mux.HandleFunc("GET /debug/applies", func(w http.ResponseWriter, r *http.Request) {
		hosts := s.Hosts()
		if algo := r.URL.Query().Get("algo"); algo != "" {
			h := s.Get(algo)
			if h == nil {
				httpError(w, http.StatusNotFound, fmt.Errorf("unknown algo %q", algo))
				return
			}
			hosts = []*Host{h}
		}
		// ?n= caps the entries returned per host; the response is bounded
		// either way — by n, or by the hosts' ring capacities.
		n, err := queryN(r, maxAppliesPerHost)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		applies := make(map[string][]ApplyTrace, len(hosts))
		for _, h := range hosts {
			recent := h.RecentApplies()
			if len(recent) > n {
				recent = recent[len(recent)-n:]
			}
			applies[h.Algo()] = recent
		}
		writeJSON(w, http.StatusOK, applies)
	})
	// The boundedness audit plane: per-host cumulative work ledgers with
	// cost-model quotients, and the retained worst-boundedness applies.
	mux.HandleFunc("GET /debug/boundedness", func(w http.ResponseWriter, r *http.Request) {
		reports := make(map[string]BoundednessReport)
		for _, h := range s.Hosts() {
			reports[h.Algo()] = h.Boundedness()
		}
		writeJSON(w, http.StatusOK, reports)
	})
	mux.HandleFunc("GET /debug/offenders", func(w http.ResponseWriter, r *http.Request) {
		hosts := s.Hosts()
		if algo := r.URL.Query().Get("algo"); algo != "" {
			h := s.Get(algo)
			if h == nil {
				httpError(w, http.StatusNotFound, fmt.Errorf("unknown algo %q", algo))
				return
			}
			hosts = []*Host{h}
		}
		offenders := make(map[string][]Offender, len(hosts))
		for _, h := range hosts {
			// Empty rings still serialize as [], so clients need no
			// null-guard per algo.
			offs := h.Offenders()
			if offs == nil {
				offs = []Offender{}
			}
			offenders[h.Algo()] = offs
		}
		writeJSON(w, http.StatusOK, offenders)
	})
	mux.HandleFunc("POST /update", s.handleUpdate)
	s.mu.RLock()
	for pattern, h := range s.mounts {
		mux.Handle(pattern, h)
	}
	s.mu.RUnlock()
	// Routed through a resilient router, requests arrive with an
	// X-Incgraph-Deadline budget; the middleware turns it into a context
	// deadline so shard-local work is bounded by the caller's patience.
	return resilience.Middleware(mux)
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	b, err := graph.ReadBatch(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var targets []*Host
	if algo := r.URL.Query().Get("algo"); algo != "" {
		h := s.Get(algo)
		if h == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown algo %q", algo))
			return
		}
		targets = []*Host{h}
	} else {
		targets = s.Hosts()
	}
	if len(targets) == 0 {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("no hosted maintainers"))
		return
	}
	// Validate against every target up front so a broadcast is
	// all-or-nothing across hosts.
	for _, h := range targets {
		if err := b.Validate(h.NumNodes()); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("algo %s: %w", h.Algo(), err))
			return
		}
	}
	// Shed before any durability: a saturated queue means a blocking
	// submit, and the 503 must mean "not accepted, not logged" — never
	// "rejected but will replay after a restart". Advisory (the queue can
	// fill between probe and submit, in which case the submit briefly
	// blocks), but it keeps ingest overload from stalling every caller.
	// The Retry-After is an estimate of how long the worst target needs
	// to drain what it has already queued, not a constant.
	for _, h := range targets {
		if h.Saturated() {
			s.shed.Inc()
			w.Header().Set("Retry-After", retryAfterEstimate(targets))
			httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("algo %s: submission queue saturated", h.Algo()))
			return
		}
	}
	tid := requestTraceID(r)
	w.Header().Set("traceparent", trace.FormatTraceparent(tid, trace.NewSpanID()))
	wait := r.URL.Query().Get("wait") != ""
	res := UpdateResult{Accepted: len(b), Applied: wait, TraceID: tid.String()}
	for _, h := range targets {
		res.Targets = append(res.Targets, h.Algo())
	}
	if j := s.getJournal(); j != nil {
		if err := j.Ingest(targets, r.URL.Query().Get("algo"), b, tid, wait); err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		res.Epochs = viewEpochs(targets)
		writeJSON(w, http.StatusOK, res)
		return
	}
	for _, h := range targets {
		if err := h.SubmitTraced(b, tid, wait); err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	res.Epochs = viewEpochs(targets)
	writeJSON(w, http.StatusOK, res)
}

// retryAfterEstimate derives a shed response's Retry-After from live
// serving stats: for each target, the queued updates divided by the
// observed mean batch size give the batches left to drain, times the
// mean apply latency. The worst target's estimate wins, clamped to
// [1s, 30s] — honest enough to spread retries by actual backlog, padded
// up so clients never busy-loop on a zero estimate.
func retryAfterEstimate(targets []*Host) string {
	var worst float64
	for _, h := range targets {
		st := h.Stats()
		if st.QueueDepth == 0 || st.MeanApplyNanos <= 0 {
			continue
		}
		meanBatch := 1.0
		if st.BatchesApplied > 0 {
			if mb := float64(st.UpdatesApplied) / float64(st.BatchesApplied); mb > 1 {
				meanBatch = mb
			}
		}
		batchesLeft := float64(st.QueueDepth) / meanBatch
		drain := batchesLeft * float64(st.MeanApplyNanos) / float64(time.Second)
		if drain > worst {
			worst = drain
		}
	}
	secs := int(math.Ceil(worst))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// viewEpochs snapshots each target's published view epoch — taken after
// submission (and, under wait=1, after application), so an acknowledged
// update is covered by the reported epochs.
func viewEpochs(targets []*Host) map[string]uint64 {
	es := make(map[string]uint64, len(targets))
	for _, h := range targets {
		es[h.Algo()] = h.View().Epoch
	}
	return es
}

// maxAppliesPerHost caps GET /debug/applies entries per host even when
// ?n= asks for more — the response stays bounded regardless of how large
// the rings were configured.
const maxAppliesPerHost = 4096

// queryN parses the ?n= cap of a debug endpoint: absent means max,
// anything non-numeric or negative is a client error, and the result is
// clamped to max.
func queryN(r *http.Request, max int) (int, error) {
	raw := r.URL.Query().Get("n")
	if raw == "" {
		return max, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad n %q: want a non-negative integer", raw)
	}
	if n > max {
		n = max
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
