package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/graph"
	"incgraph/internal/sssp"
)

func newTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService()
	mk := func() *graph.Graph {
		g := graph.New(6, false)
		g.InsertEdge(0, 1, 2)
		g.InsertEdge(1, 2, 2)
		return g
	}
	if _, err := svc.Host(CC(cc.NewInc(mk())), Options{MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Host(SSSP(sssp.NewInc(mk(), 0), 0), Options{MaxWait: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func postUpdate(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	var raw json.RawMessage
	json.NewDecoder(resp.Body).Decode(&raw)
	sb.Write(raw)
	return resp.StatusCode, sb.String()
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestService(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPUpdateQueryStats(t *testing.T) {
	svc, ts := newTestService(t)

	// A broadcast update containing an insert/delete churn pair: both
	// hosts absorb it, and both coalescers must fire.
	body := "+ 2 3 1\n+ 4 5 9\n- 4 5\n"
	code, resBody := postUpdate(t, ts.URL+"/update?wait=1", body)
	if code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, resBody)
	}
	var res UpdateResult
	if err := json.Unmarshal([]byte(resBody), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || !res.Applied || len(res.Targets) != 2 {
		t.Fatalf("unexpected update result %+v", res)
	}

	// Query: labels must match a batch recompute on the updated graph.
	var view struct {
		Algo  string `json:"algo"`
		Epoch uint64 `json:"epoch"`
		Data  struct {
			Labels []int64 `json:"labels"`
		} `json:"data"`
	}
	if code := getJSON(t, ts.URL+"/query/cc", &view); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	want := graph.New(6, false)
	want.InsertEdge(0, 1, 2)
	want.InsertEdge(1, 2, 2)
	want.InsertEdge(2, 3, 1)
	if view.Epoch != 3 || !reflect.DeepEqual(view.Data.Labels, cc.CCfp(want)) {
		t.Fatalf("cc view %+v, want labels %v at epoch 3", view, cc.CCfp(want))
	}

	// Stats: the churn pair (+ 4 5 / - 4 5) must show up as coalesced.
	var stats map[string]Stats
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	for _, algo := range []string{"cc", "sssp"} {
		st, ok := stats[algo]
		if !ok {
			t.Fatalf("stats missing %q: %v", algo, stats)
		}
		if st.UpdatesCoalesced == 0 {
			t.Fatalf("%s: churn pair not coalesced: %+v", algo, st)
		}
		if st.UpdatesApplied != 3 || st.QueueDepth != 0 {
			t.Fatalf("%s: %+v", algo, st)
		}
	}

	// Targeted update only reaches the named host.
	code, _ = postUpdate(t, ts.URL+"/update?algo=sssp&wait=1", "+ 0 3 4\n")
	if code != http.StatusOK {
		t.Fatalf("targeted update status %d", code)
	}
	if e := svc.Get("sssp").View().Epoch; e != 4 {
		t.Fatalf("sssp epoch %d, want 4", e)
	}
	if e := svc.Get("cc").View().Epoch; e != 3 {
		t.Fatalf("cc epoch %d, want 3", e)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestService(t)
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"malformed line", "/update", "bogus line\n", http.StatusBadRequest},
		{"negative weight", "/update", "+ 0 1 -5\n", http.StatusBadRequest},
		{"out of range", "/update", "+ 0 99 1\n", http.StatusBadRequest},
		{"unknown target", "/update?algo=nope", "+ 0 1 1\n", http.StatusNotFound},
	}
	for _, tc := range cases {
		code, body := postUpdate(t, ts.URL+tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, body)
		}
	}
	// Parse errors carry the offending line number.
	code, body := postUpdate(t, ts.URL+"/update", "+ 0 1 1\nbroken\n")
	if code != http.StatusBadRequest || !strings.Contains(body, "line 2") {
		t.Fatalf("want line-numbered 400, got %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/query/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query unknown algo: %d", resp.StatusCode)
	}
}

func TestServiceDuplicateAlgo(t *testing.T) {
	svc := NewService()
	g := graph.New(2, false)
	if _, err := svc.Host(CC(cc.NewInc(g)), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Host(CC(cc.NewInc(graph.New(2, false))), Options{}); err == nil {
		t.Fatal("duplicate algo registered")
	}
	svc.Close()
}
