package serve

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// leakCheck records the current goroutine count and, when the test
// finishes, fails it if the count has not fallen back to that baseline.
// Call it first thing in a test, before any hosts or servers are
// created: t.Cleanup runs LIFO, so the check executes after every
// later-registered teardown has closed its apply loops and listeners.
func leakCheck(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() { waitForGoroutines(t, baseline) })
}

// waitForGoroutines polls until the goroutine count falls back to the
// recorded baseline (small slack for runtime helpers), failing with a
// full stack dump when it does not — the leak signal.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		if now = runtime.NumGoroutine(); now <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d at baseline, %d after teardown\n%s",
		baseline, now, trimStack(buf))
}

// trimStack bounds a full-stack dump to something a CI log can show.
func trimStack(b []byte) string {
	const max = 8192
	if len(b) <= max {
		return string(b)
	}
	return fmt.Sprintf("%s\n... (%d bytes elided)", b[:max], len(b)-max)
}
