package serve

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/graph"
)

// promValue extracts the value of the first sample matching the series
// prefix (metric name + label block) from an exposition body.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, ln := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(ln, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// TestMetricsEndToEnd drives a two-host service over HTTP and scrapes
// GET /metrics: the exposition must be valid Prometheus text format and
// carry the apply-latency quantiles, the live boundedness ratio, and the
// per-algo coalescing counters the acceptance criteria name.
func TestMetricsEndToEnd(t *testing.T) {
	_, ts := newTestService(t)

	// One batch: a churn pair (the insert cancels, leaving the delete —
	// the coalescer cannot know edge 4-5 never existed), a fresh insert,
	// and a deletion of a real edge so h has revision work to do. Raw 4
	// updates, net 3, coalesced 1.
	code, body := postUpdate(t, ts.URL+"/update?wait=1", "+ 2 3 1\n+ 4 5 9\n- 4 5\n- 1 2\n")
	if code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	expo := string(raw)

	// Every sample line must parse.
	for _, ln := range strings.Split(strings.TrimRight(expo, "\n"), "\n") {
		if strings.HasPrefix(ln, "# HELP ") || strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(ln) {
			t.Fatalf("invalid exposition line: %q", ln)
		}
	}

	// Apply-latency quantiles per algo.
	for _, algo := range []string{"cc", "sssp"} {
		for _, q := range []string{"0.5", "0.95", "0.99", "1"} {
			v := promValue(t, expo, `incgraph_apply_latency_seconds{algo="`+algo+`",quantile="`+q+`"}`)
			if v <= 0 {
				t.Errorf("%s p%s apply latency = %g, want > 0", algo, q, v)
			}
		}
		if n := promValue(t, expo, `incgraph_apply_latency_seconds_count{algo="`+algo+`"}`); n != 1 {
			t.Errorf("%s apply count %g, want 1", algo, n)
		}
		// The churn pair's insert must show up as a coalesced update.
		if c := promValue(t, expo, `incgraph_updates_coalesced_total{algo="`+algo+`"}`); c != 1 {
			t.Errorf("%s coalesced %g, want 1", algo, c)
		}
		if r := promValue(t, expo, `incgraph_coalesce_ratio{algo="`+algo+`",quantile="0.5"}`); r < 0.2 || r > 0.3 {
			t.Errorf("%s coalesce ratio %g, want ~1/4", algo, r)
		}
		if d := promValue(t, expo, `incgraph_queue_depth{algo="`+algo+`"}`); d != 0 {
			t.Errorf("%s queue depth %g after wait=1", algo, d)
		}
	}

	// The boundedness-ratio gauge: the deletion of edge 1-2 forces h to
	// revise, so |AFF| and the ratio must be positive.
	if v := promValue(t, expo, `incgraph_aff_per_delta_ratio{algo="cc"}`); v <= 0 {
		t.Errorf("cc aff/delta ratio = %g, want > 0", v)
	}
	if v := promValue(t, expo, `incgraph_fixpoint_inspected_total{algo="cc"}`); v <= 0 {
		t.Errorf("cc inspected total = %g, want > 0", v)
	}
	if v := promValue(t, expo, `incgraph_uptime_seconds`); v <= 0 {
		t.Errorf("uptime = %g, want > 0", v)
	}
	if v := promValue(t, expo, `incgraph_graph_nodes{algo="cc"}`); v != 6 {
		t.Errorf("graph nodes = %g, want 6", v)
	}
}

// TestDebugApplies checks the recent-applies trace ring over HTTP: the
// per-batch record of |ΔG| raw/net, |AFF|, and the latency split.
func TestDebugApplies(t *testing.T) {
	svc, ts := newTestService(t)

	if code, body := postUpdate(t, ts.URL+"/update?wait=1", "+ 2 3 1\n+ 4 5 9\n- 4 5\n- 1 2\n"); code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, body)
	}

	var applies map[string][]ApplyTrace
	if code := getJSON(t, ts.URL+"/debug/applies", &applies); code != http.StatusOK {
		t.Fatalf("debug/applies status %d", code)
	}
	for _, algo := range []string{"cc", "sssp"} {
		trs := applies[algo]
		if len(trs) != 1 {
			t.Fatalf("%s: %d traces, want 1: %+v", algo, len(trs), trs)
		}
		tr := trs[0]
		if tr.Algo != algo || tr.Epoch != 4 || tr.Batch != 1 {
			t.Errorf("%s: trace header %+v", algo, tr)
		}
		if tr.RawUpdates != 4 || tr.NetUpdates != 3 {
			t.Errorf("%s: raw/net %d/%d, want 4/3", algo, tr.RawUpdates, tr.NetUpdates)
		}
		if tr.ApplyNanos <= 0 || tr.QueueWaitNanos < 0 || tr.UnixNanos <= 0 {
			t.Errorf("%s: timings %+v", algo, tr)
		}
	}
	// CC runs on the fixpoint engine: the trace must carry its counters.
	if cc := applies["cc"][0]; cc.Inspected <= 0 {
		t.Errorf("cc trace lost the fixpoint counters: %+v", cc)
	}

	// Filtering by algo, and rejecting unknown algos.
	var one map[string][]ApplyTrace
	if code := getJSON(t, ts.URL+"/debug/applies?algo=cc", &one); code != http.StatusOK {
		t.Fatalf("filtered debug/applies status %d", code)
	}
	if len(one) != 1 || len(one["cc"]) != 1 {
		t.Fatalf("filtered applies %+v", one)
	}
	resp, err := http.Get(ts.URL + "/debug/applies?algo=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown algo status %d", resp.StatusCode)
	}
	_ = svc
}

// TestStatsDerivedFields checks the /stats satellite: uptime, mean apply
// latency, and the propagated fixpoint counters are reported, not left
// for clients to derive from raw totals.
func TestStatsDerivedFields(t *testing.T) {
	_, ts := newTestService(t)
	if code, body := postUpdate(t, ts.URL+"/update?wait=1", "+ 2 3 1\n"); code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, body)
	}
	if code, body := postUpdate(t, ts.URL+"/update?wait=1", "- 2 3\n"); code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, body)
	}

	var stats map[string]Stats
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	for _, algo := range []string{"cc", "sssp"} {
		st := stats[algo]
		if st.UptimeSeconds <= 0 {
			t.Errorf("%s: uptime %g", algo, st.UptimeSeconds)
		}
		if st.BatchesApplied == 0 || st.MeanApplyNanos != st.TotalApplyNanos/int64(st.BatchesApplied) {
			t.Errorf("%s: mean %d, total %d over %d batches", algo, st.MeanApplyNanos, st.TotalApplyNanos, st.BatchesApplied)
		}
		if st.QueueDepth != 0 {
			t.Errorf("%s: queue depth %d after wait=1", algo, st.QueueDepth)
		}
		// Engine-based maintainers propagate their cost counters; the
		// deletion forces h to actually inspect something.
		if st.Fixpoint.Inspected() <= 0 {
			t.Errorf("%s: fixpoint counters not propagated: %+v", algo, st.Fixpoint)
		}
	}
}

// TestTraceRingBounded proves the per-host ring keeps only the last
// Trace applies.
func TestTraceRingBounded(t *testing.T) {
	g := graph.New(4, false)
	h := NewHost(CC(cc.NewInc(g)), Options{MaxBatch: 1, MaxWait: time.Hour, Trace: 4})
	defer h.Close()
	for i := 0; i < 10; i++ {
		b := graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 1}}
		if i%2 == 1 {
			b = graph.Batch{{Kind: graph.DeleteEdge, From: 0, To: 1}}
		}
		if err := h.SubmitWait(b); err != nil {
			t.Fatal(err)
		}
	}
	trs := h.RecentApplies()
	if len(trs) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(trs))
	}
	if trs[len(trs)-1].Batch != 10 {
		t.Fatalf("newest trace is batch %d, want 10", trs[len(trs)-1].Batch)
	}
	for i := 1; i < len(trs); i++ {
		if trs[i].Batch != trs[i-1].Batch+1 {
			t.Fatalf("traces out of order: %+v", trs)
		}
	}
}
