package serve

import (
	"log/slog"
	"net/http"
	"time"

	"incgraph/internal/trace"
)

// statusWriter records the status code a handler wrote, defaulting to
// 200 when the handler never calls WriteHeader explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// AccessLog wraps next with request logging and trace-context
// resolution: every request gets a trace ID (from a valid incoming
// traceparent header, or freshly minted), stored in the request context
// so downstream handlers — POST /update in particular — reuse the same
// ID, and one slog line per request records method, path, status,
// duration, and that trace ID. Enabled in incgraphd with -access-log.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tid, ok := trace.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tid = trace.NewTraceID()
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(trace.ContextWithID(r.Context(), tid)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Info("http",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(start).Round(time.Microsecond),
			"trace", tid.String())
	})
}
