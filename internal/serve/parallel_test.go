package serve

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/serve/faults"
	"incgraph/internal/sssp"
	"incgraph/internal/trace"
)

// The trace package satisfies the engine's optional parallel-round hook
// structurally; this assertion pins the signatures together at compile
// time from the one package that imports both.
var _ fixpoint.ParRoundTracer = (*trace.EngineTracer)(nil)

// TestHostParallelMatchesSequential drives identical update streams
// through parallel (Workers: 4) and sequential hosts for SSSP and CC and
// requires the final published views to be deep-equal — the serving-layer
// half of the determinism guarantee. The stream is wide enough (large
// submissions against a power-law graph) that the parallel hosts really
// take partitioned rounds, which the aggregated stats must show.
func TestHostParallelMatchesSequential(t *testing.T) {
	const nodes, chunks, chunkLen = 2000, 6, 400
	rng := rand.New(rand.NewSource(5))
	base := gen.PowerLaw(rng, nodes, 8, true)
	stream := makeStream(17, nodes, chunks*chunkLen)

	build := func(workers int) (*Host, *Host) {
		opt := Options{MaxBatch: chunkLen, MaxWait: time.Millisecond, Workers: workers}
		hs := NewHost(SSSP(sssp.NewInc(base.Clone(), 0), 0), opt)
		hc := NewHost(CC(cc.NewInc(base.Clone())), opt)
		return hs, hc
	}
	seqS, seqC := build(0)
	parS, parC := build(4)
	for _, h := range []*Host{seqS, seqC, parS, parC} {
		for i := 0; i < chunks; i++ {
			if err := h.Submit(stream[i*chunkLen : (i+1)*chunkLen]); err != nil {
				t.Fatal(err)
			}
		}
		h.Close()
	}

	if a, b := seqS.View().Data, parS.View().Data; !reflect.DeepEqual(a, b) {
		t.Fatal("sssp: parallel host's final view differs from sequential")
	}
	if a, b := seqC.View().Data, parC.View().Data; !reflect.DeepEqual(a, b) {
		t.Fatal("cc: parallel host's final view differs from sequential")
	}

	// The oracle: the final views must equal batch recomputation over the
	// final graph (the unique fixpoint, regardless of batching schedule).
	finalG := base.Clone()
	finalG.Apply(stream.Net(finalG.Directed()))
	if got := parS.View().Data.(SSSPView).Dist; !reflect.DeepEqual(got, sssp.Dijkstra(finalG, 0)) {
		t.Fatal("sssp: parallel host's final view differs from fresh Dijkstra")
	}
	if got := parC.View().Data.(CCView).Labels; !reflect.DeepEqual(got, cc.Components(finalG)) {
		t.Fatal("cc: parallel host's final view differs from batch components")
	}

	// Stats exposure: the parallel hosts report the configured worker
	// count and the aggregated drain counters; sequential hosts stay zero.
	for _, tc := range []struct {
		name string
		h    *Host
	}{{"sssp", parS}, {"cc", parC}} {
		st := tc.h.Stats()
		if st.Workers != 4 || st.Par.Workers != 4 {
			t.Fatalf("%s: Workers %d / Par.Workers %d, want 4/4", tc.name, st.Workers, st.Par.Workers)
		}
		if st.Par.ParRounds == 0 {
			t.Fatalf("%s: no partitioned rounds on a wide stream: %+v", tc.name, st.Par)
		}
		if u := st.WorkerUtilization; u <= 0 || u > 1 {
			t.Fatalf("%s: WorkerUtilization %v outside (0,1]", tc.name, u)
		}
	}
	if st := seqS.Stats(); st.Workers != 0 || st.Par != (fixpoint.ParStats{}) {
		t.Fatalf("sequential host leaked parallel stats: %+v", st.Par)
	}

	// /stats serves the same struct; the JSON must carry the worker count.
	raw, err := json.Marshal(parS.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"workers":4`) || !strings.Contains(string(raw), `"par_rounds"`) {
		t.Fatalf("stats JSON missing parallel fields: %s", raw)
	}
	if raw, _ = json.Marshal(seqS.Stats()); strings.Contains(string(raw), `"par"`) {
		t.Fatalf("sequential stats JSON carries a par block: %s", raw)
	}
}

// TestHostWorkersSurviveHeal panics the maintainer once and checks that
// the heal recompute — which rebuilds the inner maintainer, discarding
// its worker pool — re-installs the configured worker count, so repairs
// after the heal still run partitioned.
func TestHostWorkersSurviveHeal(t *testing.T) {
	const nodes, wide = 2000, 400
	rng := rand.New(rand.NewSource(9))
	base := gen.PowerLaw(rng, nodes, 8, true)
	stream := makeStream(29, nodes, 2*wide)
	inj := faults.New()
	inj.PanicOn("sssp", 2)

	h := NewHost(SSSP(sssp.NewInc(base.Clone(), 0), 0), Options{
		MaxBatch: wide, MaxWait: time.Millisecond, Workers: 4,
		BeforeApply: inj.BeforeApply,
	})
	defer h.Close()

	b1, b3 := stream[:wide], stream[wide:]
	poisoned := graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 1}}
	if err := h.SubmitWait(b1); err != nil {
		t.Fatal(err)
	}
	beforeHeal := h.Stats().Par.ParRounds
	if beforeHeal == 0 {
		t.Fatal("no partitioned rounds before the heal")
	}
	if err := h.SubmitWait(poisoned); err != nil { // panics before Apply → heal
		t.Fatal(err)
	}
	if err := h.SubmitWait(b3); err != nil {
		t.Fatal(err)
	}

	st := h.Stats()
	if st.Panics != 1 || st.Heals != 1 || st.Degraded {
		t.Fatalf("stats after poisoned apply: panics=%d heals=%d degraded=%v", st.Panics, st.Heals, st.Degraded)
	}
	if st.Par.ParRounds <= beforeHeal {
		t.Fatalf("no partitioned rounds after the heal: %d before, %d after", beforeHeal, st.Par.ParRounds)
	}
	// The healed-then-repaired answer: the poisoned batch never reached
	// the graph, so the oracle replays b1+b3 only.
	og := base.Clone()
	og.Apply(b1.Net(og.Directed()))
	og.Apply(b3.Net(og.Directed()))
	if got := h.View().Data.(SSSPView).Dist; !reflect.DeepEqual(got, sssp.Dijkstra(og, 0)) {
		t.Fatal("post-heal parallel repairs diverged from oracle")
	}
}
