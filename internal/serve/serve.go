// Package serve hosts incremental maintainers behind a concurrent
// service API: a resident process ingests a stream of update batches ΔG
// while answering queries continuously, which is the setting where the
// paper's incrementalization pays off — the batch fixpoint cost is paid
// once at startup, and every subsequent change is absorbed by Apply.
//
// The concurrency contract is built on the fact that maintainers
// (sssp.Inc, cc.Inc, …) are single-writer objects: every maintainer is
// owned by exactly one apply-loop goroutine, which is the only caller of
// Apply and Snapshot. Readers never touch the maintainer; they read an
// immutable snapshot view published after each applied batch.
//
// A Host additionally coalesces and batches the update stream before it
// reaches the maintainer: submissions accumulate until a size or latency
// budget is hit, and the accumulated batch is reduced with Batch.Net so
// churn (insert/delete pairs of the same edge, duplicate operations)
// cancels out instead of being paid for inside the repair machinery. This
// amortizes the per-batch fixed costs (scope construction, priority-queue
// setup) that dominate when updates arrive one at a time.
package serve

import (
	"errors"
	"time"

	"sync"

	"incgraph/internal/graph"
)

// Serveable adapts an incremental maintainer to the service layer. The
// host guarantees Apply and Snapshot are only ever called from its
// single apply-loop goroutine, matching the maintainers' one-writer
// contract; Algo and Graph must be safe to call once at registration.
type Serveable interface {
	// Algo names the hosted query class ("sssp", "cc", …); it is the
	// routing key of the HTTP API.
	Algo() string
	// Graph returns the maintained graph, used at registration to learn
	// the node count (for batch validation) and directedness (for
	// coalescing). The host never mutates or reads it afterwards.
	Graph() *graph.Graph
	// Apply incorporates a (pre-coalesced) batch, returning the
	// maintainer's affected-area measure.
	Apply(b graph.Batch) int
	// Snapshot returns a deep copy of the current result view. The value
	// must remain valid — and must never be mutated by anyone — after
	// further Apply calls, because readers retain it without locks.
	Snapshot() any
}

// View is one published snapshot: the result of some applied prefix of
// the update stream. Views are immutable after publication, so any number
// of readers may share one.
type View struct {
	// Algo is the query class that produced the view.
	Algo string `json:"algo"`
	// Epoch counts the raw (pre-coalescing) unit updates incorporated,
	// in submission order: the view is exactly the query answer on
	// G ⊕ stream[:Epoch]. This is the handle for prefix-consistency
	// checks and for an eventual epoch-based double-buffer upgrade.
	Epoch uint64 `json:"epoch"`
	// Batches counts the coalesced Apply calls behind the view.
	Batches uint64 `json:"batches"`
	// Data is the deep-copied, JSON-marshalable result (e.g. SSSPView).
	Data any `json:"data"`
}

// Stats are per-host serving counters, exposed on /stats.
type Stats struct {
	Algo string `json:"algo"`
	// Epoch mirrors the published view's epoch.
	Epoch uint64 `json:"epoch"`
	// UpdatesReceived counts raw unit updates accepted by Submit.
	UpdatesReceived uint64 `json:"updates_received"`
	// UpdatesApplied counts raw unit updates incorporated into the view.
	UpdatesApplied uint64 `json:"updates_applied"`
	// UpdatesCoalesced counts updates cancelled before reaching the
	// maintainer: raw minus net, summed over batches. Nonzero whenever
	// the stream contained churn inside one batching window.
	UpdatesCoalesced uint64 `json:"updates_coalesced"`
	// BatchesApplied counts Apply calls on the maintainer.
	BatchesApplied uint64 `json:"batches_applied"`
	// AffectedTotal sums the maintainer's per-Apply affected-area
	// measure (|H⁰| or equivalent).
	AffectedTotal int64 `json:"affected_total"`
	// QueueDepth is the number of received-but-not-yet-applied updates.
	QueueDepth uint64 `json:"queue_depth"`
	// Apply latency, nanoseconds.
	LastApplyNanos  int64 `json:"last_apply_nanos"`
	MaxApplyNanos   int64 `json:"max_apply_nanos"`
	TotalApplyNanos int64 `json:"total_apply_nanos"`
}

// Options tune a host's batching behaviour.
type Options struct {
	// MaxBatch flushes the pending batch once it holds this many raw
	// updates. Default 256.
	MaxBatch int
	// MaxWait flushes a nonempty pending batch after this long even if
	// MaxBatch was not reached — the latency budget. Default 2ms.
	MaxWait time.Duration
	// Queue is the submission channel's buffer (backpressure beyond it:
	// Submit blocks). Default 1024.
	Queue int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Queue <= 0 {
		o.Queue = 1024
	}
	return o
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: host closed")

type submission struct {
	b   graph.Batch
	ack chan struct{}
}

// Host runs one maintainer behind a single-writer apply loop with
// snapshot-consistent concurrent reads.
type Host struct {
	m    Serveable
	algo string
	n    int
	dir  bool
	opt  Options

	// viewMu guards the published view pointer. Readers hold it only for
	// the pointer copy, so they never block the writer for longer than a
	// pointer swap, and never observe a half-applied batch: the swap
	// happens strictly after Apply and Snapshot complete.
	//
	// Upgrade path: because views are immutable and epoch-stamped, the
	// RWMutex can be replaced by an atomic.Pointer[View] (a two-slot
	// epoch/double-buffer scheme degenerates to exactly that when
	// snapshots are fresh allocations, as here). The mutex is kept for
	// now so future views may share mutable buffers with the maintainer
	// under the read lock if snapshot allocation ever shows up in
	// profiles.
	viewMu sync.RWMutex
	view   *View

	statMu sync.Mutex
	stats  Stats

	// submitMu serializes Submit against Close: Submit sends on in under
	// the read side, Close flips closed under the write side, so no send
	// can race past a completed Close and be silently dropped.
	submitMu sync.RWMutex
	closed   bool
	in       chan submission

	quit chan struct{}
	done chan struct{}
}

// NewHost starts the apply loop for m and publishes its initial view
// (epoch 0: the batch-computed answer on G).
func NewHost(m Serveable, opt Options) *Host {
	g := m.Graph()
	h := &Host{
		m:    m,
		algo: m.Algo(),
		n:    g.NumNodes(),
		dir:  g.Directed(),
		opt:  opt.withDefaults(),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	h.in = make(chan submission, h.opt.Queue)
	h.view = &View{Algo: h.algo, Data: m.Snapshot()}
	h.stats.Algo = h.algo
	go h.loop()
	return h
}

// Algo returns the hosted query class name.
func (h *Host) Algo() string { return h.algo }

// NumNodes returns the node count updates are validated against.
func (h *Host) NumNodes() int { return h.n }

// View returns the current published snapshot. The returned value is
// immutable and safe to retain across further updates.
func (h *Host) View() *View {
	h.viewMu.RLock()
	defer h.viewMu.RUnlock()
	return h.view
}

// Stats returns a copy of the serving counters.
func (h *Host) Stats() Stats {
	h.statMu.Lock()
	s := h.stats
	h.statMu.Unlock()
	s.QueueDepth = s.UpdatesReceived - s.UpdatesApplied
	return s
}

// Submit validates b and enqueues it for the apply loop, returning once
// the batch is accepted (not yet applied). It blocks when the queue is
// full — backpressure, not loss.
func (h *Host) Submit(b graph.Batch) error {
	_, err := h.submit(b, false)
	return err
}

// SubmitWait is Submit, but also waits until the batch has been applied
// and its view published.
func (h *Host) SubmitWait(b graph.Batch) error {
	ack, err := h.submit(b, true)
	if err != nil {
		return err
	}
	<-ack
	return nil
}

func (h *Host) submit(b graph.Batch, wait bool) (chan struct{}, error) {
	if err := b.Validate(h.n); err != nil {
		return nil, err
	}
	// Copy: the caller may reuse its slice after Submit returns.
	owned := append(graph.Batch(nil), b...)
	var ack chan struct{}
	if wait {
		ack = make(chan struct{})
	}
	h.submitMu.RLock()
	defer h.submitMu.RUnlock()
	if h.closed {
		return nil, ErrClosed
	}
	h.statMu.Lock()
	h.stats.UpdatesReceived += uint64(len(owned))
	h.statMu.Unlock()
	h.in <- submission{b: owned, ack: ack}
	return ack, nil
}

// Close stops accepting submissions, drains and applies everything
// already accepted, publishes the final view, and waits for the apply
// loop to exit. It is idempotent.
func (h *Host) Close() {
	h.submitMu.Lock()
	already := h.closed
	h.closed = true
	h.submitMu.Unlock()
	if !already {
		close(h.quit)
	}
	<-h.done
}

// loop is the single writer: the only goroutine that touches the
// maintainer after NewHost returns.
func (h *Host) loop() {
	defer close(h.done)
	var (
		pending graph.Batch
		acks    []chan struct{}
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(pending) > 0 {
			h.apply(pending)
			pending = nil
		}
		for _, a := range acks {
			close(a)
		}
		acks = nil
	}
	add := func(s submission) {
		pending = append(pending, s.b...)
		if s.ack != nil {
			acks = append(acks, s.ack)
		}
	}
	for {
		select {
		case s := <-h.in:
			add(s)
			if len(pending) >= h.opt.MaxBatch {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(h.opt.MaxWait)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		case <-h.quit:
			// Graceful shutdown: drain whatever Submit managed to
			// enqueue before Close flipped the flag, then exit.
			for {
				select {
				case s := <-h.in:
					add(s)
					if len(pending) >= h.opt.MaxBatch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// apply coalesces one accumulated batch, feeds it to the maintainer, and
// publishes the new view. Called only from loop.
func (h *Host) apply(raw graph.Batch) {
	net := raw.Net(h.dir)
	t0 := time.Now()
	aff := h.m.Apply(net)
	lat := time.Since(t0).Nanoseconds()
	data := h.m.Snapshot()

	h.statMu.Lock()
	h.stats.BatchesApplied++
	h.stats.UpdatesApplied += uint64(len(raw))
	h.stats.UpdatesCoalesced += uint64(len(raw) - len(net))
	h.stats.AffectedTotal += int64(aff)
	h.stats.Epoch = h.stats.UpdatesApplied
	h.stats.LastApplyNanos = lat
	h.stats.TotalApplyNanos += lat
	if lat > h.stats.MaxApplyNanos {
		h.stats.MaxApplyNanos = lat
	}
	epoch, batches := h.stats.Epoch, h.stats.BatchesApplied
	h.statMu.Unlock()

	v := &View{Algo: h.algo, Epoch: epoch, Batches: batches, Data: data}
	h.viewMu.Lock()
	h.view = v
	h.viewMu.Unlock()
}
