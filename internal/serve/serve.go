// Package serve hosts incremental maintainers behind a concurrent
// service API: a resident process ingests a stream of update batches ΔG
// while answering queries continuously, which is the setting where the
// paper's incrementalization pays off — the batch fixpoint cost is paid
// once at startup, and every subsequent change is absorbed by Apply.
//
// The concurrency contract is built on the fact that maintainers
// (sssp.Inc, cc.Inc, …) are single-writer objects: every maintainer is
// owned by exactly one apply-loop goroutine, which is the only caller of
// Apply and Snapshot. Readers never touch the maintainer; they read an
// immutable snapshot view published after each applied batch.
//
// A Host additionally coalesces and batches the update stream before it
// reaches the maintainer: submissions accumulate until a size or latency
// budget is hit, and the accumulated batch is reduced with Batch.Net so
// churn (insert/delete pairs of the same edge, duplicate operations)
// cancels out instead of being paid for inside the repair machinery. This
// amortizes the per-batch fixed costs (scope construction, priority-queue
// setup) that dominate when updates arrive one at a time.
package serve

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sync"

	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
	"incgraph/internal/obs"
	"incgraph/internal/trace"
)

// Serveable adapts an incremental maintainer to the service layer. The
// host guarantees Apply and Snapshot are only ever called from its
// single apply-loop goroutine, matching the maintainers' one-writer
// contract; Algo and Graph must be safe to call once at registration.
type Serveable interface {
	// Algo names the hosted query class ("sssp", "cc", …); it is the
	// routing key of the HTTP API.
	Algo() string
	// Graph returns the maintained graph, used at registration to learn
	// the node count (for batch validation) and directedness (for
	// coalescing). The host never mutates or reads it afterwards.
	Graph() *graph.Graph
	// Apply incorporates a (pre-coalesced) batch, returning the
	// maintainer's affected-area measure and cost counters.
	Apply(b graph.Batch) ApplyResult
	// Snapshot returns a deep copy of the current result view. The value
	// must remain valid — and must never be mutated by anyone — after
	// further Apply calls, because readers retain it without locks.
	Snapshot() any
	// PersistState writes the maintainer's incremental state — the part a
	// batch rerun cannot cheaply rebuild with the right anchor order
	// (timestamps, intervals, component ids) — for a durability
	// checkpoint. Called only from the apply-loop goroutine.
	PersistState(w io.Writer) error
	// RestoreState installs state previously written by PersistState
	// against the same graph. Called during recovery, before the host's
	// apply loop starts.
	RestoreState(r io.Reader) error
	// Recompute discards the maintained answer and re-runs the batch
	// algorithm over the current graph — the self-healing path after a
	// recovered panic, and the recovery-verification oracle. Called only
	// from the apply-loop goroutine (or single-threaded recovery).
	Recompute()
}

// ApplyResult is what a maintainer reports back from one Apply call: the
// affected-area measure the paper's boundedness analysis is about, plus
// — for maintainers built on the fixpoint engine — the per-apply delta
// of the engine's cost counters (reads, pops, the h/resume time split of
// Exp-2(2)). Adapters must report the delta attributable to this Apply,
// not the maintainer's cumulative totals.
type ApplyResult struct {
	// Affected is |H⁰| (or the class's equivalent affected-area measure).
	Affected int
	// Stats is the per-apply fixpoint counter delta; meaningful only when
	// HasStats is set.
	Stats fixpoint.Stats
	// HasStats reports whether the maintainer exposes fixpoint counters.
	// DFS, LCC, and BC use specialized repair machinery without the
	// generic engine and report only Affected.
	HasStats bool
	// Par is the per-apply parallel-drain counter delta (rounds
	// partitioned across workers, worker busy time, imbalance);
	// meaningful only when HasPar is set — a maintainer running with
	// two or more workers configured.
	Par fixpoint.ParStats
	// HasPar reports whether Par carries parallel-mode counters.
	HasPar bool
	// Ledger is the per-apply work ledger: |ΔG|, |CHANGED|, |AFF|, ‖AFF‖,
	// rounds, and the recompute estimate Theorem 3's boundedness quotient
	// is computed from. Engine-based adapters report the engine's ledger
	// delta with Delta and RecomputeEst filled in; the specialized classes
	// (DFS, LCC, BC) synthesize one from their affected-area measure.
	// Meaningful only when HasLedger is set.
	Ledger fixpoint.WorkLedger
	// HasLedger reports whether Ledger carries work accounting.
	HasLedger bool
}

// ApplyTrace is one entry of a host's bounded ring of recent applies —
// the raw material for watching the boundedness claim live: |AFF| against
// |ΔG| (raw and net of coalescing), the h/resume split, and where the
// latency went. Dumped by GET /debug/applies.
type ApplyTrace struct {
	Algo string `json:"algo"`
	// Epoch is the raw-update epoch of the view this apply published.
	Epoch uint64 `json:"epoch"`
	// Batch is the ordinal of this Apply call on the maintainer.
	Batch uint64 `json:"batch"`
	// RawUpdates and NetUpdates are |ΔG| before and after coalescing.
	RawUpdates int `json:"raw_updates"`
	NetUpdates int `json:"net_updates"`
	// Affected is the maintainer's affected-area measure for this batch.
	Affected int `json:"affected"`
	// QueueWaitNanos is how long the oldest merged submission sat queued
	// before the maintainer saw it.
	QueueWaitNanos int64 `json:"queue_wait_nanos"`
	ApplyNanos     int64 `json:"apply_nanos"`
	// HNanos/ResumeNanos split ApplyNanos into the initial scope function
	// h and the resumed step function (engine-based maintainers only).
	HNanos      int64 `json:"h_nanos"`
	ResumeNanos int64 `json:"resume_nanos"`
	// Inspected is the per-apply variable-inspection count (engine-based
	// maintainers only).
	Inspected int64 `json:"inspected"`
	// ParRounds is how many of this apply's propagation rounds were
	// partitioned across workers (parallel-mode maintainers only).
	ParRounds int64 `json:"par_rounds,omitempty"`
	// Work, Changed, Aff, AffEdges, and Rounds are the apply's work-ledger
	// account (ledger-reporting maintainers only): the incremental-cost
	// measure Touched+|AFF|+‖AFF‖ and its components.
	Work     int64 `json:"work,omitempty"`
	Changed  int64 `json:"changed,omitempty"`
	Aff      int64 `json:"aff,omitempty"`
	AffEdges int64 `json:"aff_edges,omitempty"`
	Rounds   int64 `json:"rounds,omitempty"`
	// BoundedRatio is Work/|ΔG| for this apply — the per-batch relative-
	// boundedness quotient; 0 when the net batch was empty.
	BoundedRatio float64 `json:"bounded_ratio,omitempty"`
	// UnixNanos timestamps the apply's completion.
	UnixNanos int64 `json:"unix_nanos"`
	// TraceID is the W3C trace ID of the first traced submission merged
	// into this batch ("" when no submission carried one), correlating
	// the apply with request logs and the flight recording.
	TraceID string `json:"trace_id,omitempty"`
}

// Offender is one retained entry of a host's top-K worst-boundedness
// ring: an applied batch whose work-per-update ratio ranked among the
// highest the host has seen. TraceID (when the triggering submission
// carried one) links the offender to its spans in the flight recording
// and to request logs — the forensic path from "the ratio spiked" to
// "this request did it". Dumped by GET /debug/offenders.
type Offender struct {
	Algo string `json:"algo"`
	// Epoch/Batch identify the apply (same coordinates as ApplyTrace).
	Epoch uint64 `json:"epoch"`
	Batch uint64 `json:"batch"`
	// BoundedRatio is the apply's Work/|ΔG| — its ranking score.
	BoundedRatio float64 `json:"bounded_ratio"`
	// Work and Delta are the ratio's numerator and denominator.
	Work  int64 `json:"work"`
	Delta int64 `json:"delta"`
	// ApplyNanos is the apply's wall latency.
	ApplyNanos int64 `json:"apply_nanos"`
	// UnixNanos timestamps the apply's completion.
	UnixNanos int64 `json:"unix_nanos"`
	// TraceID is the W3C trace ID of the batch, "" when untraced.
	TraceID string `json:"trace_id,omitempty"`
}

// View is one published snapshot: the result of some applied prefix of
// the update stream. Views are immutable after publication, so any number
// of readers may share one.
type View struct {
	// Algo is the query class that produced the view.
	Algo string `json:"algo"`
	// Epoch counts the raw (pre-coalescing) unit updates incorporated,
	// in submission order: the view is exactly the query answer on
	// G ⊕ stream[:Epoch]. This is the handle for prefix-consistency
	// checks and for an eventual epoch-based double-buffer upgrade.
	Epoch uint64 `json:"epoch"`
	// Batches counts the coalesced Apply calls behind the view.
	Batches uint64 `json:"batches"`
	// Degraded marks a stale view republished after the maintainer
	// panicked: the data is the last good answer, at an epoch behind the
	// accepted stream. It clears once the host heals by batch recompute.
	Degraded bool `json:"degraded,omitempty"`
	// Data is the deep-copied, JSON-marshalable result (e.g. SSSPView).
	Data any `json:"data"`
}

// Stats are per-host serving counters, exposed on /stats.
type Stats struct {
	Algo string `json:"algo"`
	// Epoch mirrors the published view's epoch.
	Epoch uint64 `json:"epoch"`
	// UpdatesReceived counts raw unit updates accepted by Submit.
	UpdatesReceived uint64 `json:"updates_received"`
	// UpdatesApplied counts raw unit updates incorporated into the view.
	UpdatesApplied uint64 `json:"updates_applied"`
	// UpdatesCoalesced counts updates cancelled before reaching the
	// maintainer: raw minus net, summed over batches. Nonzero whenever
	// the stream contained churn inside one batching window.
	UpdatesCoalesced uint64 `json:"updates_coalesced"`
	// BatchesApplied counts Apply calls on the maintainer.
	BatchesApplied uint64 `json:"batches_applied"`
	// AffectedTotal sums the maintainer's per-Apply affected-area
	// measure (|H⁰| or equivalent).
	AffectedTotal int64 `json:"affected_total"`
	// QueueDepth is the number of received-but-not-yet-applied updates.
	QueueDepth uint64 `json:"queue_depth"`
	// Apply latency, nanoseconds.
	LastApplyNanos  int64 `json:"last_apply_nanos"`
	MaxApplyNanos   int64 `json:"max_apply_nanos"`
	TotalApplyNanos int64 `json:"total_apply_nanos"`
	// MeanApplyNanos is TotalApplyNanos/BatchesApplied, precomputed so
	// clients don't have to divide raw totals.
	MeanApplyNanos int64 `json:"mean_apply_nanos"`
	// Apply-latency quantiles, estimated from the host's log-bucketed
	// histogram (≤6.25% relative error; see internal/obs). Zero until the
	// first apply. Present so operators get percentiles from one GET
	// /stats without running a Prometheus scrape pipeline.
	ApplyP50Nanos int64 `json:"apply_p50_nanos"`
	ApplyP95Nanos int64 `json:"apply_p95_nanos"`
	ApplyP99Nanos int64 `json:"apply_p99_nanos"`
	// Degraded reports whether the host is serving a stale snapshot after
	// a maintainer panic (see View.Degraded); Panics and Heals count the
	// recovered panics and the successful batch-recompute heals. A host
	// whose heal itself panicked stays degraded permanently (quarantined)
	// but keeps answering reads.
	Degraded bool   `json:"degraded,omitempty"`
	Panics   uint64 `json:"panics,omitempty"`
	Heals    uint64 `json:"heals,omitempty"`
	// UptimeSeconds is the time since the host started serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Fixpoint aggregates the maintainer's per-apply cost-counter deltas
	// (engine-based maintainers only; ScopeSize is the last apply's |H⁰|).
	Fixpoint fixpoint.Stats `json:"fixpoint"`
	// Workers is the worker count configured for the maintainer's
	// parallel execution mode; 0 when the maintainer runs sequentially
	// (or does not support the mode).
	Workers int `json:"workers,omitempty"`
	// Par aggregates the maintainer's per-apply parallel-drain deltas
	// (partitioned rounds, worker busy time, the work-imbalance gauges);
	// zero-valued for sequential maintainers.
	Par fixpoint.ParStats `json:"par,omitzero"`
	// Audit aggregates the maintainer's per-apply work ledgers — the
	// cumulative |ΔG|, |CHANGED|, |AFF|, ‖AFF‖ account behind
	// GET /debug/boundedness. Zero-valued for maintainers that report no
	// ledger.
	Audit fixpoint.WorkLedger `json:"audit"`
	// WorkerUtilization is Par's cumulative pool utilization,
	// BusyNanos/(Workers×WallNanos), in [0,1]; 0 while sequential.
	WorkerUtilization float64 `json:"worker_utilization,omitempty"`
}

// Options tune a host's batching behaviour.
type Options struct {
	// MaxBatch flushes the pending batch once it holds this many raw
	// updates. Default 256.
	MaxBatch int
	// MaxWait flushes a nonempty pending batch after this long even if
	// MaxBatch was not reached — the latency budget. Default 2ms.
	MaxWait time.Duration
	// Queue is the submission channel's buffer (backpressure beyond it:
	// Submit blocks). Default 1024.
	Queue int
	// Registry receives the host's metrics (apply-latency histograms,
	// coalescing counters, the live boundedness-ratio gauge). A Service
	// passes its own registry so /metrics covers every host; nil gets a
	// private registry, keeping standalone hosts self-contained.
	Registry *obs.Registry
	// Trace is the capacity of the recent-applies ring buffer behind
	// GET /debug/applies. Default 128.
	Trace int
	// Offenders is the capacity of the top-K worst-boundedness ring behind
	// GET /debug/offenders. Default 32.
	Offenders int
	// Recorder receives span/flight-recorder events: one root span per
	// applied batch (queue wait → coalesce → apply → publish) and, for
	// maintainers exposing the fixpoint tracer hook, h-phase/resume spans
	// with per-round propagation events. A Service passes its own
	// recorder so GET /debug/trace covers every host; nil disables
	// tracing for standalone hosts (zero overhead).
	Recorder *trace.Recorder
	// OnApply, when set, is invoked synchronously from the apply loop
	// after each published batch — the hook structured logging hangs off.
	// It must be fast and must not call back into the Host.
	OnApply func(ApplyTrace)
	// BeforeApply, when set, runs in the apply loop just before each
	// maintainer Apply — the fault-injection point internal/serve/faults
	// drives (it may panic to exercise the isolation path). Production
	// leaves it nil.
	BeforeApply func(algo string, b graph.Batch)
	// BaseEpoch and BaseBatches seed the host's epoch accounting, so a
	// host recovered from a checkpoint + WAL replay resumes its counters
	// instead of restarting the stream at zero.
	BaseEpoch   uint64
	BaseBatches uint64
	// Workers configures the maintainer's parallel execution mode: with
	// n >= 2 the host asks the maintainer (if it supports SetWorkers —
	// SSSP and CC do) to partition each repair round's frontier across n
	// workers, re-applying the setting after a heal recompute rebuilds
	// the maintainer. 0 or 1 leaves the maintainer sequential. The
	// worker pool is internal to the maintainer; the host's single-writer
	// apply loop still blocks until each repair completes.
	Workers int
	// CompactThreshold configures the flat adjacency view's overlay
	// compaction for maintainers that keep one (SSSP, CC, BC): the CSR
	// base is rebuilt once staged overlay operations exceed this fraction
	// of its size, bounding read degradation on long update streams. 0
	// keeps the maintainer default (graph.DefaultCompactThreshold); the
	// setting is re-applied after a heal recompute rebuilds the
	// maintainer.
	CompactThreshold float64
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Queue <= 0 {
		o.Queue = 1024
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Trace <= 0 {
		o.Trace = 128
	}
	if o.Offenders <= 0 {
		o.Offenders = 32
	}
	return o
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: host closed")

type submission struct {
	b   graph.Batch
	ack chan struct{}
	at  time.Time     // enqueue time, for the queue-wait histogram
	tid trace.TraceID // request trace ID, propagated into the apply's spans
	// fn, when non-nil, is a state job instead of a batch: the loop
	// flushes everything pending, runs fn (with exclusive maintainer
	// access), and closes ack. This is how checkpoints serialize state at
	// a consistent cut without breaking the single-writer contract.
	fn func()
}

// tracerSetter is the optional Serveable extension the tracing layer
// hooks into: maintainers built on (or mirroring) the fixpoint engine
// accept a span hook, driven from the host's apply loop.
type tracerSetter interface{ SetTracer(fixpoint.Tracer) }

// workersSetter is the optional Serveable extension for the parallel
// execution mode: maintainers that can partition repair rounds across a
// worker pool accept a worker count. Called only from host construction
// and the apply loop (heal re-install), honoring the maintainers'
// single-writer contract.
type workersSetter interface{ SetWorkers(int) }

// compactSetter is the optional Serveable extension for the flat
// adjacency view's compaction threshold (see graph.Flat). Called only
// from host construction and the apply loop (heal re-install), honoring
// the maintainers' single-writer contract.
type compactSetter interface{ SetCompactThreshold(float64) }

// parStatser is the optional Serveable extension exposing cumulative
// parallel-drain counters, snapshotted around each Apply to produce
// per-batch deltas.
type parStatser interface{ ParStats() fixpoint.ParStats }

// hostMetrics are a host's registry handles, resolved once at
// construction so the apply loop only touches lock-free atomics.
type hostMetrics struct {
	updatesReceived *obs.Counter
	updatesApplied  *obs.Counter
	updatesCoal     *obs.Counter
	batchesApplied  *obs.Counter
	affectedTotal   *obs.Counter
	hSecondsTotal   *obs.Counter
	resumeSeconds   *obs.Counter
	inspectedTotal  *obs.Counter

	applyLatency  *obs.Histogram
	batchSize     *obs.Histogram
	queueWait     *obs.Histogram
	coalesceRatio *obs.Histogram

	affRatio     *obs.Gauge
	inspectedPer *obs.Gauge
	scopeSize    *obs.Gauge

	panics   *obs.Counter
	heals    *obs.Counter
	degraded *obs.Gauge

	workersG    *obs.Gauge
	parRounds   *obs.Counter
	seqRounds   *obs.Counter
	utilization *obs.Gauge
	imbalance   *obs.Gauge

	workTotal      *obs.Counter
	changedTotal   *obs.Counter
	boundedRatio   *obs.Histogram
	recomputeRatio *obs.Histogram
	roundsHist     *obs.Histogram
	boundedLast    *obs.Gauge
	offenderCount  *obs.Gauge
	offenderWorst  *obs.Gauge
	offenderMin    *obs.Gauge
}

func newHostMetrics(r *obs.Registry, algo string) hostMetrics {
	l := obs.L("algo", algo)
	return hostMetrics{
		updatesReceived: r.Counter("incgraph_updates_received_total", "Raw unit updates accepted by Submit.", l),
		updatesApplied:  r.Counter("incgraph_updates_applied_total", "Raw unit updates incorporated into the published view.", l),
		updatesCoal:     r.Counter("incgraph_updates_coalesced_total", "Updates cancelled by batch coalescing before reaching the maintainer.", l),
		batchesApplied:  r.Counter("incgraph_batches_applied_total", "Apply calls on the maintainer.", l),
		affectedTotal:   r.Counter("incgraph_affected_total", "Sum of per-apply affected-area measures (|AFF|).", l),
		hSecondsTotal:   r.Counter("incgraph_fixpoint_h_seconds_total", "Wall seconds spent in the initial scope function h.", l),
		resumeSeconds:   r.Counter("incgraph_fixpoint_resume_seconds_total", "Wall seconds spent in the resumed step function.", l),
		inspectedTotal:  r.Counter("incgraph_fixpoint_inspected_total", "Status-variable inspections (reads+updates+pops) by incremental runs.", l),
		applyLatency:    r.Histogram("incgraph_apply_latency_seconds", "Wall time of one maintainer Apply call.", l),
		batchSize:       r.Histogram("incgraph_batch_size_updates", "Raw unit updates merged into one Apply call.", l),
		queueWait:       r.Histogram("incgraph_queue_wait_seconds", "Queue time of the oldest submission merged into each batch.", l),
		coalesceRatio:   r.Histogram("incgraph_coalesce_ratio", "Fraction of each batch cancelled by coalescing (raw-net)/raw.", l),
		affRatio:        r.Gauge("incgraph_aff_per_delta_ratio", "Last apply's |AFF|/|ΔG| — the observed relative-boundedness ratio.", l),
		inspectedPer:    r.Gauge("incgraph_inspected_per_update", "Last apply's fixpoint inspections per net update.", l),
		scopeSize:       r.Gauge("incgraph_fixpoint_scope_size", "Last apply's initial scope size |H⁰|.", l),
		panics:          r.Counter("incgraph_apply_panics_total", "Maintainer panics recovered by the apply loop.", l),
		heals:           r.Counter("incgraph_heals_total", "Successful batch-recompute heals after a recovered panic.", l),
		degraded:        r.Gauge("incgraph_degraded", "1 while the host serves a stale snapshot after a panic.", l),
		workersG:        r.Gauge("incgraph_fixpoint_workers", "Configured worker count for the maintainer's parallel mode (0 = sequential).", l),
		parRounds:       r.Counter("incgraph_par_rounds_total", "Propagation rounds whose frontier was partitioned across workers.", l),
		seqRounds:       r.Counter("incgraph_par_seq_rounds_total", "Rounds run inline because the frontier was below the partition threshold.", l),
		utilization:     r.Gauge("incgraph_worker_utilization", "Last apply's worker-pool utilization, busy/(workers×wall), in [0,1].", l),
		imbalance:       r.Gauge("incgraph_worker_imbalance", "Last partitioned round's work imbalance, busiest×workers/total (1 = even).", l),
		workTotal:       r.Counter("incgraph_work_total", "Ledger work units (touched+|AFF|+‖AFF‖) charged by applies.", l),
		changedTotal:    r.Counter("incgraph_changed_total", "Variables whose value changed across applies (|CHANGED|).", l),
		boundedRatio:    r.Histogram("incgraph_bounded_ratio", "Per-apply work/|ΔG| — the relative-boundedness quotient distribution.", l),
		recomputeRatio:  r.Histogram("incgraph_recompute_ratio", "Per-apply work/recompute-estimate — fraction of a from-scratch run.", l),
		roundsHist:      r.Histogram("incgraph_rounds_to_fixpoint", "Per-apply propagation rounds until the resumed drain reached fixpoint.", l),
		boundedLast:     r.Gauge("incgraph_bounded_ratio_last", "Most recent apply's work/|ΔG| boundedness quotient.", l),
		offenderCount:   r.Gauge("incgraph_offender_count", "Entries retained in the top-K worst-boundedness ring.", l),
		offenderWorst:   r.Gauge("incgraph_offender_worst_ratio", "Highest boundedness quotient ever retained by the offender ring.", l),
		offenderMin:     r.Gauge("incgraph_offender_min_ratio", "Lowest retained offender quotient — the ring's admission threshold.", l),
	}
}

// Host runs one maintainer behind a single-writer apply loop with
// snapshot-consistent concurrent reads.
type Host struct {
	m    Serveable
	algo string
	n    int
	dir  bool
	opt  Options

	// viewMu guards the published view pointer. Readers hold it only for
	// the pointer copy, so they never block the writer for longer than a
	// pointer swap, and never observe a half-applied batch: the swap
	// happens strictly after Apply and Snapshot complete.
	//
	// Upgrade path: because views are immutable and epoch-stamped, the
	// RWMutex can be replaced by an atomic.Pointer[View] (a two-slot
	// epoch/double-buffer scheme degenerates to exactly that when
	// snapshots are fresh allocations, as here). The mutex is kept for
	// now so future views may share mutable buffers with the maintainer
	// under the read lock if snapshot allocation ever shows up in
	// profiles.
	viewMu sync.RWMutex
	view   *View

	statMu sync.Mutex
	stats  Stats

	start     time.Time
	met       hostMetrics
	traces    *obs.Ring[ApplyTrace]
	offenders *obs.TopK[Offender]

	// rec/track/engTracer are the span-tracing handles; all nil/zero when
	// no recorder is configured. engTracer is driven only from the apply
	// loop, matching the engine's single-writer contract.
	rec       *trace.Recorder
	track     int32
	engTracer *trace.EngineTracer

	// quarantined is set (apply loop only) when a heal recompute itself
	// panicked: the maintainer is permanently sidelined, batches are
	// drained and acknowledged without touching it, and reads keep being
	// served from the last published (stale, degraded) view.
	quarantined bool

	// submitMu serializes Submit against Close: Submit sends on in under
	// the read side, Close flips closed under the write side, so no send
	// can race past a completed Close and be silently dropped.
	submitMu sync.RWMutex
	closed   bool
	in       chan submission

	quit chan struct{}
	done chan struct{}
}

// NewHost starts the apply loop for m and publishes its initial view
// (epoch 0: the batch-computed answer on G).
func NewHost(m Serveable, opt Options) *Host {
	g := m.Graph()
	h := &Host{
		m:    m,
		algo: m.Algo(),
		n:    g.NumNodes(),
		dir:  g.Directed(),
		opt:  opt.withDefaults(),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	h.in = make(chan submission, h.opt.Queue)
	h.view = &View{Algo: h.algo, Epoch: h.opt.BaseEpoch, Batches: h.opt.BaseBatches, Data: m.Snapshot()}
	h.stats.Algo = h.algo
	// A recovered host resumes its stream accounting where the durable
	// prefix left off.
	h.stats.Epoch = h.opt.BaseEpoch
	h.stats.UpdatesReceived = h.opt.BaseEpoch
	h.stats.UpdatesApplied = h.opt.BaseEpoch
	h.stats.BatchesApplied = h.opt.BaseBatches
	h.start = time.Now()
	h.met = newHostMetrics(h.opt.Registry, h.algo)
	h.traces = obs.NewRing[ApplyTrace](h.opt.Trace)
	h.offenders = obs.NewTopK[Offender](h.opt.Offenders)
	if h.opt.Workers > 1 {
		if ws, ok := m.(workersSetter); ok {
			ws.SetWorkers(h.opt.Workers)
			h.stats.Workers = h.opt.Workers
			h.met.workersG.Set(float64(h.opt.Workers))
		}
	}
	if h.opt.CompactThreshold > 0 {
		if cs, ok := m.(compactSetter); ok {
			cs.SetCompactThreshold(h.opt.CompactThreshold)
		}
	}
	if h.opt.Recorder != nil {
		h.rec = h.opt.Recorder
		h.track = h.rec.Track(h.algo)
		if ts, ok := m.(tracerSetter); ok {
			// Engine phases render on the same track as the host's batch
			// spans, so h/resume nest inside each apply.
			h.engTracer = trace.NewEngineTracerOnTrack(h.rec, h.track)
			ts.SetTracer(h.engTracer)
		}
	}
	h.opt.Registry.GaugeFunc("incgraph_queue_depth",
		"Received-but-not-yet-applied unit updates.",
		func() float64 { return float64(h.Stats().QueueDepth) },
		obs.L("algo", h.algo))
	// The published view epoch as a gauge: a federating router compares
	// this series across shards to compute the cluster's epoch skew.
	h.opt.Registry.GaugeFunc("incgraph_view_epoch",
		"Raw-update epoch of the currently published view.",
		func() float64 { return float64(h.View().Epoch) },
		obs.L("algo", h.algo))
	h.opt.Registry.Gauge("incgraph_graph_nodes",
		"Node count of the maintained graph at registration.",
		obs.L("algo", h.algo)).Set(float64(h.n))
	go h.loop()
	return h
}

// Registry returns the registry the host's metrics live in.
func (h *Host) Registry() *obs.Registry { return h.opt.Registry }

// RecentApplies returns the retained apply trace events, oldest first.
func (h *Host) RecentApplies() []ApplyTrace { return h.traces.Snapshot() }

// Offenders returns the retained worst-boundedness applies, worst first.
func (h *Host) Offenders() []Offender { return h.offenders.Snapshot() }

// BoundednessReport is the per-host payload of GET /debug/boundedness:
// the cumulative audit ledger, its derived cost-model quotients, and
// quantiles of the per-apply boundedness-ratio distribution. Quantile
// fields are zero until the first audited apply — never NaN, so the
// report always JSON-encodes.
type BoundednessReport struct {
	Algo string `json:"algo"`
	// Ledger is the cumulative audit ledger (Stats.Audit).
	Ledger fixpoint.WorkLedger `json:"ledger"`
	// Work is the cumulative incremental-cost measure touched+|AFF|+‖AFF‖.
	Work int64 `json:"work"`
	// BoundedRatio and RecomputeRatio are the cumulative Work/Δ and
	// Work/recompute-estimate quotients.
	BoundedRatio   float64 `json:"bounded_ratio"`
	RecomputeRatio float64 `json:"recompute_ratio"`
	// RatioP50/P95/Max are quantiles of the per-apply bounded-ratio
	// histogram (≤6.25% relative error; Max is exact).
	RatioP50 float64 `json:"ratio_p50"`
	RatioP95 float64 `json:"ratio_p95"`
	RatioMax float64 `json:"ratio_max"`
	// RoundsP95 is the p95 of per-apply rounds-to-fixpoint.
	RoundsP95 float64 `json:"rounds_p95"`
	// OffenderCount and WorstRatio summarize the top-K offender ring.
	OffenderCount int     `json:"offender_count"`
	WorstRatio    float64 `json:"worst_ratio"`
}

// Boundedness assembles the host's boundedness-audit report.
func (h *Host) Boundedness() BoundednessReport {
	h.statMu.Lock()
	audit := h.stats.Audit
	h.statMu.Unlock()
	rep := BoundednessReport{
		Algo:           h.algo,
		Ledger:         audit,
		Work:           audit.Work(),
		BoundedRatio:   audit.BoundedRatio(),
		RecomputeRatio: audit.RecomputeRatio(),
		OffenderCount:  h.offenders.Len(),
		WorstRatio:     h.offenders.Max(),
	}
	if hist := h.met.boundedRatio; hist.Count() > 0 {
		rep.RatioP50 = hist.Quantile(0.5)
		rep.RatioP95 = hist.Quantile(0.95)
		rep.RatioMax = hist.Quantile(1)
	}
	if hist := h.met.roundsHist; hist.Count() > 0 {
		rep.RoundsP95 = hist.Quantile(0.95)
	}
	return rep
}

// Algo returns the hosted query class name.
func (h *Host) Algo() string { return h.algo }

// NumNodes returns the node count updates are validated against.
func (h *Host) NumNodes() int { return h.n }

// View returns the current published snapshot. The returned value is
// immutable and safe to retain across further updates.
func (h *Host) View() *View {
	h.viewMu.RLock()
	defer h.viewMu.RUnlock()
	return h.view
}

// Stats returns a copy of the serving counters, with the derived fields
// (queue depth, mean latency, uptime) filled in.
func (h *Host) Stats() Stats {
	h.statMu.Lock()
	s := h.stats
	h.statMu.Unlock()
	s.QueueDepth = s.UpdatesReceived - s.UpdatesApplied
	if s.BatchesApplied > 0 {
		s.MeanApplyNanos = s.TotalApplyNanos / int64(s.BatchesApplied)
	}
	if hist := h.met.applyLatency; hist.Count() > 0 {
		// Quantiles come from the same histogram /metrics exposes; the
		// zero-sample guard keeps NaN out of the JSON encoder.
		s.ApplyP50Nanos = int64(hist.Quantile(0.5) * 1e9)
		s.ApplyP95Nanos = int64(hist.Quantile(0.95) * 1e9)
		s.ApplyP99Nanos = int64(hist.Quantile(0.99) * 1e9)
	}
	s.UptimeSeconds = time.Since(h.start).Seconds()
	return s
}

// Submit validates b and enqueues it for the apply loop, returning once
// the batch is accepted (not yet applied). It blocks when the queue is
// full — backpressure, not loss.
func (h *Host) Submit(b graph.Batch) error {
	_, err := h.submit(b, trace.TraceID{}, false)
	return err
}

// SubmitWait is Submit, but also waits until the batch has been applied
// and its view published.
func (h *Host) SubmitWait(b graph.Batch) error {
	ack, err := h.submit(b, trace.TraceID{}, true)
	if err != nil {
		return err
	}
	<-ack
	return nil
}

// SubmitTraced is Submit/SubmitWait with a request trace ID: the ID is
// carried through the queue into the apply that incorporates the batch,
// stamped on its spans, its ApplyTrace entry, and the OnApply hook —
// the handle for following one request through the flight recording.
func (h *Host) SubmitTraced(b graph.Batch, tid trace.TraceID, wait bool) error {
	ack, err := h.submit(b, tid, wait)
	if err != nil {
		return err
	}
	if wait {
		<-ack
	}
	return nil
}

// SubmitTracedAck enqueues like SubmitTraced and returns a channel that
// closes once the batch's view is published, letting callers (the
// durability layer) separate enqueueing from waiting.
func (h *Host) SubmitTracedAck(b graph.Batch, tid trace.TraceID) (<-chan struct{}, error) {
	return h.submit(b, tid, true)
}

// Saturated reports whether the submission queue is full: a Submit now
// would block on backpressure. The serving layer probes it to shed load
// with 503 instead of stalling ingest — advisory, since the queue may
// drain (or fill) between the probe and the submit.
func (h *Host) Saturated() bool {
	return len(h.in) >= cap(h.in)
}

// WithState runs fn against the maintainer from inside the apply loop,
// after every previously accepted submission has been applied — the
// mechanism checkpoints use to serialize state at a consistent cut. It
// blocks until fn returns (or the host is closed) and returns fn's
// error.
func (h *Host) WithState(fn func(m Serveable) error) error {
	ack := make(chan struct{})
	var err error
	job := submission{at: time.Now(), ack: ack, fn: func() { err = fn(h.m) }}
	h.submitMu.RLock()
	if h.closed {
		h.submitMu.RUnlock()
		return ErrClosed
	}
	h.in <- job
	h.submitMu.RUnlock()
	<-ack
	return err
}

func (h *Host) submit(b graph.Batch, tid trace.TraceID, wait bool) (chan struct{}, error) {
	if err := b.Validate(h.n); err != nil {
		return nil, err
	}
	// Copy: the caller may reuse its slice after Submit returns.
	owned := append(graph.Batch(nil), b...)
	var ack chan struct{}
	if wait {
		ack = make(chan struct{})
	}
	h.submitMu.RLock()
	defer h.submitMu.RUnlock()
	if h.closed {
		return nil, ErrClosed
	}
	h.statMu.Lock()
	h.stats.UpdatesReceived += uint64(len(owned))
	h.statMu.Unlock()
	h.met.updatesReceived.Add(float64(len(owned)))
	h.in <- submission{b: owned, ack: ack, at: time.Now(), tid: tid}
	return ack, nil
}

// Close stops accepting submissions, drains and applies everything
// already accepted, publishes the final view, and waits for the apply
// loop to exit. It is idempotent.
func (h *Host) Close() {
	h.submitMu.Lock()
	already := h.closed
	h.closed = true
	h.submitMu.Unlock()
	if !already {
		close(h.quit)
	}
	<-h.done
}

// loop is the single writer: the only goroutine that touches the
// maintainer after NewHost returns.
func (h *Host) loop() {
	defer close(h.done)
	var (
		pending graph.Batch
		acks    []chan struct{}
		oldest  time.Time     // enqueue time of pending's first submission
		pendTID trace.TraceID // first traced submission merged into pending
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(pending) > 0 {
			h.apply(pending, oldest, pendTID)
			pending = nil
			pendTID = trace.TraceID{}
		}
		for _, a := range acks {
			close(a)
		}
		acks = nil
	}
	add := func(s submission) {
		if s.fn != nil {
			// State job: flush so the maintainer reflects every earlier
			// submission (channel order), then hand it the loop's turn.
			flush()
			s.fn()
			if s.ack != nil {
				close(s.ack)
			}
			return
		}
		if len(pending) == 0 {
			oldest = s.at
		}
		pending = append(pending, s.b...)
		if pendTID.IsZero() {
			pendTID = s.tid
		}
		if s.ack != nil {
			acks = append(acks, s.ack)
		}
	}
	for {
		select {
		case s := <-h.in:
			add(s)
			if len(pending) >= h.opt.MaxBatch {
				flush()
			} else if len(pending) > 0 && timer == nil {
				timer = time.NewTimer(h.opt.MaxWait)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		case <-h.quit:
			// Graceful shutdown: drain whatever Submit managed to
			// enqueue before Close flipped the flag, then exit.
			for {
				select {
				case s := <-h.in:
					add(s)
					if len(pending) >= h.opt.MaxBatch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// apply coalesces one accumulated batch, feeds it to the maintainer,
// publishes the new view, and records the apply in counters, histograms,
// gauges, the trace ring, and (when a recorder is configured) the flight
// recording: a root "batch" span containing "coalesce", "apply" — inside
// which the maintainer's own h/resume spans nest — and "publish", plus a
// "queue_wait" span covering the time the oldest merged submission sat
// queued. Called only from loop.
func (h *Host) apply(raw graph.Batch, oldest time.Time, tid trace.TraceID) {
	var root, sub trace.Span
	if h.rec != nil {
		qw := trace.Event{
			Name: "queue_wait", Cat: "serve", Phase: trace.PhaseComplete,
			Track: h.track, TS: h.rec.At(oldest), Dur: h.rec.Now() - h.rec.At(oldest),
			Trace: tid,
		}
		h.rec.Emit(qw)
		root = h.rec.Begin("batch", "serve", h.track)
		root.SetTrace(tid)
		if h.engTracer != nil {
			h.engTracer.SetTraceID(tid)
		}
		sub = h.rec.Begin("coalesce", "serve", h.track)
	}
	net := raw.Net(h.dir)
	if h.rec != nil {
		sub.Arg("raw", int64(len(raw)))
		sub.Arg("net", int64(len(net)))
		sub.End()
		sub = h.rec.Begin("apply", "serve", h.track)
		sub.SetTrace(tid)
	}
	t0 := time.Now()
	queueWait := t0.Sub(oldest).Nanoseconds()
	if h.quarantined {
		if h.rec != nil {
			sub.Arg("quarantined", 1)
			sub.End()
			root.End()
		}
		h.absorbPanic(raw, nil)
		return
	}
	res, data, pval, ok := h.runMaintainer(net)
	lat := time.Since(t0).Nanoseconds()
	if !ok {
		if h.rec != nil {
			sub.Arg("panicked", 1)
			sub.End()
			root.End()
		}
		h.absorbPanic(raw, pval)
		return
	}
	if h.rec != nil {
		sub.Arg("affected", int64(res.Affected))
		sub.End()
		sub = h.rec.Begin("publish", "serve", h.track)
	}

	h.statMu.Lock()
	h.stats.BatchesApplied++
	h.stats.UpdatesApplied += uint64(len(raw))
	h.stats.UpdatesCoalesced += uint64(len(raw) - len(net))
	h.stats.AffectedTotal += int64(res.Affected)
	h.stats.Epoch = h.stats.UpdatesApplied
	h.stats.LastApplyNanos = lat
	h.stats.TotalApplyNanos += lat
	if lat > h.stats.MaxApplyNanos {
		h.stats.MaxApplyNanos = lat
	}
	if res.HasStats {
		h.stats.Fixpoint = h.stats.Fixpoint.Add(res.Stats)
	}
	if res.HasPar {
		h.stats.Par = h.stats.Par.Add(res.Par)
		h.stats.WorkerUtilization = h.stats.Par.Utilization()
	}
	if res.HasLedger {
		h.stats.Audit = h.stats.Audit.Add(res.Ledger)
	}
	epoch, batches := h.stats.Epoch, h.stats.BatchesApplied
	h.statMu.Unlock()

	v := &View{Algo: h.algo, Epoch: epoch, Batches: batches, Data: data}
	h.viewMu.Lock()
	h.view = v
	h.viewMu.Unlock()

	if h.rec != nil {
		sub.Arg("epoch", int64(epoch))
		sub.End()
		root.Arg("raw", int64(len(raw)))
		root.Arg("net", int64(len(net)))
		root.Arg("affected", int64(res.Affected))
		root.Arg("epoch", int64(epoch))
		root.Arg("queue_wait_nanos", queueWait)
		root.End()
	}

	m := &h.met
	m.updatesApplied.Add(float64(len(raw)))
	m.updatesCoal.Add(float64(len(raw) - len(net)))
	m.batchesApplied.Inc()
	m.affectedTotal.Add(float64(res.Affected))
	m.applyLatency.Observe(float64(lat) / 1e9)
	m.batchSize.Observe(float64(len(raw)))
	m.queueWait.Observe(float64(queueWait) / 1e9)
	m.coalesceRatio.Observe(float64(len(raw)-len(net)) / float64(len(raw)))
	if len(net) > 0 {
		// The live boundedness ratio: the paper's Theorem 3 bounds the
		// incremental cost by a function of |ΔG| and |AFF|, so a ratio
		// that stays flat as the graph grows is boundedness observed.
		m.affRatio.Set(float64(res.Affected) / float64(len(net)))
	}
	tr := ApplyTrace{
		Algo:           h.algo,
		Epoch:          epoch,
		Batch:          batches,
		RawUpdates:     len(raw),
		NetUpdates:     len(net),
		Affected:       res.Affected,
		QueueWaitNanos: queueWait,
		ApplyNanos:     lat,
		UnixNanos:      t0.UnixNano() + lat,
	}
	if !tid.IsZero() {
		tr.TraceID = tid.String()
	}
	if res.HasStats {
		m.hSecondsTotal.Add(res.Stats.HSeconds)
		m.resumeSeconds.Add(res.Stats.ResumeSeconds)
		m.inspectedTotal.Add(float64(res.Stats.Inspected()))
		m.scopeSize.Set(float64(res.Stats.ScopeSize))
		if len(net) > 0 {
			m.inspectedPer.Set(float64(res.Stats.Inspected()) / float64(len(net)))
		}
		tr.HNanos = int64(res.Stats.HSeconds * 1e9)
		tr.ResumeNanos = int64(res.Stats.ResumeSeconds * 1e9)
		tr.Inspected = res.Stats.Inspected()
	}
	if res.HasPar {
		m.parRounds.Add(float64(res.Par.ParRounds))
		m.seqRounds.Add(float64(res.Par.SeqRounds))
		m.utilization.Set(res.Par.Utilization())
		if res.Par.ParRounds > 0 {
			m.imbalance.Set(res.Par.LastImbalance)
		}
		tr.ParRounds = res.Par.ParRounds
	}
	if res.HasLedger {
		led := res.Ledger
		m.workTotal.Add(float64(led.Work()))
		m.changedTotal.Add(float64(led.Changed))
		m.roundsHist.Observe(float64(led.Rounds))
		if led.RecomputeEst > 0 {
			m.recomputeRatio.Observe(led.RecomputeRatio())
		}
		tr.Work = led.Work()
		tr.Changed = led.Changed
		tr.Aff = led.Aff
		tr.AffEdges = led.AffEdges
		tr.Rounds = led.Rounds
		if led.Delta > 0 {
			// The audited boundedness quotient: one histogram sample per
			// apply, the last value on a gauge, and a top-K offer so the
			// worst applies survive with their trace IDs attached.
			ratio := led.BoundedRatio()
			m.boundedRatio.Observe(ratio)
			m.boundedLast.Set(ratio)
			tr.BoundedRatio = ratio
			off := Offender{
				Algo: h.algo, Epoch: epoch, Batch: batches,
				BoundedRatio: ratio, Work: led.Work(), Delta: led.Delta,
				ApplyNanos: lat, UnixNanos: tr.UnixNanos, TraceID: tr.TraceID,
			}
			if h.offenders.Offer(ratio, off) {
				m.offenderCount.Set(float64(h.offenders.Len()))
				m.offenderWorst.Set(h.offenders.Max())
				m.offenderMin.Set(h.offenders.Min())
			}
		}
	}
	h.traces.Push(tr)
	if h.opt.OnApply != nil {
		h.opt.OnApply(tr)
	}
}

// runMaintainer is the only place the apply loop touches the maintainer
// for a batch: the BeforeApply hook, Apply, and Snapshot, with a recover
// fence so a buggy (or fault-injected) maintainer cannot take the host —
// or the process — down. ok is false exactly when a panic was recovered,
// with its value in pval.
func (h *Host) runMaintainer(net graph.Batch) (res ApplyResult, data any, pval any, ok bool) {
	defer func() {
		if p := recover(); p != nil {
			pval = p
			ok = false
		}
	}()
	if h.opt.BeforeApply != nil {
		h.opt.BeforeApply(h.algo, net)
	}
	res = h.m.Apply(net)
	data = h.m.Snapshot()
	return res, data, nil, true
}

// absorbPanic handles a recovered maintainer panic (pval non-nil), or a
// batch arriving while the host is quarantined (pval nil). The raw
// updates are counted as consumed — the maintainer's graph is in an
// unknown state with respect to them, and queue accounting must not
// wedge — the last good view is republished with the degraded flag so
// readers get stale answers instead of 500s, and then the host heals by
// batch recompute over the current graph. A panic during the heal itself
// quarantines the host permanently: it keeps draining, acknowledging,
// and serving the stale view, but never touches the maintainer again.
// Called only from the apply loop.
func (h *Host) absorbPanic(raw graph.Batch, pval any) {
	panicked := pval != nil
	if panicked {
		h.met.panics.Inc()
		if h.rec != nil {
			ev := trace.Event{
				Name: "panic", Cat: "serve", Phase: trace.PhaseInstant,
				Track: h.track, TS: h.rec.Now(),
			}
			ev.AddArg("value", int64(len(fmt.Sprint(pval)))) // length only: arg values are integers
			h.rec.Emit(ev)
		}
	}

	h.statMu.Lock()
	h.stats.UpdatesApplied += uint64(len(raw))
	h.stats.BatchesApplied++
	if panicked {
		h.stats.Panics++
	}
	h.stats.Degraded = true
	batches := h.stats.BatchesApplied
	h.statMu.Unlock()
	h.met.degraded.Set(1)
	h.met.updatesApplied.Add(float64(len(raw)))
	h.met.batchesApplied.Inc()

	// Republish the last good data under the degraded flag. The epoch is
	// the stale view's: it honestly describes which prefix the data
	// answers for.
	h.viewMu.Lock()
	old := h.view
	h.view = &View{Algo: h.algo, Epoch: old.Epoch, Batches: batches, Degraded: true, Data: old.Data}
	h.viewMu.Unlock()

	if h.quarantined {
		return
	}

	// Heal: batch recompute over the graph as the panic left it. The
	// recompute result reflects every update that reached the graph —
	// including any partially staged batch — so the healed view is the
	// correct answer for the current graph state.
	var span trace.Span
	if h.rec != nil {
		span = h.rec.Begin("heal", "serve", h.track)
	}
	healed := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		h.m.Recompute()
		return true
	}()
	var data any
	if healed {
		// Recompute may have rebuilt the inner maintainer: re-install the
		// engine tracer and take the fresh snapshot, both under the same
		// fence.
		healed = func() (ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			if h.engTracer != nil {
				if ts, tok := h.m.(tracerSetter); tok {
					ts.SetTracer(h.engTracer)
				}
			}
			// Likewise the parallel mode: heal-by-recompute rebuilds the
			// inner maintainer, dropping its worker pool.
			if h.opt.Workers > 1 {
				if ws, wok := h.m.(workersSetter); wok {
					ws.SetWorkers(h.opt.Workers)
				}
			}
			// And the flat view's compaction threshold, for the same reason.
			if h.opt.CompactThreshold > 0 {
				if cs, cok := h.m.(compactSetter); cok {
					cs.SetCompactThreshold(h.opt.CompactThreshold)
				}
			}
			data = h.m.Snapshot()
			return true
		}()
	}
	if h.rec != nil {
		span.Arg("healed", boolArg(healed))
		span.End()
	}
	if !healed {
		h.quarantined = true
		return
	}

	h.statMu.Lock()
	h.stats.Heals++
	h.stats.Degraded = false
	h.stats.Epoch = h.stats.UpdatesApplied
	epoch, batches := h.stats.Epoch, h.stats.BatchesApplied
	h.statMu.Unlock()
	h.met.heals.Inc()
	h.met.degraded.Set(0)

	v := &View{Algo: h.algo, Epoch: epoch, Batches: batches, Data: data}
	h.viewMu.Lock()
	h.view = v
	h.viewMu.Unlock()
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
