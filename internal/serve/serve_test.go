package serve

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/sssp"
)

// makeStream builds a deterministic update stream that deliberately
// contains churn: adjacent insert/delete pairs of the same edge, which
// the host's coalescer must cancel before they reach the maintainer.
func makeStream(seed int64, nodes, total int) graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	b := make(graph.Batch, 0, total)
	for len(b) < total {
		u := graph.NodeID(rng.Intn(nodes))
		v := graph.NodeID(rng.Intn(nodes))
		if u == v {
			continue
		}
		w := int64(rng.Intn(9) + 1)
		switch rng.Intn(4) {
		case 0: // churn pair
			if len(b)+2 > total {
				continue
			}
			b = append(b,
				graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: w},
				graph.Update{Kind: graph.DeleteEdge, From: u, To: v})
		case 1:
			b = append(b, graph.Update{Kind: graph.DeleteEdge, From: u, To: v})
		default:
			b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: w})
		}
	}
	return b
}

// TestLoadConcurrentReaders is the subsystem's load test: an ingest
// goroutine streams >1000 updates through a hosted IncSSSP while
// concurrent readers hammer View. Every observed view must be the exact
// answer on some applied prefix of the stream — verified afterwards by
// replaying each observed prefix and recomputing with batch Dijkstra.
// Run under -race this also proves readers never touch maintainer state.
func TestLoadConcurrentReaders(t *testing.T) {
	leakCheck(t)
	const (
		nodes   = 200
		total   = 1500
		readers = 6
		chunk   = 5
	)
	g := gen.Synthetic(7, nodes, 6, true)
	base := g.Clone()
	stream := makeStream(11, nodes, total)

	h := NewHost(SSSP(sssp.NewInc(g, 0), 0), Options{MaxBatch: 64, MaxWait: time.Millisecond})

	type obs struct {
		epoch uint64
		dist  []int64
	}
	observed := make([][]obs, readers)
	stop := make(chan struct{})
	var wg, ready sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		ready.Add(1)
		go func(r int) {
			defer wg.Done()
			first := true
			last := uint64(0)
			hasLast := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := h.View()
				if v.Epoch < last {
					t.Errorf("reader %d: view epoch went backwards: %d after %d", r, v.Epoch, last)
					return
				}
				if !hasLast || v.Epoch != last {
					observed[r] = append(observed[r], obs{v.Epoch, v.Data.(SSSPView).Dist})
					last, hasLast = v.Epoch, true
				}
				if first {
					first = false
					ready.Done()
				}
			}
		}(r)
	}
	// Every reader must have observed at least one view before ingest
	// begins, or a fast ingest can outrun reader goroutine startup.
	ready.Wait()

	for i := 0; i < len(stream); i += chunk {
		end := i + chunk
		if end > len(stream) {
			end = len(stream)
		}
		if err := h.Submit(stream[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	h.Close() // drains the queue and publishes the final view
	close(stop)
	wg.Wait()

	if v := h.View(); v.Epoch != total {
		t.Fatalf("final epoch %d, want %d", v.Epoch, total)
	}
	st := h.Stats()
	if st.UpdatesApplied != total || st.QueueDepth != 0 {
		t.Fatalf("stats: applied %d depth %d, want %d and 0", st.UpdatesApplied, st.QueueDepth, total)
	}
	if st.UpdatesCoalesced == 0 {
		t.Fatal("coalescer never fired on a churn-heavy stream")
	}
	if st.BatchesApplied == 0 || st.BatchesApplied > uint64(total) {
		t.Fatalf("implausible batch count %d", st.BatchesApplied)
	}

	// Prefix-consistency: recompute the answer for every distinct
	// observed epoch by replaying the stream prefix and running batch
	// Dijkstra, then check each observation against it.
	epochSet := map[uint64]bool{}
	for r := range observed {
		for _, o := range observed[r] {
			epochSet[o.epoch] = true
		}
	}
	epochs := make([]uint64, 0, len(epochSet))
	for e := range epochSet {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	expect := make(map[uint64][]int64, len(epochs))
	replay := base.Clone()
	cursor := uint64(0)
	for _, e := range epochs {
		replay.Apply(stream[cursor:e])
		cursor = e
		expect[e] = sssp.Dijkstra(replay, 0)
	}
	checked := 0
	for r := range observed {
		for _, o := range observed[r] {
			if !reflect.DeepEqual(o.dist, expect[o.epoch]) {
				t.Fatalf("reader %d observed a view at epoch %d inconsistent with that prefix", r, o.epoch)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("readers observed nothing")
	}
	t.Logf("checked %d observations over %d distinct epochs; coalesced %d of %d updates in %d batches",
		checked, len(epochs), st.UpdatesCoalesced, total, st.BatchesApplied)
}

// A churn pair inside one submission must be cancelled by the coalescer
// and still leave the maintainer's answer exactly right.
func TestCoalescingCancelsChurn(t *testing.T) {
	g := graph.New(4, false)
	g.InsertEdge(0, 1, 1)
	// MaxBatch equals the submission size, so the flush is size-triggered
	// and deterministic (MaxWait never fires).
	h := NewHost(CC(cc.NewInc(g)), Options{MaxBatch: 4, MaxWait: time.Hour})
	b := graph.Batch{
		{Kind: graph.InsertEdge, From: 1, To: 2, W: 1},
		{Kind: graph.InsertEdge, From: 2, To: 3, W: 1},
		{Kind: graph.DeleteEdge, From: 2, To: 3},
		{Kind: graph.InsertEdge, From: 1, To: 2, W: 1}, // duplicate
	}
	if err := h.SubmitWait(b); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.UpdatesCoalesced == 0 {
		t.Fatalf("no updates coalesced: %+v", st)
	}
	if st.BatchesApplied != 1 || st.UpdatesApplied != 4 {
		t.Fatalf("batches %d applied %d, want 1 and 4", st.BatchesApplied, st.UpdatesApplied)
	}
	labels := h.View().Data.(CCView).Labels
	want := []int64{0, 0, 0, 3} // {0,1,2} connected, 3 isolated again
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels %v, want %v", labels, want)
	}
	h.Close()
}

// Micro-batches submitted faster than the latency budget must merge into
// fewer Apply calls.
func TestBatchingMergesSubmissions(t *testing.T) {
	g := graph.New(10, false)
	h := NewHost(CC(cc.NewInc(g)), Options{MaxBatch: 1 << 20, MaxWait: 50 * time.Millisecond})
	for i := 0; i < 9; i++ {
		if err := h.Submit(graph.Batch{{Kind: graph.InsertEdge, From: graph.NodeID(i), To: graph.NodeID(i + 1), W: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()
	st := h.Stats()
	if st.UpdatesApplied != 9 {
		t.Fatalf("applied %d, want 9", st.UpdatesApplied)
	}
	if st.BatchesApplied >= 9 {
		t.Fatalf("9 submissions produced %d batches; batching never merged", st.BatchesApplied)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	g := graph.New(50, true)
	h := NewHost(SSSP(sssp.NewInc(g, 0), 0), Options{MaxBatch: 8, MaxWait: time.Hour})
	stream := makeStream(3, 50, 200)
	for i := 0; i < len(stream); i += 4 {
		if err := h.Submit(stream[i : i+4]); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()
	if v := h.View(); v.Epoch != uint64(len(stream)) {
		t.Fatalf("close did not drain: epoch %d, want %d", v.Epoch, len(stream))
	}
	if err := h.Submit(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 1}}); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	h.Close() // idempotent
}

func TestSubmitValidates(t *testing.T) {
	g := graph.New(5, true)
	h := NewHost(SSSP(sssp.NewInc(g, 0), 0), Options{})
	defer h.Close()
	if err := h.Submit(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 99, W: 1}}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if err := h.Submit(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// Published views must be immutable: applying more updates must not
// change data already handed to readers.
func TestViewImmutability(t *testing.T) {
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 5)
	h := NewHost(SSSP(sssp.NewInc(g, 0), 0), Options{})
	defer h.Close()
	before := h.View()
	snap := append([]int64(nil), before.Data.(SSSPView).Dist...)
	if err := h.SubmitWait(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 2, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Data.(SSSPView).Dist, snap) {
		t.Fatal("old view mutated by a later apply")
	}
	if h.View().Epoch != 1 {
		t.Fatalf("epoch %d, want 1", h.View().Epoch)
	}
}
