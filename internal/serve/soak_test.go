package serve

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/graph"
	"incgraph/internal/sssp"
)

// TestAuditSoak is the nightly endurance run: a sustained random
// update stream against SSSP and CC hosts for INCGRAPH_SOAK_SECONDS
// seconds (skipped when unset), continuously asserting the audit
// plane's invariants — ledgers accumulate monotonically, every derived
// quotient stays finite, the offender ring stays sorted — and checking
// the goroutine count returns to its baseline afterwards, so a slow
// leak in the apply loop cannot hide behind short test runs.
func TestAuditSoak(t *testing.T) {
	env := os.Getenv("INCGRAPH_SOAK_SECONDS")
	if env == "" {
		t.Skip("set INCGRAPH_SOAK_SECONDS to run the audit soak")
	}
	secs, err := strconv.Atoi(env)
	if err != nil || secs <= 0 {
		t.Fatalf("INCGRAPH_SOAK_SECONDS=%q: want a positive integer", env)
	}

	before := runtime.NumGoroutine()
	const n = 2000
	build := func(directed bool) *graph.Graph {
		g := graph.New(n, directed)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 4*n; i++ {
			g.InsertEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), int64(1+rng.Intn(8)))
		}
		return g
	}
	hosts := map[string]*Host{
		"sssp": NewHost(SSSP(sssp.NewInc(build(false), 0), 0), Options{}),
		"cc":   NewHost(CC(cc.NewInc(build(false))), Options{}),
	}

	rng := rand.New(rand.NewSource(11))
	randomBatch := func() graph.Batch {
		b := make(graph.Batch, 1+rng.Intn(8))
		for i := range b {
			u := graph.Update{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n)), W: int64(1 + rng.Intn(8))}
			u.Kind = graph.InsertEdge
			if rng.Intn(3) == 0 {
				u.Kind = graph.DeleteEdge
			}
			b[i] = u
		}
		return b
	}

	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	var applies int64
	prevRuns := map[string]int64{}
	for time.Now().Before(deadline) {
		for name, h := range hosts {
			if err := h.SubmitWait(randomBatch()); err != nil {
				t.Fatalf("%s: apply %d: %v", name, applies, err)
			}
			applies++
			if applies%512 != 0 {
				continue
			}
			// Periodic invariant sweep, cheap enough to not skew the soak.
			st := h.Stats()
			if st.Audit.Runs <= prevRuns[name] {
				t.Fatalf("%s: Audit.Runs did not advance: %d -> %d", name, prevRuns[name], st.Audit.Runs)
			}
			prevRuns[name] = st.Audit.Runs
			rep := h.Boundedness()
			for field, v := range map[string]float64{
				"bounded": rep.BoundedRatio, "recompute": rep.RecomputeRatio,
				"p50": rep.RatioP50, "p95": rep.RatioP95, "max": rep.RatioMax,
				"worst": rep.WorstRatio,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: report %s = %v after %d applies", name, field, v, applies)
				}
			}
			offs := h.Offenders()
			for i := 1; i < len(offs); i++ {
				if offs[i-1].BoundedRatio < offs[i].BoundedRatio {
					t.Fatalf("%s: offender ring unsorted at %d", name, i)
				}
			}
		}
	}
	t.Logf("soak: %d applies over %ds", applies, secs)

	for name, h := range hosts {
		if st := h.Stats(); st.Audit.Runs == 0 || st.Audit.Work() <= 0 {
			t.Errorf("%s: audit ledger empty after soak: %+v", name, st.Audit)
		}
		h.Close()
	}
	waitForGoroutines(t, before)
}

