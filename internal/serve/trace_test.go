package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"incgraph/internal/trace"
)

// traceDump is the decoded subset of a /debug/trace dump the tests
// inspect.
type traceDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func getTrace(t *testing.T, base string) traceDump {
	t.Helper()
	resp, err := http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(body) {
		t.Fatalf("/debug/trace is not valid JSON: %.200s", body)
	}
	var dump traceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	return dump
}

func TestUpdateTraceEndToEnd(t *testing.T) {
	// One traced update, end to end: the traceparent header's trace ID
	// must come back in the response, be stamped on the batch and engine
	// spans in the flight recording, and the recording must carry the
	// h-phase and resume spans plus per-round events of the applied batch.
	_, ts := newTestService(t)
	const tidHex = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest("POST", ts.URL+"/update?wait=1",
		strings.NewReader("+ 2 3 1\n+ 3 4 1\n+ 4 5 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+tidHex+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /update status %d", resp.StatusCode)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, tidHex) {
		t.Errorf("response traceparent %q does not carry trace ID %s", tp, tidHex)
	}
	var res UpdateResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.TraceID != tidHex {
		t.Errorf("UpdateResult.TraceID = %q, want %q", res.TraceID, tidHex)
	}

	dump := getTrace(t, ts.URL)
	seen := map[string]int{}
	traced := map[string]bool{}
	for _, ev := range dump.TraceEvents {
		seen[ev.Name]++
		if ev.Args["traceparent_id"] == tidHex {
			traced[ev.Name] = true
		}
	}
	for _, name := range []string{"batch", "coalesce", "apply", "publish", "h", "resume", "round", "inc_run"} {
		if seen[name] == 0 {
			t.Errorf("no %q events in /debug/trace; saw %v", name, seen)
		}
	}
	// The trace ID must reach both the serving-layer root span and the
	// engine phases inside the apply.
	for _, name := range []string{"batch", "apply", "h", "resume"} {
		if !traced[name] {
			t.Errorf("%q span not stamped with the request trace ID", name)
		}
	}

	// The flight recording must round-trip through the exporter as a
	// loadable document: metadata first, then events.
	if dump.TraceEvents[0].Name != "process_name" {
		t.Errorf("first event %q, want process_name metadata", dump.TraceEvents[0].Name)
	}
}

func TestUpdateWithoutTraceparentMintsID(t *testing.T) {
	_, ts := newTestService(t)
	resp, err := http.Post(ts.URL+"/update?algo=cc&wait=1", "text/plain", strings.NewReader("+ 3 4 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res UpdateResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.TraceID) != 32 || res.TraceID == strings.Repeat("0", 32) {
		t.Errorf("minted trace ID %q, want 32 hex chars non-zero", res.TraceID)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, res.TraceID) {
		t.Errorf("response traceparent %q does not carry minted ID %s", tp, res.TraceID)
	}
}

func TestStatsQuantiles(t *testing.T) {
	_, ts := newTestService(t)
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/update?wait=1", "text/plain",
			strings.NewReader(fmt.Sprintf("+ %d %d 1\n", i%5, i%5+1)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var stats map[string]Stats
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats status %d", code)
	}
	for _, algo := range []string{"cc", "sssp"} {
		s := stats[algo]
		if s.ApplyP50Nanos <= 0 || s.ApplyP95Nanos <= 0 || s.ApplyP99Nanos <= 0 {
			t.Errorf("%s quantiles %d/%d/%d, want all > 0", algo,
				s.ApplyP50Nanos, s.ApplyP95Nanos, s.ApplyP99Nanos)
		}
		if s.ApplyP50Nanos > s.ApplyP99Nanos {
			t.Errorf("%s p50 %d > p99 %d", algo, s.ApplyP50Nanos, s.ApplyP99Nanos)
		}
	}
}

func TestDebugTraceWhileApplying(t *testing.T) {
	// Exercised under -race in CI: concurrent dumps of the flight
	// recording while applies are in flight must be safe and always
	// produce valid JSON.
	_, ts := newTestService(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(ts.URL+"/update?wait=1", "text/plain",
					strings.NewReader(fmt.Sprintf("+ %d %d 1\n", (w+i)%5, (w+i)%5+1)))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				getTrace(t, ts.URL)
			}
		}()
	}
	wg.Wait()
	if dump := getTrace(t, ts.URL); len(dump.TraceEvents) == 0 {
		t.Error("empty flight recording after concurrent applies")
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The middleware must have resolved the incoming traceparent into
		// the request context before the handler runs.
		if _, ok := trace.IDFromContext(r.Context()); !ok {
			t.Error("no trace ID in request context")
		}
		w.WriteHeader(http.StatusTeapot)
	})
	ts := httptest.NewServer(AccessLog(logger, inner))
	defer ts.Close()

	const tidHex = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", ts.URL+"/query/cc", nil)
	req.Header.Set("traceparent", "00-"+tidHex+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	line := buf.String()
	mu.Unlock()
	for _, want := range []string{"method=GET", "path=/query/cc", "status=418", "trace=" + tidHex, "duration="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line %q missing %q", line, want)
		}
	}
}

// lockedWriter serializes concurrent handler writes into the shared test
// buffer.
type lockedWriter struct {
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
