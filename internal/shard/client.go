package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/obs"
	"incgraph/internal/resilience"
	"incgraph/internal/serve"
	"incgraph/internal/trace"
)

// Client is the router's HTTP handle on one shard daemon (or replica).
// It speaks the serve.Service API plus the shard-side endpoints mounted
// by MountShardAPI, translating wire shapes back into values the
// exchange layer consumes. A Client is safe for concurrent use.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:9001".
	Base string
	// HTTP is the underlying client; nil means a default whose transport
	// bounds each connection phase (dial, TLS handshake, waiting for
	// response headers) while leaving total request latency to the
	// caller's context deadline.
	HTTP *http.Client
}

// defaultShardTransport bounds the phases of a request that can hang on
// a dead or partitioned peer — connecting, TLS, and waiting for the
// first response byte — without imposing a whole-request ceiling. A
// flat client timeout conflates "slow peer" with "large response" and
// fights the deadline-budget plane: total latency belongs to the
// caller's context (propagated across hops via X-Incgraph-Deadline),
// not to the transport.
var defaultShardTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   2 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	TLSHandshakeTimeout:   2 * time.Second,
	ResponseHeaderTimeout: 15 * time.Second,
	IdleConnTimeout:       90 * time.Second,
	MaxIdleConnsPerHost:   16,
}

// defaultShardClient carries the phase-bounded transport and no
// whole-request timeout; callers that want one set a context deadline.
var defaultShardClient = &http.Client{Transport: defaultShardTransport}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultShardClient
}

// StatusError is a non-2xx shard response, preserving the code so the
// router can distinguish shedding (503) from brokenness.
type StatusError struct {
	// Code is the HTTP status the shard returned.
	Code int
	// Body is the (truncated) response body, usually the error text.
	Body string
	// RetryAfter is the server's Retry-After hint, when the response
	// carried a parseable one (503 sheds do); zero otherwise.
	RetryAfter time.Duration
}

// Error renders the status and body.
func (e *StatusError) Error() string { return fmt.Sprintf("status %d: %s", e.Code, e.Body) }

// IsShed reports whether err is a shard telling us to back off (503).
func IsShed(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusServiceUnavailable
}

// RetryAfterHint extracts a server-directed minimum retry delay from a
// shard error: the Retry-After a shed (or any hinted response) carried.
// It is the RetryOptions.RetryAfter plumbing for resilience.Do.
func RetryAfterHint(err error) (time.Duration, bool) {
	se, ok := err.(*StatusError)
	if !ok || se.RetryAfter <= 0 {
		return 0, false
	}
	return se.RetryAfter, true
}

// newStatusError builds a StatusError from a drained non-2xx response,
// capturing the Retry-After hint (delta-seconds form) when present.
func newStatusError(resp *http.Response) *StatusError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	se := &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// newRequest builds a request carrying the W3C traceparent header when
// ctx holds a trace ID, so a router's fan-out requests join the same
// trace on every shard they touch, and the X-Incgraph-Deadline budget
// header when ctx has a deadline, so the shard spends from the same
// patience the router was given.
func (c *Client) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if tid, ok := trace.IDFromContext(ctx); ok {
		req.Header.Set("traceparent", trace.FormatTraceparent(tid, trace.NewSpanID()))
	}
	resilience.PropagateDeadline(req)
	return req, nil
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return newStatusError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz probes the daemon's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := c.newRequest(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Info fetches the daemon's shard identity.
func (c *Client) Info(ctx context.Context) (Info, error) {
	var info Info
	req, err := c.newRequest(ctx, http.MethodGet, c.Base+"/shard/info", nil)
	if err != nil {
		return info, err
	}
	err = c.do(req, &info)
	return info, err
}

// UpdateOutcome is what one shard said about its sub-batch.
type UpdateOutcome struct {
	// Accepted is the number of unit updates the shard accepted.
	Accepted int `json:"accepted"`
	// Applied reports whether the shard confirmed application (wait=1).
	Applied bool `json:"applied"`
	// Epochs maps the shard's algos to their post-request view epochs.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
}

// Update posts a sub-batch to the shard in the binary batch format.
// wait asks the shard to confirm application (and WAL logging, when the
// shard is durable) before responding.
func (c *Client) Update(ctx context.Context, b graph.Batch, wait bool) (UpdateOutcome, error) {
	var out UpdateOutcome
	var buf bytes.Buffer
	if err := graph.WriteBatch(&buf, b); err != nil {
		return out, err
	}
	url := c.Base + "/update"
	if wait {
		url += "?wait=1"
	}
	req, err := c.newRequest(ctx, http.MethodPost, url, &buf)
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	err = c.do(req, &out)
	return out, err
}

// wireView mirrors the serve.View JSON with the data left raw so the
// caller can decode the algo-specific shape.
type wireView struct {
	Algo     string          `json:"algo"`
	Epoch    uint64          `json:"epoch"`
	Degraded bool            `json:"degraded"`
	Data     json.RawMessage `json:"data"`
}

// ShardView is one shard's published answer vector plus the metadata
// the exchange needs.
type ShardView struct {
	// Epoch is the stream position the vector answers for.
	Epoch uint64
	// Degraded reports a stale view republished after a maintainer
	// panic; the router surfaces it rather than hiding it.
	Degraded bool
	// Src is the SSSP source (sssp views only).
	Src graph.NodeID
	// Values is the dense vector: distances for sssp, labels for cc.
	Values []int64
}

// View fetches the shard's published view for algo ("sssp" or "cc") and
// extracts its value vector.
func (c *Client) View(ctx context.Context, algo string) (ShardView, error) {
	var sv ShardView
	req, err := c.newRequest(ctx, http.MethodGet, c.Base+"/query/"+algo, nil)
	if err != nil {
		return sv, err
	}
	var wv wireView
	if err := c.do(req, &wv); err != nil {
		return sv, err
	}
	sv.Epoch, sv.Degraded = wv.Epoch, wv.Degraded
	switch algo {
	case "sssp":
		var d struct {
			Src  graph.NodeID `json:"src"`
			Dist []int64      `json:"dist"`
		}
		if err := json.Unmarshal(wv.Data, &d); err != nil {
			return sv, fmt.Errorf("shard: sssp view: %w", err)
		}
		sv.Src, sv.Values = d.Src, d.Dist
	case "cc":
		var d struct {
			Labels []int64 `json:"labels"`
		}
		if err := json.Unmarshal(wv.Data, &d); err != nil {
			return sv, fmt.Errorf("shard: cc view: %w", err)
		}
		sv.Values = d.Labels
	default:
		return sv, fmt.Errorf("shard: no view decoder for algo %q", algo)
	}
	return sv, nil
}

// Eval runs one seeded local evaluation round on the shard. seeds are
// sparse [vertex, value] pairs; the response vector is dense.
func (c *Client) Eval(ctx context.Context, algo string, seeds [][2]int64) (EvalResponse, error) {
	var out EvalResponse
	body, err := json.Marshal(EvalRequest{Seeds: seeds})
	if err != nil {
		return out, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, c.Base+"/shard/eval/"+algo, bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	err = c.do(req, &out)
	return out, err
}

// MetricsSnapshot fetches the member's /metrics.json registry dump —
// the federation source, with raw histogram buckets intact.
func (c *Client) MetricsSnapshot(ctx context.Context) ([]obs.FamilySnapshot, error) {
	var fams []obs.FamilySnapshot
	req, err := c.newRequest(ctx, http.MethodGet, c.Base+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	err = c.do(req, &fams)
	return fams, err
}

// Offenders fetches the member's /debug/offenders dump: per-algo top-K
// worst-boundedness applies, the per-process source of the router's
// cluster offender merge.
func (c *Client) Offenders(ctx context.Context) (map[string][]serve.Offender, error) {
	var offs map[string][]serve.Offender
	req, err := c.newRequest(ctx, http.MethodGet, c.Base+"/debug/offenders", nil)
	if err != nil {
		return nil, err
	}
	err = c.do(req, &offs)
	return offs, err
}

// TraceDump fetches the member's raw /debug/trace document for merging
// into a cluster timeline. n limits the dump to the newest n events
// (0 = everything the member retained).
func (c *Client) TraceDump(ctx context.Context, n int) ([]byte, error) {
	url := c.Base + "/debug/trace"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	req, err := c.newRequest(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, newStatusError(resp)
	}
	return io.ReadAll(resp.Body)
}

// ReplicaStatus fetches a replica's /replica/status lag document.
func (c *Client) ReplicaStatus(ctx context.Context) (FollowerStatus, error) {
	var st FollowerStatus
	req, err := c.newRequest(ctx, http.MethodGet, c.Base+"/replica/status", nil)
	if err != nil {
		return st, err
	}
	err = c.do(req, &st)
	return st, err
}

// Promote asks a warm replica to seal its follower loop and begin
// serving as the shard primary. The response reports the promoted
// epoch per algo.
func (c *Client) Promote(ctx context.Context) (map[string]uint64, error) {
	req, err := c.newRequest(ctx, http.MethodPost, c.Base+"/replica/promote", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Epochs map[string]uint64 `json:"epochs"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Epochs, nil
}
