package shard

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"incgraph/internal/obs"
	"incgraph/internal/serve"
	"incgraph/internal/trace"
)

// errBadTraceFilter rejects an unparseable ?trace= filter.
var errBadTraceFilter = errors.New("shard: trace filter must be a 32-hex trace id or a traceparent value")

// Cluster observability: the router is the one process that knows every
// member, so it is where per-process telemetry becomes a cluster story.
// Each member keeps its own flight recorder and metrics registry; the
// endpoints here scrape them on demand — no background collectors, no
// retained copies — and merge: trace dumps into one Perfetto timeline,
// registry snapshots into one federated exposition with identity labels
// and cluster rollups.

// member is one scrapeable process in the cluster: the active primary of
// each slot plus any warm replica.
type member struct {
	// Name is the merged-timeline process name ("shard-0", "replica-0").
	Name string `json:"name"`
	// Role is "primary" or "replica".
	Role string `json:"role"`
	// Shard is the slot the member serves.
	Shard int `json:"shard"`
	// Addr is the member's base URL.
	Addr string `json:"addr"`
}

// members enumerates the cluster's scrapeable processes from the routing
// table: slot i's active address is "shard-i"; the non-active member, if
// configured, is "replica-i". After a promotion the names follow the
// roles, not the original process identities — "shard-i" is always who
// serves reads and writes right now.
func (rt *Router) members() []member {
	var ms []member
	for _, s := range rt.table.Snapshot() {
		if s.Active != "" {
			ms = append(ms, member{
				Name:  "shard-" + strconv.Itoa(s.Shard),
				Role:  "primary",
				Shard: s.Shard,
				Addr:  s.Active,
			})
		}
		if s.Replica != "" && s.Replica != s.Active {
			ms = append(ms, member{
				Name:  "replica-" + strconv.Itoa(s.Shard),
				Role:  "replica",
				Shard: s.Shard,
				Addr:  s.Replica,
			})
		}
	}
	return ms
}

// memberScrapeTimeout bounds each member scrape during a cluster
// aggregation so one wedged process delays the answer, not the dead
// members after it.
const memberScrapeTimeout = 5 * time.Second

// scrapeCtx derives a per-member deadline from the request context.
func scrapeCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), memberScrapeTimeout)
}

// handleClusterTrace serves GET /debug/cluster/trace: the router's own
// recorder plus every reachable member's /debug/trace dump, merged into
// one Chrome trace_event document with one pid per process (router is
// always pid 1) and wall-clock-rebased timestamps. ?trace=<32 hex>
// keeps only the spans of one distributed request; ?n= caps how many
// events each member contributes. Unreachable members are skipped — a
// partial timeline from the live cluster beats a 502.
func (rt *Router) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	var filter trace.TraceID
	if q := r.URL.Query().Get("trace"); q != "" {
		tid, ok := trace.ParseTraceID(q)
		if !ok {
			if tid, ok = trace.ParseTraceparent(q); !ok {
				writeError(w, http.StatusBadRequest,
					errBadTraceFilter)
				return
			}
		}
		filter = tid
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}

	var self bytes.Buffer
	if err := rt.rec.WriteTraceEventsN(&self, n); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	dumps := []trace.ProcessDump{{Process: "router", Data: self.Bytes()}}
	for _, m := range rt.members() {
		ctx, cancel := scrapeCtx(r)
		var data []byte
		err := rt.retryScrape(ctx, func(ctx context.Context) error {
			var e error
			data, e = rt.clientFor(m.Addr).TraceDump(ctx, n)
			return e
		})
		cancel()
		if err != nil {
			continue
		}
		dumps = append(dumps, trace.ProcessDump{Process: m.Name, Data: data})
	}

	var out bytes.Buffer
	if err := trace.MergeTraceEvents(&out, dumps, filter); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out.Bytes())
}

// handleClusterMetrics serves GET /cluster/metrics: every member's
// registry snapshot federated under shard/role identity labels, plus the
// router's own metrics (role="router") and cluster rollups:
//
//	incrouter_cluster_apply_latency_seconds   exact bucket-merged summary
//	incrouter_cluster_shed_total              sheds across members + router
//	incrouter_cluster_epoch_skew              max-min published view epoch
//	incrouter_cluster_replica_lag_seconds     worst follower seconds-behind
//	incrouter_cluster_members                 reachable/total member gauges
//	incrouter_cluster_bounded_ratio           bucket-merged boundedness quotients
//	incrouter_cluster_bounded_ratio_worst     worst shard's last-apply quotient
func (rt *Router) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	fed := obs.NewFederation()
	fed.Ingest(rt.reg.Snapshot(), obs.L("role", "router"))
	ms := rt.members()
	reachable := 0
	for _, m := range ms {
		ctx, cancel := scrapeCtx(r)
		var fams []obs.FamilySnapshot
		err := rt.retryScrape(ctx, func(ctx context.Context) error {
			var e error
			fams, e = rt.clientFor(m.Addr).MetricsSnapshot(ctx)
			return e
		})
		cancel()
		if err != nil {
			continue
		}
		reachable++
		fed.Ingest(fams, obs.L("shard", strconv.Itoa(m.Shard)), obs.L("role", m.Role))
	}

	fed.AddHistogram("incrouter_cluster_apply_latency_seconds",
		"Apply latency merged across every shard's histogram buckets.",
		fed.MergedHistogram("incgraph_apply_latency_seconds"))
	fed.Add("incrouter_cluster_shed_total",
		"Updates shed anywhere in the cluster (members plus router).",
		"counter",
		fed.SumValues("incgraph_shed_total")+fed.SumValues("incrouter_updates_shed_total"))
	fed.Add("incrouter_cluster_epoch_skew",
		"Spread (max-min) of published view epochs across primaries.",
		"gauge", epochSkew(fed.Values("incgraph_view_epoch")))
	fed.Add("incrouter_cluster_replica_lag_seconds",
		"Worst-case follower seconds-behind across replicas.",
		"gauge", maxValue(fed.Values("incgraph_replica_lag_seconds")))
	// The boundedness audit rollup: every shard's per-apply quotient
	// distribution merged bucket-exact, plus the worst shard's most recent
	// quotient — the single number a cluster dashboard alerts on when one
	// shard's incremental work stops being a function of |ΔG| and |AFF|.
	fed.AddHistogram("incrouter_cluster_bounded_ratio",
		"Per-apply work/|ΔG| quotients merged across every shard's histogram buckets.",
		fed.MergedHistogram("incgraph_bounded_ratio"))
	fed.Add("incrouter_cluster_bounded_ratio_worst",
		"Worst shard's most recent boundedness quotient (max over last-apply gauges).",
		"gauge", maxValue(fed.Values("incgraph_bounded_ratio_last")))
	fed.Add("incrouter_cluster_members",
		"Scrapeable cluster members by reachability.",
		"gauge", float64(reachable), obs.L("state", "reachable"))
	fed.Add("incrouter_cluster_members",
		"Scrapeable cluster members by reachability.",
		"gauge", float64(len(ms)), obs.L("state", "known"))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fed.WritePrometheus(w)
}

// epochSkew reduces view-epoch series to max-min, the number a dashboard
// alerts on: how far the slowest shard's published view trails the
// fastest. Replicas report the same family; their role label keeps them
// in the federation but they count here too — a lagging replica *is*
// epoch skew from a reader's point of view.
func epochSkew(series []obs.SeriesSnapshot) float64 {
	if len(series) == 0 {
		return 0
	}
	min, max := series[0].Value, series[0].Value
	for _, s := range series[1:] {
		if s.Value < min {
			min = s.Value
		}
		if s.Value > max {
			max = s.Value
		}
	}
	return max - min
}

// maxValue returns the largest value in the series (0 when empty).
func maxValue(series []obs.SeriesSnapshot) float64 {
	var max float64
	for _, s := range series {
		if s.Value > max {
			max = s.Value
		}
	}
	return max
}

// ClusterOffender is one row of the merged /cluster/offenders answer: a
// member's retained worst-boundedness apply, stamped with where it ran so
// the trace ID can be chased to the right process's flight recording.
type ClusterOffender struct {
	serve.Offender
	// Shard is the slot whose member reported the offender.
	Shard int `json:"shard"`
	// Member is the reporting process ("shard-0", "replica-0").
	Member string `json:"member"`
}

// clusterOffenderCap bounds /cluster/offenders responses regardless of
// member count and ring sizes; ?n= can only lower it.
const clusterOffenderCap = 256

// handleClusterOffenders serves GET /cluster/offenders: every reachable
// member's /debug/offenders dump merged into one cluster-wide top-K by
// boundedness quotient, worst first. ?algo= keeps one query class, ?n=
// caps the merged size (default 32). Unreachable members are skipped and
// reported in the scrape counts — a partial answer from the live cluster
// beats a 502.
func (rt *Router) handleClusterOffenders(w http.ResponseWriter, r *http.Request) {
	algoFilter := r.URL.Query().Get("algo")
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest,
				errors.New("shard: n must be a positive integer"))
			return
		}
		n = v
	}
	if n > clusterOffenderCap {
		n = clusterOffenderCap
	}

	top := obs.NewTopK[ClusterOffender](n)
	ms := rt.members()
	reachable := 0
	for _, m := range ms {
		ctx, cancel := scrapeCtx(r)
		var offs map[string][]serve.Offender
		err := rt.retryScrape(ctx, func(ctx context.Context) error {
			var e error
			offs, e = rt.clientFor(m.Addr).Offenders(ctx)
			return e
		})
		cancel()
		if err != nil {
			continue
		}
		reachable++
		for algo, list := range offs {
			if algoFilter != "" && algo != algoFilter {
				continue
			}
			for _, o := range list {
				top.Offer(o.BoundedRatio, ClusterOffender{Offender: o, Shard: m.Shard, Member: m.Name})
			}
		}
	}
	offenders := top.Snapshot()
	if offenders == nil {
		offenders = []ClusterOffender{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"offenders":         offenders,
		"members_reachable": reachable,
		"members_known":     len(ms),
	})
}

// memberHealth is one member's row in the /cluster/health answer.
type memberHealth struct {
	member
	// Reachable is whether the scrape succeeded just now.
	Reachable bool `json:"reachable"`
	// Healthy is the routing table's latest probe verdict (primaries).
	Healthy bool `json:"healthy"`
	// Generation counts promotions on the member's slot.
	Generation int `json:"generation"`
	// Epochs are the member's per-algo view epochs (primaries).
	Epochs map[string]uint64 `json:"epochs,omitempty"`
	// Replica carries the follower lag document (replicas).
	Replica *FollowerStatus `json:"replica,omitempty"`
}

// handleClusterHealth serves GET /cluster/health: one document answering
// "is the cluster serving, how stale, and who is covering for whom" —
// per-member liveness and epochs, slot generations, the acknowledged
// epoch floor, and whether live views cover it.
func (rt *Router) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	snap := rt.table.Snapshot()
	gen := make(map[int]int, len(snap))
	healthy := make(map[int]bool, len(snap))
	for _, s := range snap {
		gen[s.Shard], healthy[s.Shard] = s.Generation, s.Healthy
	}

	ms := rt.members()
	rows := make([]memberHealth, len(ms))
	live := make(EpochVector, rt.part.Shards())
	allPrimariesUp := true
	for i, m := range ms {
		row := memberHealth{member: m, Generation: gen[m.Shard]}
		ctx, cancel := scrapeCtx(r)
		switch m.Role {
		case "primary":
			row.Healthy = healthy[m.Shard]
			if info, err := rt.clientFor(m.Addr).Info(ctx); err == nil {
				row.Reachable, row.Epochs = true, info.Epochs
				live[m.Shard] = minAlgoEpoch(info.Epochs)
			} else {
				allPrimariesUp = false
			}
		case "replica":
			if st, err := rt.clientFor(m.Addr).ReplicaStatus(ctx); err == nil {
				row.Reachable, row.Replica = true, &st
			}
		}
		cancel()
		rows[i] = row
	}
	floor := rt.Floor()
	writeJSON(w, http.StatusOK, map[string]any{
		"members":     rows,
		"floor":       floor,
		"floor_token": floor.String(),
		"live":        live,
		"live_token":  live.String(),
		"consistent":  allPrimariesUp && live.Covers(floor),
		"events":      rt.events.Len(),
	})
}

// handleClusterEvents serves GET /cluster/events: the supervisor's
// bounded topology-event ring (spawns, probe failures, restarts,
// promotions), newest last. ?n= keeps only the newest n.
func (rt *Router) handleClusterEvents(w http.ResponseWriter, r *http.Request) {
	evs := rt.events.Snapshot()
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v >= 0 && v < len(evs) {
			evs = evs[len(evs)-v:]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": evs})
}
