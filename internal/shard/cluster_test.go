package shard

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/obs"
	"incgraph/internal/serve"
	"incgraph/internal/sssp"
	"incgraph/internal/trace"
	"incgraph/internal/wal"
)

// startDurableShard is startShardDaemon plus a WAL: updates are logged
// (carrying their trace ID and wall-clock stamp) and the segments are
// served under /wal/ for a log-shipping replica, exactly the wiring
// cmd/incgraphd does in shard mode.
func startDurableShard(t *testing.T, g *graph.Graph, p Partitioner, id int, src graph.NodeID) *httptest.Server {
	t.Helper()
	frag := FilterGraph(g, p, id)
	svc := serve.NewService()
	if _, err := svc.Host(serve.SSSP(sssp.NewInc(frag, src), src), serve.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Host(serve.CC(cc.NewInc(frag.Clone())), serve.Options{}); err != nil {
		t.Fatal(err)
	}
	d, err := serve.OpenDurable(svc, t.TempDir(), serve.DurableOptions{
		WAL: wal.Options{Policy: wal.SyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	MountShardAPI(svc, p, id, g.NumNodes(), g.Directed(), nil)
	svc.Mount("/wal/", http.StripPrefix("/wal", d.Log().StreamHandler()))
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close(); d.Close() })
	return srv
}

// startObservedReplica runs a Follower against the primary with its own
// registry and recorder, serving the replica-side observability surface
// (/replica/status, /metrics.json, /debug/trace) the way the replica
// daemon mode does.
func startObservedReplica(t *testing.T, g *graph.Graph, p Partitioner, id int, src graph.NodeID, primaryURL string) (*Follower, *httptest.Server) {
	t.Helper()
	frag := FilterGraph(g, p, id)
	reg := obs.NewRegistry()
	rec := trace.NewRecorder(1024)
	f := NewFollower(FollowerOptions{
		Source: primaryURL,
		Dir:    t.TempDir(),
		Targets: map[string]serve.Serveable{
			"sssp": serve.SSSP(sssp.NewInc(frag, src), src),
			"cc":   serve.CC(cc.NewInc(frag.Clone())),
		},
		Interval: 10 * time.Millisecond,
		Registry: reg,
		Recorder: rec,
	})
	go f.Run()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replica/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Status())
	})
	mux.Handle("GET /metrics.json", reg.JSONHandler())
	mux.Handle("GET /debug/trace", rec.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(func() { srv.Close(); f.Stop() })
	return f, srv
}

// get runs one GET against the router handler and returns the recorder.
func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// mergedSpans fetches /debug/cluster/trace filtered to tid and indexes
// the surviving span names by process name.
func mergedSpans(t *testing.T, h http.Handler, tid trace.TraceID) map[string][]string {
	t.Helper()
	w := get(t, h, "/debug/cluster/trace?trace="+tid.String())
	if w.Code != http.StatusOK {
		t.Fatalf("cluster trace: %d %s", w.Code, w.Body.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("cluster trace not JSON: %v", err)
	}
	procs := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.PID], _ = ev.Args["name"].(string)
		}
	}
	spans := map[string][]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if got, _ := ev.Args["traceparent_id"].(string); got != tid.String() {
			t.Fatalf("filtered timeline leaked event %q with trace %q, want %s", ev.Name, got, tid)
		}
		spans[procs[ev.PID]] = append(spans[procs[ev.PID]], ev.Name)
	}
	return spans
}

func containsSpan(spans []string, name string) bool {
	for _, s := range spans {
		if s == name {
			return true
		}
	}
	return false
}

// metricLine finds the first sample line of family name whose label set
// contains every want substring, returning its value.
func metricLine(t *testing.T, body, name string, want ...string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		// Exact family match: the prefix must end at '{' or ' '.
		rest := line[len(name):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		ok := true
		for _, wnt := range want {
			if !strings.Contains(line, wnt) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("metric line %q: bad value: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

// TestClusterObservabilityE2E is the issue's acceptance scenario over a
// real 2-shard + 1-replica topology: one POST /update carrying a
// client-supplied traceparent must yield (a) a merged Perfetto timeline
// at /debug/cluster/trace with router, both shards, and the replica's
// replay under that one trace ID, and (b) a /cluster/metrics exposition
// with per-shard apply latency, epoch skew, and follower lag-seconds —
// all present and numeric. Run under -race this also exercises the
// cross-process scrape fan-in against live members.
func TestClusterObservabilityE2E(t *testing.T) {
	leakCheck(t)
	rng := rand.New(rand.NewSource(42))
	g := gen.PowerLaw(rng, 120, 4, true)
	src := graph.NodeID(0)
	p := NewHashPartitioner(2)
	s0 := startDurableShard(t, g, p, 0, src)
	s1 := startDurableShard(t, g, p, 1, src)
	follower, repl := startObservedReplica(t, g, p, 0, src, s0.URL)

	table := NewTable([]string{s0.URL, s1.URL})
	table.SetReplica(0, repl.URL)
	rt, err := NewRouter(RouterOptions{Part: p, Table: table, Directed: true, NumNodes: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	// One traced update spanning both shards.
	b := gen.RandomUpdates(rng, g.Clone(), 40, 0.3)
	tid := trace.NewTraceID()
	var buf bytes.Buffer
	if err := graph.WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/update?wait=1", &buf)
	req.Header.Set("traceparent", trace.FormatTraceparent(tid, trace.NewSpanID()))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var res RouterUpdateResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("update response %d not JSON: %s", w.Code, w.Body.String())
	}
	if w.Code != http.StatusOK || !res.Applied || res.Routed != 2 {
		t.Fatalf("traced update: code=%d applied=%v routed=%d (%s)", w.Code, res.Applied, res.Routed, w.Body.String())
	}
	if got := w.Header().Get("traceparent"); !strings.Contains(got, tid.String()) {
		t.Fatalf("response traceparent %q does not carry request trace %s", got, tid)
	}

	// Wait until the replica has replayed shard 0's slice of the batch.
	var want uint64
	for _, ps := range res.PerShard {
		if ps.Shard == 0 {
			want = uint64(ps.Updates)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for follower.Epochs()["sssp"] < want {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %v, want %d", follower.Epochs(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// (a) Merged timeline: all four processes under the one trace ID.
	var spans map[string][]string
	for {
		spans = mergedSpans(t, h, tid)
		if containsSpan(spans["router"], "update") &&
			containsSpan(spans["shard-0"], "apply") &&
			containsSpan(spans["shard-1"], "apply") &&
			containsSpan(spans["replica-0"], "replay") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged timeline incomplete: %v", spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, name := range []string{"split", "fanout"} {
		if !containsSpan(spans["router"], name) {
			t.Errorf("router timeline missing %q span: %v", name, spans["router"])
		}
	}

	// (b) Federated metrics: per-shard apply latency, epoch skew,
	// follower lag — present and numeric.
	mw := get(t, h, "/cluster/metrics")
	if mw.Code != http.StatusOK {
		t.Fatalf("cluster metrics: %d", mw.Code)
	}
	body := mw.Body.String()
	for shard := 0; shard < 2; shard++ {
		sl := `shard="` + strconv.Itoa(shard) + `"`
		if _, ok := metricLine(t, body, "incgraph_apply_latency_seconds_count", sl, `role="primary"`); !ok {
			t.Errorf("no per-shard apply latency for shard %d:\n%s", shard, body)
		}
	}
	checks := []struct {
		name string
		want []string
	}{
		{"incgraph_replica_lag_seconds", []string{`role="replica"`, `shard="0"`}},
		{"incrouter_cluster_epoch_skew", nil},
		{"incrouter_cluster_replica_lag_seconds", nil},
		{"incrouter_cluster_shed_total", nil},
		{"incrouter_cluster_apply_latency_seconds_count", nil},
		{"incrouter_cluster_bounded_ratio_count", nil},
		{"incrouter_cluster_bounded_ratio", []string{`quantile="0.95"`}},
		{"incrouter_cluster_bounded_ratio_worst", nil},
	}
	for _, c := range checks {
		v, ok := metricLine(t, body, c.name, c.want...)
		if !ok {
			t.Errorf("missing %s series (labels %v)", c.name, c.want)
			continue
		}
		if math.IsNaN(v) {
			t.Errorf("%s is NaN", c.name)
		}
	}
	if v, _ := metricLine(t, body, "incrouter_cluster_apply_latency_seconds_count"); v == 0 {
		t.Errorf("cluster apply-latency rollup counted no samples")
	}
	if v, _ := metricLine(t, body, "incrouter_cluster_members", `state="reachable"`); v != 3 {
		t.Errorf("reachable members = %v, want 3", v)
	}
	if v, _ := metricLine(t, body, "incrouter_cluster_bounded_ratio_count"); v == 0 {
		t.Errorf("cluster bounded-ratio rollup counted no samples")
	}
	if v, _ := metricLine(t, body, "incrouter_cluster_bounded_ratio_worst"); v <= 0 {
		t.Errorf("cluster worst bounded ratio = %v, want > 0", v)
	}

	// Merged offender ring: both shards contributed, sorted worst-first,
	// every quotient finite, and the algo filter narrows the set.
	ow := get(t, h, "/cluster/offenders")
	if ow.Code != http.StatusOK {
		t.Fatalf("cluster offenders: %d", ow.Code)
	}
	var offRes struct {
		Offenders        []ClusterOffender `json:"offenders"`
		MembersReachable int               `json:"members_reachable"`
	}
	if err := json.Unmarshal(ow.Body.Bytes(), &offRes); err != nil {
		t.Fatalf("cluster offenders not JSON: %v (%s)", err, ow.Body.String())
	}
	// Both primaries answer the offender scrape; the replica's minimal
	// surface has no /debug/offenders and is skipped, not fatal.
	if offRes.MembersReachable != 2 || len(offRes.Offenders) == 0 {
		t.Fatalf("offender merge: reachable=%d entries=%d", offRes.MembersReachable, len(offRes.Offenders))
	}
	shardsSeen := map[int]bool{}
	for i, o := range offRes.Offenders {
		if math.IsNaN(o.BoundedRatio) || math.IsInf(o.BoundedRatio, 0) {
			t.Fatalf("offender %d has non-finite ratio: %+v", i, o)
		}
		if i > 0 && offRes.Offenders[i-1].BoundedRatio < o.BoundedRatio {
			t.Fatalf("offenders not sorted worst-first at %d", i)
		}
		shardsSeen[o.Shard] = true
	}
	if !shardsSeen[0] || !shardsSeen[1] {
		t.Errorf("offender merge missing a shard: %v", shardsSeen)
	}
	ow = get(t, h, "/cluster/offenders?algo=sssp&n=3")
	offRes.Offenders = nil
	if err := json.Unmarshal(ow.Body.Bytes(), &offRes); err != nil {
		t.Fatal(err)
	}
	if len(offRes.Offenders) == 0 || len(offRes.Offenders) > 3 {
		t.Fatalf("filtered offenders: %d entries", len(offRes.Offenders))
	}
	for _, o := range offRes.Offenders {
		if o.Algo != "sssp" {
			t.Fatalf("algo filter leaked %q", o.Algo)
		}
	}

	// Topology health: every member row present, floor covered.
	hw := get(t, h, "/cluster/health")
	var health struct {
		Members    []memberHealth `json:"members"`
		Consistent bool           `json:"consistent"`
	}
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil {
		t.Fatalf("cluster health not JSON: %v", err)
	}
	if len(health.Members) != 3 || !health.Consistent {
		t.Fatalf("cluster health: members=%d consistent=%v (%s)", len(health.Members), health.Consistent, hw.Body.String())
	}
	for _, m := range health.Members {
		if !m.Reachable {
			t.Errorf("member %s unreachable in health report", m.Name)
		}
	}
}

// TestClusterTraceBadFilter: an unparseable ?trace= is a client error,
// not a silent unfiltered dump.
func TestClusterTraceBadFilter(t *testing.T) {
	rt, _ := startCluster(t, gen.PowerLaw(rand.New(rand.NewSource(7)), 40, 3, true), 1, 0)
	w := get(t, rt.Handler(), "/debug/cluster/trace?trace=nope")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad filter: got %d, want 400", w.Code)
	}
}

// TestClusterEventsEndpoint: the router serves the supervisor's shared
// topology ring, newest last, with ?n= keeping only the tail.
func TestClusterEventsEndpoint(t *testing.T) {
	events := obs.NewRing[TopologyEvent](8)
	g := gen.PowerLaw(rand.New(rand.NewSource(9)), 40, 3, true)
	p := NewHashPartitioner(1)
	srv := startShardDaemon(t, g, p, 0, 0)
	rt, err := NewRouter(RouterOptions{
		Part: p, Table: NewTable([]string{srv.URL}),
		Directed: true, NumNodes: g.NumNodes(), Events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	events.Push(TopologyEvent{UnixNanos: 1, Kind: "spawn", Member: "a", Shard: 0})
	events.Push(TopologyEvent{UnixNanos: 2, Kind: "probe-fail", Member: "a", Shard: 0})
	events.Push(TopologyEvent{UnixNanos: 3, Kind: "promote", Member: "b", Shard: 0, Detail: "gen 1"})

	w := get(t, rt.Handler(), "/cluster/events?n=2")
	var out struct {
		Events []TopologyEvent `json:"events"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("events not JSON: %v", err)
	}
	if len(out.Events) != 2 || out.Events[0].Kind != "probe-fail" || out.Events[1].Kind != "promote" {
		t.Fatalf("events tail = %+v, want newest two", out.Events)
	}
}
