package shard

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strings"
)

// EpochVector is the cross-shard consistency stamp: entry i is shard i's
// epoch (raw unit updates applied, exactly serve.View.Epoch) at the
// moment the stamped response was assembled. A client holding vector A
// from an acknowledged write knows a later read stamped B includes that
// write iff B.Covers(A): single-shard epochs generalize to one epoch per
// shard, and "prefix of the stream" generalizes to "per-shard prefix,
// component-wise". A read whose vector does not cover the router's
// acknowledged floor (after a replica promotion, for example) is
// reported as inconsistent rather than silently served.
type EpochVector []uint64

// epochMagic opens the binary encoding: a version-carrying byte so the
// codec can evolve without ambiguity ('V' for vector, low bits version).
const epochMagic = 0x56

// maxEpochShards bounds the decoded shard count so a corrupted or
// hostile count byte cannot force a giant allocation.
const maxEpochShards = 1 << 16

// AppendBinary appends the vector's binary encoding to dst and returns
// the extended slice: magic, uvarint length, then each epoch as a plain
// uvarint. (Epochs across shards are independent counters, so delta
// coding against the previous entry buys nothing once a shard lags.)
func (ev EpochVector) AppendBinary(dst []byte) []byte {
	dst = append(dst, epochMagic)
	dst = binary.AppendUvarint(dst, uint64(len(ev)))
	for _, e := range ev {
		dst = binary.AppendUvarint(dst, e)
	}
	return dst
}

// DecodeEpochVector parses a binary epoch vector, returning the bytes
// following it. Torn, truncated, or corrupt input yields an error, never
// a panic and never an oversized allocation.
func DecodeEpochVector(data []byte) (EpochVector, []byte, error) {
	if len(data) == 0 || data[0] != epochMagic {
		return nil, nil, fmt.Errorf("shard: bad epoch-vector magic")
	}
	data = data[1:]
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, nil, fmt.Errorf("shard: bad epoch-vector length")
	}
	if n > maxEpochShards {
		return nil, nil, fmt.Errorf("shard: epoch vector claims %d shards (max %d)", n, maxEpochShards)
	}
	data = data[used:]
	ev := make(EpochVector, 0, n)
	for i := uint64(0); i < n; i++ {
		e, used := binary.Uvarint(data)
		if used <= 0 {
			return nil, nil, fmt.Errorf("shard: epoch vector torn at entry %d", i)
		}
		data = data[used:]
		ev = append(ev, e)
	}
	return ev, data, nil
}

// String renders the vector as the URL-safe base64 of its binary
// encoding — the opaque token carried in the X-Incgraph-Epochs response
// header and accepted back by ParseEpochVector.
func (ev EpochVector) String() string {
	return base64.RawURLEncoding.EncodeToString(ev.AppendBinary(nil))
}

// ParseEpochVector decodes a token produced by String. Trailing garbage
// after a well-formed vector is rejected: tokens are exact.
func ParseEpochVector(s string) (EpochVector, error) {
	raw, err := base64.RawURLEncoding.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return nil, fmt.Errorf("shard: epoch vector token: %w", err)
	}
	ev, rest, err := DecodeEpochVector(raw)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after epoch vector", len(rest))
	}
	return ev, nil
}

// Covers reports whether ev is component-wise at least other — "every
// shard has applied at least the prefix other describes". Vectors of
// different lengths (a resharded cluster) never cover each other.
func (ev EpochVector) Covers(other EpochVector) bool {
	if len(ev) != len(other) {
		return false
	}
	for i, e := range ev {
		if e < other[i] {
			return false
		}
	}
	return true
}

// Max returns the component-wise maximum of ev and other, extending to
// the longer length — the merge the router uses to advance its
// acknowledged floor.
func (ev EpochVector) Max(other EpochVector) EpochVector {
	n := len(ev)
	if len(other) > n {
		n = len(other)
	}
	out := make(EpochVector, n)
	for i := range out {
		var a, b uint64
		if i < len(ev) {
			a = ev[i]
		}
		if i < len(other) {
			b = other[i]
		}
		if a > b {
			out[i] = a
		} else {
			out[i] = b
		}
	}
	return out
}

// Clone returns an independent copy of ev.
func (ev EpochVector) Clone() EpochVector { return append(EpochVector(nil), ev...) }
