package shard

import (
	"testing"
)

func equalVec(a, b EpochVector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEpochVectorRoundTrip(t *testing.T) {
	cases := []EpochVector{
		nil,
		{},
		{0},
		{1, 2, 3},
		{^uint64(0), 0, 1<<63 - 1},
	}
	for _, v := range cases {
		tok := v.String()
		got, err := ParseEpochVector(tok)
		if err != nil {
			t.Fatalf("%v: parse(%q): %v", v, tok, err)
		}
		if !equalVec(got, v) {
			t.Fatalf("%v: round-trip drifted to %v", v, got)
		}
	}
}

func TestEpochVectorTornInput(t *testing.T) {
	v := EpochVector{7, 1 << 40, 3}
	full := v.AppendBinary(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeEpochVector(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	// DecodeEpochVector hands trailing bytes back; ParseEpochVector
	// rejects them — tokens are exact.
	_, rest, err := DecodeEpochVector(append(v.AppendBinary(nil), 0xAB))
	if err != nil || len(rest) != 1 || rest[0] != 0xAB {
		t.Fatalf("trailing byte not passed through: rest=%x err=%v", rest, err)
	}
	if _, err := ParseEpochVector("!!!not-base64!!!"); err == nil {
		t.Fatal("garbage token accepted")
	}
	// A hostile length prefix must not allocate.
	huge := []byte{epochMagic, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeEpochVector(huge); err == nil {
		t.Fatal("oversized shard count accepted")
	}
}

func TestEpochVectorCoversMaxClone(t *testing.T) {
	a := EpochVector{3, 5, 7}
	if !a.Covers(EpochVector{3, 5, 7}) || !a.Covers(EpochVector{0, 0, 0}) {
		t.Fatal("Covers rejects dominated vectors")
	}
	if a.Covers(EpochVector{3, 6, 7}) {
		t.Fatal("Covers accepts a component ahead of us")
	}
	if a.Covers(EpochVector{1, 1}) || a.Covers(EpochVector{1, 1, 1, 1}) {
		t.Fatal("Covers accepts a vector of different width")
	}
	m := EpochVector{1, 9, 2}.Max(EpochVector{4, 3, 2, 8})
	if !equalVec(m, EpochVector{4, 9, 2, 8}) {
		t.Fatalf("Max = %v", m)
	}
	c := a.Clone()
	c[0] = 99
	if a[0] != 3 {
		t.Fatal("Clone aliases the original")
	}
}

// FuzzEpochVector checks the codec never panics on arbitrary bytes and
// that any vector it accepts survives a value round-trip through both
// the binary form and the base64 token form.
func FuzzEpochVector(f *testing.F) {
	f.Add([]byte{})
	f.Add(EpochVector{}.AppendBinary(nil))
	f.Add(EpochVector{1, 2, 3}.AppendBinary(nil))
	f.Add(EpochVector{^uint64(0)}.AppendBinary(nil))
	f.Add([]byte{epochMagic, 0xff, 0xff, 0xff})
	f.Add([]byte{epochMagic, 0x02, 0x80, 0x00, 0x01}) // non-canonical varint zero
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := DecodeEpochVector(data)
		if err != nil {
			return
		}
		v2, rest, err := DecodeEpochVector(v.AppendBinary(nil))
		if err != nil || len(rest) != 0 || !equalVec(v, v2) {
			t.Fatalf("binary round-trip of %v: got %v rest=%x err=%v", v, v2, rest, err)
		}
		v3, err := ParseEpochVector(v.String())
		if err != nil || !equalVec(v, v3) {
			t.Fatalf("token round-trip of %v: got %v err=%v", v, v3, err)
		}
	})
}
