package shard

import (
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// This file is the cross-shard query algebra: how per-shard maintained
// views become one global answer. The scheme is the partitioned-fixpoint
// model of the paper's evaluation (GRAPE): each shard computes over its
// fragment, and rounds of boundary-value exchange carry values across
// cut edges until the exchange frontier is empty.
//
//   - SSSP: a shard's maintained view is the exact distance vector over
//     its fragment — an upper bound on the global distance, and the
//     length of a real path wherever finite. The router min-combines the
//     vectors, then iterates: every shard runs a *seeded* relaxation
//     (SeededSSSP, the shard-local resume) from the combined vector, the
//     results are min-combined again, and the loop stops when no entry
//     improved. Every intermediate value is the length of an actual
//     source path, every edge lives in some fragment, so the fixpoint is
//     exactly the single-process answer.
//
//   - CC: a shard's maintained labels already encode "connected within
//     my fragment" (including across its cut edges, which it stores).
//     Global components are the transitive closure of the per-shard
//     relations, which a union–find over (v, label_s(v)) pairs computes
//     in one pass — the boundary-label union round, with the iteration
//     collapsed: union–find *is* iterate-until-the-frontier-is-empty,
//     memoized by path compression.

// SeededSSSP runs one shard-local relaxation round: a multi-source
// Dijkstra over fragment g starting from the seed distance vector
// (graph.Infinity = unseeded). The result is component-wise ≤ seeds and
// every finite entry extends some seeded path by fragment edges only —
// the local evaluation step of the exchange. The seeds slice is not
// modified.
func SeededSSSP(g *graph.Graph, seeds []int64) []int64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	h := pq.New(n, func(a, b int32) bool { return dist[a] < dist[b] })
	for v := 0; v < n; v++ {
		dist[v] = graph.Infinity
		if v < len(seeds) && seeds[v] < graph.Infinity {
			dist[v] = seeds[v]
			h.AddOrAdjust(int32(v))
		}
	}
	for h.Len() > 0 {
		u, _ := h.Pop()
		du := dist[u]
		for _, e := range g.Out(graph.NodeID(u)) {
			if nd := du + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				h.AddOrAdjust(int32(e.To))
			}
		}
	}
	return dist
}

// minCombine folds src into dst component-wise and reports how many
// entries improved — the exchange frontier size of one round.
func minCombine(dst, src []int64) int {
	improved := 0
	for i := range dst {
		if i < len(src) && src[i] < dst[i] {
			dst[i] = src[i]
			improved++
		}
	}
	return improved
}

// SSSPExchange assembles the global distance vector from per-shard
// local views by iterated boundary-value exchange. views[i] is shard
// i's maintained distance vector (its fragment-local answer); eval runs
// shard i's seeded relaxation and returns the resulting vector. The
// returned rounds counts eval rounds (0 when the min-combined views are
// already a fixpoint — no finite value crossed a cut).
func SSSPExchange(n int, views [][]int64, eval func(i int, seeds []int64) ([]int64, error)) (dist []int64, rounds int, err error) {
	dist = make([]int64, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	for _, v := range views {
		minCombine(dist, v)
	}
	// Iterate: seed every shard with the combined vector, re-combine,
	// stop when the exchange frontier is empty. A shard whose local view
	// already equals the seeds restricted to its fragment contributes no
	// improvement, so the loop is driven purely by values that crossed a
	// cut in the previous round.
	for {
		improved := 0
		for i := range views {
			lv, err := eval(i, dist)
			if err != nil {
				return nil, rounds, err
			}
			improved += minCombine(dist, lv)
		}
		rounds++
		if improved == 0 {
			return dist, rounds, nil
		}
	}
}

// CCExchange assembles global component labels from per-shard label
// vectors: a union–find over the pairs (v, label_s(v)) for every shard
// s, then each vertex is labeled with the minimum vertex id of its
// global class — the same labeling CCfp computes on the unsharded
// graph. Fragment-internal and cut edges alike are already folded into
// the shard labels (every edge is stored by at least one shard), so one
// union pass is the entire exchange.
func CCExchange(n int, views [][]int64) []int64 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Union by smaller id: the root is then the class minimum,
			// which is exactly the label we must emit.
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for _, labels := range views {
		for v := 0; v < n && v < len(labels); v++ {
			if l := labels[v]; l >= 0 && l < int64(n) {
				union(int32(v), int32(l))
			}
		}
	}
	out := make([]int64, n)
	for v := 0; v < n; v++ {
		out[v] = int64(find(int32(v)))
	}
	return out
}
