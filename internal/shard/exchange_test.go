package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/sssp"
)

func TestSeededSSSPMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.PowerLaw(rng, 300, 6, true)
	src := graph.NodeID(0)
	seeds := make([]int64, g.NumNodes())
	for i := range seeds {
		seeds[i] = graph.Infinity
	}
	seeds[src] = 0
	got := SeededSSSP(g, seeds)
	want := sssp.Dijkstra(g, src)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, Dijkstra says %d", v, got[v], want[v])
		}
	}
}

// TestExchangeDifferential is the in-process half of the sharded ≡
// single-process guarantee: over random power-law graphs (directed and
// undirected), random partition widths, and random update streams, the
// exchange over fragment-local answers must equal the full-graph
// recompute for both SSSP and CC.
func TestExchangeDifferential(t *testing.T) {
	leakCheck(t)
	for _, directed := range []bool{true, false} {
		for shards := 1; shards <= 4; shards++ {
			t.Run(fmt.Sprintf("directed=%v/shards=%d", directed, shards), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(17*shards) + 31))
				g := gen.PowerLaw(rng, 250, 5, directed)
				p := NewHashPartitioner(shards)
				frags := make([]*graph.Graph, shards)
				for id := range frags {
					frags[id] = FilterGraph(g, p, id)
				}
				src := graph.NodeID(rng.Intn(g.NumNodes()))

				check := func(round int) {
					n := g.NumNodes()
					// SSSP: fragment views are full Dijkstra runs from src;
					// eval is the fragment's seeded relaxation.
					views := make([][]int64, shards)
					for id := range frags {
						views[id] = sssp.Dijkstra(frags[id], src)
					}
					dist, rounds, err := SSSPExchange(n, views, func(i int, seeds []int64) ([]int64, error) {
						return SeededSSSP(frags[i], seeds), nil
					})
					if err != nil {
						t.Fatal(err)
					}
					want := sssp.Dijkstra(g, src)
					for v := range want {
						if dist[v] != want[v] {
							t.Fatalf("round %d: sssp dist[%d] = %d, want %d (rounds=%d)",
								round, v, dist[v], want[v], rounds)
						}
					}
					// CC: fragment views are fragment-local labels; the union
					// pass must reproduce the full-graph labels exactly.
					labelViews := make([][]int64, shards)
					for id := range frags {
						labelViews[id] = cc.CCfp(frags[id])
					}
					labels := CCExchange(n, labelViews)
					wantLabels := cc.CCfp(g)
					for v := range wantLabels {
						if labels[v] != wantLabels[v] {
							t.Fatalf("round %d: cc label[%d] = %d, want %d",
								round, v, labels[v], wantLabels[v])
						}
					}
				}

				check(0)
				for round := 1; round <= 5; round++ {
					b := gen.RandomUpdates(rng, g, 60, 0.5)
					for id, sb := range SplitBatch(p, directed, b) {
						frags[id].Apply(sb)
					}
					g.Apply(b)
					check(round)
				}
			})
		}
	}
}

// TestSSSPExchangeEvalError: an eval failure must surface, not hang the
// exchange loop.
func TestSSSPExchangeEvalError(t *testing.T) {
	views := [][]int64{{0, graph.Infinity}, {graph.Infinity, 5}}
	_, _, err := SSSPExchange(2, views, func(i int, seeds []int64) ([]int64, error) {
		return nil, fmt.Errorf("shard %d down", i)
	})
	if err == nil {
		t.Fatal("eval error swallowed")
	}
}
