package shard

import (
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// leakCheck records the current goroutine count and, when the test
// finishes, fails it if the count has not fallen back to that
// baseline. Call it first thing in an e2e test, before any shard
// daemons, replicas, or routers are started: t.Cleanup runs LIFO, so
// the check executes after every later-registered teardown has shut
// its follower loops, supervisors, and HTTP servers.
func leakCheck(t *testing.T) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Idle keep-alive connections from the shared shard client park
		// readLoop goroutines until closed; drop them before counting.
		defaultShardClient.CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
		waitForGoroutines(t, baseline)
	})
}

// waitForGoroutines polls until the goroutine count falls back to the
// recorded baseline (small slack for runtime helpers), failing with a
// full stack dump when it does not — the leak signal.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		if now = runtime.NumGoroutine(); now <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d at baseline, %d after teardown\n%s",
		baseline, now, trimStack(buf))
}

// trimStack bounds a full-stack dump to something a CI log can show.
func trimStack(b []byte) string {
	const max = 8192
	if len(b) <= max {
		return string(b)
	}
	return fmt.Sprintf("%s\n... (%d bytes elided)", b[:max], len(b)-max)
}
