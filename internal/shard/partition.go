// Package shard is the multi-process serving topology: it partitions a
// graph across N shard daemons, routes update batches to the owning
// shards, assembles cross-shard query answers by iterating a
// boundary-value exchange round over shard-local fixpoints, supervises
// the shard processes, and keeps a warm replica per shard current by
// shipping WAL segments.
//
// The design is the paper's own evaluation model turned into a service
// topology: GRAPE-style partitioned fixpoint computation, where each
// worker runs the sequential algorithm over its fragment and rounds of
// boundary-value exchange propagate values across cut edges until
// nothing changes. Here every "worker" is an incgraphd process
// maintaining its fragment *incrementally* (the shard-local h/resume of
// the paper), so the per-round local evaluation that GRAPE pays as a
// fixpoint re-run is instead answered from the shard's always-current
// maintained view, and only the exchange rounds — seeded relaxations
// across the cut — cost anything at query time.
//
// Topology (see ARCHITECTURE.md for the full diagram):
//
//	client ── incrouter ──┬── incgraphd -shard-id 0 ──WAL──▶ incgraphd -replica-of (warm)
//	                      └── incgraphd -shard-id 1 ──WAL──▶ incgraphd -replica-of (warm)
//
// The router splits POST /update batches by edge ownership, fans the
// sub-batches out, and stamps every response with an epoch vector (one
// entry per shard) so readers can reason about cross-shard prefix
// consistency. A supervisor spawns and monitors the shard processes,
// gates routing on health, and promotes a shard's replica when the
// primary dies.
package shard

import (
	"fmt"

	"incgraph/internal/graph"
)

// Partitioner assigns every vertex to exactly one owning shard. The
// interface is deliberately minimal so hash partitioning (below) can
// later be joined by range or layer partitioners (Layph-style layered
// cuts) without touching the router: everything downstream — batch
// splitting, graph filtering, exchange — only asks "who owns v".
type Partitioner interface {
	// Owner returns the shard id owning vertex v, in [0, Shards()).
	Owner(v graph.NodeID) int
	// Shards returns the shard count N.
	Shards() int
	// Name identifies the partitioning scheme ("hash", …) for topology
	// introspection and logs.
	Name() string
}

// HashPartitioner owns vertices by a multiplicative hash of their id —
// stateless, uniform for both dense and clustered id spaces, and
// identical across processes, which is what lets the router and every
// shard daemon derive the same ownership from just (scheme, N).
type HashPartitioner struct {
	// N is the shard count.
	N int
}

// NewHashPartitioner returns the hash partitioner over n shards.
func NewHashPartitioner(n int) HashPartitioner { return HashPartitioner{N: n} }

// hashMul is the 64-bit Fibonacci-hashing multiplier (2^64/φ, odd); a
// single multiply spreads consecutive ids across the full word so the
// high bits are uniform even for v = 0,1,2,…
const hashMul = 0x9E3779B97F4A7C15

// Owner implements Partitioner.
func (p HashPartitioner) Owner(v graph.NodeID) int {
	return int((uint64(v) * hashMul >> 33) % uint64(p.N))
}

// Shards implements Partitioner.
func (p HashPartitioner) Shards() int { return p.N }

// Name implements Partitioner.
func (p HashPartitioner) Name() string { return "hash" }

// NewPartitioner builds the named partitioning scheme over n shards —
// the registry the -partitioner flag family resolves through.
func NewPartitioner(scheme string, n int) (Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	switch scheme {
	case "", "hash":
		return NewHashPartitioner(n), nil
	}
	return nil, fmt.Errorf("shard: unknown partitioner %q (want hash)", scheme)
}

// OwnsEdge reports whether shard id stores edge (u, v) under p. Directed
// edges live with the owner of their tail — the shard that must relax
// across them during local evaluation. Undirected edges live with both
// endpoint owners, so each side can relax the edge locally; the
// duplication is confined to cut edges.
func OwnsEdge(p Partitioner, directed bool, id int, u, v graph.NodeID) bool {
	if p.Owner(u) == id {
		return true
	}
	return !directed && p.Owner(v) == id
}

// IsCut reports whether edge (u, v) crosses shards under p — the edges
// the exchange rounds exist for.
func IsCut(p Partitioner, u, v graph.NodeID) bool { return p.Owner(u) != p.Owner(v) }

// SplitBatch splits one client batch into per-shard sub-batches by edge
// ownership, preserving relative update order inside each sub-batch. An
// update on an undirected cut edge is duplicated into both endpoint
// shards (mirroring OwnsEdge); every update lands in at least one
// sub-batch, so the union of sub-batches applied shard-locally equals
// the batch applied to the unsharded graph.
func SplitBatch(p Partitioner, directed bool, b graph.Batch) []graph.Batch {
	out := make([]graph.Batch, p.Shards())
	for _, u := range b {
		of := p.Owner(u.From)
		out[of] = append(out[of], u)
		if !directed {
			if ot := p.Owner(u.To); ot != of {
				out[ot] = append(out[ot], u)
			}
		}
	}
	return out
}

// FilterGraph extracts shard id's fragment of g: all n nodes (ids are
// global, so every shard addresses the same id space) with labels
// preserved, but only the edges OwnsEdge assigns to id. Shard daemons
// build their graph through this, and because the same rule routes
// updates, a fragment stays exactly the owned sub-multiset of the
// logical graph's edges as the stream evolves.
func FilterGraph(g *graph.Graph, p Partitioner, id int) *graph.Graph {
	directed := g.Directed()
	f := graph.New(g.NumNodes(), directed)
	for v := 0; v < g.NumNodes(); v++ {
		f.SetLabel(graph.NodeID(v), g.Label(graph.NodeID(v)))
	}
	g.Edges(func(u, v graph.NodeID, w int64) {
		if OwnsEdge(p, directed, id, u, v) {
			f.InsertEdge(u, v, w)
		}
	})
	return f
}
