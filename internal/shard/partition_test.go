package shard

import (
	"math/rand"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func TestHashPartitionerRangeAndBalance(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		p := NewHashPartitioner(n)
		counts := make([]int, n)
		for v := 0; v < 10000; v++ {
			o := p.Owner(graph.NodeID(v))
			if o < 0 || o >= n {
				t.Fatalf("owner(%d) = %d out of [0,%d)", v, o, n)
			}
			counts[o]++
		}
		// The multiplicative hash should spread ids roughly evenly: no
		// shard more than 2x its fair share.
		for i, c := range counts {
			if n > 1 && c > 2*10000/n {
				t.Fatalf("shards=%d: shard %d owns %d of 10000", n, i, c)
			}
		}
	}
}

func TestNewPartitioner(t *testing.T) {
	if _, err := NewPartitioner("hash", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartitioner("", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartitioner("range", 2); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := NewPartitioner("hash", 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestSplitBatchCoverage: every update lands in its owning shard(s), in
// order, and nowhere else — directed updates exactly once, undirected
// cut updates once per endpoint owner.
func TestSplitBatchCoverage(t *testing.T) {
	for _, directed := range []bool{true, false} {
		rng := rand.New(rand.NewSource(42))
		g := gen.PowerLaw(rng, 200, 6, directed)
		b := gen.RandomUpdates(rng, g, 300, 0.5)
		p := NewHashPartitioner(3)
		parts := SplitBatch(p, directed, b)
		if len(parts) != 3 {
			t.Fatalf("got %d sub-batches", len(parts))
		}
		total := 0
		for id, sb := range parts {
			total += len(sb)
			for _, u := range sb {
				if !OwnsEdge(p, directed, id, u.From, u.To) {
					t.Fatalf("directed=%v: shard %d received unowned update %v", directed, id, u)
				}
			}
		}
		want := 0
		for _, u := range b {
			want++
			if !directed && IsCut(p, u.From, u.To) {
				want++ // duplicated to the second endpoint owner
			}
		}
		if total != want {
			t.Fatalf("directed=%v: split carries %d updates, want %d", directed, total, want)
		}
		// Relative order inside each sub-batch matches the original batch.
		for id, sb := range parts {
			idx := 0
			for _, u := range b {
				if idx < len(sb) && sb[idx] == u {
					idx++
				}
			}
			if idx != len(sb) {
				t.Fatalf("shard %d sub-batch is not an ordered subsequence", id)
			}
		}
	}
}

// TestFilterGraphUnion: the fragments jointly hold every edge of the
// full graph, each fragment holds only owned edges, and node count,
// directedness, and labels are preserved.
func TestFilterGraphUnion(t *testing.T) {
	for _, directed := range []bool{true, false} {
		rng := rand.New(rand.NewSource(7))
		g := gen.PowerLaw(rng, 150, 5, directed)
		gen.AssignLabels(rng, g, 4)
		p := NewHashPartitioner(3)

		type edge struct {
			u, v graph.NodeID
			w    int64
		}
		edges := func(gr *graph.Graph) map[edge]bool {
			m := make(map[edge]bool)
			gr.Edges(func(u, v graph.NodeID, w int64) { m[edge{u, v, w}] = true })
			return m
		}
		full := edges(g)
		union := make(map[edge]bool)
		for id := 0; id < p.Shards(); id++ {
			f := FilterGraph(g, p, id)
			if f.NumNodes() != g.NumNodes() || f.Directed() != directed {
				t.Fatalf("fragment shape drifted: nodes %d directed %v", f.NumNodes(), f.Directed())
			}
			for v := 0; v < f.NumNodes(); v++ {
				if f.Label(graph.NodeID(v)) != g.Label(graph.NodeID(v)) {
					t.Fatalf("label of %d not preserved", v)
				}
			}
			for e := range edges(f) {
				if !full[e] {
					t.Fatalf("fragment %d invented edge %v", id, e)
				}
				if !OwnsEdge(p, directed, id, e.u, e.v) {
					t.Fatalf("fragment %d holds unowned edge %v", id, e)
				}
				union[e] = true
			}
		}
		if len(union) != len(full) {
			t.Fatalf("directed=%v: union of fragments has %d edges, full graph %d", directed, len(union), len(full))
		}
	}
}

// TestSplitApplyEquivalence: applying each sub-batch to its fragment
// yields exactly the fragments of the updated full graph — the
// invariant that keeps shards consistent as the stream evolves.
func TestSplitApplyEquivalence(t *testing.T) {
	for _, directed := range []bool{true, false} {
		rng := rand.New(rand.NewSource(11))
		g := gen.PowerLaw(rng, 120, 5, directed)
		p := NewHashPartitioner(2)
		frags := make([]*graph.Graph, p.Shards())
		for id := range frags {
			frags[id] = FilterGraph(g, p, id)
		}
		for round := 0; round < 10; round++ {
			b := gen.RandomUpdates(rng, g, 40, 0.5)
			for id, sb := range SplitBatch(p, directed, b) {
				frags[id].Apply(sb)
			}
			g.Apply(b)
			for id := range frags {
				want := FilterGraph(g, p, id)
				if got, expect := graphEdgeCount(frags[id]), graphEdgeCount(want); got != expect {
					t.Fatalf("directed=%v round %d shard %d: fragment has %d edges, want %d",
						directed, round, id, got, expect)
				}
			}
		}
	}
}

func graphEdgeCount(g *graph.Graph) int { return g.NumEdges() }
