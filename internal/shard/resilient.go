package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"incgraph/internal/obs"
	"incgraph/internal/resilience"
)

// This file is the router's resilience plane: deadline budgets on every
// request, retried shard calls with jittered backoff, per-slot circuit
// breakers wired into the routing table's generations, and
// replica-backed stale reads for degraded queries. The mechanisms live
// in internal/resilience; this file binds them to shards.

// ResilienceOptions tune the router's retry/breaker/deadline behavior.
// The zero value takes all defaults, which are safe for production and
// deterministic enough for tests that pin Seed.
type ResilienceOptions struct {
	// DefaultTimeout is the budget attached to requests that arrive with
	// neither a context deadline nor an X-Incgraph-Deadline header
	// (default 30s).
	DefaultTimeout time.Duration
	// Attempts is the total tries per shard call, including the first
	// (default 3).
	Attempts int
	// RetryBase and RetryMax bound the full-jitter backoff between
	// retries (defaults 25ms and 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// shard's breaker (default 5).
	BreakerThreshold int
	// BreakerOpenFor is the cool-down before half-open probes
	// (default 1s).
	BreakerOpenFor time.Duration
	// BreakerProbes is the half-open successes needed to close again
	// (default 1).
	BreakerProbes int
	// HedgeAfter is how long a view fetch waits on the primary before
	// racing the shard's replica; <= 0 disables hedging (default 100ms).
	HedgeAfter time.Duration
	// Seed drives the retry jitter (default 1).
	Seed int64
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerOpenFor <= 0 {
		o.BreakerOpenFor = time.Second
	}
	if o.BreakerProbes <= 0 {
		o.BreakerProbes = 1
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// slotGuard pairs a slot's breaker with the table generation it was
// built for, so a promotion resets the failure history.
type slotGuard struct {
	breaker *resilience.Breaker
	gen     int
}

// initResilience builds the per-slot breakers, the shared backoff, and
// the resilience metric series. Called from NewRouter.
func (rt *Router) initResilience(opt ResilienceOptions, reg *obs.Registry) {
	rt.res = opt.withDefaults()
	rt.backoff = resilience.NewBackoff(rt.res.RetryBase, rt.res.RetryMax, rt.res.Seed)
	rt.guards = make([]*slotGuard, rt.part.Shards())
	for i := range rt.guards {
		rt.guards[i] = &slotGuard{breaker: resilience.NewBreaker(resilience.BreakerOptions{
			Threshold:      rt.res.BreakerThreshold,
			OpenFor:        rt.res.BreakerOpenFor,
			ProbeSuccesses: rt.res.BreakerProbes,
		})}
	}
	rt.retriesTotal = reg.Counter("incrouter_retries_total", "Shard calls retried after a transient failure.")
	rt.breakerOpens = reg.Counter("incrouter_breaker_opens_total", "Per-shard circuit breaker trips to open.")
	rt.deadlineHits = reg.Counter("incrouter_deadline_exceeded_total", "Shard calls abandoned because the request's deadline budget ran out.")
	rt.degradedQueries = reg.Counter("incrouter_degraded_queries_total", "Cross-shard queries answered with degraded partial results.")
	rt.staleReads = reg.Counter("incrouter_stale_replica_reads_total", "Shard views served stale from a replica surface.")
	rt.hedgedReads = reg.Counter("incrouter_hedged_reads_total", "View fetches hedged to a replica after a slow primary.")
	for i := range rt.guards {
		br := rt.guards[i].breaker
		reg.GaugeFunc("incrouter_breaker_state",
			"Breaker position per shard: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(br.State()) },
			obs.L("shard", strconv.Itoa(i)))
	}
}

// guard returns slot i's breaker, resetting it when the slot's table
// generation changed since the last look — a freshly promoted member
// must not inherit the failure streak of the process it replaced.
func (rt *Router) guard(i int) *resilience.Breaker {
	gen := rt.table.Generation(i)
	rt.guardMu.Lock()
	defer rt.guardMu.Unlock()
	g := rt.guards[i]
	if g.gen != gen {
		g.breaker.Reset()
		g.gen = gen
	}
	return g.breaker
}

// breakerFailure feeds a failure to br, counting the trip if this one
// opened it.
func (rt *Router) breakerFailure(br *resilience.Breaker) {
	before := br.Opens()
	br.Failure()
	if br.Opens() > before {
		rt.breakerOpens.Inc()
	}
}

// errBreakerOpen is a shard call refused locally because the slot's
// breaker is open (or the slot has no address). It is not retryable —
// the whole point of the breaker is to stop hammering the target.
type errBreakerOpen struct {
	shard int
	wait  time.Duration
}

// Error implements error.
func (e errBreakerOpen) Error() string {
	return fmt.Sprintf("shard %d breaker is open (retry in %s)", e.shard, e.wait.Round(time.Millisecond))
}

// isBreakerOpen reports whether err is a local breaker refusal.
func isBreakerOpen(err error) bool {
	var e errBreakerOpen
	return errors.As(err, &e)
}

// isBreakerFailure decides which errors count toward opening a breaker:
// network-level failures and 5xx brokenness do; 503 sheds do not (a
// shedding shard is alive and asking for patience, and opening on sheds
// would turn overload into outage), and 4xx never do.
func isBreakerFailure(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 && se.Code != http.StatusServiceUnavailable
	}
	return !isBreakerOpen(err)
}

// retryableShardErr decides which errors are worth another attempt:
// network failures and 5xx (including sheds — they carry Retry-After
// hints) are; local breaker refusals and 4xx are not.
func retryableShardErr(err error) bool {
	if isBreakerOpen(err) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// callShard runs op against slot i's active member with retries,
// jittered backoff, Retry-After honoring, and breaker accounting. Every
// attempt re-checks the breaker and re-resolves the active address, so
// a mid-call promotion is picked up by the next attempt. Updates are
// safe to retry whole because shard applies are idempotent
// (graph.ApplyCounted: duplicate inserts and absent deletes are counted
// no-ops).
func (rt *Router) callShard(ctx context.Context, i int, op func(context.Context, *Client) error) error {
	return resilience.Do(ctx, resilience.RetryOptions{
		Attempts:   rt.res.Attempts,
		Backoff:    rt.backoff,
		Retryable:  retryableShardErr,
		RetryAfter: RetryAfterHint,
		OnRetry:    func(int, time.Duration, error) { rt.retriesTotal.Inc() },
	}, func(ctx context.Context) error {
		br := rt.guard(i)
		if !br.Allow() {
			return errBreakerOpen{shard: i, wait: br.RemainingOpen()}
		}
		addr, _ := rt.table.Active(i)
		if addr == "" {
			return errBreakerOpen{shard: i}
		}
		err := op(ctx, rt.clientFor(addr))
		switch {
		case err == nil:
			br.Success()
		case isBreakerFailure(err):
			rt.breakerFailure(br)
		}
		return err
	})
}

// noteOutcome feeds the deadline-exceeded counter from a shard-call
// error.
func (rt *Router) noteOutcome(err error) {
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		rt.deadlineHits.Inc()
	}
}

// shedRetryAfter derives the Retry-After value for load shed on shard
// i's account: the breaker's remaining cool-down when it is open
// (rounded up to whole seconds), else the 1s floor.
func (rt *Router) shedRetryAfter(i int) string {
	if wait := rt.guard(i).RemainingOpen(); wait > 0 {
		return strconv.Itoa(int(math.Ceil(wait.Seconds())))
	}
	return "1"
}

// maxRetryAfter reduces per-shard hint durations to a Retry-After
// header value with a 1s floor.
func maxRetryAfter(hints []time.Duration) string {
	var max time.Duration
	for _, h := range hints {
		if h > max {
			max = h
		}
	}
	secs := int(math.Ceil(max.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// fetchView resolves one shard's view for a cross-shard query, in
// preference order: the primary (with retries, hedged to the replica
// when slow), then the replica's stale surface when the primary is
// breaker-open, unhealthy, or exhausted its retries. The returned
// status is "ok", "hedged", or "stale-replica"; on error the shard is
// simply missing from the query.
func (rt *Router) fetchView(ctx context.Context, i int, algo string) (ShardView, string, error) {
	br := rt.guard(i)
	addr, healthy := rt.table.Active(i)
	raddr := rt.table.Replica(i)
	if raddr == addr {
		raddr = ""
	}
	var lastErr error
	if healthy && addr != "" && br.Allow() {
		type res struct {
			sv      ShardView
			err     error
			replica bool
		}
		resc := make(chan res, 2)
		go func() {
			var sv ShardView
			err := rt.callShard(ctx, i, func(ctx context.Context, c *Client) error {
				var e error
				sv, e = c.View(ctx, algo)
				return e
			})
			resc <- res{sv, err, false}
		}()
		inflight := 1
		var hedgeC <-chan time.Time
		if raddr != "" && rt.res.HedgeAfter > 0 {
			tm := time.NewTimer(rt.res.HedgeAfter)
			defer tm.Stop()
			hedgeC = tm.C
		}
		hedged := false
		for inflight > 0 {
			select {
			case r := <-resc:
				inflight--
				if r.err == nil {
					if r.replica {
						return r.sv, "hedged", nil
					}
					return r.sv, "ok", nil
				}
				if !r.replica || lastErr == nil {
					lastErr = r.err
				}
			case <-hedgeC:
				hedgeC = nil
				hedged = true
				inflight++
				rt.hedgedReads.Inc()
				go func() {
					sv, err := rt.clientFor(raddr).View(ctx, algo)
					resc <- res{sv, err, true}
				}()
			case <-ctx.Done():
				return ShardView{}, "", ctx.Err()
			}
		}
		if hedged {
			// The replica was already consulted (and failed) as the hedge;
			// a second stale-read attempt below would just repeat it.
			return ShardView{}, "", lastErr
		}
	}
	// Breaker open, slot unhealthy, or primary exhausted: a stale answer
	// from the warm replica beats a missing shard. Post-promotion the
	// replica slot points at the dead ex-primary, so this read fails
	// fast and the shard is reported missing instead.
	if raddr != "" {
		sv, err := rt.clientFor(raddr).View(ctx, algo)
		if err == nil {
			rt.staleReads.Inc()
			return sv, "stale-replica", nil
		}
		if lastErr == nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = errBreakerOpen{shard: i, wait: br.RemainingOpen()}
	}
	return ShardView{}, "", lastErr
}

// retryScrape wraps cluster observability scrapes (metrics, traces,
// offenders, health probes) in a light two-attempt retry — scrapes are
// read-only and retry freely.
func (rt *Router) retryScrape(ctx context.Context, op func(context.Context) error) error {
	return resilience.Do(ctx, resilience.RetryOptions{
		Attempts: 2,
		Backoff:  rt.backoff,
		OnRetry:  func(int, time.Duration, error) { rt.retriesTotal.Inc() },
	}, op)
}
