package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"incgraph/internal/graph"
	"incgraph/internal/obs"
	"incgraph/internal/resilience"
	"incgraph/internal/trace"
)

// Router is the cluster front-end: one process that owns no graph state
// but knows the partitioner, splits every update batch into per-shard
// sub-batches, fans them out, and assembles cross-shard query answers
// by boundary-value exchange. Its consistency currency is the epoch
// vector: every write acknowledgment and every query response is
// stamped with one, and the router tracks the component-wise maximum of
// everything it has acknowledged (the *floor*) so reads can be labeled
// consistent or not — honestly inconsistent after a replica promotion
// that lost acked-but-unshipped tail updates, for example.
type Router struct {
	part     Partitioner
	table    *Table
	directed bool
	n        int
	client   *http.Client

	// floor is the component-wise max epoch vector over acknowledged
	// writes: the prefix a consistent read must cover.
	floorMu sync.Mutex
	floor   EpochVector

	updatesRouted *obs.Counter
	updatesShed   *obs.Counter
	updatesSplit  *obs.Counter
	partialFails  *obs.Counter
	exchangeRnds  *obs.Counter
	queriesServed *obs.Counter
	reg           *obs.Registry

	// Resilience plane (see resilient.go): per-slot breakers keyed to
	// table generations, shared jittered backoff, and the counters the
	// chaos campaign asserts on.
	res             ResilienceOptions
	backoff         *resilience.Backoff
	guardMu         sync.Mutex
	guards          []*slotGuard
	retriesTotal    *obs.Counter
	breakerOpens    *obs.Counter
	deadlineHits    *obs.Counter
	degradedQueries *obs.Counter
	staleReads      *obs.Counter
	hedgedReads     *obs.Counter

	// rec is the router's own flight recorder ("router" process in the
	// merged cluster timeline); track is its request track.
	rec   *trace.Recorder
	track int32
	// events is the topology event ring served at /cluster/events,
	// usually shared with the Supervisor that writes it.
	events *obs.Ring[TopologyEvent]
}

// RouterOptions configure a Router.
type RouterOptions struct {
	// Part is the vertex-ownership scheme; must match the shards'.
	Part Partitioner
	// Table maps shard ids to live addresses (shared with a Supervisor
	// when one manages the processes).
	Table *Table
	// Directed must match the shards' graph mode — it decides which
	// sub-batches an undirected cut edge lands in.
	Directed bool
	// NumNodes is the graph's node count, for validating batches before
	// any shard sees them.
	NumNodes int
	// Client overrides the HTTP client used for shard requests.
	Client *http.Client
	// Registry receives router metrics; nil means a private registry.
	Registry *obs.Registry
	// Recorder receives router spans; nil means a private recorder. Its
	// process name is set to "router" when unset.
	Recorder *trace.Recorder
	// Events is the topology event ring surfaced at /cluster/events;
	// share it with the Supervisor so its actions are visible. Nil means
	// a private (empty unless the router writes) ring.
	Events *obs.Ring[TopologyEvent]
	// Resilience tunes deadline budgets, retries, circuit breakers, and
	// hedged reads; the zero value takes all defaults.
	Resilience ResilienceOptions
}

// NewRouter validates the options and builds a router.
func NewRouter(opt RouterOptions) (*Router, error) {
	if opt.Part == nil {
		return nil, fmt.Errorf("shard: router needs a partitioner")
	}
	if opt.Table == nil {
		return nil, fmt.Errorf("shard: router needs a routing table")
	}
	if opt.Table.Shards() != opt.Part.Shards() {
		return nil, fmt.Errorf("shard: table has %d slots, partitioner %d shards",
			opt.Table.Shards(), opt.Part.Shards())
	}
	if opt.NumNodes <= 0 {
		return nil, fmt.Errorf("shard: router needs the node count, got %d", opt.NumNodes)
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := &Router{
		part:     opt.Part,
		table:    opt.Table,
		directed: opt.Directed,
		n:        opt.NumNodes,
		client:   opt.Client,
		floor:    make(EpochVector, opt.Part.Shards()),
		reg:      reg,
	}
	rt.rec = opt.Recorder
	if rt.rec == nil {
		rt.rec = trace.NewRecorder(4096)
	}
	if rt.rec.Process() == "" {
		rt.rec.SetProcess("router")
	}
	rt.track = rt.rec.Track("router")
	rt.events = opt.Events
	if rt.events == nil {
		rt.events = obs.NewRing[TopologyEvent](256)
	}
	rt.initResilience(opt.Resilience, reg)
	rt.updatesRouted = reg.Counter("incrouter_updates_routed_total", "Unit updates fanned out to shards.")
	rt.updatesShed = reg.Counter("incrouter_updates_shed_total", "Update requests refused with 503.")
	rt.updatesSplit = reg.Counter("incrouter_batches_split_total", "Update batches split and routed.")
	rt.partialFails = reg.Counter("incrouter_partial_failures_total", "Split batches where only some shards applied.")
	rt.exchangeRnds = reg.Counter("incrouter_exchange_rounds_total", "Boundary-value exchange rounds run.")
	rt.queriesServed = reg.Counter("incrouter_queries_total", "Cross-shard queries assembled.")
	return rt, nil
}

// clientFor returns a shard client for slot i's active member.
func (rt *Router) clientFor(addr string) *Client { return &Client{Base: addr, HTTP: rt.client} }

// EpochHeader is the response header carrying the epoch-vector token on
// stamped router responses; the same token is accepted back on reads in
// MinEpochHeader.
const EpochHeader = "X-Incgraph-Epochs"

// MinEpochHeader is the request header naming the epoch vector a read
// must cover; the router answers 412 when it cannot.
const MinEpochHeader = "X-Incgraph-Min-Epochs"

// Floor returns the router's acknowledged epoch floor.
func (rt *Router) Floor() EpochVector {
	rt.floorMu.Lock()
	defer rt.floorMu.Unlock()
	return rt.floor.Clone()
}

// raiseFloor merges an acknowledged vector into the floor.
func (rt *Router) raiseFloor(ev EpochVector) {
	rt.floorMu.Lock()
	rt.floor = rt.floor.Max(ev)
	rt.floorMu.Unlock()
}

// PerShard is one shard's slice of a routed update, reported in the
// response body so a partial apply is visible per shard, not averaged
// away.
type PerShard struct {
	// Shard is the slot the sub-batch belonged to.
	Shard int `json:"shard"`
	// Updates is the sub-batch size in unit updates.
	Updates int `json:"updates"`
	// Status is "applied", "accepted", "shed", or "error".
	Status string `json:"status"`
	// Error carries the failure detail when Status is shed/error.
	Error string `json:"error,omitempty"`
	// Epochs are the shard's per-algo view epochs after the sub-batch.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
}

// RouterUpdateResult is the JSON response of the router's POST /update.
type RouterUpdateResult struct {
	// Accepted is the unit-update count parsed from the body.
	Accepted int `json:"accepted"`
	// Routed is the number of shards that received a sub-batch.
	Routed int `json:"routed"`
	// Applied is true only when every owning shard confirmed its
	// sub-batch WAL-logged and (with wait=1) applied. A split batch is
	// never acked as applied on partial success.
	Applied bool `json:"applied"`
	// PerShard details each sub-batch's fate.
	PerShard []PerShard `json:"per_shard"`
	// Epochs is the epoch vector after the request (also in the
	// X-Incgraph-Epochs header as EpochToken).
	Epochs EpochVector `json:"epochs"`
	// EpochToken is the vector's opaque header token.
	EpochToken string `json:"epoch_token"`
}

// QueryResult is the JSON response of the router's GET /query/{algo}.
type QueryResult struct {
	// Algo is the query class.
	Algo string `json:"algo"`
	// Epochs is the per-shard epoch vector the answer reflects.
	Epochs EpochVector `json:"epochs"`
	// EpochToken is the vector's opaque header token.
	EpochToken string `json:"epoch_token"`
	// Consistent reports whether Epochs covers the router's
	// acknowledged floor — false means some acknowledged write is not
	// reflected (e.g. lost in a promotion) and the client should treat
	// the answer as a stale prefix.
	Consistent bool `json:"consistent"`
	// Degraded is set when the answer is a partial: a contributing
	// shard's view was degraded or stale, a shard was missing entirely,
	// or the boundary exchange lost a shard mid-flight. The epoch
	// vector (a missing shard's entry stays 0) exposes exactly how
	// stale the partial is.
	Degraded bool `json:"degraded,omitempty"`
	// Shards details where each shard's contribution came from when the
	// answer is degraded: "ok", "hedged", "stale-replica", or "missing".
	Shards []QueryShard `json:"shards,omitempty"`
	// ExchangeRounds counts boundary-exchange evaluation rounds.
	ExchangeRounds int `json:"exchange_rounds"`
	// Data is the assembled global answer (SSSP: {src,dist}; CC:
	// {labels}).
	Data any `json:"data"`
}

// QueryShard reports where one shard's contribution to a cross-shard
// query came from.
type QueryShard struct {
	// Shard is the slot.
	Shard int `json:"shard"`
	// Status is "ok" (primary), "hedged" (replica won a latency race),
	// "stale-replica" (primary unavailable, replica's stale surface
	// answered), or "missing" (no member answered; the shard's entries
	// are absent from the result and its epoch reads 0).
	Status string `json:"status"`
	// Epoch is the stream position this shard's contribution reflects.
	Epoch uint64 `json:"epoch"`
	// Error carries the failure detail when Status is "missing".
	Error string `json:"error,omitempty"`
}

// routedBatch pairs a shard id with its non-empty sub-batch.
type routedBatch struct {
	shard int
	b     graph.Batch
}

// Handler returns the router's HTTP API:
//
//	POST /update[?wait=1]        split, fan out, epoch-vector-stamped ack
//	GET  /query/{algo}           cross-shard answer by boundary exchange
//	GET  /epochs                 current floor and live per-shard epochs
//	GET  /shards                 routing table snapshot
//	GET  /healthz                router liveness
//	GET  /metrics                router metrics (Prometheus text format)
//	GET  /metrics.json           router registry snapshot (federation source)
//	GET  /debug/trace            router-only trace_event dump
//	GET  /debug/cluster/trace    merged cluster timeline (?trace= filters)
//	GET  /cluster/metrics        federated member metrics + cluster rollups
//	GET  /cluster/health         topology liveness/generation/epoch summary
//	GET  /cluster/events         recent supervisor topology events (?n= caps)
//	GET  /cluster/offenders      merged worst-boundedness applies (?algo=, ?n=)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"shards": rt.table.Snapshot()})
	})
	mux.Handle("GET /metrics", rt.reg.Handler())
	mux.Handle("GET /metrics.json", rt.reg.JSONHandler())
	mux.Handle("GET /debug/trace", rt.rec.Handler())
	mux.HandleFunc("GET /debug/cluster/trace", rt.handleClusterTrace)
	mux.HandleFunc("GET /cluster/metrics", rt.handleClusterMetrics)
	mux.HandleFunc("GET /cluster/health", rt.handleClusterHealth)
	mux.HandleFunc("GET /cluster/events", rt.handleClusterEvents)
	mux.HandleFunc("GET /cluster/offenders", rt.handleClusterOffenders)
	mux.HandleFunc("GET /epochs", rt.handleEpochs)
	mux.HandleFunc("POST /update", rt.handleUpdate)
	mux.HandleFunc("GET /query/{algo}", rt.handleQuery)
	// Clients announce their remaining patience in X-Incgraph-Deadline;
	// the middleware turns it into a context deadline every downstream
	// shard call (and retry sleep) spends from.
	return resilience.Middleware(mux)
}

func (rt *Router) handleEpochs(w http.ResponseWriter, r *http.Request) {
	live := make(EpochVector, rt.part.Shards())
	for i := range live {
		addr, _ := rt.table.Active(i)
		info, err := rt.clientFor(addr).Info(r.Context())
		if err != nil {
			continue // absent entry stays 0: visibly behind the floor
		}
		live[i] = minAlgoEpoch(info.Epochs)
	}
	floor := rt.Floor()
	writeJSON(w, http.StatusOK, map[string]any{
		"floor": floor, "floor_token": floor.String(),
		"live": live, "live_token": live.String(),
		"consistent": live.Covers(floor),
	})
}

// requestTrace resolves the request's W3C trace ID (client-supplied
// traceparent or freshly minted), stamps it on the response, and returns
// a context carrying it so shard.Client fan-out requests propagate it.
func (rt *Router) requestTrace(w http.ResponseWriter, r *http.Request) (context.Context, trace.TraceID) {
	tid, ok := trace.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tid = trace.NewTraceID()
	}
	w.Header().Set("traceparent", trace.FormatTraceparent(tid, trace.NewSpanID()))
	return trace.ContextWithID(r.Context(), tid), tid
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	ctx, tid := rt.requestTrace(w, r)
	ctx, cancel := resilience.EnsureBudget(ctx, rt.res.DefaultTimeout)
	defer cancel()
	root := rt.rec.Begin("update", "router", rt.track)
	root.SetTrace(tid)
	defer root.End()
	b, err := graph.ReadBatch(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := b.Validate(rt.n); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	split := rt.rec.Begin("split", "router", rt.track)
	split.SetTrace(tid)
	parts := SplitBatch(rt.part, rt.directed, b)
	var routed []routedBatch
	for i, sb := range parts {
		if len(sb) > 0 {
			routed = append(routed, routedBatch{shard: i, b: sb})
		}
	}
	split.Arg("updates", int64(len(b)))
	split.Arg("shards", int64(len(routed)))
	split.End()
	root.Arg("updates", int64(len(b)))
	root.Arg("shards", int64(len(routed)))
	// Health gate before any shard sees a byte: refusing the whole
	// batch up front beats discovering a dead owner after siblings have
	// already logged their slices. The breaker gate extends the same
	// logic to owners that are nominally healthy but failing fast, and
	// the shed's Retry-After is derived from the breaker's remaining
	// cool-down rather than a hardcoded guess.
	for _, rb := range routed {
		if addr, healthy := rt.table.Active(rb.shard); !healthy || addr == "" {
			rt.updatesShed.Inc()
			w.Header().Set("Retry-After", rt.shedRetryAfter(rb.shard))
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("shard %d is not healthy; batch not routed", rb.shard))
			return
		}
		if !rt.guard(rb.shard).Allow() {
			rt.updatesShed.Inc()
			w.Header().Set("Retry-After", rt.shedRetryAfter(rb.shard))
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("shard %d circuit breaker is open; batch not routed", rb.shard))
			return
		}
	}
	wait := r.URL.Query().Get("wait") != ""
	res := RouterUpdateResult{
		Accepted: len(b),
		Routed:   len(routed),
		PerShard: make([]PerShard, len(routed)),
	}
	fan := rt.rec.Begin("fanout", "router", rt.track)
	fan.SetTrace(tid)
	// hints collects per-shard Retry-After guidance so a shed response
	// relays the most pessimistic shard's ask instead of a constant.
	hints := make([]time.Duration, len(routed))
	var wg sync.WaitGroup
	for idx, rb := range routed {
		wg.Add(1)
		go func(idx int, rb routedBatch) {
			defer wg.Done()
			ps := PerShard{Shard: rb.shard, Updates: len(rb.b)}
			// Whole-sub-batch retries are safe: shard applies are
			// idempotent (counted no-ops for duplicate inserts and absent
			// deletes), so a retry after an ambiguous failure cannot
			// double-apply.
			var out UpdateOutcome
			err := rt.callShard(ctx, rb.shard, func(ctx context.Context, c *Client) error {
				var e error
				out, e = c.Update(ctx, rb.b, wait)
				return e
			})
			rt.noteOutcome(err)
			switch {
			case err == nil:
				ps.Status, ps.Epochs = "accepted", out.Epochs
				if out.Applied {
					ps.Status = "applied"
				}
			case IsShed(err) || isBreakerOpen(err):
				ps.Status, ps.Error = "shed", err.Error()
				if h, ok := RetryAfterHint(err); ok {
					hints[idx] = h
				} else if e := (errBreakerOpen{}); errors.As(err, &e) {
					hints[idx] = e.wait
				}
			default:
				ps.Status, ps.Error = "error", err.Error()
			}
			res.PerShard[idx] = ps
		}(idx, rb)
	}
	wg.Wait()
	fan.End()

	// Assemble the post-request epoch vector: shards that carried a
	// sub-batch report their new epochs; untouched shards keep the
	// floor's entry (their stream did not advance).
	assemble := rt.rec.Begin("epoch_assemble", "router", rt.track)
	assemble.SetTrace(tid)
	vector := rt.Floor()
	allOK, anyOK, anyShed := true, false, false
	for _, ps := range res.PerShard {
		switch ps.Status {
		case "applied", "accepted":
			anyOK = true
			if e := minAlgoEpoch(ps.Epochs); e > vector[ps.Shard] {
				vector[ps.Shard] = e
			}
		case "shed":
			anyShed, allOK = true, false
		default:
			allOK = false
		}
	}
	res.Epochs = vector
	res.EpochToken = vector.String()
	assemble.End()
	// A split batch is applied only if *every* owning shard logged its
	// slice; partial success is reported per shard, never acked whole.
	res.Applied = allOK && wait && len(routed) > 0
	w.Header().Set(EpochHeader, res.EpochToken)
	rt.updatesSplit.Inc()
	if allOK {
		rt.updatesRouted.Add(float64(len(b)))
		rt.raiseFloor(vector)
		writeJSON(w, http.StatusOK, res)
		return
	}
	if anyOK {
		rt.partialFails.Inc()
		// The applied slices are acknowledged state — reads must cover
		// them even though the batch as a whole failed.
		rt.raiseFloor(vector)
	}
	code := http.StatusBadGateway
	if anyShed {
		rt.updatesShed.Inc()
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Retry-After", maxRetryAfter(hints))
	writeJSON(w, code, res)
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	algo := r.PathValue("algo")
	if algo != "sssp" && algo != "cc" {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown algo %q", algo))
		return
	}
	ctx, tid := rt.requestTrace(w, r)
	ctx, cancel := resilience.EnsureBudget(ctx, rt.res.DefaultTimeout)
	defer cancel()
	span := rt.rec.Begin("query", "router", rt.track)
	span.SetTrace(tid)
	span.Arg("shards", int64(rt.part.Shards()))
	defer span.End()
	var minEV EpochVector
	if tok := r.Header.Get(MinEpochHeader); tok != "" {
		ev, err := ParseEpochVector(tok)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		minEV = ev
	}
	views, vector, shardStats, degraded, src, err := rt.gatherViews(ctx, algo)
	if err != nil {
		// Only a query no shard can contribute to fails whole; anything
		// less becomes a degraded partial below.
		w.Header().Set("Retry-After", maxRetryAfter(nil))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if minEV != nil && !vector.Covers(minEV) {
		w.Header().Set(EpochHeader, vector.String())
		writeError(w, http.StatusPreconditionFailed,
			fmt.Errorf("shard epochs %v do not cover required %v", vector, minEV))
		return
	}
	res := QueryResult{
		Algo:       algo,
		Epochs:     vector,
		EpochToken: vector.String(),
		Consistent: vector.Covers(rt.Floor()),
		Degraded:   degraded,
	}
	// exchangeLost flips when a shard that contributed a view stops
	// answering eval rounds mid-exchange; the answer is still a sound
	// partial (min-combine without that shard's relaxations), so it is
	// stamped degraded instead of failing the query.
	var exchangeLost atomic.Bool
	switch algo {
	case "sssp":
		dist, rounds, err := SSSPExchange(rt.n, views, func(i int, seeds []int64) ([]int64, error) {
			if views[i] == nil {
				return nil, nil // missing shard: no relaxations to offer
			}
			var resp EvalResponse
			callErr := rt.callShard(ctx, i, func(ctx context.Context, c *Client) error {
				var e error
				resp, e = c.Eval(ctx, "sssp", sparseSeeds(seeds))
				return e
			})
			if callErr != nil {
				rt.noteOutcome(callErr)
				exchangeLost.Store(true)
				return nil, nil
			}
			return resp.Values, nil
		})
		if err != nil {
			w.Header().Set("Retry-After", maxRetryAfter(nil))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		res.ExchangeRounds = rounds
		rt.exchangeRnds.Add(float64(rounds))
		res.Data = map[string]any{"src": src, "dist": dist}
	case "cc":
		// CC's exchange needs no shard round-trips: the union of the
		// published label relations is the global fixpoint.
		res.ExchangeRounds = 1
		rt.exchangeRnds.Inc()
		res.Data = map[string]any{"labels": CCExchange(rt.n, views)}
	}
	if exchangeLost.Load() {
		res.Degraded = true
	}
	if res.Degraded {
		res.Shards = shardStats
		rt.degradedQueries.Inc()
	}
	rt.queriesServed.Inc()
	w.Header().Set(EpochHeader, res.EpochToken)
	writeJSON(w, http.StatusOK, res)
}

// gatherViews fetches every shard's view for algo concurrently through
// the resilient path (retries, hedges, replica stale fallback; see
// fetchView), returning the per-shard value vectors, the epoch vector
// they answer for, per-shard provenance, whether the result is
// degraded, and (for sssp) the source. A shard no member can answer for
// is *missing*: its views entry stays nil and its vector entry stays 0,
// visibly behind the floor, so consistency checks fail honestly. Only
// when every shard is missing does gatherViews return an error — the
// whole-query 5xx of last resort.
func (rt *Router) gatherViews(ctx context.Context, algo string) (views [][]int64, vector EpochVector, shardStats []QueryShard, degraded bool, src graph.NodeID, err error) {
	shards := rt.part.Shards()
	views = make([][]int64, shards)
	vector = make(EpochVector, shards)
	shardStats = make([]QueryShard, shards)
	srcs := make([]graph.NodeID, shards)
	degs := make([]bool, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qs := QueryShard{Shard: i}
			sv, status, ferr := rt.fetchView(ctx, i, algo)
			switch {
			case ferr != nil:
				rt.noteOutcome(ferr)
				qs.Status, qs.Error = "missing", ferr.Error()
			case len(sv.Values) != rt.n:
				qs.Status = "missing"
				qs.Error = fmt.Sprintf("view has %d nodes, want %d", len(sv.Values), rt.n)
			default:
				qs.Status, qs.Epoch = status, sv.Epoch
				views[i], vector[i], srcs[i] = sv.Values, sv.Epoch, sv.Src
				// A shard answered, but not by its primary's live view:
				// hedged/stale reads and degraded shard views are all
				// reasons to stamp the assembled answer degraded.
				degs[i] = sv.Degraded || status != "ok"
			}
			shardStats[i] = qs
		}(i)
	}
	wg.Wait()
	present := 0
	var lastErr string
	for i := range shardStats {
		if views[i] == nil {
			degraded = true
			lastErr = shardStats[i].Error
			continue
		}
		present++
		degraded = degraded || degs[i]
		src = srcs[i] // all shards share the source; any entry works
	}
	if present == 0 {
		return nil, nil, nil, false, 0, fmt.Errorf("no shard could answer %s query (%s)", algo, lastErr)
	}
	return views, vector, shardStats, degraded, src, nil
}

// sparseSeeds converts a dense seed vector to the [vertex, value] pairs
// the eval endpoint ships — only finite entries cross the wire.
func sparseSeeds(dense []int64) [][2]int64 {
	var out [][2]int64
	for v, d := range dense {
		if d < graph.Infinity {
			out = append(out, [2]int64{int64(v), d})
		}
	}
	return out
}

// minAlgoEpoch reduces a per-algo epoch map to the conservative shard
// epoch: the minimum across hosted algos (they consume one stream, so
// the minimum is the prefix *all* views reflect).
func minAlgoEpoch(epochs map[string]uint64) uint64 {
	first := true
	var min uint64
	for _, e := range epochs {
		if first || e < min {
			min, first = e, false
		}
	}
	return min
}

// writeJSON writes v as indented JSON with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the standard JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
