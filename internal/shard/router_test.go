package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/serve"
	"incgraph/internal/sssp"
)

// startShardDaemon builds one in-process shard daemon: a serve.Service
// hosting sssp+cc over the shard's fragment, with the shard API mounted,
// behind an httptest server.
func startShardDaemon(t *testing.T, g *graph.Graph, p Partitioner, id int, src graph.NodeID) *httptest.Server {
	t.Helper()
	frag := FilterGraph(g, p, id)
	svc := serve.NewService()
	if _, err := svc.Host(serve.SSSP(sssp.NewInc(frag, src), src), serve.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Host(serve.CC(cc.NewInc(frag.Clone())), serve.Options{}); err != nil {
		t.Fatal(err)
	}
	MountShardAPI(svc, p, id, g.NumNodes(), g.Directed(), nil)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return srv
}

func startCluster(t *testing.T, g *graph.Graph, shards int, src graph.NodeID) (*Router, *Table) {
	t.Helper()
	p := NewHashPartitioner(shards)
	addrs := make([]string, shards)
	for id := 0; id < shards; id++ {
		addrs[id] = startShardDaemon(t, g, p, id, src).URL
	}
	table := NewTable(addrs)
	rt, err := NewRouter(RouterOptions{Part: p, Table: table, Directed: g.Directed(), NumNodes: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	return rt, table
}

func postBatch(t *testing.T, h http.Handler, b graph.Batch, wait bool) (*httptest.ResponseRecorder, RouterUpdateResult) {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	url := "/update"
	if wait {
		url += "?wait=1"
	}
	req := httptest.NewRequest(http.MethodPost, url, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var res RouterUpdateResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("update response %d not JSON: %v\n%s", w.Code, err, w.Body.String())
	}
	return w, res
}

func queryRouter(t *testing.T, h http.Handler, algo, minEpochs string) (*httptest.ResponseRecorder, QueryResult) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/query/"+algo, nil)
	if minEpochs != "" {
		req.Header.Set(MinEpochHeader, minEpochs)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var res QueryResult
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
			t.Fatalf("query response not JSON: %v", err)
		}
	}
	return w, res
}

// TestRouterDifferential is the end-to-end half of the sharded ≡
// single-process guarantee, over real HTTP: random update batches routed
// through the splitter and fan-out, then cross-shard SSSP and CC reads
// compared against a full-graph recompute. Run under -race this also
// exercises the router's concurrent fan-out and view gathering.
func TestRouterDifferential(t *testing.T) {
	leakCheck(t)
	for _, directed := range []bool{true, false} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("directed=%v/shards=%d", directed, shards), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(shards)*100 + 5))
				oracle := gen.PowerLaw(rng, 200, 5, directed)
				src := graph.NodeID(rng.Intn(oracle.NumNodes()))
				rt, _ := startCluster(t, oracle, shards, src)
				h := rt.Handler()

				checkAnswers := func(round int) {
					w, res := queryRouter(t, h, "sssp", "")
					if w.Code != http.StatusOK {
						t.Fatalf("round %d: sssp query: %d %s", round, w.Code, w.Body.String())
					}
					if !res.Consistent {
						t.Fatalf("round %d: sssp answer not consistent: %v vs floor %v", round, res.Epochs, rt.Floor())
					}
					// Decode data straight from the body: round-tripping
					// through res.Data (any) would truncate Infinity to
					// float64 precision.
					var wire struct {
						Data struct {
							Src  graph.NodeID `json:"src"`
							Dist []int64      `json:"dist"`
						} `json:"data"`
					}
					if err := json.Unmarshal(w.Body.Bytes(), &wire); err != nil {
						t.Fatal(err)
					}
					data := wire.Data
					if data.Src != src {
						t.Fatalf("round %d: query source %d, want %d", round, data.Src, src)
					}
					want := sssp.Dijkstra(oracle, src)
					for v := range want {
						if data.Dist[v] != want[v] {
							t.Fatalf("round %d: dist[%d] = %d, want %d", round, v, data.Dist[v], want[v])
						}
					}

					w, res = queryRouter(t, h, "cc", "")
					if w.Code != http.StatusOK {
						t.Fatalf("round %d: cc query: %d %s", round, w.Code, w.Body.String())
					}
					var ccWire struct {
						Data struct {
							Labels []int64 `json:"labels"`
						} `json:"data"`
					}
					if err := json.Unmarshal(w.Body.Bytes(), &ccWire); err != nil {
						t.Fatal(err)
					}
					ccData := ccWire.Data
					wantLabels := cc.CCfp(oracle)
					for v := range wantLabels {
						if ccData.Labels[v] != wantLabels[v] {
							t.Fatalf("round %d: label[%d] = %d, want %d", round, v, ccData.Labels[v], wantLabels[v])
						}
					}
				}

				checkAnswers(0)
				for round := 1; round <= 4; round++ {
					b := gen.RandomUpdates(rng, oracle, 50, 0.5)
					w, res := postBatch(t, h, b, true)
					if w.Code != http.StatusOK {
						t.Fatalf("round %d: update: %d %s", round, w.Code, w.Body.String())
					}
					if !res.Applied {
						t.Fatalf("round %d: batch not acked applied: %+v", round, res)
					}
					if w.Header().Get(EpochHeader) == "" {
						t.Fatalf("round %d: missing %s header", round, EpochHeader)
					}
					if _, err := ParseEpochVector(res.EpochToken); err != nil {
						t.Fatalf("round %d: epoch token: %v", round, err)
					}
					oracle.Apply(b)
					checkAnswers(round)
				}
			})
		}
	}
}

// TestRouterShedsOnUnhealthyShard: an unhealthy owning shard must shed
// the whole batch with 503 + Retry-After before any shard sees a byte,
// while queries degrade to a per-shard partial answer (the unhealthy
// shard reported missing, its epoch entry 0) instead of failing whole.
func TestRouterShedsOnUnhealthyShard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.PowerLaw(rng, 120, 5, true)
	rt, table := startCluster(t, g, 2, 0)
	h := rt.Handler()

	table.SetHealth(1, false)
	b := gen.RandomUpdates(rng, g, 30, 0.5)
	w, res := postBatch(t, h, b, true)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("update to degraded cluster: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if res.Applied {
		t.Fatal("shed batch acked as applied")
	}
	qw, qres := queryRouter(t, h, "sssp", "")
	if qw.Code != http.StatusOK {
		t.Fatalf("query with a dead shard: %d, want 200 degraded partial", qw.Code)
	}
	if !qres.Degraded {
		t.Fatal("partial query not stamped degraded")
	}
	if len(qres.Shards) != 2 || qres.Shards[1].Status != "missing" {
		t.Fatalf("per-shard provenance = %+v, want shard 1 missing", qres.Shards)
	}
	if qres.Epochs[1] != 0 {
		t.Fatalf("missing shard's epoch entry = %d, want 0", qres.Epochs[1])
	}

	table.SetHealth(1, true)
	if w, res = postBatch(t, h, b, true); w.Code != http.StatusOK || !res.Applied {
		t.Fatalf("recovered cluster refuses updates: %d applied=%v", w.Code, res.Applied)
	}
}

// TestRouterPartialApplyReported: when one shard fails mid-fan-out, the
// batch must not be acked applied, the response must carry per-shard
// status, and the floor must still cover the slices that did land.
func TestRouterPartialApplyReported(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.PowerLaw(rng, 150, 5, true)
	src := graph.NodeID(0)
	p := NewHashPartitioner(2)
	good := startShardDaemon(t, g, p, 0, src)
	// Shard 1 is a black hole: accepts connections, returns 500.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "disk on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	table := NewTable([]string{good.URL, broken.URL})
	rt, err := NewRouter(RouterOptions{Part: p, Table: table, Directed: true, NumNodes: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	// Build a batch guaranteed to touch both shards.
	var b graph.Batch
	var got0, got1 bool
	for v := 0; v < g.NumNodes() && !(got0 && got1); v++ {
		u := graph.NodeID(v)
		if p.Owner(u) == 0 && !got0 {
			b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: (u + 1) % graph.NodeID(g.NumNodes()), W: 1})
			got0 = true
		}
		if p.Owner(u) == 1 && !got1 {
			b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: (u + 2) % graph.NodeID(g.NumNodes()), W: 1})
			got1 = true
		}
	}
	w, res := postBatch(t, h, b, true)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("partial apply returned %d, want 502", w.Code)
	}
	if res.Applied {
		t.Fatal("partial apply acked as applied")
	}
	if len(res.PerShard) != 2 {
		t.Fatalf("per-shard report has %d entries: %+v", len(res.PerShard), res.PerShard)
	}
	statuses := map[int]string{}
	for _, ps := range res.PerShard {
		statuses[ps.Shard] = ps.Status
	}
	if statuses[0] != "applied" || statuses[1] != "error" {
		t.Fatalf("per-shard statuses %v, want shard0 applied / shard1 error", statuses)
	}
	// The applied slice is acknowledged state: the floor must cover it.
	if floor := rt.Floor(); floor[0] == 0 {
		t.Fatalf("floor %v does not cover shard 0's applied slice", floor)
	}
}

// TestRouterCrashMidFanOut: a shard that crashes outright (connection
// refused — not a 5xx-ing server, and not yet marked unhealthy in the
// table) must surface as a per-shard "error" in the update report with
// the batch unacked, and subsequent queries must degrade to a partial
// whose epoch vector still covers the surviving shard's applied slice
// while the crashed shard's entry reads 0 — acknowledged work is never
// silently lost, and staleness is never hidden.
func TestRouterCrashMidFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	g := gen.PowerLaw(rng, 150, 5, true)
	src := graph.NodeID(0)
	p := NewHashPartitioner(2)
	good := startShardDaemon(t, g, p, 0, src)
	crashed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	table := NewTable([]string{good.URL, crashed.URL})
	rt, err := NewRouter(RouterOptions{Part: p, Table: table, Directed: true, NumNodes: g.NumNodes(),
		// Tight retry budget: the crashed shard fails fast instead of
		// riding three full backoff cycles per call.
		Resilience: ResilienceOptions{Attempts: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	// The crash: the process is gone, connections are refused, but the
	// table has not noticed yet (health still true).
	crashed.Close()

	var b graph.Batch
	var got0, got1 bool
	for v := 0; v < g.NumNodes() && !(got0 && got1); v++ {
		u := graph.NodeID(v)
		if p.Owner(u) == 0 && !got0 {
			b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: (u + 1) % graph.NodeID(g.NumNodes()), W: 1})
			got0 = true
		}
		if p.Owner(u) == 1 && !got1 {
			b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: (u + 2) % graph.NodeID(g.NumNodes()), W: 1})
			got1 = true
		}
	}
	w, res := postBatch(t, h, b, true)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("crash mid-fan-out returned %d, want 502", w.Code)
	}
	if res.Applied {
		t.Fatal("partially applied batch acked as applied")
	}
	statuses := map[int]string{}
	for _, ps := range res.PerShard {
		statuses[ps.Shard] = ps.Status
	}
	if statuses[0] != "applied" || statuses[1] != "error" {
		t.Fatalf("per-shard statuses %v, want shard0 applied / shard1 error", statuses)
	}

	qw, qres := queryRouter(t, h, "sssp", "")
	if qw.Code != http.StatusOK {
		t.Fatalf("query after crash: %d, want 200 degraded partial", qw.Code)
	}
	if !qres.Degraded {
		t.Fatal("partial query not stamped degraded")
	}
	if qres.Epochs[0] == 0 {
		t.Fatalf("epoch vector %v does not cover shard 0's applied slice", qres.Epochs)
	}
	if qres.Epochs[1] != 0 {
		t.Fatalf("crashed shard's epoch entry = %d, want 0", qres.Epochs[1])
	}
	if len(qres.Shards) != 2 || qres.Shards[1].Status != "missing" {
		t.Fatalf("per-shard provenance = %+v, want shard 1 missing", qres.Shards)
	}
}

// TestRouterMinEpochPrecondition: a read demanding a future prefix gets
// 412, and a read demanding the current floor succeeds.
func TestRouterMinEpochPrecondition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.PowerLaw(rng, 100, 4, false)
	rt, _ := startCluster(t, g, 2, 0)
	h := rt.Handler()

	b := gen.RandomUpdates(rng, g, 20, 1.0)
	if w, _ := postBatch(t, h, b, true); w.Code != http.StatusOK {
		t.Fatalf("update: %d", w.Code)
	}
	floor := rt.Floor()
	if w, _ := queryRouter(t, h, "sssp", floor.String()); w.Code != http.StatusOK {
		t.Fatalf("read-your-writes at floor %v refused: %d", floor, w.Code)
	}
	future := floor.Clone()
	for i := range future {
		future[i] += 1000
	}
	if w, _ := queryRouter(t, h, "sssp", future.String()); w.Code != http.StatusPreconditionFailed {
		t.Fatalf("future prefix demand returned %d, want 412", w.Code)
	}
	if w, _ := queryRouter(t, h, "sssp", "%%%bad-token"); w.Code != http.StatusBadRequest {
		t.Fatal("garbage min-epoch token accepted")
	}
}

func TestTablePromote(t *testing.T) {
	table := NewTable([]string{"http://a", "http://b"})
	if r := table.Replica(0); r != "" {
		t.Fatalf("replica %q reported where none registered", r)
	}
	table.SetReplica(0, "http://a2")
	addr, healthy := table.Active(0)
	if addr != "http://a" || !healthy {
		t.Fatalf("active = %q healthy=%v", addr, healthy)
	}
	table.SetHealth(0, false)
	if _, healthy := table.Active(0); healthy {
		t.Fatal("health flag ignored")
	}
	if addr, err := table.Promote(0); err != nil || addr != "http://a2" {
		t.Fatalf("promote: addr=%q err=%v", addr, err)
	}
	addr, healthy = table.Active(0)
	if addr != "http://a2" || !healthy {
		t.Fatalf("after promote: active = %q healthy=%v", addr, healthy)
	}
	snap := table.Snapshot()
	if len(snap) != 2 || snap[0].Generation == 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	if _, err := table.Promote(1); err == nil {
		t.Fatal("promote without replica succeeded")
	}
}
