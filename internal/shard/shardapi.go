package shard

import (
	"encoding/json"
	"fmt"
	"net/http"

	"incgraph/internal/graph"
	"incgraph/internal/serve"
)

// This file is the shard-side half of the exchange protocol: the
// endpoints a shard daemon mounts on its serve.Service so the router
// can drive boundary-value exchange rounds against it.
//
//	GET  /shard/info        Info: identity, partitioner, epoch
//	POST /shard/eval/sssp   EvalRequest → EvalResponse (seeded relaxation)
//
// The evaluation runs through Host.WithState, which queues behind every
// accepted submission and executes inside the apply loop — so it reads
// the maintainer's graph without breaking the single-writer contract,
// and the reported epoch states exactly which stream prefix the
// returned vector answers for.

// Info is the JSON body of GET /shard/info: the daemon's shard identity.
type Info struct {
	// Shard is this daemon's shard id; Shards the topology width.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Partitioner names the vertex-ownership scheme; router and shard
	// must agree on it for routing to mean anything.
	Partitioner string `json:"partitioner"`
	// Nodes is the graph's global node count (fragments keep every
	// node), and Directed its edge mode — the two facts a router needs
	// to validate and split batches.
	Nodes    int  `json:"nodes"`
	Directed bool `json:"directed"`
	// Replica reports whether the daemon is a warm replica (not yet
	// promoted).
	Replica bool `json:"replica,omitempty"`
	// Epochs maps hosted algos to their published view epochs.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
}

// EvalRequest asks a shard for one seeded local evaluation round. Seeds
// are sparse (vertex, value) pairs — only finite entries are shipped.
type EvalRequest struct {
	// Seeds lists [vertex, value] pairs seeding the relaxation.
	Seeds [][2]int64 `json:"seeds"`
}

// EvalResponse is a shard's answer to one evaluation round.
type EvalResponse struct {
	// Algo echoes the evaluated query class.
	Algo string `json:"algo"`
	// Epoch is the shard's stream position the evaluation saw.
	Epoch uint64 `json:"epoch"`
	// Values is the dense result vector (distances for sssp).
	Values []int64 `json:"values"`
}

// maxEvalBody bounds the eval request body (seeds are at most one pair
// per vertex; 32 MiB covers millions of entries).
const maxEvalBody = 32 << 20

// MountShardAPI grafts the shard-side endpoints onto svc's API. id is
// this daemon's slot; nodes and directed describe the global graph;
// replica (optional) marks a warm follower, which Info advertises. Call
// before svc.Handler().
func MountShardAPI(svc *serve.Service, p Partitioner, id, nodes int, directed bool, replica func() bool) {
	svc.Mount("GET /shard/info", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := Info{
			Shard: id, Shards: p.Shards(), Partitioner: p.Name(),
			Nodes: nodes, Directed: directed, Epochs: map[string]uint64{},
		}
		if replica != nil {
			info.Replica = replica()
		}
		for _, h := range svc.Hosts() {
			info.Epochs[h.Algo()] = h.View().Epoch
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(info)
	}))
	svc.Mount("POST /shard/eval/{algo}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		algo := r.PathValue("algo")
		h := svc.Get(algo)
		if h == nil {
			http.Error(w, fmt.Sprintf("unknown algo %q", algo), http.StatusNotFound)
			return
		}
		var req EvalRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEvalBody)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		values, epoch, err := evalHost(h, algo, req.Seeds)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(EvalResponse{Algo: algo, Epoch: epoch, Values: values})
	}))
}

// evalHost runs one seeded evaluation inside h's apply loop. Only sssp
// has a seeded round today — CC's exchange is a single label union the
// router computes from published views, needing no shard round-trip.
func evalHost(h *serve.Host, algo string, pairs [][2]int64) (values []int64, epoch uint64, err error) {
	if algo != "sssp" {
		return nil, 0, fmt.Errorf("algo %q has no seeded evaluation (exchange uses published views)", algo)
	}
	err = h.WithState(func(m serve.Serveable) error {
		g := m.Graph()
		seeds := make([]int64, g.NumNodes())
		for i := range seeds {
			seeds[i] = graph.Infinity
		}
		for _, p := range pairs {
			v, d := p[0], p[1]
			if v < 0 || v >= int64(len(seeds)) {
				return fmt.Errorf("seed vertex %d out of range [0,%d)", v, len(seeds))
			}
			if d < 0 {
				return fmt.Errorf("negative seed value %d for vertex %d", d, v)
			}
			if d < seeds[v] {
				seeds[v] = d
			}
		}
		values = SeededSSSP(g, seeds)
		epoch = h.Stats().Epoch
		return nil
	})
	return values, epoch, err
}
